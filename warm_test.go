package replicatree_test

// Warm-path gates: the zero-allocation guarantee of the scratch-based
// solve path and its behavioural equality with the cold path.
//
// TestAllocs is the CI tripwire for the tentpole invariant: a warm
// Engine.Solve — scratch lent, instance already ingested — performs
// zero heap allocations for every warm-capable engine. It measures
// through the public Engine seam, so a regression anywhere on the
// path (session, Normalize, Verify, fillBound, the dispatch itself)
// trips it. Set REPLICATREE_SKIP_ALLOC_GATE=1 to skip it temporarily,
// e.g. while bisecting an unrelated failure under instrumented builds
// (-race and -msan builds skip automatically: their instrumentation
// allocates).
//
// TestWarmMatchesColdCorpus is the metamorphic twin: over the full
// frozen testdata/ corpus, a warm solve must return the exact Report
// of a cold solve — same solution, bound, gap, policy — and repeat it
// on a re-solve of the already-warm scratch.

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
)

// warmEngines are the engines with a scratch-backed warm path; every
// other engine ignores Request.Scratch.
var warmEngines = []string{
	solver.SingleGen,
	solver.SingleNoD,
	solver.MultipleBin,
	solver.MultipleLazy,
	solver.MultipleBest,
	solver.MultipleGreedy,
	solver.LPRound,
}

// allocInstance builds the ~200-node binary instance the allocation
// gate solves: binary so multiple-bin applies, W ≥ max rᵢ so the
// Multiple preconditions hold.
func allocInstance(seed int64, withDistance bool) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 150, MaxArity: 2, MaxDist: 4, MaxReq: 10,
	}, withDistance)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	return in
}

func TestAllocs(t *testing.T) {
	if os.Getenv("REPLICATREE_SKIP_ALLOC_GATE") != "" {
		t.Skip("REPLICATREE_SKIP_ALLOC_GATE set")
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	skipIfInstrumented(t)
	dist := allocInstance(71, true)
	nod := allocInstance(73, false)
	ctx := context.Background()
	sc := solver.NewScratch()
	for _, name := range warmEngines {
		eng := solver.MustLookup(name)
		in := dist
		if !eng.Capabilities().SupportsDMax {
			in = nod
		}
		req := solver.Request{Instance: in, Scratch: sc}
		// Warm up outside the measurement: the first solve ingests the
		// instance and grows every session buffer.
		if rep, err := eng.Solve(ctx, req); err != nil {
			t.Fatalf("%s: warm-up solve: %v", name, err)
		} else if rep.Solution == nil {
			t.Fatalf("%s: warm-up solve returned no solution", name)
		}
		avg := testing.AllocsPerRun(20, func() {
			rep, err := eng.Solve(ctx, req)
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
			_ = rep
		})
		if avg != 0 {
			t.Errorf("%s: warm Engine.Solve allocated %.1f times per run, want 0", name, avg)
		}
	}
}

// TestWarmMatchesColdCorpus solves every corpus instance cold and warm
// through the public Engine seam and requires identical Reports,
// including on a second solve of the already-warm scratch.
func TestWarmMatchesColdCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sc := solver.NewScratch()
	n := 0
	for _, file := range files {
		if filepath.Base(file) == "manifest.json" {
			continue
		}
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		n++
		for _, name := range warmEngines {
			eng := solver.MustLookup(name)
			cold, coldErr := eng.Solve(ctx, solver.Request{Instance: &in})
			wreq := solver.Request{Instance: &in, Scratch: sc}
			for round := 1; round <= 2; round++ {
				warm, warmErr := eng.Solve(ctx, wreq)
				if (coldErr == nil) != (warmErr == nil) {
					t.Fatalf("%s %s round %d: cold err %v, warm err %v", file, name, round, coldErr, warmErr)
				}
				if coldErr != nil {
					if coldErr.Error() != warmErr.Error() {
						t.Errorf("%s %s round %d: cold err %q, warm err %q", file, name, round, coldErr, warmErr)
					}
					continue
				}
				if !slices.Equal(cold.Solution.Replicas, warm.Solution.Replicas) ||
					!slices.Equal(cold.Solution.Assignments, warm.Solution.Assignments) {
					t.Errorf("%s %s round %d: solutions differ\n cold %v\n warm %v",
						file, name, round, cold.Solution, warm.Solution)
				}
				if cold.Policy != warm.Policy || cold.LowerBound != warm.LowerBound ||
					cold.Gap != warm.Gap || cold.Proved != warm.Proved || cold.Engine != warm.Engine {
					t.Errorf("%s %s round %d: report metadata differs\n cold %+v\n warm %+v",
						file, name, round, cold, warm)
				}
			}
		}
	}
	if n < 8 {
		t.Fatalf("corpus has only %d instances", n)
	}
}

// TestScratchPool pins the pooling contract: a pooled scratch is
// reusable across distinct instances, and an invalid instance leaves
// the warm path untouched (falls back cold with the same error).
func TestScratchPool(t *testing.T) {
	ctx := context.Background()
	eng := solver.MustLookup(solver.SingleGen)
	sc := solver.GetScratch()
	defer solver.PutScratch(sc)
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 5; i++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 10}, true)
		cold, coldErr := eng.Solve(ctx, solver.Request{Instance: in})
		warm, warmErr := eng.Solve(ctx, solver.Request{Instance: in, Scratch: sc})
		if coldErr != nil || warmErr != nil {
			t.Fatalf("instance %d: cold err %v, warm err %v", i, coldErr, warmErr)
		}
		if !slices.Equal(cold.Solution.Replicas, warm.Solution.Replicas) {
			t.Fatalf("instance %d: solutions differ", i)
		}
	}

	// An invalid instance must produce the cold validation error.
	bad := &core.Instance{Tree: gen.RandomTree(rng, gen.TreeConfig{Internals: 4}), W: 0, DMax: core.NoDistance}
	coldRep, coldErr := eng.Solve(ctx, solver.Request{Instance: bad})
	warmRep, warmErr := eng.Solve(ctx, solver.Request{Instance: bad, Scratch: sc})
	if coldErr == nil || warmErr == nil {
		t.Fatalf("invalid instance accepted: cold (%v, %v), warm (%v, %v)", coldRep, coldErr, warmRep, warmErr)
	}
	if coldErr.Error() != warmErr.Error() {
		t.Fatalf("invalid instance: cold err %q, warm err %q", coldErr, warmErr)
	}
}
