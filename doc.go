// Package replicatree reproduces "Optimal algorithms and approximation
// algorithms for replica placement with distance constraints in tree
// networks" (Benoit, Larchevêque, Renaud-Goud; INRIA RR-7750 / IPDPS
// 2012).
//
// The implementation lives under internal/: the problem model and
// verifier (internal/core), the tree substrate (internal/tree), the
// paper's three algorithms (internal/single, internal/multiple), exact
// optimal baselines (internal/exact), instance generators including
// the paper's proof gadgets (internal/gen), the unified solver engine
// — a registry over every algorithm plus a parallel batch runner
// (internal/solver) — and the experiment harness that regenerates
// every theorem/figure artifact (internal/experiments). See README.md
// and DESIGN.md.
//
// The root package intentionally exports nothing; bench_test.go hosts
// the benchmark suite, one benchmark per experiment.
package replicatree
