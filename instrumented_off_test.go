//go:build !race && !msan && !asan

package replicatree_test

import "testing"

// skipIfInstrumented is a no-op in plain builds; the instrumented
// variant (instrumented_on_test.go) skips the allocation gate, whose
// zero-alloc invariant does not survive sanitizer bookkeeping.
func skipIfInstrumented(*testing.T) {}
