// VoD capacity planning: size a Video-on-Demand delivery tree — one of
// the motivating applications in the paper's introduction. A national
// origin feeds regional and metro PoPs; neighbourhood access networks
// are the clients. We choose how many cache replicas to deploy and
// where, then stress the plan with a demand-jitter simulation.
//
//	go run ./examples/vod
package main

import (
	"fmt"
	"log"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/sim"
	"replicatree/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(2024))

	// Build a three-level hierarchy: origin → 3 regions → 2-3 metros
	// each → 2-4 neighbourhood clients per metro. Distances model
	// round-trip latencies in milliseconds/10.
	b := tree.NewBuilder()
	origin := b.Root("origin")
	totalClients := 0
	for r := 0; r < 3; r++ {
		region := b.Internal(origin, 3, fmt.Sprintf("region%d", r))
		metros := 2 + rng.Intn(2)
		for m := 0; m < metros; m++ {
			metro := b.Internal(region, 2, fmt.Sprintf("r%dm%d", r, m))
			hoods := 2 + rng.Intn(3)
			for h := 0; h < hoods; h++ {
				demand := int64(50 + rng.Intn(400)) // streams per second
				b.Client(metro, 1+rng.Int63n(2), demand, fmt.Sprintf("r%dm%dh%d", r, m, h))
				totalClients++
			}
		}
	}
	t := b.MustBuild()

	const cacheCapacity = 900 // streams/s one cache appliance sustains
	const latencyBudget = 6   // max client→replica distance

	in := &core.Instance{Tree: t, W: cacheCapacity, DMax: latencyBudget}
	fmt.Printf("VoD tree: %d PoPs, %d neighbourhoods, %d streams/s total demand\n",
		len(t.Internals()), totalClients, t.TotalRequests())
	fmt.Printf("cache appliance capacity: %d streams/s, latency budget: %d\n\n",
		cacheCapacity, latencyBudget)

	// VoD sessions are splittable across caches → Multiple policy.
	sol, err := multiple.Best(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment plan: %d cache appliances (volume lower bound %d)\n",
		sol.NumReplicas(), core.VolumeLowerBound(in))
	loads := sol.Loads()
	for _, r := range sol.Replicas {
		util := 100 * float64(loads[r]) / float64(cacheCapacity)
		fmt.Printf("  %-10s %4d/%d streams/s (%.0f%% utilised)\n",
			t.Name(r), loads[r], cacheCapacity, util)
	}

	// Stress the plan: replay 1000 time steps with ±20% demand noise
	// and report how often any appliance is pushed past capacity.
	m, err := sim.Run(in, core.Multiple, sol, sim.Config{Steps: 1000, Jitter: 0.2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation (1000 steps, ±20%% demand jitter):\n")
	fmt.Printf("  served %d/%d emitted streams\n", m.TotalServed, m.TotalEmitted)
	fmt.Printf("  mean latency %.2f, max latency %d (budget %d)\n",
		m.MeanLatency, m.MaxLatency, latencyBudget)
	fmt.Printf("  overloaded appliance-steps: %d (worst excess %d streams/s)\n",
		m.OverloadSteps, m.MaxOverload)
	if m.OverloadSteps > 0 {
		fmt.Println("  → plan is tight: saturated appliances spill under bursts;")
		fmt.Println("    re-run with a lower W to build in headroom:")
		padded := &core.Instance{Tree: t, W: cacheCapacity * 8 / 10, DMax: latencyBudget}
		psol, err := multiple.Best(padded)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    at 80%% target utilisation the plan needs %d appliances\n", psol.NumReplicas())
	}
}
