// Quickstart: build a small distribution tree, place replicas under
// both access policies, and verify the placements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/tree"
)

func main() {
	// A toy distribution tree: the root holds the master copy; two
	// internal routers; four clients with known request rates. Edge
	// labels are distances (latency units).
	b := tree.NewBuilder()
	root := b.Root("origin")
	east := b.Internal(root, 2, "east")
	west := b.Internal(root, 3, "west")
	b.Client(east, 1, 40, "boston")
	b.Client(east, 2, 35, "nyc")
	b.Client(west, 1, 30, "sf")
	b.Client(west, 2, 15, "seattle")
	t := b.MustBuild()

	in := &core.Instance{
		Tree: t,
		W:    60, // each replica serves up to 60 req/s
		DMax: 4,  // every request must be served within distance 4
	}
	fmt.Printf("instance: %s, W=%d, dmax=%d\n\n", t, in.W, in.DMax)

	// Single policy: each client bound to exactly one server.
	// Algorithm 1 (single-gen) is a (Δ+1)-approximation.
	sgl, err := single.Gen(in)
	if err != nil {
		log.Fatal(err)
	}
	report(in, core.Single, "Single policy — single-gen (Algorithm 1)", sgl)

	// Multiple policy: a client's requests may be split. Algorithm 3
	// (multiple-bin) is the paper's polynomial algorithm for binary
	// trees; Best additionally runs the lazy variant and keeps the
	// better placement.
	mul, err := multiple.Best(in)
	if err != nil {
		log.Fatal(err)
	}
	report(in, core.Multiple, "Multiple policy — multiple-bin (Algorithm 3, best variant)", mul)

	fmt.Printf("lower bound (any policy): %d replicas\n", core.LowerBound(in))
}

func report(in *core.Instance, pol core.Policy, title string, sol *core.Solution) {
	if err := core.Verify(in, pol, sol); err != nil {
		log.Fatalf("%s: infeasible: %v", title, err)
	}
	fmt.Println(title)
	loads := sol.Loads()
	for _, r := range sol.Replicas {
		fmt.Printf("  replica at %-8s load %2d/%d\n", in.Tree.Name(r), loads[r], in.W)
	}
	for _, a := range sol.Assignments {
		fmt.Printf("    %-8s -> %-8s %2d req/s (distance %d)\n",
			in.Tree.Name(a.Client), in.Tree.Name(a.Server), a.Amount,
			in.Tree.DistanceUp(a.Client, a.Server))
	}
	fmt.Println()
}
