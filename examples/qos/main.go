// QoS sweep: how the latency bound dmax drives the number of replicas
// — the distance constraint is the paper's central new ingredient.
// The example sweeps dmax from "local only" to "unconstrained" on a
// fixed tree and prints the resulting replica counts under both
// policies, reproducing in miniature the cost-of-QoS trade-off that
// motivates Sections 3.3 and 4.2.
//
//	go run ./examples/qos
package main

import (
	"fmt"
	"log"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(99))
	t := gen.RandomTree(rng, gen.TreeConfig{
		Internals:    20,
		MaxArity:     2, // binary, so Algorithm 3 applies exactly
		MaxDist:      3,
		MaxReq:       25,
		ExtraClients: 10,
	})
	W := t.MaxRequests() + 40
	fmt.Printf("network: %s, W=%d\n\n", t, W)

	maxD := int64(t.Height()) * 3 // beyond this nothing is constrained
	tab := stats.NewTable("replicas needed vs latency bound",
		"dmax", "Single (single-gen)", "Single +push-up", "Multiple (best)", "volume LB")
	for dmax := int64(0); ; dmax += 2 {
		in := &core.Instance{Tree: t, W: W, DMax: dmax}
		sgl, err := single.Gen(in)
		if err != nil {
			log.Fatal(err)
		}
		up := single.PushUp(in, sgl)
		mul, err := multiple.Best(in)
		if err != nil {
			log.Fatal(err)
		}
		tab.AddRow(dmax, sgl.NumReplicas(), up.NumReplicas(), mul.NumReplicas(),
			core.VolumeLowerBound(in))
		if dmax > maxD {
			break
		}
	}
	// The unconstrained row for reference.
	in := &core.Instance{Tree: t, W: W, DMax: core.NoDistance}
	sgl, err := single.NoD(in)
	if err != nil {
		log.Fatal(err)
	}
	mul, err := multiple.Best(in)
	if err != nil {
		log.Fatal(err)
	}
	tab.AddRow("∞", sgl.NumReplicas(), single.PushUp(in, sgl).NumReplicas(),
		mul.NumReplicas(), core.VolumeLowerBound(in))

	fmt.Println(tab)
	fmt.Println("tight latency budgets force replicas towards the clients;")
	fmt.Println("relaxing dmax lets placements consolidate towards the root,")
	fmt.Println("and the Multiple policy converges to the volume bound first.")
}
