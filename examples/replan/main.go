// Replan: adapt an existing deployment to changed demand with minimal
// churn. Operators rarely redeploy from scratch: moving a replica
// means cache warm-up and traffic shifts. This example plans a
// placement, doubles demand in one region, and compares a fresh
// re-optimisation against the churn-aware replan.
//
//	go run ./examples/replan
package main

import (
	"fmt"
	"log"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/tree"
)

func buildTree(eastBoost int64) *tree.Tree {
	b := tree.NewBuilder()
	root := b.Root("origin")
	east := b.Internal(root, 2, "east")
	west := b.Internal(root, 2, "west")
	b.Client(east, 1, 40*eastBoost, "boston")
	b.Client(east, 1, 35*eastBoost, "nyc")
	b.Client(east, 2, 25*eastBoost, "philly")
	b.Client(west, 1, 30, "sf")
	b.Client(west, 2, 20, "seattle")
	b.Client(west, 1, 15, "portland")
	return b.MustBuild()
}

func main() {
	const W = 90

	before := &core.Instance{Tree: buildTree(1), W: W, DMax: core.NoDistance}
	plan, err := multiple.Best(before)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0: %d streams/s, plan uses %d replicas: %s\n",
		before.Tree.TotalRequests(), plan.NumReplicas(), names(before.Tree, plan.Replicas))

	// East-coast demand doubles.
	after := &core.Instance{Tree: buildTree(2), W: W, DMax: core.NoDistance}
	fmt.Printf("\nday 30: east coast doubles → %d streams/s\n", after.Tree.TotalRequests())

	fresh, err := multiple.Best(after)
	if err != nil {
		log.Fatal(err)
	}
	freshChurn := multiple.PlanDelta(after.Tree, plan, fresh)
	fmt.Printf("  fresh re-optimisation: %d replicas, churn: +%d −%d replicas, %d req/s moved\n",
		fresh.NumReplicas(), len(freshChurn.Added), len(freshChurn.Removed), freshChurn.MovedRequests)

	stable, churn, err := multiple.Replan(after, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  churn-aware replan:    %d replicas, churn: +%d −%d replicas, %d req/s moved\n",
		stable.NumReplicas(), len(churn.Added), len(churn.Removed), churn.MovedRequests)
	fmt.Printf("  stability premium: %d extra replica(s)\n",
		stable.NumReplicas()-fresh.NumReplicas())

	// Both verify, of course.
	for _, s := range []*core.Solution{fresh, stable} {
		if err := core.Verify(after, core.Multiple, s); err != nil {
			log.Fatal(err)
		}
	}
}

func names(t *tree.Tree, ids []tree.NodeID) string {
	s := ""
	for i, id := range ids {
		if i > 0 {
			s += ", "
		}
		s += t.Name(id)
	}
	return s
}
