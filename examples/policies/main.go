// Policies: a side-by-side of the Single and Multiple access policies
// on the same instance, including the paper's tight families — run
// this to see the approximation ratios of Theorems 3 and 4 emerge and
// the split assignments that make Multiple strictly stronger. All
// algorithms are dispatched by name through the solver registry, the
// same way cmd/replica and the experiment sweeps do.
//
//	go run ./examples/policies
package main

import (
	"context"
	"fmt"
	"log"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
	"replicatree/internal/stats"
	"replicatree/internal/tree"
)

func solve(name string, in *core.Instance) *core.Solution {
	rep, err := solver.MustLookup(name).Solve(context.Background(), solver.Request{Instance: in})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return rep.Solution
}

func main() {
	splittingWins()
	tightFamilies()
}

// splittingWins shows an instance where Multiple needs strictly fewer
// replicas than Single: whole-client bundles cannot be packed into
// two servers, split flows can.
func splittingWins() {
	b := tree.NewBuilder()
	root := b.Root("root")
	hub := b.Internal(root, 1, "hub")
	b.Client(hub, 1, 7, "c1")
	b.Client(hub, 1, 8, "c2")
	b.Client(root, 1, 7, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 11, DMax: core.NoDistance}

	sgl := solve(solver.ExactSingle, in)
	mul := solve(solver.MultipleBin, in)
	fmt.Printf("same instance (22 requests, W=11):\n")
	fmt.Printf("  Single optimum:   %d replicas — 7+8, 7 and no pair fits 11 exactly\n", sgl.NumReplicas())
	fmt.Printf("  Multiple optimum: %d replicas — splits make 11+11 possible:\n", mul.NumReplicas())
	for _, a := range mul.Assignments {
		fmt.Printf("    %-4s -> %-4s %2d requests\n",
			in.Tree.Name(a.Client), in.Tree.Name(a.Server), a.Amount)
	}
	fmt.Println()
}

// tightFamilies prints the approximation-ratio series of the paper's
// two tight constructions (Figures 3 and 4).
func tightFamilies() {
	tabIm := stats.NewTable("Fig. 3 family Im (Δ=3): single-gen ratio → Δ+1 = 4",
		"m", "single-gen", "optimum", "ratio")
	for _, m := range []int{1, 2, 4, 8, 16} {
		res, err := gen.GadgetIm(m, 3)
		if err != nil {
			log.Fatal(err)
		}
		sol := solve(solver.SingleGen, res.Instance)
		tabIm.AddRow(m, sol.NumReplicas(), res.OptReplicas,
			float64(sol.NumReplicas())/float64(res.OptReplicas))
	}
	fmt.Println(tabIm)

	tabF4 := stats.NewTable("Fig. 4 family: single-nod ratio → 2",
		"K", "single-nod", "optimum", "ratio")
	for _, k := range []int{1, 2, 4, 8, 16} {
		res, err := gen.GadgetFig4(k)
		if err != nil {
			log.Fatal(err)
		}
		sol := solve(solver.SingleNoD, res.Instance)
		tabF4.AddRow(k, sol.NumReplicas(), res.OptReplicas,
			float64(sol.NumReplicas())/float64(res.OptReplicas))
	}
	fmt.Println(tabF4)

	// And the Multiple policy on the same Fig. 4 trees (arity K, so
	// the general-arity generalisation of Algorithm 3 applies): it
	// nails the optimum where the Single approximations hit their
	// worst case.
	tabM := stats.NewTable("Fig. 4 trees under Multiple: generalised Algorithm 3 is optimal",
		"K", "multiple-greedy", "optimum")
	for _, k := range []int{1, 2, 4, 8} {
		res, err := gen.GadgetFig4(k)
		if err != nil {
			log.Fatal(err)
		}
		sol := solve(solver.MultipleGreedy, res.Instance)
		opt := solve(solver.ExactMultiple, res.Instance)
		tabM.AddRow(k, sol.NumReplicas(), opt.NumReplicas())
	}
	fmt.Println(tabM)
}
