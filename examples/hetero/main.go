// Hetero: capacity planning with a mixed appliance fleet. Real
// deployments rarely have the paper's uniform capacity W — edge PoPs
// run small boxes, the core runs big ones. This example plans a
// placement with per-node capacities, compares it against the uniform
// approximation an operator might use instead, and then re-routes the
// final plan for minimal aggregate latency.
//
//	go run ./examples/hetero
package main

import (
	"fmt"
	"log"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/hetero"
	"replicatree/internal/multiple"
	"replicatree/internal/tree"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Two-level hierarchy: core site, 3 edge sites, 3 access networks
	// each.
	b := tree.NewBuilder()
	coreSite := b.Root("core")
	var edges []tree.NodeID
	for e := 0; e < 3; e++ {
		edge := b.Internal(coreSite, 4, fmt.Sprintf("edge%d", e))
		edges = append(edges, edge)
		for a := 0; a < 3; a++ {
			b.Client(edge, 1+rng.Int63n(2), 20+rng.Int63n(60), fmt.Sprintf("acc%d-%d", e, a))
		}
	}
	t := b.MustBuild()

	// Mixed fleet: the core hosts a 400-unit box, edges host 120-unit
	// boxes, access networks can self-serve with small 80-unit boxes.
	caps := make([]int64, t.Len())
	caps[coreSite] = 400
	for _, e := range edges {
		caps[e] = 120
	}
	for _, c := range t.Clients() {
		caps[c] = 80
	}
	in := &hetero.Instance{Tree: t, Cap: caps, DMax: 6}
	fmt.Printf("network: %s, latency budget 6\n", t)
	fmt.Printf("fleet: core 400, edge 120, access 80 units\n\n")

	plan, err := hetero.Solve(in, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heterogeneous optimal plan: %d appliances\n", plan.NumReplicas())
	loads := plan.Loads()
	for _, r := range plan.Replicas {
		fmt.Printf("  %-8s %3d/%d units\n", t.Name(r), loads[r], in.Cap[r])
	}

	// What a uniform-W approximation would do: W = the smallest box
	// that any chosen site could host (a conservative operator's
	// shortcut).
	uni := &core.Instance{Tree: t, W: 120, DMax: 6}
	usol, err := multiple.Greedy(uni)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuniform-W=120 shortcut plan: %d appliances", usol.NumReplicas())
	fmt.Printf(" (the big core box's extra 280 units go unused in the model)\n")

	// Greedy heuristic for comparison with the exact hetero plan.
	g, err := hetero.Greedy(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hetero greedy heuristic:     %d appliances\n", g.NumReplicas())

	// Finally: latency-optimal routing for the uniform plan.
	before := multiple.TotalDistance(t, usol)
	tuned, err := multiple.MinimizeLatency(uni, usol)
	if err != nil {
		log.Fatal(err)
	}
	after := multiple.TotalDistance(t, tuned)
	fmt.Printf("\nlatency re-routing of the uniform plan: total distance %d → %d\n", before, after)
}
