// Benchmarks: one per experiment (E1–E10, matching DESIGN.md's
// per-experiment index) plus scaling series for the three algorithms
// and the supporting substrates. Run with:
//
//	go test -bench=. -benchmem
package replicatree_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/delta"
	"replicatree/internal/exact"
	"replicatree/internal/experiments"
	"replicatree/internal/gen"
	"replicatree/internal/hetero"
	"replicatree/internal/lp"
	"replicatree/internal/multiple"
	"replicatree/internal/service"
	"replicatree/internal/sim"
	"replicatree/internal/single"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// BenchmarkE1_NPGadgetSingle: exact solving of the 3-Partition gadget
// I2 (Theorem 1 / Fig. 1).
func BenchmarkE1_NPGadgetSingle(b *testing.B) {
	in, _, err := gen.GadgetI2([]int64{5, 5, 6, 5, 5, 6}, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SolveSingle(in, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_InapproxGadget: exact solving of the 2-Partition gadget
// I4 (Theorem 2 / Fig. 2).
func BenchmarkE2_InapproxGadget(b *testing.B) {
	in, err := gen.GadgetI4([]int64{3, 3, 2, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SolveSingle(in, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_TightSingleGen: Algorithm 1 on the tight family Im
// (Theorem 3 / Fig. 3).
func BenchmarkE3_TightSingleGen(b *testing.B) {
	res, err := gen.GadgetIm(16, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := single.Gen(res.Instance)
		if err != nil {
			b.Fatal(err)
		}
		if sol.NumReplicas() != res.AlgoReplicas {
			b.Fatalf("ratio drifted: %d != %d", sol.NumReplicas(), res.AlgoReplicas)
		}
	}
}

// BenchmarkE4_NoDRatio: Algorithm 1 on a random NoD instance
// (Corollary 1 regime).
func BenchmarkE4_NoDRatio(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 60, MaxArity: 3, MaxDist: 3, MaxReq: 15, ExtraClients: 30,
	}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := single.Gen(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_TightSingleNoD: Algorithm 2 on the tight family of
// Fig. 4 (Theorem 4).
func BenchmarkE5_TightSingleNoD(b *testing.B) {
	res, err := gen.GadgetFig4(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := single.NoD(res.Instance)
		if err != nil {
			b.Fatal(err)
		}
		if sol.NumReplicas() != res.AlgoReplicas {
			b.Fatalf("ratio drifted: %d != %d", sol.NumReplicas(), res.AlgoReplicas)
		}
	}
}

// BenchmarkE6_NPGadgetMultiple: constructing and verifying the proof's
// explicit 4m-replica solution of the I6 gadget (Theorem 5 / Fig. 5).
func BenchmarkE6_NPGadgetMultiple(b *testing.B) {
	as := []int64{1, 2, 2, 2, 2, 3, 3, 3}
	I := []int{1, 4, 6, 8}
	in, _, err := gen.GadgetI6(as)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := gen.I6Solution(in, as, I)
		if err != nil {
			b.Fatal(err)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_MultipleBinOptimal: Algorithm 3 on a random binary
// instance with distance constraints (Theorem 6 regime).
func BenchmarkE7_MultipleBinOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 100, MaxArity: 2, MaxDist: 3, MaxReq: 15, ExtraClients: 40,
	}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiple.Bin(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_GreedyMultiple: the general-arity generalisation on a
// wide tree.
func BenchmarkE8_GreedyMultiple(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 100, MaxArity: 5, MaxDist: 3, MaxReq: 15, ExtraClients: 60,
	}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiple.Greedy(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_PolicyComparison: the full per-instance pipeline of the
// policy-comparison experiment (all heuristics, no exact solvers).
func BenchmarkE9_PolicyComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 40, MaxArity: 2, MaxDist: 3, MaxReq: 15, ExtraClients: 20,
	}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := single.Gen(in)
		if err != nil {
			b.Fatal(err)
		}
		nd, err := single.NoD(in)
		if err != nil {
			b.Fatal(err)
		}
		_ = single.PushUp(in, nd)
		m, err := multiple.Best(in)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumReplicas() < m.NumReplicas() {
			b.Fatal("Multiple worse than Single heuristic — impossible")
		}
	}
}

// BenchmarkE10_ExperimentSuite: the whole quick-scale experiment
// harness end to end.
func BenchmarkE10_ExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.All(experiments.Quick, 1) {
			if !r.OK {
				b.Fatalf("%s failed to reproduce", r.ID)
			}
		}
	}
}

// Scaling series — the complexity claims of Theorems 3, 4 and 6.

func scalingInstance(n int, arity int) *core.Instance {
	rng := rand.New(rand.NewSource(int64(n)))
	if arity == 2 {
		t := gen.Caterpillar(rng, n, 3, 9)
		return &core.Instance{Tree: t, W: t.MaxRequests() + 20, DMax: core.NoDistance}
	}
	t := gen.RandomTree(rng, gen.TreeConfig{Internals: n, MaxArity: arity, MaxDist: 3, MaxReq: 9})
	return &core.Instance{Tree: t, W: t.MaxRequests() + 20, DMax: core.NoDistance}
}

func BenchmarkScalingSingleGen(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		in := scalingInstance(n, 2)
		b.Run(fmt.Sprintf("nodes=%d", in.Tree.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := single.Gen(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScalingSingleNoD(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		in := scalingInstance(n, 2)
		b.Run(fmt.Sprintf("nodes=%d", in.Tree.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := single.NoD(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScalingMultipleBin(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		in := scalingInstance(n, 2)
		b.Run(fmt.Sprintf("nodes=%d", in.Tree.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := multiple.Bin(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScalingGreedyArity4(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		in := scalingInstance(n, 4)
		b.Run(fmt.Sprintf("nodes=%d", in.Tree.Len()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := multiple.Greedy(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Substrate benchmarks.

func BenchmarkVerify(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 200, MaxArity: 2, MaxDist: 3, MaxReq: 15, ExtraClients: 100,
	}, true)
	sol, err := multiple.Bin(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLowerBound(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 500, MaxArity: 3, MaxDist: 3, MaxReq: 15, ExtraClients: 200,
	}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.LowerBound(in) < 1 {
			b.Fatal("bound collapsed")
		}
	}
}

func BenchmarkExactMultipleSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 4, MaxArity: 2, MaxDist: 3, MaxReq: 9, ExtraClients: 2,
	}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exact.SolveMultiple(in, exact.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension benchmarks (E11/E12 and the new subsystems).

func BenchmarkE11_LPLowerBound(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 15, MaxArity: 3, MaxDist: 3, MaxReq: 9, ExtraClients: 10,
	}, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.LowerBound(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11_BinarizedLowerBound(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 60, MaxArity: 5, MaxDist: 3, MaxReq: 9, ExtraClients: 30,
	}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiple.BinarizedLowerBound(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12_FailureReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 30, MaxArity: 2, MaxDist: 3, MaxReq: 9, ExtraClients: 15,
	}, false)
	sol, err := multiple.Best(in)
	if err != nil {
		b.Fatal(err)
	}
	victim := sol.Replicas[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunWithFailures(in, core.Multiple, sol,
			sim.Config{Steps: 20}, []sim.Failure{{Server: victim, Step: 10}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeLatency(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 40, MaxArity: 2, MaxDist: 4, MaxReq: 12, ExtraClients: 20,
	}, false)
	sol, err := multiple.Best(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiple.MinimizeLatency(in, sol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeteroGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	base := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 20, MaxArity: 3, MaxDist: 3, MaxReq: 9, ExtraClients: 10,
	}, false)
	in := hetero.FromUniform(base)
	for j := range in.Cap {
		if !in.Tree.IsClient(tree.NodeID(j)) {
			in.Cap[j] = base.W + rng.Int63n(base.W)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hetero.Greedy(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinarize(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	t := gen.RandomTree(rng, gen.TreeConfig{
		Internals: 200, MaxArity: 6, MaxDist: 3, MaxReq: 9, ExtraClients: 100,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bz := tree.Binarize(t)
		if !bz.Tree.IsBinary() {
			b.Fatal("not binary")
		}
	}
}

func BenchmarkPushUp(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 40, MaxArity: 2, MaxDist: 3, MaxReq: 12, ExtraClients: 20,
	}, false)
	sol, err := single.Gen(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = single.PushUp(in, sol)
	}
}

// Solver-engine benchmarks: registry dispatch and the parallel batch
// runner that powers the experiment sweeps. The workers=1 series is
// the sequential baseline; workers=max shows the multicore speedup.

func solverBatchTasks() []solver.Task {
	rng := rand.New(rand.NewSource(22))
	names := []string{solver.SingleGen, solver.SingleBest, solver.MultipleBest, solver.MultipleGreedy}
	var tasks []solver.Task
	for i := 0; i < 16; i++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals: 60, MaxArity: 3, MaxDist: 3, MaxReq: 12, ExtraClients: 30,
		}, false)
		for _, name := range names {
			tasks = append(tasks, solver.Task{Engine: solver.MustLookup(name), Request: solver.Request{Instance: in}})
		}
	}
	return tasks
}

func BenchmarkSolverBatch(b *testing.B) {
	tasks := solverBatchTasks()
	for _, workers := range []int{1, 0} {
		label := "workers=max"
		if workers == 1 {
			label = "workers=1"
		}
		b.Run(label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, st := solver.Batch(context.Background(), tasks, solver.Options{Workers: workers})
				if st.Failed > 0 || st.Skipped > 0 {
					b.Fatalf("batch degraded: %+v", st)
				}
			}
		})
	}
}

// Service benchmarks: the HTTP daemon's hot path. The cold series
// disables the cache so every POST /v1/solve pays the full solve;
// the warm series serves the same golden instance from the canonical-
// hash LRU. The warm/cold ratio is the caching layer's whole point —
// the acceptance bar is warm ≥ 10× faster than cold.

// serviceSolveBody renders a POST /v1/solve body for an lp-round
// placement on a ~200-node instance: a solve expensive enough (dense
// simplex) that the cache, not HTTP or JSON, decides the outcome.
func serviceSolveBody(b *testing.B) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 100, MaxArity: 3, MaxDist: 3, MaxReq: 12, ExtraClients: 50,
	}, true)
	body, err := json.Marshal(service.SolveRequest{Solver: solver.LPRound, Instance: in})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

func benchServiceSolve(b *testing.B, path string, cacheSize int) {
	srv := service.New(service.Options{CacheSize: cacheSize})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := serviceSolveBody(b)

	post := func() bool {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		// Both versions' solve responses carry the "cached" flag.
		var sr struct {
			Cached bool `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		return sr.Cached
	}
	warmed := post() // populate the cache (no-op when disabled)
	if wantCached := cacheSize > 0; warmed {
		b.Fatal("first request reported cached")
	} else if cached := post(); cached != wantCached {
		b.Fatalf("cache state: got cached=%v, want %v", cached, wantCached)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
}

func BenchmarkServiceSolveCold(b *testing.B) { benchServiceSolve(b, "/v1/solve", 0) }
func BenchmarkServiceSolveWarm(b *testing.B) {
	benchServiceSolve(b, "/v1/solve", service.DefaultCacheSize)
}

// The /v2 series share the engine path and cache with /v1; parity
// between the two warm series is the adapter's no-overhead claim.
func BenchmarkServiceSolveV2Cold(b *testing.B) { benchServiceSolve(b, "/v2/solve", 0) }
func BenchmarkServiceSolveV2Warm(b *testing.B) {
	benchServiceSolve(b, "/v2/solve", service.DefaultCacheSize)
}

func BenchmarkCanonicalHash(b *testing.B) {
	in := scalingInstance(1600, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if in.CanonicalHash() == "" {
			b.Fatal("empty hash")
		}
	}
}

// BenchmarkSolverRegistryGet pins the deprecated v1 dispatch shim,
// which must not regress while it exists.
func BenchmarkSolverRegistryGet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		//lint:ignore SA1019 the benchmark exists to pin the deprecated shim's cost
		if _, err := solver.Get(solver.MultipleBest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverRegistryLookup is the v2 dispatch path: name →
// engine. It must stay on par with the v1 Get shim (both are one
// RLock'd map read).
func BenchmarkSolverRegistryLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := solver.Lookup(solver.MultipleBest); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolverEngineSolve measures the per-solve overhead of the
// v2 engine wrapper (request normalization + report assembly) around
// a cheap polynomial solve.
func BenchmarkSolverEngineSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 60, MaxArity: 3, MaxDist: 3, MaxReq: 12, ExtraClients: 30,
	}, false)
	eng := solver.MustLookup(solver.MultipleGreedy)
	req := solver.Request{Instance: in}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAutoPortfolio runs the capability-driven portfolio on a
// mid-size distance-constrained instance (exact candidates excluded
// by the size gate): the price of "best of every heuristic".
func BenchmarkAutoPortfolio(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 120, MaxArity: 3, MaxDist: 3, MaxReq: 12, ExtraClients: 60,
	}, true)
	eng := solver.MustLookup(solver.Auto)
	req := solver.Request{Instance: in}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Solution == nil {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkE13_ConjectureProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 40, MaxArity: 2, MaxDist: 3, MaxReq: 12, ExtraClients: 20,
	}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := single.NoDBest(in); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWarmSolve measures Engine.Solve on a ~200-node binary instance
// through the public seam, cold (fresh heap per solve) or warm
// (scratch-backed session buffers, zero allocations once ingested).
// The cold/warm pairs are the recorded trajectory of BENCH_008.json
// (cmd/benchrec runs the same shapes).
func benchWarmSolve(b *testing.B, name string, warm bool) {
	rng := rand.New(rand.NewSource(97))
	eng := solver.MustLookup(name)
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 150, MaxArity: 2, MaxDist: 4, MaxReq: 10,
	}, eng.Capabilities().SupportsDMax)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	req := solver.Request{Instance: in}
	if warm {
		req.Scratch = solver.NewScratch()
	}
	ctx := context.Background()
	if _, err := eng.Solve(ctx, req); err != nil { // ingest + grow buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Solve(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Solution == nil {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkWarmSingleGenCold(b *testing.B)      { benchWarmSolve(b, solver.SingleGen, false) }
func BenchmarkWarmSingleGenWarm(b *testing.B)      { benchWarmSolve(b, solver.SingleGen, true) }
func BenchmarkWarmSingleNoDCold(b *testing.B)      { benchWarmSolve(b, solver.SingleNoD, false) }
func BenchmarkWarmSingleNoDWarm(b *testing.B)      { benchWarmSolve(b, solver.SingleNoD, true) }
func BenchmarkWarmMultipleBinCold(b *testing.B)    { benchWarmSolve(b, solver.MultipleBin, false) }
func BenchmarkWarmMultipleBinWarm(b *testing.B)    { benchWarmSolve(b, solver.MultipleBin, true) }
func BenchmarkWarmMultipleGreedyCold(b *testing.B) { benchWarmSolve(b, solver.MultipleGreedy, false) }
func BenchmarkWarmMultipleGreedyWarm(b *testing.B) { benchWarmSolve(b, solver.MultipleGreedy, true) }
func BenchmarkWarmLPRoundCold(b *testing.B)        { benchWarmSolve(b, solver.LPRound, false) }
func BenchmarkWarmLPRoundWarm(b *testing.B)        { benchWarmSolve(b, solver.LPRound, true) }

// benchDeltaMutate measures one mutate-and-re-solve cycle at three
// service levels: "cold" re-solves the mutated instance from scratch
// (fresh allocations), "warm" re-solves on pooled scratch buffers, and
// "delta" drives a delta.Session whose incremental core recomputes
// only the dirtied root paths. The ≥10× delta-vs-cold separation on
// the 2k-node tree is an acceptance bar recorded in BENCH_008.json.
func benchDeltaMutate(b *testing.B, internals int, mode string) {
	rng := rand.New(rand.NewSource(97))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: internals, MaxArity: 2, MaxDist: 4, MaxReq: 10,
	}, true)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	clients := in.Tree.Clients()
	ctx := context.Background()

	if mode == "delta" {
		s, err := delta.New(in, solver.SingleGen)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		if _, err := s.Resolve(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := clients[i%len(clients)]
			if err := s.Apply([]delta.Mutation{{Op: delta.OpSetRequest, Node: c, Requests: int64(1 + i%10)}}); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(ctx); err != nil {
				b.Fatal(err)
			}
		}
		return
	}

	eng := solver.MustLookup(solver.SingleGen)
	ed := tree.NewEditor(in.Tree)
	work := &core.Instance{Tree: ed.Tree(), W: in.W, DMax: in.DMax}
	req := solver.Request{Instance: work}
	if mode == "warm" {
		req.Scratch = solver.NewScratch()
	}
	if _, err := eng.Solve(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := clients[i%len(clients)]
		if err := ed.SetRequests(c, int64(1+i%10)); err != nil {
			b.Fatal(err)
		}
		// A fresh wrapper forces scratch re-ingestion of the mutated
		// tree, mirroring what a stateless consumer would do.
		req.Instance = &core.Instance{Tree: ed.Tree(), W: in.W, DMax: in.DMax}
		if _, err := eng.Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaColdSolve200(b *testing.B) { benchDeltaMutate(b, 150, "cold") }
func BenchmarkDeltaWarmSolve200(b *testing.B) { benchDeltaMutate(b, 150, "warm") }
func BenchmarkDeltaMutate200(b *testing.B)    { benchDeltaMutate(b, 150, "delta") }
func BenchmarkDeltaColdSolve2k(b *testing.B)  { benchDeltaMutate(b, 1500, "cold") }
func BenchmarkDeltaWarmSolve2k(b *testing.B)  { benchDeltaMutate(b, 1500, "warm") }
func BenchmarkDeltaMutate2k(b *testing.B)     { benchDeltaMutate(b, 1500, "delta") }
