//go:build race || msan || asan

package replicatree_test

import "testing"

// skipIfInstrumented skips allocation-count assertions under the
// sanitizers: their shadow-memory bookkeeping allocates on paths the
// plain runtime keeps allocation-free.
func skipIfInstrumented(t *testing.T) {
	t.Skip("sanitizer instrumentation allocates; alloc gate runs in plain builds")
}
