package replicatree_test

// Decomposition parity over the golden corpus: on instances small
// enough that every whole-tree engine solves them, the decomposition
// pipeline forced down to tiny pieces must still produce feasible
// placements with the exact same lower bound. This file also links
// internal/decomp into the root test binary, so the golden manifest's
// decomp rows resolve in TestGoldenCorpus.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/decomp"
	"replicatree/internal/tree"
)

func TestDecompGoldenParity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	checked := 0
	for _, f := range files {
		if filepath.Base(f) == "manifest.json" {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !in.FitsLocally() {
			// The default inner engine (multiple-greedy) requires
			// ri ≤ W; the corpus gadgets that violate it are exact-only
			// territory, matching their missing decomp manifest rows.
			continue
		}
		fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
		for _, target := range []int{4, 16} {
			res, err := decomp.SolveFlat(ctx, fi, decomp.Options{TargetPieceSize: target, Verify: true})
			if err != nil {
				t.Errorf("%s target %d: %v", f, target, err)
				continue
			}
			if err := core.Verify(&in, core.Multiple, res.Solution); err != nil {
				t.Errorf("%s target %d: infeasible: %v", f, target, err)
			}
			if want := core.LowerBound(&in); res.LowerBound != want {
				t.Errorf("%s target %d: lower bound %d, want %d", f, target, res.LowerBound, want)
			}
			if res.Replicas < res.LowerBound {
				t.Errorf("%s target %d: replicas %d below the bound %d", f, target, res.Replicas, res.LowerBound)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d corpus solves ran; corpus missing?", checked)
	}
}
