// Command treegen generates replica placement instances as JSON, for
// piping into the replica solver or archiving as workloads.
//
// Usage:
//
//	treegen -kind random -internals 10 -arity 3 -seed 7
//	treegen -kind binary -internals 12
//	treegen -kind im -m 4 -delta 3          # Fig. 3 tight family
//	treegen -kind fig4 -k 8                 # Fig. 4 tight family
//	treegen -kind i2 -m 2 -b 16 -seed 1     # 3-Partition gadget (YES instance)
//	treegen -kind i6 -m 3 -seed 1           # 2-Partition-Equal gadget
//
// Huge trees: -nodes generates a random instance of ~that many total
// nodes directly in flat form (no pointer tree), and -stream emits
// the chunked wire format (core.WriteChunked) that cmd/replica
// ingests with -stream — a million-node instance never exists as one
// JSON blob on either side:
//
//	treegen -nodes 1000000 -stream -seed 42 | replica -solver decomp -stream
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "treegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("treegen", flag.ContinueOnError)
	kind := fs.String("kind", "random", "random|binary|caterpillar|i2|i4|im|fig4|i6")
	seed := fs.Int64("seed", 1, "random seed")
	internals := fs.Int("internals", 8, "internal node count (random kinds)")
	arity := fs.Int("arity", 3, "max arity (random kind)")
	maxDist := fs.Int64("maxdist", 3, "max edge length (random kinds)")
	maxReq := fs.Int64("maxreq", 10, "max client requests (random kinds)")
	extra := fs.Int("extra", 4, "extra clients (random kinds)")
	withD := fs.Bool("distance", false, "draw a finite dmax (random kinds)")
	m := fs.Int("m", 2, "gadget parameter m")
	b := fs.Int64("b", 16, "gadget parameter B (i2)")
	delta := fs.Int("delta", 2, "gadget parameter Δ (im)")
	k := fs.Int("k", 4, "gadget parameter K (fig4)")
	nodes := fs.Int("nodes", 0, "generate ~this many total nodes in flat form (overrides -kind; use with -stream for huge trees)")
	stream := fs.Bool("stream", false, "emit the streaming chunked format instead of one JSON document")
	chunk := fs.Int("chunk", 0, "nodes per chunk with -stream (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	if *nodes > 0 {
		cfg := gen.TreeConfig{MaxArity: *arity, MaxDist: *maxDist, MaxReq: *maxReq}
		fi, err := gen.RandomFlatInstance(rng, *nodes, cfg, *withD)
		if err != nil {
			return err
		}
		return emitFlat(stdout, fi, *stream, *chunk)
	}

	var in *core.Instance
	switch *kind {
	case "random", "binary", "caterpillar":
		cfg := gen.TreeConfig{
			Internals:    *internals,
			MaxArity:     *arity,
			MaxDist:      *maxDist,
			MaxReq:       *maxReq,
			ExtraClients: *extra,
		}
		switch *kind {
		case "binary":
			cfg.MaxArity = 2
		case "caterpillar":
			t := gen.Caterpillar(rng, *internals, *maxDist, *maxReq)
			in = &core.Instance{Tree: t, W: t.MaxRequests() + rng.Int63n(t.TotalRequests()/2+1), DMax: core.NoDistance}
		}
		if in == nil {
			in = gen.RandomInstance(rng, cfg, *withD)
		}
	case "i2":
		as := gen.ThreePartitionYes(rng, *m, *b)
		var err error
		in, _, err = gen.GadgetI2(as, *b)
		if err != nil {
			return err
		}
	case "i4":
		as := gen.TwoPartitionYes(rng, *m, 9)
		var err error
		in, err = gen.GadgetI4(as)
		if err != nil {
			return err
		}
	case "im":
		res, err := gen.GadgetIm(*m, *delta)
		if err != nil {
			return err
		}
		in = res.Instance
	case "fig4":
		res, err := gen.GadgetFig4(*k)
		if err != nil {
			return err
		}
		in = res.Instance
	case "i6":
		as := gen.TwoPartitionEqualYes(rng, *m, 9)
		var err error
		in, _, err = gen.GadgetI6(as)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}

	if *stream {
		fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
		return emitFlat(stdout, fi, true, *chunk)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// emitFlat writes a flat instance either chunked (buffered — a
// million-node stream is tens of MB of small writes) or as the
// classic single-document instance JSON.
func emitFlat(stdout io.Writer, fi *core.FlatInstance, stream bool, chunk int) error {
	if stream {
		bw := bufio.NewWriterSize(stdout, 1<<20)
		if err := core.WriteChunked(bw, fi, chunk); err != nil {
			return err
		}
		return bw.Flush()
	}
	in, err := fi.Instance()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}
