package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"replicatree/internal/core"
)

func TestGenerateAllKinds(t *testing.T) {
	cases := [][]string{
		{"-kind", "random", "-internals", "6", "-seed", "3"},
		{"-kind", "random", "-distance"},
		{"-kind", "binary", "-internals", "8"},
		{"-kind", "caterpillar", "-internals", "5"},
		{"-kind", "i2", "-m", "2", "-b", "16"},
		{"-kind", "i4", "-m", "3"},
		{"-kind", "im", "-m", "2", "-delta", "3"},
		{"-kind", "fig4", "-k", "5"},
		{"-kind", "i6", "-m", "3"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		var in core.Instance
		if err := json.Unmarshal(out.Bytes(), &in); err != nil {
			t.Fatalf("%v: output not a valid instance: %v", args, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%v: invalid instance: %v", args, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-kind", "random", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "random", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must generate identical output")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := run([]string{"-kind", "im", "-delta", "1"}, &out); err == nil {
		t.Error("Δ=1 should fail")
	}
}
