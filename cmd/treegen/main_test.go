package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"replicatree/internal/core"
)

func TestGenerateAllKinds(t *testing.T) {
	cases := [][]string{
		{"-kind", "random", "-internals", "6", "-seed", "3"},
		{"-kind", "random", "-distance"},
		{"-kind", "binary", "-internals", "8"},
		{"-kind", "caterpillar", "-internals", "5"},
		{"-kind", "i2", "-m", "2", "-b", "16"},
		{"-kind", "i4", "-m", "3"},
		{"-kind", "im", "-m", "2", "-delta", "3"},
		{"-kind", "fig4", "-k", "5"},
		{"-kind", "i6", "-m", "3"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		var in core.Instance
		if err := json.Unmarshal(out.Bytes(), &in); err != nil {
			t.Fatalf("%v: output not a valid instance: %v", args, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%v: invalid instance: %v", args, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-kind", "random", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "random", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed must generate identical output")
	}
}

// TestGenerateFlatNodes: the -nodes path must be deterministic per
// seed, parse back through the chunked reader with -stream, and land
// near the requested node budget.
func TestGenerateFlatNodes(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-nodes", "5000", "-stream", "-seed", "42"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed must generate an identical stream")
	}
	fi, err := core.ReadChunked(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("stream does not parse back: %v", err)
	}
	if n := fi.Flat.Len(); n < 4000 || n > 5000 {
		t.Fatalf("generated %d nodes for a budget of 5000", n)
	}
	// Without -stream the same generator emits classic instance JSON.
	var c bytes.Buffer
	if err := run([]string{"-nodes", "200", "-seed", "42"}, &c); err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(c.Bytes(), &in); err != nil {
		t.Fatalf("-nodes without -stream is not instance JSON: %v", err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGenerateLegacyKindStream: -stream also works for the classic
// kinds, flattening the pointer tree into the chunked format.
func TestGenerateLegacyKindStream(t *testing.T) {
	var plain, streamed bytes.Buffer
	if err := run([]string{"-kind", "binary", "-internals", "8", "-seed", "5"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-kind", "binary", "-internals", "8", "-seed", "5", "-stream"}, &streamed); err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(plain.Bytes(), &in); err != nil {
		t.Fatal(err)
	}
	fi, err := core.ReadChunked(bytes.NewReader(streamed.Bytes()))
	if err != nil {
		t.Fatalf("streamed legacy kind does not parse: %v", err)
	}
	rt, err := fi.Instance()
	if err != nil {
		t.Fatal(err)
	}
	if rt.CanonicalHash() != in.CanonicalHash() {
		t.Fatal("streamed instance differs from the plain JSON instance")
	}
}

func TestGenerateErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-kind", "nope"}, &out); err == nil {
		t.Error("unknown kind should fail")
	}
	if err := run([]string{"-kind", "im", "-delta", "1"}, &out); err == nil {
		t.Error("Δ=1 should fail")
	}
}
