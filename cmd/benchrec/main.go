// Command benchrec records the cold-vs-warm solve benchmark
// trajectory as a machine-readable JSON document. It runs the same
// shapes as the BenchmarkWarm* series in bench_test.go — Engine.Solve
// on a ~200-node binary instance, once allocating per solve (cold)
// and once on scratch-backed session buffers (warm) — via
// testing.Benchmark, and writes ns/op, B/op and allocs/op per
// (engine, mode) pair.
//
// The committed BENCH_006.json at the repository root is a recorded
// run of this command; CI re-runs it on every push and uploads the
// fresh document as a build artifact, so the trajectory of the
// zero-alloc hot path stays observable over time without gating merges
// on machine-dependent numbers.
//
// Usage:
//
//	benchrec                  # writes BENCH_006.json
//	benchrec -o out.json      # custom output path
//	benchrec -benchtime 200ms # faster, noisier (CI smoke uses this)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
)

// Schema identifies the document layout for downstream tooling.
const Schema = "replicatree-bench/v1"

// warmEngines is the scratch-capable engine set (mirrors the
// TestAllocs gate in warm_test.go).
var warmEngines = []string{
	solver.SingleGen,
	solver.SingleNoD,
	solver.MultipleBin,
	solver.MultipleLazy,
	solver.MultipleBest,
	solver.MultipleGreedy,
	solver.LPRound,
}

// Document is the recorded benchmark file.
type Document struct {
	Schema   string   `json:"schema"`
	Go       string   `json:"go"`
	GOOS     string   `json:"goos"`
	GOARCH   string   `json:"goarch"`
	Instance Shape    `json:"instance"`
	Results  []Result `json:"results"`
}

// Shape describes the benchmark instance.
type Shape struct {
	Nodes   int   `json:"nodes"`
	Clients int   `json:"clients"`
	W       int64 `json:"w"`
	DMax    int64 `json:"dmax,omitempty"` // omitted on the NoD twin
}

// Result is one (engine, mode) measurement.
type Result struct {
	Engine      string  `json:"engine"`
	Mode        string  `json:"mode"` // "cold" | "warm"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
}

// benchInstance is the ~200-node binary instance of the BenchmarkWarm*
// series: seed 97, binary so multiple-bin applies, W ≥ max rᵢ so the
// Multiple preconditions hold.
func benchInstance(withDistance bool) *core.Instance {
	rng := rand.New(rand.NewSource(97))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 150, MaxArity: 2, MaxDist: 4, MaxReq: 10,
	}, withDistance)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	return in
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchrec", flag.ContinueOnError)
	out := fs.String("o", "BENCH_006.json", "output path ('-' for stdout)")
	benchtime := fs.Duration("benchtime", time.Second, "target run time per (engine, mode) measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// testing.Benchmark reads the test.benchtime flag that `go test`
	// normally registers; in a plain binary the testing flags must be
	// installed explicitly first.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}

	dist := benchInstance(true)
	doc := Document{
		Schema: Schema,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Instance: Shape{
			Nodes:   dist.Tree.Len(),
			Clients: len(dist.Tree.Clients()),
			W:       dist.W,
			DMax:    dist.DMax,
		},
	}
	ctx := context.Background()
	for _, name := range warmEngines {
		eng, err := solver.Lookup(name)
		if err != nil {
			return err
		}
		in := dist
		if !eng.Capabilities().SupportsDMax {
			in = benchInstance(false)
		}
		for _, mode := range []string{"cold", "warm"} {
			req := solver.Request{Instance: in}
			if mode == "warm" {
				req.Scratch = solver.NewScratch()
			}
			if _, err := eng.Solve(ctx, req); err != nil { // ingest + grow buffers
				return fmt.Errorf("%s %s: %v", name, mode, err)
			}
			var solveErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep, err := eng.Solve(ctx, req)
					if err != nil {
						solveErr = err
						b.FailNow()
					}
					if rep.Solution == nil {
						solveErr = fmt.Errorf("empty report")
						b.FailNow()
					}
				}
			})
			if solveErr != nil {
				return fmt.Errorf("%s %s: %v", name, mode, solveErr)
			}
			doc.Results = append(doc.Results, Result{
				Engine:      name,
				Mode:        mode,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-16s %-4s %12.0f ns/op %8d B/op %6d allocs/op\n",
				name, mode, doc.Results[len(doc.Results)-1].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp())
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}
