// Command benchrec records the solve benchmark trajectory as a
// machine-readable JSON document. Two series:
//
//   - cold vs warm: the BenchmarkWarm* shapes of bench_test.go —
//     Engine.Solve on a ~200-node binary instance, once allocating per
//     solve (cold) and once on scratch-backed session buffers (warm).
//
//   - delta: the BenchmarkDelta* shapes — one mutate-and-re-solve
//     cycle on ~200- and ~2k-node trees, as a cold solve, a warm
//     solve, and a delta.Session incremental resolve. The committed
//     document pins the instance-session acceptance bar: delta ≥10×
//     faster than cold on the 2k-node tree.
//
//   - fleet: closed-loop Zipf replays against an in-process fleet
//     (1 worker vs 4 workers; the keyspace is ~2.5× one worker's
//     tier-1 capacity, so partitioning it across the ring is what the
//     4-worker run buys), plus a failover sweep that crash-stops the
//     busiest member and measures the re-warm. The committed document
//     pins the fleet acceptance bars: 4 workers sustain ≥2× the
//     single-worker warm throughput, and the failover sweep finishes
//     with zero errors.
//
//   - decomp: single-run wall-clock solves of huge generated trees
//     (~100k and, by default, one million nodes) through the subtree
//     decomposition engine, recording piece counts, coordination
//     activity and the gap against the subtree-sum lower bound. The
//     committed document pins the huge-tree acceptance bar: the
//     million-node solve completes well inside 120 s.
//
// The committed BENCH_009.json at the repository root is a recorded
// run of this command; CI re-runs it on every push and uploads the
// fresh document as a build artifact, so the trajectory of the
// zero-alloc hot path stays observable over time without gating merges
// on machine-dependent numbers.
//
// Usage:
//
//	benchrec                  # writes BENCH_009.json
//	benchrec -o out.json      # custom output path
//	benchrec -benchtime 200ms # faster, noisier (CI smoke uses this)
//	benchrec -decomp-nodes 0  # skip the million-node decomp solve
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/decomp"
	"replicatree/internal/delta"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// Schema identifies the document layout for downstream tooling
// (v2 added the delta mutate-and-re-solve series; v3 the fleet
// throughput and failover series; v4 the huge-tree decomposition
// series).
const Schema = "replicatree-bench/v4"

// warmEngines is the scratch-capable engine set (mirrors the
// TestAllocs gate in warm_test.go).
var warmEngines = []string{
	solver.SingleGen,
	solver.SingleNoD,
	solver.MultipleBin,
	solver.MultipleLazy,
	solver.MultipleBest,
	solver.MultipleGreedy,
	solver.LPRound,
}

// Document is the recorded benchmark file.
type Document struct {
	Schema   string   `json:"schema"`
	Go       string   `json:"go"`
	GOOS     string   `json:"goos"`
	GOARCH   string   `json:"goarch"`
	Instance Shape    `json:"instance"`
	Results  []Result `json:"results"`
	// Delta is the mutate-and-re-solve series: one mutation + re-solve
	// cycle per op, per tree size and service level.
	Delta []DeltaResult `json:"delta"`
	// Fleet is the sharded-fleet series: Zipf replays at 1 and 4
	// workers plus the post-crash failover sweep.
	Fleet []FleetResult `json:"fleet"`
	// Decomp is the huge-tree series: single-run wall-clock solves
	// through the subtree decomposition engine.
	Decomp []DecompResult `json:"decomp"`
}

// DecompResult is one huge-tree decomposition solve. Wall-clock is a
// single run — at a million nodes the solve itself is the repetition.
type DecompResult struct {
	Nodes      int     `json:"nodes"`
	Clients    int     `json:"clients"`
	Pieces     int     `json:"pieces"`
	Merged     int     `json:"merged"`
	Rounds     int     `json:"rounds"`
	Moved      int     `json:"moved"`
	Workers    int     `json:"workers"`
	Replicas   int     `json:"replicas"`
	LowerBound int     `json:"lower_bound"`
	Gap        float64 `json:"gap"`
	WallMs     float64 `json:"wall_ms"`
}

// DeltaResult is one (nodes, mode) mutate-and-re-solve measurement.
// Mode "cold" re-solves the mutated instance from scratch, "warm"
// re-solves on pooled scratch buffers, "delta" resolves incrementally
// through a delta.Session.
type DeltaResult struct {
	Engine      string  `json:"engine"`
	Mode        string  `json:"mode"` // "cold" | "warm" | "delta"
	Nodes       int     `json:"nodes"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Shape describes the benchmark instance.
type Shape struct {
	Nodes   int   `json:"nodes"`
	Clients int   `json:"clients"`
	W       int64 `json:"w"`
	DMax    int64 `json:"dmax,omitempty"` // omitted on the NoD twin
}

// Result is one (engine, mode) measurement.
type Result struct {
	Engine      string  `json:"engine"`
	Mode        string  `json:"mode"` // "cold" | "warm"
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchrec:", err)
		os.Exit(1)
	}
}

// benchInstance is the ~200-node binary instance of the BenchmarkWarm*
// series: seed 97, binary so multiple-bin applies, W ≥ max rᵢ so the
// Multiple preconditions hold.
func benchInstance(withDistance bool) *core.Instance {
	rng := rand.New(rand.NewSource(97))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 150, MaxArity: 2, MaxDist: 4, MaxReq: 10,
	}, withDistance)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	return in
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchrec", flag.ContinueOnError)
	out := fs.String("o", "BENCH_009.json", "output path ('-' for stdout)")
	benchtime := fs.Duration("benchtime", time.Second, "target run time per (engine, mode) measurement")
	fleetDur := fs.Duration("fleet-duration", 3*time.Second, "measured window per fleet throughput scenario")
	decompNodes := fs.Int("decomp-nodes", 1_000_000, "largest decomp solve size (0 skips the large solve; the ~100k solve always runs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// testing.Benchmark reads the test.benchtime flag that `go test`
	// normally registers; in a plain binary the testing flags must be
	// installed explicitly first.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		return err
	}

	dist := benchInstance(true)
	doc := Document{
		Schema: Schema,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Instance: Shape{
			Nodes:   dist.Tree.Len(),
			Clients: len(dist.Tree.Clients()),
			W:       dist.W,
			DMax:    dist.DMax,
		},
	}
	ctx := context.Background()
	for _, name := range warmEngines {
		eng, err := solver.Lookup(name)
		if err != nil {
			return err
		}
		in := dist
		if !eng.Capabilities().SupportsDMax {
			in = benchInstance(false)
		}
		for _, mode := range []string{"cold", "warm"} {
			req := solver.Request{Instance: in}
			if mode == "warm" {
				req.Scratch = solver.NewScratch()
			}
			if _, err := eng.Solve(ctx, req); err != nil { // ingest + grow buffers
				return fmt.Errorf("%s %s: %v", name, mode, err)
			}
			var solveErr error
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep, err := eng.Solve(ctx, req)
					if err != nil {
						solveErr = err
						b.FailNow()
					}
					if rep.Solution == nil {
						solveErr = fmt.Errorf("empty report")
						b.FailNow()
					}
				}
			})
			if solveErr != nil {
				return fmt.Errorf("%s %s: %v", name, mode, solveErr)
			}
			doc.Results = append(doc.Results, Result{
				Engine:      name,
				Mode:        mode,
				Iterations:  r.N,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			})
			fmt.Fprintf(os.Stderr, "%-16s %-4s %12.0f ns/op %8d B/op %6d allocs/op\n",
				name, mode, doc.Results[len(doc.Results)-1].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp())
		}
	}

	for _, internals := range []int{150, 1500} {
		for _, mode := range []string{"cold", "warm", "delta"} {
			res, err := measureDelta(ctx, internals, mode)
			if err != nil {
				return err
			}
			doc.Delta = append(doc.Delta, res)
			fmt.Fprintf(os.Stderr, "%-16s %-5s %5d nodes %12.0f ns/op %8d B/op %6d allocs/op\n",
				"delta/"+solver.SingleGen, mode, res.Nodes, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}

	for _, workers := range []int{1, 4} {
		res, err := measureFleetThroughput(workers, *fleetDur)
		if err != nil {
			return err
		}
		doc.Fleet = append(doc.Fleet, res)
		fmt.Fprintf(os.Stderr, "%-16s %dw %9.0f rps  p50=%.2fms p95=%.2fms hit=%.3f t2=%d errs=%d\n",
			"fleet/"+res.Scenario, res.Workers, res.AchievedRPS, res.P50Ms, res.P95Ms, res.HitRate, res.Tier2Hits, res.Errors)
	}
	fo, err := measureFleetFailover()
	if err != nil {
		return err
	}
	doc.Fleet = append(doc.Fleet, fo)
	fmt.Fprintf(os.Stderr, "%-16s %dw recovery=%.0fms warm-hits=%d/%d failovers=%d errs=%d\n",
		"fleet/"+fo.Scenario, fo.Workers, fo.RecoveryMs, fo.CachedWarmHits, fo.Requests, fo.Failovers, fo.Errors)

	sizes := []int{100_000}
	if *decompNodes > 0 {
		sizes = append(sizes, *decompNodes)
	}
	for _, nodes := range sizes {
		dres, err := measureDecomp(ctx, nodes)
		if err != nil {
			return err
		}
		doc.Decomp = append(doc.Decomp, dres)
		fmt.Fprintf(os.Stderr, "%-16s %8d nodes %5d pieces %2d rounds  %d replicas (lb %d, gap %.3f)  %.0f ms\n",
			"decomp", dres.Nodes, dres.Pieces, dres.Rounds, dres.Replicas, dres.LowerBound, dres.Gap, dres.WallMs)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// measureDecomp generates a ~nodes-node flat instance (seed 42, the
// documented huge-tree seed) and solves it once through the
// decomposition pipeline, verification on — the recorded wall-clock
// covers partition, piece solves, coordination and the final check.
func measureDecomp(ctx context.Context, nodes int) (DecompResult, error) {
	rng := rand.New(rand.NewSource(42))
	fi, err := gen.RandomFlatInstance(rng, nodes, gen.TreeConfig{}, false)
	if err != nil {
		return DecompResult{}, err
	}
	begin := time.Now()
	res, err := decomp.SolveFlat(ctx, fi, decomp.Options{Verify: true})
	if err != nil {
		return DecompResult{}, fmt.Errorf("decomp %d nodes: %v", nodes, err)
	}
	return DecompResult{
		Nodes:      fi.Flat.Len(),
		Clients:    fi.Flat.NumClients(),
		Pieces:     res.Pieces,
		Merged:     res.Merged,
		Rounds:     res.Rounds,
		Moved:      res.Moved,
		Workers:    res.Workers,
		Replicas:   res.Replicas,
		LowerBound: res.LowerBound,
		Gap:        res.Gap,
		WallMs:     float64(time.Since(begin).Microseconds()) / 1000,
	}, nil
}

// deltaInstance mirrors the BenchmarkDelta* instance: a seed-97
// binary tree with the requested internal-node count.
func deltaInstance(internals int) *core.Instance {
	rng := rand.New(rand.NewSource(97))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: internals, MaxArity: 2, MaxDist: 4, MaxReq: 10,
	}, true)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	return in
}

// measureDelta benchmarks one mutate-and-re-solve cycle (mirrors
// benchDeltaMutate in bench_test.go).
func measureDelta(ctx context.Context, internals int, mode string) (DeltaResult, error) {
	in := deltaInstance(internals)
	clients := in.Tree.Clients()
	res := DeltaResult{Engine: solver.SingleGen, Mode: mode, Nodes: in.Tree.Len()}

	var benchErr error
	var r testing.BenchmarkResult
	if mode == "delta" {
		s, err := delta.New(in, solver.SingleGen)
		if err != nil {
			return res, err
		}
		defer s.Close()
		if _, err := s.Resolve(ctx); err != nil {
			return res, err
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := clients[i%len(clients)]
				if err := s.Apply([]delta.Mutation{{Op: delta.OpSetRequest, Node: c, Requests: int64(1 + i%10)}}); err != nil {
					benchErr = err
					b.FailNow()
				}
				if _, err := s.Resolve(ctx); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
	} else {
		eng := solver.MustLookup(solver.SingleGen)
		ed := tree.NewEditor(in.Tree)
		req := solver.Request{Instance: &core.Instance{Tree: ed.Tree(), W: in.W, DMax: in.DMax}}
		if mode == "warm" {
			req.Scratch = solver.NewScratch()
		}
		if _, err := eng.Solve(ctx, req); err != nil {
			return res, err
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := clients[i%len(clients)]
				if err := ed.SetRequests(c, int64(1+i%10)); err != nil {
					benchErr = err
					b.FailNow()
				}
				// A fresh wrapper forces scratch re-ingestion of the
				// mutated tree.
				req.Instance = &core.Instance{Tree: ed.Tree(), W: in.W, DMax: in.DMax}
				if _, err := eng.Solve(ctx, req); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
	}
	if benchErr != nil {
		return res, fmt.Errorf("delta %s (%d nodes): %v", mode, res.Nodes, benchErr)
	}
	res.Iterations = r.N
	res.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	res.BytesPerOp = r.AllocedBytesPerOp()
	res.AllocsPerOp = r.AllocsPerOp()
	return res, nil
}
