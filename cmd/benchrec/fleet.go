package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/fleet"
	"replicatree/internal/gen"
	"replicatree/internal/service"
	"replicatree/internal/solver"
)

// FleetResult is one fleet-series measurement: a closed-loop Zipf
// replay against an in-process fleet (router.ServeHTTP, no sockets),
// or the failover sweep after a worker crash.
type FleetResult struct {
	Scenario    string  `json:"scenario"` // "throughput" | "failover"
	Workers     int     `json:"workers"`
	Replication int     `json:"replication"`
	Keys        int     `json:"keys"`
	CachePer    int     `json:"cache_per_worker"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	HitRate     float64 `json:"hit_rate"`
	Tier2Hits   uint64  `json:"tier2_hits"`
	Failovers   uint64  `json:"failovers"`
	// Failover-scenario only: wall-clock to sweep the dead worker's
	// keyspace back warm, and how many of those responses came from
	// gossiped replicas rather than re-solves.
	RecoveryMs     float64 `json:"recovery_ms,omitempty"`
	CachedWarmHits int     `json:"cached_warm_hits,omitempty"`
}

// fleetKeys and fleetCachePer set up the contrast the fleet series
// measures: the keyspace is ~2.5× one worker's tier-1 capacity, so a
// single worker thrashes its LRU against lp-round's multi-millisecond
// misses while a 4-worker fleet partitions the keyspace
// (4 × 64 entries ≥ 160 keys) and stays warm. Aggregate cache
// capacity, not raw CPU, is what the 4-worker configuration buys —
// the ≥2× throughput bar holds on one core.
//
// The throughput scenarios run replication 0 on purpose: every
// gossiped copy occupies a tier-1 slot, so K replicas divide the
// aggregate unique capacity by K+1 — a 4×64 fleet at K=2 can hold
// only ~85 distinct keys and thrashes like the single worker. That
// capacity/availability trade belongs to the failover scenario,
// which runs K=2 with caches sized for the replicated working set.
const (
	fleetKeys      = 160
	fleetCachePer  = 64
	fleetInternals = 300 // ~420-node trees: a cold lp-round (~40ms)
	// costs ~60× the request's fixed JSON-decode overhead, so the
	// hit-rate difference dominates the measured throughput.
	fleetEngine  = solver.LPRound
	fleetClients = 8
)

// fleetKeyspace builds the replay corpus: distinct random instances
// (seeded, so the document is reproducible) pre-marshalled as /v2
// solve bodies.
func fleetKeyspace() ([][]byte, []*core.Instance, error) {
	bodies := make([][]byte, 0, fleetKeys)
	instances := make([]*core.Instance, 0, fleetKeys)
	for k := 0; k < fleetKeys; k++ {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals: fleetInternals, MaxArity: 2, MaxDist: 4, MaxReq: 10,
		}, true)
		if in.W < in.Tree.MaxRequests() {
			in.W = in.Tree.MaxRequests()
		}
		body, err := json.Marshal(service.SolveRequestV2{Solver: fleetEngine, Instance: in})
		if err != nil {
			return nil, nil, err
		}
		bodies = append(bodies, body)
		instances = append(instances, in)
	}
	return bodies, instances, nil
}

// postSolve drives one request through the router without a socket.
func postSolve(rt *fleet.Router, body []byte) (int, []byte) {
	req := httptest.NewRequest("POST", "/v2/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// measureFleetThroughput warms the fleet once over the keyspace, then
// runs a closed-loop Zipf replay for d and reports what it sustained.
func measureFleetThroughput(workers int, d time.Duration) (FleetResult, error) {
	res := FleetResult{Scenario: "throughput", Workers: workers, Replication: 0, Keys: fleetKeys, CachePer: fleetCachePer}
	bodies, _, err := fleetKeyspace()
	if err != nil {
		return res, err
	}
	f := fleet.New(fleet.Config{Workers: workers, Replication: 0, CacheSize: fleetCachePer})
	defer f.Close()
	rt := f.Router()
	// Warm sweep tail-first: key 0 is the Zipf-hottest, so sweeping
	// descending leaves the hot head most-recently-used — an ascending
	// sweep would end having evicted exactly the keys the replay is
	// about to ask for.
	for i := len(bodies) - 1; i >= 0; i-- {
		if code, out := postSolve(rt, bodies[i]); code != 200 {
			return res, fmt.Errorf("warm sweep status %d: %s", code, out)
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      atomic.Int64
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(d)
	start := time.Now()
	for c := 0; c < fleetClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + c)))
			zipf := rand.NewZipf(rng, 1.1, 1, uint64(len(bodies)-1))
			var local []time.Duration
			for time.Now().Before(deadline) {
				body := bodies[zipf.Uint64()]
				t0 := time.Now()
				code, _ := postSolve(rt, body)
				if code != 200 {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	snap := f.Snapshot()
	res.Requests = len(latencies)
	res.Errors = int(errs.Load())
	res.AchievedRPS = float64(len(latencies)) / elapsed.Seconds()
	res.P50Ms = percentileMs(latencies, 0.50)
	res.P95Ms = percentileMs(latencies, 0.95)
	res.P99Ms = percentileMs(latencies, 0.99)
	res.HitRate = snap.Totals.HitRate
	res.Tier2Hits = snap.Totals.Tier2Hits
	res.Failovers = snap.Failovers
	return res, nil
}

// measureFleetFailover warms a 4-worker fleet, crash-stops one member
// and sweeps every key once: the sweep must produce zero failures,
// and its wall-clock is the recovery time to a fully re-warmed
// keyspace (gossip replicas serve the dead worker's share). Unlike
// the throughput scenarios this one sizes the per-worker cache to
// hold the replicated working set (owner + K copies of every key):
// it measures crash recovery, not capacity pressure — an undersized
// LRU would just measure sequential-scan eviction instead.
func measureFleetFailover() (FleetResult, error) {
	const workers = 4
	const cachePer = 3 * fleetKeys / workers // owner + 2 replicas, spread over 4
	res := FleetResult{Scenario: "failover", Workers: workers, Replication: 2, Keys: fleetKeys, CachePer: cachePer}
	bodies, instances, err := fleetKeyspace()
	if err != nil {
		return res, err
	}
	f := fleet.New(fleet.Config{Workers: workers, Replication: 2, CacheSize: cachePer})
	defer f.Close()
	rt := f.Router()
	for _, body := range bodies {
		if code, out := postSolve(rt, body); code != 200 {
			return res, fmt.Errorf("warm sweep status %d: %s", code, out)
		}
	}
	f.SyncGossip()

	// Kill the member owning the most keys — the worst single crash.
	owned := make(map[string]int)
	for _, in := range instances {
		owner, _ := f.Ring().Owner(in.CanonicalHash())
		owned[owner]++
	}
	victim := ""
	for id, n := range owned {
		if victim == "" || n > owned[victim] {
			victim = id
		}
	}
	if err := f.Kill(victim); err != nil {
		return res, err
	}

	var latencies []time.Duration
	t0 := time.Now()
	for _, body := range bodies {
		s0 := time.Now()
		code, out := postSolve(rt, body)
		if code != 200 {
			res.Errors++
			continue
		}
		latencies = append(latencies, time.Since(s0))
		var sr struct {
			Cached bool `json:"cached"`
		}
		if json.Unmarshal(out, &sr) == nil && sr.Cached {
			res.CachedWarmHits++
		}
	}
	res.RecoveryMs = float64(time.Since(t0)) / float64(time.Millisecond)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	snap := f.Snapshot()
	res.Requests = len(latencies)
	res.P50Ms = percentileMs(latencies, 0.50)
	res.P95Ms = percentileMs(latencies, 0.95)
	res.P99Ms = percentileMs(latencies, 0.99)
	res.HitRate = snap.Totals.HitRate
	res.Tier2Hits = snap.Totals.Tier2Hits
	res.Failovers = snap.Failovers
	return res, nil
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return float64(sorted[int(p*float64(len(sorted)-1))]) / float64(time.Millisecond)
}
