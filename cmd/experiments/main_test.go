package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickAll(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-seed", "1"}, &out); err != nil {
		t.Fatalf("quick run failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"} {
		if !strings.Contains(s, "== "+id+":") {
			t.Errorf("missing experiment %s", id)
		}
	}
	if !strings.Contains(s, "summary: 13/13 experiments reproduced") {
		t.Errorf("unexpected summary:\n%s", lastLines(s, 3))
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-id", "E3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== E3:") || strings.Contains(s, "== E5:") {
		t.Errorf("expected only E3:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "nope"}, &out); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run([]string{"-scale", "quick", "-id", "E99"}, &out); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func lastLines(s string, n int) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n")
}

func TestRunMarkdownFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-id", "E5", "-format", "markdown"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "## E5 —") || !strings.Contains(s, "| --- |") {
		t.Errorf("markdown output malformed:\n%s", s)
	}
	if err := run([]string{"-format", "nope"}, &out); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "quick", "-id", "E5", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# E5:") || !strings.Contains(s, "K,algo") {
		t.Errorf("csv output malformed:\n%s", s)
	}
}
