// Command experiments regenerates every evaluation artifact of the
// paper (Theorems 1-6, Figures 1-5, complexity claims) and prints the
// tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # full scale, all experiments
//	experiments -scale quick    # the fast configuration the tests use
//	experiments -id E3          # a single experiment
//	experiments -workers 16     # widen the parallel solver sweeps
//
// The random/policy/extension sweeps dispatch their solves through the
// solver registry's Batch runner; -workers bounds that pool (the
// tables are identical for any worker count).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"replicatree/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "full", "quick|full")
	id := fs.String("id", "", "run a single experiment (E1..E13)")
	seed := fs.Int64("seed", 1, "random seed")
	format := fs.String("format", "text", "output format: text|markdown|csv")
	workers := fs.Int("workers", 0, "solver worker pool size for the sweep experiments (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.Workers = *workers
	if *format != "text" && *format != "markdown" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	results := experiments.All(scale, *seed)
	mismatches := 0
	for _, r := range results {
		if *id != "" && r.ID != *id {
			continue
		}
		switch *format {
		case "markdown":
			fmt.Fprintln(stdout, r.Markdown())
		case "csv":
			fmt.Fprintf(stdout, "# %s: %s\n%s\n", r.ID, r.Title, r.Table.CSV())
		default:
			fmt.Fprintln(stdout, r)
		}
	}
	if *id != "" {
		found := false
		for _, r := range results {
			if r.ID == *id {
				found = true
				if !r.OK {
					mismatches++
				}
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q", *id)
		}
	} else {
		for _, r := range results {
			if !r.OK {
				mismatches++
			}
		}
		fmt.Fprintf(stdout, "summary: %d/%d experiments reproduced\n", len(results)-mismatches, len(results))
	}
	if mismatches > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce", mismatches)
	}
	return nil
}
