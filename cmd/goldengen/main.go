// Command goldengen regenerates the golden regression corpus under
// testdata/: one JSON file per gen.Corpus() instance plus
// manifest.json recording, per instance, the combinatorial lower
// bound and the replica count of every registered solver that
// produces a verified solution. Invoked by go:generate (see
// golden_test.go) and by REGEN_GOLDEN=1 (see golden_gen_test.go).
//
// Usage:
//
//	goldengen [-dir testdata] [-check]
//
// With -check, nothing is written; the command exits non-zero if the
// on-disk corpus differs from what it would generate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"replicatree/internal/core"
	// The corpus pins every registered engine, so the decomposition
	// engine must be linked in here (it registers itself on init).
	_ "replicatree/internal/decomp"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
)

func main() {
	dir := flag.String("dir", "testdata", "output directory")
	check := flag.Bool("check", false, "verify the on-disk corpus instead of writing")
	flag.Parse()
	if err := run(*dir, *check); err != nil {
		fmt.Fprintln(os.Stderr, "goldengen:", err)
		os.Exit(1)
	}
}

func run(dir string, check bool) error {
	files, err := Generate()
	if err != nil {
		return err
	}
	if !check {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := filepath.Join(dir, name)
		if check {
			have, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("corpus out of sync: %w", err)
			}
			if !bytes.Equal(have, files[name]) {
				return fmt.Errorf("corpus out of sync: %s differs (rerun goldengen)", path)
			}
			continue
		}
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	if check {
		// Orphans matter too: a renamed or dropped corpus entry must
		// not leave a stale instance behind for the glob-based tests
		// to keep exercising.
		onDisk, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			return err
		}
		for _, path := range onDisk {
			if _, ok := files[filepath.Base(path)]; !ok {
				return fmt.Errorf("corpus out of sync: %s is not generated anymore (delete it)", path)
			}
		}
	}
	return nil
}

// Generate renders the whole corpus as file name -> contents: every
// gen.Corpus() instance plus manifest.json. The manifest iterates
// solver.Engines(), so a newly registered deterministic engine is
// golden from its first regeneration onward.
func Generate() (map[string][]byte, error) {
	ctx := context.Background()
	files := make(map[string][]byte)
	manifest := make(map[string]map[string]int)
	for _, entry := range gen.Corpus() {
		data, err := json.MarshalIndent(entry.Instance, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", entry.Name, err)
		}
		files[entry.Name] = append(data, '\n')

		rec := map[string]int{"lower-bound": core.LowerBound(entry.Instance)}
		for _, eng := range solver.Engines() {
			rep, err := eng.Solve(ctx, solver.Request{Instance: entry.Instance})
			if err != nil {
				continue // engine does not apply (NoD-gated, infeasible, budget)
			}
			// Verify under the report's policy — the policy the engine
			// claims for this very solution (the portfolio may return a
			// stricter one than its declared capability).
			if err := core.Verify(entry.Instance, rep.Policy, rep.Solution); err != nil {
				return nil, fmt.Errorf("%s: %s produced an infeasible solution: %v", entry.Name, eng.Name(), err)
			}
			rec[eng.Name()] = rep.Solution.NumReplicas()
		}
		manifest[entry.Name] = rec
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return nil, err
	}
	files["manifest.json"] = append(data, '\n')
	return files, nil
}
