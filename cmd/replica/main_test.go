package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

func instanceJSON(t *testing.T) string {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	b.Client(a, 1, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(root, 1, 2, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 12, DMax: core.NoDistance}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{
		"single-gen", "single-nod", "multiple-bin", "multiple-lazy",
		"multiple-best", "multiple-greedy", "exact-single", "exact-multiple",
	} {
		var out bytes.Buffer
		err := run([]string{"-algo", algo}, strings.NewReader(instanceJSON(t)), &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out.String(), "replicas:") {
			t.Errorf("%s: missing replica summary:\n%s", algo, out.String())
		}
	}
}

func TestRunJSONAndDotFormats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "single-gen", "-format", "json"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	var sol core.Solution
	if err := json.Unmarshal(out.Bytes(), &sol); err != nil {
		t.Fatalf("output is not a solution: %v", err)
	}
	if sol.NumReplicas() == 0 {
		t.Fatal("empty solution")
	}
	out.Reset()
	if err := run([]string{"-algo", "single-gen", "-format", "dot"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Fatal("dot output missing digraph")
	}
}

func TestRunPushUp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "single-nod", "-pushup"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-algo", "multiple-bin", "-pushup"},
		strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Fatal("pushup on Multiple should fail")
	}
}

func TestRunLatency(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "multiple-best", "-latency"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-algo", "single-gen", "-latency"},
		strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Fatal("latency on Single should fail")
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(instanceJSON(t)), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-algo", "multiple-bin", "-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "nope"}, strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := run([]string{"-format", "nope"}, strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run(nil, strings.NewReader("{bad json"), &out); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := run([]string{"-in", "/does/not/exist"}, nil, &out); err == nil {
		t.Error("missing file should fail")
	}
}
