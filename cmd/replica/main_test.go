package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

func instanceJSON(t *testing.T) string {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	b.Client(a, 1, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(root, 1, 2, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 12, DMax: core.NoDistance}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunEveryRegisteredSolver drives the CLI through the whole
// registry: on a small NoD instance, every registered solver must
// produce a verified placement.
func TestRunEveryRegisteredSolver(t *testing.T) {
	for _, name := range solver.List() {
		var out bytes.Buffer
		err := run([]string{"-solver", name}, strings.NewReader(instanceJSON(t)), &out)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(out.String(), "replicas:") {
			t.Errorf("%s: missing replica summary:\n%s", name, out.String())
		}
	}
}

func TestRunSolverList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "list"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(solver.List()) {
		t.Fatalf("list printed %d lines for %d solvers:\n%s", len(lines), len(solver.List()), out.String())
	}
	for _, name := range solver.List() {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list output missing %s", name)
		}
	}
	if !strings.Contains(out.String(), "exact") || !strings.Contains(out.String(), "Multiple") {
		t.Errorf("list output missing metadata columns:\n%s", out.String())
	}
}

// TestRunAlgoAlias keeps the pre-registry flag working.
func TestRunAlgoAlias(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-algo", "multiple-bin"}, strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "policy=Multiple") {
		t.Errorf("alias dispatch wrong:\n%s", out.String())
	}
}

func TestRunJSONAndDotFormats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "single-gen", "-format", "json"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	var sol core.Solution
	if err := json.Unmarshal(out.Bytes(), &sol); err != nil {
		t.Fatalf("output is not a solution: %v", err)
	}
	if sol.NumReplicas() == 0 {
		t.Fatal("empty solution")
	}
	out.Reset()
	if err := run([]string{"-solver", "single-gen", "-format", "dot"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph") {
		t.Fatal("dot output missing digraph")
	}
}

func TestRunPushUp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "single-nod", "-pushup"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-solver", "multiple-bin", "-pushup"},
		strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Fatal("pushup on Multiple should fail")
	}
}

func TestRunLatency(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "multiple-best", "-latency"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-solver", "single-gen", "-latency"},
		strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Fatal("latency on Single should fail")
	}
}

func TestRunBudget(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "exact-multiple", "-budget", "1"},
		strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Fatal("a starvation budget should exhaust the exact solver")
	}
	out.Reset()
	if err := run([]string{"-solver", "exact-multiple", "-budget", "1000000"},
		strings.NewReader(instanceJSON(t)), &out); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(instanceJSON(t)), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-solver", "multiple-bin", "-in", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
}

// chunkedStream renders a small instance in the chunked wire format.
func chunkedStream(t *testing.T) []byte {
	t.Helper()
	var in core.Instance
	if err := json.Unmarshal([]byte(instanceJSON(t)), &in); err != nil {
		t.Fatal(err)
	}
	fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
	var buf bytes.Buffer
	if err := core.WriteChunked(&buf, fi, 2); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunStreamDecomp: the huge-tree path — chunked input, flat
// solve, summary output with the gap.
func TestRunStreamDecomp(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "decomp", "-stream"}, bytes.NewReader(chunkedStream(t)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gap") {
		t.Fatalf("decomp stream summary missing the gap:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-solver", "decomp", "-stream", "-format", "json"},
		bytes.NewReader(chunkedStream(t)), &out); err != nil {
		t.Fatal(err)
	}
	var sum map[string]any
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("json summary does not parse: %v", err)
	}
	for _, key := range []string{"replicas", "lower_bound", "gap", "pieces"} {
		if _, ok := sum[key]; !ok {
			t.Errorf("json summary missing %q", key)
		}
	}
	// Post-passes need the pointer tree; the flat path must refuse them.
	if err := run([]string{"-solver", "decomp", "-stream", "-latency"},
		bytes.NewReader(chunkedStream(t)), &out); err == nil {
		t.Error("-latency accepted on the decomp stream path")
	}
}

// TestRunStreamMaterializes: any other solver reads the same stream
// by materialising the pointer tree.
func TestRunStreamMaterializes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "multiple-bin", "-stream"}, bytes.NewReader(chunkedStream(t)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replicas:") {
		t.Fatalf("missing replica summary:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-solver", "nope"}, strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Error("unknown solver should fail")
	} else if !strings.Contains(err.Error(), "single-gen") {
		t.Errorf("unknown-solver error should list the registry: %v", err)
	}
	if err := run([]string{"-format", "nope"}, strings.NewReader(instanceJSON(t)), &out); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run(nil, strings.NewReader("{bad json"), &out); err == nil {
		t.Error("bad JSON should fail")
	}
	if err := run([]string{"-in", "/does/not/exist"}, nil, &out); err == nil {
		t.Error("missing file should fail")
	}
}
