// Command replica solves a replica placement instance read from a
// JSON file (or stdin) and prints the resulting placement. Algorithms
// are dispatched through the solver registry: any registered engine
// can be selected by name, including the "auto" portfolio that races
// every capable engine and returns the best placement.
//
// Usage:
//
//	replica -solver list
//	replica -solver single-gen  -in instance.json
//	replica -solver auto -in instance.json
//	replica -solver multiple-bin -in instance.json -format json
//	treegen -kind binary -internals 10 | replica -solver exact-multiple
//
// See README.md for the solver catalogue; -solver list prints the
// registered set with capabilities.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replica:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("replica", flag.ContinueOnError)
	name := fs.String("solver", "", "solver name from the registry, or 'list' to print the registered set")
	algo := fs.String("algo", "", "deprecated alias for -solver")
	inPath := fs.String("in", "-", "instance JSON file ('-' for stdin)")
	format := fs.String("format", "text", "output format: text|json|dot")
	pushup := fs.Bool("pushup", false, "apply the push-up post-pass (Single policy only)")
	latency := fs.Bool("latency", false, "re-route assignments for minimal total distance (Multiple policy only)")
	budget := fs.Int64("budget", 0, "work budget for exact solvers (0 = default)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the solve to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after the solve) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written on every exit path so a failed solve still leaves a
		// usable profile of what it allocated.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "replica: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "replica: memprofile:", err)
			}
		}()
	}
	if *name == "" {
		*name = *algo
	}
	if *name == "" {
		*name = solver.SingleGen
	}
	if *name == "list" {
		for _, c := range solver.Catalog() {
			kind := "heuristic"
			if c.Exact {
				kind = "exact"
			}
			fmt.Fprintf(stdout, "%-16s %-8s %s\n", c.Name, c.Policy, kind)
		}
		return nil
	}
	eng, err := solver.Lookup(*name)
	if err != nil {
		return err
	}

	var data []byte
	if *inPath == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(*inPath)
	}
	if err != nil {
		return err
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}

	rep, err := eng.Solve(context.Background(), solver.Request{Instance: &in, Budget: *budget})
	if err != nil {
		return err
	}
	sol, pol := rep.Solution, rep.Policy
	if *pushup {
		if pol != core.Single {
			return fmt.Errorf("-pushup applies to Single-policy solvers only")
		}
		sol = single.PushUp(&in, sol)
	}
	if *latency {
		if pol != core.Multiple {
			return fmt.Errorf("-latency applies to Multiple-policy solvers only")
		}
		sol, err = multiple.MinimizeLatency(&in, sol)
		if err != nil {
			return err
		}
	}
	if err := core.Verify(&in, pol, sol); err != nil {
		return fmt.Errorf("solution failed verification: %w", err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sol)
	case "dot":
		fmt.Fprint(stdout, in.Tree.DOT(sol.ReplicaSet()))
		return nil
	case "text":
		printText(stdout, &in, pol, sol)
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func printText(w io.Writer, in *core.Instance, pol core.Policy, sol *core.Solution) {
	dmax := "∞"
	if !in.NoD() {
		dmax = fmt.Sprint(in.DMax)
	}
	fmt.Fprintf(w, "instance: %s W=%d dmax=%s policy=%s\n", in.Tree, in.W, dmax, pol)
	fmt.Fprintf(w, "replicas: %d (lower bound %d)\n", sol.NumReplicas(), core.LowerBound(in))
	loads := sol.Loads()
	for _, r := range sol.Replicas {
		fmt.Fprintf(w, "  %-8s load %d/%d\n", in.Tree.Name(r), loads[r], in.W)
	}
	fmt.Fprintln(w, "assignments:")
	for _, a := range sol.Assignments {
		fmt.Fprintf(w, "  %-8s -> %-8s  %d requests (distance %d)\n",
			in.Tree.Name(a.Client), in.Tree.Name(a.Server), a.Amount,
			in.Tree.DistanceUp(a.Client, a.Server))
	}
}
