// Command replica solves a replica placement instance read from a
// JSON file (or stdin) and prints the resulting placement. Algorithms
// are dispatched through the solver registry: any registered engine
// can be selected by name, including the "auto" portfolio that races
// every capable engine and returns the best placement.
//
// Usage:
//
//	replica -solver list
//	replica -solver single-gen  -in instance.json
//	replica -solver auto -in instance.json
//	replica -solver multiple-bin -in instance.json -format json
//	treegen -kind binary -internals 10 | replica -solver exact-multiple
//
// See README.md for the solver catalogue; -solver list prints the
// registered set with capabilities.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"replicatree/internal/core"
	// Link the decomposition engine into the registry: it lives in its
	// own package (it imports solver) and registers itself on init.
	"replicatree/internal/decomp"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/solver"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replica:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("replica", flag.ContinueOnError)
	name := fs.String("solver", "", "solver name from the registry, or 'list' to print the registered set")
	algo := fs.String("algo", "", "deprecated alias for -solver")
	inPath := fs.String("in", "-", "instance JSON file ('-' for stdin)")
	format := fs.String("format", "text", "output format: text|json|dot")
	pushup := fs.Bool("pushup", false, "apply the push-up post-pass (Single policy only)")
	latency := fs.Bool("latency", false, "re-route assignments for minimal total distance (Multiple policy only)")
	budget := fs.Int64("budget", 0, "work budget for exact solvers (0 = default)")
	stream := fs.Bool("stream", false, "read the chunked streaming format (treegen -stream); with -solver decomp the tree is solved in flat form and a summary is printed")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the solve to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (after the solve) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Written on every exit path so a failed solve still leaves a
		// usable profile of what it allocated.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "replica: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects dominate the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "replica: memprofile:", err)
			}
		}()
	}
	if *name == "" {
		*name = *algo
	}
	if *name == "" {
		*name = solver.SingleGen
	}
	if *name == "list" {
		for _, c := range solver.Catalog() {
			kind := "heuristic"
			if c.Exact {
				kind = "exact"
			}
			fmt.Fprintf(stdout, "%-16s %-8s %s\n", c.Name, c.Policy, kind)
		}
		return nil
	}
	eng, err := solver.Lookup(*name)
	if err != nil {
		return err
	}

	var in core.Instance
	if *stream {
		r := stdin
		if *inPath != "-" {
			f, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		fi, err := core.ReadChunked(bufio.NewReaderSize(r, 1<<20))
		if err != nil {
			return err
		}
		if *name == solver.Decomp {
			// The huge-tree path: solve in flat form — no pointer tree,
			// no per-node output — and print a summary with the gap.
			if *pushup || *latency || *format == "dot" {
				return fmt.Errorf("-pushup/-latency/dot are unavailable on the decomp stream path")
			}
			return runFlat(stdout, fi, *format)
		}
		mat, err := fi.Instance()
		if err != nil {
			return err
		}
		in = *mat
	} else {
		var data []byte
		if *inPath == "-" {
			data, err = io.ReadAll(stdin)
		} else {
			data, err = os.ReadFile(*inPath)
		}
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &in); err != nil {
			return err
		}
	}

	rep, err := eng.Solve(context.Background(), solver.Request{Instance: &in, Budget: *budget})
	if err != nil {
		return err
	}
	sol, pol := rep.Solution, rep.Policy
	if *pushup {
		if pol != core.Single {
			return fmt.Errorf("-pushup applies to Single-policy solvers only")
		}
		sol = single.PushUp(&in, sol)
	}
	if *latency {
		if pol != core.Multiple {
			return fmt.Errorf("-latency applies to Multiple-policy solvers only")
		}
		sol, err = multiple.MinimizeLatency(&in, sol)
		if err != nil {
			return err
		}
	}
	if err := core.Verify(&in, pol, sol); err != nil {
		return fmt.Errorf("solution failed verification: %w", err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sol)
	case "dot":
		fmt.Fprint(stdout, in.Tree.DOT(sol.ReplicaSet()))
		return nil
	case "text":
		printText(stdout, &in, pol, sol)
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// runFlat solves a flat instance through the decomposition pipeline
// and prints the run summary (the full placement of a million-node
// tree is not useful terminal output; use -format json for the
// machine-readable summary). The solution is verified against the
// flat instance before anything is printed, like the standard path.
func runFlat(stdout io.Writer, fi *core.FlatInstance, format string) error {
	res, err := decomp.SolveFlat(context.Background(), fi, decomp.Options{Verify: true})
	if err != nil {
		return err
	}
	switch format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"nodes":       fi.Flat.Len(),
			"clients":     fi.Flat.NumClients(),
			"w":           fi.W,
			"nod":         fi.NoD(),
			"pieces":      res.Pieces,
			"merged":      res.Merged,
			"rounds":      res.Rounds,
			"moved":       res.Moved,
			"workers":     res.Workers,
			"replicas":    res.Replicas,
			"lower_bound": res.LowerBound,
			"gap":         res.Gap,
			"elapsed_ms":  res.Elapsed.Milliseconds(),
		})
	case "text":
		dmax := "∞"
		if !fi.NoD() {
			dmax = fmt.Sprint(fi.DMax)
		}
		fmt.Fprintf(stdout, "instance: %d nodes (%d clients) W=%d dmax=%s policy=%s\n",
			fi.Flat.Len(), fi.Flat.NumClients(), fi.W, dmax, core.Multiple)
		fmt.Fprintf(stdout, "decomp: %d pieces (%d merged), %d rounds moved %d, %d workers, %v\n",
			res.Pieces, res.Merged, res.Rounds, res.Moved, res.Workers, res.Elapsed)
		fmt.Fprintf(stdout, "replicas: %d (lower bound %d, gap %.4f)\n",
			res.Replicas, res.LowerBound, res.Gap)
		return nil
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func printText(w io.Writer, in *core.Instance, pol core.Policy, sol *core.Solution) {
	dmax := "∞"
	if !in.NoD() {
		dmax = fmt.Sprint(in.DMax)
	}
	fmt.Fprintf(w, "instance: %s W=%d dmax=%s policy=%s\n", in.Tree, in.W, dmax, pol)
	fmt.Fprintf(w, "replicas: %d (lower bound %d)\n", sol.NumReplicas(), core.LowerBound(in))
	loads := sol.Loads()
	for _, r := range sol.Replicas {
		fmt.Fprintf(w, "  %-8s load %d/%d\n", in.Tree.Name(r), loads[r], in.W)
	}
	fmt.Fprintln(w, "assignments:")
	for _, a := range sol.Assignments {
		fmt.Fprintf(w, "  %-8s -> %-8s  %d requests (distance %d)\n",
			in.Tree.Name(a.Client), in.Tree.Name(a.Server), a.Amount,
			in.Tree.DistanceUp(a.Client, a.Server))
	}
}
