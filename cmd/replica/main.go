// Command replica solves a replica placement instance read from a
// JSON file (or stdin) and prints the resulting placement.
//
// Usage:
//
//	replica -algo single-gen  -in instance.json
//	replica -algo multiple-bin -in instance.json -format json
//	treegen -kind binary -internals 10 | replica -algo exact-multiple
//
// Algorithms: single-gen (Algorithm 1, (Δ+1)-approx), single-nod
// (Algorithm 2, 2-approx for NoD), multiple-bin (Algorithm 3, optimal
// on binary trees with ri ≤ W), multiple-greedy (general arity),
// exact-single / exact-multiple (optimal branch-and-bound baselines).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replica:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("replica", flag.ContinueOnError)
	algo := fs.String("algo", "single-gen", "algorithm: single-gen|single-nod|multiple-bin|multiple-lazy|multiple-best|multiple-greedy|exact-single|exact-multiple")
	inPath := fs.String("in", "-", "instance JSON file ('-' for stdin)")
	format := fs.String("format", "text", "output format: text|json|dot")
	pushup := fs.Bool("pushup", false, "apply the push-up post-pass (Single policy only)")
	latency := fs.Bool("latency", false, "re-route assignments for minimal total distance (Multiple policy only)")
	budget := fs.Int64("budget", 0, "work budget for exact solvers (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var data []byte
	var err error
	if *inPath == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(*inPath)
	}
	if err != nil {
		return err
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}

	var sol *core.Solution
	pol := core.Single
	switch *algo {
	case "single-gen":
		sol, err = single.Gen(&in)
	case "single-nod":
		sol, err = single.NoD(&in)
	case "multiple-bin":
		pol = core.Multiple
		sol, err = multiple.Bin(&in)
	case "multiple-lazy":
		pol = core.Multiple
		sol, err = multiple.Lazy(&in)
	case "multiple-best":
		pol = core.Multiple
		sol, err = multiple.Best(&in)
	case "multiple-greedy":
		pol = core.Multiple
		sol, err = multiple.Greedy(&in)
	case "exact-single":
		sol, err = exact.SolveSingle(&in, exact.Options{Budget: *budget})
	case "exact-multiple":
		pol = core.Multiple
		sol, err = exact.SolveMultiple(&in, exact.Options{Budget: *budget})
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	if *pushup {
		if pol != core.Single {
			return fmt.Errorf("-pushup applies to Single-policy algorithms only")
		}
		sol = single.PushUp(&in, sol)
	}
	if *latency {
		if pol != core.Multiple {
			return fmt.Errorf("-latency applies to Multiple-policy algorithms only")
		}
		sol, err = multiple.MinimizeLatency(&in, sol)
		if err != nil {
			return err
		}
	}
	if err := core.Verify(&in, pol, sol); err != nil {
		return fmt.Errorf("solution failed verification: %w", err)
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sol)
	case "dot":
		fmt.Fprint(stdout, in.Tree.DOT(sol.ReplicaSet()))
		return nil
	case "text":
		printText(stdout, &in, pol, sol)
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func printText(w io.Writer, in *core.Instance, pol core.Policy, sol *core.Solution) {
	dmax := "∞"
	if !in.NoD() {
		dmax = fmt.Sprint(in.DMax)
	}
	fmt.Fprintf(w, "instance: %s W=%d dmax=%s policy=%s\n", in.Tree, in.W, dmax, pol)
	fmt.Fprintf(w, "replicas: %d (lower bound %d)\n", sol.NumReplicas(), core.LowerBound(in))
	loads := sol.Loads()
	for _, r := range sol.Replicas {
		fmt.Fprintf(w, "  %-8s load %d/%d\n", in.Tree.Name(r), loads[r], in.W)
	}
	fmt.Fprintln(w, "assignments:")
	for _, a := range sol.Assignments {
		fmt.Fprintf(w, "  %-8s -> %-8s  %d requests (distance %d)\n",
			in.Tree.Name(a.Client), in.Tree.Name(a.Server), a.Amount,
			in.Tree.DistanceUp(a.Client, a.Server))
	}
}
