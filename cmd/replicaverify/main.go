// Command replicaverify checks a placement certificate offline: no
// daemon, no network, and — by construction — no solver. The binary
// links only internal/cert, internal/core and internal/tree (a CI
// guard pins the absence of internal/solver from its dependency
// closure), so verification cost is O(tree): one canonical hash, one
// feasibility sweep, one lower-bound sweep and, when an inclusion
// proof is supplied, ⌈log₂ n⌉ hashes.
//
// Usage:
//
//	replicaverify -cert cert.json -instance instance.json
//	replicaverify -cert proof.json -instance instance.json -root <hex>
//	curl .../v2/jobs/job-000001/proof/t0 | replicaverify -instance i.json
//	replicaverify -cert cert.json -stream big.chunked
//
// -cert accepts either a bare certificate document or the service's
// /v2/jobs/{id}/proof/{task} response (the certificate, proof and
// root are then unwrapped automatically; -root overrides the embedded
// root). "-" or an absent -cert reads from stdin. -stream verifies
// against a chunked flat instance (the million-node wire format)
// without ever materialising a pointer tree.
//
// Exit status: 0 — certificate (and proof, if given) verified;
// 2 — verification failed (the precise reason is printed to stderr);
// 1 — usage or I/O error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"replicatree/internal/cert"
	"replicatree/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "replicaverify:", err)
		if isVerificationFailure(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// isVerificationFailure classifies an error onto exit status 2: the
// inputs were readable, and the certificate is wrong.
func isVerificationFailure(err error) bool {
	for _, sentinel := range []error{
		cert.ErrMalformed, cert.ErrInstanceHash, cert.ErrWitness,
		cert.ErrBound, cert.ErrGap, cert.ErrProof,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// proofDocument is the subset of the service's proof response this
// tool consumes. Decoding a bare certificate into it leaves
// Certificate nil, which run uses to tell the two shapes apart.
type proofDocument struct {
	CertificateRoot string            `json:"certificate_root"`
	Certificate     *cert.Certificate `json:"certificate"`
	Proof           *cert.Proof       `json:"proof"`
}

func run(args []string, stdout io.Writer, stdin io.Reader) error {
	fs := flag.NewFlagSet("replicaverify", flag.ContinueOnError)
	certPath := fs.String("cert", "-", "certificate JSON: a bare certificate or a /v2 proof response (\"-\" = stdin)")
	instPath := fs.String("instance", "", "instance JSON (pointer-tree wire format)")
	streamPath := fs.String("stream", "", "chunked flat instance (core.WriteChunked format); alternative to -instance")
	proofPath := fs.String("proof", "", "inclusion proof JSON (optional; embedded proof of a proof response is used automatically)")
	root := fs.String("root", "", "Merkle certificate root as hex (required with a proof unless embedded in the cert document)")
	quiet := fs.Bool("q", false, "suppress the success summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if (*instPath == "") == (*streamPath == "") {
		return errors.New("exactly one of -instance or -stream is required")
	}

	// Load the certificate (and, when present, the embedded proof).
	data, err := readInput(*certPath, stdin)
	if err != nil {
		return err
	}
	var doc proofDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("parsing %s: %w", describeInput(*certPath), err)
	}
	c, proof, embeddedRoot := doc.Certificate, doc.Proof, doc.CertificateRoot
	if c == nil {
		// A bare certificate document.
		c = new(cert.Certificate)
		if err := json.Unmarshal(data, c); err != nil {
			return fmt.Errorf("parsing %s: %w", describeInput(*certPath), err)
		}
		proof, embeddedRoot = nil, ""
	}
	if *proofPath != "" {
		pdata, err := os.ReadFile(*proofPath)
		if err != nil {
			return err
		}
		proof = new(cert.Proof)
		if err := json.Unmarshal(pdata, proof); err != nil {
			return fmt.Errorf("parsing %s: %w", *proofPath, err)
		}
	}
	if *root != "" {
		embeddedRoot = *root
	}

	// Replay the certificate against the instance.
	switch {
	case *instPath != "":
		idata, err := os.ReadFile(*instPath)
		if err != nil {
			return err
		}
		in := new(core.Instance)
		if err := json.Unmarshal(idata, in); err != nil {
			return fmt.Errorf("parsing %s: %w", *instPath, err)
		}
		if err := c.VerifyAgainst(in); err != nil {
			return err
		}
	default:
		f, err := os.Open(*streamPath)
		if err != nil {
			return err
		}
		fi, err := core.ReadChunked(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("parsing %s: %w", *streamPath, err)
		}
		if err := c.VerifyAgainstFlat(fi); err != nil {
			return err
		}
	}

	// Check the inclusion proof, when one is in play.
	proved := false
	if proof != nil {
		if embeddedRoot == "" {
			return errors.New("an inclusion proof needs a root: pass -root or feed a full proof response")
		}
		if err := c.VerifyInclusionOf(embeddedRoot, proof); err != nil {
			return err
		}
		proved = true
	} else if embeddedRoot != "" {
		return errors.New("a root without an inclusion proof proves nothing: pass -proof or feed a full proof response")
	}

	if *quiet {
		return nil
	}
	fmt.Fprintf(stdout, "OK: %d replicas is a feasible %s placement of instance %s…\n",
		c.Replicas, c.Policy, c.InstanceHash[:12])
	fmt.Fprintf(stdout, "  lower bound (%s): %d, gap %.4f\n", c.Bound.Kind, c.Bound.Value, c.Gap)
	switch {
	case c.Replicas == c.Bound.Value:
		fmt.Fprintln(stdout, "  optimal: bound met (independently verified)")
	case c.Optimality != nil:
		fmt.Fprintf(stdout, "  optimal: attested by %s (trusted provenance, not re-proved)\n", c.Optimality.Engine)
	}
	if proved {
		fmt.Fprintf(stdout, "  inclusion: leaf %d of %d under root %s… (%d hashes)\n",
			proof.LeafIndex, proof.Leaves, embeddedRoot[:12], len(proof.Siblings))
	}
	return nil
}

func readInput(path string, stdin io.Reader) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(stdin)
	}
	return os.ReadFile(path)
}

func describeInput(path string) string {
	if path == "-" {
		return "stdin"
	}
	return path
}
