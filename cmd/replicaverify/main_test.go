package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/bits"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"replicatree/internal/cert"
	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// The test file imports internal/solver to mint real certificates;
// that is fine — test files are outside `go list -deps`, so the
// binary's no-solver dependency guarantee (pinned by
// TestNoSolverInDependencyClosure and the CI depguard) holds.

func corpusInstance(t testing.TB, name string) (*core.Instance, string) {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	return &in, path
}

func mintCert(t testing.TB, in *core.Instance, engine string) *cert.Certificate {
	t.Helper()
	eng, err := solver.Lookup(engine)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Solve(context.Background(), solver.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	c, err := solver.Certify(in, &rep)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func writeJSON(t testing.TB, dir, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVerifyGoldenCorpus: every corpus instance's certificate passes
// the offline checker end to end, file in, verdict out.
func TestVerifyGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	verified := 0
	for _, instPath := range files {
		name := filepath.Base(instPath)
		if name == "manifest.json" {
			continue
		}
		in, _ := corpusInstance(t, name)
		c := mintCert(t, in, "auto")
		certPath := writeJSON(t, dir, name+".cert", c)
		var out bytes.Buffer
		if err := run([]string{"-cert", certPath, "-instance", instPath}, &out, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.HasPrefix(out.String(), "OK:") {
			t.Fatalf("%s: unexpected output %q", name, out.String())
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("no corpus instances verified")
	}
}

// TestVerifyStdinQuiet: the curl-pipe path — certificate on stdin,
// -q suppresses the summary.
func TestVerifyStdinQuiet(t *testing.T) {
	in, instPath := corpusInstance(t, "gadget_fig4.json")
	data, err := json.Marshal(mintCert(t, in, "exact-multiple"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-q", "-instance", instPath}, &out, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("-q printed %q", out.String())
	}
}

// TestVerifyStream: verification against the chunked flat wire format
// — the huge-tree path that never materialises a pointer tree.
func TestVerifyStream(t *testing.T) {
	in, _ := corpusInstance(t, "binary_dist_2.json")
	dir := t.TempDir()
	fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
	streamPath := filepath.Join(dir, "instance.chunked")
	f, err := os.Create(streamPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteChunked(f, fi, 16); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	certPath := writeJSON(t, dir, "cert.json", mintCert(t, in, "auto"))
	var out bytes.Buffer
	if err := run([]string{"-cert", certPath, "-stream", streamPath}, &out, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVerify10kBatchInclusion: a 10 000-task batch's inclusion proof
// verifies offline through the CLI, and the proof is exactly
// ⌈log₂ 10000⌉ = 14 hashes. The batch is built directly with the cert
// library: one real certificate among 9 999 sibling certificates that
// differ only in their attested work counters — the shape of a job
// whose tasks are near-identical probes.
func TestVerify10kBatchInclusion(t *testing.T) {
	const batch, target = 10_000, 7_321
	in, instPath := corpusInstance(t, "binary_nod_1.json")
	real := mintCert(t, in, "exact-multiple")

	leaves := make([][32]byte, batch)
	sibling := *real
	for i := range leaves {
		if i == target {
			h, err := real.Hash()
			if err != nil {
				t.Fatal(err)
			}
			leaves[i] = h
			continue
		}
		sibling.Work = int64(1_000_000 + i)
		h, err := sibling.Hash()
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = h
	}
	mt, err := cert.NewTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := mt.Proof(target)
	if err != nil {
		t.Fatal(err)
	}
	if want := bits.Len(uint(batch - 1)); len(proof.Siblings) != want {
		t.Fatalf("proof is %d hashes, want ⌈log₂ %d⌉ = %d", len(proof.Siblings), batch, want)
	}

	doc := map[string]any{
		"certificate_root": mt.RootHex(),
		"certificate":      real,
		"proof":            proof,
	}
	docPath := writeJSON(t, t.TempDir(), "proof.json", doc)
	var out bytes.Buffer
	if err := run([]string{"-cert", docPath, "-instance", instPath}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "leaf 7321 of 10000") {
		t.Fatalf("summary does not report the inclusion check: %q", out.String())
	}
	if !strings.Contains(out.String(), "(14 hashes)") {
		t.Fatalf("summary does not report the proof size: %q", out.String())
	}
}

// TestVerifyDetectsTampering: each forgery exits through the
// verification-failure class (status 2) with its precise sentinel.
func TestVerifyDetectsTampering(t *testing.T) {
	in, instPath := corpusInstance(t, "gadget_fig4.json")
	_, otherPath := corpusInstance(t, "wide_nod.json")
	base := mintCert(t, in, "exact-multiple")
	// A four-leaf batch: the real certificate plus three work-count
	// variants, so the inclusion path has siblings to forge.
	v1, v2, v3 := *base, *base, *base
	v1.Work, v2.Work, v3.Work = base.Work+1, base.Work+2, base.Work+3
	mt, err := cert.NewTree(mustLeaves(t, base, &v1, &v2, &v3))
	if err != nil {
		t.Fatal(err)
	}
	proof, err := mt.Proof(0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args func(dir string) []string
		want error
	}{
		{"inflated-replica-count", func(dir string) []string {
			c := *base
			c.Replicas++
			return []string{"-cert", writeJSON(t, dir, "c.json", &c), "-instance", instPath}
		}, cert.ErrMalformed},
		{"wrong-instance", func(dir string) []string {
			return []string{"-cert", writeJSON(t, dir, "c.json", base), "-instance", otherPath}
		}, cert.ErrInstanceHash},
		{"under-served-client", func(dir string) []string {
			c := *base
			w := *base.Witness
			w.Assignments = w.Assignments[:len(w.Assignments)-1]
			c.Witness = &w
			return []string{"-cert", writeJSON(t, dir, "c.json", &c), "-instance", instPath}
		}, cert.ErrWitness},
		{"forged-proof-sibling", func(dir string) []string {
			p := *proof
			p.Siblings = append([]string(nil), p.Siblings...)
			p.Siblings[0] = strings.Repeat("ab", 32)
			doc := map[string]any{"certificate_root": mt.RootHex(), "certificate": base, "proof": &p}
			return []string{"-cert", writeJSON(t, dir, "c.json", doc), "-instance", instPath}
		}, cert.ErrProof},
		{"wrong-root", func(dir string) []string {
			doc := map[string]any{"certificate_root": strings.Repeat("cd", 32), "certificate": base, "proof": proof}
			return []string{"-cert", writeJSON(t, dir, "c.json", doc), "-instance", instPath}
		}, cert.ErrProof},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args(t.TempDir()), &out, nil)
			if err == nil {
				t.Fatal("forgery accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not wrap %v", err, tc.want)
			}
			if !isVerificationFailure(err) {
				t.Fatalf("error %v would exit with status 1, want the verification class (2)", err)
			}
		})
	}
}

func mustLeaves(t testing.TB, certs ...*cert.Certificate) [][32]byte {
	t.Helper()
	leaves := make([][32]byte, len(certs))
	for i, c := range certs {
		h, err := c.Hash()
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = h
	}
	return leaves
}

// TestUsageErrorsAreNotVerificationFailures: bad invocations and
// unreadable inputs exit 1, never masquerading as a tamper verdict.
func TestUsageErrorsAreNotVerificationFailures(t *testing.T) {
	in, instPath := corpusInstance(t, "gadget_fig4.json")
	certPath := writeJSON(t, t.TempDir(), "c.json", mintCert(t, in, "auto"))
	for _, args := range [][]string{
		{},                                      // neither -instance nor -stream
		{"-instance", instPath, "-stream", "x"}, // both
		{"-cert", "/no/such/file", "-instance", instPath},
		{"-cert", certPath, "-instance", instPath, "-root", strings.Repeat("ab", 32)}, // root without proof
	} {
		err := run(args, &bytes.Buffer{}, strings.NewReader("{}"))
		if err == nil {
			t.Fatalf("args %v: expected an error", args)
		}
		if isVerificationFailure(err) {
			t.Fatalf("args %v: usage error %v classified as a verification failure", args, err)
		}
	}
}

// TestNoSolverInDependencyClosure pins the binary's core guarantee:
// an auditor running replicaverify is not trusting any solver code.
func TestNoSolverInDependencyClosure(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	out, err := exec.Command(goBin, "list", "-deps", "replicatree/cmd/replicaverify").Output()
	if err != nil {
		t.Fatalf("go list -deps: %v", err)
	}
	if strings.Contains(string(out), "internal/solver") {
		t.Fatal("replicaverify's dependency closure includes internal/solver")
	}
	for _, want := range []string{"replicatree/internal/cert", "replicatree/internal/core"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("dependency closure is missing %s:\n%s", want, out)
		}
	}
}
