package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"replicatree/internal/fleet"
)

// TestLoadgenAgainstFleet drives the full loop: an in-process fleet
// behind httptest, a short replay with batches folded in, and the
// CI-style assertions (-max-errors 0, -min-tier2-hits 1) passing.
func TestLoadgenAgainstFleet(t *testing.T) {
	f := fleet.New(fleet.Config{Workers: 4, Replication: 2, CacheSize: 64})
	defer f.Close()
	ts := httptest.NewServer(f.Router())
	defer ts.Close()

	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-url", ts.URL,
		"-corpus", filepath.Join("..", "..", "testdata"),
		"-rps", "300", "-duration", "2s", "-concurrency", "8",
		"-keys", "64", "-zipf", "1.2", "-seed", "7",
		"-batch-every", "10", "-batch-size", "3",
		"-max-errors", "0", "-min-tier2-hits", "1",
		"-json",
	}, &out)
	if err != nil {
		t.Fatalf("loadgen failed: %v\n%s", err, out.String())
	}
	// The banner precedes the JSON document; decode from the brace on.
	text := out.String()
	i := strings.Index(text, "{")
	if i < 0 {
		t.Fatalf("no JSON report in output:\n%s", text)
	}
	var rep report
	if err := json.Unmarshal([]byte(text[i:]), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, text)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("report %+v", rep)
	}
	if rep.Tier2Hits == 0 {
		t.Error("batch traffic produced no tier-2 hits")
	}
	if rep.P95Ms <= 0 || rep.P50Ms > rep.P99Ms {
		t.Errorf("nonsense percentiles: %+v", rep)
	}
}

func TestLoadgenFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-zipf", "0.5"},
		{"-keys", "0"},
		{"-rps", "0"},
		{"-no-such-flag"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestLoadgenAssertionFailure(t *testing.T) {
	f := fleet.New(fleet.Config{Workers: 2})
	defer f.Close()
	ts := httptest.NewServer(f.Router())
	defer ts.Close()
	// An impossible tier-2 floor must turn into a nonzero exit.
	err := run(context.Background(), []string{
		"-url", ts.URL,
		"-corpus", filepath.Join("..", "..", "testdata"),
		"-rps", "100", "-duration", "300ms", "-keys", "4",
		"-min-tier2-hits", "1000000",
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "tier-2") {
		t.Fatalf("tier-2 assertion did not fail the run: %v", err)
	}
}
