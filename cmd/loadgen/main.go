// Command loadgen replays the golden corpus against a replicad or
// replicafleet endpoint at a configured rate and reports what the
// service actually delivered: latency percentiles, achieved RPS,
// error counts and — when the target is a fleet — tier-1/tier-2 cache
// hit rates scraped from /metrics.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -rps 500 -duration 10s
//
// Keys follow a Zipf distribution over an expanded keyspace: each key
// is a corpus instance with its capacity W bumped by the key index,
// so -keys 160 turns the ~dozen corpus files into 160 distinct
// canonical hashes with realistic popularity skew. -batch-every n
// folds a /v2/batch job into every nth slot, exercising the fleet's
// cross-owner tier-2 path.
//
// With -max-errors and -min-tier2-hits the run doubles as an
// assertion harness: CI fails the build when the fleet dropped
// requests or never took a tier-2 hit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// keyspace is the expanded replay corpus: base instances × W bumps.
type keyspace struct {
	instances []*core.Instance
	bodies    [][]byte // pre-marshalled solve requests, index-aligned
}

// buildKeyspace expands the corpus files to n distinct keys by
// cloning instances with stepped capacities. Raising W keeps every
// feasible instance feasible, so the probe filter below only has to
// run once per base file.
func buildKeyspace(corpusDir, solverName string, n int, probe func(*core.Instance) bool) (*keyspace, error) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		return nil, err
	}
	var bases []*core.Instance
	for _, e := range entries {
		if e.Name() == "manifest.json" || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(corpusDir, e.Name()))
		if err != nil {
			return nil, err
		}
		var in core.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		if probe == nil || probe(&in) {
			bases = append(bases, &in)
		}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("no feasible corpus instances in %s", corpusDir)
	}
	ks := &keyspace{}
	for k := 0; k < n; k++ {
		base := bases[k%len(bases)]
		in := &core.Instance{Tree: base.Tree, W: base.W + int64(k/len(bases)), DMax: base.DMax}
		body, err := json.Marshal(service.SolveRequestV2{Solver: solverName, Instance: in})
		if err != nil {
			return nil, err
		}
		ks.instances = append(ks.instances, in)
		ks.bodies = append(ks.bodies, body)
	}
	return ks, nil
}

// report is the run summary (also the -json document).
type report struct {
	Requests    int     `json:"requests"`
	Batches     int     `json:"batches"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
	// Fleet tier counters scraped from /metrics after the run; zero
	// when the target is a single replicad (no "totals" block).
	Tier1Hits uint64  `json:"tier1_hits"`
	Tier2Hits uint64  `json:"tier2_hits"`
	HitRate   float64 `json:"hit_rate"`
	Failovers uint64  `json:"failovers"`
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "target base URL (replicad or replicafleet)")
	corpus := fs.String("corpus", "testdata", "directory of corpus instance files")
	solverName := fs.String("solver", "single-gen", "solver to request")
	rps := fs.Float64("rps", 200, "offered request rate per second")
	concurrency := fs.Int("concurrency", 8, "in-flight request cap")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	keys := fs.Int("keys", 160, "distinct keys in the replayed keyspace")
	zipfS := fs.Float64("zipf", 1.1, "Zipf skew s (>1; larger = hotter head)")
	seed := fs.Int64("seed", 1, "RNG seed for the key sequence")
	batchEvery := fs.Int("batch-every", 0, "submit a /v2/batch job every nth slot (0 disables)")
	batchSize := fs.Int("batch-size", 4, "tasks per batch job")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	maxErrors := fs.Int("max-errors", -1, "fail the run when errors exceed this (-1 disables)")
	minT2 := fs.Int64("min-tier2-hits", -1, "fail the run when fleet tier-2 hits fall below this (-1 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1, got %v", *zipfS)
	}
	if *keys < 1 || *concurrency < 1 || *rps <= 0 {
		return fmt.Errorf("-keys, -concurrency and -rps must be positive")
	}

	client := &http.Client{Timeout: 60 * time.Second}
	probe := func(in *core.Instance) bool {
		body, err := json.Marshal(service.SolveRequestV2{Solver: *solverName, Instance: in})
		if err != nil {
			return false
		}
		resp, err := client.Post(*url+"/v2/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode == http.StatusOK
	}
	ks, err := buildKeyspace(*corpus, *solverName, *keys, probe)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loadgen: %d keys over %s, offering %.0f rps for %s (zipf s=%.2f)\n",
		len(ks.bodies), *url, *rps, *duration, *zipfS)

	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(ks.bodies)-1))

	var (
		mu        sync.Mutex
		latencies []time.Duration
		errs      atomic.Int64
		batches   atomic.Int64
		wg        sync.WaitGroup
	)
	sem := make(chan struct{}, *concurrency)
	interval := time.Duration(float64(time.Second) / *rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(*duration)
	start := time.Now()
	slot := 0

	solveOne := func(key int) {
		defer wg.Done()
		defer func() { <-sem }()
		t0 := time.Now()
		resp, err := client.Post(*url+"/v2/solve", "application/json", bytes.NewReader(ks.bodies[key]))
		if err != nil {
			errs.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errs.Add(1)
			return
		}
		el := time.Since(t0)
		mu.Lock()
		latencies = append(latencies, el)
		mu.Unlock()
	}
	batchOne := func(keys []int) {
		defer wg.Done()
		defer func() { <-sem }()
		req := service.BatchRequestV2{Workers: 1}
		for i, k := range keys {
			req.Tasks = append(req.Tasks, service.BatchTaskV2{
				ID: fmt.Sprintf("t%d", i), Solver: *solverName, Instance: ks.instances[k],
			})
		}
		body, err := json.Marshal(req)
		if err != nil {
			errs.Add(1)
			return
		}
		resp, err := client.Post(*url+"/v2/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			errs.Add(1)
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			errs.Add(1)
			return
		}
		var acc service.BatchAccepted
		if json.Unmarshal(raw, &acc) != nil || acc.StatusURL == "" {
			errs.Add(1)
			return
		}
		batches.Add(1)
		pollUntil := time.Now().Add(30 * time.Second)
		for time.Now().Before(pollUntil) {
			presp, err := client.Get(*url + acc.StatusURL)
			if err != nil {
				errs.Add(1)
				return
			}
			var jr service.JobResponseV2
			derr := json.NewDecoder(presp.Body).Decode(&jr)
			presp.Body.Close()
			if presp.StatusCode != http.StatusOK || derr != nil {
				errs.Add(1)
				return
			}
			if jr.Status == service.JobDone {
				if jr.Stats != nil && jr.Stats.Failed > 0 {
					errs.Add(int64(jr.Stats.Failed))
				}
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		errs.Add(1) // job never finished
	}

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline:
			break loop
		case <-ticker.C:
			sem <- struct{}{}
			wg.Add(1)
			slot++
			if *batchEvery > 0 && slot%*batchEvery == 0 {
				bk := make([]int, 0, *batchSize)
				for i := 0; i < *batchSize; i++ {
					bk = append(bk, int(zipf.Uint64()))
				}
				go batchOne(bk)
			} else {
				go solveOne(int(zipf.Uint64()))
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := report{
		Requests:    len(latencies),
		Batches:     int(batches.Load()),
		Errors:      int(errs.Load()),
		DurationSec: elapsed.Seconds(),
		AchievedRPS: float64(len(latencies)) / elapsed.Seconds(),
		P50Ms:       percentile(latencies, 0.50),
		P95Ms:       percentile(latencies, 0.95),
		P99Ms:       percentile(latencies, 0.99),
	}

	// Scrape fleet tier counters when the target exposes them; a
	// single replicad has no "totals" block and stays at zero.
	if mresp, err := client.Get(*url + "/metrics"); err == nil {
		var m struct {
			Failovers uint64 `json:"failovers"`
			Totals    struct {
				Tier1Hits uint64  `json:"tier1_hits"`
				Tier2Hits uint64  `json:"tier2_hits"`
				HitRate   float64 `json:"hit_rate"`
			} `json:"totals"`
		}
		if json.NewDecoder(mresp.Body).Decode(&m) == nil {
			rep.Tier1Hits = m.Totals.Tier1Hits
			rep.Tier2Hits = m.Totals.Tier2Hits
			rep.HitRate = m.Totals.HitRate
			rep.Failovers = m.Failovers
		}
		mresp.Body.Close()
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "loadgen: %d ok (%d batches), %d errors in %.1fs — %.0f rps achieved\n",
			rep.Requests, rep.Batches, rep.Errors, rep.DurationSec, rep.AchievedRPS)
		fmt.Fprintf(stdout, "loadgen: latency p50=%.2fms p95=%.2fms p99=%.2fms\n", rep.P50Ms, rep.P95Ms, rep.P99Ms)
		fmt.Fprintf(stdout, "loadgen: cache t1=%d t2=%d hit-rate=%.3f failovers=%d\n",
			rep.Tier1Hits, rep.Tier2Hits, rep.HitRate, rep.Failovers)
	}

	if *maxErrors >= 0 && rep.Errors > *maxErrors {
		return fmt.Errorf("%d errors exceed -max-errors %d", rep.Errors, *maxErrors)
	}
	if *minT2 >= 0 && rep.Tier2Hits < uint64(*minT2) {
		return fmt.Errorf("tier-2 hits %d below -min-tier2-hits %d", rep.Tier2Hits, *minT2)
	}
	return nil
}
