// Command replicafleet runs a sharded replica-placement fleet behind
// one HTTP front door: N in-process workers (each a full replicad
// solve stack), a consistent-hash router that owns request placement,
// and a two-tier result cache with gossip replication across ring
// successors (see internal/fleet and the "Fleet topology" section of
// DESIGN.md).
//
// Usage:
//
//	replicafleet -addr :8080 -n 4 -replication 2
//
// The /v2 surface is byte-compatible with a single replicad: clients
// cannot tell the fleet from one daemon. GET /metrics returns the
// fleet snapshot (per-worker tier counters, failovers, gossip
// traffic); GET /healthz the ring membership.
//
// -kill-after/-kill-worker crash-stop one member mid-run — a chaos
// switch for demos and CI: the victim stays on the ring dead, the
// router fails over to ring successors and gossip replicas keep its
// keyspace warm.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"replicatree/internal/fleet"
	"replicatree/internal/service"
	"replicatree/internal/solver"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replicafleet:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replicafleet", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("n", 4, "fleet members")
	vnodes := fs.Int("vnodes", fleet.DefaultVNodes, "virtual nodes per member on the hash ring")
	replication := fs.Int("replication", 2, "ring successors each fresh cache entry is gossiped to (0 disables)")
	cacheSize := fs.Int("cache", service.DefaultCacheSize, "per-worker tier-1 cache capacity in entries")
	failover := fs.Int("failover-attempts", 2, "ring successors tried after the owner fails")
	attemptTimeout := fs.Duration("attempt-timeout", 30*time.Second, "per-attempt forward timeout before failing over")
	jobWorkers := fs.Int("job-workers", 1, "concurrently running batch jobs per worker")
	killAfter := fs.Duration("kill-after", 0, "crash-stop -kill-worker after this delay (0 disables; chaos switch)")
	killWorker := fs.String("kill-worker", "w0", "member to crash when -kill-after fires")
	drain := fs.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *killAfter > 0 && *killWorker == "" {
		return fmt.Errorf("-kill-after needs a -kill-worker")
	}

	f := fleet.New(fleet.Config{
		Workers:          *workers,
		VNodes:           *vnodes,
		Replication:      *replication,
		CacheSize:        *cacheSize,
		FailoverAttempts: *failover,
		AttemptTimeout:   *attemptTimeout,
		JobWorkers:       *jobWorkers,
	})
	defer f.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replicafleet: listening on http://%s (%d workers, %d solvers, vnodes=%d, replication=%d, cache=%d/worker)\n",
		ln.Addr(), *workers, len(solver.List()), *vnodes, *replication, *cacheSize)

	if *killAfter > 0 {
		timer := time.AfterFunc(*killAfter, func() {
			if err := f.Kill(*killWorker); err != nil {
				fmt.Fprintf(stdout, "replicafleet: kill %s: %v\n", *killWorker, err)
				return
			}
			fmt.Fprintf(stdout, "replicafleet: crash-stopped %s after %s\n", *killWorker, *killAfter)
		})
		defer timer.Stop()
	}

	hs := &http.Server{
		Handler:           f.Router(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "replicafleet: shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	if err := <-errc; err != http.ErrServerClosed {
		return err
	}
	return nil
}
