package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/fleet"
	"replicatree/internal/service"
)

// startFleet runs the fleet daemon on an ephemeral port and returns
// its base URL plus a shutdown function asserting a clean exit.
func startFleet(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		errc <- err
	}()

	scanner := bufio.NewScanner(pr)
	if !scanner.Scan() {
		cancel()
		t.Fatalf("fleet produced no banner: %v", <-errc)
	}
	banner := scanner.Text()
	go io.Copy(io.Discard, pr)
	const marker = "listening on "
	i := strings.Index(banner, marker)
	j := strings.Index(banner, " (")
	if i < 0 || j < i {
		cancel()
		t.Fatalf("unexpected banner %q", banner)
	}
	url := banner[i+len(marker) : j]
	return url, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("fleet exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("fleet did not shut down")
		}
	}
}

// TestFleetDaemonServesGoldenInstance: end to end over real HTTP —
// the fleet solves a golden instance, the solution verifies, a warm
// repeat hits the cache, and /metrics reports the fleet topology.
func TestFleetDaemonServesGoldenInstance(t *testing.T) {
	url, shutdown := startFleet(t, "-n", "3", "-replication", "1")
	defer shutdown()

	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "binary_dist_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(service.SolveRequestV2{Solver: "multiple-best", Instance: &in})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v2/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr service.SolveResponseV2
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(&in, core.Multiple, sr.Solution); err != nil {
		t.Fatalf("served solution does not verify: %v", err)
	}

	resp2, err := http.Post(url+"/v2/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var warm service.SolveResponseV2
	if err := json.NewDecoder(resp2.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second identical solve not served from cache")
	}
	if warm.Replicas != sr.Replicas {
		t.Errorf("cache changed the objective: %d vs %d", warm.Replicas, sr.Replicas)
	}

	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap fleet.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workers != 3 || snap.Alive != 3 || snap.Replication != 1 {
		t.Errorf("fleet snapshot %+v", snap)
	}
}

// TestFleetDaemonKillSwitch: the -kill-after chaos switch crashes the
// named worker, /healthz reflects it, and requests keep succeeding.
func TestFleetDaemonKillSwitch(t *testing.T) {
	url, shutdown := startFleet(t, "-n", "3", "-replication", "2", "-kill-after", "100ms", "-kill-worker", "w1")
	defer shutdown()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz struct {
			Alive int `json:"alive"`
		}
		err = json.NewDecoder(resp.Body).Decode(&hz)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if hz.Alive == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("kill switch never fired (alive=%d)", hz.Alive)
		}
		time.Sleep(20 * time.Millisecond)
	}

	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "gadget_fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(service.SolveRequestV2{Solver: "single-gen", Instance: &in})
	resp, err := http.Post(url+"/v2/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-kill solve status %d: %s", resp.StatusCode, raw)
	}
}

func TestFleetDaemonFlagErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "not-an-address"}, io.Discard); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-kill-after", "1s", "-kill-worker", ""}, io.Discard); err == nil {
		t.Fatal("kill-after without a worker accepted")
	}
}
