package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/service"
)

// startDaemon runs the daemon on an ephemeral port and returns its
// base URL plus a shutdown function that asserts a clean exit.
func startDaemon(t *testing.T, extraArgs ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		errc <- err
	}()

	scanner := bufio.NewScanner(pr)
	if !scanner.Scan() {
		cancel()
		t.Fatalf("daemon produced no banner: %v", <-errc)
	}
	banner := scanner.Text()
	go io.Copy(io.Discard, pr) // keep the pipe drained for later prints
	const marker = "listening on "
	i := strings.Index(banner, marker)
	j := strings.Index(banner, " (")
	if i < 0 || j < i {
		cancel()
		t.Fatalf("unexpected banner %q", banner)
	}
	url := banner[i+len(marker) : j]
	return url, func() {
		cancel()
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("daemon exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not shut down")
		}
	}
}

// TestDaemonServesGoldenInstance is the end-to-end acceptance path:
// replicad solves a checked-in golden instance over real HTTP and the
// returned solution verifies with core.Verify.
func TestDaemonServesGoldenInstance(t *testing.T) {
	url, shutdown := startDaemon(t)
	defer shutdown()

	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "binary_dist_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}

	body, err := json.Marshal(service.SolveRequest{Solver: "multiple-best", Instance: &in})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(&in, core.Multiple, sr.Solution); err != nil {
		t.Fatalf("served solution does not verify: %v", err)
	}
	if sr.Replicas < sr.LowerBound {
		t.Errorf("replicas %d below lower bound %d", sr.Replicas, sr.LowerBound)
	}

	// Health and a warm repeat over the same connection family.
	hresp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hresp.StatusCode)
	}
	resp2, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var warm service.SolveResponse
	if err := json.NewDecoder(resp2.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Error("second identical solve not served from cache")
	}
	if warm.Replicas != sr.Replicas {
		t.Errorf("cache changed the objective: %d vs %d", warm.Replicas, sr.Replicas)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "not-an-address"}, io.Discard)
	if err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestDaemonCacheDisabled(t *testing.T) {
	url, shutdown := startDaemon(t, "-cache", "0")
	defer shutdown()
	var metrics struct {
		Cache service.CacheStats `json:"cache"`
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Cache.Capacity != 0 {
		t.Errorf("cache capacity %d, want 0", metrics.Cache.Capacity)
	}
}
