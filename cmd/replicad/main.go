// Command replicad is the placement daemon: it serves the whole
// solver registry over HTTP/JSON with a canonical-hash result cache
// in front of the solvers (see internal/service and DESIGN.md).
//
// Usage:
//
//	replicad -addr :8080 -cache 1024 -job-workers 2
//
// Endpoints: POST /v2/solve, POST /v2/batch, GET /v2/jobs/{id},
// GET /v2/solvers (full capability documents), the stateful
// /v2/instances session endpoints (PUT, POST …/mutate,
// GET …/solution, DELETE), their deprecated /v1 counterparts,
// GET /healthz and GET /metrics. The daemon shuts down gracefully on
// SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"replicatree/internal/service"
	"replicatree/internal/solver"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replicad:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replicad", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cacheSize := fs.Int("cache", service.DefaultCacheSize, "result cache capacity in entries (0 disables caching)")
	jobWorkers := fs.Int("job-workers", 2, "concurrently running batch jobs")
	jobQueue := fs.Int("job-queue", 64, "queued batch jobs before /v1/batch returns 503")
	maxInstances := fs.Int("max-instances", service.DefaultMaxInstances, "live instance sessions before LRU eviction")
	instanceTTL := fs.Duration("instance-ttl", service.DefaultInstanceTTL, "idle lifetime of an instance session")
	drain := fs.Duration("drain", 5*time.Second, "graceful shutdown drain timeout")
	withPprof := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (opt-in: profiles reveal internals, never enable on untrusted networks)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := service.New(service.Options{
		CacheSize:    *cacheSize,
		JobWorkers:   *jobWorkers,
		JobQueue:     *jobQueue,
		MaxInstances: *maxInstances,
		InstanceTTL:  *instanceTTL,
	})
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replicad: listening on http://%s (%d solvers, cache=%d)\n",
		ln.Addr(), len(solver.List()), *cacheSize)

	handler := http.Handler(srv)
	if *withPprof {
		// The profiling handlers are mounted on an outer mux so the
		// service mux (and its /metrics counters) never sees them.
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintln(stdout, "replicad: pprof enabled at /debug/pprof/")
	}

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "replicad: shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return err
	}
	if err := <-errc; err != http.ErrServerClosed {
		return err
	}
	return nil
}
