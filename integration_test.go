package replicatree_test

// Cross-module integration tests: the full pipeline from instance
// generation through JSON round-trips, every solver, post-passes,
// verification, and simulation replay — the paths a downstream user
// exercises end to end.

import (
	"encoding/json"
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/hetero"
	"replicatree/internal/lp"
	"replicatree/internal/multiple"
	"replicatree/internal/sim"
	"replicatree/internal/single"
)

// TestPipelineJSONSolveSimulate: generate → marshal → unmarshal →
// solve with every algorithm → verify → simulate.
func TestPipelineJSONSolveSimulate(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 20; trial++ {
		orig := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    2 + rng.Intn(8),
			MaxArity:     2,
			MaxDist:      4,
			MaxReq:       12,
			ExtraClients: rng.Intn(5),
		}, trial%2 == 0)

		data, err := json.Marshal(orig)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			t.Fatal(err)
		}
		if in.W != orig.W || in.DMax != orig.DMax || in.Tree.Len() != orig.Tree.Len() {
			t.Fatal("instance round trip changed parameters")
		}

		type algo struct {
			name string
			pol  core.Policy
			run  func() (*core.Solution, error)
		}
		algos := []algo{
			{"single-gen", core.Single, func() (*core.Solution, error) { return single.Gen(&in) }},
			{"single-nod", core.Single, func() (*core.Solution, error) { return single.NoD(&in) }},
			{"multiple-bin", core.Multiple, func() (*core.Solution, error) { return multiple.Bin(&in) }},
			{"multiple-lazy", core.Multiple, func() (*core.Solution, error) { return multiple.Lazy(&in) }},
			{"multiple-best", core.Multiple, func() (*core.Solution, error) { return multiple.Best(&in) }},
		}
		for _, a := range algos {
			sol, err := a.run()
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			// single-nod solves the NoD relaxation; verify against it.
			vin := &in
			if a.name == "single-nod" {
				vin = &core.Instance{Tree: in.Tree, W: in.W, DMax: core.NoDistance}
			}
			if err := core.Verify(vin, a.pol, sol); err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			m, err := sim.Run(vin, a.pol, sol, sim.Config{Steps: 5})
			if err != nil {
				t.Fatalf("trial %d %s sim: %v", trial, a.name, err)
			}
			if m.TotalServed != vin.Tree.TotalRequests()*5 {
				t.Fatalf("trial %d %s: simulated service mismatch", trial, a.name)
			}
		}
	}
}

// TestBoundsSandwichOptimum: every lower bound ≤ Multiple optimum ≤
// Single optimum ≤ heuristics, on the same instances.
func TestBoundsSandwichOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(1002))
	for trial := 0; trial < 40; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2 + rng.Intn(2),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		optM, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		optS, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gen1, err := single.Gen(in)
		if err != nil {
			t.Fatal(err)
		}
		lpLB, err := lp.LowerBound(in)
		if err != nil {
			t.Fatal(err)
		}
		vol, comb := core.VolumeLowerBound(in), core.LowerBound(in)
		m, s, g := optM.NumReplicas(), optS.NumReplicas(), gen1.NumReplicas()
		for name, lb := range map[string]int{"volume": vol, "combinatorial": comb, "lp": lpLB} {
			if lb > m {
				t.Fatalf("trial %d: %s bound %d > Multiple optimum %d", trial, name, lb, m)
			}
		}
		if m > s {
			t.Fatalf("trial %d: Multiple optimum %d > Single optimum %d", trial, m, s)
		}
		if s > g {
			t.Fatalf("trial %d: Single optimum %d > single-gen %d", trial, s, g)
		}
	}
}

// TestHeteroUniformAgreesWithBest: lifting a uniform instance into the
// hetero solver and solving exactly agrees with the core exact solver,
// and multiple.Best never beats it.
func TestHeteroUniformAgreesWithBest(t *testing.T) {
	rng := rand.New(rand.NewSource(1003))
	for trial := 0; trial < 25; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		h, err := hetero.Solve(hetero.FromUniform(in), 0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if h.NumReplicas() != c.NumReplicas() {
			t.Fatalf("trial %d: hetero %d != core %d", trial, h.NumReplicas(), c.NumReplicas())
		}
		best, err := multiple.Best(in)
		if err != nil {
			t.Fatal(err)
		}
		if best.NumReplicas() < c.NumReplicas() {
			t.Fatalf("trial %d: heuristic beat the optimum", trial)
		}
	}
}

// TestLatencyPassKeepsObjective: the latency post-pass never changes
// the replica count and never hurts the primary objective across the
// whole pipeline.
func TestLatencyPassKeepsObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(1004))
	for trial := 0; trial < 25; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    2 + rng.Intn(6),
			MaxArity:     2,
			MaxDist:      4,
			MaxReq:       12,
			ExtraClients: rng.Intn(4),
		}, trial%2 == 0)
		sol, err := multiple.Best(in)
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := multiple.MinimizeLatency(in, sol)
		if err != nil {
			t.Fatal(err)
		}
		if tuned.NumReplicas() != sol.NumReplicas() {
			t.Fatal("latency pass changed the replica count")
		}
		if multiple.TotalDistance(in.Tree, tuned) > multiple.TotalDistance(in.Tree, sol) {
			t.Fatal("latency pass worsened total distance")
		}
		// And the tuned solution still replays cleanly.
		if _, err := sim.Run(in, core.Multiple, tuned, sim.Config{Steps: 3}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGadgetsEndToEnd: every gadget flows through JSON and the
// matching algorithm.
func TestGadgetsEndToEnd(t *testing.T) {
	im, err := gen.GadgetIm(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(im.Instance)
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	sol, err := single.Gen(&in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != im.AlgoReplicas {
		t.Fatalf("Im through JSON: %d != %d", sol.NumReplicas(), im.AlgoReplicas)
	}

	f4, err := gen.GadgetFig4(5)
	if err != nil {
		t.Fatal(err)
	}
	nod, err := single.NoD(f4.Instance)
	if err != nil {
		t.Fatal(err)
	}
	if nod.NumReplicas() != f4.AlgoReplicas {
		t.Fatalf("Fig4: %d != %d", nod.NumReplicas(), f4.AlgoReplicas)
	}
}
