package replicatree_test

// Golden regression tests: a frozen corpus of instances in testdata/
// with recorded replica counts per algorithm (testdata/manifest.json).
// Any behavioural drift in the deterministic algorithms shows up here
// immediately. Regenerate with REGEN_GOLDEN=1 (see golden_gen_test.go)
// only after deliberately changing algorithm behaviour.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
)

func TestGoldenCorpus(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "manifest.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var manifest map[string]map[string]int
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(manifest) < 8 {
		t.Fatalf("manifest has only %d entries", len(manifest))
	}
	for file, want := range manifest {
		raw, err := os.ReadFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if got := core.LowerBound(&in); got != want["lower-bound"] {
			t.Errorf("%s: LowerBound = %d, golden %d", file, got, want["lower-bound"])
		}
		if wantN, ok := want["single-gen"]; ok {
			sol, err := single.Gen(&in)
			if err != nil {
				t.Errorf("%s single-gen: %v", file, err)
			} else if sol.NumReplicas() != wantN {
				t.Errorf("%s: single-gen = %d, golden %d", file, sol.NumReplicas(), wantN)
			}
		}
		if wantN, ok := want["single-nod"]; ok {
			sol, err := single.NoD(&in)
			if err != nil {
				t.Errorf("%s single-nod: %v", file, err)
			} else if sol.NumReplicas() != wantN {
				t.Errorf("%s: single-nod = %d, golden %d", file, sol.NumReplicas(), wantN)
			}
		}
		if wantN, ok := want["multiple-best"]; ok {
			sol, err := multiple.Best(&in)
			if err != nil {
				t.Errorf("%s multiple-best: %v", file, err)
			} else if sol.NumReplicas() != wantN {
				t.Errorf("%s: multiple-best = %d, golden %d", file, sol.NumReplicas(), wantN)
			}
		}
	}
}

// TestGoldenCorpusSanity cross-checks structural relations the corpus
// must satisfy regardless of the recorded numbers.
func TestGoldenCorpusSanity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	instances := 0
	for _, f := range files {
		if filepath.Base(f) == "manifest.json" {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		instances++
		if !in.FitsLocally() {
			// The oversized-client gadget (I6): only the exact and
			// hetero machinery apply; nothing more to check here.
			continue
		}
		mb, err := multiple.Best(&in)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		sg, err := single.Gen(&in)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if mb.NumReplicas() > sg.NumReplicas() {
			t.Errorf("%s: Multiple heuristic above Single heuristic", f)
		}
		if mb.NumReplicas() < core.LowerBound(&in) {
			t.Errorf("%s: below lower bound", f)
		}
	}
	if instances < 8 {
		t.Fatalf("only %d corpus instances", instances)
	}
}
