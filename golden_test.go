package replicatree_test

// Golden regression tests: a frozen corpus of instances in testdata/
// (generated deterministically by cmd/goldengen from gen.Corpus())
// with recorded replica counts per registered solver
// (testdata/manifest.json). Any behavioural drift in the deterministic
// algorithms shows up here immediately. Regenerate with REGEN_GOLDEN=1
// (see golden_gen_test.go) or `go generate .` only after deliberately
// changing algorithm or generator behaviour.

//go:generate go run ./cmd/goldengen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

func TestGoldenCorpus(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "manifest.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var manifest map[string]map[string]int
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(manifest) < 8 {
		t.Fatalf("manifest has only %d entries", len(manifest))
	}
	ctx := context.Background()
	for file, want := range manifest {
		raw, err := os.ReadFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if got := core.LowerBound(&in); got != want["lower-bound"] {
			t.Errorf("%s: LowerBound = %d, golden %d", file, got, want["lower-bound"])
		}
		// Every engine the registry knows is golden; a manifest key
		// with no registered engine means one was renamed or dropped
		// without regenerating the corpus.
		for name := range want {
			if name == "lower-bound" {
				continue
			}
			if _, err := solver.Lookup(name); err != nil {
				t.Errorf("%s: manifest records unknown solver %q", file, name)
			}
		}
		for _, eng := range solver.Engines() {
			wantN, ok := want[eng.Name()]
			if !ok {
				continue // engine does not apply to this instance
			}
			rep, err := eng.Solve(ctx, solver.Request{Instance: &in})
			if err != nil {
				t.Errorf("%s %s: %v", file, eng.Name(), err)
				continue
			}
			if rep.Solution.NumReplicas() != wantN {
				t.Errorf("%s: %s = %d, golden %d", file, eng.Name(), rep.Solution.NumReplicas(), wantN)
			}
			if err := core.Verify(&in, rep.Policy, rep.Solution); err != nil {
				t.Errorf("%s: %s solution infeasible: %v", file, eng.Name(), err)
			}
			// The uniform report block must be internally consistent
			// with the recorded bound.
			if rep.LowerBound != want["lower-bound"] {
				t.Errorf("%s: %s reported lower bound %d, golden %d", file, eng.Name(), rep.LowerBound, want["lower-bound"])
			}
			if rep.Proved && rep.Solution.NumReplicas() < rep.LowerBound {
				t.Errorf("%s: %s proved a solution below the lower bound", file, eng.Name())
			}
		}
	}
}

// TestGoldenCorpusSanity cross-checks structural relations the corpus
// must satisfy regardless of the recorded numbers: heuristics respect
// the exact optima recorded for their policy, and no bound exceeds
// the Multiple optimum.
func TestGoldenCorpusSanity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	instances := 0
	for _, f := range files {
		if filepath.Base(f) == "manifest.json" {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		instances++
		optRep, err := solver.MustLookup(solver.ExactMultiple).Solve(ctx, solver.Request{Instance: &in})
		if err != nil {
			t.Fatalf("%s: exact-multiple: %v", f, err)
		}
		optM := optRep.Solution
		if !optRep.Proved {
			t.Errorf("%s: exact-multiple did not mark its optimum proved", f)
		}
		if optM.NumReplicas() < core.LowerBound(&in) {
			t.Errorf("%s: Multiple optimum below the combinatorial lower bound", f)
		}
		if !in.FitsLocally() {
			// The oversized-client gadget (I6): the Single-policy and
			// binary-only machinery does not apply; the exact-vs-bound
			// relation above is all we can check.
			continue
		}
		for _, eng := range solver.Engines() {
			c := eng.Capabilities()
			if c.Exact && c.Policy == core.Multiple {
				// Their result is optM by definition; skip the
				// redundant (and expensive) re-solve.
				continue
			}
			rep, err := eng.Solve(ctx, solver.Request{Instance: &in})
			if err != nil {
				continue // NoD-gated or shape-gated engine
			}
			if c.Policy == core.Multiple && rep.Solution.NumReplicas() < optM.NumReplicas() {
				t.Errorf("%s: %s beat the Multiple optimum", f, eng.Name())
			}
			if rep.Solution.NumReplicas() < core.LowerBound(&in) {
				t.Errorf("%s: %s below lower bound", f, eng.Name())
			}
		}
	}
	if instances < 8 {
		t.Fatalf("only %d corpus instances", instances)
	}
}
