package replicatree_test

// Golden regression tests: a frozen corpus of instances in testdata/
// (generated deterministically by cmd/goldengen from gen.Corpus())
// with recorded replica counts per registered solver
// (testdata/manifest.json). Any behavioural drift in the deterministic
// algorithms shows up here immediately. Regenerate with REGEN_GOLDEN=1
// (see golden_gen_test.go) or `go generate .` only after deliberately
// changing algorithm or generator behaviour.

//go:generate go run ./cmd/goldengen

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

func TestGoldenCorpus(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "manifest.json"))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	var manifest map[string]map[string]int
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(manifest) < 8 {
		t.Fatalf("manifest has only %d entries", len(manifest))
	}
	ctx := context.Background()
	for file, want := range manifest {
		raw, err := os.ReadFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if got := core.LowerBound(&in); got != want["lower-bound"] {
			t.Errorf("%s: LowerBound = %d, golden %d", file, got, want["lower-bound"])
		}
		// Every solver the registry knows is golden; a manifest key
		// with no registered solver means one was renamed or dropped
		// without regenerating the corpus.
		for name := range want {
			if name == "lower-bound" {
				continue
			}
			if _, err := solver.Get(name); err != nil {
				t.Errorf("%s: manifest records unknown solver %q", file, name)
			}
		}
		for _, s := range solver.Solvers() {
			wantN, ok := want[s.Name()]
			if !ok {
				continue // solver does not apply to this instance
			}
			sol, err := s.Solve(ctx, &in)
			if err != nil {
				t.Errorf("%s %s: %v", file, s.Name(), err)
				continue
			}
			if sol.NumReplicas() != wantN {
				t.Errorf("%s: %s = %d, golden %d", file, s.Name(), sol.NumReplicas(), wantN)
			}
			if err := core.Verify(&in, solver.PolicyOf(s), sol); err != nil {
				t.Errorf("%s: %s solution infeasible: %v", file, s.Name(), err)
			}
		}
	}
}

// TestGoldenCorpusSanity cross-checks structural relations the corpus
// must satisfy regardless of the recorded numbers: heuristics respect
// the exact optima recorded for their policy, and no bound exceeds
// the Multiple optimum.
func TestGoldenCorpusSanity(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	instances := 0
	for _, f := range files {
		if filepath.Base(f) == "manifest.json" {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		instances++
		optM, err := solver.MustGet(solver.ExactMultiple).Solve(ctx, &in)
		if err != nil {
			t.Fatalf("%s: exact-multiple: %v", f, err)
		}
		if optM.NumReplicas() < core.LowerBound(&in) {
			t.Errorf("%s: Multiple optimum below the combinatorial lower bound", f)
		}
		if !in.FitsLocally() {
			// The oversized-client gadget (I6): the Single-policy and
			// binary-only machinery does not apply; the exact-vs-bound
			// relation above is all we can check.
			continue
		}
		for _, s := range solver.Solvers() {
			if solver.IsExact(s) && solver.PolicyOf(s) == core.Multiple {
				// Their result is optM by definition; skip the
				// redundant (and expensive) re-solve.
				continue
			}
			sol, err := s.Solve(ctx, &in)
			if err != nil {
				continue // NoD-gated or shape-gated solver
			}
			if solver.PolicyOf(s) == core.Multiple && sol.NumReplicas() < optM.NumReplicas() {
				t.Errorf("%s: %s beat the Multiple optimum", f, s.Name())
			}
			if sol.NumReplicas() < core.LowerBound(&in) {
				t.Errorf("%s: %s below lower bound", f, s.Name())
			}
		}
	}
	if instances < 8 {
		t.Fatalf("only %d corpus instances", instances)
	}
}
