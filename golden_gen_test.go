package replicatree_test

// Corpus regeneration and sync checks. The corpus itself is produced
// by cmd/goldengen (shared with `go generate .`); this file wires it
// into the test workflow:
//
//   - TestGoldenCorpusInSync always verifies that the checked-in
//     testdata/ bytes match a fresh deterministic regeneration, so a
//     drive-by edit of an algorithm, a generator seed or the solver
//     registry cannot silently diverge from the golden numbers.
//   - REGEN_GOLDEN=1 go test -run TestRegenerateGoldenCorpus rewrites
//     testdata/ in place after a deliberate behaviour change.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestGoldenCorpusInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sync check shells out to go run; skipped in -short mode")
	}
	out, err := exec.Command("go", "run", "./cmd/goldengen", "-check").CombinedOutput()
	if err != nil {
		t.Fatalf("testdata/ out of sync with cmd/goldengen (rerun `go generate .`): %v\n%s", err, out)
	}
}

func TestRegenerateGoldenCorpus(t *testing.T) {
	if os.Getenv("REGEN_GOLDEN") == "" {
		t.Skip("set REGEN_GOLDEN=1 to regenerate testdata/")
	}
	out, err := exec.Command("go", "run", "./cmd/goldengen").CombinedOutput()
	if err != nil {
		t.Fatalf("goldengen: %v\n%s", err, out)
	}
	t.Logf("regenerated:\n%s", out)
	// Guard against a silently empty regeneration.
	data, err := os.ReadFile(filepath.Join("testdata", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("single-gen")) {
		t.Fatal("manifest regenerated without solver entries")
	}
}
