package replicatree_test

// One-off helper to print the golden manifest. Run with:
//   go test -run TestPrintGoldenManifest -v -tags never
// (kept for regeneration; skipped by default)

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
)

func TestPrintGoldenManifest(t *testing.T) {
	if os.Getenv("REGEN_GOLDEN") == "" {
		t.Skip("set REGEN_GOLDEN=1 to regenerate the manifest")
	}
	files, _ := filepath.Glob("testdata/*.json")
	out := map[string]map[string]int{}
	for _, f := range files {
		if filepath.Base(f) == "manifest.json" {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var in core.Instance
		if err := json.Unmarshal(data, &in); err != nil {
			t.Fatal(err)
		}
		rec := map[string]int{}
		if g, err := single.Gen(&in); err == nil {
			rec["single-gen"] = g.NumReplicas()
		}
		if nd, err := single.NoD(&in); err == nil {
			rec["single-nod"] = nd.NumReplicas()
		}
		if mb, err := multiple.Best(&in); err == nil {
			rec["multiple-best"] = mb.NumReplicas()
		}
		rec["lower-bound"] = core.LowerBound(&in)
		out[filepath.Base(f)] = rec
	}
	data, _ := json.MarshalIndent(out, "", "  ")
	fmt.Println(string(data))
}
