package replicatree_test

// Metamorphic tests: transformations of an instance with a known
// effect on the answer. These catch whole classes of bugs that
// example-based tests miss — unit-scaling errors, hidden dependence on
// node order, spurious sensitivity to inert clients.

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/hetero"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/tree"
)

func smallInstance(rng *rand.Rand, withD bool) *core.Instance {
	return gen.RandomInstance(rng, gen.TreeConfig{
		Internals:    1 + rng.Intn(4),
		MaxArity:     2 + rng.Intn(2),
		MaxDist:      3,
		MaxReq:       9,
		ExtraClients: rng.Intn(3),
	}, withD)
}

// scaleRequests multiplies every request and W by k (distances are
// untouched), which must not change any replica count.
func scaleRequests(in *core.Instance, k int64) *core.Instance {
	b := tree.NewBuilder()
	ids := make(map[tree.NodeID]tree.NodeID)
	t := in.Tree
	ids[t.Root()] = b.Root(t.Label(t.Root()))
	t.PreOrder(func(j tree.NodeID) {
		if j == t.Root() {
			return
		}
		p := ids[t.Parent(j)]
		if t.IsClient(j) {
			ids[j] = b.Client(p, t.Dist(j), t.Requests(j)*k, t.Label(j))
		} else {
			ids[j] = b.Internal(p, t.Dist(j), t.Label(j))
		}
	})
	return &core.Instance{Tree: b.MustBuild(), W: in.W * k, DMax: in.DMax}
}

func TestMetamorphicRequestScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	for trial := 0; trial < 30; trial++ {
		in := smallInstance(rng, trial%2 == 0)
		scaled := scaleRequests(in, 7)
		pairs := []struct {
			name string
			run  func(*core.Instance) (*core.Solution, error)
		}{
			{"single.Gen", single.Gen},
			{"multiple.Best", multiple.Best},
			{"exact.Single", func(i *core.Instance) (*core.Solution, error) {
				return exact.SolveSingle(i, exact.Options{})
			}},
			{"exact.Multiple", func(i *core.Instance) (*core.Solution, error) {
				return exact.SolveMultiple(i, exact.Options{})
			}},
		}
		for _, p := range pairs {
			a, err := p.run(in)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, p.name, err)
			}
			b, err := p.run(scaled)
			if err != nil {
				t.Fatalf("trial %d %s scaled: %v", trial, p.name, err)
			}
			if a.NumReplicas() != b.NumReplicas() {
				t.Fatalf("trial %d %s: scaling requests by 7 changed |R| %d → %d",
					trial, p.name, a.NumReplicas(), b.NumReplicas())
			}
		}
		// Lower bounds scale-invariant too.
		if core.LowerBound(in) != core.LowerBound(scaled) {
			t.Fatalf("trial %d: LowerBound not scale invariant", trial)
		}
	}
}

// addIdleClients attaches zero-request clients, which must not change
// any optimum (they are satisfied vacuously).
func TestMetamorphicIdleClientsInert(t *testing.T) {
	rng := rand.New(rand.NewSource(9002))
	for trial := 0; trial < 30; trial++ {
		in := smallInstance(rng, trial%2 == 0)
		b := tree.NewBuilder()
		t0 := in.Tree
		ids := make(map[tree.NodeID]tree.NodeID)
		ids[t0.Root()] = b.Root("")
		t0.PreOrder(func(j tree.NodeID) {
			if j == t0.Root() {
				return
			}
			p := ids[t0.Parent(j)]
			if t0.IsClient(j) {
				ids[j] = b.Client(p, t0.Dist(j), t0.Requests(j), "")
			} else {
				ids[j] = b.Internal(p, t0.Dist(j), "")
			}
		})
		// Idle clients at the root and at a random internal node.
		b.Client(ids[t0.Root()], 1, 0, "idle1")
		internals := t0.Internals()
		b.Client(ids[internals[rng.Intn(len(internals))]], 2, 0, "idle2")
		padded := &core.Instance{Tree: b.MustBuild(), W: in.W, DMax: in.DMax}

		o1, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		o2, err := exact.SolveMultiple(padded, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if o1.NumReplicas() != o2.NumReplicas() {
			t.Fatalf("trial %d: idle clients changed the optimum %d → %d",
				trial, o1.NumReplicas(), o2.NumReplicas())
		}
		s1, err := multiple.Best(in)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := multiple.Best(padded)
		if err != nil {
			t.Fatal(err)
		}
		if s1.NumReplicas() != s2.NumReplicas() {
			t.Fatalf("trial %d: idle clients changed Best %d → %d",
				trial, s1.NumReplicas(), s2.NumReplicas())
		}
	}
}

// reverseChildren rebuilds the tree with children in reverse order;
// exact optima must be unchanged (heuristics may legitimately differ).
func TestMetamorphicChildOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9003))
	for trial := 0; trial < 25; trial++ {
		in := smallInstance(rng, trial%2 == 0)
		b := tree.NewBuilder()
		t0 := in.Tree
		ids := make(map[tree.NodeID]tree.NodeID)
		ids[t0.Root()] = b.Root("")
		var rec func(j tree.NodeID)
		rec = func(j tree.NodeID) {
			ch := t0.Children(j)
			for i := len(ch) - 1; i >= 0; i-- {
				c := ch[i]
				if t0.IsClient(c) {
					ids[c] = b.Client(ids[j], t0.Dist(c), t0.Requests(c), "")
				} else {
					ids[c] = b.Internal(ids[j], t0.Dist(c), "")
					rec(c)
				}
			}
		}
		rec(t0.Root())
		rev := &core.Instance{Tree: b.MustBuild(), W: in.W, DMax: in.DMax}

		for _, pol := range []core.Policy{core.Single, core.Multiple} {
			var a, bsol *core.Solution
			var err error
			if pol == core.Single {
				a, err = exact.SolveSingle(in, exact.Options{})
				if err == nil {
					bsol, err = exact.SolveSingle(rev, exact.Options{})
				}
			} else {
				a, err = exact.SolveMultiple(in, exact.Options{})
				if err == nil {
					bsol, err = exact.SolveMultiple(rev, exact.Options{})
				}
			}
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if a.NumReplicas() != bsol.NumReplicas() {
				t.Fatalf("trial %d %v: child order changed the optimum %d → %d",
					trial, pol, a.NumReplicas(), bsol.NumReplicas())
			}
		}
	}
}

// TestMetamorphicRelaxingDMaxNeverHurts: increasing dmax can only
// decrease (or keep) the optimum.
func TestMetamorphicRelaxingDMaxNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(9004))
	for trial := 0; trial < 25; trial++ {
		in := smallInstance(rng, true)
		relaxed := &core.Instance{Tree: in.Tree, W: in.W, DMax: in.DMax * 2}
		nod := &core.Instance{Tree: in.Tree, W: in.W, DMax: core.NoDistance}
		var prev = 1 << 30
		for _, inst := range []*core.Instance{in, relaxed, nod} {
			opt, err := exact.SolveMultiple(inst, exact.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if opt.NumReplicas() > prev {
				t.Fatalf("trial %d: relaxing dmax increased the optimum", trial)
			}
			prev = opt.NumReplicas()
		}
	}
}

// TestMetamorphicRaisingWNeverHurts: increasing W can only decrease
// (or keep) the optimum.
func TestMetamorphicRaisingWNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(9005))
	for trial := 0; trial < 25; trial++ {
		in := smallInstance(rng, trial%2 == 0)
		var prev = 1 << 30
		for _, w := range []int64{in.W, in.W + 3, 2 * in.W} {
			opt, err := exact.SolveMultiple(&core.Instance{Tree: in.Tree, W: w, DMax: in.DMax}, exact.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if opt.NumReplicas() > prev {
				t.Fatalf("trial %d: raising W to %d increased the optimum", trial, w)
			}
			prev = opt.NumReplicas()
		}
	}
}

// TestOversizedClientsViaHetero: the NP-hard ri > W regime (Theorem 5)
// is served by the hetero machinery on uniform capacities; it must
// match the exact core solver on small instances, including I6
// gadgets.
func TestOversizedClientsViaHetero(t *testing.T) {
	// I6 with the smallest certificate instance.
	as := []int64{1, 1, 1, 1}
	in, K, err := gen.GadgetI6(as)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := hetero.Greedy(hetero.FromUniform(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := hetero.FromUniform(in).Verify(sol); err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() < K {
		t.Fatalf("greedy %d below the gadget optimum %d — impossible", sol.NumReplicas(), K)
	}

	// Random ri > W instances.
	rng := rand.New(rand.NewSource(9006))
	for trial := 0; trial < 25; trial++ {
		base := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(3),
			MaxArity:     2,
			MaxDist:      2,
			MaxReq:       9,
			ExtraClients: rng.Intn(2),
		}, false)
		// Shrink W below the max request to enter the oversized
		// regime, keeping Multiple feasible (every client has ≥ 2
		// eligible nodes on its path in a NoD instance of depth ≥ 1).
		in := &core.Instance{Tree: base.Tree, W: (base.Tree.MaxRequests() + 1) / 2, DMax: core.NoDistance}
		// Instance.Feasible is only a per-client necessary condition;
		// two oversized clients may compete for the same ancestors.
		// Use the exact solver as the feasibility arbiter and skip
		// genuinely infeasible draws.
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			continue
		}
		g, err := hetero.Greedy(hetero.FromUniform(in))
		if err != nil {
			t.Fatalf("trial %d: exact feasible but greedy errored: %v", trial, err)
		}
		if g.NumReplicas() < opt.NumReplicas() {
			t.Fatalf("trial %d: greedy beat the optimum", trial)
		}
	}
}
