package replicatree_test

// Smoke test: every example must build and run to completion. Examples
// are package main and cannot be imported, so this shells out to the
// local toolchain; skipped under -short.

import (
	"os/exec"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	for _, ex := range []string{"quickstart", "vod", "qos", "policies", "hetero", "replan"} {
		ex := ex
		t.Run(ex, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+ex).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", ex, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", ex)
			}
		})
	}
}
