module replicatree

go 1.22
