package replicatree_test

// Mutation-metamorphic tests for the delta layer: a session that
// mutates and re-solves incrementally must be indistinguishable —
// report for report, error for error — from cold-solving each mutated
// instance from scratch. Random mutation sequences over the golden
// corpus drive the equivalence; the replan twin re-derives the churn
// contract independently.

import (
	"context"
	"errors"
	"math/rand"
	"slices"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/delta"
	"replicatree/internal/gen"
	"replicatree/internal/multiple"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// corpusMutation draws one valid mutation against the instance shape.
func corpusMutation(rng *rand.Rand, in *core.Instance) delta.Mutation {
	t := in.Tree
	var clients, internals []tree.NodeID
	for j := 0; j < t.Len(); j++ {
		id := tree.NodeID(j)
		if t.IsClient(id) {
			clients = append(clients, id)
		} else {
			internals = append(internals, id)
		}
	}
	maxReq := in.W
	if maxReq > 16 {
		maxReq = 16
	}
	for {
		switch rng.Intn(6) {
		case 0:
			return delta.Mutation{Op: delta.OpSetRequest, Node: clients[rng.Intn(len(clients))], Requests: rng.Int63n(maxReq + 1)}
		case 1:
			return delta.Mutation{Op: delta.OpRemoveClient, Node: clients[rng.Intn(len(clients))]}
		case 2:
			return delta.Mutation{
				Op: delta.OpAddClient, Parent: internals[rng.Intn(len(internals))],
				Dist: rng.Int63n(4), Requests: rng.Int63n(maxReq + 1), Label: "grown",
			}
		case 3:
			return delta.Mutation{Op: delta.OpSetEdgeLength, Node: clients[rng.Intn(len(clients))], Dist: rng.Int63n(5)}
		case 4:
			if len(internals) < 2 {
				continue
			}
			return delta.Mutation{Op: delta.OpSetEdgeLength, Node: internals[1+rng.Intn(len(internals)-1)], Dist: rng.Int63n(5)}
		default:
			return delta.Mutation{Op: delta.OpSetCapacity, W: 1 + rng.Int63n(2*in.W)}
		}
	}
}

// TestDeltaMetamorphicCorpus replays random mutation sequences over
// every corpus instance on a single-gen session and pins each
// mutate-and-resolve against a cold solve of the snapshot: identical
// solutions, bounds, gaps, churn (vs a PlanDelta twin), and identical
// errors (text and sentinel classification) on infeasible steps.
func TestDeltaMetamorphicCorpus(t *testing.T) {
	ctx := context.Background()
	cold := solver.MustLookup(solver.SingleGen)
	for ci, entry := range gen.Corpus() {
		t.Run(entry.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9000 + int64(ci)))
			s, err := delta.New(entry.Instance, solver.SingleGen)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			prev := &core.Solution{}
			for step := 0; step < 25; step++ {
				if step > 0 {
					m := corpusMutation(rng, s.Instance())
					if err := s.Apply([]delta.Mutation{m}); err != nil {
						t.Fatalf("step %d: apply %+v: %v", step, m, err)
					}
				}
				snap := s.Instance()
				got, gerr := s.Resolve(ctx)
				want, werr := cold.Solve(ctx, solver.Request{Instance: snap})
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("step %d: delta err %v, cold err %v", step, gerr, werr)
				}
				if gerr != nil {
					if gerr.Error() != werr.Error() {
						t.Fatalf("step %d: error %q, cold %q", step, gerr, werr)
					}
					if errors.Is(gerr, solver.ErrInfeasible) != errors.Is(werr, solver.ErrInfeasible) {
						t.Fatalf("step %d: sentinel diverged: %v vs %v", step, gerr, werr)
					}
					continue
				}
				if !slices.Equal(got.Solution.Replicas, want.Solution.Replicas) ||
					!slices.Equal(got.Solution.Assignments, want.Solution.Assignments) {
					t.Fatalf("step %d: solutions diverged\n got %v\nwant %v", step, got.Solution, want.Solution)
				}
				if got.LowerBound != want.LowerBound || got.Gap != want.Gap ||
					got.Policy != want.Policy || got.Engine != want.Engine || got.Proved != want.Proved {
					t.Fatalf("step %d: report metadata diverged: %+v vs %+v", step, got, want)
				}
				wantChurn := multiple.PlanDelta(snap.Tree, prev, got.Solution)
				if got.Churn == nil ||
					!slices.Equal(got.Churn.Added, wantChurn.Added) ||
					!slices.Equal(got.Churn.Removed, wantChurn.Removed) ||
					got.Churn.MovedRequests != wantChurn.MovedRequests {
					t.Fatalf("step %d: churn %+v, want %+v", step, got.Churn, wantChurn)
				}
				prev = got.Solution
			}
		})
	}
}

// TestDeltaReplanCorpusTwin drives a multiple-replan session with
// request mutations and server failures, against an independent cold
// twin that calls multiple.ReplanExcluding directly with the same
// previous-solution thread — the engine seam must add nothing and
// lose nothing.
func TestDeltaReplanCorpusTwin(t *testing.T) {
	ctx := context.Background()
	for ci, entry := range gen.Corpus() {
		t.Run(entry.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41000 + int64(ci)))
			s, err := delta.New(entry.Instance, solver.MultipleReplan)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			twinPrev := &core.Solution{}
			var failed []tree.NodeID
			for step := 0; step < 15; step++ {
				if step > 0 {
					if rng.Intn(3) == 0 {
						// Fail (or re-fail) a random node.
						node := tree.NodeID(rng.Intn(entry.Instance.Tree.Len()))
						if err := s.Apply([]delta.Mutation{{Op: delta.OpFailServer, Node: node}}); err != nil {
							t.Fatal(err)
						}
						if _, ok := slices.BinarySearch(failed, node); !ok {
							failed = append(failed, node)
							slices.Sort(failed)
						}
					} else {
						m := corpusMutation(rng, s.Instance())
						if err := s.Apply([]delta.Mutation{m}); err != nil {
							t.Fatalf("step %d: apply %+v: %v", step, m, err)
						}
					}
				}
				snap := s.Instance()
				got, gerr := s.Resolve(ctx)
				wantSol, wantChurn, werr := multiple.ReplanExcluding(snap, twinPrev, failed)
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("step %d: session err %v, twin err %v", step, gerr, werr)
				}
				if gerr != nil {
					continue // both infeasible; neither advances its previous solution
				}
				if !slices.Equal(got.Solution.Replicas, wantSol.Replicas) ||
					!slices.Equal(got.Solution.Assignments, wantSol.Assignments) {
					t.Fatalf("step %d: solutions diverged\n got %v\nwant %v", step, got.Solution, wantSol)
				}
				if got.Churn == nil ||
					!slices.Equal(got.Churn.Added, wantChurn.Added) ||
					!slices.Equal(got.Churn.Removed, wantChurn.Removed) ||
					got.Churn.MovedRequests != wantChurn.MovedRequests {
					t.Fatalf("step %d: churn %+v, want %+v", step, got.Churn, wantChurn)
				}
				twinPrev = wantSol
			}
		})
	}
}
