// Package apicompat is a compile-time pin of the deprecated v1 solver
// API. It is never executed: the CI api-compat step (and every
// `go build ./...`) compiles it, so removing or breaking any v1 shim —
// the Solver interface, the optional metadata interfaces, the
// WithBudget context idiom, the registry accessors or the legacy
// Task/Result fields — fails the build instead of silently stranding
// downstream v1 consumers. Delete this package only together with the
// shims themselves, in a major cleanup that intends the break.
//
//lint:file-ignore SA1019 this package exists to exercise the deprecated v1 API
package apicompat

import (
	"context"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// v1Solver is the canonical external v1 implementation shape: a bare
// Solver plus the optional metadata interfaces.
type v1Solver struct{}

func (v1Solver) Name() string        { return "apicompat-v1" }
func (v1Solver) Policy() core.Policy { return core.Multiple }
func (v1Solver) Exact() bool         { return false }

func (v1Solver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	return core.Trivial(in), nil
}

// The interface satisfactions the v1 contract promised.
var (
	_ solver.Solver         = v1Solver{}
	_ solver.PolicyProvider = v1Solver{}
	_ solver.ExactProvider  = v1Solver{}
)

// UseV1API exercises every deprecated call shape of the v1 surface.
// It is intentionally unreachable from any main; the compiler is the
// only caller that matters.
func UseV1API(in *core.Instance) (*core.Solution, error) {
	// Construction shims.
	byFunc := solver.New("apicompat-new", core.Single,
		func(_ context.Context, in *core.Instance) (*core.Solution, error) { return core.Trivial(in), nil })
	byWrap := solver.Wrap("apicompat-wrap", core.Multiple,
		func(in *core.Instance) (*core.Solution, error) { return core.Trivial(in), nil })

	// Registry shims (error-returning form only: actually registering
	// would pollute the process-global registry).
	if err := solver.Register(nil); err == nil {
		return nil, err
	}
	names := solver.List()
	s, err := solver.Get(names[0])
	if err != nil {
		return nil, err
	}
	s = solver.MustGet(solver.SingleGen)
	_ = solver.Solvers()

	// Metadata probes with their documented silent defaults.
	_ = solver.PolicyOf(byFunc)
	_ = solver.IsExact(byWrap)

	// The context budget idiom.
	ctx := solver.WithBudget(context.Background(), 1000)
	if b := solver.BudgetFrom(ctx); b != 1000 {
		_ = b
	}

	// The legacy solve and batch shapes.
	sol, err := s.Solve(ctx, in)
	if err != nil {
		return nil, err
	}
	results, stats := solver.Batch(ctx, []solver.Task{{ID: "t", Solver: s, Instance: in}}, solver.Options{Workers: 1})
	_ = stats.String()
	for _, r := range results {
		if r.Err == nil && !r.Skipped {
			sol = r.Solution
		}
	}
	return sol, nil
}
