// Package sim is a discrete-time request-routing simulator. It replays
// a computed placement against a request stream: every time step each
// client emits (a possibly jittered amount of) its nominal request
// rate, the requests are routed to the servers chosen by the solution
// proportionally to the planned assignment, and the simulator records
// latencies (path distances) and per-server loads. It validates the
// static placement model dynamically — the paper's W is a per-time-unit
// capacity and dmax a latency guarantee, which is exactly what the
// simulator measures.
package sim

import (
	"fmt"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Config controls a simulation run.
type Config struct {
	// Steps is the number of simulated time units (default 100).
	Steps int
	// Jitter is the relative amplitude of per-step demand noise in
	// [0, 1): at each step a client emits a uniform amount in
	// [ri·(1−Jitter), ri·(1+Jitter)], rounded. 0 means the exact
	// nominal rate.
	Jitter float64
	// Seed seeds the demand noise.
	Seed int64
}

func (c Config) norm() Config {
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter >= 1 {
		c.Jitter = 0.99
	}
	return c
}

// Metrics aggregates a simulation run.
type Metrics struct {
	Steps        int
	TotalEmitted int64
	TotalServed  int64
	// MaxLatency is the largest client→server distance observed.
	MaxLatency int64
	// MeanLatency is the request-weighted average distance.
	MeanLatency float64
	// PeakLoad maps each server to its highest per-step load.
	PeakLoad map[tree.NodeID]int64
	// OverloadSteps counts (server, step) pairs where the load
	// exceeded W — possible only with Jitter > 0.
	OverloadSteps int
	// MaxOverload is the largest load − W observed (0 if never
	// overloaded).
	MaxOverload int64
}

// route is a precomputed per-client routing plan.
type route struct {
	client  tree.NodeID
	rate    int64
	servers []tree.NodeID
	amounts []int64
	dists   []int64
}

// Run replays the solution. The solution must be feasible for the
// instance (Run verifies it first); the returned metrics then describe
// the dynamic behaviour under the configured demand noise.
func Run(in *core.Instance, pol core.Policy, sol *core.Solution, cfg Config) (*Metrics, error) {
	if err := core.Verify(in, pol, sol); err != nil {
		return nil, fmt.Errorf("sim: solution rejected: %w", err)
	}
	cfg = cfg.norm()
	t := in.Tree

	plans := make(map[tree.NodeID]*route)
	for _, a := range sol.Assignments {
		p := plans[a.Client]
		if p == nil {
			p = &route{client: a.Client, rate: t.Requests(a.Client)}
			plans[a.Client] = p
		}
		p.servers = append(p.servers, a.Server)
		p.amounts = append(p.amounts, a.Amount)
		p.dists = append(p.dists, t.DistanceUp(a.Client, a.Server))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Metrics{Steps: cfg.Steps, PeakLoad: make(map[tree.NodeID]int64, len(sol.Replicas))}
	for _, r := range sol.Replicas {
		m.PeakLoad[r] = 0
	}
	var latencySum float64
	load := make(map[tree.NodeID]int64, len(sol.Replicas))

	for step := 0; step < cfg.Steps; step++ {
		for k := range load {
			load[k] = 0
		}
		for _, p := range plans {
			demand := p.rate
			if cfg.Jitter > 0 {
				lo := float64(p.rate) * (1 - cfg.Jitter)
				hi := float64(p.rate) * (1 + cfg.Jitter)
				demand = int64(lo + rng.Float64()*(hi-lo) + 0.5)
			}
			m.TotalEmitted += demand
			// Route proportionally to the plan, remainder to the
			// last server (closest split preserving totals).
			var sent int64
			for i := range p.servers {
				amt := p.amounts[i]
				if cfg.Jitter > 0 {
					amt = demand * p.amounts[i] / p.rate
				}
				if i == len(p.servers)-1 {
					amt = demand - sent
				}
				if amt <= 0 {
					continue
				}
				sent += amt
				load[p.servers[i]] += amt
				m.TotalServed += amt
				latencySum += float64(amt) * float64(p.dists[i])
				if p.dists[i] > m.MaxLatency {
					m.MaxLatency = p.dists[i]
				}
			}
		}
		for srv, l := range load {
			if l > m.PeakLoad[srv] {
				m.PeakLoad[srv] = l
			}
			if l > in.W {
				m.OverloadSteps++
				if l-in.W > m.MaxOverload {
					m.MaxOverload = l - in.W
				}
			}
		}
	}
	if m.TotalServed > 0 {
		m.MeanLatency = latencySum / float64(m.TotalServed)
	}
	return m, nil
}
