package sim

import (
	"strings"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// replayInst: hub and root can each hold one client cluster at W=11,
// so failing one replica forces a real re-plan.
func replayInst(t *testing.T) (*core.Instance, *core.Solution) {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	hub := b.Internal(root, 1, "hub")
	b.Client(hub, 1, 6, "c1")
	b.Client(hub, 1, 5, "c2")
	b.Client(root, 1, 4, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 11, DMax: core.NoDistance}
	return in, enginePlacement(t, solver.MultipleBin, in)
}

// TestFailureTracePinned pins the greedy-failover trace byte for byte:
// the simulator's routing, re-homing order and metric accounting are
// regression currency, exactly like the golden solver corpus.
func TestFailureTracePinned(t *testing.T) {
	in, sol := replayInst(t)
	fm, err := RunWithFailures(in, core.Multiple, sol, Config{Steps: 8},
		[]Failure{{Server: sol.Replicas[0], Step: 3, Until: 6}})
	if err != nil {
		t.Fatal(err)
	}
	const want = `steps=8 emitted=120 served=108 unserved=12 rerouted=21 worst=4 degraded=3
overload_steps=0 max_overload=0 max_latency=2 mean_latency=1.3241
peak[0]=11
peak[1]=11
`
	if got := fm.Trace(); got != want {
		t.Fatalf("failure trace drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestReplanTracePinned pins the delta-session replay of the same
// failure schedule. Where greedy failover strands 12 request units,
// re-planning with the failed server excluded serves everything — at
// the cost of one replica of churn each way.
func TestReplanTracePinned(t *testing.T) {
	in, sol := replayInst(t)
	rm, err := RunWithReplan(in, solver.MultipleReplan, Config{Steps: 8},
		[]Failure{{Server: sol.Replicas[0], Step: 3, Until: 6}})
	if err != nil {
		t.Fatal(err)
	}
	const want = `steps=8 emitted=120 served=120 unserved=0 rerouted=0 worst=0 degraded=0
overload_steps=0 max_overload=0 max_latency=2 mean_latency=1.0083
peak[0]=11
peak[1]=11
peak[4]=4
replans=2 churn_added=1 churn_removed=1 churn_moved=11
`
	if got := rm.Trace(); got != want {
		t.Fatalf("replan trace drifted:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestReplanServesEverythingAcrossFailures(t *testing.T) {
	in, sol := replayInst(t)
	rm, err := RunWithReplan(in, solver.MultipleReplan, Config{Steps: 10},
		[]Failure{{Server: sol.Replicas[0], Step: 2, Until: 5}, {Server: sol.Replicas[1], Step: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if rm.TotalServed != rm.TotalEmitted {
		t.Fatalf("replan stranded demand: served %d of %d", rm.TotalServed, rm.TotalEmitted)
	}
	if rm.OverloadSteps != 0 {
		t.Fatalf("replan overloaded a server: %+v", rm)
	}
	// Fail, heal, fail again: three down-set changes, three replans.
	if rm.Replans != 3 {
		t.Fatalf("replans = %d, want 3", rm.Replans)
	}
	if rm.ChurnAdded == 0 || rm.ChurnRemoved == 0 {
		t.Fatalf("replans reported no churn: %+v", rm)
	}
}

func TestReplanValidation(t *testing.T) {
	in, _ := replayInst(t)
	if _, err := RunWithReplan(in, solver.MultipleReplan, Config{},
		[]Failure{{Server: 99, Step: 0}}); err == nil {
		t.Error("invalid node accepted")
	}
	if _, err := RunWithReplan(in, solver.MultipleReplan, Config{},
		[]Failure{{Server: 0, Step: -1}}); err == nil {
		t.Error("negative step accepted")
	}
	// Non-delta engines cannot honour failure sets.
	if _, err := RunWithReplan(in, solver.MultipleBin, Config{Steps: 4},
		[]Failure{{Server: 0, Step: 1}}); err == nil || !strings.Contains(err.Error(), "delta engines only") {
		t.Errorf("non-delta engine: err = %v", err)
	}
	// With no failures a non-delta engine never needs SetFailed — but
	// the run must still work end to end.
	if _, err := RunWithReplan(in, solver.MultipleBin, Config{Steps: 4}, nil); err != nil {
		t.Errorf("failure-free replay: %v", err)
	}
}
