package sim

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Failure schedules replica Server to go down at Step (inclusive) and
// stay down until Until (exclusive; 0 means "for the rest of the
// run").
type Failure struct {
	Server tree.NodeID
	Step   int
	Until  int
}

// FailureMetrics extends Metrics with degradation accounting.
type FailureMetrics struct {
	Metrics
	// Unserved counts request units that could not be re-homed to any
	// surviving replica (eligible and with residual capacity).
	Unserved int64
	// Rerouted counts request units served by a replica other than
	// their planned one.
	Rerouted int64
	// WorstStepUnserved is the highest per-step unserved amount.
	WorstStepUnserved int64
	// StepsDegraded counts steps with at least one unserved unit.
	StepsDegraded int
}

// RunWithFailures replays the placement while injecting replica
// failures. At every step each client first routes to its planned
// servers; demand planned for a failed server is re-homed greedily to
// surviving replicas on the client's path within dmax, nearest first,
// subject to their residual capacity; what cannot be re-homed counts
// as unserved. Only the Multiple policy re-homes partially; under
// Single a client moves entirely or not at all.
func RunWithFailures(in *core.Instance, pol core.Policy, sol *core.Solution, cfg Config, failures []Failure) (*FailureMetrics, error) {
	if err := core.Verify(in, pol, sol); err != nil {
		return nil, fmt.Errorf("sim: solution rejected: %w", err)
	}
	cfg = cfg.norm()
	t := in.Tree
	rset := sol.ReplicaSet()
	for _, f := range failures {
		if !rset[f.Server] {
			return nil, fmt.Errorf("sim: failure of non-replica node %d", f.Server)
		}
		if f.Step < 0 {
			return nil, fmt.Errorf("sim: negative failure step %d", f.Step)
		}
	}

	// Per-client fallback order: replicas on the path within dmax,
	// nearest first (including the planned ones).
	fallback := make(map[tree.NodeID][]tree.NodeID)
	for _, c := range t.Clients() {
		if t.Requests(c) == 0 {
			continue
		}
		var opts []tree.NodeID
		for _, s := range t.EligibleServers(c, in.DMax) {
			if rset[s] {
				opts = append(opts, s)
			}
		}
		sort.Slice(opts, func(a, b int) bool {
			return t.DistanceUp(c, opts[a]) < t.DistanceUp(c, opts[b])
		})
		fallback[c] = opts
	}

	planned := make(map[tree.NodeID][]core.Assignment) // per client
	for _, a := range sol.Assignments {
		planned[a.Client] = append(planned[a.Client], a)
	}
	// Re-homing competes for residual capacity, so the client
	// processing order must be deterministic, not map order.
	clients := make([]tree.NodeID, 0, len(planned))
	for c := range planned {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(a, b int) bool { return clients[a] < clients[b] })

	m := &FailureMetrics{}
	m.Steps = cfg.Steps
	m.PeakLoad = make(map[tree.NodeID]int64, len(sol.Replicas))
	var latencySum float64
	load := make(map[tree.NodeID]int64, len(sol.Replicas))
	down := make(map[tree.NodeID]bool, len(failures))

	for step := 0; step < cfg.Steps; step++ {
		for k := range load {
			load[k] = 0
		}
		for k := range down {
			delete(down, k)
		}
		for _, f := range failures {
			if step >= f.Step && (f.Until == 0 || step < f.Until) {
				down[f.Server] = true
			}
		}

		var stepUnserved int64
		for _, c := range clients {
			asgs := planned[c]
			demand := t.Requests(c)
			m.TotalEmitted += demand

			serve := func(s tree.NodeID, amt int64) {
				load[s] += amt
				m.TotalServed += amt
				d := t.DistanceUp(c, s)
				latencySum += float64(amt) * float64(d)
				if d > m.MaxLatency {
					m.MaxLatency = d
				}
			}

			var displaced int64
			for _, a := range asgs {
				if down[a.Server] {
					displaced += a.Amount
					continue
				}
				serve(a.Server, a.Amount)
			}
			if displaced == 0 {
				continue
			}
			if pol == core.Single {
				// The whole client moves: find one surviving server
				// with room for everything.
				moved := false
				for _, s := range fallback[c] {
					if down[s] || load[s]+displaced > in.W {
						continue
					}
					serve(s, displaced)
					m.Rerouted += displaced
					moved = true
					break
				}
				if !moved {
					stepUnserved += displaced
				}
				continue
			}
			// Multiple: spread over surviving servers, nearest first.
			for _, s := range fallback[c] {
				if displaced == 0 {
					break
				}
				if down[s] {
					continue
				}
				room := in.W - load[s]
				if room <= 0 {
					continue
				}
				amt := displaced
				if amt > room {
					amt = room
				}
				serve(s, amt)
				m.Rerouted += amt
				displaced -= amt
			}
			stepUnserved += displaced
		}

		m.Unserved += stepUnserved
		if stepUnserved > m.WorstStepUnserved {
			m.WorstStepUnserved = stepUnserved
		}
		if stepUnserved > 0 {
			m.StepsDegraded++
		}
		for srv, l := range load {
			if l > m.PeakLoad[srv] {
				m.PeakLoad[srv] = l
			}
			if l > in.W {
				m.OverloadSteps++
				if l-in.W > m.MaxOverload {
					m.MaxOverload = l - in.W
				}
			}
		}
	}
	if m.TotalServed > 0 {
		m.MeanLatency = latencySum / float64(m.TotalServed)
	}
	return m, nil
}
