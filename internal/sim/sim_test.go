package sim

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

func buildInst() *core.Instance {
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 2, "a")
	b.Client(a, 3, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(root, 4, 2, "c3")
	return &core.Instance{Tree: b.MustBuild(), W: 12, DMax: core.NoDistance}
}

func TestRunDeterministic(t *testing.T) {
	in := buildInst()
	sol := enginePlacement(t, solver.SingleGen, in)
	m, err := Run(in, core.Single, sol, Config{Steps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 50 {
		t.Fatalf("Steps = %d", m.Steps)
	}
	total := in.Tree.TotalRequests() * 50
	if m.TotalEmitted != total || m.TotalServed != total {
		t.Fatalf("emitted %d served %d, want %d", m.TotalEmitted, m.TotalServed, total)
	}
	// Without jitter no server can ever exceed W.
	if m.OverloadSteps != 0 || m.MaxOverload != 0 {
		t.Fatalf("deterministic run overloaded: %+v", m)
	}
	for srv, peak := range m.PeakLoad {
		if peak > in.W {
			t.Fatalf("server %d peak %d > W", srv, peak)
		}
	}
}

func TestRunRespectsDMax(t *testing.T) {
	in := buildInst()
	in.DMax = 5
	sol := enginePlacement(t, solver.SingleGen, in)
	m, err := Run(in, core.Single, sol, Config{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxLatency > in.DMax {
		t.Fatalf("observed latency %d beyond dmax %d", m.MaxLatency, in.DMax)
	}
	if m.MeanLatency < 0 || m.MeanLatency > float64(in.DMax) {
		t.Fatalf("mean latency %v out of range", m.MeanLatency)
	}
}

func TestRunRejectsInfeasible(t *testing.T) {
	in := buildInst()
	bad := &core.Solution{} // nothing served
	if _, err := Run(in, core.Single, bad, Config{}); err == nil {
		t.Fatal("Run must reject infeasible solutions")
	}
}

func TestRunWithJitterConservation(t *testing.T) {
	in := buildInst()
	sol := enginePlacement(t, solver.MultipleBin, in)
	m, err := Run(in, core.Multiple, sol, Config{Steps: 200, Jitter: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Every emitted request is served (routing preserves totals).
	if m.TotalEmitted != m.TotalServed {
		t.Fatalf("emitted %d != served %d", m.TotalEmitted, m.TotalServed)
	}
	// With 30% jitter the emitted total is within 30% of nominal.
	nominal := float64(in.Tree.TotalRequests() * 200)
	if f := float64(m.TotalEmitted); f < 0.65*nominal || f > 1.35*nominal {
		t.Fatalf("emitted %v too far from nominal %v", f, nominal)
	}
}

func TestRunJitterOverloadDetection(t *testing.T) {
	// A saturated server (load exactly W) must overload under upward
	// jitter at least once in a long run.
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 10, "c")
	b.Client(r, 1, 1, "d")
	in := &core.Instance{Tree: b.MustBuild(), W: 11, DMax: core.NoDistance}
	sol := enginePlacement(t, solver.ExactMultiple, in)
	if sol.NumReplicas() != 1 {
		t.Fatalf("want 1 replica, got %v", sol)
	}
	m, err := Run(in, core.Multiple, sol, Config{Steps: 500, Jitter: 0.5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.OverloadSteps == 0 {
		t.Fatal("expected overload steps under 50% jitter on a saturated server")
	}
	if m.MaxOverload <= 0 {
		t.Fatal("MaxOverload should be positive")
	}
}

func TestRunDefaultsAndClamping(t *testing.T) {
	in := buildInst()
	sol := enginePlacement(t, solver.SingleGen, in)
	m, err := Run(in, core.Single, sol, Config{Steps: 0, Jitter: -3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Steps != 100 {
		t.Fatalf("default steps = %d, want 100", m.Steps)
	}
	if _, err := Run(in, core.Single, sol, Config{Jitter: 5}); err != nil {
		t.Fatal("huge jitter should clamp, not fail")
	}
}

// TestSimAgreesWithVerifierOnRandom: any feasible solution replayed
// without jitter serves everything within W and dmax.
func TestSimAgreesWithVerifierOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals: 1 + rng.Intn(8),
			MaxArity:  2,
		}, trial%2 == 0)
		sol := enginePlacement(t, solver.MultipleBin, in)
		m, err := Run(in, core.Multiple, sol, Config{Steps: 20})
		if err != nil {
			t.Fatal(err)
		}
		if m.OverloadSteps != 0 {
			t.Fatalf("trial %d: overloads without jitter", trial)
		}
		if m.MaxLatency > in.DMax {
			t.Fatalf("trial %d: latency above dmax", trial)
		}
	}
}
