package sim

import (
	"context"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// enginePlacement solves through the registry's Request/Report
// contract — the simulator's tests exercise the same seam every other
// consumer uses, not package-level solve functions.
func enginePlacement(t *testing.T, name string, in *core.Instance) *core.Solution {
	t.Helper()
	rep, err := solver.MustLookup(name).Solve(context.Background(), solver.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Solution
}

// failInst: root and hub both replicas with spare capacity, so a hub
// failure can be absorbed by the root.
func failInst(t *testing.T) (*core.Instance, *core.Solution) {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	hub := b.Internal(root, 1, "hub")
	b.Client(hub, 1, 6, "c1")
	b.Client(hub, 1, 5, "c2")
	b.Client(root, 1, 4, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 20, DMax: core.NoDistance}
	return in, enginePlacement(t, solver.MultipleBin, in)
}

func TestNoFailuresMatchesPlainRun(t *testing.T) {
	in, sol := failInst(t)
	fm, err := RunWithFailures(in, core.Multiple, sol, Config{Steps: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fm.Unserved != 0 || fm.Rerouted != 0 || fm.StepsDegraded != 0 {
		t.Fatalf("clean run shows degradation: %+v", fm)
	}
	if fm.TotalServed != in.Tree.TotalRequests()*10 {
		t.Fatalf("served %d", fm.TotalServed)
	}
}

func TestFailureAbsorbedBySpareCapacity(t *testing.T) {
	in, sol := failInst(t)
	if sol.NumReplicas() != 1 {
		// W=20 fits everything at the root; force a 2-replica layout
		// by shrinking W.
		t.Logf("layout: %v", sol)
	}
	// Shrink W to force two replicas, then fail one.
	in.W = 11
	sol2 := enginePlacement(t, solver.MultipleBin, in)
	if sol2.NumReplicas() < 2 {
		t.Fatalf("expected ≥ 2 replicas at W=11, got %v", sol2)
	}
	srv := sol2.Replicas[0]
	fm, err := RunWithFailures(in, core.Multiple, sol2, Config{Steps: 6},
		[]Failure{{Server: srv, Step: 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Before step 3 everything is clean; afterwards the survivor(s)
	// can hold at most 11 each — with 15 total demand and only one
	// survivor... count unserved consistently:
	if fm.TotalEmitted != 15*6 {
		t.Fatalf("emitted %d", fm.TotalEmitted)
	}
	if fm.TotalServed+fm.Unserved != fm.TotalEmitted {
		t.Fatalf("conservation broken: served %d + unserved %d != emitted %d",
			fm.TotalServed, fm.Unserved, fm.TotalEmitted)
	}
	if fm.StepsDegraded == 0 {
		t.Fatal("a failed replica with insufficient survivor capacity must degrade")
	}
	if fm.Rerouted == 0 {
		t.Fatal("some demand must have been rerouted to the survivor")
	}
	// Never exceed W even while failing over.
	if fm.OverloadSteps != 0 {
		t.Fatalf("failover overloaded a server: %+v", fm)
	}
}

func TestFailureRecovery(t *testing.T) {
	in, _ := failInst(t)
	in.W = 11
	sol := enginePlacement(t, solver.MultipleBin, in)
	srv := sol.Replicas[0]
	// Down only for steps 2..3; afterwards clean again.
	fm, err := RunWithFailures(in, core.Multiple, sol, Config{Steps: 8},
		[]Failure{{Server: srv, Step: 2, Until: 4}})
	if err != nil {
		t.Fatal(err)
	}
	permanent, err := RunWithFailures(in, core.Multiple, sol, Config{Steps: 8},
		[]Failure{{Server: srv, Step: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Unserved >= permanent.Unserved && permanent.Unserved > 0 {
		t.Fatalf("bounded outage (%d unserved) should hurt less than permanent (%d)",
			fm.Unserved, permanent.Unserved)
	}
}

func TestSinglePolicyFailoverIsAllOrNothing(t *testing.T) {
	// Single policy: client moves wholly or counts fully unserved.
	b := tree.NewBuilder()
	root := b.Root("root")
	hub := b.Internal(root, 1, "hub")
	b.Client(hub, 1, 9, "c1")
	b.Client(root, 1, 2, "c2")
	in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: core.NoDistance}
	sol := enginePlacement(t, solver.ExactSingle, in)
	if sol.NumReplicas() != 2 {
		t.Fatalf("want 2 replicas (9+2 > 10), got %v", sol)
	}
	// Fail c1's server: the 9 requests need one surviving server with
	// 9 spare — the other server holds 2/10, so 9 > 8 cannot move.
	var c1srv tree.NodeID = tree.None
	for _, a := range sol.Assignments {
		if in.Tree.Label(a.Client) == "c1" {
			c1srv = a.Server
		}
	}
	fm, err := RunWithFailures(in, core.Single, sol, Config{Steps: 2},
		[]Failure{{Server: c1srv, Step: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Unserved != 9*2 {
		t.Fatalf("Single failover should strand all 9 req/step, got unserved %d", fm.Unserved)
	}
	if fm.Rerouted != 0 {
		t.Fatalf("nothing should have moved, rerouted %d", fm.Rerouted)
	}
}

func TestFailureValidation(t *testing.T) {
	in, sol := failInst(t)
	if _, err := RunWithFailures(in, core.Multiple, sol, Config{},
		[]Failure{{Server: 99, Step: 0}}); err == nil {
		t.Error("failure of invalid node should be rejected")
	}
	if _, err := RunWithFailures(in, core.Multiple, sol, Config{},
		[]Failure{{Server: sol.Replicas[0], Step: -1}}); err == nil {
		t.Error("negative step should be rejected")
	}
	nonReplica := tree.NodeID(0)
	for j := 0; j < in.Tree.Len(); j++ {
		if !sol.ReplicaSet()[tree.NodeID(j)] {
			nonReplica = tree.NodeID(j)
			break
		}
	}
	if _, err := RunWithFailures(in, core.Multiple, sol, Config{},
		[]Failure{{Server: nonReplica, Step: 0}}); err == nil {
		t.Error("failure of non-replica should be rejected")
	}
}
