package sim

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"replicatree/internal/core"
	"replicatree/internal/delta"
	"replicatree/internal/tree"
)

// ReplanMetrics extends FailureMetrics with re-planning accounting:
// instead of greedily re-homing displaced demand onto the surviving
// placement (RunWithFailures), RunWithReplan asks a delta engine for a
// fresh placement excluding the failed servers, and measures how much
// the placement churns while doing so.
type ReplanMetrics struct {
	FailureMetrics
	// Replans counts failure-driven re-solves (the initial placement is
	// not one).
	Replans int
	// ChurnAdded/ChurnRemoved total replica sites that appeared and
	// disappeared across all replans; ChurnMoved totals the request
	// volume that changed servers.
	ChurnAdded   int
	ChurnRemoved int
	ChurnMoved   int64
}

// RunWithReplan replays a failure schedule against a live delta
// session (see internal/delta): whenever the set of failed servers
// changes — a failure starts or heals — the session re-solves with the
// failed servers excluded, and every client is served by the fresh
// placement. Unlike RunWithFailures the failure schedule may name any
// node, not just initially chosen replicas, and demand is never
// stranded as long as each re-solve stays feasible (an infeasible
// exclusion set aborts the run with the solver's error).
//
// The engine must be delta-capable (solver.MultipleReplan); demand is
// the nominal rate every step, so the trace is deterministic.
func RunWithReplan(in *core.Instance, engineName string, cfg Config, failures []Failure) (*ReplanMetrics, error) {
	for _, f := range failures {
		if f.Step < 0 {
			return nil, fmt.Errorf("sim: negative failure step %d", f.Step)
		}
		if !in.Tree.Valid(f.Server) {
			return nil, fmt.Errorf("sim: failure of invalid node %d", f.Server)
		}
	}
	cfg = cfg.norm()
	s, err := delta.New(in, engineName)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	defer s.Close()
	ctx := context.Background()
	rep, err := s.Resolve(ctx)
	if err != nil {
		return nil, fmt.Errorf("sim: initial placement: %w", err)
	}

	t := in.Tree
	m := &ReplanMetrics{}
	m.Steps = cfg.Steps
	m.PeakLoad = make(map[tree.NodeID]int64)
	var latencySum float64
	load := make(map[tree.NodeID]int64)
	cur := rep.Solution
	var prevDown []tree.NodeID

	for step := 0; step < cfg.Steps; step++ {
		var down []tree.NodeID
		for _, f := range failures {
			if step >= f.Step && (f.Until == 0 || step < f.Until) {
				down = append(down, f.Server)
			}
		}
		slices.Sort(down)
		down = slices.Compact(down)
		if !slices.Equal(down, prevDown) {
			if err := s.SetFailed(down); err != nil {
				return nil, fmt.Errorf("sim: step %d: %w", step, err)
			}
			rep, err = s.Resolve(ctx)
			if err != nil {
				return nil, fmt.Errorf("sim: step %d: replan with %d failed servers: %w", step, len(down), err)
			}
			m.Replans++
			if ch := rep.Churn; ch != nil {
				m.ChurnAdded += len(ch.Added)
				m.ChurnRemoved += len(ch.Removed)
				m.ChurnMoved += ch.MovedRequests
			}
			cur = rep.Solution
			prevDown = down
		}

		for k := range load {
			load[k] = 0
		}
		for _, a := range cur.Assignments {
			m.TotalEmitted += a.Amount
			m.TotalServed += a.Amount
			load[a.Server] += a.Amount
			d := t.DistanceUp(a.Client, a.Server)
			latencySum += float64(a.Amount) * float64(d)
			if d > m.MaxLatency {
				m.MaxLatency = d
			}
		}
		for srv, l := range load {
			if l > m.PeakLoad[srv] {
				m.PeakLoad[srv] = l
			}
			if l > in.W {
				m.OverloadSteps++
				if l-in.W > m.MaxOverload {
					m.MaxOverload = l - in.W
				}
			}
		}
	}
	if m.TotalServed > 0 {
		m.MeanLatency = latencySum / float64(m.TotalServed)
	}
	return m, nil
}

// Trace renders the metrics deterministically (PeakLoad in ascending
// server order) — the currency of the byte-identical pinning tests.
func (m *FailureMetrics) Trace() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "steps=%d emitted=%d served=%d unserved=%d rerouted=%d worst=%d degraded=%d\n",
		m.Steps, m.TotalEmitted, m.TotalServed, m.Unserved, m.Rerouted, m.WorstStepUnserved, m.StepsDegraded)
	fmt.Fprintf(&sb, "overload_steps=%d max_overload=%d max_latency=%d mean_latency=%.4f\n",
		m.OverloadSteps, m.MaxOverload, m.MaxLatency, m.MeanLatency)
	servers := make([]tree.NodeID, 0, len(m.PeakLoad))
	for srv := range m.PeakLoad {
		servers = append(servers, srv)
	}
	sort.Slice(servers, func(a, b int) bool { return servers[a] < servers[b] })
	for _, srv := range servers {
		fmt.Fprintf(&sb, "peak[%d]=%d\n", srv, m.PeakLoad[srv])
	}
	return sb.String()
}

// Trace renders the replan metrics deterministically, extending the
// failure trace with the churn accounting.
func (m *ReplanMetrics) Trace() string {
	return m.FailureMetrics.Trace() +
		fmt.Sprintf("replans=%d churn_added=%d churn_removed=%d churn_moved=%d\n",
			m.Replans, m.ChurnAdded, m.ChurnRemoved, m.ChurnMoved)
}
