package single

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
)

// TestPushUpImprovesFig4: on the Fig. 4 family, single-nod leaves the
// K one-request clients on K distinct servers' smaller halves; PushUp
// cannot beat the optimum but must never hurt.
func TestPushUpNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		withD := trial%3 == 0
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(8),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      4,
			MaxReq:       12,
			ExtraClients: rng.Intn(5),
		}, withD)
		base, err := Gen(in)
		if err != nil {
			t.Fatal(err)
		}
		up := PushUp(in, base)
		if err := core.Verify(in, core.Single, up); err != nil {
			t.Fatalf("trial %d: PushUp broke feasibility: %v", trial, err)
		}
		if up.NumReplicas() > base.NumReplicas() {
			t.Fatalf("trial %d: PushUp increased replicas %d → %d",
				trial, base.NumReplicas(), up.NumReplicas())
		}
	}
}

func TestPushUpMergesIntoAncestor(t *testing.T) {
	// Trivial solution on the paper toy: everything fits in one root
	// server, but R = C has three. PushUp has no ancestor servers to
	// merge into (clients are the only replicas), so it keeps 3 — then
	// starting from a solution with a root server it folds everything.
	in := buildPaper(14, core.NoDistance)
	triv := core.Trivial(in)
	if got := PushUp(in, triv).NumReplicas(); got != 3 {
		t.Fatalf("no ancestor server to merge into: want 3, got %d", got)
	}
	// Seed a solution with servers at root and both internals.
	sol, err := NoD(in)
	if err != nil {
		t.Fatal(err)
	}
	up := PushUp(in, sol)
	if up.NumReplicas() > sol.NumReplicas() {
		t.Fatal("PushUp hurt")
	}
}

func TestPushUpRespectsDistance(t *testing.T) {
	// c1 at distance 3 from a and 4 from root; dmax = 3 forbids
	// re-homing c1's server from a to root.
	in := buildPaper(100, 2)
	sol, err := Gen(in)
	if err != nil {
		t.Fatal(err)
	}
	up := PushUp(in, sol)
	if err := core.Verify(in, core.Single, up); err != nil {
		t.Fatalf("PushUp violated dmax: %v", err)
	}
}

func TestPushUpOnFig4(t *testing.T) {
	res, err := gen.GadgetFig4(4)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Instance
	sol, err := NoD(in)
	if err != nil {
		t.Fatal(err)
	}
	up := PushUp(in, sol)
	if err := core.Verify(in, core.Single, up); err != nil {
		t.Fatal(err)
	}
	if up.NumReplicas() > sol.NumReplicas() {
		t.Fatal("PushUp hurt on Fig4")
	}
}
