package single

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Session is the reusable warm-path state for the Single-policy
// algorithms. Bind it to a validated instance with Reset, then call
// Gen/NoD repeatedly: after the first solve has grown the buffers,
// further solves on the same (or a same-shape) instance perform zero
// heap allocations and return exactly the solution the package-level
// Gen/NoD would.
//
// All working memory lives in the session: client bundles are nodes of
// an arena linked list (so merging bundles is O(1) pointer splicing
// instead of slice appends), the Algorithm 1 pending couples live on an
// explicit postorder value stack, and the Algorithm 2 sorted lists Lj
// are per-node slices reused across solves. The returned *core.Solution
// is owned by the session and valid only until the next solve on it.
// A Session is not safe for concurrent use.
type Session struct {
	in      *core.Instance
	flat    *tree.Flat
	relaxed core.Instance // NoD verifies against the DMax-free twin
	sc      core.Scratch
	sol     core.Solution

	arena  []cnode      // client bundles, reset every solve
	pstack []genPending // Algorithm 1 postorder stack
	lists  [][]nentry   // Algorithm 2: Lj, sorted by non-decreasing total
}

// cnode is one client bundle in the arena: a (client, r) pair plus the
// index of the next bundle of the same pending set (-1 terminates).
type cnode struct {
	client tree.NodeID
	r      int64
	next   int32
}

// genPending mirrors pending with the clients slice replaced by an
// arena list [head, tail].
type genPending struct {
	head, tail  int32
	total, dist int64
}

// nentry mirrors entry with the clients slice replaced by an arena
// list [head, tail].
type nentry struct {
	node       tree.NodeID
	total      int64
	head, tail int32
}

// Reset binds the session to an instance and its flat twin. The caller
// must have validated the instance (the solver seam validates once at
// ingest); Reset itself does not allocate.
func (s *Session) Reset(in *core.Instance, f *tree.Flat) {
	s.in = in
	s.flat = f
	s.relaxed = core.Instance{Tree: in.Tree, W: in.W, DMax: core.NoDistance}
}

func (s *Session) resetSolve() {
	s.sol.Replicas = s.sol.Replicas[:0]
	s.sol.Assignments = s.sol.Assignments[:0]
	s.arena = s.arena[:0]
}

func (s *Session) newCNode(c tree.NodeID, r int64) int32 {
	s.arena = append(s.arena, cnode{client: c, r: r, next: -1})
	return int32(len(s.arena) - 1)
}

// feasibleSingle is Instance.Feasible(core.Single) computed on the
// flat twin without allocating: a Single instance is feasible iff
// every client has ri ≤ W, i.e. max ri ≤ W.
func feasibleSingle(f *tree.Flat, w int64) bool {
	return f.MaxRequests() <= w
}

// Gen is the warm-path Algorithm 1. It produces the same normalized
// solution as the package-level Gen: the recursion is replaced by a
// value stack over the flat postorder — when an internal node is
// reached, its children's pending couples are exactly the top
// NumChildren stack entries in child order — and the placement
// decisions depend only on the (total, dist) values, never on event
// order, so the normalized result is identical.
func (s *Session) Gen() (*core.Solution, error) {
	in, f := s.in, s.flat
	if !feasibleSingle(f, in.W) {
		return nil, fmt.Errorf("single: some client exceeds W=%d; Single has no solution", in.W)
	}
	s.resetSolve()
	st := s.pstack[:0]
	root := f.Root()
	for _, j := range f.Post {
		if f.IsClient(j) {
			p := genPending{head: -1, tail: -1, total: f.Reqs[j], dist: in.DMax}
			if p.total > 0 {
				idx := s.newCNode(j, p.total)
				p.head, p.tail = idx, idx
			}
			st = append(st, p)
			continue
		}
		k := f.NumChildren(j)
		base := len(st) - k
		var sum int64
		ci := 0
		for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
			p := &st[base+ci]
			// Step 1: requests that cannot travel the edge (c → j) are
			// served at c itself.
			if f.Dist(c) > p.dist && p.total > 0 {
				s.place(c, p)
			} else {
				p.dist -= f.Dist(c)
			}
			sum += p.total
			ci++
		}
		out := genPending{head: -1, tail: -1, dist: in.DMax}
		switch {
		case sum > in.W:
			// Step 2: too much to carry; a server on every child that
			// still has pending requests.
			ci = 0
			for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
				if st[base+ci].total > 0 {
					s.place(c, &st[base+ci])
				}
				ci++
			}
		case j == root:
			// Step 3a: the root absorbs whatever remains.
			if sum > 0 {
				s.sol.AddReplica(j)
				for i := 0; i < k; i++ {
					for x := st[base+i].head; x != -1; x = s.arena[x].next {
						s.sol.Assign(s.arena[x].client, j, s.arena[x].r)
					}
				}
			}
		default:
			// Step 3b: forward the merged pending set upwards; the
			// distance budget is the minimum over contributing children.
			for i := 0; i < k; i++ {
				p := &st[base+i]
				if p.total == 0 {
					continue
				}
				if out.head == -1 {
					out.head, out.tail = p.head, p.tail
				} else {
					s.arena[out.tail].next = p.head
					out.tail = p.tail
				}
				out.total += p.total
				if p.dist < out.dist {
					out.dist = p.dist
				}
			}
		}
		st = st[:base]
		st = append(st, out)
	}
	s.pstack = st
	if st[0].total != 0 {
		panic("single: gen left unassigned requests at the root")
	}
	s.sol.Normalize()
	if err := s.sc.Verify(f, in, core.Single, &s.sol); err != nil {
		return nil, fmt.Errorf("single: gen produced infeasible solution: %w", err)
	}
	return &s.sol, nil
}

// place puts a replica at node x serving all of p's bundles.
func (s *Session) place(x tree.NodeID, p *genPending) {
	s.sol.AddReplica(x)
	for i := p.head; i != -1; i = s.arena[i].next {
		s.sol.Assign(s.arena[i].client, x, s.arena[i].r)
	}
	p.head, p.tail = -1, -1
	p.total = 0
	p.dist = s.in.DMax
}

// NoD is the warm-path Algorithm 2. Unlike Gen it keeps the cold
// path's method recursion: the sorted insert into Lj places a new
// entry before existing entries of equal total, so the exact
// interleaving of re-attach and forward insertions matters for
// tie-breaking, and recursion reproduces it verbatim. Method recursion
// does not heap-allocate.
func (s *Session) NoD() (*core.Solution, error) {
	in, f := s.in, s.flat
	if !feasibleSingle(f, in.W) {
		return nil, fmt.Errorf("single: some client exceeds W=%d; Single has no solution", in.W)
	}
	s.resetSolve()
	n := f.Len()
	if cap(s.lists) < n {
		s.lists = make([][]nentry, n)
	}
	s.lists = s.lists[:n]
	for i := range s.lists {
		s.lists[i] = s.lists[i][:0]
	}
	rem := s.nodVisit(f.Root())
	if rem != 0 {
		panic("single: nod left unassigned requests at the root")
	}
	s.sol.Normalize()
	if err := s.sc.Verify(f, &s.relaxed, core.Single, &s.sol); err != nil {
		return nil, fmt.Errorf("single: nod produced infeasible solution: %w", err)
	}
	return &s.sol, nil
}

func (s *Session) nodVisit(j tree.NodeID) int64 {
	f := s.flat
	if f.IsClient(j) {
		return f.Reqs[j]
	}
	for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
		req := s.nodVisit(c)
		if req != 0 {
			e := nentry{node: c, total: req, head: -1, tail: -1}
			if f.IsClient(c) {
				idx := s.newCNode(c, req)
				e.head, e.tail = idx, idx
			} else {
				e.head, e.tail = s.nodCollect(c)
			}
			s.nodInsert(j, e)
		}
	}

	l := s.lists[j]
	var sum int64
	for i := range l {
		sum += l[i].total
	}

	if sum > s.in.W {
		// Step 1: place a server at j, fill it greedily with the
		// smallest entries, and give the first entry that does not fit
		// a server of its own (jmin).
		s.sol.AddReplica(j)
		var temp int64
		k := 0
		for k < len(l) && temp <= s.in.W {
			e := &l[k]
			temp += e.total
			if temp > s.in.W {
				s.sol.AddReplica(e.node)
				s.nodAssign(e.node, e)
			} else {
				s.nodAssign(j, e)
			}
			k++
		}
		rest := l[k:]
		if j != f.Root() {
			// Step 1a: re-attach unhandled entries to the parent.
			// nodInsert copies the entry into the parent's list, so
			// truncating Lj afterwards is safe.
			parent := f.Parents[j]
			for i := range rest {
				s.nodInsert(parent, rest[i])
			}
		} else {
			// Step 1b: at the root, every unhandled entry gets a
			// server at its own node.
			for i := range rest {
				s.sol.AddReplica(rest[i].node)
				s.nodAssign(rest[i].node, &rest[i])
			}
		}
		s.lists[j] = l[:0]
		return 0
	}

	// Step 2: everything fits at j or above.
	if j != f.Root() {
		return sum
	}
	// Step 2b: the root absorbs the remainder.
	if sum > 0 {
		s.sol.AddReplica(j)
		for i := range l {
			s.nodAssign(j, &l[i])
		}
	}
	s.lists[j] = l[:0]
	return 0
}

// nodInsert adds e into the sorted list of node j (non-decreasing
// total; equal totals keep the cold path's insert-before-equals rule).
func (s *Session) nodInsert(j tree.NodeID, e nentry) {
	l := s.lists[j]
	k := sort.Search(len(l), func(i int) bool { return l[i].total >= e.total })
	l = append(l, nentry{})
	copy(l[k+1:], l[k:])
	l[k] = e
	s.lists[j] = l
}

// nodAssign gives all bundles of e to server srv.
func (s *Session) nodAssign(srv tree.NodeID, e *nentry) {
	for i := e.head; i != -1; i = s.arena[i].next {
		s.sol.Assign(s.arena[i].client, srv, s.arena[i].r)
	}
}

// nodCollect drains the pending list of internal node c, splicing all
// of its bundles into one arena list.
func (s *Session) nodCollect(c tree.NodeID) (head, tail int32) {
	head, tail = -1, -1
	l := s.lists[c]
	for i := range l {
		if l[i].head == -1 {
			continue
		}
		if head == -1 {
			head, tail = l[i].head, l[i].tail
		} else {
			s.arena[tail].next = l[i].head
			tail = l[i].tail
		}
	}
	s.lists[c] = l[:0]
	return head, tail
}
