package single

import (
	"math/rand"
	"testing"
	"testing/quick"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
)

// TestPassUpOptimalOnFig4: the pass-up variant solves the Fig. 4
// family optimally — the instance class where Algorithm 2 is stuck at
// ratio 2.
func TestPassUpOptimalOnFig4(t *testing.T) {
	for k := 1; k <= 8; k++ {
		res, err := gen.GadgetFig4(k)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := NoDPassUp(res.Instance)
		if err != nil {
			t.Fatal(err)
		}
		if sol.NumReplicas() != res.OptReplicas {
			t.Errorf("Fig4(K=%d): pass-up = %d, optimum %d", k, sol.NumReplicas(), res.OptReplicas)
		}
	}
}

// TestPassUpFeasibilityQuick: always feasible, always ≥ lower bound.
func TestPassUpFeasibilityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(12),
			MaxArity:     2 + rng.Intn(4),
			MaxDist:      5,
			MaxReq:       20,
			ExtraClients: rng.Intn(8),
		}, false)
		sol, err := NoDPassUp(in)
		if err != nil {
			return false
		}
		return core.Verify(in, core.Single, sol) == nil &&
			sol.NumReplicas() >= core.LowerBound(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDBestWithinConjecturedRatio probes the paper's conjecture: on
// random binary Single-NoD instances, the better of Algorithm 2 and
// the pass-up variant stays within 3/2 of the optimum. This is an
// empirical observation, not a proof — if this test ever fails, the
// failing instance is a counterexample worth publishing, so the test
// prints it loudly.
func TestNoDBestWithinConjecturedRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	worst := 0.0
	for trial := 0; trial < 300; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, false)
		sol, err := NoDBest(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ratio := float64(sol.NumReplicas()) / float64(opt.NumReplicas())
		if ratio > worst {
			worst = ratio
		}
		if ratio > 1.5+1e-9 {
			t.Fatalf("trial %d: NoDBest ratio %.3f > 3/2 — empirical counterexample to the conjectured bound!\n%s\nW=%d algo=%d opt=%d",
				trial, ratio, in.Tree, in.W, sol.NumReplicas(), opt.NumReplicas())
		}
	}
	t.Logf("worst NoDBest ratio over 300 binary NoD instances: %.3f", worst)
}

// TestNoDBestNeverWorseThanNoD: the combination inherits the proven
// 2-approximation.
func TestNoDBestNeverWorseThanNoD(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 100; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(8),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      4,
			MaxReq:       12,
			ExtraClients: rng.Intn(5),
		}, false)
		nod, err := NoD(in)
		if err != nil {
			t.Fatal(err)
		}
		best, err := NoDBest(in)
		if err != nil {
			t.Fatal(err)
		}
		if best.NumReplicas() > nod.NumReplicas() {
			t.Fatalf("trial %d: NoDBest %d > NoD %d", trial, best.NumReplicas(), nod.NumReplicas())
		}
	}
}

func TestPassUpRejectsOversized(t *testing.T) {
	in := buildPaper(6, core.NoDistance) // c2 = 7 > 6
	if _, err := NoDPassUp(in); err == nil {
		t.Fatal("pass-up should reject ri > W")
	}
}

func TestPassUpSingleRootServer(t *testing.T) {
	in := buildPaper(14, core.NoDistance)
	sol, err := NoDPassUp(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 1 || sol.Replicas[0] != in.Tree.Root() {
		t.Fatalf("want single root replica, got %v", sol)
	}
}
