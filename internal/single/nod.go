package single

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// entry is an element of the sorted pending list Lj of Algorithm 2: a
// node (child of j, or a descendant re-attached to j by an earlier
// server placement) together with the whole-client request bundles it
// carries. Under Single a bundle travels and is assigned as a unit.
type entry struct {
	node    tree.NodeID
	total   int64
	clients []clientReq
}

// NoD runs Algorithm 2 (single-nod), the 2-approximation for
// Single-NoD. The instance's DMax is ignored: the algorithm assumes no
// distance constraint, and the returned solution is feasible for the
// NoD relaxation of the instance (it is also feasible for the original
// instance whenever the original instance's DMax is NoDistance).
//
// Time complexity: O((Δ log Δ + |C|)·|T|) (Theorem 4).
func NoD(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.Feasible(core.Single) {
		return nil, fmt.Errorf("single: some client exceeds W=%d; Single has no solution", in.W)
	}
	relaxed := &core.Instance{Tree: in.Tree, W: in.W, DMax: core.NoDistance}
	sol := &core.Solution{}
	s := &nodState{in: relaxed, sol: sol, lists: make(map[tree.NodeID][]entry)}
	rem := s.visit(relaxed.Tree.Root())
	if rem != 0 {
		panic("single: nod left unassigned requests at the root")
	}
	sol.Normalize()
	if err := core.Verify(relaxed, core.Single, sol); err != nil {
		return nil, fmt.Errorf("single: nod produced infeasible solution: %w", err)
	}
	return sol, nil
}

type nodState struct {
	in    *core.Instance
	sol   *core.Solution
	lists map[tree.NodeID][]entry // Lj: pending entries, sorted by non-decreasing total
}

// insert adds e into the sorted list of node j (non-decreasing total).
func (s *nodState) insert(j tree.NodeID, e entry) {
	l := s.lists[j]
	k := sort.Search(len(l), func(i int) bool { return l[i].total >= e.total })
	l = append(l, entry{})
	copy(l[k+1:], l[k:])
	l[k] = e
	s.lists[j] = l
}

// assign gives all bundles of e to server srv.
func (s *nodState) assign(srv tree.NodeID, e *entry) {
	for _, c := range e.clients {
		s.sol.Assign(c.client, srv, c.r)
	}
}

// visit is the recursive procedure single-nod(j) of Algorithm 2. It
// returns the number of requests that still need to be processed at or
// above j. Side effect: it may move entries from Lj into Lparent(j).
func (s *nodState) visit(j tree.NodeID) int64 {
	t := s.in.Tree
	if t.IsClient(j) {
		return t.Requests(j)
	}
	for _, c := range t.Children(j) {
		req := s.visit(c)
		if req != 0 {
			e := entry{node: c, total: req}
			if t.IsClient(c) {
				e.clients = []clientReq{{c, req}}
			} else {
				// An internal child returning req != 0 forwarded the
				// union of its own pending entries; collect them.
				e.clients = s.collect(c)
			}
			s.insert(j, e)
		}
	}

	l := s.lists[j]
	var sum int64
	for i := range l {
		sum += l[i].total
	}

	if sum > s.in.W {
		// Step 1: place a server at j, fill it greedily with the
		// smallest entries, and give the first entry that does not fit
		// a server of its own (jmin).
		s.sol.AddReplica(j)
		var temp int64
		k := 0
		for k < len(l) && temp <= s.in.W {
			e := &l[k]
			temp += e.total
			if temp > s.in.W {
				// jmin: the overflow entry is served at its own node.
				s.sol.AddReplica(e.node)
				s.assign(e.node, e)
			} else {
				s.assign(j, e)
			}
			k++
		}
		rest := l[k:]
		delete(s.lists, j)
		if j != t.Root() {
			// Step 1a: re-attach unhandled entries to the parent.
			for _, e := range rest {
				s.insert(t.Parent(j), e)
			}
		} else {
			// Step 1b: at the root, every unhandled entry gets a
			// server at its own node.
			for i := range rest {
				s.sol.AddReplica(rest[i].node)
				s.assign(rest[i].node, &rest[i])
			}
		}
		return 0
	}

	// Step 2: everything fits at j or above.
	if j != t.Root() {
		return sum
	}
	// Step 2b: the root absorbs the remainder. (The paper places a
	// server unconditionally; we skip it when there is nothing left to
	// serve.)
	if sum > 0 {
		s.sol.AddReplica(j)
		for i := range l {
			s.assign(j, &l[i])
		}
	}
	delete(s.lists, j)
	return 0
}

// collect removes and returns all client bundles pending at internal
// node c — used when c's visit returned a non-zero req, meaning c
// forwarded its whole list upward as one aggregated entry.
func (s *nodState) collect(c tree.NodeID) []clientReq {
	l := s.lists[c]
	delete(s.lists, c)
	var out []clientReq
	for i := range l {
		out = append(out, l[i].clients...)
	}
	return out
}
