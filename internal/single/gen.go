// Package single implements the Single-policy algorithms of the paper:
// Algorithm 1 (single-gen), a (Δ+1)-approximation for Single with
// distance constraints (a Δ-approximation without them), and
// Algorithm 2 (single-nod), a 2-approximation for Single-NoD.
// Single is NP-hard in the strong sense even on binary trees without
// distance constraints (Theorem 1), so these approximations are the
// best practical tools the paper offers for this policy.
package single

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// pending is a batch of whole-client request bundles flowing up the
// tree. Under the Single policy a bundle is never split: either the
// whole client is assigned to a server or it keeps travelling up.
type pending struct {
	clients []clientReq
	total   int64
	dist    int64 // remaining distance budget: requests must be served within dist of the current node
}

type clientReq struct {
	client tree.NodeID
	r      int64
}

// Gen runs Algorithm 1 (single-gen) and returns a feasible solution to
// Single. The returned solution uses at most (Δ+1)·opt replicas, and at
// most Δ·opt when in.DMax is core.NoDistance (Corollary 1). It returns
// an error if some client has ri > W (then Single has no solution) or
// the instance is invalid.
//
// Time complexity: O(Δ·|T|) list-merge operations (Theorem 3).
func Gen(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.Feasible(core.Single) {
		return nil, fmt.Errorf("single: some client exceeds W=%d; Single has no solution", in.W)
	}
	sol := &core.Solution{}
	g := &genState{in: in, sol: sol}
	p := g.visit(in.Tree.Root())
	// The paper's procedure guarantees single-gen(r) = (0, dmax):
	// everything has been assigned once the root returns.
	if p.total != 0 {
		panic("single: gen left unassigned requests at the root")
	}
	sol.Normalize()
	if err := core.Verify(in, core.Single, sol); err != nil {
		return nil, fmt.Errorf("single: gen produced infeasible solution: %w", err)
	}
	return sol, nil
}

type genState struct {
	in  *core.Instance
	sol *core.Solution
}

// place puts a replica at node x serving all of p's clients.
func (g *genState) place(x tree.NodeID, p *pending) {
	g.sol.AddReplica(x)
	for _, c := range p.clients {
		g.sol.Assign(c.client, x, c.r)
	}
	p.clients = nil
	p.total = 0
	p.dist = g.in.DMax
}

// visit is the recursive procedure single-gen(j) of Algorithm 1. It
// returns the couple (req, dist): req ≤ W requests that still need to
// be processed at or above j, within distance dist of j.
func (g *genState) visit(j tree.NodeID) pending {
	t := g.in.Tree
	if t.IsClient(j) {
		p := pending{total: t.Requests(j), dist: g.in.DMax}
		if p.total > 0 {
			p.clients = []clientReq{{j, p.total}}
		}
		return p
	}

	children := t.Children(j)
	ps := make([]pending, len(children))
	var sum int64
	for k, c := range children {
		p := g.visit(c)
		// Step 1: if the pending requests of child c cannot travel the
		// edge (c → j), serve them at c itself.
		if t.Dist(c) > p.dist && p.total > 0 {
			g.place(c, &p)
		} else {
			p.dist -= t.Dist(c)
		}
		ps[k] = p
		sum += p.total
	}

	if sum > g.in.W {
		// Step 2: too much to carry; a server on every child that
		// still has pending requests.
		for k := range ps {
			if ps[k].total > 0 {
				g.place(children[k], &ps[k])
			}
		}
		return pending{dist: g.in.DMax}
	}

	if j == t.Root() {
		// Step 3a: the root absorbs whatever remains.
		if sum > 0 {
			g.sol.AddReplica(j)
			for k := range ps {
				for _, c := range ps[k].clients {
					g.sol.Assign(c.client, j, c.r)
				}
			}
		}
		return pending{dist: g.in.DMax}
	}

	// Step 3b: forward the merged pending set upwards. The distance
	// budget of the merge is the minimum over contributing children.
	// (The paper takes the minimum over all children; we restrict it to
	// children that actually forward requests — a child forwarding
	// nothing cannot constrain anything. On instances where every
	// client has requests the two definitions coincide.)
	out := pending{dist: g.in.DMax}
	for k := range ps {
		if ps[k].total == 0 {
			continue
		}
		out.clients = append(out.clients, ps[k].clients...)
		out.total += ps[k].total
		if ps[k].dist < out.dist {
			out.dist = ps[k].dist
		}
	}
	return out
}
