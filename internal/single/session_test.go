package single

import (
	"math/rand"
	"slices"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func solutionsEqual(a, b *core.Solution) bool {
	return slices.Equal(a.Replicas, b.Replicas) && slices.Equal(a.Assignments, b.Assignments)
}

func sessionInstance(rng *rand.Rand) *core.Instance {
	return gen.RandomInstance(rng, gen.TreeConfig{
		Internals:    1 + rng.Intn(30),
		MaxArity:     2 + rng.Intn(3),
		MaxDist:      4,
		MaxReq:       8,
		ExtraClients: rng.Intn(6),
	}, rng.Intn(2) == 0)
}

// TestSessionMatchesCold pins the warm-path contract: a Session solve
// returns exactly the normalized solution of the package-level
// functions, on many random instances and repeatedly on the same
// session.
func TestSessionMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var s Session
	var f tree.Flat
	for i := 0; i < 200; i++ {
		in := sessionInstance(rng)
		tree.FlattenInto(&f, in.Tree)
		s.Reset(in, &f)
		for round := 0; round < 2; round++ {
			cold, coldErr := Gen(in)
			warm, warmErr := s.Gen()
			if (coldErr == nil) != (warmErr == nil) {
				t.Fatalf("instance %d: gen cold err %v, warm err %v", i, coldErr, warmErr)
			}
			if coldErr == nil && !solutionsEqual(cold, warm) {
				t.Fatalf("instance %d: gen cold %v != warm %v", i, cold, warm)
			}
			coldN, coldErrN := NoD(in)
			warmN, warmErrN := s.NoD()
			if (coldErrN == nil) != (warmErrN == nil) {
				t.Fatalf("instance %d: nod cold err %v, warm err %v", i, coldErrN, warmErrN)
			}
			if coldErrN == nil && !solutionsEqual(coldN, warmN) {
				t.Fatalf("instance %d: nod cold %v != warm %v", i, coldN, warmN)
			}
		}
	}
}

// TestSessionInfeasible mirrors the cold error when a client exceeds W.
func TestSessionInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("")
	b.Client(r, 1, 10, "")
	b.Client(r, 1, 2, "")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: core.NoDistance}
	f := tree.Flatten(in.Tree)
	var s Session
	s.Reset(in, f)
	if _, err := s.Gen(); err == nil {
		t.Fatal("warm gen accepted an infeasible instance")
	}
	if _, err := s.NoD(); err == nil {
		t.Fatal("warm nod accepted an infeasible instance")
	}
}

// TestSessionAllocFree pins the tentpole invariant at the package
// level: warm Gen and NoD allocate nothing.
func TestSessionAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 60, MaxArity: 3, ExtraClients: 20}, true)
	f := tree.Flatten(in.Tree)
	var s Session
	s.Reset(in, f)
	if _, err := s.Gen(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.NoD(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := s.Gen(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm Gen allocated %.1f times per run", avg)
	}
	avg = testing.AllocsPerRun(50, func() {
		if _, err := s.NoD(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm NoD allocated %.1f times per run", avg)
	}
}
