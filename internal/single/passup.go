package single

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// NoDPassUp is an experimental Single-NoD heuristic in the direction
// the paper's conclusion sketches for a conjectured 3/2-approximation
// of Single-NoD-Bin: "push servers towards the root of the tree,
// whenever possible. A greedy algorithm is unlikely to be good
// enough."
//
// It mirrors Algorithm 2 but changes the overflow step: when the
// pending bundles at node j exceed W, the server placed at j packs
// bundles largest-first (maximising served volume), and the unpacked
// remainder travels towards the root instead of being dumped on a jmin
// server. At the root, whatever cannot be packed is served at its own
// carrying node.
//
// On the Fig. 4 family — where Algorithm 2 is stuck at ratio 2 — this
// variant is optimal. No approximation factor is proven; experiment
// E13 measures its empirical ratio against exact optima, and
// NoDBest (the better of NoD and NoDPassUp) is the practical tool.
func NoDPassUp(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.Feasible(core.Single) {
		return nil, fmt.Errorf("single: some client exceeds W=%d; Single has no solution", in.W)
	}
	relaxed := &core.Instance{Tree: in.Tree, W: in.W, DMax: core.NoDistance}
	sol := &core.Solution{}
	s := &passUpState{in: relaxed, sol: sol, lists: make(map[tree.NodeID][]entry)}
	s.visit(relaxed.Tree.Root())
	sol.Normalize()
	if err := core.Verify(relaxed, core.Single, sol); err != nil {
		return nil, fmt.Errorf("single: pass-up produced infeasible solution: %w", err)
	}
	return sol, nil
}

// NoDBest returns the better of NoD (Algorithm 2, proven
// 2-approximation) and NoDPassUp — never worse than either, so the
// 2-approximation guarantee carries over.
func NoDBest(in *core.Instance) (*core.Solution, error) {
	a, err := NoD(in)
	if err != nil {
		return nil, err
	}
	b, err := NoDPassUp(in)
	if err != nil {
		return nil, err
	}
	if b.NumReplicas() < a.NumReplicas() {
		return b, nil
	}
	return a, nil
}

type passUpState struct {
	in    *core.Instance
	sol   *core.Solution
	lists map[tree.NodeID][]entry // pending entries per node (unsorted)
}

func (s *passUpState) assign(srv tree.NodeID, e *entry) {
	for _, c := range e.clients {
		s.sol.Assign(c.client, srv, c.r)
	}
}

// pack greedily selects entries for one server of capacity W,
// largest-first (first-fit decreasing on a single bin), returning the
// selected and remaining entries.
func pack(l []entry, W int64) (take, rest []entry) {
	idx := make([]int, len(l))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if l[idx[a]].total != l[idx[b]].total {
			return l[idx[a]].total > l[idx[b]].total
		}
		return l[idx[a]].node < l[idx[b]].node
	})
	var load int64
	chosen := make([]bool, len(l))
	for _, i := range idx {
		if load+l[i].total <= W {
			load += l[i].total
			chosen[i] = true
		}
	}
	for i := range l {
		if chosen[i] {
			take = append(take, l[i])
		} else {
			rest = append(rest, l[i])
		}
	}
	return take, rest
}

// visit returns nothing; the pending list of j is stored in s.lists[j]
// and consumed by the parent.
func (s *passUpState) visit(j tree.NodeID) {
	t := s.in.Tree
	if t.IsClient(j) {
		if r := t.Requests(j); r > 0 {
			s.lists[j] = []entry{{node: j, total: r, clients: []clientReq{{j, r}}}}
		}
		return
	}
	var pending []entry
	for _, c := range t.Children(j) {
		s.visit(c)
		pending = append(pending, s.lists[c]...)
		delete(s.lists, c)
	}
	var sum int64
	for i := range pending {
		sum += pending[i].total
	}

	if j == t.Root() {
		if sum == 0 {
			return
		}
		// Pack one root server; every leftover bundle is served at
		// the node that carried it (an ancestor of its clients).
		take, rest := pack(pending, s.in.W)
		if len(take) > 0 {
			s.sol.AddReplica(j)
			for i := range take {
				s.assign(j, &take[i])
			}
		}
		for i := range rest {
			s.sol.AddReplica(rest[i].node)
			s.assign(rest[i].node, &rest[i])
		}
		return
	}

	if sum > s.in.W {
		// Overflow: one server at j packed largest-first; the
		// remainder keeps climbing. Bundles keep their originating
		// client as `node`, so a leftover bundle can always fall back
		// to a local server.
		take, rest := pack(pending, s.in.W)
		s.sol.AddReplica(j)
		for i := range take {
			s.assign(j, &take[i])
		}
		pending = rest
	}
	s.lists[j] = pending
}
