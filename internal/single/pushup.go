package single

import (
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// PushUp is the post-pass the paper's conclusion sketches for closing
// the gap towards 3/2 on Single-NoD-Bin: "push servers towards the
// root of the tree, whenever possible". Given a feasible Single
// solution, it repeatedly dissolves a server whose entire load fits
// into the residual capacity of one of its ancestor servers (moving
// whole clients upward is always distance-safe under NoD, and checked
// against dmax otherwise), until no such move exists. The result never
// has more replicas than the input.
func PushUp(in *core.Instance, sol *core.Solution) *core.Solution {
	out := sol.Clone()
	t := in.Tree
	for {
		loads := out.Loads()
		rset := out.ReplicaSet()
		// Consider the deepest servers first: their loads are the
		// easiest to re-home and freeing them unblocks nothing above.
		servers := append([]tree.NodeID{}, out.Replicas...)
		sort.Slice(servers, func(a, b int) bool {
			da, db := t.Depth(servers[a]), t.Depth(servers[b])
			if da != db {
				return da > db
			}
			return servers[a] < servers[b]
		})
		moved := false
		for _, s := range servers {
			target := tree.None
			// Walk ancestors of s from the nearest up.
			for a := s; a != t.Root(); {
				a = t.Parent(a)
				if !rset[a] || loads[a]+loads[s] > in.W {
					continue
				}
				// Every client of s must tolerate the longer distance
				// (trivially true when dmax = ∞) — and a is an
				// ancestor of s, hence of all of s's clients.
				allOK := true
				for _, asg := range out.Assignments {
					if asg.Server != s {
						continue
					}
					if t.DistanceUp(asg.Client, a) > in.DMax {
						allOK = false
						break
					}
				}
				if allOK {
					target = a
					break
				}
			}
			if target == tree.None {
				continue
			}
			// Re-home s's load onto target and drop s.
			for i := range out.Assignments {
				if out.Assignments[i].Server == s {
					out.Assignments[i].Server = target
				}
			}
			keep := out.Replicas[:0]
			for _, r := range out.Replicas {
				if r != s {
					keep = append(keep, r)
				}
			}
			out.Replicas = keep
			moved = true
			break // recompute loads and depth order
		}
		if !moved {
			break
		}
	}
	out.Normalize()
	return out
}
