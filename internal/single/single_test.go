package single

import (
	"math/rand"
	"testing"
	"testing/quick"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

// buildPaper builds the toy instance used in several hand tests:
//
//	     root
//	    /    \
//	   a      b
//	  / \      \
//	c1:5 c2:7   c3:2     (all edges length 1)
func buildPaper(W, dmax int64) *core.Instance {
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	bb := b.Internal(root, 1, "b")
	b.Client(a, 1, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(bb, 1, 2, "c3")
	return &core.Instance{Tree: b.MustBuild(), W: W, DMax: dmax}
}

func TestGenFeasibleHandInstance(t *testing.T) {
	for _, tc := range []struct {
		W, dmax int64
	}{
		{14, core.NoDistance},
		{10, core.NoDistance},
		{7, core.NoDistance},
		{7, 2},
		{7, 1},
		{7, 0},
		{100, 1},
	} {
		in := buildPaper(tc.W, tc.dmax)
		sol, err := Gen(in)
		if err != nil {
			t.Fatalf("Gen(W=%d dmax=%d): %v", tc.W, tc.dmax, err)
		}
		if err := core.Verify(in, core.Single, sol); err != nil {
			t.Fatalf("Gen(W=%d dmax=%d) infeasible: %v", tc.W, tc.dmax, err)
		}
	}
}

func TestGenAbsorbsEverythingAtRoot(t *testing.T) {
	// Total 14 ≤ W: one server at the root suffices and Gen finds it.
	in := buildPaper(14, core.NoDistance)
	sol, err := Gen(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 1 || sol.Replicas[0] != in.Tree.Root() {
		t.Fatalf("want single root replica, got %v", sol)
	}
}

func TestGenDistanceForcesLocalServers(t *testing.T) {
	// dmax = 0: every client serves itself.
	in := buildPaper(20, 0)
	sol, err := Gen(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 3 {
		t.Fatalf("dmax=0 should force 3 local servers, got %v", sol)
	}
	for _, a := range sol.Assignments {
		if a.Client != a.Server {
			t.Fatalf("dmax=0 assignment not local: %+v", a)
		}
	}
}

func TestGenRejectsOversizedClients(t *testing.T) {
	in := buildPaper(6, core.NoDistance) // c2 has 7 > 6
	if _, err := Gen(in); err == nil {
		t.Fatal("Gen should fail when some ri > W")
	}
	if _, err := NoD(in); err == nil {
		t.Fatal("NoD should fail when some ri > W")
	}
}

func TestNoDHandInstances(t *testing.T) {
	// W = 14: everything at the root.
	in := buildPaper(14, core.NoDistance)
	sol, err := NoD(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 1 {
		t.Fatalf("W=14: want 1 replica, got %v", sol)
	}
	// W = 12: c1+c2 = 12 at a (or above), c3 elsewhere → 2 replicas
	// optimal; NoD guarantees ≤ 2·2 but should find 2 here.
	in = buildPaper(12, core.NoDistance)
	sol, err = NoD(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Single, sol); err != nil {
		t.Fatal(err)
	}
	opt, err := exact.SolveSingle(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumReplicas() != 2 {
		t.Fatalf("exact: want 2, got %d", opt.NumReplicas())
	}
	if sol.NumReplicas() > 2*opt.NumReplicas() {
		t.Fatalf("NoD %d > 2×opt %d", sol.NumReplicas(), opt.NumReplicas())
	}
}

// TestGenTightFamilyIm reproduces Fig. 3: single-gen places exactly
// m(Δ+1) replicas on Im while the optimum is m+1.
func TestGenTightFamilyIm(t *testing.T) {
	for _, delta := range []int{2, 3, 4} {
		for m := 1; m <= 4; m++ {
			res, err := gen.GadgetIm(m, delta)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := Gen(res.Instance)
			if err != nil {
				t.Fatalf("Im(m=%d,Δ=%d): %v", m, delta, err)
			}
			if sol.NumReplicas() != res.AlgoReplicas {
				t.Errorf("Im(m=%d,Δ=%d): Gen placed %d, paper says %d",
					m, delta, sol.NumReplicas(), res.AlgoReplicas)
			}
		}
	}
}

// TestGenTightFamilyImOptimum checks the instance's optimum is m+1
// (exact solver, small m).
func TestGenTightFamilyImOptimum(t *testing.T) {
	for _, delta := range []int{2, 3} {
		for m := 1; m <= 2; m++ {
			res, err := gen.GadgetIm(m, delta)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := exact.SolveSingle(res.Instance, exact.Options{})
			if err != nil {
				t.Fatalf("exact on Im(m=%d,Δ=%d): %v", m, delta, err)
			}
			if opt.NumReplicas() != res.OptReplicas {
				t.Errorf("Im(m=%d,Δ=%d): opt %d, paper says %d",
					m, delta, opt.NumReplicas(), res.OptReplicas)
			}
		}
	}
}

// TestNoDTightFamilyFig4 reproduces Fig. 4: single-nod places exactly
// 2K replicas while the optimum is K+1.
func TestNoDTightFamilyFig4(t *testing.T) {
	for k := 1; k <= 6; k++ {
		res, err := gen.GadgetFig4(k)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := NoD(res.Instance)
		if err != nil {
			t.Fatalf("Fig4(K=%d): %v", k, err)
		}
		if sol.NumReplicas() != res.AlgoReplicas {
			t.Errorf("Fig4(K=%d): NoD placed %d, paper says %d",
				k, sol.NumReplicas(), res.AlgoReplicas)
		}
	}
	// Optimum for small K.
	for k := 1; k <= 3; k++ {
		res, _ := gen.GadgetFig4(k)
		opt, err := exact.SolveSingle(res.Instance, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt.NumReplicas() != res.OptReplicas {
			t.Errorf("Fig4(K=%d): opt %d, paper says %d", k, opt.NumReplicas(), res.OptReplicas)
		}
	}
}

// randomSmall generates a random small instance for cross-validation
// against the exact solver.
func randomSmall(rng *rand.Rand, withDistance bool) *core.Instance {
	return gen.RandomInstance(rng, gen.TreeConfig{
		Internals:    1 + rng.Intn(4),
		MaxArity:     2 + rng.Intn(2),
		MaxDist:      3,
		MaxReq:       8,
		ExtraClients: rng.Intn(3),
	}, withDistance)
}

// TestGenApproximationBound property-checks Theorem 3: Gen never
// exceeds (Δ+1)·opt, and Δ·opt without distance constraints.
func TestGenApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		withD := trial%2 == 0
		in := randomSmall(rng, withD)
		sol, err := Gen(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		delta := in.Tree.Arity()
		bound := (delta + 1) * opt.NumReplicas()
		if !withD {
			bound = delta * opt.NumReplicas()
		}
		if sol.NumReplicas() > bound {
			t.Fatalf("trial %d: Gen=%d exceeds bound %d (opt=%d Δ=%d withD=%v)\n%s",
				trial, sol.NumReplicas(), bound, opt.NumReplicas(), delta, withD, in.Tree)
		}
		if sol.NumReplicas() < opt.NumReplicas() {
			t.Fatalf("trial %d: Gen=%d below optimum %d — exact solver broken",
				trial, sol.NumReplicas(), opt.NumReplicas())
		}
	}
}

// TestNoDApproximationBound property-checks Theorem 4: NoD never
// exceeds 2·opt.
func TestNoDApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		in := randomSmall(rng, false)
		sol, err := NoD(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if sol.NumReplicas() > 2*opt.NumReplicas() {
			t.Fatalf("trial %d: NoD=%d exceeds 2×opt=%d\n%s",
				trial, sol.NumReplicas(), 2*opt.NumReplicas(), in.Tree)
		}
		if sol.NumReplicas() < opt.NumReplicas() {
			t.Fatalf("trial %d: NoD=%d below optimum %d", trial, sol.NumReplicas(), opt.NumReplicas())
		}
	}
}

// TestGenFeasibilityQuick uses testing/quick to fuzz instance shapes:
// every Gen solution must pass the verifier.
func TestGenFeasibilityQuick(t *testing.T) {
	f := func(seed int64, withDistance bool) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(12),
			MaxArity:     2 + rng.Intn(4),
			MaxDist:      5,
			MaxReq:       20,
			ExtraClients: rng.Intn(8),
		}, withDistance)
		sol, err := Gen(in)
		if err != nil {
			return false
		}
		return core.Verify(in, core.Single, sol) == nil &&
			sol.NumReplicas() >= core.LowerBound(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDFeasibilityQuick: same for single-nod (NoD relaxation).
func TestNoDFeasibilityQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(12),
			MaxArity:     2 + rng.Intn(4),
			MaxDist:      5,
			MaxReq:       20,
			ExtraClients: rng.Intn(8),
		}, false)
		sol, err := NoD(in)
		if err != nil {
			return false
		}
		return core.Verify(in, core.Single, sol) == nil &&
			sol.NumReplicas() >= core.LowerBound(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestNoDNeverWorseOnFig4ThanGen sanity-checks the refinement: on the
// Fig. 4 family Gen (NoD corollary mode) can be worse than NoD's
// grouping, never better than 2×opt.
func TestNoDBoundedOnImFamily(t *testing.T) {
	// NoD on the Im instances ignores distances; it must still be
	// feasible for the relaxed instance and within 2× the NoD optimum.
	for m := 1; m <= 2; m++ {
		res, err := gen.GadgetIm(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		relaxed := &core.Instance{Tree: res.Instance.Tree, W: res.Instance.W, DMax: core.NoDistance}
		sol, err := NoD(relaxed)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := exact.SolveSingle(relaxed, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.NumReplicas() > 2*opt.NumReplicas() {
			t.Fatalf("Im relaxed: NoD=%d > 2×opt=%d", sol.NumReplicas(), 2*opt.NumReplicas())
		}
	}
}
