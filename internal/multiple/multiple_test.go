package multiple

import (
	"math/rand"
	"testing"
	"testing/quick"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func buildBinary(W, dmax int64) *core.Instance {
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	bb := b.Internal(root, 1, "b")
	b.Client(a, 1, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(bb, 2, 6, "c3")
	b.Client(bb, 1, 4, "c4")
	return &core.Instance{Tree: b.MustBuild(), W: W, DMax: dmax}
}

func TestBinHandInstances(t *testing.T) {
	for _, tc := range []struct {
		W, dmax int64
		wantOpt int
	}{
		{22, core.NoDistance, 1}, // everything at the root
		{11, core.NoDistance, 2}, // total 22 = 2×11, splitting allowed
		{8, core.NoDistance, 3},  // ⌈22/8⌉ = 3
		{7, 1, 4},                // c3 can only reach... distances tighten
		{22, 0, 4},               // all local
	} {
		in := buildBinary(tc.W, tc.dmax)
		sol, err := Bin(in)
		if err != nil {
			t.Fatalf("Bin(W=%d dmax=%d): %v", tc.W, tc.dmax, err)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			t.Fatalf("Bin(W=%d dmax=%d) infeasible: %v", tc.W, tc.dmax, err)
		}
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatalf("exact(W=%d dmax=%d): %v", tc.W, tc.dmax, err)
		}
		if opt.NumReplicas() != tc.wantOpt {
			t.Errorf("exact(W=%d dmax=%d) = %d, want %d", tc.W, tc.dmax, opt.NumReplicas(), tc.wantOpt)
		}
		if sol.NumReplicas() != opt.NumReplicas() {
			t.Errorf("Bin(W=%d dmax=%d) = %d, optimum = %d — Theorem 6 violated",
				tc.W, tc.dmax, sol.NumReplicas(), opt.NumReplicas())
		}
	}
}

func TestBinPreconditions(t *testing.T) {
	// Non-binary tree.
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 1, "x")
	b.Client(r, 1, 1, "y")
	b.Client(r, 1, 1, "z")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: core.NoDistance}
	if _, err := Bin(in); err == nil {
		t.Error("Bin should reject arity-3 trees")
	}
	if _, err := Greedy(in); err != nil {
		t.Errorf("Greedy should accept arity-3 trees: %v", err)
	}
	// Oversized client.
	in2 := buildBinary(6, core.NoDistance) // c2 = 7 > 6
	if _, err := Bin(in2); err == nil {
		t.Error("Bin should reject ri > W (NP-hard regime, Theorem 5)")
	}
	if _, err := Greedy(in2); err == nil {
		t.Error("Greedy should reject ri > W")
	}
}

func TestBinSplitsClientsAcrossServers(t *testing.T) {
	// W = 11, total 22: the optimum is 2 and necessarily splits some
	// client between two servers (no partition of whole clients into
	// two 11s exists: 5+7=12, 5+6=11 — oh, 5+6=11 and 7+4=11 works as
	// whole-client split; tighten to W=11 with requests 5,7,6,4 → use
	// a case that forces splitting: W=11, requests 5,7,6,4 but paths
	// force c2 and c3 together).
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	b.Client(a, 1, 7, "c1")
	b.Client(a, 1, 8, "c2")
	b.Client(root, 1, 7, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 11, DMax: core.NoDistance}
	sol, err := Bin(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 2 {
		t.Fatalf("want 2 replicas (22 = 2×11), got %v", sol)
	}
	// Some client must be split.
	split := false
	for _, c := range in.Tree.Clients() {
		if len(sol.Servers(c)) > 1 {
			split = true
		}
	}
	if !split {
		t.Fatal("optimal solution requires splitting a client; none split")
	}
}

// TestBinOptimalRandom is the Theorem 6 reproduction: on random binary
// instances with ri ≤ W, Bin matches the exact optimum without
// distance constraints on every trial. With distance constraints rare
// off-by-one counterexamples exist (see counterexample_test.go), so
// there the test asserts a gap of at most one replica and a ≥97%
// optimality rate. This is the core experiment E7 in test form.
func TestBinOptimalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	subopt := 0
	withDTrials := 0
	for trial := 0; trial < 400; trial++ {
		withD := trial%2 == 0
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(5),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, withD)
		sol, err := Bin(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		gap := sol.NumReplicas() - opt.NumReplicas()
		if gap < 0 {
			t.Fatalf("trial %d: Bin=%d below optimum %d — exact solver broken",
				trial, sol.NumReplicas(), opt.NumReplicas())
		}
		if !withD && gap != 0 {
			t.Fatalf("trial %d (NoD): Bin=%d, optimum=%d\n%s\nW=%d",
				trial, sol.NumReplicas(), opt.NumReplicas(), in.Tree, in.W)
		}
		if withD {
			withDTrials++
			if gap > 1 {
				t.Fatalf("trial %d: Bin=%d, optimum=%d — gap beyond the known counterexample class\n%s\nW=%d dmax=%d",
					trial, sol.NumReplicas(), opt.NumReplicas(), in.Tree, in.W, in.DMax)
			}
			if gap == 1 {
				subopt++
			}
		}
	}
	if rate := float64(withDTrials-subopt) / float64(withDTrials); rate < 0.97 {
		t.Fatalf("with-distance optimality rate %.3f below 0.97 (%d/%d suboptimal)",
			rate, subopt, withDTrials)
	}
}

// TestBestOptimalRandom: the Best (eager ∧ lazy) combination matches
// the optimum on at least 99% of mixed random instances and is never
// more than one replica above it.
func TestBestOptimalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	subopt, trials := 0, 300
	for trial := 0; trial < trials; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(5),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		sol, err := Best(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		gap := sol.NumReplicas() - opt.NumReplicas()
		if gap < 0 || gap > 1 {
			t.Fatalf("trial %d: Best=%d optimum=%d", trial, sol.NumReplicas(), opt.NumReplicas())
		}
		if gap == 1 {
			subopt++
		}
	}
	if subopt > trials/100 {
		t.Fatalf("Best suboptimal on %d/%d > 1%%", subopt, trials)
	}
}

// TestBinFeasibilityQuick fuzzes larger binary instances where exact
// solving is too slow: the solution must verify and respect the lower
// bound.
func TestBinFeasibilityQuick(t *testing.T) {
	f := func(seed int64, withDistance bool) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(25),
			MaxArity:     2,
			MaxDist:      4,
			MaxReq:       15,
			ExtraClients: rng.Intn(10),
		}, withDistance)
		sol, err := Bin(in)
		if err != nil {
			return false
		}
		return core.Verify(in, core.Multiple, sol) == nil &&
			sol.NumReplicas() >= core.LowerBound(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyFeasibilityQuick fuzzes arbitrary-arity instances.
func TestGreedyFeasibilityQuick(t *testing.T) {
	f := func(seed int64, withDistance bool) bool {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(15),
			MaxArity:     2 + rng.Intn(4),
			MaxDist:      4,
			MaxReq:       15,
			ExtraClients: rng.Intn(10),
		}, withDistance)
		sol, err := Greedy(in)
		if err != nil {
			return false
		}
		return core.Verify(in, core.Multiple, sol) == nil &&
			sol.NumReplicas() >= core.LowerBound(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyNoDOptimalRandom measures the generalised algorithm
// against the optimum on general-arity NoD instances (the regime [3]
// proves polynomial). Greedy is a heuristic there: the test asserts a
// gap of at most one replica and a ≥95% optimality rate, matching
// what experiment E8 reports.
func TestGreedyNoDOptimalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	bad := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     3 + rng.Intn(2),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(4),
		}, false)
		sol, err := Greedy(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		gap := sol.NumReplicas() - opt.NumReplicas()
		if gap < 0 {
			t.Fatalf("trial %d: Greedy=%d below optimum %d", trial, sol.NumReplicas(), opt.NumReplicas())
		}
		if gap > 1 {
			t.Fatalf("trial %d: Greedy=%d optimum=%d — gap > 1\n%s W=%d",
				trial, sol.NumReplicas(), opt.NumReplicas(), in.Tree, in.W)
		}
		if gap == 1 {
			bad++
		}
	}
	if bad > trials/20 {
		t.Fatalf("Greedy sub-optimal on %d/%d NoD general-arity instances (> 5%%)", bad, trials)
	}
}

// TestLazyFeasibleRandom: the Lazy variant always verifies and never
// beats the exact optimum.
func TestLazyFeasibleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2468))
	for trial := 0; trial < 150; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(6),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(4),
		}, trial%2 == 0)
		sol, err := Lazy(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.NumReplicas() < core.LowerBound(in) {
			t.Fatalf("trial %d: below lower bound", trial)
		}
	}
}

func TestListHelpers(t *testing.T) {
	l := list{{d: 9, w: 3, client: 1}, {d: 5, w: 4, client: 2}, {d: 1, w: 2, client: 3}}
	if got := l.total(); got != 9 {
		t.Fatalf("total = %d, want 9", got)
	}
	shifted := l.addDist(2)
	if shifted[0].d != 11 || shifted[2].d != 3 {
		t.Fatalf("addDist wrong: %v", shifted)
	}
	if l[0].d != 9 {
		t.Fatal("addDist mutated the original")
	}
	a := list{{d: 8, w: 1, client: 1}, {d: 4, w: 1, client: 2}}
	bl := list{{d: 6, w: 1, client: 3}, {d: 2, w: 1, client: 4}}
	m := merge(a, bl)
	for i := 1; i < len(m); i++ {
		if m[i-1].d < m[i].d {
			t.Fatalf("merge not sorted: %v", m)
		}
	}
	if len(m) != 4 {
		t.Fatalf("merge lost entries: %v", m)
	}

	head, rest := l.take(5)
	if head.total() != 5 || rest.total() != 4 {
		t.Fatalf("take(5): head=%v rest=%v", head, rest)
	}
	// The split triple keeps its d and client.
	if rest[0].client != 2 || rest[0].d != 5 {
		t.Fatalf("take split wrong: %v", rest)
	}
	head, rest = l.take(100)
	if rest != nil || head.total() != 9 {
		t.Fatalf("take(100): %v %v", head, rest)
	}
	head, rest = l.take(3)
	if head.total() != 3 || rest.total() != 6 {
		t.Fatalf("take(3): %v %v", head, rest)
	}
}

func TestMergeAll(t *testing.T) {
	if mergeAll(nil) != nil {
		t.Fatal("mergeAll(nil) should be nil")
	}
	single := []list{{{d: 1, w: 1, client: 0}}}
	if got := mergeAll(single); len(got) != 1 {
		t.Fatalf("mergeAll single = %v", got)
	}
	three := []list{
		{{d: 9, w: 1, client: 0}},
		{{d: 5, w: 1, client: 1}},
		{{d: 7, w: 1, client: 2}},
	}
	m := mergeAll(three)
	if len(m) != 3 || m[0].d != 9 || m[1].d != 7 || m[2].d != 5 {
		t.Fatalf("mergeAll order wrong: %v", m)
	}
}

// TestBinDistanceBlockedClient: a client whose edge exceeds dmax must
// be served locally.
func TestBinDistanceBlockedClient(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 10, 4, "far")
	b.Client(r, 1, 3, "near")
	in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: 5}
	sol, err := Bin(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		t.Fatal(err)
	}
	// far must self-serve; near can go to the root: 2 servers optimal.
	if sol.NumReplicas() != 2 {
		t.Fatalf("want 2 replicas, got %v", sol)
	}
}

// TestBinExtraServerPath engineers the extra-server case: more than W
// distance-blocked requests arrive at one node.
func TestBinExtraServerPath(t *testing.T) {
	// Chain: root — x — y with clients hanging so that at x the
	// blocked requests exceed W.
	b := tree.NewBuilder()
	root := b.Root("root")
	x := b.Internal(root, 10, "x") // edge to root too long for anything
	y := b.Internal(x, 1, "y")
	b.Client(y, 1, 6, "c1")
	b.Client(y, 1, 6, "c2")
	b.Client(x, 1, 6, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 7, DMax: 4}
	// 18 requests must all be served in subtree(x) (the 10-edge blocks
	// everything); W = 7 → at least 3 servers, all below root.
	sol, err := Bin(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		t.Fatal(err)
	}
	opt, err := exact.SolveMultiple(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != opt.NumReplicas() {
		t.Fatalf("Bin=%d optimum=%d", sol.NumReplicas(), opt.NumReplicas())
	}
	for _, r := range sol.Replicas {
		if r == in.Tree.Root() {
			t.Fatal("nothing can be served at the root here")
		}
	}
}

// TestBinZeroRequestClients: zero-request clients never force
// replicas.
func TestBinZeroRequestClients(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 0, "idle")
	b.Client(r, 1, 5, "busy")
	in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: core.NoDistance}
	sol, err := Bin(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 1 {
		t.Fatalf("want 1 replica, got %v", sol)
	}
}

// TestGadgetI6RejectedByBin: the NP-hard regime (ri > W) must be
// rejected by Bin but solvable by the exact solver.
func TestGadgetI6RejectedByBin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	as := gen.TwoPartitionEqualYes(rng, 2, 6)
	in, _, err := gen.GadgetI6(as)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bin(in); err == nil {
		t.Fatal("Bin must reject I6 (big client exceeds W)")
	}
}
