package multiple

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

// TestBinarizedLowerBoundValid: on random general-arity NoD instances
// the bound never exceeds the exact optimum and dominates the volume
// bound.
func TestBinarizedLowerBoundValid(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	tight := 0
	for trial := 0; trial < 150; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     3 + rng.Intn(3),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(4),
		}, false)
		lb, err := BinarizedLowerBound(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d exact: %v", trial, err)
		}
		if lb > opt.NumReplicas() {
			t.Fatalf("trial %d: binarized bound %d exceeds optimum %d\n%s W=%d",
				trial, lb, opt.NumReplicas(), in.Tree, in.W)
		}
		if lb < core.VolumeLowerBound(in) {
			t.Fatalf("trial %d: binarized bound %d below volume bound %d",
				trial, lb, core.VolumeLowerBound(in))
		}
		if lb == opt.NumReplicas() {
			tight++
		}
	}
	// The bound should be tight on a solid majority of instances,
	// otherwise it is useless in practice.
	if tight < 100 {
		t.Fatalf("binarized bound tight on only %d/150 instances", tight)
	}
}

func TestBinarizedLowerBoundPreconditions(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 5, "c")
	b.Client(r, 1, 3, "d")
	withD := &core.Instance{Tree: b.MustBuild(), W: 6, DMax: 3}
	if _, err := BinarizedLowerBound(withD); err == nil {
		t.Error("distance-constrained instance should be rejected")
	}
	big := &core.Instance{Tree: withD.Tree, W: 4, DMax: core.NoDistance}
	if _, err := BinarizedLowerBound(big); err == nil {
		t.Error("ri > W should be rejected")
	}
}

func TestBinarizedLowerBoundWideStar(t *testing.T) {
	// A star with k unit clients and W = k: one server suffices, and
	// the bound must find exactly 1 (volume bound is also 1, but a
	// naive per-child bound would say k).
	b := tree.NewBuilder()
	r := b.Root("r")
	for i := 0; i < 6; i++ {
		b.Client(r, 1, 1, "")
	}
	in := &core.Instance{Tree: b.MustBuild(), W: 6, DMax: core.NoDistance}
	lb, err := BinarizedLowerBound(in)
	if err != nil {
		t.Fatal(err)
	}
	if lb != 1 {
		t.Fatalf("star bound = %d, want 1", lb)
	}
}
