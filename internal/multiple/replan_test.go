package multiple

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

// scaleDemand rebuilds the instance's tree with every request
// multiplied by num/den.
func scaleDemand(in *core.Instance, num, den int64) *core.Instance {
	b := tree.NewBuilder()
	t := in.Tree
	ids := make(map[tree.NodeID]tree.NodeID)
	ids[t.Root()] = b.Root(t.Label(t.Root()))
	t.PreOrder(func(j tree.NodeID) {
		if j == t.Root() {
			return
		}
		p := ids[t.Parent(j)]
		if t.IsClient(j) {
			ids[j] = b.Client(p, t.Dist(j), t.Requests(j)*num/den, t.Label(j))
		} else {
			ids[j] = b.Internal(p, t.Dist(j), t.Label(j))
		}
	})
	return &core.Instance{Tree: b.MustBuild(), W: in.W, DMax: in.DMax}
}

func TestPlanDelta(t *testing.T) {
	b := tree.NewBuilder()
	root := b.Root("r")
	hub := b.Internal(root, 1, "hub")
	c1 := b.Client(hub, 1, 5, "c1")
	c2 := b.Client(hub, 1, 5, "c2")
	tr := b.MustBuild()

	old := &core.Solution{}
	old.AddReplica(hub)
	old.Assign(c1, hub, 5)
	old.Assign(c2, hub, 5)
	old.Normalize()

	nw := &core.Solution{}
	nw.AddReplica(hub)
	nw.AddReplica(root)
	nw.Assign(c1, hub, 5)
	nw.Assign(c2, root, 5)
	nw.Normalize()

	ch := PlanDelta(tr, old, nw)
	if len(ch.Added) != 1 || ch.Added[0] != root {
		t.Fatalf("Added = %v", ch.Added)
	}
	if len(ch.Removed) != 0 {
		t.Fatalf("Removed = %v", ch.Removed)
	}
	if ch.MovedRequests != 5 {
		t.Fatalf("MovedRequests = %d, want 5 (c2 moved)", ch.MovedRequests)
	}
	// Identical plans: zero churn.
	zero := PlanDelta(tr, nw, nw)
	if len(zero.Added)+len(zero.Removed) != 0 || zero.MovedRequests != 0 {
		t.Fatalf("self delta non-zero: %+v", zero)
	}
}

func TestReplanKeepsFeasibleSet(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 5, MaxArity: 2, MaxDist: 3, MaxReq: 9, ExtraClients: 3,
	}, false)
	old, err := Best(in)
	if err != nil {
		t.Fatal(err)
	}
	// Same instance: replan must keep a subset of the old replicas
	// (it may shrink but never add).
	sol, ch, err := Replan(in, old)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Added) != 0 {
		t.Fatalf("replan on an unchanged instance added replicas: %+v", ch)
	}
	if sol.NumReplicas() > old.NumReplicas() {
		t.Fatalf("replan grew the plan: %d → %d", old.NumReplicas(), sol.NumReplicas())
	}
}

func TestReplanGrowsUnderDemandSurge(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals: 2 + rng.Intn(4), MaxArity: 2, MaxDist: 3, MaxReq: 6,
			ExtraClients: rng.Intn(3),
		}, false)
		old, err := Best(in)
		if err != nil {
			t.Fatal(err)
		}
		// Demand doubles; W stays. Every old client still fits one
		// server? Not necessarily — skip surge instances whose
		// doubled clients exceed W (Replan handles them via flow, but
		// Best for the gap comparison needs ri ≤ W).
		surged := scaleDemand(in, 2, 1)
		if !(&core.Instance{Tree: surged.Tree, W: surged.W, DMax: surged.DMax}).FitsLocally() {
			continue
		}
		sol, ch, err := Replan(surged, old)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := core.Verify(surged, core.Multiple, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Fresh plan for the gap comparison: replan pays at most a
		// small stability premium.
		fresh, err := Best(surged)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.NumReplicas() < fresh.NumReplicas() {
			t.Fatalf("trial %d: replan beat Best — impossible given Best ≈ optimal", trial)
		}
		if sol.NumReplicas() > fresh.NumReplicas()+2 {
			t.Fatalf("trial %d: replan %d far above fresh %d", trial, sol.NumReplicas(), fresh.NumReplicas())
		}
		// Churn accounting is internally consistent.
		if len(ch.Added) > sol.NumReplicas() {
			t.Fatalf("trial %d: churn added %d > |R| %d", trial, len(ch.Added), sol.NumReplicas())
		}
	}
}

func TestReplanShrinksUnderDemandDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 5, MaxArity: 2, MaxDist: 3, MaxReq: 8, ExtraClients: 4,
	}, false)
	old, err := Best(in)
	if err != nil {
		t.Fatal(err)
	}
	// Demand quarters: the old fleet is oversized.
	dropped := scaleDemand(in, 1, 4)
	sol, ch, err := Replan(dropped, old)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() > old.NumReplicas() {
		t.Fatal("replan grew under a demand drop")
	}
	if len(ch.Added) != 0 {
		t.Fatalf("demand drop should not add replicas: %+v", ch.Added)
	}
}

func TestReplanInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 12, "big")
	b.Client(r, 1, 1, "small")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: 0}
	if _, _, err := Replan(in, &core.Solution{}); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestReplanFromEmptyPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	in := gen.RandomInstance(rng, gen.TreeConfig{
		Internals: 4, MaxArity: 2, MaxDist: 3, MaxReq: 8, ExtraClients: 2,
	}, false)
	sol, ch, err := Replan(in, &core.Solution{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		t.Fatal(err)
	}
	if len(ch.Added) != sol.NumReplicas() {
		t.Fatalf("from empty: all %d replicas should count as added, got %d",
			sol.NumReplicas(), len(ch.Added))
	}
}
