package multiple

import (
	"fmt"
	"slices"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Session is the reusable warm-path state for the Multiple-policy
// algorithms. Bind it to a validated instance with Reset, then call
// Bin/Greedy/Lazy/Best repeatedly: once the buffers have grown, warm
// solves perform zero heap allocations and return exactly the
// normalized solution of the package-level functions.
//
// Layout: the per-node req/proc lists of Algorithm 3 are per-node
// slices reused across solves (each node owns its backing array, so
// the extra-server machinery can re-read a child's list after the
// parent consumed a copy). Transient lists — the merge buffer, the
// extra-server child/keep segments, the serve-inside partitions — live
// in grow-only arenas addressed by [base, end) index pairs so that
// recursion levels stack without aliasing.
//
// Equivalences relied on (vs. the allocating cold path):
//   - mergeAll(addDist parts) is a left-biased fold of stable merges,
//     which equals a stable sort by non-increasing d of the parts
//     concatenated in child order;
//   - proc/keep lists are only ever read as multisets (run feeds them
//     through Solution.Normalize), so their internal order is free —
//     only req lists, which later takes split by prefix, must keep the
//     exact cold order.
//
// The returned *core.Solution is owned by the session and valid until
// the next solve. A Session is not safe for concurrent use.
type Session struct {
	in   *core.Instance
	flat *tree.Flat
	sc   core.Scratch
	solA core.Solution
	solB core.Solution // second buffer so Best can hold both variants
	lazy bool

	req  []list // req(j), session-owned per-node backing
	proc []list // proc(j)
	inR  []bool
	vtmp list          // visit merge buffer (one level live at a time)
	kids []tree.NodeID // extra-server sorted children + pending arena
	pend []tree.NodeID
	keep list // extra-server keep arena
	part list // serve-inside rest/partition arena
}

// Reset binds the session to an instance and its flat twin. The caller
// must have validated the instance; Reset itself does not allocate.
func (s *Session) Reset(in *core.Instance, f *tree.Flat) {
	s.in = in
	s.flat = f
}

// Bin is the warm-path Bin (Algorithm 3; binary trees, ri ≤ W).
func (s *Session) Bin() (*core.Solution, error) {
	if !s.flat.IsBinary() {
		return nil, fmt.Errorf("multiple: Bin requires a binary tree (arity %d)", s.in.Tree.Arity())
	}
	if s.flat.MaxRequests() > s.in.W {
		return nil, fmt.Errorf("multiple: Bin requires ri ≤ W for all clients (max r=%d, W=%d)",
			s.flat.MaxRequests(), s.in.W)
	}
	return s.run(false, &s.solA)
}

// Greedy is the warm-path Greedy (eager variant, arbitrary arity).
func (s *Session) Greedy() (*core.Solution, error) {
	if s.flat.MaxRequests() > s.in.W {
		return nil, fmt.Errorf("multiple: Greedy requires ri ≤ W for all clients (max r=%d, W=%d)",
			s.flat.MaxRequests(), s.in.W)
	}
	return s.run(false, &s.solA)
}

// Lazy is the warm-path Lazy (delayed-placement variant).
func (s *Session) Lazy() (*core.Solution, error) {
	if s.flat.MaxRequests() > s.in.W {
		return nil, fmt.Errorf("multiple: Lazy requires ri ≤ W for all clients (max r=%d, W=%d)",
			s.flat.MaxRequests(), s.in.W)
	}
	return s.run(true, &s.solA)
}

// Best runs the eager and lazy variants and returns the better one,
// exactly like the package-level Best.
func (s *Session) Best() (*core.Solution, error) {
	if s.flat.MaxRequests() > s.in.W {
		return nil, fmt.Errorf("multiple: Greedy requires ri ≤ W for all clients (max r=%d, W=%d)",
			s.flat.MaxRequests(), s.in.W)
	}
	eager, err := s.run(false, &s.solA)
	if err != nil {
		return nil, err
	}
	lazy, err := s.run(true, &s.solB)
	if err != nil {
		return nil, err
	}
	if lazy.NumReplicas() < eager.NumReplicas() {
		return lazy, nil
	}
	return eager, nil
}

func (s *Session) run(lazy bool, sol *core.Solution) (*core.Solution, error) {
	f := s.flat
	n := f.Len()
	if cap(s.req) < n {
		s.req = make([]list, n)
		s.proc = make([]list, n)
		s.inR = make([]bool, n)
	}
	s.req, s.proc, s.inR = s.req[:n], s.proc[:n], s.inR[:n]
	for j := 0; j < n; j++ {
		s.req[j] = s.req[j][:0]
		s.proc[j] = s.proc[j][:0]
	}
	clear(s.inR)
	s.kids, s.pend, s.keep, s.part = s.kids[:0], s.pend[:0], s.keep[:0], s.part[:0]
	s.lazy = lazy

	s.visit(f.Root())
	if len(s.req[f.Root()]) != 0 {
		panic("multiple: requests left at the root")
	}
	sol.Replicas = sol.Replicas[:0]
	sol.Assignments = sol.Assignments[:0]
	for j := 0; j < n; j++ {
		if !s.inR[j] {
			continue
		}
		id := tree.NodeID(j)
		sol.AddReplica(id)
		for _, tr := range s.proc[j] {
			sol.Assign(tr.client, id, tr.w)
		}
	}
	sol.Normalize()
	if err := s.sc.Verify(f, s.in, core.Multiple, sol); err != nil {
		return nil, fmt.Errorf("multiple: algorithm produced infeasible solution: %w", err)
	}
	return sol, nil
}

// visit mirrors state.visit on the flat tree. The merge buffer vtmp is
// shared across levels: a level's use ends (content copied into
// req/proc) before it returns to its parent, and the child recursion
// happens before the parent touches vtmp.
func (s *Session) visit(j tree.NodeID) {
	f := s.flat
	dmax := s.in.DMax

	if f.IsClient(j) {
		r := f.Reqs[j]
		if r == 0 {
			return
		}
		if f.Dist(j) > dmax {
			s.inR[j] = true
			s.proc[j] = append(s.proc[j], triple{d: 0, w: r, client: j})
		} else {
			s.req[j] = append(s.req[j], triple{d: 0, w: r, client: j})
		}
		return
	}

	for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
		s.visit(c)
	}
	// temp := mergeAll(addDist parts): concatenate in child order, then
	// stable-sort by non-increasing d (equal to the fold of left-biased
	// stable merges).
	tmp := s.vtmp[:0]
	for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
		dc := f.Dist(c)
		for _, u := range s.req[c] {
			tmp = append(tmp, triple{d: tree.SatAdd(u.d, dc), w: u.w, client: u.client})
		}
	}
	slices.SortStableFunc(tmp, func(a, b triple) int {
		switch {
		case a.d > b.d:
			return -1
		case a.d < b.d:
			return 1
		}
		return 0
	})
	s.vtmp = tmp
	var wtot int64
	for i := range tmp {
		wtot += tmp[i].w
	}

	root := f.Root()
	blockedAbove := func(d int64) bool {
		return j == root || tree.SatAdd(d, f.Dist(j)) > dmax
	}

	if len(tmp) > 0 && (blockedAbove(tmp[0].d) || (!s.lazy && wtot > s.in.W)) {
		i, splitW := splitPoint(tmp, s.in.W)
		s.inR[j] = true
		s.proc[j] = append(s.proc[j], tmp[:i]...)
		if splitW > 0 {
			s.proc[j] = append(s.proc[j], triple{d: tmp[i].d, w: splitW, client: tmp[i].client})
			s.req[j] = append(s.req[j], triple{d: tmp[i].d, w: tmp[i].w - splitW, client: tmp[i].client})
			i++
		}
		s.req[j] = append(s.req[j], tmp[i:]...)
	} else {
		s.req[j] = append(s.req[j], tmp...)
	}

	if l := s.req[j]; len(l) > 0 && blockedAbove(l[0].d) {
		s.extraServer(j)
		s.req[j] = s.req[j][:0]
	}
}

// splitPoint computes the cold take(w) split: the prefix l[:i] fits
// whole, and splitW (0 if none) of l[i] is additionally kept to reach
// exactly w.
func splitPoint(l list, w int64) (i int, splitW int64) {
	var got int64
	for i = 0; i < len(l); i++ {
		if got == w {
			return i, 0
		}
		if got+l[i].w <= w {
			got += l[i].w
			continue
		}
		return i, w - got
	}
	return len(l), 0
}

// extraServer mirrors state.extraServer. Children and pending segments
// live in the kids/pend arenas, the keep list in the keep arena; the
// recursion (extraServer of a saturated child, serveInside splits)
// appends beyond this level's segments and truncates back before
// returning, so indices — not slice headers — address the segments
// across recursive calls.
func (s *Session) extraServer(j tree.NodeID) {
	f := s.flat
	kidsBase := len(s.kids)
	for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
		s.kids = append(s.kids, c)
	}
	seg := s.kids[kidsBase:]
	slices.SortFunc(seg, func(a, b tree.NodeID) int {
		ta, tb := s.req[a].total(), s.req[b].total()
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
		return int(a) - int(b)
	})

	keepBase := len(s.keep)
	budget := s.in.W
	pendBase := len(s.pend)
	// First pass: no recursion, slice headers are stable.
	for _, c := range seg {
		lc := s.req[c]
		w := lc.total()
		if w == 0 {
			continue
		}
		if w <= budget {
			dc := f.Dist(c)
			for _, u := range lc {
				s.keep = append(s.keep, triple{d: tree.SatAdd(u.d, dc), w: u.w, client: u.client})
			}
			budget -= w
			s.req[c] = s.req[c][:0]
			continue
		}
		s.pend = append(s.pend, c)
	}
	pendEnd := len(s.pend)
	for pi := pendBase; pi < pendEnd; pi++ {
		c := s.pend[pi]
		lc := s.req[c]
		if s.inR[c] {
			if f.IsClient(c) {
				panic("multiple: extra-server reached a saturated client")
			}
			s.req[c] = s.req[c][:0]
			s.extraServer(c)
			continue
		}
		i, splitW := 0, int64(0)
		if budget > 0 {
			i, splitW = splitPoint(lc, budget)
			dc := f.Dist(c)
			for _, u := range lc[:i] {
				s.keep = append(s.keep, triple{d: tree.SatAdd(u.d, dc), w: u.w, client: u.client})
			}
			if splitW > 0 {
				s.keep = append(s.keep, triple{d: tree.SatAdd(lc[i].d, dc), w: splitW, client: lc[i].client})
			}
			budget = 0
		}
		// rest of lc, materialised in the part arena so req[c] can be
		// reset before the descent.
		restBase := len(s.part)
		if splitW > 0 {
			s.part = append(s.part, triple{d: lc[i].d, w: lc[i].w - splitW, client: lc[i].client})
			i++
		}
		s.part = append(s.part, lc[i:]...)
		restEnd := len(s.part)
		s.req[c] = s.req[c][:0]
		s.serveInside(c, restBase, restEnd)
		s.part = s.part[:restBase]
	}
	s.pend = s.pend[:pendBase]
	s.kids = s.kids[:kidsBase]

	if len(s.keep) == keepBase {
		s.inR[j] = false
		s.proc[j] = s.proc[j][:0]
		return
	}
	s.proc[j] = append(s.proc[j][:0], s.keep[keepBase:]...)
	s.inR[j] = true
	s.keep = s.keep[:keepBase]
}

// serveInside mirrors state.serveInside; the input list is the part
// arena segment [base, end), and the per-child partitions are appended
// after it (each recursion truncates back to its own base on return).
func (s *Session) serveInside(c tree.NodeID, base, end int) {
	if end == base {
		return
	}
	f := s.flat
	if !s.inR[c] {
		i, splitW := splitPoint(s.part[base:end], s.in.W)
		s.inR[c] = true
		s.proc[c] = append(s.proc[c][:0], s.part[base:base+i]...)
		if splitW > 0 {
			u := s.part[base+i]
			s.proc[c] = append(s.proc[c], triple{d: u.d, w: splitW, client: u.client})
			s.part[base+i].w = u.w - splitW
			base += i
		} else {
			base += i
		}
		if end == base {
			return
		}
	}
	if f.IsClient(c) {
		panic("multiple: request unit descended past its origin client")
	}
	// Partition the remainder by the child each unit came through,
	// preserving the list order inside each part (one filtering scan
	// per child, in child order — same parts as the cold map build).
	for gc := f.FirstChild[c]; gc != tree.None; gc = f.NextSibling[gc] {
		partBase := len(s.part)
		dgc := f.Dist(gc)
		for i := base; i < end; i++ {
			u := s.part[i]
			if s.childToward(c, u.client) == gc {
				s.part = append(s.part, triple{d: u.d - dgc, w: u.w, client: u.client})
			}
		}
		partEnd := len(s.part)
		if partEnd > partBase {
			s.serveInside(gc, partBase, partEnd)
		}
		s.part = s.part[:partBase]
	}
}

// childToward returns the child of c on the path from c down to
// client i.
func (s *Session) childToward(c, i tree.NodeID) tree.NodeID {
	f := s.flat
	for f.Parents[i] != c {
		i = f.Parents[i]
		if i == f.Root() {
			panic("multiple: childToward walked past the root")
		}
	}
	return i
}
