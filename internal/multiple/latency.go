package multiple

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/flow"
	"replicatree/internal/tree"
)

// MinimizeLatency re-routes the assignments of a feasible Multiple
// solution so that the total request-weighted client→server distance
// is minimal for the given replica set, without changing the replicas
// themselves. This is a secondary-objective refinement the paper
// leaves open: among all assignments using R, pick the one with the
// best aggregate latency (a min-cost max-flow on the client/replica
// transportation network).
//
// The returned solution has the same replica count, verifies against
// the same instance, and never worsens the total distance.
func MinimizeLatency(in *core.Instance, sol *core.Solution) (*core.Solution, error) {
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		return nil, fmt.Errorf("multiple: MinimizeLatency needs a feasible input: %w", err)
	}
	t := in.Tree

	var clients []tree.NodeID
	for _, c := range t.Clients() {
		if t.Requests(c) > 0 {
			clients = append(clients, c)
		}
	}
	replicas := sol.Replicas

	// Node layout: 0 source, 1 sink, then clients, then replicas.
	idx := 2
	cIdx := make(map[tree.NodeID]int, len(clients))
	for _, c := range clients {
		cIdx[c] = idx
		idx++
	}
	rIdx := make(map[tree.NodeID]int, len(replicas))
	for _, r := range replicas {
		rIdx[r] = idx
		idx++
	}
	g := flow.NewCostNetwork(idx)
	type arcRec struct {
		client, server tree.NodeID
		arc            int
		cap            int64
	}
	var arcs []arcRec
	var total int64
	for _, c := range clients {
		r := t.Requests(c)
		total += r
		g.AddEdge(0, cIdx[c], r, 0)
		for _, s := range t.EligibleServers(c, in.DMax) {
			si, ok := rIdx[s]
			if !ok {
				continue
			}
			d := t.DistanceUp(c, s)
			a := g.AddEdge(cIdx[c], si, r, d)
			arcs = append(arcs, arcRec{c, s, a, r})
		}
	}
	for _, r := range replicas {
		g.AddEdge(rIdx[r], 1, in.W, 0)
	}

	got, _ := g.MinCostMaxFlow(0, 1)
	if got != total {
		// Cannot happen: sol itself is a feasible routing.
		return nil, fmt.Errorf("multiple: latency flow routed %d of %d (unreachable)", got, total)
	}
	out := &core.Solution{}
	for _, r := range replicas {
		out.AddReplica(r)
	}
	for _, a := range arcs {
		if amt := g.Flow(a.arc, a.cap); amt > 0 {
			out.Assign(a.client, a.server, amt)
		}
	}
	out.Normalize()
	if err := core.Verify(in, core.Multiple, out); err != nil {
		return nil, fmt.Errorf("multiple: latency-optimised solution infeasible: %w", err)
	}
	return out, nil
}

// TotalDistance returns the request-weighted total client→server
// distance of a solution — the quantity MinimizeLatency minimises.
func TotalDistance(t *tree.Tree, sol *core.Solution) int64 {
	var sum int64
	for _, a := range sol.Assignments {
		sum += a.Amount * t.DistanceUp(a.Client, a.Server)
	}
	return sum
}
