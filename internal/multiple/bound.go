package multiple

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// BinarizedLowerBound bounds the Multiple-NoD optimum of an
// arbitrary-arity instance from below, in polynomial time, by solving
// a relaxation exactly: binarizing the tree inserts virtual candidate
// server locations connected by zero-length edges, which preserves
// every client's options and adds new ones — so the binarized optimum
// can only be lower — and on binary NoD instances Algorithm 3 computes
// that optimum (Theorem 6, confirmed by experiment E7).
//
// The bound is valid only without distance constraints (with dmax the
// binary algorithm is not guaranteed optimal, see the E7 finding) and
// requires ri ≤ W. It dominates the volume bound ⌈Σri/W⌉ and is
// incomparable with core.LowerBound in general; experiment E11
// measures all three against exact optima.
func BinarizedLowerBound(in *core.Instance) (int, error) {
	if !in.NoD() {
		return 0, fmt.Errorf("multiple: BinarizedLowerBound requires dmax = ∞")
	}
	if !in.FitsLocally() {
		return 0, fmt.Errorf("multiple: BinarizedLowerBound requires ri ≤ W")
	}
	bz := tree.Binarize(in.Tree)
	sol, err := Bin(&core.Instance{Tree: bz.Tree, W: in.W, DMax: core.NoDistance})
	if err != nil {
		return 0, err
	}
	return sol.NumReplicas(), nil
}
