package multiple

import (
	"math/rand"
	"slices"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func sessionSolEqual(a, b *core.Solution) bool {
	return slices.Equal(a.Replicas, b.Replicas) && slices.Equal(a.Assignments, b.Assignments)
}

func sessionInstance(rng *rand.Rand, binary bool) *core.Instance {
	cfg := gen.TreeConfig{
		Internals:    1 + rng.Intn(25),
		MaxArity:     2 + rng.Intn(3),
		MaxDist:      4,
		MaxReq:       8,
		ExtraClients: rng.Intn(5),
	}
	if binary {
		cfg.MaxArity = 2
		cfg.ExtraClients = 0
	}
	in := gen.RandomInstance(rng, cfg, rng.Intn(2) == 0)
	// Keep ri ≤ W so the preconditions hold on most draws.
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	return in
}

// TestMultipleSessionMatchesCold pins the warm-path contract for all
// four variants against the package-level functions.
func TestMultipleSessionMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var s Session
	var f tree.Flat
	for i := 0; i < 200; i++ {
		binary := i%2 == 0
		in := sessionInstance(rng, binary)
		tree.FlattenInto(&f, in.Tree)
		s.Reset(in, &f)
		type variant struct {
			name string
			cold func(*core.Instance) (*core.Solution, error)
			warm func() (*core.Solution, error)
		}
		variants := []variant{
			{"greedy", Greedy, s.Greedy},
			{"lazy", Lazy, s.Lazy},
			{"best", Best, s.Best},
		}
		if binary {
			variants = append(variants, variant{"bin", Bin, s.Bin})
		}
		for round := 0; round < 2; round++ {
			for _, v := range variants {
				cold, coldErr := v.cold(in)
				warm, warmErr := v.warm()
				if (coldErr == nil) != (warmErr == nil) {
					t.Fatalf("instance %d %s: cold err %v, warm err %v", i, v.name, coldErr, warmErr)
				}
				if coldErr == nil && !sessionSolEqual(cold, warm) {
					t.Fatalf("instance %d %s:\n cold %v\n warm %v", i, v.name, cold, warm)
				}
			}
		}
	}
}

// TestMultipleSessionPreconditions mirrors the cold errors.
func TestMultipleSessionPreconditions(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("")
	n1 := b.Internal(r, 1, "")
	b.Client(n1, 1, 9, "")
	b.Client(n1, 1, 2, "")
	b.Client(r, 1, 3, "")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: core.NoDistance}
	f := tree.Flatten(in.Tree)
	var s Session
	s.Reset(in, f)
	if _, err := s.Greedy(); err == nil {
		t.Fatal("warm Greedy accepted r > W")
	}
	if _, err := s.Bin(); err == nil {
		t.Fatal("warm Bin accepted r > W")
	}

	// Ternary root: Bin must refuse, Greedy must accept.
	b2 := tree.NewBuilder()
	r2 := b2.Root("")
	b2.Client(r2, 1, 2, "")
	b2.Client(r2, 1, 2, "")
	b2.Client(r2, 1, 2, "")
	in2 := &core.Instance{Tree: b2.MustBuild(), W: 5, DMax: core.NoDistance}
	f2 := tree.Flatten(in2.Tree)
	s.Reset(in2, f2)
	if _, err := s.Bin(); err == nil {
		t.Fatal("warm Bin accepted a ternary tree")
	}
	if _, err := s.Greedy(); err != nil {
		t.Fatalf("warm Greedy refused a valid instance: %v", err)
	}
}

// TestMultipleSessionAllocFree pins the tentpole invariant: warm
// Greedy/Lazy/Best/Bin allocate nothing.
func TestMultipleSessionAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 60, MaxArity: 2}, true)
	if in.W < in.Tree.MaxRequests() {
		in.W = in.Tree.MaxRequests()
	}
	f := tree.Flatten(in.Tree)
	var s Session
	s.Reset(in, f)
	for name, warm := range map[string]func() (*core.Solution, error){
		"bin": s.Bin, "greedy": s.Greedy, "lazy": s.Lazy, "best": s.Best,
	} {
		if _, err := warm(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		avg := testing.AllocsPerRun(50, func() {
			if _, err := warm(); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
		if avg != 0 {
			t.Fatalf("warm %s allocated %.1f times per run", name, avg)
		}
	}
}
