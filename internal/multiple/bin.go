package multiple

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Bin runs Algorithm 3 (multiple-bin), the paper's polynomial-time
// algorithm for Multiple-Bin. Preconditions (checked): the tree is
// binary and every client satisfies ri ≤ W — the regime of Theorem 6.
// Violations return an error (with ri > W the problem is NP-hard,
// Theorem 5).
//
// Reproduction note: Theorem 6 claims optimality. Without distance
// constraints our measurements confirm it on every random instance
// tried; with distance constraints we found rare off-by-one
// counterexamples (see TestTheorem6Counterexample and experiment E7)
// caused by the eager "wtot > W" placement rule committing a full
// server below a later distance-blocked, under-filled one. Use Best
// for the empirically strongest polynomial placement.
//
// Time complexity: O(|T|²).
func Bin(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.Tree.IsBinary() {
		return nil, fmt.Errorf("multiple: Bin requires a binary tree (arity %d)", in.Tree.Arity())
	}
	if !in.FitsLocally() {
		return nil, fmt.Errorf("multiple: Bin requires ri ≤ W for all clients (max r=%d, W=%d)",
			in.Tree.MaxRequests(), in.W)
	}
	return run(in, false)
}

// Greedy runs the generalisation of Algorithm 3 to arbitrary arity.
// On binary trees it is exactly Algorithm 3; on wider trees it is a
// feasible heuristic. Empirically (experiments E7/E8) it matches the
// exact optimum on ≈99% of random instances, with a worst observed
// gap of one replica; the NoD general-arity regime is the one the
// paper cites as polynomially solvable [3]. Requires ri ≤ W.
func Greedy(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.FitsLocally() {
		return nil, fmt.Errorf("multiple: Greedy requires ri ≤ W for all clients (max r=%d, W=%d)",
			in.Tree.MaxRequests(), in.W)
	}
	return run(in, false)
}

// Lazy runs the delayed-placement variant of Algorithm 3: a server is
// placed only when the distance constraint forces one (or at the
// root), never by the paper's eager "more than W requests in temp"
// trigger; request lists flowing upwards may therefore exceed W and
// the generalised extra-server machinery redistributes them.
//
// Motivation: the repository's reproduction found a 9-node
// counterexample (see TestTheorem6Counterexample) where the faithful
// Algorithm 3 is off by one because the eager trigger commits W
// requests below a node that a distance-blocked, under-filled server
// is later placed on. Delaying placement resolves that class of
// instances; experiment E7 measures both variants against the exact
// optimum. Requires ri ≤ W.
func Lazy(in *core.Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.FitsLocally() {
		return nil, fmt.Errorf("multiple: Lazy requires ri ≤ W for all clients (max r=%d, W=%d)",
			in.Tree.MaxRequests(), in.W)
	}
	return run(in, true)
}

// Best runs both the faithful (eager) generalisation of Algorithm 3
// and the Lazy variant and returns the solution with fewer replicas.
// Each variant covers the other's rare failure class (see experiment
// E7): across thousands of random instances the combination is
// optimal on ≈99.9%. Requires ri ≤ W.
func Best(in *core.Instance) (*core.Solution, error) {
	eager, err := Greedy(in)
	if err != nil {
		return nil, err
	}
	lazy, err := Lazy(in)
	if err != nil {
		return nil, err
	}
	if lazy.NumReplicas() < eager.NumReplicas() {
		return lazy, nil
	}
	return eager, nil
}

// state carries the per-node req/proc lists of Algorithm 3.
type state struct {
	in   *core.Instance
	req  []list // req(j): requests passed up by j, sorted by non-increasing d
	proc []list // proc(j): requests served at j (only meaningful when inR[j])
	inR  []bool
	// lazy disables the eager capacity trigger (Lazy variant).
	lazy bool
}

func run(in *core.Instance, lazy bool) (*core.Solution, error) {
	n := in.Tree.Len()
	s := &state{
		in:   in,
		req:  make([]list, n),
		proc: make([]list, n),
		inR:  make([]bool, n),
		lazy: lazy,
	}
	s.visit(in.Tree.Root())
	if rem := s.req[in.Tree.Root()]; len(rem) != 0 {
		panic("multiple: requests left at the root")
	}
	sol := &core.Solution{}
	for j := 0; j < n; j++ {
		if !s.inR[j] {
			continue
		}
		id := tree.NodeID(j)
		sol.AddReplica(id)
		for _, tr := range s.proc[j] {
			sol.Assign(tr.client, id, tr.w)
		}
	}
	sol.Normalize()
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		return nil, fmt.Errorf("multiple: algorithm produced infeasible solution: %w", err)
	}
	return sol, nil
}

// visit is the recursive procedure multiple-bin(j) of Algorithm 3
// (written for arbitrary arity; on binary trees it coincides with the
// paper's pseudocode).
func (s *state) visit(j tree.NodeID) {
	t := s.in.Tree
	dmax := s.in.DMax

	if t.IsClient(j) {
		r := t.Requests(j)
		if r == 0 {
			return
		}
		if t.Dist(j) > dmax {
			// The requests cannot even reach the parent: serve locally.
			s.place(j, list{{d: 0, w: r, client: j}})
		} else {
			s.req[j] = list{{d: 0, w: r, client: j}}
		}
		return
	}

	children := t.Children(j)
	parts := make([]list, 0, len(children))
	for _, c := range children {
		s.visit(c)
		parts = append(parts, s.req[c].addDist(t.Dist(c)))
	}
	temp := mergeAll(parts)
	wtot := temp.total()

	// blockedAbove reports whether a request at distance d cannot be
	// served at parent(j): past the root (δr = +∞, so nothing ever
	// leaves the root, even with dmax = ∞) or beyond the distance
	// bound.
	blockedAbove := func(d int64) bool {
		return j == t.Root() || tree.SatAdd(d, t.Dist(j)) > dmax
	}

	if len(temp) > 0 && (blockedAbove(temp[0].d) || (!s.lazy && wtot > s.in.W)) {
		// Place a server at j and fill it with the most
		// distance-constrained requests, up to capacity W.
		procList, rest := temp.take(s.in.W)
		s.place(j, procList)
		temp = rest
	}
	s.req[j] = temp

	if len(temp) > 0 && blockedAbove(temp[0].d) {
		// Some requests can be served neither at j (capacity) nor
		// above j (distance): re-arrange assignments and add an extra
		// server inside subtree(j).
		s.extraServer(j)
		s.req[j] = nil
	}
}

// place puts a replica at j serving exactly l.
func (s *state) place(j tree.NodeID, l list) {
	s.inR[j] = true
	s.proc[j] = l
}

// extraServer implements (and generalises) the extra-server(j)
// procedure of Algorithm 3. Node j is already a server; the requests
// that flowed through j — the units of ∪c req(c), which include j's
// current proc(j) and the blocked leftover req(j) — must all be served
// inside subtree(j). The procedure reassigns them:
//
//   - j keeps whole child lists, smallest first, up to capacity W
//     (the paper keeps req(lchild); keeping the smaller list first is
//     equivalent for the Theorem 6 counting argument and strictly
//     better on wider trees);
//   - a child that is not yet a server may have its list split: part
//     is kept at j, the remainder is served inside the child's
//     subtree (the Multiple policy allows splitting);
//   - a child that is already a saturated server absorbs its whole
//     list by the paper's swap: extraServer(child) re-covers
//     temp(child) = proc(child) ⊎ req(child) entirely inside the
//     child's subtree, adding exactly one server on binary trees.
//
// Every entry of req(c) is servable at c (it passed c's own distance
// check) and at j = parent(c), so no distance constraint can break.
func (s *state) extraServer(j tree.NodeID) {
	t := s.in.Tree
	children := append([]tree.NodeID{}, t.Children(j)...)
	sort.Slice(children, func(a, b int) bool {
		ta, tb := s.req[children[a]].total(), s.req[children[b]].total()
		if ta != tb {
			return ta < tb
		}
		return children[a] < children[b]
	})

	var keep list // what j will now serve
	budget := s.in.W
	var pending []tree.NodeID
	for _, c := range children {
		lc := s.req[c]
		w := lc.total()
		if w == 0 {
			continue
		}
		if w <= budget {
			keep = merge(keep, lc.addDist(t.Dist(c)))
			budget -= w
			s.req[c] = nil
			continue
		}
		pending = append(pending, c)
	}
	for _, c := range pending {
		lc := s.req[c]
		s.req[c] = nil
		if s.inR[c] {
			// Saturated child: swap its whole subtree assignment.
			// A saturated client passes nothing up, so lc would be
			// empty and c would not be pending.
			if t.IsClient(c) {
				panic("multiple: extra-server reached a saturated client")
			}
			s.extraServer(c)
			continue
		}
		if budget > 0 {
			// Split: the most distance-constrained part stays at j.
			head, rest := lc.take(budget)
			keep = merge(keep, head.addDist(t.Dist(c)))
			budget = 0
			lc = rest
		}
		s.serveInside(c, lc)
	}
	if len(keep) == 0 {
		// Every unit ended up inside the children's subtrees: j no
		// longer serves anything, so it should not count as a
		// replica. (Unreachable on binary trees with ri ≤ W: the
		// smaller child list always fits into an empty budget W.)
		s.inR[j] = false
		s.proc[j] = nil
		return
	}
	s.proc[j] = keep
	s.inR[j] = true
}

// serveInside serves all of l (expressed in c's frame: every unit
// flowed up through c and is servable at c) inside subtree(c). If c is
// free it becomes a server for up to W units; any remainder descends
// towards the units' origin clients, which are necessarily free — a
// client with a replica never passes requests up.
func (s *state) serveInside(c tree.NodeID, l list) {
	if len(l) == 0 {
		return
	}
	t := s.in.Tree
	if !s.inR[c] {
		head, rest := l.take(s.in.W)
		s.place(c, head)
		l = rest
		if len(l) == 0 {
			return
		}
	}
	if t.IsClient(c) {
		panic("multiple: request unit descended past its origin client")
	}
	// Partition the remainder by the child of c each unit came
	// through, and push each portion down (converting back to the
	// child's frame).
	parts := make(map[tree.NodeID]list)
	for _, u := range l {
		gc := s.childToward(c, u.client)
		u.d -= t.Dist(gc)
		parts[gc] = append(parts[gc], u)
	}
	for _, gc := range t.Children(c) {
		if p := parts[gc]; len(p) > 0 {
			s.serveInside(gc, p)
		}
	}
}

// childToward returns the child of c on the path from c down to
// client i.
func (s *state) childToward(c, i tree.NodeID) tree.NodeID {
	t := s.in.Tree
	for t.Parent(i) != c {
		i = t.Parent(i)
		if i == t.Root() {
			panic("multiple: childToward walked past the root")
		}
	}
	return i
}
