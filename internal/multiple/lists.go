// Package multiple implements the Multiple-policy algorithms:
// Algorithm 3 (multiple-bin), the paper's polynomial-time optimal
// algorithm for Multiple-Bin when every client fits on one server
// (ri ≤ W, Theorem 6), and Greedy, its generalisation to arbitrary
// arity (optimal for binary trees by construction, evaluated
// empirically against exact optima elsewhere — the general
// distance-constrained problem is NP-hard).
package multiple

import "replicatree/internal/tree"

// triple is the (d, w, i) record of Algorithm 3: w requests issued by
// client i that have travelled distance d so far, and can therefore be
// served at the current node only if d ≤ dmax (and at the parent only
// if d + δ ≤ dmax).
type triple struct {
	d      int64
	w      int64
	client tree.NodeID
}

// list is a request list sorted by non-increasing d: the head is the
// most distance-constrained batch, which must be served first.
type list []triple

// total returns the number of requests in the list.
func (l list) total() int64 {
	var s int64
	for i := range l {
		s += l[i].w
	}
	return s
}

// addDist returns a copy of the list with dist added to every d
// (saturating), preserving order (adding a constant preserves the
// non-increasing order).
func (l list) addDist(dist int64) list {
	out := make(list, len(l))
	for i := range l {
		out[i] = triple{d: tree.SatAdd(l[i].d, dist), w: l[i].w, client: l[i].client}
	}
	return out
}

// merge merges two lists sorted by non-increasing d into one.
func merge(a, b list) list {
	out := make(list, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].d >= b[j].d {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeAll merges k sorted lists (k-way, pairwise fold; k is the tree
// arity, small in practice).
func mergeAll(ls []list) list {
	switch len(ls) {
	case 0:
		return nil
	case 1:
		return ls[0]
	}
	out := ls[0]
	for _, l := range ls[1:] {
		out = merge(out, l)
	}
	return out
}

// take splits the list into a prefix of exactly at most w requests
// (splitting a triple if necessary — allowed under the Multiple
// policy) and the remainder.
func (l list) take(w int64) (head, rest list) {
	var got int64
	for i := range l {
		if got == w {
			return l[:i:i], l[i:]
		}
		if got+l[i].w <= w {
			got += l[i].w
			continue
		}
		// Split triple i.
		keep := w - got
		head = append(list{}, l[:i]...)
		head = append(head, triple{d: l[i].d, w: keep, client: l[i].client})
		rest = append(list{}, triple{d: l[i].d, w: l[i].w - keep, client: l[i].client})
		rest = append(rest, l[i+1:]...)
		return head, rest
	}
	return l, nil
}
