package multiple

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/tree"
)

// Churn quantifies the difference between two placements: replicas
// added, replicas removed, and the amount of request flow that changed
// servers.
type Churn struct {
	Added   []tree.NodeID
	Removed []tree.NodeID
	// MovedRequests is the total request volume assigned to a
	// different server than before (computed per (client, server)
	// pair).
	MovedRequests int64
}

// PlanDelta computes the churn from old to new on the same tree.
func PlanDelta(t *tree.Tree, old, new *core.Solution) Churn {
	var ch Churn
	oldSet, newSet := old.ReplicaSet(), new.ReplicaSet()
	for _, r := range new.Replicas {
		if !oldSet[r] {
			ch.Added = append(ch.Added, r)
		}
	}
	for _, r := range old.Replicas {
		if !newSet[r] {
			ch.Removed = append(ch.Removed, r)
		}
	}
	type key struct{ c, s tree.NodeID }
	oldAmt := make(map[key]int64)
	for _, a := range old.Assignments {
		oldAmt[key{a.Client, a.Server}] += a.Amount
	}
	for _, a := range new.Assignments {
		k := key{a.Client, a.Server}
		kept := oldAmt[k]
		if kept >= a.Amount {
			oldAmt[k] = kept - a.Amount
			continue
		}
		ch.MovedRequests += a.Amount - kept
		oldAmt[k] = 0
	}
	return ch
}

// Replan adapts an existing feasible placement to a new instance
// (typically the same tree with changed request rates or a changed W)
// while minimising churn:
//
//  1. keep the old replica set if it is still feasible (re-routing
//     only — zero placement churn);
//  2. otherwise grow it greedily with the candidates that unlock the
//     most stuck demand until feasible;
//  3. then drop replicas that became redundant, old ones last, so
//     long as the set stays feasible.
//
// The result is feasible for the new instance; its churn against old
// is reported alongside. Replan never guarantees optimal replica
// counts — that is the price of stability; compare with Best to see
// the gap.
func Replan(in *core.Instance, old *core.Solution) (*core.Solution, Churn, error) {
	return ReplanExcluding(in, old, nil)
}

// ReplanExcluding is Replan with a set of forbidden replica sites —
// failed servers that must host nothing in the new placement. Old
// replicas on excluded nodes are dropped before adaptation (their
// clients' demand is re-homed like any other stuck demand) and
// excluded nodes never enter the growth pool.
func ReplanExcluding(in *core.Instance, old *core.Solution, excluded []tree.NodeID) (*core.Solution, Churn, error) {
	if err := in.Validate(); err != nil {
		return nil, Churn{}, err
	}
	t := in.Tree
	down := make(map[tree.NodeID]bool, len(excluded))
	for _, x := range excluded {
		down[x] = true
	}
	// Sanitise the old replica set against the new tree (nodes must
	// exist and be up; stale assignments are discarded — only
	// locations count).
	oldSet := make(map[tree.NodeID]bool)
	var R []tree.NodeID
	for _, r := range old.Replicas {
		if t.Valid(r) && !oldSet[r] && !down[r] {
			oldSet[r] = true
			R = append(R, r)
		}
	}

	// Candidate pool for growth: all nodes that can serve someone.
	type cand struct {
		node  tree.NodeID
		reach int64
	}
	var pool []cand
	for j := 0; j < t.Len(); j++ {
		id := tree.NodeID(j)
		if down[id] {
			continue
		}
		var reach int64
		for _, c := range t.Clients() {
			if t.Requests(c) > 0 && in.CanServe(c, id) {
				reach += t.Requests(c)
			}
		}
		if reach > 0 && !oldSet[id] {
			pool = append(pool, cand{id, reach})
		}
	}
	sort.Slice(pool, func(a, b int) bool {
		if pool[a].reach != pool[b].reach {
			return pool[a].reach > pool[b].reach
		}
		return pool[a].node < pool[b].node
	})

	feasible := func(set []tree.NodeID) bool {
		return exact.MultipleFeasible(in, set)
	}
	grown := append([]tree.NodeID{}, R...)
	for i := 0; !feasible(grown); i++ {
		if i >= len(pool) {
			return nil, Churn{}, fmt.Errorf("multiple: replan cannot reach feasibility")
		}
		grown = append(grown, pool[i].node)
	}

	// Shrink: drop new additions first (reverse growth order), then
	// old replicas, while feasibility holds.
	for changed := true; changed; {
		changed = false
		for i := len(grown) - 1; i >= 0; i-- {
			trial := make([]tree.NodeID, 0, len(grown)-1)
			for k, r := range grown {
				if k != i {
					trial = append(trial, r)
				}
			}
			if feasible(trial) {
				grown = trial
				changed = true
				break
			}
		}
	}

	sol, err := exact.MultipleAssignment(in, grown)
	if err != nil {
		return nil, Churn{}, err
	}
	if err := core.Verify(in, core.Multiple, sol); err != nil {
		return nil, Churn{}, fmt.Errorf("multiple: replan produced infeasible solution: %w", err)
	}
	return sol, PlanDelta(t, old, sol), nil
}
