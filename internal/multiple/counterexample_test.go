package multiple

import (
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/tree"
)

// counterexample builds the 9-node instance on which the faithful
// Algorithm 3 is suboptimal — discovered by this repository's
// randomised cross-validation (experiment E7):
//
//	         root                     W = 7, dmax = 5
//	     3 ╱      ╲ 3
//	      p        x
//	    1 │    1 ╱   ╲ 3
//	      q     y     far(r=1)
//	    1 │  1╱  ╲1
//	side(r=5) big(r=7) one(r=1)
//
// far reaches only x (root is at distance 6 > dmax); big, one and
// side all reach the root at distance exactly 5 = dmax.
//
// Optimal (2 replicas): x serves 6 of big + far (load 7); the root
// serves 1 of big + one + side (load 7).
//
// Algorithm 3 (3 replicas): at y, temp holds 8 > W requests, so the
// eager rule places a server at y serving 7 of them; x must then be
// placed for far but stays under-filled (load 2), and the root is
// needed for side anyway. The proof of Theorem 6 asserts the requests
// served by the deeper y-server are "more constrained by distance"
// than those at the blocking node x — which fails here: big's
// requests could still have travelled to the root while far's cannot.
// The side branch matters: without it, x itself absorbs the leftovers
// and the gap closes.
func counterexample() *core.Instance {
	b := tree.NewBuilder()
	root := b.Root("root")
	p := b.Internal(root, 3, "p")
	q := b.Internal(p, 1, "q")
	b.Client(q, 1, 5, "side")
	x := b.Internal(root, 3, "x")
	y := b.Internal(x, 1, "y")
	b.Client(y, 1, 7, "big")
	b.Client(y, 1, 1, "one")
	b.Client(x, 3, 1, "far")
	return &core.Instance{Tree: b.MustBuild(), W: 7, DMax: 5}
}

// TestTheorem6Counterexample pins the reproduction finding: the
// faithful Algorithm 3 returns 3 replicas on an instance whose
// optimum is 2, and the Lazy variant recovers the optimum. If a code
// change ever makes Bin return 2 here, this test should be updated —
// and celebrated.
func TestTheorem6Counterexample(t *testing.T) {
	in := counterexample()
	opt, err := exact.SolveMultiple(in, exact.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.NumReplicas() != 2 {
		t.Fatalf("exact optimum = %d, want 2", opt.NumReplicas())
	}
	eager, err := Bin(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, eager); err != nil {
		t.Fatal(err)
	}
	if eager.NumReplicas() != 3 {
		t.Fatalf("faithful Algorithm 3 = %d replicas; the documented counterexample gives 3", eager.NumReplicas())
	}
	lazy, err := Lazy(in)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.NumReplicas() != 2 {
		t.Fatalf("Lazy variant = %d replicas, want the optimum 2", lazy.NumReplicas())
	}
	best, err := Best(in)
	if err != nil {
		t.Fatal(err)
	}
	if best.NumReplicas() != 2 {
		t.Fatalf("Best = %d replicas, want 2", best.NumReplicas())
	}
}
