package multiple

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func TestMinimizeLatencyImproves(t *testing.T) {
	// Root and hub both replicas; a bad-but-feasible hand assignment
	// sends everything to the far root. MinimizeLatency must pull the
	// flows down to the hub.
	b := tree.NewBuilder()
	root := b.Root("root")
	hub := b.Internal(root, 5, "hub")
	c1 := b.Client(hub, 1, 4, "c1")
	c2 := b.Client(hub, 1, 3, "c2")
	c3 := b.Client(root, 1, 6, "c3")
	in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: core.NoDistance}

	// Feasible but latency-poor: c1 crosses the long edge to the root
	// (distance 6) although the hub (distance 1) has room.
	bad := &core.Solution{}
	bad.AddReplica(root)
	bad.AddReplica(hub)
	bad.Assign(c1, root, 4)
	bad.Assign(c2, hub, 3)
	bad.Assign(c3, root, 6)
	bad.Normalize()
	if err := core.Verify(in, core.Multiple, bad); err != nil {
		t.Fatalf("setup: %v", err)
	}

	before := TotalDistance(in.Tree, bad)
	opt, err := MinimizeLatency(in, bad)
	if err != nil {
		t.Fatal(err)
	}
	after := TotalDistance(in.Tree, opt)
	if after > before {
		t.Fatalf("latency worsened: %d → %d", before, after)
	}
	// Optimal here: c1,c2 at hub (dist 1 each → 7), c3 at root
	// (dist 1 → 6): total 13.
	if after != 13 {
		t.Fatalf("total distance = %d, want 13", after)
	}
	if opt.NumReplicas() != bad.NumReplicas() {
		t.Fatal("replica set changed")
	}
}

func TestMinimizeLatencyRejectsInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 5, "c")
	b.Client(r, 1, 1, "d")
	in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: core.NoDistance}
	if _, err := MinimizeLatency(in, &core.Solution{}); err == nil {
		t.Fatal("empty solution should be rejected")
	}
}

// TestMinimizeLatencyNeverWorsens: on random instances, re-routing
// keeps feasibility, the replica set, and never increases the total
// distance; with dmax it also never violates it (Verify checks).
func TestMinimizeLatencyNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	improved := 0
	for trial := 0; trial < 120; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    2 + rng.Intn(6),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      4,
			MaxReq:       9,
			ExtraClients: rng.Intn(4),
		}, trial%2 == 0)
		sol, err := Greedy(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := MinimizeLatency(in, sol)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		before, after := TotalDistance(in.Tree, sol), TotalDistance(in.Tree, opt)
		if after > before {
			t.Fatalf("trial %d: %d → %d", trial, before, after)
		}
		if after < before {
			improved++
		}
		if opt.NumReplicas() != sol.NumReplicas() {
			t.Fatalf("trial %d: replica count changed", trial)
		}
	}
	if improved == 0 {
		t.Fatal("MinimizeLatency never improved anything across 120 trials — suspicious")
	}
}

func TestTotalDistance(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	c := b.Client(r, 3, 4, "c")
	tr := b.MustBuild()
	sol := &core.Solution{}
	sol.AddReplica(r)
	sol.Assign(c, r, 4)
	if got := TotalDistance(tr, sol); got != 12 {
		t.Fatalf("TotalDistance = %d, want 12", got)
	}
}
