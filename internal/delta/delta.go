// Package delta implements stateful instance sessions with
// mutate-and-resolve: a Session owns a mutable copy of one instance,
// its last solution and pooled solver working memory, and re-solves
// after typed mutations instead of solving from scratch.
//
// Three re-solve strategies, picked by the session's engine:
//
//   - single-gen runs the truly incremental Algorithm 1 (geninc.go):
//     mutations dirty only the touched root paths, the re-solve
//     recomputes just those, and the result is pinned equal to a cold
//     solve of the mutated instance.
//   - delta-capable engines (multiple-replan) receive the previous
//     solution via Request.Previous and the failed-server set via
//     Request.Exclude; the engine minimises churn itself.
//   - every other engine falls back to a full warm solve on the
//     session's pooled scratch; the session derives the churn with
//     multiple.PlanDelta.
//
// In all three cases Resolve reports the churn against the previous
// resolve in Report.Churn, and the solution/churn returned are owned
// by the caller (cloned out of session state). A Session is safe for
// concurrent use.
package delta

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/multiple"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// Op names a mutation kind. The string values are the wire format of
// the /v2/instances mutate endpoint.
type Op string

const (
	// OpAddClient appends a new leaf client under Parent with edge
	// length Dist, rate Requests and optional Label. Node IDs stay
	// dense and stable; the new client's ID is returned via Session
	// state (it is always the previous node count).
	OpAddClient Op = "add_client"
	// OpRemoveClient zeroes the rate of client Node. IDs are never
	// renumbered: a removed client stays as an idle leaf, which keeps
	// every incremental table and the canonical shape stable.
	OpRemoveClient Op = "remove_client"
	// OpSetRequest sets the rate of client Node to Requests.
	OpSetRequest Op = "set_request"
	// OpFailServer marks Node as unable to host replicas. Only
	// delta-capable engines (multiple-replan) honour failures; other
	// sessions reject the op.
	OpFailServer Op = "fail_server"
	// OpSetEdgeLength sets the length of the edge above Node to Dist.
	OpSetEdgeLength Op = "set_edge_length"
	// OpSetCapacity sets the per-server capacity to W.
	OpSetCapacity Op = "set_capacity"
)

// Mutation is one typed mutation; which fields matter depends on Op.
type Mutation struct {
	Op       Op          `json:"op"`
	Node     tree.NodeID `json:"node,omitempty"`
	Parent   tree.NodeID `json:"parent,omitempty"`
	Dist     int64       `json:"dist,omitempty"`
	Requests int64       `json:"requests,omitempty"`
	W        int64       `json:"w,omitempty"`
	Label    string      `json:"label,omitempty"`
}

// Session is a long-lived mutable instance bound to one engine. Create
// with New, mutate with Apply, re-solve with Resolve, release with
// Close.
type Session struct {
	mu sync.Mutex

	id     string // canonical hash of the instance at creation
	engine solver.Engine
	ed     *tree.Editor
	w      int64
	dmax   int64

	sc     *solver.Scratch
	inc    *genInc        // non-nil only for single-gen sessions
	prev   *core.Solution // last solution (session-owned clone); nil before first resolve
	last   solver.Report  // last successful report (solution/churn are caller clones)
	solved bool
	failed []tree.NodeID // sorted failed-server set (delta engines only)
}

// New creates a session over a private copy of in, bound to the named
// engine. The instance is validated once; the session's identity is
// its canonical hash at this point (mutations do not change the ID).
func New(in *core.Instance, engineName string) (*Session, error) {
	if in == nil {
		return nil, errors.New("delta: nil instance")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	eng, err := solver.Lookup(engineName)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:     in.CanonicalHash(),
		engine: eng,
		ed:     tree.NewEditor(in.Tree),
		w:      in.W,
		dmax:   in.DMax,
		sc:     solver.GetScratch(),
	}
	if engineName == solver.SingleGen {
		s.inc = &genInc{w: in.W, dmax: in.DMax}
	}
	return s, nil
}

// ID returns the canonical hash of the instance the session was
// created from. It identifies the session, not the current mutated
// instance (whose hash drifts with every mutation).
func (s *Session) ID() string { return s.id }

// Engine returns the bound engine's name.
func (s *Session) Engine() string { return s.engine.Name() }

// Instance returns an independent snapshot of the current (mutated)
// instance, safe to solve cold while the session keeps mutating.
func (s *Session) Instance() *core.Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &core.Instance{Tree: s.ed.Tree().Clone(), W: s.w, DMax: s.dmax}
}

// Failed returns the current failed-server set.
func (s *Session) Failed() []tree.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return slices.Clone(s.failed)
}

// Report returns the last successful resolve's report, if any.
func (s *Session) Report() (solver.Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.solved
}

// Close releases the pooled solver scratch. The session must not be
// used afterwards.
func (s *Session) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	solver.PutScratch(s.sc)
	s.sc = nil
}

// Apply applies mutations in order. The first invalid mutation aborts
// the batch with an error; mutations before it remain applied (each
// leaves the instance valid, so the session stays consistent — dirty
// state simply accumulates until the next Resolve).
func (s *Session) Apply(muts []Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range muts {
		if err := s.apply(&muts[i]); err != nil {
			return fmt.Errorf("delta: mutation %d (%s): %w", i, muts[i].Op, err)
		}
	}
	return nil
}

func (s *Session) apply(m *Mutation) error {
	switch m.Op {
	case OpAddClient:
		if _, err := s.ed.AddLeaf(m.Parent, m.Dist, m.Requests, m.Label); err != nil {
			return err
		}
		if s.inc != nil {
			s.inc.invalidate()
		}
	case OpRemoveClient:
		if err := s.ed.SetRequests(m.Node, 0); err != nil {
			return err
		}
		if s.inc != nil {
			s.inc.setRequest(m.Node, 0)
		}
	case OpSetRequest:
		if err := s.ed.SetRequests(m.Node, m.Requests); err != nil {
			return err
		}
		if s.inc != nil {
			s.inc.setRequest(m.Node, m.Requests)
		}
	case OpSetEdgeLength:
		if err := s.ed.SetEdgeLen(m.Node, m.Dist); err != nil {
			return err
		}
		if s.inc != nil {
			s.inc.setEdgeLen(m.Node, m.Dist)
		}
	case OpSetCapacity:
		if m.W <= 0 {
			return fmt.Errorf("non-positive capacity W=%d", m.W)
		}
		s.w = m.W
		if s.inc != nil {
			s.inc.setCapacity(m.W)
		}
	case OpFailServer:
		if !s.engine.Capabilities().Delta {
			return fmt.Errorf("engine %s cannot honour failed servers (delta engines only)", s.engine.Name())
		}
		if !s.ed.Tree().Valid(m.Node) {
			return fmt.Errorf("unknown node %d", m.Node)
		}
		if _, ok := slices.BinarySearch(s.failed, m.Node); !ok {
			s.failed = append(s.failed, m.Node)
			slices.Sort(s.failed)
		}
	default:
		return fmt.Errorf("unknown op %q", m.Op)
	}
	return nil
}

// SetFailed replaces the failed-server set wholesale — the natural
// shape for failure replay, where servers fail and recover. Only valid
// on delta-capable sessions.
func (s *Session) SetFailed(failed []tree.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.engine.Capabilities().Delta {
		return fmt.Errorf("delta: engine %s cannot honour failed servers (delta engines only)", s.engine.Name())
	}
	t := s.ed.Tree()
	for _, j := range failed {
		if !t.Valid(j) {
			return fmt.Errorf("delta: unknown node %d", j)
		}
	}
	s.failed = slices.Clone(failed)
	slices.Sort(s.failed)
	s.failed = slices.Compact(s.failed)
	return nil
}

// Resolve re-solves the current instance. The returned report's
// Solution and Churn are caller-owned; Churn always compares against
// the previous successful resolve (all-added on the first). A failed
// resolve leaves the previous solution and the accumulated dirty
// state untouched, so a later mutation can repair the instance.
func (s *Session) Resolve(ctx context.Context) (solver.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sc == nil {
		return solver.Report{}, errors.New("delta: session is closed")
	}
	var (
		rep solver.Report
		err error
	)
	switch {
	case s.inc != nil:
		rep, err = s.resolveInc(ctx)
	case s.engine.Capabilities().Delta:
		rep, err = s.resolveDelta(ctx)
	default:
		rep, err = s.resolveWarm(ctx)
	}
	if err != nil {
		return rep, err
	}
	s.last = rep
	s.solved = true
	return rep, nil
}

// resolveInc runs the incremental Algorithm 1.
func (s *Session) resolveInc(ctx context.Context) (solver.Report, error) {
	begin := time.Now()
	rep := solver.Report{Engine: solver.SingleGen, Policy: core.Single}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	g := s.inc
	if err := g.resolve(s.ed.Tree()); err != nil {
		rep.Elapsed = time.Since(begin)
		if !instanceFeasibleSingle(g) {
			err = solver.MarkInfeasible(err)
		}
		return rep, err
	}
	rep.Solution = g.sol.Clone()
	rep.LowerBound = g.lb
	if rep.LowerBound > 0 {
		rep.Gap = float64(rep.Solution.NumReplicas()-rep.LowerBound) / float64(rep.LowerBound)
	}
	rep.Churn = &multiple.Churn{
		Added:         slices.Clone(g.added),
		Removed:       slices.Clone(g.removed),
		MovedRequests: g.moved,
	}
	rep.Elapsed = time.Since(begin)
	s.prev = rep.Solution.Clone()
	return rep, nil
}

// instanceFeasibleSingle mirrors engineCore's infeasibility
// classification for the incremental path without re-walking the tree.
func instanceFeasibleSingle(g *genInc) bool {
	for _, r := range g.f.Reqs {
		if r > g.w {
			return false
		}
	}
	return true
}

// resolveDelta hands the previous solution and failure set to a
// delta-capable engine.
func (s *Session) resolveDelta(ctx context.Context) (solver.Report, error) {
	wrap := &core.Instance{Tree: s.ed.Tree(), W: s.w, DMax: s.dmax}
	rep, err := s.engine.Solve(ctx, solver.Request{
		Instance: wrap,
		Previous: s.prev,
		Exclude:  s.failed,
		Scratch:  s.sc,
	})
	if err != nil {
		return rep, err
	}
	rep.Solution = rep.Solution.Clone()
	s.prev = rep.Solution.Clone()
	return rep, nil
}

// resolveWarm is the full warm solve fallback for engines without a
// delta path: re-solve on the pooled scratch, derive churn afterwards.
func (s *Session) resolveWarm(ctx context.Context) (solver.Report, error) {
	// A fresh instance wrapper forces scratch re-ingestion: the tree
	// was mutated in place, and the scratch's ingest key is pointer
	// identity.
	wrap := &core.Instance{Tree: s.ed.Tree(), W: s.w, DMax: s.dmax}
	rep, err := s.engine.Solve(ctx, solver.Request{Instance: wrap, Scratch: s.sc})
	if err != nil {
		return rep, err
	}
	sol := rep.Solution.Clone() // the warm solution is scratch-owned
	prev := s.prev
	if prev == nil {
		prev = &core.Solution{}
	}
	ch := multiple.PlanDelta(s.ed.Tree(), prev, sol)
	rep.Solution = sol
	rep.Churn = &ch
	s.prev = sol.Clone()
	return rep, nil
}
