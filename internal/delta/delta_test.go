package delta

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/multiple"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

func smallInstance(t *testing.T) *core.Instance {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	n1 := b.Internal(root, 2, "n1")
	n2 := b.Internal(root, 1, "n2")
	b.Client(n1, 1, 4, "c1")
	b.Client(n1, 2, 3, "c2")
	b.Client(n2, 1, 5, "c3")
	b.Client(n2, 3, 2, "c4")
	return &core.Instance{Tree: b.MustBuild(), W: 7, DMax: 4}
}

// reportsEqual compares the fields a cold re-solve must reproduce
// (Elapsed and Work are timing/engine artifacts).
func reportsEqual(t *testing.T, tag string, got, want solver.Report) {
	t.Helper()
	if got.Solution == nil || want.Solution == nil {
		t.Fatalf("%s: nil solution (got %v, want %v)", tag, got.Solution, want.Solution)
	}
	if !slices.Equal(got.Solution.Replicas, want.Solution.Replicas) {
		t.Errorf("%s: replicas %v, want %v", tag, got.Solution.Replicas, want.Solution.Replicas)
	}
	if !slices.Equal(got.Solution.Assignments, want.Solution.Assignments) {
		t.Errorf("%s: assignments differ\n got: %v\nwant: %v", tag, got.Solution.Assignments, want.Solution.Assignments)
	}
	if got.Policy != want.Policy || got.LowerBound != want.LowerBound ||
		got.Gap != want.Gap || got.Proved != want.Proved || got.Engine != want.Engine {
		t.Errorf("%s: report block (policy=%v lb=%d gap=%v proved=%v engine=%s), want (%v %d %v %v %s)",
			tag, got.Policy, got.LowerBound, got.Gap, got.Proved, got.Engine,
			want.Policy, want.LowerBound, want.Gap, want.Proved, want.Engine)
	}
}

// churnEqual compares a session churn with a PlanDelta-derived twin.
func churnEqual(t *testing.T, tag string, got *multiple.Churn, want multiple.Churn) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: report carries no churn", tag)
	}
	if !slices.Equal(got.Added, want.Added) || !slices.Equal(got.Removed, want.Removed) ||
		got.MovedRequests != want.MovedRequests {
		t.Errorf("%s: churn %+v, want %+v", tag, *got, want)
	}
}

// randomMutation draws one valid mutation against the session's
// current instance shape.
func randomMutation(rng *rand.Rand, in *core.Instance, allowStructural bool) Mutation {
	t := in.Tree
	var clients, internals []tree.NodeID
	for j := 0; j < t.Len(); j++ {
		id := tree.NodeID(j)
		if t.IsClient(id) {
			clients = append(clients, id)
		} else {
			internals = append(internals, id)
		}
	}
	for {
		switch rng.Intn(6) {
		case 0:
			return Mutation{Op: OpSetRequest, Node: clients[rng.Intn(len(clients))], Requests: rng.Int63n(in.W + 1)}
		case 1:
			return Mutation{Op: OpRemoveClient, Node: clients[rng.Intn(len(clients))]}
		case 2:
			if !allowStructural {
				continue
			}
			return Mutation{
				Op: OpAddClient, Parent: internals[rng.Intn(len(internals))],
				Dist: rng.Int63n(4), Requests: rng.Int63n(in.W + 1), Label: "grown",
			}
		case 3:
			// Non-root node: every client qualifies; internals only if
			// not the root.
			j := clients[rng.Intn(len(clients))]
			return Mutation{Op: OpSetEdgeLength, Node: j, Dist: rng.Int63n(5)}
		case 4:
			if len(internals) < 2 {
				continue
			}
			j := internals[1+rng.Intn(len(internals)-1)]
			return Mutation{Op: OpSetEdgeLength, Node: j, Dist: rng.Int63n(5)}
		default:
			// Keep W ≥ 1; shrinking W below max request exercises the
			// infeasible path.
			return Mutation{Op: OpSetCapacity, W: 1 + rng.Int63n(2*in.W)}
		}
	}
}

// TestIncrementalMatchesColdRandom hammers single-gen sessions with
// random mutation sequences on random trees and pins every resolve —
// report, error text and sentinel classification — to a cold solve of
// the snapshot instance.
func TestIncrementalMatchesColdRandom(t *testing.T) {
	ctx := context.Background()
	cold := solver.MustLookup(solver.SingleGen)
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		cfg := gen.TreeConfig{
			Internals: 4 + rng.Intn(12), MaxArity: 2 + rng.Intn(3),
			MaxDist: 4, MaxReq: 9, ExtraClients: rng.Intn(4),
		}
		in := gen.RandomInstance(rng, cfg, seed%2 == 0)
		s, err := New(in, solver.SingleGen)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for step := 0; step < 40; step++ {
			if step > 0 {
				m := randomMutation(rng, s.Instance(), true)
				if err := s.Apply([]Mutation{m}); err != nil {
					t.Fatalf("seed %d step %d: apply %+v: %v", seed, step, m, err)
				}
			}
			snap := s.Instance()
			got, gerr := s.Resolve(ctx)
			want, werr := cold.Solve(ctx, solver.Request{Instance: snap})
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("seed %d step %d: delta err %v, cold err %v", seed, step, gerr, werr)
			}
			if gerr != nil {
				if gerr.Error() != werr.Error() {
					t.Fatalf("seed %d step %d: error text %q, cold %q", seed, step, gerr, werr)
				}
				if errors.Is(gerr, solver.ErrInfeasible) != errors.Is(werr, solver.ErrInfeasible) {
					t.Fatalf("seed %d step %d: sentinel classification diverged: %v vs %v", seed, step, gerr, werr)
				}
				continue
			}
			reportsEqual(t, "seed/step", got, want)
		}
		s.Close()
	}
}

// TestIncrementalLargeTreePartialDirty runs long mutation sequences on
// a tree large enough that single mutations stay far below the
// full-dirty threshold, so the genuinely incremental path (partial
// retract + visit) carries every resolve.
func TestIncrementalLargeTreePartialDirty(t *testing.T) {
	ctx := context.Background()
	cold := solver.MustLookup(solver.SingleGen)
	rng := rand.New(rand.NewSource(4242))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 200, MaxArity: 3, MaxDist: 5, MaxReq: 9}, true)
	s, err := New(in, solver.SingleGen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for step := 0; step < 60; step++ {
		if step > 0 {
			// No capacity or structural mutations: those force a full
			// pass and would hide incremental bugs.
			var m Mutation
			for {
				m = randomMutation(rng, s.Instance(), false)
				if m.Op != OpSetCapacity {
					break
				}
			}
			if err := s.Apply([]Mutation{m}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		snap := s.Instance()
		got, gerr := s.Resolve(ctx)
		want, werr := cold.Solve(ctx, solver.Request{Instance: snap})
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("step %d: delta err %v, cold err %v", step, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		reportsEqual(t, "large", got, want)
	}
}

// TestIncrementalChurnMatchesPlanDelta replays a mutation sequence and
// pins the incremental churn to multiple.PlanDelta over consecutive
// solutions.
func TestIncrementalChurnMatchesPlanDelta(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 10, MaxArity: 3, MaxDist: 4, MaxReq: 9}, true)
	s, err := New(in, solver.SingleGen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prev := &core.Solution{}
	for step := 0; step < 30; step++ {
		if step > 0 {
			if err := s.Apply([]Mutation{randomMutation(rng, s.Instance(), true)}); err != nil {
				t.Fatal(err)
			}
		}
		snap := s.Instance()
		rep, err := s.Resolve(ctx)
		if err != nil {
			continue // infeasible step; churn only defined on success
		}
		churnEqual(t, "step", rep.Churn, multiple.PlanDelta(snap.Tree, prev, rep.Solution))
		prev = rep.Solution
	}
}

// TestWarmFallbackSession pins the full-warm fallback path (an engine
// without incremental or delta support) against cold solves and
// PlanDelta churn.
func TestWarmFallbackSession(t *testing.T) {
	ctx := context.Background()
	cold := solver.MustLookup(solver.MultipleGreedy)
	rng := rand.New(rand.NewSource(5))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 8, MaxArity: 3, MaxDist: 4, MaxReq: 9}, true)
	s, err := New(in, solver.MultipleGreedy)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	prev := &core.Solution{}
	for step := 0; step < 15; step++ {
		if step > 0 {
			if err := s.Apply([]Mutation{randomMutation(rng, s.Instance(), true)}); err != nil {
				t.Fatal(err)
			}
		}
		snap := s.Instance()
		got, gerr := s.Resolve(ctx)
		want, werr := cold.Solve(ctx, solver.Request{Instance: snap})
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("step %d: delta err %v, cold err %v", step, gerr, werr)
		}
		if gerr != nil {
			continue
		}
		reportsEqual(t, "warm", got, want)
		churnEqual(t, "warm", got.Churn, multiple.PlanDelta(snap.Tree, prev, got.Solution))
		prev = got.Solution
	}
}

// TestReplanSessionFailures exercises the delta-engine path: failed
// servers leave the placement, recovery readmits them, churn is
// engine-reported.
func TestReplanSessionFailures(t *testing.T) {
	ctx := context.Background()
	in := smallInstance(t)
	s, err := New(in, solver.MultipleReplan)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Churn == nil || len(rep.Churn.Added) != rep.Solution.NumReplicas() {
		t.Fatalf("first resolve churn %+v", rep.Churn)
	}

	down := rep.Solution.Replicas[0]
	if err := s.Apply([]Mutation{{Op: OpFailServer, Node: down}}); err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if slices.Contains(rep2.Solution.Replicas, down) {
		t.Fatalf("failed server %d still hosts a replica", down)
	}
	if err := core.Verify(s.Instance(), core.Multiple, rep2.Solution); err != nil {
		t.Fatalf("post-failure placement infeasible: %v", err)
	}

	// Recovery via SetFailed(nil): the old site may return.
	if err := s.SetFailed(nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Failed(); len(got) != 0 {
		t.Fatalf("failed set not cleared: %v", got)
	}
	if _, err := s.Resolve(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSessionRejectsInvalidMutations pins the typed validation
// failures.
func TestSessionRejectsInvalidMutations(t *testing.T) {
	in := smallInstance(t)
	s, err := New(in, solver.SingleGen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := []Mutation{
		{Op: OpSetRequest, Node: 0, Requests: 5},           // root is not a client
		{Op: OpSetRequest, Node: 99, Requests: 5},          // unknown node
		{Op: OpSetEdgeLength, Node: 0, Dist: 1},            // root has no parent edge
		{Op: OpAddClient, Parent: 3, Dist: 1, Requests: 1}, // parent is a client
		{Op: OpSetCapacity, W: 0},                          // capacity must be positive
		{Op: OpFailServer, Node: 1},                        // single-gen is not delta-capable
		{Op: "warp", Node: 1},                              // unknown op
	}
	for _, m := range bad {
		if err := s.Apply([]Mutation{m}); err == nil {
			t.Errorf("mutation %+v accepted", m)
		}
	}
	// The session must still resolve after the rejected batch.
	if _, err := s.Resolve(context.Background()); err != nil {
		t.Fatalf("session broken after rejected mutations: %v", err)
	}
}

// TestSessionInfeasibleThenRepaired pins that a failed resolve keeps
// the session usable and classified, and a repairing mutation heals
// it.
func TestSessionInfeasibleThenRepaired(t *testing.T) {
	ctx := context.Background()
	in := smallInstance(t)
	s, err := New(in, solver.SingleGen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Resolve(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply([]Mutation{{Op: OpSetCapacity, W: 2}}); err != nil { // max request is 5
		t.Fatal(err)
	}
	_, err = s.Resolve(ctx)
	if !errors.Is(err, solver.ErrInfeasible) {
		t.Fatalf("shrunken capacity: err = %v, want ErrInfeasible", err)
	}
	if _, ok := s.Report(); !ok {
		t.Fatal("failed resolve dropped the last good report")
	}
	if err := s.Apply([]Mutation{{Op: OpSetCapacity, W: 9}}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Resolve(ctx)
	if err != nil {
		t.Fatalf("repaired session still failing: %v", err)
	}
	want, err := solver.MustLookup(solver.SingleGen).Solve(ctx, solver.Request{Instance: s.Instance()})
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "repaired", rep, want)
}

// TestSessionConcurrentHammer drives one session from parallel
// mutators, resolvers and readers; under -race this pins the session's
// internal locking. Every successful resolve must carry a placement
// that verifies against SOME consistent snapshot — we assert internal
// consistency (assignments cover exactly the solution's replicas)
// rather than racing to capture the matching instance.
func TestSessionConcurrentHammer(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 12, MaxArity: 3, MaxDist: 4, MaxReq: 9}, true)
	s, err := New(in, solver.SingleGen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			grng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 20; i++ {
				var m Mutation
				for {
					m = randomMutation(grng, s.Instance(), false)
					if m.Op != OpSetCapacity { // keep every interleaving feasible
						break
					}
				}
				if err := s.Apply([]Mutation{m}); err != nil {
					errs <- fmt.Errorf("mutator %d: %v", g, err)
					return
				}
				if rep, err := s.Resolve(ctx); err != nil {
					errs <- fmt.Errorf("mutator %d: resolve: %v", g, err)
					return
				} else if rep.Solution == nil {
					errs <- fmt.Errorf("mutator %d: nil solution", g)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				s.Instance()
				s.Report()
				s.Failed()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Quiescent end state: one more resolve must match a cold solve.
	snap := s.Instance()
	got, err := s.Resolve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := solver.MustLookup(solver.SingleGen).Solve(ctx, solver.Request{Instance: snap})
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "quiescent", got, want)
}

// TestSessionIdentity pins the ID semantics: the canonical hash at
// creation, stable across mutations.
func TestSessionIdentity(t *testing.T) {
	in := smallInstance(t)
	s, err := New(in, solver.SingleGen)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ID() != in.CanonicalHash() {
		t.Fatal("session ID is not the creation hash")
	}
	if err := s.Apply([]Mutation{{Op: OpSetRequest, Node: 3, Requests: 1}}); err != nil {
		t.Fatal(err)
	}
	if s.ID() != in.CanonicalHash() {
		t.Fatal("session ID drifted with mutations")
	}
	if s.Instance().CanonicalHash() == in.CanonicalHash() {
		t.Fatal("snapshot hash did not change after mutation")
	}
	if s.Engine() != solver.SingleGen {
		t.Fatalf("engine name %q", s.Engine())
	}
}
