package delta

import (
	"fmt"
	"slices"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// This file is the incremental twin of single.Session.Gen
// (Algorithm 1). The warm session already made Gen allocation-free;
// this version additionally makes it *sublinear in the tree* for small
// mutations by memoizing the bottom-up computation per node and
// recomputing only the dirty root paths.
//
// Why memoization is sound: Gen is a pure bottom-up function. The
// "outgoing pending" couple of a node — the client bundles forwarded
// to its parent plus their remaining distance budget — depends only on
// the node's subtree (requests and edge lengths strictly below it; the
// node's own parent edge is consumed by the parent's visit). The
// placements made while visiting a node depend only on the children's
// pendings, W and dmax. So after a mutation, exactly the internal
// nodes on the root paths of the touched nodes have changed inputs:
// everything else may reuse its memo verbatim.
//
// Client bundles are kept as persistent per-client chain links
// (chainNext, indexed by client ID) instead of a per-solve arena.
// Merging pendings splices chains in O(1) exactly like the session
// arena; the difference is that a memoized chain survives across
// solves. Chain segments are always iterated bounded by [head, tail]
// — never "until -1" — because an upward merge rewrites the link
// *after* a segment's tail. Interior links of a live memo segment are
// never rewritten: a merge only writes the link after the tail of a
// whole child chain, and a live memo segment is contiguous inside
// every chain it feeds, so no enclosing chain can end strictly inside
// it.
//
// The retract/re-place discipline relies on two invariants proved by
// the path-dirtying rule (all ancestors of a touched node are dirty):
//
//  1. Every client in a dirty node's input chains was previously
//     served by a record at a dirty node — so retracting the dirty
//     records unassigns exactly the clients that will flow through
//     the re-visit, and each of them is re-placed (or legitimately
//     dropped, if its rate went to zero).
//  2. A replica site is only ever placed by its parent's visit (or
//     the root by its own), so each site has at most one live record
//     and a site is never double-placed.
//
// The lower bound is maintained the same way: capped[] (the per-anchor
// demand of core.LowerBound) is adjusted per mutation using a stored
// anchor per client, and the cheap O(n) inside/need postorder pass is
// redone each resolve.

// genPending mirrors single.genPending with persistent chain links.
type genPending struct {
	head, tail  tree.NodeID
	total, dist int64
}

// placeRec is one placement made while visiting a processing node: a
// replica site plus the chain segment of clients assigned to it.
type placeRec struct {
	site       tree.NodeID
	head, tail tree.NodeID
}

// genInc is the incremental Algorithm 1 state for one session.
type genInc struct {
	f       tree.Flat
	w, dmax int64

	// chainNext[c] links client c to the next client of the same
	// pending chain. Links are only meaningful inside a [head, tail]
	// segment of a live memo or placement record.
	chainNext []tree.NodeID

	// Memoized outgoing pending per internal node.
	mHead, mTail  []tree.NodeID
	mTotal, mDist []int64

	// Live placements: recs[j] are the records created by j's visit;
	// serverOf/amtOf are the per-client assignment, loads the per-site
	// load, isReplica the replica set.
	recs      [][]placeRec
	serverOf  []tree.NodeID
	amtOf     []int64
	loads     []int64
	isReplica []bool

	// Lower-bound state: anchor[c] is the highest server eligible for
	// client c (the capped[] bucket of core.LowerBound); inside/need
	// are the postorder pass tables, recomputed every resolve.
	anchor       []tree.NodeID
	capped       []int64
	inside, need []int64

	// postPos is the inverse permutation of f.Post, used to order a
	// dirty path bottom-up.
	postPos []int32

	// Dirty tracking between resolves. mark/dirty use dirtyEpoch;
	// structural forces reflatten + full rebuild, fullDirty a full
	// re-visit without rebuild.
	dirtyEpoch uint32
	mark       []uint32
	dirty      []tree.NodeID
	structural bool
	fullDirty  bool
	primed     bool

	// Per-resolve scratch: epoch stamps retraction state, so the
	// churn pass can compare old and new assignments without maps.
	epoch      uint32
	retMark    []uint32
	retServer  []tree.NodeID
	retAmt     []int64
	siteMark   []uint32
	placed     []tree.NodeID
	removedCnd []tree.NodeID
	ptmp       []genPending
	stack      []tree.NodeID

	// Resolve outputs (owned by genInc, cloned by the session).
	sol     core.Solution
	lb      int
	added   []tree.NodeID
	removed []tree.NodeID
	moved   int64
}

func growTo[T any](s []T, n int, fill T) []T {
	if len(s) >= n {
		return s
	}
	if cap(s) < n {
		ns := make([]T, len(s), n)
		copy(ns, s)
		s = ns
	}
	for len(s) < n {
		s = append(s, fill)
	}
	return s
}

// markAncestors dirties j and every ancestor. Marks are upward-closed
// (every call walks to the root), so hitting a marked node means the
// rest of the path is marked too.
func (g *genInc) markAncestors(j tree.NodeID) {
	for n := j; n != tree.None; n = g.f.Parents[n] {
		if g.mark[n] == g.dirtyEpoch {
			return
		}
		g.mark[n] = g.dirtyEpoch
		g.dirty = append(g.dirty, n)
	}
}

// pendingRebuild reports whether incremental bookkeeping is pointless
// because the next resolve rebuilds from the tree anyway.
func (g *genInc) pendingRebuild() bool { return g.structural || !g.primed }

// anchorOf walks client c toward the root while the distance budget
// lasts — exactly core.LowerBound's anchor walk.
func (g *genInc) anchorOf(c tree.NodeID) tree.NodeID {
	var d int64
	h := c
	for h != g.f.Root() {
		nd := tree.SatAdd(d, g.f.Dist(h))
		if nd > g.dmax {
			break
		}
		d = nd
		h = g.f.Parents[h]
	}
	return h
}

// setRequest applies a request-rate change to the flat twin and the
// bound state, dirtying the client's root path.
func (g *genInc) setRequest(c tree.NodeID, r int64) {
	if g.pendingRebuild() {
		return
	}
	old := g.f.Reqs[c]
	g.f.Reqs[c] = r
	g.capped[g.anchor[c]] += r - old
	g.markAncestors(g.f.Parents[c])
}

// setEdgeLen applies an edge-length change: clients below j may anchor
// differently, and j's parent re-decides whether j's pending can cross
// the edge.
func (g *genInc) setEdgeLen(j tree.NodeID, d int64) {
	if g.pendingRebuild() {
		return
	}
	g.f.EdgeLens[j] = d
	st := g.stack[:0]
	st = append(st, j)
	for len(st) > 0 {
		n := st[len(st)-1]
		st = st[:len(st)-1]
		if g.f.IsClient(n) {
			g.capped[g.anchor[n]] -= g.f.Reqs[n]
			g.anchor[n] = g.anchorOf(n)
			g.capped[g.anchor[n]] += g.f.Reqs[n]
			continue
		}
		for c := g.f.FirstChild[n]; c != tree.None; c = g.f.NextSibling[c] {
			st = append(st, c)
		}
	}
	g.stack = st
	g.markAncestors(g.f.Parents[j])
}

// setCapacity re-decides every placement (W is global) but keeps the
// structure and bound anchors.
func (g *genInc) setCapacity(w int64) {
	g.w = w
	g.fullDirty = true
}

// invalidate forces a structural rebuild at the next resolve (tree
// shape changed, or bookkeeping is stale for any other reason).
func (g *genInc) invalidate() { g.structural = true }

// resolve re-solves against t, which must reflect every mutation
// applied so far. On success sol/lb and the churn outputs
// (added/removed/moved) describe the new placement.
func (g *genInc) resolve(t *tree.Tree) error {
	if g.structural || !g.primed {
		g.rebuild(t)
	}
	n := g.f.Len()
	internals := n - g.f.NumClients()
	if !g.fullDirty && len(g.dirty)*2 > internals {
		g.fullDirty = true
	}

	// Same feasibility gate and error text as the cold path, checked
	// before any state is touched so a failed resolve leaves the
	// session consistent (the dirty set survives for the next try).
	for _, r := range g.f.Reqs {
		if r > g.w {
			return fmt.Errorf("single: some client exceeds W=%d; Single has no solution", g.w)
		}
	}

	g.epoch++
	g.placed = g.placed[:0]
	g.removedCnd = g.removedCnd[:0]
	g.added = g.added[:0]
	g.removed = g.removed[:0]
	g.moved = 0

	if g.fullDirty {
		for j := 0; j < n; j++ {
			g.retractNode(tree.NodeID(j))
		}
		for _, j := range g.f.Post {
			if !g.f.IsClient(j) {
				g.visit(j)
			}
		}
	} else {
		for _, j := range g.dirty {
			g.retractNode(j)
		}
		// Post[i] lists children before parents; dirty paths must be
		// re-visited bottom-up, so order the dirty set by postorder
		// position. The dirty set is a union of root paths, so
		// comparing depth would not be enough for siblings.
		slices.SortFunc(g.dirty, func(a, b tree.NodeID) int {
			return int(g.postPosOf(a)) - int(g.postPosOf(b))
		})
		for _, j := range g.dirty {
			g.visit(j)
		}
	}
	if g.mTotal[g.f.Root()] != 0 {
		return fmt.Errorf("delta: incremental solve left %d unassigned requests at the root", g.mTotal[g.f.Root()])
	}

	if err := g.check(); err != nil {
		// A bookkeeping invariant broke. Heal by rebuilding from
		// scratch next time, but surface the inconsistency: the
		// metamorphic suite pins that this never fires.
		g.structural = true
		return err
	}
	g.buildSolution()
	g.finishChurn()
	g.lb = g.lowerBound()

	g.dirty = g.dirty[:0]
	g.dirtyEpoch++
	g.fullDirty = false
	g.primed = true
	return nil
}

func (g *genInc) postPosOf(j tree.NodeID) int32 { return g.postPos[j] }

// rebuild reflattens t and resets every per-node table, keeping the
// old assignment state just long enough for the churn pass: the
// retract-all of the following fullDirty visit snapshots it.
func (g *genInc) rebuild(t *tree.Tree) {
	tree.FlattenInto(&g.f, t)
	n := g.f.Len()
	g.chainNext = growTo(g.chainNext, n, tree.None)
	g.mHead = growTo(g.mHead, n, tree.None)
	g.mTail = growTo(g.mTail, n, tree.None)
	g.mTotal = growTo(g.mTotal, n, 0)
	g.mDist = growTo(g.mDist, n, 0)
	g.recs = growTo(g.recs, n, nil)
	g.serverOf = growTo(g.serverOf, n, tree.None)
	g.amtOf = growTo(g.amtOf, n, 0)
	g.loads = growTo(g.loads, n, 0)
	g.isReplica = growTo(g.isReplica, n, false)
	g.anchor = growTo(g.anchor, n, tree.None)
	g.capped = growTo(g.capped, n, 0)
	g.inside = growTo(g.inside, n, 0)
	g.need = growTo(g.need, n, 0)
	g.mark = growTo(g.mark, n, 0)
	g.retMark = growTo(g.retMark, n, 0)
	g.retServer = growTo(g.retServer, n, tree.None)
	g.retAmt = growTo(g.retAmt, n, 0)
	g.siteMark = growTo(g.siteMark, n, 0)
	g.postPos = growTo(g.postPos, n, 0)
	for i, j := range g.f.Post {
		g.postPos[j] = int32(i)
	}
	// Rebuild the bound state from scratch: anchors depend on edges
	// only, capped on anchors and rates.
	clear(g.capped[:n])
	for j := 0; j < n; j++ {
		id := tree.NodeID(j)
		if !g.f.IsClient(id) {
			continue
		}
		g.anchor[id] = g.anchorOf(id)
		g.capped[g.anchor[id]] += g.f.Reqs[id]
	}
	g.structural = false
	g.fullDirty = true
}

// retractNode drops every placement record of processing node j,
// snapshotting the old assignments for the churn pass.
func (g *genInc) retractNode(j tree.NodeID) {
	rs := g.recs[j]
	if len(rs) == 0 {
		return
	}
	for _, rec := range rs {
		if g.isReplica[rec.site] {
			g.isReplica[rec.site] = false
			g.siteMark[rec.site] = g.epoch
			g.removedCnd = append(g.removedCnd, rec.site)
		}
		for c := rec.head; ; c = g.chainNext[c] {
			g.retMark[c] = g.epoch
			g.retServer[c] = g.serverOf[c]
			g.retAmt[c] = g.amtOf[c]
			g.loads[rec.site] -= g.amtOf[c]
			g.serverOf[c] = tree.None
			g.amtOf[c] = 0
			if c == rec.tail {
				break
			}
		}
	}
	g.recs[j] = rs[:0]
}

// visit re-runs Algorithm 1's decision at internal node j, mirroring
// single.Session.Gen step for step on memoized child pendings.
func (g *genInc) visit(j tree.NodeID) {
	f := &g.f
	pt := g.ptmp[:0]
	for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
		var p genPending
		if f.IsClient(c) {
			p = genPending{head: tree.None, tail: tree.None, total: f.Reqs[c], dist: g.dmax}
			if p.total > 0 {
				p.head, p.tail = c, c
			}
		} else {
			p = genPending{head: g.mHead[c], tail: g.mTail[c], total: g.mTotal[c], dist: g.mDist[c]}
		}
		pt = append(pt, p)
	}
	var sum int64
	ci := 0
	for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
		p := &pt[ci]
		// Step 1: requests that cannot travel the edge (c → j) are
		// served at c itself.
		if f.Dist(c) > p.dist && p.total > 0 {
			g.place(j, c, p)
		} else {
			p.dist -= f.Dist(c)
		}
		sum += p.total
		ci++
	}
	out := genPending{head: tree.None, tail: tree.None, dist: g.dmax}
	switch {
	case sum > g.w:
		// Step 2: too much to carry; a server on every child that
		// still has pending requests.
		ci = 0
		for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
			if pt[ci].total > 0 {
				g.place(j, c, &pt[ci])
			}
			ci++
		}
	case j == f.Root():
		// Step 3a: the root absorbs whatever remains. Splice all child
		// chains into one record at the root — assignment-identical to
		// the session's per-chain absorb.
		if sum > 0 {
			m := genPending{head: tree.None, tail: tree.None, dist: g.dmax}
			for i := range pt {
				p := &pt[i]
				if p.total == 0 {
					continue
				}
				if m.head == tree.None {
					m.head, m.tail = p.head, p.tail
				} else {
					g.chainNext[m.tail] = p.head
					m.tail = p.tail
				}
				m.total += p.total
			}
			g.place(j, j, &m)
		}
	default:
		// Step 3b: forward the merged pending set upwards; the
		// distance budget is the minimum over contributing children.
		for i := range pt {
			p := &pt[i]
			if p.total == 0 {
				continue
			}
			if out.head == tree.None {
				out.head, out.tail = p.head, p.tail
			} else {
				g.chainNext[out.tail] = p.head
				out.tail = p.tail
			}
			out.total += p.total
			if p.dist < out.dist {
				out.dist = p.dist
			}
		}
	}
	g.mHead[j], g.mTail[j], g.mTotal[j], g.mDist[j] = out.head, out.tail, out.total, out.dist
	g.ptmp = pt[:0]
}

// place records a replica at site serving all of p's chain, crediting
// the churn trackers, and empties p.
func (g *genInc) place(procNode, site tree.NodeID, p *genPending) {
	g.isReplica[site] = true
	if g.siteMark[site] != g.epoch {
		g.added = append(g.added, site)
	}
	g.recs[procNode] = append(g.recs[procNode], placeRec{site: site, head: p.head, tail: p.tail})
	for c := p.head; ; c = g.chainNext[c] {
		r := g.f.Reqs[c]
		g.serverOf[c] = site
		g.amtOf[c] = r
		g.loads[site] += r
		g.placed = append(g.placed, c)
		if c == p.tail {
			break
		}
	}
	p.head, p.tail = tree.None, tree.None
	p.total = 0
	p.dist = g.dmax
}

// check guards the incremental bookkeeping with the cheap O(n) subset
// of core.Verify: full coverage and capacity. Path/distance validity
// is an algorithm invariant pinned by the metamorphic suite against
// the (fully verified) cold path.
func (g *genInc) check() error {
	n := g.f.Len()
	for j := 0; j < n; j++ {
		id := tree.NodeID(j)
		if g.f.IsClient(id) {
			switch {
			case g.f.Reqs[j] > 0 && (g.serverOf[j] == tree.None || g.amtOf[j] != g.f.Reqs[j]):
				return fmt.Errorf("delta: incremental solve lost coverage of client %d (%d of %d served)",
					id, g.amtOf[j], g.f.Reqs[j])
			case g.f.Reqs[j] == 0 && g.serverOf[j] != tree.None:
				return fmt.Errorf("delta: incremental solve kept a stale assignment of idle client %d", id)
			}
		}
		if g.loads[j] > g.w {
			return fmt.Errorf("delta: incremental solve overloaded server %d (%d > W=%d)", id, g.loads[j], g.w)
		}
	}
	return nil
}

// buildSolution rebuilds the normalized solution from the per-client
// state: ascending ID scans yield sorted replicas and client-sorted
// assignments, exactly what Normalize produces for a Single placement.
func (g *genInc) buildSolution() {
	n := g.f.Len()
	g.sol.Replicas = g.sol.Replicas[:0]
	g.sol.Assignments = g.sol.Assignments[:0]
	for j := 0; j < n; j++ {
		if g.isReplica[j] {
			g.sol.Replicas = append(g.sol.Replicas, tree.NodeID(j))
		}
	}
	for j := 0; j < n; j++ {
		if g.serverOf[j] != tree.None {
			g.sol.Assignments = append(g.sol.Assignments, core.Assignment{
				Client: tree.NodeID(j), Server: g.serverOf[j], Amount: g.amtOf[j],
			})
		}
	}
}

// finishChurn closes the churn pass: moved volume per placed client
// against its retraction snapshot (multiple.PlanDelta semantics), and
// retracted sites that were not re-placed become removals.
func (g *genInc) finishChurn() {
	for _, c := range g.placed {
		newAmt := g.amtOf[c]
		var kept int64
		if g.retMark[c] == g.epoch && g.retServer[c] == g.serverOf[c] {
			kept = min(g.retAmt[c], newAmt)
		}
		if newAmt > kept {
			g.moved += newAmt - kept
		}
	}
	for _, s := range g.removedCnd {
		if !g.isReplica[s] {
			g.removed = append(g.removed, s)
		}
	}
	slices.Sort(g.added)
	slices.Sort(g.removed)
}

// lowerBound runs the O(n) inside/need postorder pass of
// core.LowerBound over the incrementally maintained capped[] table.
func (g *genInc) lowerBound() int {
	f := &g.f
	for _, j := range f.Post {
		sum := g.capped[j]
		var childNeed int64
		for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
			sum += g.inside[c]
			childNeed += g.need[c]
		}
		g.inside[j] = sum
		nn := core.CeilDiv(sum, g.w)
		if childNeed > nn {
			nn = childNeed
		}
		g.need[j] = nn
	}
	return int(g.need[f.Root()])
}
