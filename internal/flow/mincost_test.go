package flow

import (
	"math/rand"
	"testing"
)

func TestMinCostSimplePath(t *testing.T) {
	g := NewCostNetwork(3)
	g.AddEdge(0, 1, 5, 2)
	g.AddEdge(1, 2, 5, 3)
	f, c := g.MinCostMaxFlow(0, 2)
	if f != 5 || c != 25 {
		t.Fatalf("flow=%d cost=%d, want 5, 25", f, c)
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two parallel paths: cheap (cost 1, cap 3) and expensive
	// (cost 10, cap 10). Demand 5 → 3 cheap + 2 expensive = 23.
	g := NewCostNetwork(4)
	g.AddEdge(0, 1, 5, 0)
	g.AddEdge(1, 3, 3, 1)
	g.AddEdge(1, 2, 10, 0)
	g.AddEdge(2, 3, 10, 10)
	f, c := g.MinCostMaxFlow(0, 3)
	if f != 5 || c != 3*1+2*10 {
		t.Fatalf("flow=%d cost=%d, want 5, 23", f, c)
	}
}

func TestMinCostReroutesThroughResidual(t *testing.T) {
	// Classic case where a later augmentation must undo part of an
	// earlier one via the residual arc.
	g := NewCostNetwork(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 5)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(1, 3, 1, 5)
	g.AddEdge(2, 3, 1, 1)
	f, c := g.MinCostMaxFlow(0, 3)
	// Max flow 2: paths 0-1-2-3 (cost 3) + 0-2... cap(0,2)=1 and
	// 0-1-3: total best = (0-1-2-3)+(0-2-3 blocked by cap(2,3)=1)...
	// optimal: 0-1-2-3 (3) and 0-2-3 impossible (2-3 saturated), so
	// 0-2 + residual 2-1 + 1-3: 5+(-1)+5 = 9 → total 12? Or route
	// 0-1-3 (6) + 0-2-3 (6) = 12. Either way flow 2, cost 12.
	if f != 2 || c != 12 {
		t.Fatalf("flow=%d cost=%d, want 2, 12", f, c)
	}
}

func TestMinCostDisconnected(t *testing.T) {
	g := NewCostNetwork(2)
	f, c := g.MinCostMaxFlow(0, 1)
	if f != 0 || c != 0 {
		t.Fatalf("flow=%d cost=%d", f, c)
	}
}

func TestMinCostNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative cost")
		}
	}()
	g := NewCostNetwork(2)
	g.AddEdge(0, 1, 1, -1)
}

// TestMinCostMatchesMaxFlow: the flow value agrees with Dinic on
// random networks (cost structure cannot change the max flow).
func TestMinCostMatchesMaxFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		g1 := NewNetwork(n)
		g2 := NewCostNetwork(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(3) == 0 {
					c := 1 + rng.Int63n(9)
					w := rng.Int63n(5)
					g1.AddEdge(i, j, c)
					g2.AddEdge(i, j, c, w)
				}
			}
		}
		f1 := g1.MaxFlow(0, n-1)
		f2, _ := g2.MinCostMaxFlow(0, n-1)
		if f1 != f2 {
			t.Fatalf("trial %d: dinic %d != mincost %d", trial, f1, f2)
		}
	}
}
