package flow

import (
	"math/rand"
	"testing"
)

func TestSingleEdge(t *testing.T) {
	g := NewNetwork(2)
	a := g.AddEdge(0, 1, 7)
	if got := g.MaxFlow(0, 1); got != 7 {
		t.Fatalf("MaxFlow = %d, want 7", got)
	}
	if got := g.Flow(a, 7); got != 7 {
		t.Fatalf("Flow(arc) = %d, want 7", got)
	}
}

func TestSourceIsSink(t *testing.T) {
	g := NewNetwork(1)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Fatalf("MaxFlow(s,s) = %d, want 0", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewNetwork(3)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("MaxFlow = %d, want 0", got)
	}
}

func TestDiamond(t *testing.T) {
	// 0→1→3 and 0→2→3, plus a cross edge 1→2.
	g := NewNetwork(4)
	g.AddEdge(0, 1, 10)
	g.AddEdge(0, 2, 10)
	g.AddEdge(1, 3, 4)
	g.AddEdge(2, 3, 9)
	g.AddEdge(1, 2, 6)
	// Min cut: {1→3 (4), 2→3 (9)} limited also by 0→2 (10): flow =
	// 4 + min(9, 10 ∧ paths) = 4 + 9 = 13.
	if got := g.MaxFlow(0, 3); got != 13 {
		t.Fatalf("MaxFlow = %d, want 13", got)
	}
}

func TestClassicCLRS(t *testing.T) {
	// CLRS figure 26.1 network, max flow 23.
	g := NewNetwork(6)
	g.AddEdge(0, 1, 16)
	g.AddEdge(0, 2, 13)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 1, 4)
	g.AddEdge(1, 3, 12)
	g.AddEdge(3, 2, 9)
	g.AddEdge(2, 4, 14)
	g.AddEdge(4, 3, 7)
	g.AddEdge(3, 5, 20)
	g.AddEdge(4, 5, 4)
	if got := g.MaxFlow(0, 5); got != 23 {
		t.Fatalf("MaxFlow = %d, want 23", got)
	}
}

func TestBipartiteMatchingStyle(t *testing.T) {
	// 3 clients × 2 servers transportation: client demands 4,5,6 and
	// server capacities 8,8; client 0 reaches only server 0; client 2
	// only server 1; client 1 both.
	// Max routable = 4 + 6 + min(5, (8-4)+(8-6)) = 15 → all demand.
	g := NewNetwork(7) // 0 src, 1..3 clients, 4..5 servers, 6 sink
	g.AddEdge(0, 1, 4)
	g.AddEdge(0, 2, 5)
	g.AddEdge(0, 3, 6)
	g.AddEdge(1, 4, 4)
	g.AddEdge(2, 4, 5)
	g.AddEdge(2, 5, 5)
	g.AddEdge(3, 5, 6)
	g.AddEdge(4, 6, 8)
	g.AddEdge(5, 6, 8)
	if got := g.MaxFlow(0, 6); got != 15 {
		t.Fatalf("MaxFlow = %d, want 15", got)
	}
}

// TestFlowConservationRandom checks flow conservation and capacity
// bounds on random layered networks by reading back arc flows.
func TestFlowConservationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		type edge struct {
			u, v int
			c    int64
			arc  int
		}
		g := NewNetwork(n + 2)
		src, snk := n, n+1
		var edges []edge
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e := edge{src, i, 1 + rng.Int63n(20), 0}
				e.arc = g.AddEdge(e.u, e.v, e.c)
				edges = append(edges, e)
			}
			if rng.Intn(2) == 0 {
				e := edge{i, snk, 1 + rng.Int63n(20), 0}
				e.arc = g.AddEdge(e.u, e.v, e.c)
				edges = append(edges, e)
			}
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(4) == 0 {
					e := edge{i, j, 1 + rng.Int63n(20), 0}
					e.arc = g.AddEdge(e.u, e.v, e.c)
					edges = append(edges, e)
				}
			}
		}
		total := g.MaxFlow(src, snk)
		net := make([]int64, n+2)
		var out, in int64
		for _, e := range edges {
			f := g.Flow(e.arc, e.c)
			if f < 0 || f > e.c {
				t.Fatalf("trial %d: arc flow %d outside [0,%d]", trial, f, e.c)
			}
			net[e.u] -= f
			net[e.v] += f
			if e.u == src {
				out += f
			}
			if e.v == snk {
				in += f
			}
		}
		if out != total || in != total {
			t.Fatalf("trial %d: src out %d, sink in %d, reported %d", trial, out, in, total)
		}
		for i := 0; i < n; i++ {
			if net[i] != 0 {
				t.Fatalf("trial %d: node %d violates conservation by %d", trial, i, net[i])
			}
		}
	}
}
