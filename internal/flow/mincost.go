package flow

import (
	"container/heap"
	"errors"
	"math"
)

// CostNetwork is a directed network for min-cost max-flow, solved with
// successive shortest paths and Johnson potentials (Dijkstra), which
// requires non-negative arc costs.
type CostNetwork struct {
	n    int
	head []int32
	next []int32
	to   []int32
	cap  []int64
	cost []int64
}

// NewCostNetwork returns an empty cost network with n nodes.
func NewCostNetwork(n int) *CostNetwork {
	h := make([]int32, n)
	for i := range h {
		h[i] = -1
	}
	return &CostNetwork{n: n, head: h}
}

// AddEdge adds u→v with the given capacity and per-unit cost (≥ 0).
// Returns the arc index for Flow.
func (g *CostNetwork) AddEdge(u, v int, capacity, cost int64) int {
	if cost < 0 {
		panic("flow: negative arc cost")
	}
	idx := len(g.to)
	g.push(u, v, capacity, cost)
	g.push(v, u, 0, -cost)
	return idx
}

func (g *CostNetwork) push(u, v int, c, w int64) {
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, c)
	g.cost = append(g.cost, w)
	g.next = append(g.next, g.head[u])
	g.head[u] = int32(len(g.to) - 1)
}

// Flow returns the flow routed on the arc returned by AddEdge.
func (g *CostNetwork) Flow(arc int, origCap int64) int64 {
	return origCap - g.cap[arc]
}

// ErrNegativeCycle is unreachable with non-negative costs but kept for
// API clarity.
var ErrNegativeCycle = errors.New("flow: negative cycle")

type pqItem struct {
	node int32
	dist int64
}
type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	x := old[len(old)-1]
	*p = old[:len(old)-1]
	return x
}

// MinCostMaxFlow routes the maximum s→t flow at minimum total cost and
// returns (flow, cost).
func (g *CostNetwork) MinCostMaxFlow(s, t int) (int64, int64) {
	const inf = math.MaxInt64 / 4
	pot := make([]int64, g.n)
	dist := make([]int64, g.n)
	prevArc := make([]int32, g.n)
	var totalFlow, totalCost int64

	for {
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
		}
		dist[s] = 0
		h := pq{{int32(s), 0}}
		for len(h) > 0 {
			it := heap.Pop(&h).(pqItem)
			v := it.node
			if it.dist > dist[v] {
				continue
			}
			for e := g.head[v]; e != -1; e = g.next[e] {
				if g.cap[e] <= 0 {
					continue
				}
				u := g.to[e]
				nd := dist[v] + g.cost[e] + pot[v] - pot[u]
				if nd < dist[u] {
					dist[u] = nd
					prevArc[u] = e
					heap.Push(&h, pqItem{u, nd})
				}
			}
		}
		if dist[t] >= inf {
			return totalFlow, totalCost
		}
		for i := range pot {
			if dist[i] < inf {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the shortest path.
		push := int64(inf)
		for v := int32(t); v != int32(s); {
			e := prevArc[v]
			if g.cap[e] < push {
				push = g.cap[e]
			}
			v = g.to[e^1]
		}
		for v := int32(t); v != int32(s); {
			e := prevArc[v]
			g.cap[e] -= push
			g.cap[e^1] += push
			totalCost += push * g.cost[e]
			v = g.to[e^1]
		}
		totalFlow += push
	}
}
