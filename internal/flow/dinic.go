// Package flow implements Dinic's maximum-flow algorithm on small
// integer-capacity networks. It is the feasibility oracle of the exact
// Multiple-policy solver: given a fixed replica set, deciding whether
// all client requests can be routed to eligible servers is a
// transportation problem solved by max-flow.
package flow

// Network is a directed flow network under construction. Nodes are
// dense ints; add edges with AddEdge, then call MaxFlow. A Network can
// be recycled with Reset, which keeps the grown arc and traversal
// buffers — repeated builds of same-shape networks then allocate
// nothing.
type Network struct {
	n     int
	head  []int32 // head[v]: first arc index of v, -1 if none
	next  []int32 // next arc in v's list
	to    []int32
	cap   []int64
	level []int32
	iter  []int32
	queue []int32
}

// NewNetwork returns a network with n nodes and no arcs.
func NewNetwork(n int) *Network {
	g := &Network{}
	g.Reset(n)
	return g
}

// Reset reinitialises the network to n nodes and no arcs, reusing all
// previously grown buffers.
func (g *Network) Reset(n int) {
	g.n = n
	if cap(g.head) < n {
		g.head = make([]int32, n)
	}
	g.head = g.head[:n]
	for i := range g.head {
		g.head[i] = -1
	}
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.next = g.next[:0]
}

// AddEdge adds a directed edge u→v with the given capacity (and the
// reverse residual arc with capacity 0). It returns the arc index,
// which can be used with Flow to read how much was routed.
func (g *Network) AddEdge(u, v int, capacity int64) int {
	idx := len(g.to)
	g.push(u, v, capacity)
	g.push(v, u, 0)
	return idx
}

func (g *Network) push(u, v int, c int64) {
	g.to = append(g.to, int32(v))
	g.cap = append(g.cap, c)
	g.next = append(g.next, g.head[u])
	g.head[u] = int32(len(g.to) - 1)
}

// Flow returns the amount of flow routed on the arc returned by
// AddEdge, i.e. its original capacity minus its residual capacity.
// Must be called after MaxFlow; origCap is the capacity passed to
// AddEdge.
func (g *Network) Flow(arc int, origCap int64) int64 {
	return origCap - g.cap[arc]
}

// MaxFlow computes the maximum s→t flow.
func (g *Network) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	g.level = growInt32(g.level, g.n)
	g.iter = growInt32(g.iter, g.n)
	for g.bfs(s, t) {
		copy(g.iter, g.head)
		for {
			f := g.dfs(s, t, int64(1)<<62)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total
}

func (g *Network) bfs(s, t int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	q := g.queue[:0]
	g.level[s] = 0
	q = append(q, int32(s))
	for qi := 0; qi < len(q); qi++ {
		v := q[qi]
		for e := g.head[v]; e != -1; e = g.next[e] {
			if g.cap[e] > 0 && g.level[g.to[e]] < 0 {
				g.level[g.to[e]] = g.level[v] + 1
				q = append(q, g.to[e])
			}
		}
	}
	g.queue = q
	return g.level[t] >= 0
}

func (g *Network) dfs(v, t int, f int64) int64 {
	if v == t {
		return f
	}
	for ; g.iter[v] != -1; g.iter[v] = g.next[g.iter[v]] {
		e := g.iter[v]
		u := g.to[e]
		if g.cap[e] > 0 && g.level[u] == g.level[v]+1 {
			min := f
			if g.cap[e] < min {
				min = g.cap[e]
			}
			d := g.dfs(int(u), t, min)
			if d > 0 {
				g.cap[e] -= d
				g.cap[e^1] += d
				return d
			}
		}
	}
	return 0
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
