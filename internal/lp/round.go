package lp

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/tree"
)

// Placement rounds the LP relaxation into a feasible Multiple-policy
// solution: solve the relaxation, open every server in the fractional
// support (y_s > eps), prune replicas greedily — least fractional
// first — while the set stays feasible, then recover an integral
// assignment by max-flow (flow integrality guarantees one exists
// whenever the fractional assignment does, because pruning re-checks
// feasibility at the full capacity W).
//
// This is the swappable relaxation-based solver motivated by the
// ℓp-Box ADMM line of work: exact and LP-guided solvers answer the
// same contract, so consumers can trade optimality for speed by name.
func Placement(in *core.Instance) (*core.Solution, error) {
	const eps = 1e-7
	p, servers, nx, err := buildPlacement(in)
	if err != nil {
		return nil, err
	}
	if p == nil { // no requests: the empty solution is optimal
		sol := &core.Solution{}
		sol.Normalize()
		return sol, nil
	}
	x, _, err := Solve(p)
	if err != nil {
		return nil, fmt.Errorf("lp: placement relaxation: %w", err)
	}

	type frac struct {
		s tree.NodeID
		y float64
	}
	var support []frac
	for si, s := range servers {
		if x[nx+si] > eps {
			support = append(support, frac{s, x[nx+si]})
		}
	}
	// Prune least-fractional replicas first: a server the LP barely
	// opened is the one integral capacities most likely cover.
	sort.Slice(support, func(a, b int) bool {
		if support[a].y != support[b].y {
			return support[a].y < support[b].y
		}
		return support[a].s < support[b].s
	})
	R := make([]tree.NodeID, len(support))
	for i, f := range support {
		R[i] = f.s
	}
	if !exact.MultipleFeasible(in, R) {
		// Numerically truncated support (y_s ≤ eps dropped): fall back
		// to every candidate server and let pruning shrink it.
		R = append([]tree.NodeID{}, servers...)
		if !exact.MultipleFeasible(in, R) {
			return nil, fmt.Errorf("lp: instance infeasible under the Multiple policy")
		}
	}
	for i := 0; i < len(R); {
		trial := make([]tree.NodeID, 0, len(R)-1)
		trial = append(trial, R[:i]...)
		trial = append(trial, R[i+1:]...)
		if exact.MultipleFeasible(in, trial) {
			R = trial
		} else {
			i++
		}
	}
	sol, err := exact.MultipleAssignment(in, R)
	if err != nil {
		return nil, fmt.Errorf("lp: assignment on rounded support: %w", err)
	}
	return sol, nil
}
