// Package lp implements a small dense two-phase simplex solver and,
// on top of it, the fractional relaxation of the replica placement
// problem. The LP optimum rounds up to a lower bound on the integer
// optimum that is often stronger than the volume bound and
// incomparable with the combinatorial bound — experiment E11 measures
// all of them.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// RowKind classifies a constraint row.
type RowKind uint8

const (
	LE RowKind = iota // a·x ≤ b
	GE                // a·x ≥ b
	EQ                // a·x = b
)

// Problem is min C·x subject to the rows (A[i]·x <kind[i]> B[i]),
// x ≥ 0.
type Problem struct {
	C    []float64
	A    [][]float64
	B    []float64
	Kind []RowKind
}

// ErrInfeasible is returned when no feasible point exists.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const eps = 1e-9

// Workspace owns the dense working memory of the simplex: the
// normalized row copies, the tableau (one flat backing array), the
// basis and the result vector. A zero Workspace is ready to use;
// re-solving a same-shape problem on a warmed Workspace performs zero
// heap allocations. The solution slice returned by Workspace.Solve is
// owned by the workspace and valid until its next Solve. A Workspace
// is not safe for concurrent use.
type Workspace struct {
	a      []float64 // normalized rows, flat m×n
	b      []float64
	kind   []RowKind
	tabBuf []float64   // (m+1)×(total+1) tableau backing
	tab    [][]float64 // row headers into tabBuf
	basis  []int
	x      []float64
}

// Solve runs two-phase simplex with Bland's rule and returns an
// optimal solution and its objective value. It is the throwaway
// entry point: each call uses a fresh Workspace, so the returned
// slice is the caller's.
func Solve(p *Problem) ([]float64, float64, error) {
	var w Workspace
	return w.Solve(p)
}

// Solve is the warm entry point: identical arithmetic to the
// package-level Solve (bit-for-bit — the operations run in the same
// order on the same values), reusing the workspace's buffers.
func (w *Workspace) Solve(p *Problem) ([]float64, float64, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m || len(p.Kind) != m {
		return nil, 0, fmt.Errorf("lp: inconsistent problem dimensions")
	}
	for i := range p.A {
		if len(p.A[i]) != n {
			return nil, 0, fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(p.A[i]), n)
		}
	}

	// Normalise to b ≥ 0.
	w.a = growFloats(w.a, m*n)
	w.b = growFloats(w.b, m)
	if cap(w.kind) < m {
		w.kind = make([]RowKind, m)
	}
	w.kind = w.kind[:m]
	b, kind := w.b, w.kind
	for i := 0; i < m; i++ {
		row := w.a[i*n : (i+1)*n]
		copy(row, p.A[i])
		b[i] = p.B[i]
		kind[i] = p.Kind[i]
		if b[i] < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b[i] = -b[i]
			switch kind[i] {
			case LE:
				kind[i] = GE
			case GE:
				kind[i] = LE
			}
		}
	}

	// Column layout: n structural | slacks/surplus | artificials.
	extra := 0
	for i := 0; i < m; i++ {
		if kind[i] != EQ {
			extra++
		}
	}
	art := 0
	for i := 0; i < m; i++ {
		if kind[i] != LE {
			art++
		}
	}
	total := n + extra + art
	stride := total + 1
	w.tabBuf = growFloats(w.tabBuf, (m+1)*stride)
	clear(w.tabBuf)
	if cap(w.tab) < m+1 {
		w.tab = make([][]float64, m+1)
	}
	w.tab = w.tab[:m+1]
	tab := w.tab
	for i := range tab {
		tab[i] = w.tabBuf[i*stride : (i+1)*stride]
	}
	if cap(w.basis) < m {
		w.basis = make([]int, m)
	}
	w.basis = w.basis[:m]
	basis := w.basis
	se, ai := n, n+extra
	for i := 0; i < m; i++ {
		copy(tab[i], w.a[i*n:(i+1)*n])
		tab[i][total] = b[i]
		switch kind[i] {
		case LE:
			tab[i][se] = 1
			basis[i] = se
			se++
		case GE:
			tab[i][se] = -1
			se++
			tab[i][ai] = 1
			basis[i] = ai
			ai++
		case EQ:
			tab[i][ai] = 1
			basis[i] = ai
			ai++
		}
	}

	// Phase 1: minimise the sum of artificials.
	if art > 0 {
		obj := tab[m]
		for j := n + extra; j < total; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis.
		for i := 0; i < m; i++ {
			if basis[i] >= n+extra {
				for j := 0; j <= total; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		if err := iterate(tab, basis, total); err != nil {
			return nil, 0, err
		}
		if tab[m][total] < -eps {
			return nil, 0, ErrInfeasible
		}
		// Drive artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if basis[i] < n+extra {
				continue
			}
			for j := 0; j < n+extra; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j, total)
					break
				}
			}
		}
	}

	// Phase 2: restore the real objective.
	obj := tab[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.C[j]
	}
	// Block artificial columns.
	for i := 0; i < m; i++ {
		for j := n + extra; j < total; j++ {
			tab[i][j] = 0
		}
	}
	// Price out the basis.
	for i := 0; i < m; i++ {
		bj := basis[i]
		if bj < len(obj)-1 && math.Abs(obj[bj]) > eps {
			f := obj[bj]
			for j := 0; j <= total; j++ {
				obj[j] -= f * tab[i][j]
			}
		}
	}
	if err := iterate(tab, basis, total); err != nil {
		return nil, 0, err
	}

	w.x = growFloats(w.x, n)
	clear(w.x)
	x := w.x
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = tab[i][total]
		}
	}
	return x, -tab[m][total], nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// iterate runs simplex pivots (Bland's rule) until optimal.
func iterate(tab [][]float64, basis []int, total int) error {
	m := len(tab) - 1
	for iter := 0; iter < 50000; iter++ {
		// Entering column: smallest index with negative reduced cost.
		col := -1
		for j := 0; j < total; j++ {
			if tab[m][j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return nil
		}
		// Leaving row: min ratio, ties by smallest basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][col] > eps {
				r := tab[i][total] / tab[i][col]
				if r < best-eps || (r < best+eps && (row < 0 || basis[i] < basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		pivot(tab, basis, row, col, total)
	}
	return errors.New("lp: iteration limit exceeded")
}

func pivot(tab [][]float64, basis []int, row, col, total int) {
	pr := tab[row]
	pv := pr[col]
	for j := 0; j <= total; j++ {
		pr[j] /= pv
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if math.Abs(f) <= eps {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
