package lp

import (
	"fmt"
	"math"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// FractionalReplicas solves the LP relaxation of the Multiple-policy
// placement problem:
//
//	min  Σ_s y_s
//	s.t. Σ_{s ∈ elig(i)} x_{i,s} = r_i           (every client served)
//	     Σ_i x_{i,s} − W·y_s ≤ 0                 (capacity activation)
//	     y_s ≤ 1,  x, y ≥ 0
//
// The integer optimum buys whole replicas, so ⌈LP⌉ is a valid lower
// bound for Multiple (and hence for Single, whose optimum is never
// smaller). Returns the fractional objective.
func FractionalReplicas(in *core.Instance) (float64, error) {
	p, _, _, err := buildPlacement(in)
	if err != nil || p == nil {
		return 0, err
	}
	_, obj, err := Solve(p)
	if err != nil {
		return 0, fmt.Errorf("lp: placement relaxation: %w", err)
	}
	return obj, nil
}

// buildPlacement constructs the placement relaxation. It returns the
// problem, the candidate servers in variable order, and nx, the number
// of x (assignment-arc) variables preceding the y (server-activation)
// block. A nil problem means the instance has no requests.
func buildPlacement(in *core.Instance) (p *Problem, servers []tree.NodeID, nx int, err error) {
	if err := in.Validate(); err != nil {
		return nil, nil, 0, err
	}
	t := in.Tree

	// Index clients and candidate servers.
	var clients []tree.NodeID
	elig := make(map[tree.NodeID][]tree.NodeID)
	serverIdx := make(map[tree.NodeID]int)
	for _, c := range t.Clients() {
		if t.Requests(c) == 0 {
			continue
		}
		clients = append(clients, c)
		for _, s := range t.EligibleServers(c, in.DMax) {
			elig[c] = append(elig[c], s)
			if _, ok := serverIdx[s]; !ok {
				serverIdx[s] = len(servers)
				servers = append(servers, s)
			}
		}
	}
	if len(clients) == 0 {
		return nil, nil, 0, nil
	}

	// Variable layout: x arcs first, then y per server.
	type arc struct {
		ci, si int
	}
	var arcs []arc
	arcOf := make(map[[2]int]int)
	for ci, c := range clients {
		for _, s := range elig[c] {
			a := arc{ci, serverIdx[s]}
			arcOf[[2]int{a.ci, a.si}] = len(arcs)
			arcs = append(arcs, a)
		}
	}
	nx = len(arcs)
	ny := len(servers)
	n := nx + ny

	p = &Problem{C: make([]float64, n)}
	for k := 0; k < ny; k++ {
		p.C[nx+k] = 1
	}
	addRow := func(row []float64, b float64, k RowKind) {
		p.A = append(p.A, row)
		p.B = append(p.B, b)
		p.Kind = append(p.Kind, k)
	}
	// Coverage rows.
	for ci, c := range clients {
		row := make([]float64, n)
		for _, s := range elig[c] {
			row[arcOf[[2]int{ci, serverIdx[s]}]] = 1
		}
		addRow(row, float64(t.Requests(c)), EQ)
	}
	// Capacity rows.
	for si := range servers {
		row := make([]float64, n)
		for k, a := range arcs {
			if a.si == si {
				row[k] = 1
			}
		}
		row[nx+si] = -float64(in.W)
		addRow(row, 0, LE)
	}
	// y ≤ 1 rows.
	for si := range servers {
		row := make([]float64, n)
		row[nx+si] = 1
		addRow(row, 1, LE)
	}
	return p, servers, nx, nil
}

// LowerBound returns ⌈FractionalReplicas⌉, a valid lower bound on the
// optimal replica count under either policy (0 on instances with no
// requests). An infeasible LP means the instance itself is infeasible
// under Multiple.
func LowerBound(in *core.Instance) (int, error) {
	obj, err := FractionalReplicas(in)
	if err != nil {
		return 0, err
	}
	return int(math.Ceil(obj - 1e-7)), nil
}
