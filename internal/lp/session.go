package lp

import (
	"fmt"
	"slices"

	"replicatree/internal/core"
	"replicatree/internal/flow"
	"replicatree/internal/tree"
)

// Session is the reusable warm-path state of the LP-rounding solver.
// Reset ingests an instance once — building the placement relaxation
// and the client/eligible-server CSR is allowed to allocate there —
// and Placement then re-solves with zero heap allocations: the simplex
// runs in a Workspace, the support/prune buffers are reused, and the
// max-flow feasibility oracle rebuilds its network inside a recycled
// flow.Network.
//
// Warm Placement returns exactly the solution of the package-level
// Placement. The two non-obvious equivalences: the support sort uses
// the strict total order (y, server), so the unstable cold sort and
// the warm sort agree; and the flow network rebuild lays out each
// node's adjacency exactly as exact.buildFlow does (per server, the
// sink arc is pushed last and therefore scanned first), while BFS
// levels are insertion-order independent, so Dinic routes identical
// arc flows. The returned *core.Solution is owned by the session and
// valid until the next solve. A Session is not safe for concurrent
// use.
type Session struct {
	in   *core.Instance
	flat *tree.Flat

	// Ingest products.
	prob      *Problem
	servers   []tree.NodeID
	nx        int
	empty     bool          // instance has no requests
	clients   []tree.NodeID // clients with r > 0, increasing ID
	reqs      []int64       // per clients index
	eligStart []int32       // CSR over clients into eligSrv
	eligSrv   []tree.NodeID // eligible servers, path order (client first)

	// Per-solve working memory.
	ws         Workspace
	support    []frac
	R, trial   []tree.NodeID
	serverNode []int32 // node-indexed flow node of a server, -1 absent
	rdedup     []tree.NodeID
	net        flow.Network
	arcs       []sessArc
	caps       []int64
	sol        core.Solution
}

type frac struct {
	s tree.NodeID
	y float64
}

type sessArc struct {
	client, server tree.NodeID
	arc            int
}

// Reset ingests the instance: it builds the LP relaxation and the
// eligibility CSR. Unlike the per-solve path it may allocate. The
// instance must be valid (buildPlacement re-validates, matching the
// cold path's error).
func (s *Session) Reset(in *core.Instance, f *tree.Flat) error {
	p, servers, nx, err := buildPlacement(in)
	if err != nil {
		return err
	}
	s.in = in
	s.flat = f
	s.prob = p
	s.servers = servers
	s.nx = nx
	s.empty = p == nil

	s.clients = s.clients[:0]
	s.reqs = s.reqs[:0]
	s.eligStart = s.eligStart[:0]
	s.eligSrv = s.eligSrv[:0]
	n := f.Len()
	for j := 0; j < n; j++ {
		id := tree.NodeID(j)
		if !f.IsClient(id) || f.Reqs[j] == 0 {
			continue
		}
		s.clients = append(s.clients, id)
		s.reqs = append(s.reqs, f.Reqs[j])
		s.eligStart = append(s.eligStart, int32(len(s.eligSrv)))
		var d int64
		v := id
		for {
			if d > in.DMax {
				break
			}
			s.eligSrv = append(s.eligSrv, v)
			if v == f.Root() {
				break
			}
			d = tree.SatAdd(d, f.EdgeLens[v])
			v = f.Parents[v]
		}
	}
	s.eligStart = append(s.eligStart, int32(len(s.eligSrv)))

	if cap(s.serverNode) < n {
		s.serverNode = make([]int32, n)
	}
	s.serverNode = s.serverNode[:n]
	for i := range s.serverNode {
		s.serverNode[i] = -1
	}
	return nil
}

// Placement is the warm-path Placement.
func (s *Session) Placement() (*core.Solution, error) {
	const eps = 1e-7
	s.sol.Replicas = s.sol.Replicas[:0]
	s.sol.Assignments = s.sol.Assignments[:0]
	if s.empty {
		s.sol.Normalize()
		return &s.sol, nil
	}
	x, _, err := s.ws.Solve(s.prob)
	if err != nil {
		return nil, fmt.Errorf("lp: placement relaxation: %w", err)
	}
	s.support = s.support[:0]
	for si, srv := range s.servers {
		if x[s.nx+si] > eps {
			s.support = append(s.support, frac{srv, x[s.nx+si]})
		}
	}
	// Prune least-fractional replicas first; (y, server) is a strict
	// total order, so this agrees with the cold path's unstable sort.
	slices.SortFunc(s.support, func(a, b frac) int {
		switch {
		case a.y < b.y:
			return -1
		case a.y > b.y:
			return 1
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	})
	s.R = s.R[:0]
	for _, fr := range s.support {
		s.R = append(s.R, fr.s)
	}
	if !s.feasible(s.R) {
		// Numerically truncated support: fall back to every candidate
		// server and let pruning shrink it.
		s.R = append(s.R[:0], s.servers...)
		if !s.feasible(s.R) {
			return nil, fmt.Errorf("lp: instance infeasible under the Multiple policy")
		}
	}
	for i := 0; i < len(s.R); {
		s.trial = append(s.trial[:0], s.R[:i]...)
		s.trial = append(s.trial, s.R[i+1:]...)
		if s.feasible(s.trial) {
			s.R = append(s.R[:0], s.trial...)
		} else {
			i++
		}
	}
	return s.assignment()
}

// buildFlow rebuilds the transportation network of exact.buildFlow
// for replica set R inside the session's recycled network: node 0 =
// source, 1 = sink, clients at 2.., then the distinct servers of R in
// first-occurrence order.
func (s *Session) buildFlow(R []tree.NodeID) (total int64) {
	nc := len(s.clients)
	s.rdedup = s.rdedup[:0]
	for _, srv := range R {
		if s.serverNode[srv] < 0 {
			s.serverNode[srv] = int32(2 + nc + len(s.rdedup))
			s.rdedup = append(s.rdedup, srv)
		}
	}
	s.net.Reset(2 + nc + len(s.rdedup))
	s.arcs = s.arcs[:0]
	s.caps = s.caps[:0]
	for ci, c := range s.clients {
		r := s.reqs[ci]
		total += r
		s.net.AddEdge(0, 2+ci, r)
		for k := s.eligStart[ci]; k < s.eligStart[ci+1]; k++ {
			srv := s.eligSrv[k]
			sn := s.serverNode[srv]
			if sn < 0 {
				continue
			}
			arc := s.net.AddEdge(2+ci, int(sn), r)
			s.arcs = append(s.arcs, sessArc{client: c, server: srv, arc: arc})
			s.caps = append(s.caps, r)
		}
	}
	for _, srv := range s.rdedup {
		s.net.AddEdge(int(s.serverNode[srv]), 1, s.in.W)
	}
	return total
}

// clearServerNodes undoes the buildFlow marking.
func (s *Session) clearServerNodes() {
	for _, srv := range s.rdedup {
		s.serverNode[srv] = -1
	}
}

// feasible is the warm exact.MultipleFeasible: can R serve all
// requests under the Multiple policy?
func (s *Session) feasible(R []tree.NodeID) bool {
	total := s.buildFlow(R)
	defer s.clearServerNodes()
	if total == 0 {
		return true
	}
	return s.net.MaxFlow(0, 1) == total
}

// assignment is the warm exact.MultipleAssignment on s.R.
func (s *Session) assignment() (*core.Solution, error) {
	total := s.buildFlow(s.R)
	defer s.clearServerNodes()
	if got := s.net.MaxFlow(0, 1); got != total {
		return nil, fmt.Errorf("lp: assignment on rounded support: %w",
			fmt.Errorf("exact: replica set %v infeasible (flow %d of %d)", s.R, got, total))
	}
	for _, r := range s.R {
		s.sol.AddReplica(r)
	}
	for i, a := range s.arcs {
		if amt := s.net.Flow(a.arc, s.caps[i]); amt > 0 {
			s.sol.Assign(a.client, a.server, amt)
		}
	}
	s.sol.Normalize()
	return &s.sol, nil
}
