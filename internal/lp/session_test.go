package lp

import (
	"math/rand"
	"slices"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func sessionSolEqual(a, b *core.Solution) bool {
	return slices.Equal(a.Replicas, b.Replicas) && slices.Equal(a.Assignments, b.Assignments)
}

// TestWorkspaceSolveMatchesSolve pins that the workspace simplex and
// the throwaway simplex agree bit-for-bit.
func TestWorkspaceSolveMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var w Workspace
	for i := 0; i < 40; i++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals: 1 + rng.Intn(10),
			MaxArity:  2 + rng.Intn(2),
		}, rng.Intn(2) == 0)
		p, _, _, err := buildPlacement(in)
		if err != nil || p == nil {
			continue
		}
		xCold, objCold, errCold := Solve(p)
		xWarm, objWarm, errWarm := w.Solve(p)
		if (errCold == nil) != (errWarm == nil) {
			t.Fatalf("instance %d: cold err %v, warm err %v", i, errCold, errWarm)
		}
		if errCold != nil {
			continue
		}
		if objCold != objWarm {
			t.Fatalf("instance %d: objective %v != %v", i, objCold, objWarm)
		}
		if !slices.Equal(xCold, xWarm) {
			t.Fatalf("instance %d: solutions differ", i)
		}
	}
}

// TestLPSessionMatchesCold pins the warm Placement contract.
func TestLPSessionMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	var s Session
	var f tree.Flat
	for i := 0; i < 40; i++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(8),
			MaxArity:     2 + rng.Intn(2),
			MaxDist:      3,
			MaxReq:       6,
			ExtraClients: rng.Intn(3),
		}, rng.Intn(2) == 0)
		tree.FlattenInto(&f, in.Tree)
		if err := s.Reset(in, &f); err != nil {
			t.Fatalf("instance %d: ingest: %v", i, err)
		}
		for round := 0; round < 2; round++ {
			cold, coldErr := Placement(in)
			warm, warmErr := s.Placement()
			if (coldErr == nil) != (warmErr == nil) {
				t.Fatalf("instance %d: cold err %v, warm err %v", i, coldErr, warmErr)
			}
			if coldErr == nil && !sessionSolEqual(cold, warm) {
				t.Fatalf("instance %d:\n cold %v\n warm %v", i, cold, warm)
			}
		}
	}
}

// TestLPSessionAllocFree pins the tentpole invariant: warm Placement
// allocates nothing.
func TestLPSessionAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 10, MaxArity: 3}, true)
	f := tree.Flatten(in.Tree)
	var s Session
	if err := s.Reset(in, f); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Placement(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := s.Placement(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm Placement allocated %.1f times per run", avg)
	}
}
