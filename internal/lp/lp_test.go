package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimplexBasicLE(t *testing.T) {
	// max x+y s.t. x+2y ≤ 4, 3x+y ≤ 6  → min −x−y; optimum at
	// (8/5, 6/5), objective 14/5.
	p := &Problem{
		C:    []float64{-1, -1},
		A:    [][]float64{{1, 2}, {3, 1}},
		B:    []float64{4, 6},
		Kind: []RowKind{LE, LE},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, -2.8) {
		t.Fatalf("obj = %v, want -2.8", obj)
	}
	if !almost(x[0], 1.6) || !almost(x[1], 1.2) {
		t.Fatalf("x = %v", x)
	}
}

func TestSimplexEquality(t *testing.T) {
	// min x+y s.t. x+y = 3, x ≤ 2 → obj 3.
	p := &Problem{
		C:    []float64{1, 1},
		A:    [][]float64{{1, 1}, {1, 0}},
		B:    []float64{3, 2},
		Kind: []RowKind{EQ, LE},
	}
	_, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, 3) {
		t.Fatalf("obj = %v, want 3", obj)
	}
}

func TestSimplexGE(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 4, x ≤ 3 → y ≥ 1; optimum x=3, y=1, obj 9.
	p := &Problem{
		C:    []float64{2, 3},
		A:    [][]float64{{1, 1}, {1, 0}},
		B:    []float64{4, 3},
		Kind: []RowKind{GE, LE},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, 9) || !almost(x[0], 3) || !almost(x[1], 1) {
		t.Fatalf("x=%v obj=%v", x, obj)
	}
}

func TestSimplexNegativeB(t *testing.T) {
	// min x s.t. −x ≤ −2 (i.e. x ≥ 2) → obj 2.
	p := &Problem{
		C:    []float64{1},
		A:    [][]float64{{-1}},
		B:    []float64{-2},
		Kind: []RowKind{LE},
	}
	_, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, 2) {
		t.Fatalf("obj = %v, want 2", obj)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	p := &Problem{
		C:    []float64{1},
		A:    [][]float64{{1}, {1}},
		B:    []float64{1, 2},
		Kind: []RowKind{LE, GE},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min −x with x free upward: −x → −∞.
	p := &Problem{
		C:    []float64{-1},
		A:    [][]float64{{0}},
		B:    []float64{1},
		Kind: []RowKind{LE},
	}
	if _, _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

func TestSimplexDimensionErrors(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Kind: []RowKind{LE}}
	if _, _, err := Solve(p); err == nil {
		t.Fatal("row width mismatch should fail")
	}
	p2 := &Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Kind: []RowKind{LE}}
	if _, _, err := Solve(p2); err == nil {
		t.Fatal("b length mismatch should fail")
	}
}

func TestFractionalReplicasToy(t *testing.T) {
	// Two clients of 5 under one hub, W = 10, NoD: one replica
	// fractionally (and integrally) suffices: LP = 1.
	b := tree.NewBuilder()
	root := b.Root("r")
	hub := b.Internal(root, 1, "hub")
	b.Client(hub, 1, 5, "c1")
	b.Client(hub, 1, 5, "c2")
	in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: core.NoDistance}
	obj, err := FractionalReplicas(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(obj, 1) {
		t.Fatalf("LP = %v, want 1", obj)
	}
	lb, err := LowerBound(in)
	if err != nil || lb != 1 {
		t.Fatalf("LowerBound = %d, %v", lb, err)
	}
}

func TestFractionalIsBetweenVolumeAndOpt(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 80; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		lb, err := LowerBound(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := exact.SolveMultiple(in, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lb > opt.NumReplicas() {
			t.Fatalf("trial %d: LP bound %d exceeds optimum %d\n%s W=%d dmax=%d",
				trial, lb, opt.NumReplicas(), in.Tree, in.W, in.DMax)
		}
		if lb < core.VolumeLowerBound(in) {
			t.Fatalf("trial %d: LP bound %d below volume bound %d", trial, lb, core.VolumeLowerBound(in))
		}
	}
}

func TestFractionalDetectsInfeasible(t *testing.T) {
	// dmax = 0 and a client bigger than W: nothing can serve it.
	b := tree.NewBuilder()
	root := b.Root("r")
	b.Client(root, 1, 12, "big")
	b.Client(root, 1, 1, "small")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: 0}
	if _, err := FractionalReplicas(in); err == nil {
		t.Fatal("expected infeasible relaxation")
	}
}

func TestFractionalZeroRequests(t *testing.T) {
	b := tree.NewBuilder()
	root := b.Root("r")
	b.Client(root, 1, 0, "idle")
	b.Client(root, 1, 0, "idle2")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: core.NoDistance}
	obj, err := FractionalReplicas(in)
	if err != nil || obj != 0 {
		t.Fatalf("obj=%v err=%v", obj, err)
	}
}
