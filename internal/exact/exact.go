// Package exact provides optimal (exponential-time) solvers for both
// policies. The paper compares its algorithms against the true optimum
// analytically; this package materialises that optimum on small
// instances, powering the approximation-ratio experiments and the
// optimality proofs-by-measurement of the test suite.
//
// SolveSingle runs a branch-and-bound over client→server assignments;
// SolveMultiple enumerates replica sets of increasing size with a
// max-flow feasibility oracle and monotone pruning. Both are intended
// for instances with up to a few dozen nodes.
package exact

import (
	"errors"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// ErrBudget is returned when a solver exceeds its work budget; the
// instance is too large for exact solving.
var ErrBudget = errors.New("exact: work budget exceeded")

// Options tunes the exact solvers.
type Options struct {
	// Budget bounds the number of elementary search steps (node
	// expansions / feasibility checks). 0 means DefaultBudget.
	Budget int64
	// Work, when non-nil, receives the number of elementary steps the
	// solve actually performed — the currency of solver.Report.Work.
	Work *int64
}

// DefaultBudget is the default work budget.
const DefaultBudget int64 = 50_000_000

func (o Options) budget() int64 {
	if o.Budget <= 0 {
		return DefaultBudget
	}
	return o.Budget
}

// record reports the steps consumed out of the initial budget, given
// the remaining budget at the end of the search (which over-budget
// searches may have driven slightly negative).
func (o Options) record(remaining int64) {
	if o.Work == nil {
		return
	}
	consumed := o.budget() - remaining
	if consumed < 0 {
		consumed = 0
	}
	*o.Work = consumed
}

// candidates returns the nodes that can serve at least one client with
// positive requests, in a deterministic order sorted by decreasing
// coverage (number of servable request units), which tends to find
// feasible sets early.
func candidates(in *core.Instance) []tree.NodeID {
	t := in.Tree
	cover := make(map[tree.NodeID]int64)
	for _, i := range t.Clients() {
		r := t.Requests(i)
		if r == 0 {
			continue
		}
		for _, s := range t.EligibleServers(i, in.DMax) {
			cover[s] += r
		}
	}
	out := make([]tree.NodeID, 0, len(cover))
	for s := range cover {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		if cover[out[a]] != cover[out[b]] {
			return cover[out[a]] > cover[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}

// eligible returns, for each client with requests, its eligible server
// list (path within dmax).
func eligible(in *core.Instance) (clients []tree.NodeID, elig map[tree.NodeID][]tree.NodeID) {
	t := in.Tree
	elig = make(map[tree.NodeID][]tree.NodeID)
	for _, i := range t.Clients() {
		if t.Requests(i) == 0 {
			continue
		}
		clients = append(clients, i)
		elig[i] = t.EligibleServers(i, in.DMax)
	}
	return clients, elig
}
