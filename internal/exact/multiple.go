package exact

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/flow"
	"replicatree/internal/tree"
)

// SolveMultiple returns an optimal solution to the Multiple problem.
// Unlike the polynomial Algorithm 3, it handles arbitrary arity,
// arbitrary distance bounds and clients with ri > W (the NP-hard
// regime of Theorem 5). It enumerates replica sets of increasing size
// with a max-flow feasibility oracle, pruning subtrees of the search
// whose optimistic completion is already infeasible (feasibility is
// monotone in the replica set).
func SolveMultiple(in *core.Instance, opt Options) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cands := candidates(in)
	if len(cands) == 0 {
		return &core.Solution{}, nil
	}
	budget := opt.budget()
	defer func() { opt.record(budget) }()

	// The full candidate set is the most powerful replica set; if even
	// it cannot serve everything, the instance is infeasible.
	if ok, _ := multipleFeasible(in, cands, &budget); !ok {
		if budget <= 0 {
			return nil, ErrBudget
		}
		return nil, fmt.Errorf("exact: Multiple instance is infeasible")
	}

	lb := core.LowerBound(in)
	if lb < 1 {
		lb = 1
	}
	for k := lb; k <= len(cands); k++ {
		chosen := make([]tree.NodeID, 0, k)
		found, err := chooseK(in, cands, chosen, 0, k, &budget)
		if err != nil {
			return nil, err
		}
		if found != nil {
			sol, err := MultipleAssignment(in, found)
			if err != nil {
				return nil, err
			}
			if err := core.Verify(in, core.Multiple, sol); err != nil {
				return nil, fmt.Errorf("exact: multiple solver produced infeasible solution: %w", err)
			}
			return sol, nil
		}
	}
	return nil, fmt.Errorf("exact: no Multiple solution found (unreachable)")
}

// chooseK searches for a feasible replica set of exactly k nodes from
// cands[from:] added to chosen. It returns the feasible set or nil.
func chooseK(in *core.Instance, cands []tree.NodeID, chosen []tree.NodeID, from, k int, budget *int64) ([]tree.NodeID, error) {
	if *budget <= 0 {
		return nil, ErrBudget
	}
	if len(chosen) == k {
		ok, err := multipleFeasible(in, chosen, budget)
		if err != nil {
			return nil, err
		}
		if ok {
			out := make([]tree.NodeID, k)
			copy(out, chosen)
			return out, nil
		}
		return nil, nil
	}
	if len(chosen)+(len(cands)-from) < k {
		return nil, nil
	}
	// Monotone pruning: if chosen plus *all* remaining candidates is
	// infeasible, no completion of this branch can be feasible.
	if len(chosen) > 0 {
		all := append(append([]tree.NodeID{}, chosen...), cands[from:]...)
		ok, err := multipleFeasible(in, all, budget)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
	for i := from; i < len(cands); i++ {
		res, err := chooseK(in, cands, append(chosen, cands[i]), i+1, k, budget)
		if err != nil || res != nil {
			return res, err
		}
	}
	return nil, nil
}

// multipleFeasible reports whether replica set R can serve all
// requests under the Multiple policy, by max-flow.
func multipleFeasible(in *core.Instance, R []tree.NodeID, budget *int64) (bool, error) {
	if *budget <= 0 {
		return false, ErrBudget
	}
	*budget -= int64(len(R)) + 1
	total, g, _, _ := buildFlow(in, R)
	if total == 0 {
		return true, nil
	}
	return g.MaxFlow(0, 1) == total, nil
}

// MultipleFeasible is the exported feasibility oracle for a given
// replica set under the Multiple policy.
func MultipleFeasible(in *core.Instance, R []tree.NodeID) bool {
	b := DefaultBudget
	ok, _ := multipleFeasible(in, R, &b)
	return ok
}

// MultipleAssignment recovers a concrete assignment for replica set R
// (which must be feasible) by reading the max-flow arc values.
func MultipleAssignment(in *core.Instance, R []tree.NodeID) (*core.Solution, error) {
	total, g, arcs, caps := buildFlow(in, R)
	if got := g.MaxFlow(0, 1); got != total {
		return nil, fmt.Errorf("exact: replica set %v infeasible (flow %d of %d)", R, got, total)
	}
	sol := &core.Solution{}
	for _, r := range R {
		sol.AddReplica(r)
	}
	for i, a := range arcs {
		if amt := g.Flow(a.arc, caps[i]); amt > 0 {
			sol.Assign(a.client, a.server, amt)
		}
	}
	sol.Normalize()
	return sol, nil
}

type flowArc struct {
	client, server tree.NodeID
	arc            int
}

// buildFlow constructs the transportation network:
// node 0 = source, node 1 = sink, then one node per client with
// requests and one per replica. Source→client arcs carry ri,
// client→server arcs (when the server is eligible for the client)
// carry ri, server→sink arcs carry W.
func buildFlow(in *core.Instance, R []tree.NodeID) (total int64, g *flow.Network, arcs []flowArc, caps []int64) {
	t := in.Tree
	clients, elig := eligible(in)
	rIndex := make(map[tree.NodeID]int, len(R))
	for _, s := range R {
		if _, dup := rIndex[s]; !dup {
			rIndex[s] = 0
		}
	}
	// Assign dense indices: clients then servers.
	n := 2 + len(clients) + len(rIndex)
	g = flow.NewNetwork(n)
	idx := 2
	cIndex := make(map[tree.NodeID]int, len(clients))
	for _, c := range clients {
		cIndex[c] = idx
		idx++
	}
	for _, s := range R {
		if rIndex[s] == 0 {
			rIndex[s] = idx
			idx++
		}
	}
	for _, c := range clients {
		r := t.Requests(c)
		total += r
		g.AddEdge(0, cIndex[c], r)
		for _, s := range elig[c] {
			si, ok := rIndex[s]
			if !ok || si == 0 {
				continue
			}
			arc := g.AddEdge(cIndex[c], si, r)
			arcs = append(arcs, flowArc{client: c, server: s, arc: arc})
			caps = append(caps, r)
		}
	}
	for s, si := range rIndex {
		_ = s
		g.AddEdge(si, 1, in.W)
	}
	return total, g, arcs, caps
}
