package exact

import (
	"errors"
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func buildInst(W, dmax int64) *core.Instance {
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	bb := b.Internal(root, 1, "b")
	b.Client(a, 1, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(bb, 2, 6, "c3")
	b.Client(bb, 1, 4, "c4")
	return &core.Instance{Tree: b.MustBuild(), W: W, DMax: dmax}
}

func TestSolveSingleKnownOptima(t *testing.T) {
	cases := []struct {
		W, dmax int64
		want    int
	}{
		{22, core.NoDistance, 1},
		{12, core.NoDistance, 2}, // {c1,c2}@a, {c3,c4}@b
		{11, core.NoDistance, 3}, // whole-client packing into 11s: 5+6=11, 7+4=11 needs cross-subtree grouping at root: c2+c4 = 11 at root, c1+c3 = 11 — c1,c3 only share root; one root only → 3
		{7, core.NoDistance, 4},  // no two clients fit together
		{22, 0, 4},               // all local
	}
	for _, tc := range cases {
		in := buildInst(tc.W, tc.dmax)
		sol, err := SolveSingle(in, Options{})
		if err != nil {
			t.Fatalf("W=%d dmax=%d: %v", tc.W, tc.dmax, err)
		}
		if err := core.Verify(in, core.Single, sol); err != nil {
			t.Fatalf("W=%d dmax=%d infeasible: %v", tc.W, tc.dmax, err)
		}
		if sol.NumReplicas() != tc.want {
			t.Errorf("SolveSingle(W=%d dmax=%d) = %d, want %d", tc.W, tc.dmax, sol.NumReplicas(), tc.want)
		}
	}
}

func TestSolveMultipleKnownOptima(t *testing.T) {
	cases := []struct {
		W, dmax int64
		want    int
	}{
		{22, core.NoDistance, 1},
		{11, core.NoDistance, 2}, // splitting reaches the volume bound
		{8, core.NoDistance, 3},
		{6, core.NoDistance, 4},
		{22, 0, 4},
	}
	for _, tc := range cases {
		in := buildInst(tc.W, tc.dmax)
		sol, err := SolveMultiple(in, Options{})
		if err != nil {
			t.Fatalf("W=%d dmax=%d: %v", tc.W, tc.dmax, err)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			t.Fatalf("W=%d dmax=%d infeasible: %v", tc.W, tc.dmax, err)
		}
		if sol.NumReplicas() != tc.want {
			t.Errorf("SolveMultiple(W=%d dmax=%d) = %d, want %d", tc.W, tc.dmax, sol.NumReplicas(), tc.want)
		}
	}
}

func TestSolveSingleInfeasible(t *testing.T) {
	in := buildInst(6, core.NoDistance) // c2 = 7 > 6
	if _, err := SolveSingle(in, Options{}); err == nil {
		t.Fatal("SolveSingle should reject ri > W")
	}
}

func TestSolveMultipleOversizedClient(t *testing.T) {
	// A client with 2W requests: Multiple splits it across its path.
	b := tree.NewBuilder()
	r := b.Root("r")
	a := b.Internal(r, 1, "a")
	b.Client(a, 1, 10, "big")
	b.Client(r, 1, 2, "small")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: core.NoDistance}
	sol, err := SolveMultiple(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 12 requests, W = 5 → ≥ 3 servers; big alone needs 2 (10 = 2×5
	// over {big, a, r}): 3 achievable: {big, a, r}.
	if sol.NumReplicas() != 3 {
		t.Fatalf("want 3 replicas, got %v", sol)
	}
}

func TestSolveMultipleTrulyInfeasible(t *testing.T) {
	// 12 requests on one client, dmax = 0, W = 5: only the client
	// itself is eligible → max 5 servable.
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 12, "big")
	b.Client(r, 1, 1, "small")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: 0}
	if _, err := SolveMultiple(in, Options{}); err == nil {
		t.Fatal("should report infeasibility")
	}
}

func TestMultipleNeverWorseThanSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 80; trial++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2 + rng.Intn(2),
			MaxDist:      3,
			MaxReq:       8,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		s, err := SolveSingle(in, Options{})
		if err != nil {
			t.Fatalf("trial %d single: %v", trial, err)
		}
		m, err := SolveMultiple(in, Options{})
		if err != nil {
			t.Fatalf("trial %d multiple: %v", trial, err)
		}
		if m.NumReplicas() > s.NumReplicas() {
			t.Fatalf("trial %d: Multiple optimum %d > Single optimum %d",
				trial, m.NumReplicas(), s.NumReplicas())
		}
		if m.NumReplicas() < core.LowerBound(in) {
			t.Fatalf("trial %d: optimum %d below lower bound %d",
				trial, m.NumReplicas(), core.LowerBound(in))
		}
	}
}

func TestBudgetExceeded(t *testing.T) {
	in := buildInst(8, core.NoDistance)
	if _, err := SolveMultiple(in, Options{Budget: 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if _, err := SolveSingle(in, Options{Budget: 1}); !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestFeasibilityOracles(t *testing.T) {
	in := buildInst(12, core.NoDistance)
	root := in.Tree.Root()
	var a, b tree.NodeID
	for _, n := range in.Tree.Internals() {
		switch in.Tree.Label(n) {
		case "a":
			a = n
		case "b":
			b = n
		}
	}
	if !MultipleFeasible(in, []tree.NodeID{a, b}) {
		t.Error("{a,b} serves 12+10 under Multiple")
	}
	if MultipleFeasible(in, []tree.NodeID{root}) {
		t.Error("a single W=12 server cannot serve 22 requests")
	}
	if MultipleFeasible(in, nil) {
		t.Error("empty replica set with positive requests")
	}
	ok, err := SingleFeasible(in, []tree.NodeID{a, b}, Options{})
	if err != nil || !ok {
		t.Errorf("SingleFeasible({a,b}) = %v, %v; want true", ok, err)
	}
	ok, err = SingleFeasible(in, []tree.NodeID{root}, Options{})
	if err != nil || ok {
		t.Errorf("SingleFeasible({root}) = %v, %v; want false", ok, err)
	}
	// Single with W=11: {a, b} can serve (5+... a holds c1+c2=12 > 11)
	in11 := buildInst(11, core.NoDistance)
	ok, err = SingleFeasible(in11, []tree.NodeID{a, b}, Options{})
	if err != nil || ok {
		t.Errorf("SingleFeasible(W=11, {a,b}) = %v, %v; want false", ok, err)
	}
}

func TestMultipleAssignmentRecovery(t *testing.T) {
	in := buildInst(11, core.NoDistance)
	sol, err := SolveMultiple(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-derive an assignment for the returned replica set directly.
	sol2, err := MultipleAssignment(in, sol.Replicas)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, sol2); err != nil {
		t.Fatal(err)
	}
	if _, err := MultipleAssignment(in, []tree.NodeID{in.Tree.Root()}); err == nil {
		t.Fatal("MultipleAssignment on infeasible set should fail")
	}
}

func TestCandidatesCoverClients(t *testing.T) {
	in := buildInst(12, 2)
	cands := candidates(in)
	// Every client with requests must itself be a candidate.
	set := make(map[tree.NodeID]bool)
	for _, c := range cands {
		set[c] = true
	}
	for _, c := range in.Tree.Clients() {
		if in.Tree.Requests(c) > 0 && !set[c] {
			t.Errorf("client %d missing from candidates", c)
		}
	}
	// With dmax=2, node b (distance 2 from c3? c3 has edge 2 → b at 2
	// ≤ 2) is eligible; root is at 3 from c3 and 2 from c2's... the
	// candidate set must exclude nodes that can serve no one.
	for _, s := range cands {
		servesAny := false
		for _, c := range in.Tree.Clients() {
			if in.Tree.Requests(c) > 0 && in.CanServe(c, s) {
				servesAny = true
			}
		}
		if !servesAny {
			t.Errorf("candidate %d serves no client", s)
		}
	}
}

func TestZeroRequestInstance(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("r")
	b.Client(r, 1, 0, "idle1")
	b.Client(r, 1, 0, "idle2")
	in := &core.Instance{Tree: b.MustBuild(), W: 5, DMax: core.NoDistance}
	s, err := SolveSingle(in, Options{})
	if err != nil || s.NumReplicas() != 0 {
		t.Fatalf("SolveSingle on zero requests: %v, %v", s, err)
	}
	m, err := SolveMultiple(in, Options{})
	if err != nil || m.NumReplicas() != 0 {
		t.Fatalf("SolveMultiple on zero requests: %v, %v", m, err)
	}
}
