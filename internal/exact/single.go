package exact

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// SolveSingle returns an optimal solution to the Single problem, or an
// error if the instance is infeasible (some ri > W) or the work budget
// is exceeded. Single is NP-hard in the strong sense even on binary
// trees with no distance constraint (Theorem 1), so this solver is
// exponential; use it on small instances only.
func SolveSingle(in *core.Instance, opt Options) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if !in.Feasible(core.Single) {
		return nil, fmt.Errorf("exact: some client exceeds W=%d; Single has no solution", in.W)
	}
	clients, elig := eligible(in)
	if len(clients) == 0 {
		return &core.Solution{}, nil
	}
	// Branch on clients in decreasing request order: big unsplittable
	// bundles first maximises pruning.
	sort.Slice(clients, func(a, b int) bool {
		ra, rb := in.Tree.Requests(clients[a]), in.Tree.Requests(clients[b])
		if ra != rb {
			return ra > rb
		}
		return clients[a] < clients[b]
	})

	s := &singleSearch{
		in:      in,
		clients: clients,
		elig:    elig,
		resid:   make(map[tree.NodeID]int64),
		assign:  make(map[tree.NodeID]tree.NodeID, len(clients)),
		budget:  opt.budget(),
	}
	s.remaining = make([]int64, len(clients)+1)
	for k := len(clients) - 1; k >= 0; k-- {
		s.remaining[k] = s.remaining[k+1] + in.Tree.Requests(clients[k])
	}
	s.best = len(clients) + 1 // strictly worse than the trivial solution
	s.dfs(0)
	opt.record(s.budget)
	if s.budget <= 0 {
		return nil, ErrBudget
	}
	if s.bestAssign == nil {
		// Trivial solution (every client serves itself) is always
		// feasible under the Single precondition, so this is
		// unreachable; defensive.
		return nil, fmt.Errorf("exact: no Single solution found")
	}
	sol := &core.Solution{}
	for c, srv := range s.bestAssign {
		sol.AddReplica(srv)
		sol.Assign(c, srv, in.Tree.Requests(c))
	}
	sol.Normalize()
	if err := core.Verify(in, core.Single, sol); err != nil {
		return nil, fmt.Errorf("exact: single solver produced infeasible solution: %w", err)
	}
	return sol, nil
}

type singleSearch struct {
	in         *core.Instance
	clients    []tree.NodeID
	elig       map[tree.NodeID][]tree.NodeID
	resid      map[tree.NodeID]int64 // open server -> residual capacity
	assign     map[tree.NodeID]tree.NodeID
	remaining  []int64 // remaining[k] = Σ requests of clients[k:]
	best       int
	bestAssign map[tree.NodeID]tree.NodeID
	budget     int64
}

func (s *singleSearch) dfs(k int) {
	if s.budget <= 0 {
		return
	}
	s.budget--
	open := len(s.resid)
	if open >= s.best {
		return
	}
	if k == len(s.clients) {
		s.best = open
		s.bestAssign = make(map[tree.NodeID]tree.NodeID, len(s.assign))
		for c, srv := range s.assign {
			s.bestAssign[c] = srv
		}
		return
	}
	// Optimistic bound: even if all residual capacity of open servers
	// is usable, the overflow needs ⌈·/W⌉ new servers.
	var residTotal int64
	for _, r := range s.resid {
		residTotal += r
	}
	if over := s.remaining[k] - residTotal; over > 0 {
		extra := int(core.CeilDiv(over, s.in.W))
		if open+extra >= s.best {
			return
		}
	}

	c := s.clients[k]
	r := s.in.Tree.Requests(c)
	// Try open servers first (no objective increase), then new ones.
	for _, srv := range s.elig[c] {
		res, isOpen := s.resid[srv]
		if !isOpen || res < r {
			continue
		}
		s.resid[srv] = res - r
		s.assign[c] = srv
		s.dfs(k + 1)
		s.resid[srv] = res
		delete(s.assign, c)
	}
	if open+1 >= s.best {
		return
	}
	for _, srv := range s.elig[c] {
		if _, isOpen := s.resid[srv]; isOpen {
			continue
		}
		s.resid[srv] = s.in.W - r
		s.assign[c] = srv
		s.dfs(k + 1)
		delete(s.resid, srv)
		delete(s.assign, c)
	}
}

// SingleFeasible reports whether the replica set R admits a feasible
// Single assignment, via the same backtracking search restricted to R.
func SingleFeasible(in *core.Instance, R []tree.NodeID, opt Options) (bool, error) {
	rset := make(map[tree.NodeID]bool, len(R))
	for _, s := range R {
		rset[s] = true
	}
	clients, elig := eligible(in)
	for c, servers := range elig {
		filtered := servers[:0]
		for _, s := range servers {
			if rset[s] {
				filtered = append(filtered, s)
			}
		}
		elig[c] = filtered
		if len(filtered) == 0 {
			return false, nil
		}
	}
	sort.Slice(clients, func(a, b int) bool {
		ra, rb := in.Tree.Requests(clients[a]), in.Tree.Requests(clients[b])
		if ra != rb {
			return ra > rb
		}
		return clients[a] < clients[b]
	})
	resid := make(map[tree.NodeID]int64, len(R))
	for _, s := range R {
		resid[s] = in.W
	}
	budget := opt.budget()
	var dfs func(k int) bool
	dfs = func(k int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		if k == len(clients) {
			return true
		}
		c := clients[k]
		r := in.Tree.Requests(c)
		for _, srv := range elig[c] {
			if resid[srv] < r {
				continue
			}
			resid[srv] -= r
			if dfs(k + 1) {
				resid[srv] += r
				return true
			}
			resid[srv] += r
		}
		return false
	}
	ok := dfs(0)
	if !ok && budget <= 0 {
		return false, ErrBudget
	}
	return ok, nil
}
