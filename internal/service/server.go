// Package service exposes the solver registry as an HTTP/JSON daemon:
// placement-as-a-service. The v2 surface mirrors the solver package's
// typed Request/Report contract; v1 is a frozen adapter over the same
// engine path and stays byte-identical. Endpoints:
//
//	POST /v2/solve    — solve one instance (policy/budget/timeout/hints)
//	POST /v2/batch    — enqueue an async job over many typed tasks
//	GET  /v2/jobs/{id} — poll a batch job with full per-task reports
//	GET  /v2/solvers  — every engine's Capabilities document
//	PUT    /v2/instances/{id}          — open a stateful instance session
//	POST   /v2/instances/{id}/mutate   — mutate a session, re-solve, report churn
//	GET    /v2/instances/{id}/solution — the session's current placement
//	DELETE /v2/instances/{id}          — drop a session
//	POST /v1/solve    — deprecated: v2 minus bound/proof/work metadata
//	POST /v1/batch    — deprecated: untyped tasks
//	GET  /v1/jobs/{id} — deprecated: v1 rendering of the same jobs
//	GET  /v1/solvers  — deprecated: name/policy/exact triples
//	GET  /healthz     — liveness
//	GET  /metrics     — request counts, cache hit rate, per-solver latency
//
// v2 errors are RFC 7807 application/problem+json documents typed by
// the solver sentinels (unknown solver → 404, unsupported request or
// infeasible instance → 422); v1 keeps its legacy {"error": …} bodies.
//
// The hot path is the result cache: instances are keyed by their
// canonical hash (core.Instance.CanonicalHash) so a repeated placement
// of the same tree is served from an LRU in memory instead of
// re-solved. The cache stores full solve reports and is shared by both
// API versions. Every solution — cached or fresh — has passed
// core.Verify before it leaves the process.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"replicatree/internal/core"
	// Link the decomposition engine into every service binary: it
	// registers itself on init (it imports solver, so the registry
	// cannot reference it statically).
	_ "replicatree/internal/decomp"
	"replicatree/internal/solver"
)

// Options tunes a Server.
type Options struct {
	// CacheSize bounds the result cache in entries; 0 disables caching.
	CacheSize int
	// Cache, when non-nil, replaces the default local LRU result
	// cache (NewCache(CacheSize)) — the seam the fleet's two-tier
	// distributed cache plugs into. CacheSize is ignored when set.
	Cache ResultCache
	// JobWorkers bounds the number of concurrently running batch jobs
	// (default 1); JobQueue bounds the number of queued jobs (default
	// 64); JobRetention bounds retained finished jobs (default 1024).
	JobWorkers   int
	JobQueue     int
	JobRetention int
	// MaxInstances bounds live instance sessions (default
	// DefaultMaxInstances); InstanceTTL evicts sessions idle for that
	// long (default DefaultInstanceTTL).
	MaxInstances int
	InstanceTTL  time.Duration
}

// DefaultCacheSize is the cache bound used by cmd/replicad unless
// overridden.
const DefaultCacheSize = 1024

// Server is the placement service. Create one with New, mount it as
// an http.Handler, and Close it on shutdown.
type Server struct {
	cache     ResultCache
	metrics   *Metrics
	jobs      *JobManager
	instances *instanceStore
	mux       *http.ServeMux
	started   time.Time
}

// New assembles a Server.
func New(opt Options) *Server {
	cache := opt.Cache
	if cache == nil {
		cache = NewCache(opt.CacheSize)
	}
	s := &Server{
		cache:     cache,
		metrics:   NewMetrics(),
		jobs:      NewJobManager(opt.JobWorkers, opt.JobQueue, opt.JobRetention),
		instances: newInstanceStore(opt.MaxInstances, opt.InstanceTTL),
		mux:       http.NewServeMux(),
		started:   time.Now(),
	}
	s.jobs.metrics = s.metrics
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("POST /v2/solve", s.handleSolveV2)
	s.mux.HandleFunc("POST /v2/batch", s.handleBatchV2)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobV2)
	s.mux.HandleFunc("GET /v2/jobs/{id}/proof/{task}", s.handleProofV2)
	s.mux.HandleFunc("GET /v2/solvers", s.handleSolversV2)
	s.mux.HandleFunc("PUT /v2/instances/{id}", s.handleInstancePut)
	s.mux.HandleFunc("POST /v2/instances/{id}/mutate", s.handleInstanceMutate)
	s.mux.HandleFunc("GET /v2/instances/{id}/solution", s.handleInstanceSolution)
	s.mux.HandleFunc("DELETE /v2/instances/{id}", s.handleInstanceDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts the job pool down and drops every instance session;
// in-flight jobs are cancelled.
func (s *Server) Close() {
	s.jobs.Close()
	s.instances.close()
}

// CacheStats exposes the cache counters (also part of /metrics).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// MetricsSnapshot exposes the request/latency counters, so an
// embedding front-end (the fleet router) can aggregate per-worker
// service metrics without scraping its own /metrics endpoint.
func (s *Server) MetricsSnapshot() MetricsSnapshot { return s.metrics.Snapshot() }

// errVerification marks a solver that returned an infeasible
// solution — an internal invariant violation, reported as 500 rather
// than blamed on the request.
var errVerification = errors.New("solution failed verification")

// maxBodyBytes caps request bodies: a long-running daemon must not
// let one client balloon its memory with an unbounded JSON stream.
// 64 MiB comfortably fits multi-million-node instances.
const maxBodyBytes = 64 << 20

// maxBatchTasks caps one job's task list: results are retained for
// polling, so an unbounded batch would pin unbounded memory.
const maxBatchTasks = 4096

// statusClientClosed is nginx's conventional code for "client closed
// request"; /metrics buckets it separately so aborted solves do not
// masquerade as malformed requests.
const statusClientClosed = 499

// solveErrorStatus classifies a failed solve: infeasible output →
// 500 (checked first — a verification failure must surface as 5xx
// even when the client has since disconnected), client gone → 499,
// unknown engine → 404, anything else (the ErrPolicyUnsupported /
// ErrInfeasible sentinels, budget exhaustion) → 422. Classification
// is by errors.Is on the solver sentinels, never by string matching.
func solveErrorStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, errVerification):
		return http.StatusInternalServerError
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil:
		return statusClientClosed
	case errors.Is(err, solver.ErrUnknownSolver):
		return http.StatusNotFound
	default:
		return http.StatusUnprocessableEntity
	}
}

// decodeBody decodes a JSON request body into v under the size cap,
// returning the HTTP status to use on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("invalid request: %w", err)
	}
	return http.StatusOK, nil
}

// solveOutcome is the result of one cached-or-fresh solve: the full
// engine report plus the cache coordinates.
type solveOutcome struct {
	report solver.Report
	hash   string
	cached bool
}

// requestVariant canonically encodes the request fields that can
// change a solve's outcome — the policy constraint, the work budget
// and the (already service-filtered) hints — so differently
// constrained requests never share a cache line. Unconstrained
// requests encode to "", which keeps the plain v1 key shape and lets
// /v1 and zero-constraint /v2 requests share entries.
func requestVariant(req solver.Request) string {
	if req.Policy == solver.AnyPolicy && req.Budget == 0 && len(req.Hints) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "p=%d;b=%d", req.Policy, req.Budget)
	keys := make([]string, 0, len(req.Hints))
	for k := range req.Hints {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		// Quote keys and values: hints are client-controlled, so raw
		// ';'/'=' inside them must not collide with the delimiters
		// (strconv.Quote escapes embedded quotes, making the encoding
		// injective).
		fmt.Fprintf(&sb, ";%s=%s", strconv.Quote(k), strconv.Quote(req.Hints[k]))
	}
	return sb.String()
}

// solveCached is the shared engine path of both API versions'
// solve and batch endpoints: canonical hash, cache lookup, engine
// solve on miss, verify, fill. The cache key is the dispatched engine
// name plus the hash and request variant, so /v1 and unconstrained
// /v2 requests share entries for the same (solver, instance) while
// constrained requests get their own lines.
func (s *Server) solveCached(ctx context.Context, eng solver.Engine, req solver.Request) (solveOutcome, error) {
	out := solveOutcome{hash: req.Instance.CanonicalHash()}
	key := out.hash
	if v := requestVariant(req); v != "" {
		key += "|" + v // the hash is hex, so "|" cannot collide
	}
	name := eng.Name()
	if rep, ok := s.cache.Get(name, key); ok {
		out.report, out.cached = rep, true
		return out, nil
	}
	begin := time.Now()
	// Lend the engine a pooled scratch: warm-capable engines then solve
	// on recycled session buffers instead of fresh heap, which is where
	// a cache-miss solve spends most of its allocations. The solution a
	// warm solve reports is scratch-owned, so it is detached with Clone
	// before the scratch returns to the pool (engines without a warm
	// path ignore the scratch; the extra copy of their small solution
	// is noise next to the solve).
	sc := solver.GetScratch()
	req.Scratch = sc
	rep, err := eng.Solve(ctx, req)
	if err != nil {
		solver.PutScratch(sc)
		return out, err
	}
	if rep.Solution != nil {
		rep.Solution = rep.Solution.Clone()
	}
	solver.PutScratch(sc)
	s.metrics.Solve(name, time.Since(begin))
	if err := core.Verify(req.Instance, rep.Policy, rep.Solution); err != nil {
		return out, fmt.Errorf("%w: solver %s: %v", errVerification, name, err)
	}
	s.cache.Put(name, key, rep)
	out.report = rep
	return out, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/solve"
	begin := time.Now()
	var req SolveRequest
	if status, err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, endpoint, status, err)
		return
	}
	if req.Instance == nil {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	if req.Solver == "" {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("missing solver name (see GET /v1/solvers)"))
		return
	}
	eng, err := solver.Lookup(req.Solver)
	if err != nil {
		s.writeError(w, endpoint, http.StatusNotFound, err)
		return
	}
	out, err := s.solveCached(r.Context(), eng, solver.Request{Instance: req.Instance})
	if err != nil {
		s.writeError(w, endpoint, solveErrorStatus(r, err), err)
		return
	}
	resp := SolveResponse{
		Solver:     eng.Name(),
		Policy:     out.report.Policy.String(),
		Hash:       out.hash,
		Replicas:   out.report.Solution.NumReplicas(),
		LowerBound: out.report.LowerBound,
		Gap:        out.report.Gap,
		Verified:   true,
		Cached:     out.cached,
		ElapsedMS:  durMS(time.Since(begin)),
		Solution:   out.report.Solution,
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/batch"
	var req BatchRequest
	if status, err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, endpoint, status, err)
		return
	}
	if len(req.Tasks) == 0 {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("empty task list"))
		return
	}
	if len(req.Tasks) > maxBatchTasks {
		s.writeError(w, endpoint, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d tasks exceeds the limit of %d (split into multiple jobs)", len(req.Tasks), maxBatchTasks))
		return
	}
	if req.Workers < 0 {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("negative workers %d", req.Workers))
		return
	}
	// Workers is client-controlled; clamp it so one job can never
	// spawn more solve goroutines than the machine has cores
	// (solver.Batch treats 0 as GOMAXPROCS already).
	workers := req.Workers
	if cores := runtime.GOMAXPROCS(0); workers > cores {
		workers = cores
	}
	tasks := make([]solver.Task, len(req.Tasks))
	for i, bt := range req.Tasks {
		if bt.Instance == nil {
			s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("task %d: missing instance", i))
			return
		}
		eng, err := solver.Lookup(bt.Solver)
		if err != nil {
			s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("task %d: %w", i, err))
			return
		}
		tasks[i] = solver.Task{
			ID:      bt.ID,
			Engine:  &cachingEngine{server: s, inner: eng},
			Request: solver.Request{Instance: bt.Instance},
		}
	}
	// v1 predates certificates; jobs submitted here never build them.
	opt := solver.Options{Workers: workers, Timeout: time.Duration(req.TimeoutMS) * time.Millisecond}
	id, err := s.jobs.Submit(tasks, opt, false)
	if err != nil {
		s.writeError(w, endpoint, http.StatusServiceUnavailable, err)
		return
	}
	s.writeJSON(w, endpoint, http.StatusAccepted, BatchAccepted{
		JobID:     id,
		StatusURL: "/v1/jobs/" + id,
		Tasks:     len(tasks),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/jobs"
	id := r.PathValue("id")
	resp, ok := s.jobs.Get(id)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	catalog := solver.Catalog()
	infos := make([]SolverInfo, len(catalog))
	for i, c := range catalog {
		infos[i] = SolverInfo{
			Name:   c.Name,
			Policy: c.Policy.String(),
			Exact:  c.Exact,
		}
	}
	s.writeJSON(w, "/v1/solvers", http.StatusOK, infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "/healthz", http.StatusOK, map[string]any{
		"status":    "ok",
		"solvers":   len(solver.List()),
		"uptime_ms": durMS(time.Since(s.started)),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := struct {
		MetricsSnapshot
		Cache CacheStats `json:"cache"`
	}{s.metrics.Snapshot(), s.cache.Stats()}
	s.writeJSON(w, "/metrics", http.StatusOK, snap)
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	s.metrics.Request(endpoint, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, status int, err error) {
	s.writeJSON(w, endpoint, status, ErrorResponse{Error: err.Error()})
}

// cachingEngine routes a batch task's Solve through the server's
// cache + verify path and remembers whether it hit, so job results
// can report per-task cache effectiveness. The flag is atomic: a
// timed-out batch task's solve goroutine is abandoned by
// solver.Batch and may still be writing it when a poll renders
// results.
type cachingEngine struct {
	server *Server
	inner  solver.Engine
	cached atomic.Bool
}

func (c *cachingEngine) Name() string                      { return c.inner.Name() }
func (c *cachingEngine) Capabilities() solver.Capabilities { return c.inner.Capabilities() }

func (c *cachingEngine) Solve(ctx context.Context, req solver.Request) (solver.Report, error) {
	out, err := c.server.solveCached(ctx, c.inner, req)
	if err != nil {
		return solver.Report{}, err
	}
	c.cached.Store(out.cached)
	return out.report, nil
}

// LastCached implements cachedReporter.
func (c *cachingEngine) LastCached() bool { return c.cached.Load() }
