// Package service exposes the solver registry as an HTTP/JSON daemon:
// placement-as-a-service. Endpoints:
//
//	POST /v1/solve    — solve one instance with a named solver
//	POST /v1/batch    — enqueue an async job over many (solver, instance) pairs
//	GET  /v1/jobs/{id} — poll a batch job
//	GET  /v1/solvers  — the registry contents
//	GET  /healthz     — liveness
//	GET  /metrics     — request counts, cache hit rate, per-solver latency
//
// The hot path is the result cache: instances are keyed by their
// canonical hash (core.Instance.CanonicalHash) so a repeated placement
// of the same tree is served from an LRU in memory instead of
// re-solved. Every solution — cached or fresh — has passed
// core.Verify before it leaves the process.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// Options tunes a Server.
type Options struct {
	// CacheSize bounds the result cache in entries; 0 disables caching.
	CacheSize int
	// JobWorkers bounds the number of concurrently running batch jobs
	// (default 1); JobQueue bounds the number of queued jobs (default
	// 64); JobRetention bounds retained finished jobs (default 1024).
	JobWorkers   int
	JobQueue     int
	JobRetention int
}

// DefaultCacheSize is the cache bound used by cmd/replicad unless
// overridden.
const DefaultCacheSize = 1024

// Server is the placement service. Create one with New, mount it as
// an http.Handler, and Close it on shutdown.
type Server struct {
	cache   *Cache
	metrics *Metrics
	jobs    *JobManager
	mux     *http.ServeMux
	started time.Time
}

// New assembles a Server.
func New(opt Options) *Server {
	s := &Server{
		cache:   NewCache(opt.CacheSize),
		metrics: NewMetrics(),
		jobs:    NewJobManager(opt.JobWorkers, opt.JobQueue, opt.JobRetention),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/solvers", s.handleSolvers)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts the job pool down; in-flight jobs are cancelled.
func (s *Server) Close() {
	s.jobs.Close()
}

// CacheStats exposes the cache counters (also part of /metrics).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// errVerification marks a solver that returned an infeasible
// solution — an internal invariant violation, reported as 500 rather
// than blamed on the request.
var errVerification = errors.New("solution failed verification")

// maxBodyBytes caps request bodies: a long-running daemon must not
// let one client balloon its memory with an unbounded JSON stream.
// 64 MiB comfortably fits multi-million-node instances.
const maxBodyBytes = 64 << 20

// maxBatchTasks caps one job's task list: results are retained for
// polling, so an unbounded batch would pin unbounded memory.
const maxBatchTasks = 4096

// statusClientClosed is nginx's conventional code for "client closed
// request"; /metrics buckets it separately so aborted solves do not
// masquerade as malformed requests.
const statusClientClosed = 499

// solveErrorStatus classifies a failed solve: infeasible output →
// 500 (checked first — a verification failure must surface as 5xx
// even when the client has since disconnected), client gone → 499,
// anything else (NoD-gating, budget, infeasible instance) → 422.
func solveErrorStatus(r *http.Request, err error) int {
	switch {
	case errors.Is(err, errVerification):
		return http.StatusInternalServerError
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil:
		return statusClientClosed
	default:
		return http.StatusUnprocessableEntity
	}
}

// decodeBody decodes a JSON request body into v under the size cap,
// returning the HTTP status to use on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("invalid request: %w", err)
	}
	return http.StatusOK, nil
}

// solveOutcome is the result of one cached-or-fresh solve.
type solveOutcome struct {
	solution   *core.Solution
	policy     core.Policy
	lowerBound int
	hash       string
	cached     bool
}

// solveCached is the shared solve path of /v1/solve and batch tasks:
// canonical hash, cache lookup, solve on miss, verify, fill.
func (s *Server) solveCached(ctx context.Context, sv solver.Solver, in *core.Instance) (solveOutcome, error) {
	out := solveOutcome{hash: in.CanonicalHash()}
	if sol, pol, lb, ok := s.cache.Get(sv.Name(), out.hash); ok {
		out.solution, out.policy, out.lowerBound, out.cached = sol, pol, lb, true
		return out, nil
	}
	begin := time.Now()
	sol, err := sv.Solve(ctx, in)
	if err != nil {
		return out, err
	}
	s.metrics.Solve(sv.Name(), time.Since(begin))
	pol := solver.PolicyOf(sv)
	if err := core.Verify(in, pol, sol); err != nil {
		return out, fmt.Errorf("%w: solver %s: %v", errVerification, sv.Name(), err)
	}
	lb := core.LowerBound(in)
	s.cache.Put(sv.Name(), out.hash, sol, pol, lb)
	out.solution, out.policy, out.lowerBound = sol, pol, lb
	return out, nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/solve"
	begin := time.Now()
	var req SolveRequest
	if status, err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, endpoint, status, err)
		return
	}
	if req.Instance == nil {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("missing instance"))
		return
	}
	if req.Solver == "" {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("missing solver name (see GET /v1/solvers)"))
		return
	}
	sv, err := solver.Get(req.Solver)
	if err != nil {
		s.writeError(w, endpoint, http.StatusNotFound, err)
		return
	}
	out, err := s.solveCached(r.Context(), sv, req.Instance)
	if err != nil {
		s.writeError(w, endpoint, solveErrorStatus(r, err), err)
		return
	}
	resp := SolveResponse{
		Solver:     sv.Name(),
		Policy:     out.policy.String(),
		Hash:       out.hash,
		Replicas:   out.solution.NumReplicas(),
		LowerBound: out.lowerBound,
		Verified:   true,
		Cached:     out.cached,
		ElapsedMS:  durMS(time.Since(begin)),
		Solution:   out.solution,
	}
	if out.lowerBound > 0 {
		resp.Gap = float64(resp.Replicas-out.lowerBound) / float64(out.lowerBound)
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/batch"
	var req BatchRequest
	if status, err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, endpoint, status, err)
		return
	}
	if len(req.Tasks) == 0 {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("empty task list"))
		return
	}
	if len(req.Tasks) > maxBatchTasks {
		s.writeError(w, endpoint, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d tasks exceeds the limit of %d (split into multiple jobs)", len(req.Tasks), maxBatchTasks))
		return
	}
	if req.Workers < 0 {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("negative workers %d", req.Workers))
		return
	}
	// Workers is client-controlled; clamp it so one job can never
	// spawn more solve goroutines than the machine has cores
	// (solver.Batch treats 0 as GOMAXPROCS already).
	workers := req.Workers
	if cores := runtime.GOMAXPROCS(0); workers > cores {
		workers = cores
	}
	tasks := make([]solver.Task, len(req.Tasks))
	for i, bt := range req.Tasks {
		if bt.Instance == nil {
			s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("task %d: missing instance", i))
			return
		}
		sv, err := solver.Get(bt.Solver)
		if err != nil {
			s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("task %d: %w", i, err))
			return
		}
		tasks[i] = solver.Task{
			ID:       bt.ID,
			Solver:   &cachingSolver{server: s, inner: sv},
			Instance: bt.Instance,
		}
	}
	opt := solver.Options{Workers: workers, Timeout: time.Duration(req.TimeoutMS) * time.Millisecond}
	id, err := s.jobs.Submit(tasks, opt)
	if err != nil {
		s.writeError(w, endpoint, http.StatusServiceUnavailable, err)
		return
	}
	s.writeJSON(w, endpoint, http.StatusAccepted, BatchAccepted{
		JobID:     id,
		StatusURL: "/v1/jobs/" + id,
		Tasks:     len(tasks),
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v1/jobs"
	id := r.PathValue("id")
	resp, ok := s.jobs.Get(id)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	solvers := solver.Solvers()
	infos := make([]SolverInfo, len(solvers))
	for i, sv := range solvers {
		infos[i] = SolverInfo{
			Name:   sv.Name(),
			Policy: solver.PolicyOf(sv).String(),
			Exact:  solver.IsExact(sv),
		}
	}
	s.writeJSON(w, "/v1/solvers", http.StatusOK, infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, "/healthz", http.StatusOK, map[string]any{
		"status":    "ok",
		"solvers":   len(solver.List()),
		"uptime_ms": durMS(time.Since(s.started)),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := struct {
		MetricsSnapshot
		Cache CacheStats `json:"cache"`
	}{s.metrics.Snapshot(), s.cache.Stats()}
	s.writeJSON(w, "/metrics", http.StatusOK, snap)
}

func (s *Server) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	s.metrics.Request(endpoint, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to salvage
}

func (s *Server) writeError(w http.ResponseWriter, endpoint string, status int, err error) {
	s.writeJSON(w, endpoint, status, ErrorResponse{Error: err.Error()})
}

// cachingSolver routes a batch task's Solve through the server's
// cache + verify path and remembers whether it hit, so job results
// can report per-task cache effectiveness. The flag is atomic: a
// timed-out batch task's solve goroutine is abandoned by
// solver.Batch and may still be writing it when the job runner
// collects results.
type cachingSolver struct {
	server *Server
	inner  solver.Solver
	cached atomic.Bool
}

func (c *cachingSolver) Name() string { return c.inner.Name() }

// Policy and Exact forward the inner solver's metadata.
func (c *cachingSolver) Policy() core.Policy { return solver.PolicyOf(c.inner) }
func (c *cachingSolver) Exact() bool         { return solver.IsExact(c.inner) }

func (c *cachingSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	out, err := c.server.solveCached(ctx, c.inner, in)
	if err != nil {
		return nil, err
	}
	c.cached.Store(out.cached)
	return out.solution, nil
}

// LastCached implements cachedReporter.
func (c *cachingSolver) LastCached() bool { return c.cached.Load() }
