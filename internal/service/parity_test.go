package service

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// goldenManifest loads the full golden manifest: instance file →
// solver → replica count.
func goldenManifest(t testing.TB) map[string]map[string]int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest map[string]map[string]int
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	return manifest
}

// TestV1V2SolveParityGoldenCorpus is the API-freeze pin: for every
// (instance, solver) pair of the golden corpus, /v1/solve and
// /v2/solve return identical solutions, hashes, bounds and replica
// counts, and share one cache (the v1-warmed entry serves the v2
// request). /v1 is the adapter; this test is what "byte-identical"
// rides on.
func TestV1V2SolveParityGoldenCorpus(t *testing.T) {
	manifest := goldenManifest(t)
	srv, ts := newTestServer(t, Options{CacheSize: 4096})
	pairs := 0
	for file, want := range manifest {
		in := goldenInstance(t, file)
		for name, wantReplicas := range want {
			if name == "lower-bound" {
				continue
			}
			// v1 first (cold), then v2 (must hit the shared cache).
			resp1, body1 := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Solver: name, Instance: in})
			if resp1.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: v1 status %d: %s", file, name, resp1.StatusCode, body1)
			}
			var v1 SolveResponse
			if err := json.Unmarshal(body1, &v1); err != nil {
				t.Fatal(err)
			}
			resp2, body2 := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Solver: name, Instance: in})
			if resp2.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: v2 status %d: %s", file, name, resp2.StatusCode, body2)
			}
			var v2 SolveResponseV2
			if err := json.Unmarshal(body2, &v2); err != nil {
				t.Fatal(err)
			}
			pairs++
			if v1.Replicas != wantReplicas || v2.Replicas != wantReplicas {
				t.Errorf("%s/%s: replicas v1=%d v2=%d, golden %d", file, name, v1.Replicas, v2.Replicas, wantReplicas)
			}
			if v1.Hash != v2.Hash || v1.Hash != in.CanonicalHash() {
				t.Errorf("%s/%s: hash mismatch: v1=%s v2=%s", file, name, v1.Hash, v2.Hash)
			}
			if v1.Policy != v2.Policy || v1.LowerBound != v2.LowerBound || v1.Gap != v2.Gap {
				t.Errorf("%s/%s: metadata diverged: v1={%s %d %v} v2={%s %d %v}",
					file, name, v1.Policy, v1.LowerBound, v1.Gap, v2.Policy, v2.LowerBound, v2.Gap)
			}
			if !reflect.DeepEqual(v1.Solution, v2.Solution) {
				t.Errorf("%s/%s: solutions diverged between versions", file, name)
			}
			if v1.Cached {
				t.Errorf("%s/%s: first (v1) request reported cached", file, name)
			}
			if !v2.Cached {
				t.Errorf("%s/%s: v2 request missed the cache the v1 solve filled", file, name)
			}
			if !v1.Verified || !v2.Verified {
				t.Errorf("%s/%s: verification flags v1=%v v2=%v", file, name, v1.Verified, v2.Verified)
			}
		}
	}
	if pairs < 50 {
		t.Fatalf("parity covered only %d (instance, solver) pairs", pairs)
	}
	st := srv.CacheStats()
	if st.Hits < uint64(pairs) {
		t.Errorf("cache hits %d below pair count %d: versions are not sharing the cache", st.Hits, pairs)
	}
}

// TestV2SolversCapabilities: GET /v2/solvers returns the full
// capability document of every registered engine, in registry order.
func TestV2SolversCapabilities(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var docs []CapabilityDoc
	if resp := getJSON(t, ts.URL+"/v2/solvers", &docs); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	catalog := solver.Catalog()
	if len(docs) != len(catalog) {
		t.Fatalf("%d docs for %d registered engines", len(docs), len(catalog))
	}
	for i, c := range catalog {
		d := docs[i]
		if d.Name != c.Name || d.Policy != c.Policy.String() || d.Exact != c.Exact ||
			d.SupportsDMax != c.SupportsDMax || d.Hetero != c.Hetero ||
			d.Cost != c.Cost.String() || d.Description != c.Description {
			t.Errorf("doc %d diverged from registry: %+v vs %+v", i, d, c)
		}
	}
}

// problemFrom decodes an RFC 7807 body and asserts the media type.
func problemFrom(t *testing.T, resp *http.Response, body []byte) Problem {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
		t.Errorf("error content type %q, want application/problem+json", ct)
	}
	var p Problem
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("non-problem error body: %v: %s", err, body)
	}
	if p.Status != resp.StatusCode {
		t.Errorf("problem status %d disagrees with HTTP status %d", p.Status, resp.StatusCode)
	}
	return p
}

func TestV2ProblemStatuses(t *testing.T) {
	feasible := goldenInstance(t, "binary_nod_1.json")
	constrained := goldenInstance(t, "binary_dist_1.json")
	_, ts := newTestServer(t, Options{})

	cases := []struct {
		name   string
		req    SolveRequestV2
		status int
		typ    string
	}{
		{"unknown solver", SolveRequestV2{Solver: "nope", Instance: feasible},
			http.StatusNotFound, ProblemUnknownSolver},
		{"NoD gate", SolveRequestV2{Solver: "single-nod", Instance: constrained},
			http.StatusUnprocessableEntity, ProblemUnsupported},
		{"policy constraint", SolveRequestV2{Solver: "multiple-bin", Instance: feasible, Policy: "single"},
			http.StatusUnprocessableEntity, ProblemUnsupported},
		{"budget exhaustion", SolveRequestV2{Solver: "exact-multiple", Instance: feasible, Budget: 1},
			http.StatusUnprocessableEntity, ProblemBudgetExhausted},
		{"missing instance", SolveRequestV2{Solver: "single-gen"},
			http.StatusBadRequest, ProblemBadRequest},
		{"missing solver", SolveRequestV2{Instance: feasible},
			http.StatusBadRequest, ProblemBadRequest},
		{"bad policy string", SolveRequestV2{Solver: "single-gen", Instance: feasible, Policy: "both"},
			http.StatusBadRequest, ProblemBadRequest},
		{"negative timeout", SolveRequestV2{Solver: "single-gen", Instance: feasible, TimeoutMS: -1},
			http.StatusBadRequest, ProblemBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v2/solve", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		p := problemFrom(t, resp, body)
		if p.Type != c.typ {
			t.Errorf("%s: problem type %q, want %q", c.name, p.Type, c.typ)
		}
		if p.Title == "" || p.Detail == "" {
			t.Errorf("%s: incomplete problem document %+v", c.name, p)
		}
	}

	// Malformed JSON → 400 problem, not a v1-style {"error": …} body.
	resp, err := http.Post(ts.URL+"/v2/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	problemFrom(t, resp, buf)
}

// TestV2InfeasibleInstance: an instance no solver can satisfy is a
// typed 422 infeasible problem.
func TestV2InfeasibleInstance(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// One client with 10 requests, W=3, dmax=1: only the client itself
	// is eligible and 10 > 3.
	body := `{"solver":"auto","instance":{"tree":{"root":0,"nodes":[
		{"id":0,"parent":-1,"dist":0},
		{"id":1,"parent":0,"dist":5,"requests":10}]},"w":3,"dmax":1}}`
	resp, err := http.Post(ts.URL+"/v2/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, raw)
	}
	if p := problemFrom(t, resp, raw); p.Type != ProblemInfeasible {
		t.Errorf("problem type %q, want %q", p.Type, ProblemInfeasible)
	}
}

// TestV2AutoSolve drives the portfolio over HTTP: the response names
// the winning engine, carries a proof on a small instance and matches
// the golden optimum.
func TestV2AutoSolve(t *testing.T) {
	const file = "binary_dist_1.json"
	in := goldenInstance(t, file)
	_, ts := newTestServer(t, Options{CacheSize: 8})
	resp, body := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Solver: "auto", Instance: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SolveResponseV2
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Solver != "auto" || sr.Engine == "" || sr.Engine == "auto" {
		t.Errorf("winner attribution wrong: solver=%q engine=%q", sr.Solver, sr.Engine)
	}
	if want := goldenReplicas(t, file, "auto"); sr.Replicas != want {
		t.Errorf("replicas %d, golden %d", sr.Replicas, want)
	}
	if !sr.Proved {
		t.Error("small-instance portfolio not proved over HTTP")
	}
	if err := core.Verify(in, core.Multiple, sr.Solution); err != nil {
		t.Errorf("returned solution does not verify: %v", err)
	}

	// The hint the service must not forward: lower bounds are always
	// reported (and cached) even if the client asks to skip them.
	resp, body = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{
		Solver: "multiple-best", Instance: in,
		Hints: map[string]string{"no-lower-bound": "1"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var hinted SolveResponseV2
	if err := json.Unmarshal(body, &hinted); err != nil {
		t.Fatal(err)
	}
	if hinted.LowerBound <= 0 {
		t.Errorf("service forwarded the no-lower-bound hint: %+v", hinted)
	}
}

// TestV2BatchLifecycle: typed batch tasks (policy constraints, auto,
// a failing NoD-gated task) through submit → poll, with the full
// report block per task; the same job is also pollable through the
// frozen v1 rendering.
func TestV2BatchLifecycle(t *testing.T) {
	in1 := goldenInstance(t, "binary_nod_1.json")
	in2 := goldenInstance(t, "binary_dist_2.json")
	_, ts := newTestServer(t, Options{CacheSize: 8, JobWorkers: 2})

	req := BatchRequestV2{Workers: 1, Tasks: []BatchTaskV2{
		{ID: "auto", Solver: "auto", Instance: in1},
		{ID: "exact", Solver: "exact-multiple", Instance: in2},
		{ID: "constrained", Solver: "auto", Instance: in1, Policy: "single"},
		{ID: "bad", Solver: "single-nod", Instance: in2}, // NoD-gated → fails
	}}
	resp, body := postJSON(t, ts.URL+"/v2/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Tasks != 4 || !strings.HasPrefix(acc.StatusURL, "/v2/jobs/") {
		t.Fatalf("unexpected accept body %+v", acc)
	}

	deadline := time.Now().Add(10 * time.Second)
	var jr JobResponseV2
	for {
		if resp := getJSON(t, ts.URL+acc.StatusURL, &jr); resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		if jr.Status == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(jr.Results) != 4 || jr.Stats == nil || jr.Stats.Solved != 3 || jr.Stats.Failed != 1 {
		t.Fatalf("job outcome %+v", jr)
	}
	byID := make(map[string]TaskResultV2, len(jr.Results))
	for _, r := range jr.Results {
		byID[r.ID] = r
	}
	if r := byID["auto"]; !r.OK || r.Engine == "" || r.LowerBound <= 0 || !r.Proved {
		t.Errorf("auto task missing report block: %+v", r)
	}
	if r := byID["exact"]; !r.OK || !r.Proved || r.Work <= 0 || r.Policy != "Multiple" {
		t.Errorf("exact task missing proof/work: %+v", r)
	}
	if r := byID["constrained"]; !r.OK || r.Policy != "Single" {
		t.Errorf("policy-constrained task wrong: %+v", r)
	}
	if r := byID["bad"]; r.OK || r.Error == "" {
		t.Errorf("NoD-gated task did not fail: %+v", r)
	}

	// The same job renders through the v1 endpoint too (shared
	// manager), minus the v2 metadata.
	var v1 JobResponse
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+acc.JobID, &v1); resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 poll status %d", resp.StatusCode)
	}
	if v1.Status != JobDone || len(v1.Results) != 4 {
		t.Errorf("v1 rendering of a v2 job: %+v", v1)
	}

	// Unknown job IDs are typed 404 problems on v2.
	resp2, err := http.Get(ts.URL + "/v2/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp2.StatusCode)
	}
	if p := problemFrom(t, resp2, raw); p.Type != ProblemUnknownJob {
		t.Errorf("unknown job problem type %q", p.Type)
	}
}
