package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// goldenInstance loads one instance of the checked-in corpus.
func goldenInstance(t testing.TB, name string) *core.Instance {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	return &in
}

// goldenReplicas reads the manifest's replica count for (instance,
// solver), the repository's golden regression currency.
func goldenReplicas(t testing.TB, instance, solverName string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest map[string]map[string]int
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	n, ok := manifest[instance][solverName]
	if !ok {
		t.Fatalf("manifest has no entry for %s/%s", instance, solverName)
	}
	return n
}

func newTestServer(t testing.TB, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opt)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t testing.TB, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSolveRoundTripGolden(t *testing.T) {
	const instance, solverName = "binary_nod_1.json", "multiple-best"
	in := goldenInstance(t, instance)
	_, ts := newTestServer(t, Options{CacheSize: 8})

	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Solver: solverName, Instance: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Verified {
		t.Error("response not marked verified")
	}
	if sr.Cached {
		t.Error("first solve reported as cached")
	}
	if sr.Hash != in.CanonicalHash() {
		t.Errorf("hash mismatch: %s vs %s", sr.Hash, in.CanonicalHash())
	}
	if want := goldenReplicas(t, instance, solverName); sr.Replicas != want {
		t.Errorf("replicas %d, manifest says %d", sr.Replicas, want)
	}
	if sr.Replicas != sr.Solution.NumReplicas() {
		t.Errorf("replica count %d disagrees with solution %d", sr.Replicas, sr.Solution.NumReplicas())
	}
	// The wire solution must re-verify locally against the instance.
	if err := core.Verify(in, core.Multiple, sr.Solution); err != nil {
		t.Errorf("returned solution does not verify: %v", err)
	}
	if sr.LowerBound <= 0 || sr.Replicas < sr.LowerBound {
		t.Errorf("implausible lower bound %d for %d replicas", sr.LowerBound, sr.Replicas)
	}
	if want := float64(sr.Replicas-sr.LowerBound) / float64(sr.LowerBound); sr.Gap != want {
		t.Errorf("gap %v, want %v", sr.Gap, want)
	}
}

func TestSolveCacheAccounting(t *testing.T) {
	in := goldenInstance(t, "binary_dist_1.json")
	srv, ts := newTestServer(t, Options{CacheSize: 8})
	req := SolveRequest{Solver: "multiple-greedy", Instance: in}

	var first, second SolveResponse
	_, body := postJSON(t, ts.URL+"/v1/solve", req)
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	_, body = postJSON(t, ts.URL+"/v1/solve", req)
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached || !second.Cached {
		t.Errorf("cached flags: first=%v second=%v, want false/true", first.Cached, second.Cached)
	}
	if first.Replicas != second.Replicas || first.Hash != second.Hash {
		t.Errorf("cached response diverged: %+v vs %+v", first, second)
	}
	if second.LowerBound != first.LowerBound || second.Gap != first.Gap {
		t.Errorf("cached bound diverged: lb %d/%d gap %v/%v",
			first.LowerBound, second.LowerBound, first.Gap, second.Gap)
	}
	st := srv.CacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("cache stats %+v, want 1 hit / 1 miss / size 1", st)
	}

	// A different solver on the same instance is a distinct cache line.
	_, body = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Solver: "single-gen", Instance: in})
	var third SolveResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different solver unexpectedly hit the cache")
	}
	if got := srv.CacheStats(); got.Size != 2 || got.Misses != 2 {
		t.Errorf("cache stats after second solver: %+v", got)
	}
}

func TestSolveMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := map[string]string{
		"not json":         "{",
		"missing instance": `{"solver":"single-gen"}`,
		"missing solver":   `{"instance":{"tree":{"root":0,"nodes":[{"id":0,"parent":-1,"dist":0},{"id":1,"parent":0,"dist":1,"requests":1}]},"w":1}}`,
		// Structurally invalid: a root with no children fails
		// tree.Validate inside UnmarshalJSON.
		"invalid tree": `{"solver":"single-gen","instance":{"tree":{"root":0,"nodes":[{"id":0,"parent":-1,"dist":0}]},"w":1}}`,
		// Semantically invalid: W must be positive.
		"invalid capacity": `{"solver":"single-gen","instance":{"tree":{"root":0,"nodes":[{"id":0,"parent":-1,"dist":0},{"id":1,"parent":0,"dist":1,"requests":1}]},"w":0}}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (error %q)", name, resp.StatusCode, er.Error)
		}
		if er.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

func TestSolveUnknownSolverListsRegistry(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Solver: "no-such-solver", Instance: in})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	for _, name := range solver.List() {
		if !strings.Contains(er.Error, name) {
			t.Errorf("404 body does not list registered solver %q: %s", name, er.Error)
		}
	}
}

// TestSolveNoDGatedSolver: dispatching a NoD-only solver on a
// distance-constrained instance is a solver-level error → 422.
func TestSolveNoDGatedSolver(t *testing.T) {
	in := goldenInstance(t, "binary_dist_1.json")
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Solver: "single-nod", Instance: in})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422; body %s", resp.StatusCode, body)
	}
}

func TestSolversParityWithRegistry(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var infos []SolverInfo
	if resp := getJSON(t, ts.URL+"/v1/solvers", &infos); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
		c := solver.MustLookup(info.Name).Capabilities()
		if got := c.Policy.String(); info.Policy != got {
			t.Errorf("%s: policy %q, registry says %q", info.Name, info.Policy, got)
		}
		if info.Exact != c.Exact {
			t.Errorf("%s: exact %v, registry says %v", info.Name, info.Exact, c.Exact)
		}
	}
	if want := solver.List(); !reflect.DeepEqual(names, want) {
		t.Errorf("solver names %v, registry lists %v", names, want)
	}
}

func waitForJob(t testing.TB, url string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var jr JobResponse
		if resp := getJSON(t, url, &jr); resp.StatusCode != http.StatusOK {
			t.Fatalf("job poll status %d", resp.StatusCode)
		}
		if jr.Status == JobDone {
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in status %q", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchJobLifecycle(t *testing.T) {
	in1 := goldenInstance(t, "binary_nod_1.json")
	in2 := goldenInstance(t, "binary_dist_2.json")
	srv, ts := newTestServer(t, Options{CacheSize: 8, JobWorkers: 2})

	// Workers: 1 makes in-job dispatch sequential, so the repeat of
	// task "a" deterministically finds its result already cached.
	req := BatchRequest{Workers: 1, Tasks: []BatchTask{
		{ID: "a", Solver: "multiple-best", Instance: in1},
		{ID: "b", Solver: "multiple-best", Instance: in2},
		{ID: "a-again", Solver: "multiple-best", Instance: in1},
		{ID: "bad", Solver: "single-nod", Instance: in2}, // NoD-gated → fails
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Tasks != 4 || acc.JobID == "" {
		t.Fatalf("unexpected accept body %+v", acc)
	}

	jr := waitForJob(t, ts.URL+acc.StatusURL)
	if len(jr.Results) != 4 {
		t.Fatalf("%d results, want 4", len(jr.Results))
	}
	byID := make(map[string]TaskResult, len(jr.Results))
	for _, r := range jr.Results {
		byID[r.ID] = r
	}
	for _, id := range []string{"a", "b", "a-again"} {
		r := byID[id]
		if !r.OK || r.Solution == nil {
			t.Errorf("task %s failed: %+v", id, r)
		}
	}
	if want := goldenReplicas(t, "binary_nod_1.json", "multiple-best"); byID["a"].Replicas != want {
		t.Errorf("task a: %d replicas, manifest says %d", byID["a"].Replicas, want)
	}
	if byID["bad"].OK || byID["bad"].Error == "" {
		t.Errorf("NoD-gated task did not fail: %+v", byID["bad"])
	}
	// Tasks dispatch in order, so the duplicate of "a" is a cache hit.
	if !byID["a-again"].Cached {
		t.Errorf("repeated task not served from cache: %+v", byID["a-again"])
	}
	if byID["a-again"].Replicas != byID["a"].Replicas {
		t.Errorf("cache changed the answer: %d vs %d", byID["a-again"].Replicas, byID["a"].Replicas)
	}
	if jr.Stats == nil || jr.Stats.Solved != 3 || jr.Stats.Failed != 1 {
		t.Errorf("job stats %+v, want 3 solved / 1 failed", jr.Stats)
	}
	if st := srv.CacheStats(); st.Hits < 1 {
		t.Errorf("batch cache never hit: %+v", st)
	}
}

func TestBatchRejections(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	srv, ts := newTestServer(t, Options{})
	if resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Tasks: []BatchTask{
		{Solver: "nope", Instance: in},
	}}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch solver: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Workers: -1, Tasks: []BatchTask{
		{Solver: "multiple-best", Instance: in},
	}}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative workers: status %d, want 400", resp.StatusCode)
	}
	oversized := BatchRequest{Tasks: make([]BatchTask, maxBatchTasks+1)}
	for i := range oversized.Tasks {
		oversized.Tasks[i] = BatchTask{Solver: "multiple-best", Instance: in}
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/batch", oversized); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}

	// A closed job pool refuses new work with 503.
	srv.jobs.Close()
	if resp, _ := postJSON(t, ts.URL+"/v1/batch", BatchRequest{Tasks: []BatchTask{
		{Solver: "multiple-best", Instance: in},
	}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed pool: status %d, want 503", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	_, ts := newTestServer(t, Options{CacheSize: 8})

	var health map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz body %v", health)
	}
	if int(health["solvers"].(float64)) != len(solver.List()) {
		t.Errorf("healthz solver count %v, want %d", health["solvers"], len(solver.List()))
	}

	// Two solves (one warm) and a 404, then check the counters.
	req := SolveRequest{Solver: "multiple-best", Instance: in}
	postJSON(t, ts.URL+"/v1/solve", req)
	postJSON(t, ts.URL+"/v1/solve", req)
	postJSON(t, ts.URL+"/v1/solve", SolveRequest{Solver: "nope", Instance: in})

	var metrics struct {
		MetricsSnapshot
		Cache CacheStats `json:"cache"`
	}
	if resp := getJSON(t, ts.URL+"/metrics", &metrics); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if got := metrics.Requests["/v1/solve"]; got != 3 {
		t.Errorf("solve request count %d, want 3", got)
	}
	if got := metrics.Statuses["4xx"]; got != 1 {
		t.Errorf("4xx count %d, want 1", got)
	}
	if metrics.Cache.Hits != 1 || metrics.Cache.Misses != 1 {
		t.Errorf("metrics cache block %+v, want 1 hit / 1 miss", metrics.Cache)
	}
	if metrics.Cache.HitRate != 0.5 {
		t.Errorf("hit rate %v, want 0.5", metrics.Cache.HitRate)
	}
	// The cold solve must appear in the per-solver histogram; the warm
	// one must not.
	ls, ok := metrics.Solvers["multiple-best"]
	if !ok || ls.Count != 1 {
		t.Errorf("latency histogram %+v, want exactly 1 recorded solve", ls)
	}
	var inBuckets uint64
	for _, c := range ls.Buckets {
		inBuckets += c
	}
	if inBuckets != 1 {
		t.Errorf("histogram buckets sum to %d, want 1: %v", inBuckets, ls.Buckets)
	}
}

// TestConcurrentSolves hammers one instance from many goroutines to
// exercise the cache under the race detector.
func TestConcurrentSolves(t *testing.T) {
	in := goldenInstance(t, "wide_nod.json")
	srv, ts := newTestServer(t, Options{CacheSize: 4})
	req := SolveRequest{Solver: "multiple-greedy", Instance: in}
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, body := func() (*http.Response, []byte) {
				data, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(data))
				if err != nil {
					errs <- err
					return nil, nil
				}
				defer resp.Body.Close()
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				return resp, buf.Bytes()
			}()
			if resp == nil {
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := srv.CacheStats()
	if st.Hits+st.Misses != n {
		t.Errorf("lookup count %d, want %d", st.Hits+st.Misses, n)
	}
	// After the storm settles the entry is resident: one more request
	// must be a deterministic hit.
	_, body := postJSON(t, ts.URL+"/v1/solve", req)
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Error("follow-up request after concurrent load not served from cache")
	}
}
