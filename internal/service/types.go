package service

import (
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// Wire types of the HTTP/JSON API. Every response body is one of the
// structs below or ErrorResponse; instances and solutions reuse the
// canonical core JSON encodings, so anything cmd/treegen emits can be
// posted verbatim.

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Solver is a registry name (see GET /v1/solvers).
	Solver string `json:"solver"`
	// Instance is the problem instance in the core wire format.
	Instance *core.Instance `json:"instance"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	Solver string `json:"solver"`
	Policy string `json:"policy"`
	// Hash is the canonical instance hash (the cache key, minus the
	// solver name).
	Hash     string `json:"hash"`
	Replicas int    `json:"replicas"`
	// LowerBound is core.LowerBound of the instance; Gap is
	// (Replicas − LowerBound) / LowerBound, 0 when the bound is met.
	LowerBound int     `json:"lower_bound"`
	Gap        float64 `json:"gap"`
	// Verified is always true in a 200 response: solutions are checked
	// with core.Verify before they are returned or cached.
	Verified bool `json:"verified"`
	// Cached reports whether the solution came from the result cache.
	Cached    bool           `json:"cached"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Solution  *core.Solution `json:"solution"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Tasks []BatchTask `json:"tasks"`
	// Workers bounds the job's solver pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds each task (0 = no per-task timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchTask is one (solver, instance) pair of a batch job.
type BatchTask struct {
	// ID is an optional caller label echoed in the task's result.
	ID       string         `json:"id,omitempty"`
	Solver   string         `json:"solver"`
	Instance *core.Instance `json:"instance"`
}

// BatchAccepted is the 202 body of POST /v1/batch.
type BatchAccepted struct {
	JobID string `json:"job_id"`
	// StatusURL is the polling endpoint for the job.
	StatusURL string `json:"status_url"`
	Tasks     int    `json:"tasks"`
}

// Job statuses, in lifecycle order.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
)

// JobResponse is the body of GET /v1/jobs/{id}.
type JobResponse struct {
	JobID  string `json:"job_id"`
	Status string `json:"status"`
	// Results and Stats are present once Status is "done".
	Results []TaskResult `json:"results,omitempty"`
	Stats   *JobStats    `json:"stats,omitempty"`
}

// TaskResult is the outcome of one batch task.
type TaskResult struct {
	ID       string         `json:"id,omitempty"`
	Solver   string         `json:"solver"`
	OK       bool           `json:"ok"`
	Error    string         `json:"error,omitempty"`
	Replicas int            `json:"replicas,omitempty"`
	Cached   bool           `json:"cached,omitempty"`
	Solution *core.Solution `json:"solution,omitempty"`
}

// JobStats summarises a finished job (mirrors solver.Stats).
type JobStats struct {
	Tasks    int     `json:"tasks"`
	Solved   int     `json:"solved"`
	Failed   int     `json:"failed"`
	Skipped  int     `json:"skipped"`
	Replicas int     `json:"replicas"`
	WallMS   float64 `json:"wall_ms"`
	WorkMS   float64 `json:"work_ms"`
}

// SolverInfo describes one registered solver in GET /v1/solvers.
type SolverInfo struct {
	Name   string `json:"name"`
	Policy string `json:"policy"`
	Exact  bool   `json:"exact"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

func jobStats(st solver.Stats) *JobStats {
	return &JobStats{
		Tasks:    st.Tasks,
		Solved:   st.Solved,
		Failed:   st.Failed,
		Skipped:  st.Skipped,
		Replicas: st.Replicas,
		WallMS:   durMS(st.Elapsed),
		WorkMS:   durMS(st.Work),
	}
}

func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
