package service

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

func testSolution(replica tree.NodeID) *core.Solution {
	sol := &core.Solution{}
	sol.AddReplica(replica)
	sol.Assign(replica, replica, 1)
	sol.Normalize()
	return sol
}

// testReport wraps a solution as the cache's currency, with the
// policy and bound the tests assert on.
func testReport(replica tree.NodeID, pol core.Policy, lb int) solver.Report {
	return solver.Report{Solution: testSolution(replica), Policy: pol, LowerBound: lb}
}

func TestCacheHitMissAndEviction(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get("s", "h1"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("s", "h1", testReport(1, core.Single, 1))
	c.Put("s", "h2", testReport(2, core.Multiple, 2))

	rep, ok := c.Get("s", "h1")
	if !ok || rep.Policy != core.Single || rep.LowerBound != 1 || rep.Solution.NumReplicas() != 1 {
		t.Fatalf("h1 lookup: ok=%v report=%+v", ok, rep)
	}

	// h1 was just used, so inserting h3 must evict h2.
	c.Put("s", "h3", testReport(3, core.Single, 3))
	if _, ok := c.Get("s", "h2"); ok {
		t.Error("LRU kept the least recently used entry")
	}
	if _, ok := c.Get("s", "h1"); !ok {
		t.Error("LRU evicted the most recently used entry")
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions %d, want 1", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats %+v, want 2 hits / 2 misses", st)
	}
}

func TestCacheSolverNamespaces(t *testing.T) {
	c := NewCache(8)
	c.Put("a", "h", testReport(1, core.Single, 1))
	if _, ok := c.Get("b", "h"); ok {
		t.Fatal("solver names share a cache line")
	}
}

// TestCacheKeepsReportMetadata pins that a hit returns the full
// report block — proof, work and winning engine survive the cache, so
// /v2 responses do not degrade when warm.
func TestCacheKeepsReportMetadata(t *testing.T) {
	c := NewCache(8)
	rep := testReport(1, core.Multiple, 1)
	rep.Proved = true
	rep.Work = 42
	rep.Engine = "exact-multiple"
	rep.Elapsed = time.Second // per-request; must not be cached
	c.Put("s", "h", rep)
	got, ok := c.Get("s", "h")
	if !ok {
		t.Fatal("miss")
	}
	if !got.Proved || got.Work != 42 || got.Engine != "exact-multiple" {
		t.Errorf("report metadata lost in the cache: %+v", got)
	}
	if got.Elapsed != 0 {
		t.Errorf("cached report kept a stale elapsed time %v", got.Elapsed)
	}
}

func TestCacheClonesEntries(t *testing.T) {
	c := NewCache(8)
	orig := testReport(1, core.Single, 1)
	c.Put("s", "h", orig)
	orig.Solution.Replicas[0] = 99 // mutating the inserted value must not reach the cache

	got, ok := c.Get("s", "h")
	if !ok {
		t.Fatal("miss")
	}
	if got.Solution.Replicas[0] != 1 {
		t.Error("cache aliased the inserted solution")
	}
	got.Solution.Replicas[0] = 42 // mutating a returned value must not either
	again, _ := c.Get("s", "h")
	if again.Solution.Replicas[0] != 1 {
		t.Error("cache handed out aliased state")
	}
}

func TestCacheZeroCapacityDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("s", "h", testReport(1, core.Single, 1))
	if _, ok := c.Get("s", "h"); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatalf("len %d, want 0", c.Len())
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("s", "h", testReport(1, core.Single, 1))
	c.Put("s", "h", testReport(2, core.Multiple, 2))
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	rep, ok := c.Get("s", "h")
	if !ok || rep.Policy != core.Multiple || rep.LowerBound != 2 || rep.Solution.Replicas[0] != 2 {
		t.Fatalf("refresh lost: ok=%v report=%+v", ok, rep)
	}
}

func TestCacheBoundUnderChurn(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 100; i++ {
		c.Put("s", fmt.Sprintf("h%d", i), testReport(tree.NodeID(i), core.Single, 1))
	}
	if c.Len() != 4 {
		t.Fatalf("len %d, want capacity 4", c.Len())
	}
	if st := c.Stats(); st.Evictions != 96 {
		t.Errorf("evictions %d, want 96", st.Evictions)
	}
}

// TestCachePeekLeavesAccountingAlone pins the peer-probe contract:
// Peek neither counts hits/misses nor refreshes LRU order, so a fleet
// worker probing this cache as tier 2 cannot distort its stats or
// keep entries artificially hot.
func TestCachePeekLeavesAccountingAlone(t *testing.T) {
	c := NewCache(2)
	c.Put("s", "h1", testReport(1, core.Single, 1))
	c.Put("s", "h2", testReport(2, core.Multiple, 2))
	rep, ok := c.Peek("s", "h1")
	if !ok || rep.Solution.Replicas[0] != 1 {
		t.Fatalf("peek: ok=%v report=%+v", ok, rep)
	}
	rep.Solution.Replicas[0] = 99 // peeked values must be private clones
	if again, _ := c.Peek("s", "h1"); again.Solution.Replicas[0] != 1 {
		t.Error("Peek handed out aliased state")
	}
	if _, ok := c.Peek("s", "h3"); ok {
		t.Error("Peek hit a missing key")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Peek touched the counters: %+v", st)
	}
	// h1 was only peeked, not used: inserting h3 must still evict it
	// (h2 is the most recently *put*).
	c.Put("s", "h3", testReport(3, core.Single, 3))
	if _, ok := c.Peek("s", "h1"); ok {
		t.Error("Peek refreshed LRU order")
	}
}

// TestCacheMostRecent pins the drain contract: entries come back in
// MRU order, bounded by n, cloned out.
func TestCacheMostRecent(t *testing.T) {
	c := NewCache(8)
	c.Put("s", "h1", testReport(1, core.Single, 1))
	c.Put("s", "h2", testReport(2, core.Single, 2))
	c.Put("s", "h3", testReport(3, core.Single, 3))
	c.Get("s", "h1") // h1 becomes the hottest
	got := c.MostRecent(2)
	if len(got) != 2 || got[0].Key != "h1" || got[1].Key != "h3" {
		t.Fatalf("MostRecent(2) = %+v, want h1 then h3", got)
	}
	if got[0].Solver != "s" || got[0].Report.Solution.NumReplicas() != 1 {
		t.Errorf("entry payload wrong: %+v", got[0])
	}
	got[0].Report.Solution.Replicas[0] = 99
	if rep, _ := c.Peek("s", "h1"); rep.Solution.Replicas[0] != 1 {
		t.Error("MostRecent aliased cached state")
	}
	if all := c.MostRecent(0); len(all) != 3 {
		t.Errorf("MostRecent(0) returned %d entries, want all 3", len(all))
	}
}

// TestServerCacheInjection pins the Options.Cache seam: a custom
// ResultCache sees every solve's Get and Put with the same keys and
// accounting the default LRU would.
func TestServerCacheInjection(t *testing.T) {
	inner := NewCache(8)
	rc := &recordingCache{Cache: inner}
	srv, ts := newTestServer(t, Options{Cache: rc})
	in := goldenInstance(t, "binary_nod_1.json")
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Solver: "single-gen", Instance: in})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	if rc.gets.Load() != 2 || rc.puts.Load() != 1 {
		t.Errorf("injected cache saw %d gets / %d puts, want 2 / 1", rc.gets.Load(), rc.puts.Load())
	}
	if st := srv.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("injected cache accounting diverged: %+v", st)
	}
}

// recordingCache counts the server's traffic through the ResultCache
// seam while delegating to the real LRU.
type recordingCache struct {
	*Cache
	gets, puts atomic.Uint64
}

func (r *recordingCache) Get(solverName, key string) (solver.Report, bool) {
	r.gets.Add(1)
	return r.Cache.Get(solverName, key)
}

func (r *recordingCache) Put(solverName, key string, rep solver.Report) {
	r.puts.Add(1)
	r.Cache.Put(solverName, key, rep)
}

func TestMetricsHistogram(t *testing.T) {
	m := NewMetrics()
	m.Solve("s", 50*time.Microsecond) // → le_100µs
	m.Solve("s", 5*time.Millisecond)  // → le_10ms
	m.Solve("s", 2*time.Second)       // → le_inf
	snap := m.Snapshot()
	ls := snap.Solvers["s"]
	if ls.Count != 3 {
		t.Fatalf("count %d, want 3", ls.Count)
	}
	labels := BucketLabels()
	wantBuckets := map[string]uint64{labels[0]: 1, labels[2]: 1, labels[len(labels)-1]: 1}
	for label, want := range wantBuckets {
		if ls.Buckets[label] != want {
			t.Errorf("bucket %s = %d, want %d (all: %v)", label, ls.Buckets[label], want, ls.Buckets)
		}
	}
	wantSum := durMS(50*time.Microsecond + 5*time.Millisecond + 2*time.Second)
	if ls.SumMS != wantSum {
		t.Errorf("sum %v ms, want %v", ls.SumMS, wantSum)
	}
	if ls.MeanMS != wantSum/3 {
		t.Errorf("mean %v ms, want %v", ls.MeanMS, wantSum/3)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := NewCache(1024)
	c.Put("s", "h", testReport(1, core.Single, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("s", "h"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkCachePutEvict(b *testing.B) {
	c := NewCache(64)
	rep := testReport(1, core.Single, 1)
	keys := make([]string, 128)
	for i := range keys {
		keys[i] = fmt.Sprintf("h%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put("s", keys[i%len(keys)], rep)
	}
}

func BenchmarkMetricsSolveRecord(b *testing.B) {
	m := NewMetrics()
	for i := 0; i < b.N; i++ {
		m.Solve("s", time.Duration(i%2000)*time.Microsecond)
	}
}

func TestMetricsStatusClasses(t *testing.T) {
	m := NewMetrics()
	m.Request("/x", 200)
	m.Request("/x", 204)
	m.Request("/x", 404)
	m.Request("/x", 500)
	snap := m.Snapshot()
	if snap.Requests["/x"] != 4 {
		t.Errorf("requests %v", snap.Requests)
	}
	want := map[string]uint64{"2xx": 2, "4xx": 1, "5xx": 1}
	for class, n := range want {
		if snap.Statuses[class] != n {
			t.Errorf("status class %s = %d, want %d", class, snap.Statuses[class], n)
		}
	}
}
