package service

import (
	"encoding/json"
	"math/bits"
	"net/http"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// pollJobV2 polls GET /v2/jobs/{id} until the job settles.
func pollJobV2(t testing.TB, baseURL, id string) JobResponseV2 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var resp JobResponseV2
		if r := getJSON(t, baseURL+"/v2/jobs/"+id, &resp); r.StatusCode != http.StatusOK {
			t.Fatalf("job poll status %d", r.StatusCode)
		}
		if resp.Status == JobDone {
			return resp
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not settle within 10s")
	return JobResponseV2{}
}

// TestSolveCertificateV2: "certificate": true on /v2/solve returns an
// offline-verifiable certificate; a cache-hit re-solve returns
// byte-identical certificate bytes (the fleet's gossip/cache paths
// ride on this); omitting the flag omits the certificate.
func TestSolveCertificateV2(t *testing.T) {
	in := goldenInstance(t, "binary_dist_1.json")
	_, ts := newTestServer(t, Options{CacheSize: 8})

	var fresh SolveResponseV2
	resp, body := postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{
		Solver: solver.ExactMultiple, Instance: in, Certificate: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Certificate == nil {
		t.Fatal("certificate requested but absent")
	}
	if err := fresh.Certificate.VerifyAgainst(in); err != nil {
		t.Fatalf("served certificate rejected offline: %v", err)
	}
	if fresh.Certificate.InstanceHash != fresh.Hash {
		t.Fatalf("certificate commits to %s, response hash is %s", fresh.Certificate.InstanceHash, fresh.Hash)
	}
	if fresh.Certificate.Optimality == nil {
		t.Fatal("exact solve carried no optimality attestation")
	}

	// Cache hit: same certificate bytes.
	var cached SolveResponseV2
	resp, body = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{
		Solver: solver.ExactMultiple, Instance: in, Certificate: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if !cached.Cached {
		t.Fatal("second solve missed the cache")
	}
	h1, err := fresh.Certificate.HashHex()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := cached.Certificate.HashHex()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("cached solve issued different certificate bytes: %s vs %s", h1, h2)
	}

	// No flag, no certificate.
	var plain SolveResponseV2
	_, body = postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Solver: solver.ExactMultiple, Instance: in})
	if err := json.Unmarshal(body, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.Certificate != nil {
		t.Fatal("certificate present without being requested")
	}
}

// TestBatchCertificatesEndToEnd drives the whole Merkle flow over the
// service: a certificates-enabled batch settles with a certificate
// root, each task's proof endpoint serves a certificate + inclusion
// proof that verifies offline, tasks are addressable by ID and by
// index, and the proof is exactly ⌈log₂ n⌉ hashes.
func TestBatchCertificatesEndToEnd(t *testing.T) {
	files := []string{
		"binary_nod_1.json", "binary_nod_2.json", "binary_dist_1.json",
		"binary_dist_2.json", "gadget_fig4.json", "wide_nod.json", "caterpillar_nod.json",
	}
	_, ts := newTestServer(t, Options{CacheSize: 64})
	req := BatchRequestV2{Certificates: true}
	for _, f := range files {
		req.Tasks = append(req.Tasks, BatchTaskV2{
			ID: f, Solver: "auto", Instance: goldenInstance(t, f),
		})
	}
	resp, body := postJSON(t, ts.URL+"/v2/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	done := pollJobV2(t, ts.URL, acc.JobID)
	if done.CertificateRoot == "" {
		t.Fatal("settled certificates-enabled job has no certificate root")
	}
	wantProof := bits.Len(uint(len(files) - 1)) // ⌈log₂ n⌉

	for i, f := range files {
		in := goldenInstance(t, f)
		// Address by task ID.
		var pr ProofResponseV2
		if r := getJSON(t, ts.URL+"/v2/jobs/"+acc.JobID+"/proof/"+f, &pr); r.StatusCode != http.StatusOK {
			t.Fatalf("%s: proof status %d", f, r.StatusCode)
		}
		if pr.TaskIndex != i || pr.TaskID != f || pr.CertificateRoot != done.CertificateRoot {
			t.Fatalf("%s: proof document misaddressed: %+v", f, pr)
		}
		if len(pr.Proof.Siblings) != wantProof {
			t.Fatalf("%s: proof has %d hashes, want ⌈log₂ %d⌉ = %d", f, len(pr.Proof.Siblings), len(files), wantProof)
		}
		if err := pr.Certificate.VerifyAgainst(in); err != nil {
			t.Fatalf("%s: certificate rejected offline: %v", f, err)
		}
		if err := pr.Certificate.VerifyInclusionOf(done.CertificateRoot, pr.Proof); err != nil {
			t.Fatalf("%s: inclusion proof rejected: %v", f, err)
		}
		leaf, err := pr.Certificate.HashHex()
		if err != nil {
			t.Fatal(err)
		}
		if leaf != pr.LeafHash {
			t.Fatalf("%s: served leaf hash %s, recomputed %s", f, pr.LeafHash, leaf)
		}
	}

	// Address by numeric index: must serve the same certificate.
	var byIdx ProofResponseV2
	if r := getJSON(t, ts.URL+"/v2/jobs/"+acc.JobID+"/proof/2", &byIdx); r.StatusCode != http.StatusOK {
		t.Fatalf("proof-by-index status %d", r.StatusCode)
	}
	if byIdx.TaskID != files[2] || byIdx.TaskIndex != 2 {
		t.Fatalf("proof-by-index resolved to %q/%d, want %q/2", byIdx.TaskID, byIdx.TaskIndex, files[2])
	}
}

// TestProofProblems pins the RFC 7807 error surface of the proof
// endpoint: unknown job, certificates-disabled job, unknown task, and
// failed task (no certificate).
func TestProofProblems(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	// An infeasible task: Single policy with a request rate above W.
	infeasible := &core.Instance{Tree: in.Tree, W: 1, DMax: core.NoDistance}
	_, ts := newTestServer(t, Options{CacheSize: 8})

	fetch := func(url string) (int, Problem) {
		t.Helper()
		var p Problem
		r := getJSON(t, url, &p)
		return r.StatusCode, p
	}

	// Unknown job.
	status, p := fetch(ts.URL + "/v2/jobs/job-999999/proof/0")
	if status != http.StatusNotFound || p.Type != ProblemUnknownJob {
		t.Fatalf("unknown job: status %d type %s", status, p.Type)
	}

	// Certificates-disabled job.
	resp, body := postJSON(t, ts.URL+"/v2/batch", BatchRequestV2{
		Tasks: []BatchTaskV2{{ID: "a", Solver: "auto", Instance: in}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var plainJob BatchAccepted
	if err := json.Unmarshal(body, &plainJob); err != nil {
		t.Fatal(err)
	}
	pollJobV2(t, ts.URL, plainJob.JobID)
	status, p = fetch(ts.URL + "/v2/jobs/" + plainJob.JobID + "/proof/a")
	if status != http.StatusConflict || p.Type != ProblemCertsDisabled {
		t.Fatalf("certs-disabled: status %d type %s", status, p.Type)
	}

	// Certificates-enabled job with one good and one failing task.
	resp, body = postJSON(t, ts.URL+"/v2/batch", BatchRequestV2{
		Certificates: true,
		Tasks: []BatchTaskV2{
			{ID: "good", Solver: "auto", Instance: in},
			{ID: "bad", Solver: "single-gen", Policy: "single", Instance: infeasible},
		},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var certJob BatchAccepted
	if err := json.Unmarshal(body, &certJob); err != nil {
		t.Fatal(err)
	}
	done := pollJobV2(t, ts.URL, certJob.JobID)
	if done.CertificateRoot == "" {
		t.Fatal("job with one successful task has no certificate root")
	}
	if done.Results[1].OK {
		t.Fatal("infeasible task unexpectedly succeeded; pick a harder failure")
	}

	// Unknown task name.
	status, p = fetch(ts.URL + "/v2/jobs/" + certJob.JobID + "/proof/nonexistent")
	if status != http.StatusNotFound || p.Type != ProblemUnknownTask {
		t.Fatalf("unknown task: status %d type %s", status, p.Type)
	}
	// Failed task: addressable, but has no certificate.
	status, p = fetch(ts.URL + "/v2/jobs/" + certJob.JobID + "/proof/bad")
	if status != http.StatusNotFound || p.Type != ProblemUnknownTask {
		t.Fatalf("failed task: status %d type %s", status, p.Type)
	}
	// The good task still proves against the root.
	var pr ProofResponseV2
	if r := getJSON(t, ts.URL+"/v2/jobs/"+certJob.JobID+"/proof/good", &pr); r.StatusCode != http.StatusOK {
		t.Fatalf("good task proof status %d", r.StatusCode)
	}
	if err := pr.Certificate.VerifyInclusionOf(done.CertificateRoot, pr.Proof); err != nil {
		t.Fatalf("good task inclusion rejected: %v", err)
	}
	if len(pr.Proof.Siblings) != 0 {
		// One successful leaf → depth-0 tree → empty proof.
		t.Fatalf("single-leaf proof has %d siblings, want 0", len(pr.Proof.Siblings))
	}
}

// TestCertMetricsCounters: /metrics reports certificates issued and
// proofs served; the counters move with the flows above.
func TestCertMetricsCounters(t *testing.T) {
	in := goldenInstance(t, "binary_nod_1.json")
	srv, ts := newTestServer(t, Options{CacheSize: 8})

	postJSON(t, ts.URL+"/v2/solve", SolveRequestV2{Solver: "auto", Instance: in, Certificate: true})
	resp, body := postJSON(t, ts.URL+"/v2/batch", BatchRequestV2{
		Certificates: true,
		Tasks:        []BatchTaskV2{{ID: "x", Solver: "auto", Instance: in}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	pollJobV2(t, ts.URL, acc.JobID)
	var pr ProofResponseV2
	if r := getJSON(t, ts.URL+"/v2/jobs/"+acc.JobID+"/proof/x", &pr); r.StatusCode != http.StatusOK {
		t.Fatalf("proof status %d", r.StatusCode)
	}

	certs := srv.MetricsSnapshot().Certs
	if certs.Issued < 2 {
		t.Fatalf("certs issued = %d, want ≥ 2 (one inline, one at settle)", certs.Issued)
	}
	if certs.ProofsServed != 1 {
		t.Fatalf("proofs served = %d, want 1", certs.ProofsServed)
	}
	if certs.Failures != 0 {
		t.Fatalf("verification failures = %d, want 0", certs.Failures)
	}

	// The scrape endpoint carries the same block.
	var metricsDoc struct {
		Certs CertMetrics `json:"certs"`
	}
	if r := getJSON(t, ts.URL+"/metrics", &metricsDoc); r.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", r.StatusCode)
	}
	if metricsDoc.Certs != certs {
		t.Fatalf("/metrics certs %+v != snapshot %+v", metricsDoc.Certs, certs)
	}
}

// TestJobSeamV1V2Parity pins the job seam audited for this change:
// one job polled through both API versions must agree on outcomes,
// and the v2 rendering must preserve the report-only fields (Proved,
// Work, LowerBound) that v1's adapter shape cannot carry — they are
// rendered from the full solver.Report at settle, not re-derived from
// the v1 result.
func TestJobSeamV1V2Parity(t *testing.T) {
	in := goldenInstance(t, "binary_dist_1.json")
	_, ts := newTestServer(t, Options{CacheSize: 8})
	resp, body := postJSON(t, ts.URL+"/v2/batch", BatchRequestV2{
		Tasks: []BatchTaskV2{{ID: "t0", Solver: solver.ExactMultiple, Instance: in}},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	v2 := pollJobV2(t, ts.URL, acc.JobID)

	var v1 JobResponse
	if r := getJSON(t, ts.URL+"/v1/jobs/"+acc.JobID, &v1); r.StatusCode != http.StatusOK {
		t.Fatalf("v1 poll status %d", r.StatusCode)
	}
	if v1.Status != JobDone || len(v1.Results) != 1 || len(v2.Results) != 1 {
		t.Fatalf("both renderings must settle with one result: v1=%+v v2=%+v", v1, v2)
	}
	r1, r2 := v1.Results[0], v2.Results[0]
	if !r1.OK || !r2.OK {
		t.Fatalf("task failed: v1=%q v2=%q", r1.Error, r2.Error)
	}
	if r1.Replicas != r2.Replicas {
		t.Fatalf("replica counts disagree across versions: v1=%d v2=%d", r1.Replicas, r2.Replicas)
	}
	if got, want := len(r1.Solution.Replicas), len(r2.Solution.Replicas); got != want {
		t.Fatalf("solutions disagree across versions: v1=%d v2=%d replicas", got, want)
	}
	// The report-only fields must survive in v2 (exact-multiple proves
	// optimality and tracks work on this instance).
	if !r2.Proved {
		t.Fatal("v2 job rendering dropped Proved")
	}
	if r2.Work <= 0 {
		t.Fatalf("v2 job rendering dropped Work (got %d)", r2.Work)
	}
	if r2.LowerBound <= 0 {
		t.Fatalf("v2 job rendering dropped LowerBound (got %d)", r2.LowerBound)
	}
}
