package service

import (
	"container/list"
	"sync"

	"replicatree/internal/solver"
)

// ResultCache is the server's result-cache seam: every cached-or-
// fresh solve goes through exactly one Get (before solving) and one
// Put (after verification), so alternative implementations — such as
// the fleet's two-tier distributed cache — plug in via Options.Cache
// without forking the solve path or its accounting. Implementations
// must be safe for concurrent use and must never alias stored
// solutions to callers (the local LRU deep-copies on both sides).
type ResultCache interface {
	// Get returns the cached report for (solverName, key), where key
	// is the canonical instance hash plus any request-variant suffix.
	Get(solverName, key string) (solver.Report, bool)
	// Put inserts a verified solve report under (solverName, key).
	Put(solverName, key string, rep solver.Report)
	// Stats reports cache effectiveness for /metrics.
	Stats() CacheStats
}

// Cache is a size-bounded LRU over solved placements, keyed by
// (solver name, canonical instance hash). It is the service's hot
// path: a warm key is served from memory instead of re-solving.
//
// Entries are immutable once inserted — Put stores a deep copy of the
// solution and Get hands out a private clone, so callers can never
// alias cached state. A capacity of 0 disables caching entirely
// (every Get misses, every Put is dropped), which keeps the cold path
// exercisable in benchmarks and lets operators run cache-less.
type Cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element

	hits, misses, evictions uint64
}

type cacheKey struct {
	solver string
	hash   string
}

// cacheEntry is the cached outcome of one verified solve: the full
// report (solution, policy, bound, optimality proof, work) minus the
// timing, which is per-request.
type cacheEntry struct {
	key    cacheKey
	report solver.Report
}

var _ ResultCache = (*Cache)(nil)

// NewCache returns an LRU cache bounded to capacity entries.
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached report for (solverName, hash) and marks it
// most recently used. The returned report carries a private clone of
// the solution, taken after releasing the lock — entries are
// immutable once inserted, so concurrent hits don't serialize behind
// the O(n) copy.
func (c *Cache) Get(solverName, hash string) (solver.Report, bool) {
	c.mu.Lock()
	el, ok := c.m[cacheKey{solverName, hash}]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return solver.Report{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()
	rep := e.report
	rep.Solution = rep.Solution.Clone()
	return rep, true
}

// Put inserts a verified solve report, evicting the least recently
// used entry when the cache is full. Re-putting an existing key
// refreshes its entry.
func (c *Cache) Put(solverName, hash string, rep solver.Report) {
	if c.cap == 0 || rep.Solution == nil {
		return
	}
	key := cacheKey{solverName, hash}
	rep.Solution = rep.Solution.Clone()
	rep.Elapsed = 0 // timing is per-request, not part of the cached outcome
	entry := &cacheEntry{key: key, report: rep}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value = entry
		return
	}
	c.m[key] = c.ll.PushFront(entry)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Peek returns the cached report for (solverName, key) without
// touching the hit/miss counters or the LRU order. It exists for
// cache *peers*: a fleet worker probing another worker's local tier
// must not distort that worker's own effectiveness accounting or
// keep entries artificially hot.
func (c *Cache) Peek(solverName, key string) (solver.Report, bool) {
	c.mu.Lock()
	el, ok := c.m[cacheKey{solverName, key}]
	if !ok {
		c.mu.Unlock()
		return solver.Report{}, false
	}
	e := el.Value.(*cacheEntry)
	c.mu.Unlock()
	rep := e.report
	rep.Solution = rep.Solution.Clone()
	return rep, true
}

// CachedEntry is one exported cache line: the key pair plus a private
// clone of the cached report.
type CachedEntry struct {
	Solver string
	Key    string
	Report solver.Report
}

// MostRecent returns up to n entries in most-recently-used order —
// the cache's working set. A draining fleet worker hands these to its
// ring successors so its keyspace stays warm after it leaves; n ≤ 0
// returns every entry. Reports are cloned out.
func (c *Cache) MostRecent(n int) []CachedEntry {
	c.mu.Lock()
	if n <= 0 || n > c.ll.Len() {
		n = c.ll.Len()
	}
	entries := make([]CachedEntry, 0, n)
	for el := c.ll.Front(); el != nil && len(entries) < n; el = el.Next() {
		e := el.Value.(*cacheEntry)
		entries = append(entries, CachedEntry{Solver: e.key.solver, Key: e.key.hash, Report: e.report})
	}
	c.mu.Unlock()
	for i := range entries {
		entries[i].Report.Solution = entries[i].Report.Solution.Clone()
	}
	return entries
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats returns the cache counters. HitRate is hits/(hits+misses),
// 0 before any lookup.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
