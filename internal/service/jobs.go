package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"replicatree/internal/cert"
	"replicatree/internal/solver"
)

// JobManager runs asynchronous batch jobs: POST /v{1,2}/batch
// enqueues a job, a bounded pool of runner goroutines drains the
// queue through solver.Batch, and GET /v{1,2}/jobs/{id} polls the
// outcome. Jobs store the raw solver results; each API version
// renders its own wire shape at poll time, so one job is pollable
// from both surfaces. The queue is bounded too — a full queue rejects
// the submit (the server turns that into 503) instead of buffering
// unboundedly.
type JobManager struct {
	mu     sync.Mutex
	jobs   map[string]*job
	done   []string // job IDs in completion order, for retention pruning
	retain int
	nextID uint64
	closed bool

	queue  chan *job
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	// metrics, when set (the server wires its own in), receives the
	// certificate counters from job settles.
	metrics *Metrics
}

type job struct {
	id     string
	tasks  []solver.Task
	opt    solver.Options
	status string
	// Both wire renderings are produced once, when the batch settles
	// (outside the manager lock), so polls are O(1) copies and a done
	// job's responses are frozen — in particular the per-task cached
	// flag is snapshotted at settle time and cannot flip if an
	// abandoned timed-out solve finishes later.
	resultsV1 []TaskResult
	resultsV2 []TaskResultV2
	stats     *JobStats
	// Certificate state, built once at settle when the submit asked
	// for certificates: per-task certs (nil for failed tasks), the
	// Merkle tree over the successful tasks' leaf hashes (task order)
	// and each task's leaf index (-1 for failed tasks). All frozen
	// after settle, so proof serving needs no recomputation.
	certsOn bool
	certs   []*cert.Certificate
	merkle  *cert.Tree
	leafIdx []int
}

// cachedReporter lets job results report cache hits; the server's
// caching engine wrapper implements it.
type cachedReporter interface {
	LastCached() bool
}

// NewJobManager starts workers runner goroutines over a queue of
// queueCap pending jobs, retaining at most retain finished jobs for
// polling (oldest finished jobs are pruned first; 0 means a default
// of 1024).
func NewJobManager(workers, queueCap, retain int) *JobManager {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if retain <= 0 {
		retain = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		jobs:   make(map[string]*job),
		retain: retain,
		queue:  make(chan *job, queueCap),
		ctx:    ctx,
		cancel: cancel,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Submit enqueues a job over the given tasks and returns its ID.
// certs requests per-task placement certificates, Merkle-batched at
// settle. It fails when the queue is full or the manager is closed.
func (m *JobManager) Submit(tasks []solver.Task, opt solver.Options, certs bool) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("service: job manager is shut down")
	}
	m.nextID++
	j := &job{id: fmt.Sprintf("job-%06d", m.nextID), tasks: tasks, opt: opt, status: JobQueued, certsOn: certs}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return "", fmt.Errorf("service: job queue full (%d pending)", cap(m.queue))
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	return j.id, nil
}

// Get returns the v1 rendering of the job, or false if the ID is
// unknown (never submitted, or pruned after retention).
func (m *JobManager) Get(id string) (JobResponse, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobResponse{}, false
	}
	resp := JobResponse{JobID: j.id, Status: j.status, Stats: j.stats}
	if j.resultsV1 != nil {
		resp.Results = append([]TaskResult(nil), j.resultsV1...)
	}
	return resp, true
}

// GetV2 returns the v2 rendering of the job — per-task reports with
// the uniform bound/gap/proof metadata — or false for unknown IDs.
func (m *JobManager) GetV2(id string) (JobResponseV2, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobResponseV2{}, false
	}
	resp := JobResponseV2{JobID: j.id, Status: j.status, Stats: j.stats}
	if j.resultsV2 != nil {
		resp.Results = append([]TaskResultV2(nil), j.resultsV2...)
	}
	if j.merkle != nil {
		resp.CertificateRoot = j.merkle.RootHex()
	}
	return resp, true
}

// Proof returns the certificate + inclusion proof document for one
// task of a settled certificates-enabled job. task is the task's
// caller-supplied ID, or (as a fallback, when no ID matches) its
// decimal batch index. The error is one of the Problem documents the
// /v2 proof endpoint serves verbatim.
func (m *JobManager) Proof(id, task string) (ProofResponseV2, *Problem) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		p := problem(ProblemUnknownJob, "unknown job", 404, fmt.Errorf("unknown job %q", id))
		return ProofResponseV2{}, &p
	}
	if !j.certsOn {
		p := problem(ProblemCertsDisabled, "certificates disabled for this job", 409,
			fmt.Errorf("job %q was submitted without \"certificates\": true; re-submit the batch with certificates enabled", id))
		return ProofResponseV2{}, &p
	}
	if j.status != JobDone || j.merkle == nil {
		p := problem(ProblemJobNotSettled, "job has not settled", 409,
			fmt.Errorf("job %q is %s; certificates are built when it settles", id, j.status))
		return ProofResponseV2{}, &p
	}
	idx := -1
	for i, t := range j.tasks {
		if t.ID != "" && t.ID == task {
			idx = i
			break
		}
	}
	if idx == -1 {
		if n, err := strconv.Atoi(task); err == nil && n >= 0 && n < len(j.tasks) {
			idx = n
		}
	}
	if idx == -1 {
		p := problem(ProblemUnknownTask, "unknown task", 404,
			fmt.Errorf("job %q has no task %q (address tasks by their id, or by batch index 0…%d)", id, task, len(j.tasks)-1))
		return ProofResponseV2{}, &p
	}
	if j.certs[idx] == nil {
		p := problem(ProblemUnknownTask, "task has no certificate", 404,
			fmt.Errorf("task %q of job %q failed; no certificate was issued", task, id))
		return ProofResponseV2{}, &p
	}
	proof, err := j.merkle.Proof(j.leafIdx[idx])
	if err != nil {
		p := problem(ProblemCertFailed, "certification failed", 500, err)
		return ProofResponseV2{}, &p
	}
	leaf, err := j.certs[idx].HashHex()
	if err != nil {
		p := problem(ProblemCertFailed, "certification failed", 500, err)
		return ProofResponseV2{}, &p
	}
	return ProofResponseV2{
		JobID:           j.id,
		TaskID:          j.tasks[idx].ID,
		TaskIndex:       idx,
		CertificateRoot: j.merkle.RootHex(),
		Certificate:     j.certs[idx],
		LeafHash:        leaf,
		Proof:           proof,
	}, nil
}

// Close stops accepting jobs, cancels the running ones and waits for
// the runners to exit. Queued-but-unstarted jobs finish in the
// "done" state with every task skipped.
func (m *JobManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

func (m *JobManager) runner() {
	defer m.wg.Done()
	for j := range m.queue {
		m.setStatus(j, JobRunning)
		results, st := solver.Batch(m.ctx, j.tasks, j.opt)
		trs1 := make([]TaskResult, len(results))
		trs2 := make([]TaskResultV2, len(results))
		for i, r := range results {
			trs1[i] = taskResult(r)
			trs2[i] = taskResultV2(r)
		}
		stats := jobStats(st)
		// Certificates are built here, once, outside the manager lock
		// and entirely off the solve path: proofs are then O(log n)
		// table lookups at serve time.
		var (
			certs   []*cert.Certificate
			leafIdx []int
			merkle  *cert.Tree
		)
		if j.certsOn {
			certs, leafIdx, merkle = m.certifyResults(j.tasks, results)
		}
		m.mu.Lock()
		j.resultsV1 = trs1
		j.resultsV2 = trs2
		j.stats = stats
		j.certs = certs
		j.leafIdx = leafIdx
		j.merkle = merkle
		j.status = JobDone
		m.done = append(m.done, j.id)
		for len(m.done) > m.retain {
			delete(m.jobs, m.done[0])
			m.done = m.done[1:]
		}
		m.mu.Unlock()
	}
}

// certifyResults certifies every successful task of a settled batch
// and builds the Merkle tree over the resulting leaf hashes, in task
// order. Failed (or uncertifiable) tasks get a nil certificate and
// leaf index -1; uncertifiable successes additionally count as
// verification failures in the metrics — a served solution that
// cannot be certified is an internal invariant violation.
func (m *JobManager) certifyResults(tasks []solver.Task, results []solver.Result) ([]*cert.Certificate, []int, *cert.Tree) {
	certs := make([]*cert.Certificate, len(results))
	leafIdx := make([]int, len(results))
	leaves := make([][32]byte, 0, len(results))
	issued := 0
	for i, r := range results {
		leafIdx[i] = -1
		if r.Err != nil || r.Report.Solution == nil {
			continue
		}
		rep := r.Report
		c, err := solver.Certify(tasks[i].Request.Instance, &rep)
		if err == nil {
			var leaf [32]byte
			leaf, err = c.Hash()
			if err == nil {
				certs[i] = c
				leafIdx[i] = len(leaves)
				leaves = append(leaves, leaf)
				issued++
				continue
			}
		}
		if m.metrics != nil {
			m.metrics.CertFailure()
		}
	}
	var mt *cert.Tree
	if len(leaves) > 0 {
		// NewTree only errors on zero leaves, which the guard excludes.
		mt, _ = cert.NewTree(leaves)
	}
	if m.metrics != nil && issued > 0 {
		m.metrics.CertIssued(issued)
	}
	return certs, leafIdx, mt
}

func (m *JobManager) setStatus(j *job, status string) {
	m.mu.Lock()
	j.status = status
	m.mu.Unlock()
}

// taskName resolves the display name of a task's engine, covering
// both task forms.
func taskName(t solver.Task) string {
	switch {
	case t.Engine != nil:
		return t.Engine.Name()
	case t.Solver != nil:
		return t.Solver.Name()
	default:
		return ""
	}
}

// taskCached reads the per-task cache flag when the task's engine
// reports one.
func taskCached(t solver.Task) bool {
	if c, ok := t.Engine.(cachedReporter); ok {
		return c.LastCached()
	}
	if c, ok := t.Solver.(cachedReporter); ok {
		return c.LastCached()
	}
	return false
}

func taskResult(r solver.Result) TaskResult {
	tr := TaskResult{ID: r.Task.ID, Solver: taskName(r.Task), Cached: taskCached(r.Task)}
	if r.Err != nil {
		tr.Error = r.Err.Error()
		return tr
	}
	tr.OK = true
	tr.Solution = r.Solution
	if r.Solution != nil {
		tr.Replicas = r.Solution.NumReplicas()
	}
	return tr
}

func taskResultV2(r solver.Result) TaskResultV2 {
	tr := TaskResultV2{
		ID:        r.Task.ID,
		Solver:    taskName(r.Task),
		Cached:    taskCached(r.Task),
		ElapsedMS: durMS(r.Elapsed),
	}
	if r.Err != nil {
		tr.Error = r.Err.Error()
		return tr
	}
	rep := r.Report
	tr.OK = true
	tr.Engine = rep.Engine
	tr.Policy = rep.Policy.String()
	tr.LowerBound = rep.LowerBound
	tr.Gap = rep.Gap
	tr.Work = rep.Work
	tr.Proved = rep.Proved
	tr.Solution = rep.Solution
	if rep.Solution != nil {
		tr.Replicas = rep.Solution.NumReplicas()
	}
	return tr
}
