package service

import (
	"context"
	"fmt"
	"sync"

	"replicatree/internal/solver"
)

// JobManager runs asynchronous batch jobs: POST /v1/batch enqueues a
// job, a bounded pool of runner goroutines drains the queue through
// solver.Batch, and GET /v1/jobs/{id} polls the outcome. The queue is
// bounded too — a full queue rejects the submit (the server turns
// that into 503) instead of buffering unboundedly.
type JobManager struct {
	mu     sync.Mutex
	jobs   map[string]*job
	done   []string // job IDs in completion order, for retention pruning
	retain int
	nextID uint64
	closed bool

	queue  chan *job
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
}

type job struct {
	id      string
	tasks   []solver.Task
	opt     solver.Options
	status  string
	results []TaskResult
	stats   *JobStats
}

// cachedReporter lets job results report cache hits; the server's
// caching solver wrapper implements it.
type cachedReporter interface {
	LastCached() bool
}

// NewJobManager starts workers runner goroutines over a queue of
// queueCap pending jobs, retaining at most retain finished jobs for
// polling (oldest finished jobs are pruned first; 0 means a default
// of 1024).
func NewJobManager(workers, queueCap, retain int) *JobManager {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if retain <= 0 {
		retain = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &JobManager{
		jobs:   make(map[string]*job),
		retain: retain,
		queue:  make(chan *job, queueCap),
		ctx:    ctx,
		cancel: cancel,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m
}

// Submit enqueues a job over the given tasks and returns its ID. It
// fails when the queue is full or the manager is closed.
func (m *JobManager) Submit(tasks []solver.Task, opt solver.Options) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", fmt.Errorf("service: job manager is shut down")
	}
	m.nextID++
	j := &job{id: fmt.Sprintf("job-%06d", m.nextID), tasks: tasks, opt: opt, status: JobQueued}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		return "", fmt.Errorf("service: job queue full (%d pending)", cap(m.queue))
	}
	m.jobs[j.id] = j
	m.mu.Unlock()
	return j.id, nil
}

// Get returns a snapshot of the job, or false if the ID is unknown
// (never submitted, or pruned after retention).
func (m *JobManager) Get(id string) (JobResponse, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobResponse{}, false
	}
	resp := JobResponse{JobID: j.id, Status: j.status, Stats: j.stats}
	if j.results != nil {
		resp.Results = append([]TaskResult(nil), j.results...)
	}
	return resp, true
}

// Close stops accepting jobs, cancels the running ones and waits for
// the runners to exit. Queued-but-unstarted jobs finish in the
// "done" state with every task skipped.
func (m *JobManager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

func (m *JobManager) runner() {
	defer m.wg.Done()
	for j := range m.queue {
		m.setStatus(j, JobRunning)
		results, st := solver.Batch(m.ctx, j.tasks, j.opt)
		trs := make([]TaskResult, len(results))
		for i, r := range results {
			trs[i] = taskResult(r)
		}
		m.mu.Lock()
		j.results = trs
		j.stats = jobStats(st)
		j.status = JobDone
		m.done = append(m.done, j.id)
		for len(m.done) > m.retain {
			delete(m.jobs, m.done[0])
			m.done = m.done[1:]
		}
		m.mu.Unlock()
	}
}

func (m *JobManager) setStatus(j *job, status string) {
	m.mu.Lock()
	j.status = status
	m.mu.Unlock()
}

func taskResult(r solver.Result) TaskResult {
	tr := TaskResult{ID: r.Task.ID}
	if r.Task.Solver != nil {
		tr.Solver = r.Task.Solver.Name()
		if c, ok := r.Task.Solver.(cachedReporter); ok {
			tr.Cached = c.LastCached()
		}
	}
	if r.Err != nil {
		tr.Error = r.Err.Error()
		return tr
	}
	tr.OK = true
	tr.Solution = r.Solution
	if r.Solution != nil {
		tr.Replicas = r.Solution.NumReplicas()
	}
	return tr
}
