package service

import (
	"container/list"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/delta"
	"replicatree/internal/multiple"
	"replicatree/internal/solver"
)

// The /v2/instances surface is the stateful counterpart of /v2/solve:
// a client PUTs an instance once, then streams typed mutations against
// the resulting session and gets back fresh placements plus the churn
// relative to the previous one, without re-uploading or re-solving
// from scratch. Sessions are keyed by the instance's canonical hash
// (the same identity the result cache uses), bounded in number, and
// expire after a TTL of inactivity.
//
//	PUT    /v2/instances/{id}          — create (or replace) a session
//	POST   /v2/instances/{id}/mutate   — apply mutations, re-solve
//	GET    /v2/instances/{id}/solution — current placement (solves on demand)
//	DELETE /v2/instances/{id}          — drop the session

// Instance-session defaults used by cmd/replicad unless overridden.
const (
	// DefaultMaxInstances bounds concurrently live sessions; the least
	// recently used session is evicted when a new PUT would exceed it.
	DefaultMaxInstances = 256
	// DefaultInstanceTTL evicts sessions idle for this long.
	DefaultInstanceTTL = 15 * time.Minute
)

// InstancePutRequest is the body of PUT /v2/instances/{id}.
type InstancePutRequest struct {
	// Solver is a registry name; delta-capable engines additionally
	// honour fail_server mutations.
	Solver string `json:"solver"`
	// Instance is the problem instance; its canonical hash must equal
	// the {id} path element (409 otherwise).
	Instance *core.Instance `json:"instance"`
}

// InstanceDoc describes one live session — the body of a successful
// PUT and the session header of mutate/solution responses.
type InstanceDoc struct {
	ID     string `json:"id"`
	Solver string `json:"solver"`
	Nodes  int    `json:"nodes"`
	W      int64  `json:"w"`
	DMax   int64  `json:"dmax,omitempty"`
	// Solved reports whether the session holds a placement yet.
	Solved bool `json:"solved"`
	// TTLMS is the idle lifetime; each request against the session
	// resets the clock.
	TTLMS float64 `json:"ttl_ms"`
}

// MutateRequest is the body of POST /v2/instances/{id}/mutate: a batch
// of typed mutations, applied in order before one re-solve.
type MutateRequest struct {
	Mutations []delta.Mutation `json:"mutations"`
}

// ChurnDoc is the wire form of multiple.Churn: what changed between
// the previous placement and this one.
type ChurnDoc struct {
	// Added and Removed list replica sites that appeared/disappeared.
	Added   []int32 `json:"added"`
	Removed []int32 `json:"removed"`
	// MovedRequests totals the request volume newly assigned to a
	// different server than before.
	MovedRequests int64 `json:"moved_requests"`
}

func churnDoc(ch *multiple.Churn) *ChurnDoc {
	if ch == nil {
		return nil
	}
	doc := &ChurnDoc{
		Added:         make([]int32, len(ch.Added)),
		Removed:       make([]int32, len(ch.Removed)),
		MovedRequests: ch.MovedRequests,
	}
	for i, id := range ch.Added {
		doc.Added[i] = int32(id)
	}
	for i, id := range ch.Removed {
		doc.Removed[i] = int32(id)
	}
	return doc
}

// InstanceSolveResponse is the body of a successful mutate or solution
// request: the session header plus the placement in the /v2 report
// shape, plus the churn against the session's previous placement.
type InstanceSolveResponse struct {
	Instance   InstanceDoc    `json:"instance"`
	Engine     string         `json:"engine"`
	Policy     string         `json:"policy"`
	Replicas   int            `json:"replicas"`
	LowerBound int            `json:"lower_bound"`
	Gap        float64        `json:"gap"`
	Proved     bool           `json:"proved"`
	ElapsedMS  float64        `json:"elapsed_ms"`
	Churn      *ChurnDoc      `json:"churn,omitempty"`
	Solution   *core.Solution `json:"solution"`
}

// instanceEntry is one live session plus its LRU bookkeeping.
type instanceEntry struct {
	id       string
	session  *delta.Session
	el       *list.Element
	deadline time.Time
}

// instanceStore is the TTL-evicting, size-bounded session registry.
// Lookups refresh both the LRU position and the TTL deadline; a
// background janitor sweeps expired sessions so idle ones release
// their pooled scratch even without traffic.
type instanceStore struct {
	mu   sync.Mutex
	cap  int
	ttl  time.Duration
	ll   *list.List // front = most recently used
	m    map[string]*instanceEntry
	done chan struct{}

	evictions uint64
}

func newInstanceStore(capacity int, ttl time.Duration) *instanceStore {
	if capacity <= 0 {
		capacity = DefaultMaxInstances
	}
	if ttl <= 0 {
		ttl = DefaultInstanceTTL
	}
	st := &instanceStore{
		cap:  capacity,
		ttl:  ttl,
		ll:   list.New(),
		m:    make(map[string]*instanceEntry),
		done: make(chan struct{}),
	}
	go st.janitor()
	return st
}

// janitor sweeps expired sessions. The period is a fraction of the
// TTL so an expired session lingers briefly at most.
func (st *instanceStore) janitor() {
	period := st.ttl / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-st.done:
			return
		case now := <-t.C:
			st.sweep(now)
		}
	}
}

func (st *instanceStore) sweep(now time.Time) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.m {
		if now.After(e.deadline) {
			st.drop(e)
		}
	}
}

// drop removes an entry and releases its session. Caller holds st.mu.
func (st *instanceStore) drop(e *instanceEntry) {
	st.ll.Remove(e.el)
	delete(st.m, e.id)
	e.session.Close()
	st.evictions++
}

// put registers a session under id, replacing any existing session
// with that id and evicting the least recently used session when the
// store is full.
func (st *instanceStore) put(id string, s *delta.Session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if old, ok := st.m[id]; ok {
		st.drop(old)
		st.evictions-- // replacement, not pressure
	}
	e := &instanceEntry{id: id, session: s, deadline: time.Now().Add(st.ttl)}
	e.el = st.ll.PushFront(e)
	st.m[id] = e
	for st.ll.Len() > st.cap {
		st.drop(st.ll.Back().Value.(*instanceEntry))
	}
}

// get returns the live session for id, refreshing its LRU slot and
// TTL deadline. Expired sessions are dropped on contact.
func (st *instanceStore) get(id string) (*delta.Session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return nil, false
	}
	if time.Now().After(e.deadline) {
		st.drop(e)
		return nil, false
	}
	e.deadline = time.Now().Add(st.ttl)
	st.ll.MoveToFront(e.el)
	return e.session, true
}

// remove drops the session for id, reporting whether it existed.
func (st *instanceStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.m[id]
	if !ok {
		return false
	}
	st.drop(e)
	st.evictions--
	return true
}

// close drops every session and stops the janitor.
func (st *instanceStore) close() {
	close(st.done)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.m {
		st.ll.Remove(e.el)
		delete(st.m, e.id)
		e.session.Close()
	}
}

func (st *instanceStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ll.Len()
}

func (s *Server) instanceDoc(sess *delta.Session) InstanceDoc {
	in := sess.Instance()
	_, solved := sess.Report()
	doc := InstanceDoc{
		ID:     sess.ID(),
		Solver: sess.Engine(),
		Nodes:  in.Tree.Len(),
		W:      in.W,
		Solved: solved,
		TTLMS:  durMS(s.instances.ttl),
	}
	if in.DMax != core.NoDistance {
		doc.DMax = in.DMax
	}
	return doc
}

func (s *Server) handleInstancePut(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/instances"
	id := r.PathValue("id")
	var req InstancePutRequest
	if status, err := decodeBody(w, r, &req); err != nil {
		typ := ProblemBadRequest
		if status == http.StatusRequestEntityTooLarge {
			typ = ProblemTooLarge
		}
		s.writeProblem(w, endpoint, problem(typ, "invalid request body", status, err))
		return
	}
	if req.Instance == nil {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, errors.New("missing instance")))
		return
	}
	if req.Solver == "" {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, errors.New("missing solver name (see GET /v2/solvers)")))
		return
	}
	if err := req.Instance.Validate(); err != nil {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid instance", http.StatusBadRequest, err))
		return
	}
	// The path id is the session's identity contract: it must be the
	// canonical hash of the uploaded instance, so a client holding an
	// id can always re-derive which instance it names.
	if hash := req.Instance.CanonicalHash(); hash != id {
		s.writeProblem(w, endpoint, problem(ProblemHashMismatch, "canonical hash mismatch", http.StatusConflict,
			fmt.Errorf("path id %q does not match the instance's canonical hash %q", id, hash)))
		return
	}
	sess, err := delta.New(req.Instance, req.Solver)
	if err != nil {
		s.writeProblem(w, endpoint, solveProblem(r, err))
		return
	}
	s.instances.put(id, sess)
	s.writeJSON(w, endpoint, http.StatusCreated, s.instanceDoc(sess))
}

// lookupInstance resolves {id} onto a live session or writes the 404
// problem.
func (s *Server) lookupInstance(w http.ResponseWriter, endpoint string, id string) (*delta.Session, bool) {
	sess, ok := s.instances.get(id)
	if !ok {
		s.writeProblem(w, endpoint, problem(ProblemUnknownInstance, "unknown instance session", http.StatusNotFound,
			fmt.Errorf("no session %q (expired, evicted or never created; PUT /v2/instances/{hash} first)", id)))
	}
	return sess, ok
}

// writeInstanceSolve renders one resolve outcome; failures map
// infeasibility onto the 422 mutation problem.
func (s *Server) writeInstanceSolve(w http.ResponseWriter, r *http.Request, endpoint string, sess *delta.Session, rep solver.Report, err error) {
	if err != nil {
		if errors.Is(err, solver.ErrInfeasible) {
			s.writeProblem(w, endpoint, problem(ProblemInfeasibleMutation, "instance infeasible after mutation",
				http.StatusUnprocessableEntity, err))
			return
		}
		s.writeProblem(w, endpoint, solveProblem(r, err))
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, InstanceSolveResponse{
		Instance:   s.instanceDoc(sess),
		Engine:     rep.Engine,
		Policy:     rep.Policy.String(),
		Replicas:   rep.Solution.NumReplicas(),
		LowerBound: rep.LowerBound,
		Gap:        rep.Gap,
		Proved:     rep.Proved,
		ElapsedMS:  durMS(rep.Elapsed),
		Churn:      churnDoc(rep.Churn),
		Solution:   rep.Solution,
	})
}

func (s *Server) handleInstanceMutate(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/instances/mutate"
	var req MutateRequest
	if status, err := decodeBody(w, r, &req); err != nil {
		typ := ProblemBadRequest
		if status == http.StatusRequestEntityTooLarge {
			typ = ProblemTooLarge
		}
		s.writeProblem(w, endpoint, problem(typ, "invalid request body", status, err))
		return
	}
	sess, ok := s.lookupInstance(w, endpoint, r.PathValue("id"))
	if !ok {
		return
	}
	if err := sess.Apply(req.Mutations); err != nil {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid mutation", http.StatusBadRequest, err))
		return
	}
	rep, err := sess.Resolve(r.Context())
	s.writeInstanceSolve(w, r, endpoint, sess, rep, err)
}

func (s *Server) handleInstanceSolution(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/instances/solution"
	sess, ok := s.lookupInstance(w, endpoint, r.PathValue("id"))
	if !ok {
		return
	}
	// Serve the held placement when one exists; otherwise this is the
	// session's first solve.
	if rep, solved := sess.Report(); solved {
		s.writeInstanceSolve(w, r, endpoint, sess, rep, nil)
		return
	}
	rep, err := sess.Resolve(r.Context())
	s.writeInstanceSolve(w, r, endpoint, sess, rep, err)
}

func (s *Server) handleInstanceDelete(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/instances"
	id := r.PathValue("id")
	if !s.instances.remove(id) {
		s.writeProblem(w, endpoint, problem(ProblemUnknownInstance, "unknown instance session", http.StatusNotFound,
			fmt.Errorf("no session %q (expired, evicted or never created)", id)))
		return
	}
	s.metrics.Request(endpoint, http.StatusNoContent)
	w.WriteHeader(http.StatusNoContent)
}
