package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
)

// registerSlowSolver registers (once per process) an engine that
// ignores its context for ~200ms before answering — the shape of
// solver that solver.Batch abandons on a per-task timeout.
var registerSlowSolver = sync.OnceFunc(func() {
	slow := solver.NewEngine(solver.Capabilities{
		Name: "test-slow", Policy: core.Single, SupportsDMax: true,
		Cost: solver.CostPolynomial, Description: "test: sleeps 200ms, ignores its context",
	}, func(ctx context.Context, req solver.Request) (*core.Solution, int64, error) {
		time.Sleep(200 * time.Millisecond)
		sol := core.Trivial(req.Instance)
		if sol == nil {
			return nil, 0, context.Canceled
		}
		return sol, 0, nil
	})
	if err := solver.RegisterEngine(slow); err != nil {
		panic(err)
	}
})

// TestBatchTaskTimeoutAbandonedSolve pins the cachingEngine data-race
// fix: a timed-out batch task's solve goroutine is abandoned by
// solver.Batch but keeps running; its eventual LastCached store must
// not race with a poll rendering results. The test drives
// JobManager directly — HTTP polling would launder the race through
// an incidental m.mu → metrics.mu happens-before chain and hide it
// from the race detector.
func TestBatchTaskTimeoutAbandonedSolve(t *testing.T) {
	registerSlowSolver()
	in := goldenInstance(t, "binary_nod_1.json")
	srv := New(Options{CacheSize: 8})
	defer srv.Close()

	tasks := []solver.Task{{
		ID:      "slow",
		Engine:  &cachingEngine{server: srv, inner: solver.MustLookup("test-slow")},
		Request: solver.Request{Instance: in},
	}}
	id, err := srv.jobs.Submit(tasks, solver.Options{Timeout: 10 * time.Millisecond}, false)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var jr JobResponse
	for {
		var ok bool
		jr, ok = srv.jobs.Get(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if jr.Status == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jr.Status)
		}
		time.Sleep(time.Millisecond)
	}
	if len(jr.Results) != 1 || jr.Results[0].OK {
		t.Fatalf("timed-out task should fail: %+v", jr.Results)
	}
	if jr.Stats.Failed != 1 {
		t.Errorf("stats %+v, want 1 failed", jr.Stats)
	}
	// Keep the process alive past the abandoned solve's completion so
	// the race detector can observe its writes.
	time.Sleep(250 * time.Millisecond)
}

func TestJobQueueBackpressure(t *testing.T) {
	registerSlowSolver()
	in := goldenInstance(t, "binary_nod_1.json")
	m := NewJobManager(1, 1, 0)
	defer m.Close()
	slow := solver.MustLookup("test-slow")
	task := []solver.Task{{Engine: slow, Request: solver.Request{Instance: in}}}

	// First job occupies the single runner, second fills the queue;
	// the third must be rejected, not buffered.
	if _, err := m.Submit(task, solver.Options{}, false); err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(task, solver.Options{}, false); err != nil {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Error("queue accepted more jobs than its bound")
	}
}

func TestJobManagerCloseSkipsQueued(t *testing.T) {
	registerSlowSolver()
	in := goldenInstance(t, "binary_nod_1.json")
	m := NewJobManager(1, 4, 0)
	slow := solver.MustLookup("test-slow")
	task := func() solver.Task { return solver.Task{Engine: slow, Request: solver.Request{Instance: in}} }
	running, err := m.Submit([]solver.Task{task()}, solver.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit([]solver.Task{task(), task()}, solver.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Submit([]solver.Task{task()}, solver.Options{}, false); err == nil {
		t.Error("closed manager accepted a job")
	}
	for _, id := range []string{running, queued} {
		jr, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if jr.Status != JobDone {
			t.Errorf("job %s status %q after Close, want done", id, jr.Status)
		}
	}
	// The queued job was drained post-cancel: its tasks are skipped.
	jr, _ := m.Get(queued)
	for _, r := range jr.Results {
		if r.OK {
			t.Errorf("queued task unexpectedly ran to completion: %+v", r)
		}
	}
}
