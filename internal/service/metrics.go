package service

import (
	"sort"
	"sync"
	"time"
)

// Metrics aggregates the counters exposed at GET /metrics: request
// counts per endpoint and status class, cache effectiveness (joined in
// by the server from Cache.Stats) and a fixed-bucket latency histogram
// per solver. Everything is monotonic since process start; scrape and
// diff externally.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64 // endpoint -> count
	statuses  map[int]uint64    // HTTP status -> count
	latencies map[string]*histogram
	certs     CertMetrics
}

// latencyBuckets are the histogram upper bounds for per-solver solve
// latency. The last implicit bucket is +Inf.
var latencyBuckets = []time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

type histogram struct {
	counts []uint64 // len(latencyBuckets)+1; last = +Inf
	total  uint64
	sum    time.Duration
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:  make(map[string]uint64),
		statuses:  make(map[int]uint64),
		latencies: make(map[string]*histogram),
	}
}

// Request records one handled request for endpoint with the final
// HTTP status.
func (m *Metrics) Request(endpoint string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[endpoint]++
	m.statuses[status]++
}

// Solve records the latency of one actual (non-cached) solve by the
// named solver.
func (m *Metrics) Solve(solverName string, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latencies[solverName]
	if !ok {
		h = &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
		m.latencies[solverName] = h
	}
	i := 0
	for i < len(latencyBuckets) && elapsed > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.total++
	h.sum += elapsed
}

// CertMetrics counts certificate activity: certificates issued
// (inline on /v2/solve and at batch settle), inclusion proofs served
// by the proof endpoint, and certification failures (a report that
// could not be certified — an internal invariant violation, since
// every served solution has passed verification).
type CertMetrics struct {
	Issued       uint64 `json:"issued"`
	ProofsServed uint64 `json:"proofs_served"`
	Failures     uint64 `json:"verification_failures"`
}

// CertIssued records n freshly built certificates.
func (m *Metrics) CertIssued(n int) {
	m.mu.Lock()
	m.certs.Issued += uint64(n)
	m.mu.Unlock()
}

// CertProofServed records one inclusion proof served.
func (m *Metrics) CertProofServed() {
	m.mu.Lock()
	m.certs.ProofsServed++
	m.mu.Unlock()
}

// CertFailure records one failed certification.
func (m *Metrics) CertFailure() {
	m.mu.Lock()
	m.certs.Failures++
	m.mu.Unlock()
}

// LatencySnapshot is the exported histogram of one solver.
type LatencySnapshot struct {
	Count int64 `json:"count"`
	// Buckets maps a human-readable upper bound ("le_1ms", …,
	// "le_inf") to the number of solves within it (non-cumulative).
	Buckets map[string]uint64 `json:"buckets"`
	SumMS   float64           `json:"sum_ms"`
	MeanMS  float64           `json:"mean_ms"`
}

// MetricsSnapshot is the body of GET /metrics, minus the cache block
// the server attaches.
type MetricsSnapshot struct {
	Requests map[string]uint64          `json:"requests"`
	Statuses map[string]uint64          `json:"statuses"`
	Solvers  map[string]LatencySnapshot `json:"solvers"`
	Certs    CertMetrics                `json:"certs"`
}

var bucketLabels = func() []string {
	labels := make([]string, 0, len(latencyBuckets)+1)
	for _, ub := range latencyBuckets {
		labels = append(labels, "le_"+ub.String())
	}
	return append(labels, "le_inf")
}()

// BucketLabels returns the histogram bucket labels in ascending
// order, for consumers that want a stable rendering.
func BucketLabels() []string {
	out := make([]string, len(bucketLabels))
	copy(out, bucketLabels)
	return out
}

// Snapshot exports all counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MetricsSnapshot{
		Requests: make(map[string]uint64, len(m.requests)),
		Statuses: make(map[string]uint64, len(m.statuses)),
		Solvers:  make(map[string]LatencySnapshot, len(m.latencies)),
		Certs:    m.certs,
	}
	for k, v := range m.requests {
		snap.Requests[k] = v
	}
	for k, v := range m.statuses {
		snap.Statuses[statusClassLabel(k)] += v
	}
	names := make([]string, 0, len(m.latencies))
	for name := range m.latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := m.latencies[name]
		ls := LatencySnapshot{
			Count:   int64(h.total),
			Buckets: make(map[string]uint64, len(h.counts)),
			SumMS:   durMS(h.sum),
		}
		for i, c := range h.counts {
			ls.Buckets[bucketLabels[i]] = c
		}
		if h.total > 0 {
			ls.MeanMS = ls.SumMS / float64(h.total)
		}
		snap.Solvers[name] = ls
	}
	return snap
}

func statusClassLabel(status int) string {
	switch {
	case status == 499:
		// nginx convention: client closed the request mid-solve.
		// Bucketed apart so aborts don't read as malformed requests.
		return "cancelled"
	case status >= 200 && status < 300:
		return "2xx"
	case status >= 300 && status < 400:
		return "3xx"
	case status >= 400 && status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
