package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	"replicatree/internal/cert"
	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/solver"
)

// The /v2 surface mirrors the solver package's Request/Report
// contract over HTTP: requests carry the typed constraint fields
// (policy, budget, timeout, hints), responses carry the uniform
// quality metadata (lower bound, gap, work, optimality proof), the
// solver catalogue returns full Capabilities documents, and errors
// are RFC 7807 application/problem+json, typed by the solver
// sentinels.

// SolveRequestV2 is the body of POST /v2/solve — the wire form of
// solver.Request plus the engine name.
type SolveRequestV2 struct {
	// Solver is a registry name (see GET /v2/solvers); "auto" selects
	// the capability-driven portfolio.
	Solver string `json:"solver"`
	// Instance is the problem instance in the core wire format.
	Instance *core.Instance `json:"instance"`
	// Policy constrains the solution's access policy: "", "any",
	// "single" or "multiple" (case-insensitive).
	Policy string `json:"policy,omitempty"`
	// Budget caps the work of exact engines (0 = engine default).
	Budget int64 `json:"budget,omitempty"`
	// TimeoutMS bounds the solve's wall-clock time (0 = none).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Hints is free-form engine advice (see solver.Request.Hints).
	Hints map[string]string `json:"hints,omitempty"`
	// Certificate requests a verifiable placement certificate in the
	// response: the canonical instance commitment, the feasibility
	// witness and the lower-bound attestation, checkable offline with
	// cmd/replicaverify. Built on demand at response time — never on
	// the zero-allocation solve path.
	Certificate bool `json:"certificate,omitempty"`
}

// SolveResponseV2 is the body of a successful POST /v2/solve — the
// wire form of solver.Report.
type SolveResponseV2 struct {
	// Solver is the dispatched registry name; Engine is the engine
	// that actually produced the solution (they differ under "auto").
	Solver string `json:"solver"`
	Engine string `json:"engine"`
	// Policy is the access policy the returned solution obeys.
	Policy string `json:"policy"`
	// Hash is the canonical instance hash (the cache key, minus the
	// solver name).
	Hash     string `json:"hash"`
	Replicas int    `json:"replicas"`
	// LowerBound is core.LowerBound of the instance; Gap is
	// (Replicas − LowerBound) / LowerBound, 0 when the bound is met.
	LowerBound int     `json:"lower_bound"`
	Gap        float64 `json:"gap"`
	// Work counts the engine's elementary search steps (exact engines
	// only; 0 when untracked). Proved marks a provably optimal
	// solution for the reported policy.
	Work   int64 `json:"work,omitempty"`
	Proved bool  `json:"proved"`
	// Verified is always true in a 200 response: solutions are checked
	// with core.Verify before they are returned or cached.
	Verified bool `json:"verified"`
	// Cached reports whether the solution came from the result cache.
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Churn is present when the engine adapted a previous placement
	// (delta engines): what changed relative to it.
	Churn    *ChurnDoc      `json:"churn,omitempty"`
	Solution *core.Solution `json:"solution"`
	// Certificate is present when the request asked for one: the
	// offline-verifiable receipt for this solve. Identical bytes are
	// issued for cached and fresh solves of the same instance — the
	// cache stores full reports, and the certificate's canonical
	// encoding covers no wall-clock field.
	Certificate *cert.Certificate `json:"certificate,omitempty"`
}

// BatchRequestV2 is the body of POST /v2/batch.
type BatchRequestV2 struct {
	Tasks []BatchTaskV2 `json:"tasks"`
	// Workers bounds the job's solver pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS bounds each task (0 = no per-task timeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Certificates requests per-task placement certificates, built
	// once when the job settles and committed to a single Merkle root
	// (JobResponseV2.CertificateRoot). Individual certificates with
	// O(log n) inclusion proofs are served by
	// GET /v2/jobs/{id}/proof/{task}.
	Certificates bool `json:"certificates,omitempty"`
}

// BatchTaskV2 is one typed task of a v2 batch job.
type BatchTaskV2 struct {
	// ID is an optional caller label echoed in the task's result.
	ID       string            `json:"id,omitempty"`
	Solver   string            `json:"solver"`
	Instance *core.Instance    `json:"instance"`
	Policy   string            `json:"policy,omitempty"`
	Budget   int64             `json:"budget,omitempty"`
	Hints    map[string]string `json:"hints,omitempty"`
}

// TaskResultV2 is the outcome of one v2 batch task: the task identity
// plus the full report metadata of SolveResponseV2.
type TaskResultV2 struct {
	ID         string         `json:"id,omitempty"`
	Solver     string         `json:"solver"`
	Engine     string         `json:"engine,omitempty"`
	Policy     string         `json:"policy,omitempty"`
	OK         bool           `json:"ok"`
	Error      string         `json:"error,omitempty"`
	Replicas   int            `json:"replicas,omitempty"`
	LowerBound int            `json:"lower_bound,omitempty"`
	Gap        float64        `json:"gap,omitempty"`
	Work       int64          `json:"work,omitempty"`
	Proved     bool           `json:"proved,omitempty"`
	Cached     bool           `json:"cached,omitempty"`
	ElapsedMS  float64        `json:"elapsed_ms,omitempty"`
	Solution   *core.Solution `json:"solution,omitempty"`
}

// JobResponseV2 is the body of GET /v2/jobs/{id}.
type JobResponseV2 struct {
	JobID   string         `json:"job_id"`
	Status  string         `json:"status"`
	Results []TaskResultV2 `json:"results,omitempty"`
	Stats   *JobStats      `json:"stats,omitempty"`
	// CertificateRoot is the Merkle root over the job's task
	// certificates (successful tasks, in task order), present once a
	// certificates-enabled job settles. Fetch any task's certificate
	// plus inclusion proof from GET /v2/jobs/{id}/proof/{task}.
	CertificateRoot string `json:"certificate_root,omitempty"`
}

// ProofResponseV2 is the body of GET /v2/jobs/{id}/proof/{task}: one
// task's certificate together with the Merkle inclusion proof tying
// it to the job's certificate root. Everything needed for offline
// verification (cmd/replicaverify) is in here plus the instance the
// caller already holds.
type ProofResponseV2 struct {
	JobID string `json:"job_id"`
	// TaskID echoes the task's caller-supplied label (empty when the
	// task was addressed by index).
	TaskID string `json:"task_id,omitempty"`
	// TaskIndex is the task's position in the submitted batch.
	TaskIndex int `json:"task_index"`
	// CertificateRoot repeats the job's Merkle root so the document is
	// self-contained.
	CertificateRoot string            `json:"certificate_root"`
	Certificate     *cert.Certificate `json:"certificate"`
	// LeafHash is the certificate's Merkle leaf hash
	// (SHA-256(0x00 ‖ canonical encoding)), recomputable from the
	// certificate alone.
	LeafHash string `json:"leaf_hash"`
	// Proof is the ⌈log₂ n⌉-hash inclusion proof.
	Proof *cert.Proof `json:"proof"`
}

// CapabilityDoc is one engine's capability document in
// GET /v2/solvers — the wire form of solver.Capabilities.
type CapabilityDoc struct {
	Name         string `json:"name"`
	Policy       string `json:"policy"`
	Exact        bool   `json:"exact"`
	SupportsDMax bool   `json:"supports_dmax"`
	Hetero       bool   `json:"hetero"`
	// Delta marks engines that adapt a previous placement (honouring
	// excluded servers and minimising churn) instead of solving cold;
	// they power the /v2/instances sessions.
	Delta       bool   `json:"delta,omitempty"`
	Cost        string `json:"cost"`
	Description string `json:"description"`
}

// Problem is an RFC 7807 error document, the body of every non-2xx
// /v2 response (Content-Type: application/problem+json).
type Problem struct {
	Type   string `json:"type"`
	Title  string `json:"title"`
	Status int    `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// Problem type URIs, one per error class a /v2 consumer can branch on.
const (
	ProblemBadRequest      = "urn:replicatree:problem:bad-request"
	ProblemTooLarge        = "urn:replicatree:problem:payload-too-large"
	ProblemUnknownSolver   = "urn:replicatree:problem:unknown-solver"
	ProblemUnsupported     = "urn:replicatree:problem:unsupported-request"
	ProblemInfeasible      = "urn:replicatree:problem:infeasible-instance"
	ProblemBudgetExhausted = "urn:replicatree:problem:budget-exhausted"
	ProblemSolveFailed     = "urn:replicatree:problem:solve-failed"
	ProblemVerification    = "urn:replicatree:problem:verification-failed"
	ProblemClientClosed    = "urn:replicatree:problem:client-closed-request"
	ProblemUnknownJob      = "urn:replicatree:problem:unknown-job"
	ProblemOverloaded      = "urn:replicatree:problem:overloaded"
	// Instance-session problems (the /v2/instances endpoints).
	ProblemUnknownInstance    = "urn:replicatree:problem:unknown-instance"
	ProblemHashMismatch       = "urn:replicatree:problem:canonical-hash-mismatch"
	ProblemInfeasibleMutation = "urn:replicatree:problem:infeasible-after-mutation"
	// Certificate problems (the /v2/jobs/{id}/proof/{task} endpoint).
	ProblemUnknownTask   = "urn:replicatree:problem:unknown-task"
	ProblemCertsDisabled = "urn:replicatree:problem:certificates-disabled"
	ProblemJobNotSettled = "urn:replicatree:problem:job-not-settled"
	ProblemCertFailed    = "urn:replicatree:problem:certification-failed"
)

// problem builds a Problem from its parts.
func problem(typ, title string, status int, err error) Problem {
	p := Problem{Type: typ, Title: title, Status: status}
	if err != nil {
		p.Detail = err.Error()
	}
	return p
}

// solveProblem classifies a failed solve onto a Problem via the
// solver sentinels — the typed replacement for v1's status-only
// classification. Verification failures outrank everything (they are
// 5xx even when the client has since disconnected); a dead client
// outranks the rest so aborted solves don't read as bad instances.
func solveProblem(r *http.Request, err error) Problem {
	switch {
	case errors.Is(err, errVerification):
		return problem(ProblemVerification, "solution failed verification", http.StatusInternalServerError, err)
	case r.Context().Err() != nil:
		return problem(ProblemClientClosed, "client closed request", statusClientClosed, err)
	case errors.Is(err, solver.ErrUnknownSolver):
		return problem(ProblemUnknownSolver, "unknown solver", http.StatusNotFound, err)
	case errors.Is(err, solver.ErrPolicyUnsupported):
		return problem(ProblemUnsupported, "request unsupported by engine", http.StatusUnprocessableEntity, err)
	case errors.Is(err, solver.ErrInfeasible):
		return problem(ProblemInfeasible, "instance infeasible", http.StatusUnprocessableEntity, err)
	case errors.Is(err, exact.ErrBudget):
		return problem(ProblemBudgetExhausted, "work budget exceeded", http.StatusUnprocessableEntity, err)
	case errors.Is(err, context.DeadlineExceeded):
		return problem(ProblemBudgetExhausted, "solve timed out", http.StatusUnprocessableEntity, err)
	default:
		return problem(ProblemSolveFailed, "solve failed", http.StatusUnprocessableEntity, err)
	}
}

// writeProblem emits a Problem with the RFC 7807 media type.
func (s *Server) writeProblem(w http.ResponseWriter, endpoint string, p Problem) {
	s.metrics.Request(endpoint, p.Status)
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(p.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p) // the status line is already out; nothing to salvage
}

// parseWant maps the wire policy constraint onto solver.Want.
func parseWant(s string) (solver.Want, error) {
	switch strings.ToLower(s) {
	case "", "any":
		return solver.AnyPolicy, nil
	case "single":
		return solver.WantSingle, nil
	case "multiple":
		return solver.WantMultiple, nil
	default:
		return solver.AnyPolicy, fmt.Errorf("unknown policy constraint %q (want \"any\", \"single\" or \"multiple\")", s)
	}
}

// serviceHints filters client hints the daemon must not forward:
// "no-lower-bound" would poison the shared result cache with
// bound-less reports, and the service always reports bounds.
func serviceHints(hints map[string]string) map[string]string {
	if _, ok := hints["no-lower-bound"]; !ok {
		return hints
	}
	out := make(map[string]string, len(hints))
	for k, v := range hints {
		if k != "no-lower-bound" {
			out[k] = v
		}
	}
	return out
}

// v2Request assembles a solver.Request from wire fields shared by
// solve and batch tasks.
func v2Request(in *core.Instance, policy string, budget int64, hints map[string]string) (solver.Request, error) {
	want, err := parseWant(policy)
	if err != nil {
		return solver.Request{}, err
	}
	return solver.Request{
		Instance: in,
		Policy:   want,
		Budget:   budget,
		Hints:    serviceHints(hints),
	}, nil
}

func (s *Server) handleSolveV2(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/solve"
	begin := time.Now()
	var req SolveRequestV2
	if status, err := decodeBody(w, r, &req); err != nil {
		typ := ProblemBadRequest
		if status == http.StatusRequestEntityTooLarge {
			typ = ProblemTooLarge
		}
		s.writeProblem(w, endpoint, problem(typ, "invalid request body", status, err))
		return
	}
	if req.Instance == nil {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, errors.New("missing instance")))
		return
	}
	if req.Solver == "" {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, errors.New("missing solver name (see GET /v2/solvers)")))
		return
	}
	sreq, err := v2Request(req.Instance, req.Policy, req.Budget, req.Hints)
	if err != nil {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body", http.StatusBadRequest, err))
		return
	}
	if req.TimeoutMS < 0 {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, fmt.Errorf("negative timeout_ms %d", req.TimeoutMS)))
		return
	}
	if req.TimeoutMS > 0 {
		sreq.Deadline = time.Now().Add(time.Duration(req.TimeoutMS) * time.Millisecond)
	}
	eng, err := solver.Lookup(req.Solver)
	if err != nil {
		s.writeProblem(w, endpoint, solveProblem(r, err))
		return
	}
	out, err := s.solveCached(r.Context(), eng, sreq)
	if err != nil {
		s.writeProblem(w, endpoint, solveProblem(r, err))
		return
	}
	rep := out.report
	var c *cert.Certificate
	if req.Certificate {
		// Certification happens here, after the solve returned — the
		// zero-allocation warm path inside Engine.Solve never sees it.
		c, err = solver.Certify(req.Instance, &rep)
		if err != nil {
			s.metrics.CertFailure()
			s.writeProblem(w, endpoint, problem(ProblemCertFailed, "certification failed",
				http.StatusInternalServerError, err))
			return
		}
		s.metrics.CertIssued(1)
	}
	s.writeJSON(w, endpoint, http.StatusOK, SolveResponseV2{
		Solver:      eng.Name(),
		Engine:      rep.Engine,
		Policy:      rep.Policy.String(),
		Hash:        out.hash,
		Replicas:    rep.Solution.NumReplicas(),
		LowerBound:  rep.LowerBound,
		Gap:         rep.Gap,
		Work:        rep.Work,
		Proved:      rep.Proved,
		Verified:    true,
		Cached:      out.cached,
		ElapsedMS:   durMS(time.Since(begin)),
		Churn:       churnDoc(rep.Churn),
		Solution:    rep.Solution,
		Certificate: c,
	})
}

func (s *Server) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/batch"
	var req BatchRequestV2
	if status, err := decodeBody(w, r, &req); err != nil {
		typ := ProblemBadRequest
		if status == http.StatusRequestEntityTooLarge {
			typ = ProblemTooLarge
		}
		s.writeProblem(w, endpoint, problem(typ, "invalid request body", status, err))
		return
	}
	if len(req.Tasks) == 0 {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, errors.New("empty task list")))
		return
	}
	if len(req.Tasks) > maxBatchTasks {
		s.writeProblem(w, endpoint, problem(ProblemTooLarge, "batch too large", http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d tasks exceeds the limit of %d (split into multiple jobs)", len(req.Tasks), maxBatchTasks)))
		return
	}
	if req.Workers < 0 {
		s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
			http.StatusBadRequest, fmt.Errorf("negative workers %d", req.Workers)))
		return
	}
	// Workers is client-controlled; clamp it so one job can never
	// spawn more solve goroutines than the machine has cores.
	workers := req.Workers
	if cores := runtime.GOMAXPROCS(0); workers > cores {
		workers = cores
	}
	tasks := make([]solver.Task, len(req.Tasks))
	for i, bt := range req.Tasks {
		if bt.Instance == nil {
			s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
				http.StatusBadRequest, fmt.Errorf("task %d: missing instance", i)))
			return
		}
		eng, err := solver.Lookup(bt.Solver)
		if err != nil {
			s.writeProblem(w, endpoint, problem(ProblemUnknownSolver, "unknown solver",
				http.StatusNotFound, fmt.Errorf("task %d: %w", i, err)))
			return
		}
		sreq, err := v2Request(bt.Instance, bt.Policy, bt.Budget, bt.Hints)
		if err != nil {
			s.writeProblem(w, endpoint, problem(ProblemBadRequest, "invalid request body",
				http.StatusBadRequest, fmt.Errorf("task %d: %w", i, err)))
			return
		}
		tasks[i] = solver.Task{
			ID:      bt.ID,
			Engine:  &cachingEngine{server: s, inner: eng},
			Request: sreq,
		}
	}
	opt := solver.Options{Workers: workers, Timeout: time.Duration(req.TimeoutMS) * time.Millisecond}
	id, err := s.jobs.Submit(tasks, opt, req.Certificates)
	if err != nil {
		s.writeProblem(w, endpoint, problem(ProblemOverloaded, "job queue unavailable", http.StatusServiceUnavailable, err))
		return
	}
	s.writeJSON(w, endpoint, http.StatusAccepted, BatchAccepted{
		JobID:     id,
		StatusURL: "/v2/jobs/" + id,
		Tasks:     len(tasks),
	})
}

func (s *Server) handleJobV2(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/jobs"
	id := r.PathValue("id")
	resp, ok := s.jobs.GetV2(id)
	if !ok {
		s.writeProblem(w, endpoint, problem(ProblemUnknownJob, "unknown job",
			http.StatusNotFound, fmt.Errorf("unknown job %q", id)))
		return
	}
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleProofV2(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/jobs/proof"
	resp, prob := s.jobs.Proof(r.PathValue("id"), r.PathValue("task"))
	if prob != nil {
		s.writeProblem(w, endpoint, *prob)
		return
	}
	s.metrics.CertProofServed()
	s.writeJSON(w, endpoint, http.StatusOK, resp)
}

func (s *Server) handleSolversV2(w http.ResponseWriter, r *http.Request) {
	catalog := solver.Catalog()
	docs := make([]CapabilityDoc, len(catalog))
	for i, c := range catalog {
		docs[i] = CapabilityDoc{
			Name:         c.Name,
			Policy:       c.Policy.String(),
			Exact:        c.Exact,
			SupportsDMax: c.SupportsDMax,
			Hetero:       c.Hetero,
			Delta:        c.Delta,
			Cost:         c.Cost.String(),
			Description:  c.Description,
		}
	}
	s.writeJSON(w, "/v2/solvers", http.StatusOK, docs)
}
