package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/delta"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// doJSON issues a request with a JSON body (nil for none) and returns
// the response plus its body bytes.
func doJSON(t testing.TB, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// sessionInstance is a small fixture with distinct mutation targets.
func sessionInstance() *core.Instance {
	b := tree.NewBuilder()
	root := b.Root("root")
	n1 := b.Internal(root, 2, "n1")
	n2 := b.Internal(root, 1, "n2")
	b.Client(n1, 1, 4, "c1")
	b.Client(n1, 2, 3, "c2")
	b.Client(n2, 1, 5, "c3")
	b.Client(n2, 3, 2, "c4")
	return &core.Instance{Tree: b.MustBuild(), W: 7, DMax: 4}
}

func decodeProblem(t testing.TB, body []byte) Problem {
	t.Helper()
	var p Problem
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("not a problem document: %v\n%s", err, body)
	}
	return p
}

func TestInstanceSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := sessionInstance()
	id := in.CanonicalHash()
	base := ts.URL + "/v2/instances/" + id

	resp, body := doJSON(t, http.MethodPut, base, InstancePutRequest{Solver: solver.SingleGen, Instance: in})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, body)
	}
	var doc InstanceDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.ID != id || doc.Solver != solver.SingleGen || doc.Nodes != in.Tree.Len() || doc.Solved {
		t.Fatalf("PUT doc %+v", doc)
	}

	// First solution: solved on demand, churn is all-added.
	resp, body = doJSON(t, http.MethodGet, base+"/solution", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET solution: %d\n%s", resp.StatusCode, body)
	}
	var sol InstanceSolveResponse
	if err := json.Unmarshal(body, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Churn == nil || len(sol.Churn.Added) != sol.Replicas || len(sol.Churn.Removed) != 0 {
		t.Fatalf("first churn %+v (replicas %d)", sol.Churn, sol.Replicas)
	}
	if !sol.Instance.Solved {
		t.Fatal("solution response reports unsolved session")
	}

	// Mutate and re-solve; the placement must equal a cold solve of
	// the mutated instance.
	mut := MutateRequest{Mutations: []delta.Mutation{
		{Op: delta.OpSetRequest, Node: 3, Requests: 6},
		{Op: delta.OpSetEdgeLength, Node: 5, Dist: 2},
	}}
	resp, body = doJSON(t, http.MethodPost, base+"/mutate", mut)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST mutate: %d\n%s", resp.StatusCode, body)
	}
	var after InstanceSolveResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	ed := tree.NewEditor(in.Tree)
	if err := ed.SetRequests(3, 6); err != nil {
		t.Fatal(err)
	}
	if err := ed.SetEdgeLen(5, 2); err != nil {
		t.Fatal(err)
	}
	mutated := &core.Instance{Tree: ed.Tree(), W: in.W, DMax: in.DMax}
	cold, err := solver.MustLookup(solver.SingleGen).Solve(context.Background(), solver.Request{Instance: mutated})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(after.Solution.Replicas, cold.Solution.Replicas) {
		t.Fatalf("mutated placement %v, cold %v", after.Solution.Replicas, cold.Solution.Replicas)
	}
	if after.LowerBound != cold.LowerBound || after.Gap != cold.Gap {
		t.Fatalf("mutated bound %d/%v, cold %d/%v", after.LowerBound, after.Gap, cold.LowerBound, cold.Gap)
	}
	if after.Churn == nil {
		t.Fatal("mutate response carries no churn")
	}

	// Delete, then every session endpoint 404s with the typed problem.
	resp, _ = doJSON(t, http.MethodDelete, base, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	resp, body = doJSON(t, http.MethodGet, base+"/solution", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d", resp.StatusCode)
	}
	if p := decodeProblem(t, body); p.Type != ProblemUnknownInstance {
		t.Fatalf("problem type %q", p.Type)
	}
	if resp, _ = doJSON(t, http.MethodDelete, base, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE: %d", resp.StatusCode)
	}
}

func TestInstancePutHashMismatch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := sessionInstance()
	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v2/instances/not-the-hash",
		InstancePutRequest{Solver: solver.SingleGen, Instance: in})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d\n%s", resp.StatusCode, body)
	}
	p := decodeProblem(t, body)
	if p.Type != ProblemHashMismatch || p.Status != http.StatusConflict {
		t.Fatalf("problem %+v", p)
	}
}

func TestInstanceMutateInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := sessionInstance()
	base := ts.URL + "/v2/instances/" + in.CanonicalHash()
	if resp, body := doJSON(t, http.MethodPut, base, InstancePutRequest{Solver: solver.SingleGen, Instance: in}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, body)
	}
	// W below the largest request rate makes Single infeasible.
	resp, body := doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Mutations: []delta.Mutation{{Op: delta.OpSetCapacity, W: 2}}})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d\n%s", resp.StatusCode, body)
	}
	if p := decodeProblem(t, body); p.Type != ProblemInfeasibleMutation {
		t.Fatalf("problem %+v", p)
	}
	// The session survives the failure: a repairing mutation re-solves.
	resp, body = doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Mutations: []delta.Mutation{{Op: delta.OpSetCapacity, W: 9}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair: %d\n%s", resp.StatusCode, body)
	}
}

func TestInstanceMutateValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := sessionInstance()
	base := ts.URL + "/v2/instances/" + in.CanonicalHash()
	if resp, body := doJSON(t, http.MethodPut, base, InstancePutRequest{Solver: solver.SingleGen, Instance: in}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, body)
	}
	resp, body := doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Mutations: []delta.Mutation{{Op: "warp", Node: 1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d\n%s", resp.StatusCode, body)
	}
	if p := decodeProblem(t, body); p.Type != ProblemBadRequest {
		t.Fatalf("problem %+v", p)
	}
	// Unknown session: typed 404.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v2/instances/deadbeef/mutate",
		MutateRequest{Mutations: []delta.Mutation{{Op: delta.OpSetRequest, Node: 3, Requests: 1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: %d\n%s", resp.StatusCode, body)
	}
	if p := decodeProblem(t, body); p.Type != ProblemUnknownInstance {
		t.Fatalf("problem %+v", p)
	}
}

func TestInstanceReplanFailServer(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := sessionInstance()
	base := ts.URL + "/v2/instances/" + in.CanonicalHash()
	if resp, body := doJSON(t, http.MethodPut, base, InstancePutRequest{Solver: solver.MultipleReplan, Instance: in}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, body)
	}
	resp, body := doJSON(t, http.MethodGet, base+"/solution", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET solution: %d\n%s", resp.StatusCode, body)
	}
	var first InstanceSolveResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	down := first.Solution.Replicas[0]
	resp, body = doJSON(t, http.MethodPost, base+"/mutate",
		MutateRequest{Mutations: []delta.Mutation{{Op: delta.OpFailServer, Node: down}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail_server: %d\n%s", resp.StatusCode, body)
	}
	var after InstanceSolveResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if slices.Contains(after.Solution.Replicas, down) {
		t.Fatalf("failed server %d still placed: %v", down, after.Solution.Replicas)
	}
}

func TestInstanceStoreBounds(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInstances: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		b := tree.NewBuilder()
		root := b.Root("root")
		b.Client(root, 1, int64(i+1), "c")
		in := &core.Instance{Tree: b.MustBuild(), W: 10, DMax: core.NoDistance}
		id := in.CanonicalHash()
		ids = append(ids, id)
		if resp, body := doJSON(t, http.MethodPut, ts.URL+"/v2/instances/"+id,
			InstancePutRequest{Solver: solver.SingleGen, Instance: in}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %d: %d\n%s", i, resp.StatusCode, body)
		}
	}
	// The oldest session fell off the LRU; the newer two survive.
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v2/instances/"+ids[0]+"/solution", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session answered %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		if resp, body := doJSON(t, http.MethodGet, ts.URL+"/v2/instances/"+id+"/solution", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("live session %s answered %d\n%s", id, resp.StatusCode, body)
		}
	}
}

func TestInstanceTTLExpiry(t *testing.T) {
	srv, ts := newTestServer(t, Options{InstanceTTL: 20 * time.Millisecond})
	in := sessionInstance()
	base := ts.URL + "/v2/instances/" + in.CanonicalHash()
	if resp, body := doJSON(t, http.MethodPut, base, InstancePutRequest{Solver: solver.SingleGen, Instance: in}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, body)
	}
	time.Sleep(60 * time.Millisecond)
	// The lookup itself drops the expired entry even before the
	// janitor's sweep.
	if resp, _ := doJSON(t, http.MethodGet, base+"/solution", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session answered %d", resp.StatusCode)
	}
	if n := srv.instances.len(); n != 0 {
		t.Fatalf("store retains %d expired sessions", n)
	}
}

// TestInstanceConcurrentMutators hammers one session from parallel
// writers; run under -race this pins the locking of both the store
// and the session. Each response must be internally consistent (a
// verified placement for some interleaving of the mutations).
func TestInstanceConcurrentMutators(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	in := sessionInstance()
	base := ts.URL + "/v2/instances/" + in.CanonicalHash()
	if resp, body := doJSON(t, http.MethodPut, base, InstancePutRequest{Solver: solver.SingleGen, Instance: in}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: %d\n%s", resp.StatusCode, body)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				mut := MutateRequest{Mutations: []delta.Mutation{{
					Op: delta.OpSetRequest, Node: tree.NodeID(3 + (g+i)%4), Requests: int64(1 + (g*7+i)%7),
				}}}
				resp, body := doJSON(t, http.MethodPost, base+"/mutate", mut)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: %d %s", g, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The final placement matches a cold solve of the final state.
	resp, body := doJSON(t, http.MethodGet, base+"/solution", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final solution: %d\n%s", resp.StatusCode, body)
	}
}
