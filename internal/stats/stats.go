// Package stats provides the small statistics and text-table helpers
// used by the experiment harness: means, ratios, quantiles and a
// fixed-width table renderer for reproducing the paper's rows/series
// on a terminal.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation; it copies and sorts internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Stddev returns the sample standard deviation (0 for n < 2).
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(n-1))
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with
// 3-digit precision.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table
// (the format of EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (header + rows; the
// title is omitted). Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
