package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	// Interpolation between points.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.001 {
		t.Errorf("Stddev = %v", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Error("n<2 should give 0")
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		return Quantile(clean, 0.25) <= Quantile(clean, 0.75) &&
			Quantile(clean, 0) == Min(clean) &&
			Quantile(clean, 1) == Max(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("E0: demo", "m", "ratio", "note")
	tab.AddRow(1, 1.5, "a")
	tab.AddRow(32, float64(2), "longer-note")
	if tab.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tab.NumRows())
	}
	s := tab.String()
	for _, want := range []string{"E0: demo", "ratio", "1.500", "2.000", "longer-note", "---"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), s)
	}
	// Columns aligned: header and separator same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("md demo", "a", "b|c")
	tab.AddRow(1, 2.5)
	md := tab.Markdown()
	for _, want := range []string{"**md demo**", "| a |", "| --- |", "| 2.500 |", "b\\|c"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "x", "note")
	tab.AddRow(1, `a,b`)
	tab.AddRow(2, `say "hi"`)
	csv := tab.CSV()
	want := "x,note\n1,\"a,b\"\n2,\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", csv, want)
	}
}
