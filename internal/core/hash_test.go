package core

import (
	"encoding/json"
	"testing"

	"replicatree/internal/tree"
)

func TestCanonicalHashDeterministic(t *testing.T) {
	a := inst(t, 9, 5)
	b := inst(t, 9, 5)
	ha, hb := a.CanonicalHash(), b.CanonicalHash()
	if ha != hb {
		t.Fatalf("identical instances hash differently: %s vs %s", ha, hb)
	}
	if len(ha) != 64 {
		t.Fatalf("hash is not hex SHA-256: %q", ha)
	}
	if ha != a.CanonicalHash() {
		t.Fatal("hash not stable across calls")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := inst(t, 9, 5)
	h0 := base.CanonicalHash()

	variants := map[string]*Instance{
		"capacity": inst(t, 10, 5),
		"dmax":     inst(t, 9, 6),
		"nod":      inst(t, 9, NoDistance),
	}
	// Structural variants: change one request rate, one edge length.
	req := tree.NewBuilder()
	r := req.Root("root")
	a := req.Internal(r, 1, "a")
	bb := req.Internal(r, 2, "b")
	req.Client(a, 3, 6, "c1") // r=6 instead of 5
	req.Client(a, 1, 7, "c2")
	req.Client(bb, 4, 2, "c3")
	variants["requests"] = &Instance{Tree: req.MustBuild(), W: 9, DMax: 5}

	dist := tree.NewBuilder()
	r = dist.Root("root")
	a = dist.Internal(r, 1, "a")
	bb = dist.Internal(r, 2, "b")
	dist.Client(a, 2, 5, "c1") // dist=2 instead of 3
	dist.Client(a, 1, 7, "c2")
	dist.Client(bb, 4, 2, "c3")
	variants["distance"] = &Instance{Tree: dist.MustBuild(), W: 9, DMax: 5}

	for name, v := range variants {
		if h := v.CanonicalHash(); h == h0 {
			t.Errorf("%s variant collides with base hash %s", name, h)
		}
	}
}

func TestCanonicalHashIgnoresLabels(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("renamed-root")
	a := b.Internal(r, 1, "x")
	bb := b.Internal(r, 2, "y")
	b.Client(a, 3, 5, "")
	b.Client(a, 1, 7, "z")
	b.Client(bb, 4, 2, "w")
	relabeled := &Instance{Tree: b.MustBuild(), W: 9, DMax: 5}
	if got, want := relabeled.CanonicalHash(), inst(t, 9, 5).CanonicalHash(); got != want {
		t.Fatalf("labels leaked into the hash: %s vs %s", got, want)
	}
}

func TestCanonicalHashSurvivesJSONRoundTrip(t *testing.T) {
	for _, dmax := range []int64{5, NoDistance} {
		in := inst(t, 9, dmax)
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if got, want := back.CanonicalHash(), in.CanonicalHash(); got != want {
			t.Fatalf("dmax=%d: round-trip changed hash: %s vs %s", dmax, got, want)
		}
	}
}

// TestFlatCanonicalHashMatchesPointer: the flat instance's hash must
// be byte-identical to its pointer twin's — certificates commit to
// one hash regardless of which representation solved the instance.
func TestFlatCanonicalHashMatchesPointer(t *testing.T) {
	for _, dmax := range []int64{5, NoDistance} {
		in := inst(t, 9, dmax)
		fi := &FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
		if got, want := fi.CanonicalHash(), in.CanonicalHash(); got != want {
			t.Errorf("dmax=%d: flat hash %s != pointer hash %s", dmax, got, want)
		}
	}
}

func TestCanonicalHashNilTree(t *testing.T) {
	a := &Instance{W: 1, DMax: NoDistance}
	b := &Instance{W: 2, DMax: NoDistance}
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Fatal("nil-tree instances with different W collide")
	}
	// Must not panic, must be stable.
	if a.CanonicalHash() != a.CanonicalHash() {
		t.Fatal("nil-tree hash unstable")
	}
}
