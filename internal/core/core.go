// Package core defines the replica placement problem of Benoit,
// Larchevêque and Renaud-Goud (RR-7750 / IPDPS 2012): an Instance
// couples a distribution tree with a server capacity W and a distance
// bound dmax; a Solution is a replica set plus a request assignment.
// The package provides the full feasibility verifier, lower bounds and
// the trivial "replica on every client" solution used as a universal
// fallback.
package core

import (
	"errors"
	"fmt"

	"replicatree/internal/tree"
)

// Policy selects the access policy of the paper.
type Policy uint8

const (
	// Single: all requests of a client are served by one server.
	Single Policy = iota
	// Multiple: the requests of a client may be split over several
	// servers on its path to the root.
	Multiple
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Single:
		return "Single"
	case Multiple:
		return "Multiple"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// NoDistance is the dmax value meaning "no distance constraint"
// (the NoD problem variants).
const NoDistance int64 = tree.Infinity

// Instance is a replica placement problem instance.
type Instance struct {
	Tree *tree.Tree
	W    int64 // server capacity (requests per time unit)
	DMax int64 // distance bound; NoDistance disables the constraint
}

// NoD reports whether the instance has no distance constraint.
func (in *Instance) NoD() bool { return in.DMax == NoDistance }

// Validate checks instance-level invariants: a valid tree, a positive
// capacity and a non-negative distance bound.
func (in *Instance) Validate() error {
	if in.Tree == nil {
		return errors.New("core: instance has nil tree")
	}
	if err := in.Tree.Validate(); err != nil {
		return err
	}
	if in.W <= 0 {
		return fmt.Errorf("core: non-positive capacity W=%d", in.W)
	}
	if in.DMax < 0 {
		return fmt.Errorf("core: negative distance bound dmax=%d", in.DMax)
	}
	return nil
}

// FitsLocally reports whether every client satisfies ri ≤ W, the
// precondition under which the trivial solution R = C exists and under
// which Algorithm 3 (multiple-bin) is optimal.
func (in *Instance) FitsLocally() bool {
	return in.Tree.MaxRequests() <= in.W
}

// Feasible reports whether the instance admits any solution under the
// given policy. With Single the requests of a client are unsplittable,
// so ri ≤ W is required; with Multiple a client i needs enough total
// capacity among its eligible servers: |eligible(i)|·W ≥ ri.
func (in *Instance) Feasible(pol Policy) bool {
	for _, i := range in.Tree.Clients() {
		r := in.Tree.Requests(i)
		if r == 0 {
			continue
		}
		switch pol {
		case Single:
			if r > in.W {
				return false
			}
		case Multiple:
			elig := int64(len(in.Tree.EligibleServers(i, in.DMax)))
			if r > elig*in.W {
				return false
			}
		}
	}
	return true
}

// CanServe reports whether node s may process requests of client i:
// s must lie on the path from i to the root and within distance dmax.
func (in *Instance) CanServe(i, s tree.NodeID) bool {
	t := in.Tree
	var d int64
	j := i
	for {
		if j == s {
			return d <= in.DMax
		}
		if j == t.Root() {
			return false
		}
		d = tree.SatAdd(d, t.Dist(j))
		j = t.Parent(j)
	}
}
