package core

import (
	"fmt"

	"replicatree/internal/tree"
)

// Scratch owns the working arrays of the allocation-free variants of
// the core helpers (LowerBound, Verify). It operates on the Flat (SoA)
// twin of an instance's tree: every per-node table is a dense slice
// indexed by NodeID, grown once and reused across solves. A Scratch is
// not safe for concurrent use; the solver seam pools whole sessions,
// each owning one Scratch.
type Scratch struct {
	capped, inside, need []int64 // LowerBound tables
	served, loads        []int64 // Verify tables
	isReplica            []bool
	firstServer          []tree.NodeID
}

func (sc *Scratch) grow(n int) {
	sc.capped = grow64(sc.capped, n)
	sc.inside = grow64(sc.inside, n)
	sc.need = grow64(sc.need, n)
	sc.served = grow64(sc.served, n)
	sc.loads = grow64(sc.loads, n)
	if cap(sc.isReplica) < n {
		sc.isReplica = make([]bool, n)
	}
	sc.isReplica = sc.isReplica[:n]
	if cap(sc.firstServer) < n {
		sc.firstServer = make([]tree.NodeID, n)
	}
	sc.firstServer = sc.firstServer[:n]
}

func grow64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// LowerBound computes exactly LowerBound(in) against f, the flat twin
// of in.Tree, without heap allocations once the scratch has grown to
// the instance size.
func (sc *Scratch) LowerBound(f *tree.Flat, in *Instance) int {
	n := f.Len()
	sc.grow(n)
	capped := sc.capped
	clear(capped)
	root := f.Root()
	for j := 0; j < n; j++ {
		id := tree.NodeID(j)
		if !f.IsClient(id) {
			continue
		}
		r := f.Reqs[j]
		if r == 0 {
			continue
		}
		var d int64
		h := id
		for h != root {
			nd := tree.SatAdd(d, f.Dist(h))
			if nd > in.DMax {
				break
			}
			d = nd
			h = f.Parents[h]
		}
		capped[h] += r
	}
	inside, need := sc.inside, sc.need
	for _, j := range f.Post {
		sum := capped[j]
		var childNeed int64
		for c := f.FirstChild[j]; c != tree.None; c = f.NextSibling[c] {
			sum += inside[c]
			childNeed += need[c]
		}
		inside[j] = sum
		nn := CeilDiv(sum, in.W)
		if childNeed > nn {
			nn = childNeed
		}
		need[j] = nn
	}
	return int(need[root])
}

// Verify checks feasibility of sol like Verify, against f, the flat
// twin of in.Tree. Unlike the package-level Verify it does not
// re-validate the instance — the caller guarantees a validated
// instance (the session validates once at ingest) — and it performs no
// heap allocations when the solution is feasible. Errors wrap the same
// sentinels as Verify (errors only occur on infeasible solutions,
// where allocating the message is fine).
func (sc *Scratch) Verify(f *tree.Flat, in *Instance, pol Policy, sol *Solution) error {
	n := f.Len()
	sc.grow(n)
	isReplica := sc.isReplica
	clear(isReplica)
	for _, r := range sol.Replicas {
		if r < 0 || int(r) >= n {
			return fmt.Errorf("%w: replica node %d out of range", ErrStructure, r)
		}
		if isReplica[r] {
			return fmt.Errorf("%w: duplicate replica %d", ErrStructure, r)
		}
		isReplica[r] = true
	}

	served, loads, firstServer := sc.served, sc.loads, sc.firstServer
	clear(served)
	clear(loads)
	for i := range firstServer {
		firstServer[i] = tree.None
	}
	root := f.Root()
	for _, a := range sol.Assignments {
		if a.Client < 0 || int(a.Client) >= n || a.Server < 0 || int(a.Server) >= n {
			return fmt.Errorf("%w: assignment %+v references invalid node", ErrStructure, a)
		}
		if !f.IsClient(a.Client) {
			return fmt.Errorf("%w: assignment source %d is not a client", ErrStructure, a.Client)
		}
		if a.Amount <= 0 {
			return fmt.Errorf("%w: non-positive amount in %+v", ErrStructure, a)
		}
		if !isReplica[a.Server] {
			return fmt.Errorf("%w: assignment to non-replica node %d", ErrStructure, a.Server)
		}
		var d int64
		h := a.Client
		for h != a.Server {
			if h == root {
				return fmt.Errorf("%w: server %d is not on the path of client %d", ErrDistance, a.Server, a.Client)
			}
			d = tree.SatAdd(d, f.EdgeLens[h])
			h = f.Parents[h]
		}
		if d > in.DMax {
			return fmt.Errorf("%w: client %d served by %d at distance %d > dmax %d",
				ErrDistance, a.Client, a.Server, d, in.DMax)
		}
		served[a.Client] += a.Amount
		loads[a.Server] += a.Amount
		if pol == Single {
			if prev := firstServer[a.Client]; prev != tree.None && prev != a.Server {
				return fmt.Errorf("%w: client %d served by both %d and %d under Single",
					ErrPolicy, a.Client, prev, a.Server)
			}
			firstServer[a.Client] = a.Server
		}
	}

	for j := 0; j < n; j++ {
		id := tree.NodeID(j)
		if !f.IsClient(id) {
			continue
		}
		if served[j] != f.Reqs[j] {
			return fmt.Errorf("%w: client %d served %d of %d requests", ErrCoverage, id, served[j], f.Reqs[j])
		}
	}
	for j := 0; j < n; j++ {
		if loads[j] > in.W {
			return fmt.Errorf("%w: server %d load %d > W %d", ErrCapacity, tree.NodeID(j), loads[j], in.W)
		}
	}
	return nil
}
