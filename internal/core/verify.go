package core

import (
	"errors"
	"fmt"
)

// Sentinel verification errors; Verify wraps them with context, so use
// errors.Is to classify a failure.
var (
	// ErrStructure: replicas or assignments reference invalid nodes.
	ErrStructure = errors.New("invalid solution structure")
	// ErrCoverage: some client's requests are not fully served.
	ErrCoverage = errors.New("requests not fully served")
	// ErrCapacity: a server processes more than W requests.
	ErrCapacity = errors.New("server capacity exceeded")
	// ErrDistance: a client is served beyond dmax, or by a node that
	// is not one of its ancestors.
	ErrDistance = errors.New("distance or path constraint violated")
	// ErrPolicy: the Single policy is violated (client split across
	// servers).
	ErrPolicy = errors.New("access policy violated")
)

// Verify checks that sol is a feasible solution of in under policy pol.
// It validates, in order: structural sanity, path/distance eligibility
// of every assignment, exact coverage of every client, server
// capacities, and the Single policy's one-server rule. A nil error
// means the solution is feasible; the objective is sol.NumReplicas().
func Verify(in *Instance, pol Policy, sol *Solution) error {
	if err := in.Validate(); err != nil {
		return err
	}
	t := in.Tree
	rset := make(map[int32]bool, len(sol.Replicas))
	for _, r := range sol.Replicas {
		if !t.Valid(r) {
			return fmt.Errorf("%w: replica node %d out of range", ErrStructure, r)
		}
		if rset[int32(r)] {
			return fmt.Errorf("%w: duplicate replica %d", ErrStructure, r)
		}
		rset[int32(r)] = true
	}

	served := make(map[int32]int64)
	loads := make(map[int32]int64)
	servers := make(map[int32]int32) // client -> first server seen (Single check)
	for _, a := range sol.Assignments {
		if !t.Valid(a.Client) || !t.Valid(a.Server) {
			return fmt.Errorf("%w: assignment %+v references invalid node", ErrStructure, a)
		}
		if !t.IsClient(a.Client) {
			return fmt.Errorf("%w: assignment source %d is not a client", ErrStructure, a.Client)
		}
		if a.Amount <= 0 {
			return fmt.Errorf("%w: non-positive amount in %+v", ErrStructure, a)
		}
		if !rset[int32(a.Server)] {
			return fmt.Errorf("%w: assignment to non-replica node %d", ErrStructure, a.Server)
		}
		if !t.IsAncestor(a.Server, a.Client) {
			return fmt.Errorf("%w: server %d is not on the path of client %d", ErrDistance, a.Server, a.Client)
		}
		if d := t.DistanceUp(a.Client, a.Server); d > in.DMax {
			return fmt.Errorf("%w: client %d served by %d at distance %d > dmax %d",
				ErrDistance, a.Client, a.Server, d, in.DMax)
		}
		served[int32(a.Client)] += a.Amount
		loads[int32(a.Server)] += a.Amount
		if pol == Single {
			if prev, ok := servers[int32(a.Client)]; ok && prev != int32(a.Server) {
				return fmt.Errorf("%w: client %d served by both %d and %d under Single",
					ErrPolicy, a.Client, prev, a.Server)
			}
			servers[int32(a.Client)] = int32(a.Server)
		}
	}

	for _, i := range t.Clients() {
		want := t.Requests(i)
		got := served[int32(i)]
		if got != want {
			return fmt.Errorf("%w: client %d served %d of %d requests", ErrCoverage, i, got, want)
		}
	}
	for srv, load := range loads {
		if load > in.W {
			return fmt.Errorf("%w: server %d load %d > W %d", ErrCapacity, srv, load, in.W)
		}
	}
	return nil
}
