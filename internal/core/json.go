package core

import (
	"encoding/json"
	"fmt"

	"replicatree/internal/tree"
)

// Wire format for instances: dmax is omitted (or null) for NoD.
type instanceJSON struct {
	Tree *tree.Tree `json:"tree"`
	W    int64      `json:"w"`
	DMax *int64     `json:"dmax,omitempty"`
}

// MarshalJSON encodes the instance; an absent "dmax" means no distance
// constraint.
func (in *Instance) MarshalJSON() ([]byte, error) {
	j := instanceJSON{Tree: in.Tree, W: in.W}
	if !in.NoD() {
		d := in.DMax
		j.DMax = &d
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes and validates an instance.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var j instanceJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	ni := Instance{Tree: j.Tree, W: j.W, DMax: NoDistance}
	if j.DMax != nil {
		ni.DMax = *j.DMax
	}
	if err := ni.Validate(); err != nil {
		return fmt.Errorf("core: invalid instance: %w", err)
	}
	*in = ni
	return nil
}
