package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func randInstance(rng *rand.Rand) *core.Instance {
	return gen.RandomInstance(rng, gen.TreeConfig{
		Internals:    1 + rng.Intn(25),
		MaxArity:     2 + rng.Intn(3),
		MaxDist:      4,
		MaxReq:       9,
		ExtraClients: rng.Intn(5),
	}, rng.Intn(2) == 0)
}

func TestScratchLowerBoundMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var sc core.Scratch
	for i := 0; i < 200; i++ {
		in := randInstance(rng)
		f := tree.Flatten(in.Tree)
		want := core.LowerBound(in)
		got := sc.LowerBound(f, in)
		if got != want {
			t.Fatalf("instance %d: scratch bound %d != cold bound %d", i, got, want)
		}
	}
}

func TestScratchVerifyMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var sc core.Scratch
	for i := 0; i < 100; i++ {
		in := randInstance(rng)
		f := tree.Flatten(in.Tree)
		sol := core.Trivial(in)
		if sol == nil {
			continue
		}
		for _, pol := range []core.Policy{core.Single, core.Multiple} {
			cold := core.Verify(in, pol, sol)
			warm := sc.Verify(f, in, pol, sol)
			if (cold == nil) != (warm == nil) {
				t.Fatalf("instance %d pol %v: cold=%v warm=%v", i, pol, cold, warm)
			}
		}
	}
}

func TestScratchVerifyRejections(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("")
	n1 := b.Internal(r, 1, "")
	c1 := b.Client(n1, 2, 5, "")
	c2 := b.Client(n1, 3, 4, "")
	tr := b.MustBuild()
	in := &core.Instance{Tree: tr, W: 10, DMax: 3}
	f := tree.Flatten(tr)
	var sc core.Scratch

	cases := []struct {
		name string
		sol  core.Solution
		pol  core.Policy
		want error
	}{
		{"non-replica server", core.Solution{
			Replicas:    []tree.NodeID{c1},
			Assignments: []core.Assignment{{Client: c1, Server: c1, Amount: 5}, {Client: c2, Server: n1, Amount: 4}},
		}, core.Multiple, core.ErrStructure},
		{"duplicate replica", core.Solution{
			Replicas: []tree.NodeID{c1, c1},
		}, core.Multiple, core.ErrStructure},
		{"off-path server", core.Solution{
			Replicas:    []tree.NodeID{c1, c2},
			Assignments: []core.Assignment{{Client: c1, Server: c1, Amount: 5}, {Client: c2, Server: c1, Amount: 4}},
		}, core.Multiple, core.ErrDistance},
		{"too far", core.Solution{
			Replicas:    []tree.NodeID{r},
			Assignments: []core.Assignment{{Client: c1, Server: r, Amount: 5}, {Client: c2, Server: r, Amount: 4}},
		}, core.Multiple, core.ErrDistance},
		{"under-served", core.Solution{
			Replicas:    []tree.NodeID{n1},
			Assignments: []core.Assignment{{Client: c1, Server: n1, Amount: 4}, {Client: c2, Server: n1, Amount: 4}},
		}, core.Multiple, core.ErrCoverage},
		{"split under single", core.Solution{
			Replicas:    []tree.NodeID{n1, c1, c2},
			Assignments: []core.Assignment{{Client: c1, Server: n1, Amount: 3}, {Client: c1, Server: c1, Amount: 2}, {Client: c2, Server: c2, Amount: 4}},
		}, core.Single, core.ErrPolicy},
	}
	for _, tc := range cases {
		sol := tc.sol
		err := sc.Verify(f, in, tc.pol, &sol)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		cold := core.Verify(in, tc.pol, &sol)
		if !errors.Is(cold, tc.want) {
			t.Errorf("%s: cold verify got %v, want %v", tc.name, cold, tc.want)
		}
	}
}

func TestScratchVerifyCapacity(t *testing.T) {
	b := tree.NewBuilder()
	r := b.Root("")
	n1 := b.Internal(r, 1, "")
	c1 := b.Client(n1, 2, 5, "")
	c2 := b.Client(n1, 3, 4, "")
	tr := b.MustBuild()
	in := &core.Instance{Tree: tr, W: 8, DMax: 3}
	f := tree.Flatten(tr)
	var sc core.Scratch
	sol := &core.Solution{
		Replicas:    []tree.NodeID{n1},
		Assignments: []core.Assignment{{Client: c1, Server: n1, Amount: 5}, {Client: c2, Server: n1, Amount: 4}},
	}
	if err := sc.Verify(f, in, core.Multiple, sol); !errors.Is(err, core.ErrCapacity) {
		t.Fatalf("got %v, want ErrCapacity", err)
	}
}

func TestScratchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 40, MaxArity: 3}, true)
	f := tree.Flatten(in.Tree)
	sol := core.Trivial(in)
	if sol == nil {
		t.Skip("instance does not fit locally")
	}
	var sc core.Scratch
	sc.LowerBound(f, in)
	if err := sc.Verify(f, in, core.Multiple, sol); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		sc.LowerBound(f, in)
		if err := sc.Verify(f, in, core.Multiple, sol); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm scratch helpers allocated %.1f times per run", avg)
	}
}

func TestNormalizeAllocFree(t *testing.T) {
	sol := &core.Solution{
		Replicas: []tree.NodeID{5, 3, 3, 1},
		Assignments: []core.Assignment{
			{Client: 4, Server: 3, Amount: 2},
			{Client: 2, Server: 1, Amount: 1},
			{Client: 4, Server: 3, Amount: 3},
		},
	}
	sol.Normalize()
	if len(sol.Replicas) != 3 || len(sol.Assignments) != 2 {
		t.Fatalf("unexpected normalize result: %v", sol)
	}
	if sol.Assignments[1].Amount != 5 {
		t.Fatalf("duplicate assignments not merged: %v", sol.Assignments)
	}
	avg := testing.AllocsPerRun(50, func() {
		sol.Assignments = append(sol.Assignments[:0],
			core.Assignment{Client: 4, Server: 3, Amount: 2},
			core.Assignment{Client: 2, Server: 1, Amount: 1},
			core.Assignment{Client: 4, Server: 3, Amount: 3},
		)
		sol.Replicas = append(sol.Replicas[:0], 5, 3, 3, 1)
		sol.Normalize()
	})
	if avg != 0 {
		t.Fatalf("Normalize allocated %.1f times per run", avg)
	}
}
