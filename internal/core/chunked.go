package core

// This file implements the chunked instance representation: a
// streaming wire format plus a flat in-memory instance so a
// million-node tree is ingested piece-by-piece off an io.Reader
// instead of one json.Unmarshal of a full-tree blob. Peak memory on
// the read side is the Flat's parallel arrays plus one chunk of
// decoded node records; there is never a second full-tree copy
// (pointer nodes, raw JSON) resident. cmd/treegen emits the format
// with -stream, cmd/replica consumes it with -stream, and the decomp
// engine solves the resulting FlatInstance without ever building a
// pointer Tree.
//
// Wire layout: a header value followed by any number of chunk values,
// concatenated back-to-back (the natural json.Decoder stream shape):
//
//	{"format":"replicatree-chunked","version":1,"w":9,"dmax":40,"nodes":7}
//	{"nodes":[{"id":0,"parent":-1},{"id":1,"parent":0,"dist":2,"requests":5},...]}
//	{"nodes":[...]}
//
// "dmax" is omitted for NoD instances, mirroring the Instance codec.
// Node records must arrive in dense increasing ID order with every
// parent before its child (the root is ID 0 with parent -1) — exactly
// what preorder emission produces and what tree.FlatBuilder ingests.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"replicatree/internal/tree"
)

// ChunkedFormat is the format tag in the stream header.
const ChunkedFormat = "replicatree-chunked"

// ChunkedVersion is the current wire version.
const ChunkedVersion = 1

// DefaultChunkNodes is the default number of node records per chunk
// value on the write side.
const DefaultChunkNodes = 8192

// FlatInstance is an Instance whose tree lives in SoA form: the
// substrate of the huge-tree path. It is what ReadChunked produces
// and what decomp.SolveFlat consumes.
type FlatInstance struct {
	Flat *tree.Flat
	// W is the per-server capacity, DMax the distance bound
	// (NoDistance for NoD instances), with the same semantics as the
	// Instance fields.
	W    int64
	DMax int64
}

// NoD reports whether the instance ignores distances.
func (fi *FlatInstance) NoD() bool { return fi.DMax == NoDistance }

// Validate checks the parameter invariants (the Flat itself is
// validated at build time).
func (fi *FlatInstance) Validate() error {
	if fi.Flat == nil || fi.Flat.Len() == 0 {
		return errors.New("core: flat instance has no tree")
	}
	if fi.W <= 0 {
		return fmt.Errorf("core: server capacity W must be positive, got %d", fi.W)
	}
	if fi.DMax <= 0 {
		return fmt.Errorf("core: distance bound must be positive or NoDistance, got %d", fi.DMax)
	}
	return nil
}

// Instance materialises the pointer-tree twin. This allocates the
// full pointer tree; the huge-tree paths avoid it and work on the
// Flat directly.
func (fi *FlatInstance) Instance() (*Instance, error) {
	t, err := fi.Flat.Tree()
	if err != nil {
		return nil, err
	}
	return &Instance{Tree: t, W: fi.W, DMax: fi.DMax}, nil
}

// params adapts the flat instance to the Instance-shaped parameter
// views that Scratch.LowerBound/Verify read (they only touch W and
// DMax; the tree comes in separately as the Flat).
func (fi *FlatInstance) params() *Instance {
	return &Instance{W: fi.W, DMax: fi.DMax}
}

// LowerBound computes the subtree-sum lower bound directly on the
// Flat (same value as LowerBound on the pointer twin).
func (fi *FlatInstance) LowerBound() int {
	var sc Scratch
	return sc.LowerBound(fi.Flat, fi.params())
}

// Verify checks sol against the flat instance under pol, with the
// same sentinel errors as the package-level Verify.
func (fi *FlatInstance) Verify(pol Policy, sol *Solution) error {
	var sc Scratch
	return sc.Verify(fi.Flat, fi.params(), pol, sol)
}

// chunkedHeader is the first JSON value of a chunked stream.
type chunkedHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	W       int64  `json:"w"`
	DMax    *int64 `json:"dmax,omitempty"`
	Nodes   int    `json:"nodes"`
}

// chunkedNode is one node record; the shape matches the jsonNode used
// by the Tree codec so the two formats describe nodes identically.
type chunkedNode struct {
	ID       tree.NodeID `json:"id"`
	Parent   tree.NodeID `json:"parent"`
	Dist     int64       `json:"dist,omitempty"`
	Requests int64       `json:"requests,omitempty"`
	Label    string      `json:"label,omitempty"`
}

// chunkedChunk is one chunk value carrying a run of node records.
type chunkedChunk struct {
	Nodes []chunkedNode `json:"nodes"`
}

// WriteChunked emits fi on w in the chunked wire format,
// chunkNodes records per chunk (0 means DefaultChunkNodes). The
// Flat's IDs must be topological (root 0, every parent before its
// child) so a streaming reader can rebuild it in one pass.
func WriteChunked(w io.Writer, fi *FlatInstance, chunkNodes int) error {
	if err := fi.Validate(); err != nil {
		return err
	}
	if chunkNodes <= 0 {
		chunkNodes = DefaultChunkNodes
	}
	f := fi.Flat
	n := f.Len()
	if f.Root() != 0 {
		return fmt.Errorf("core: chunked format needs root ID 0, got %d", f.Root())
	}
	for j := 1; j < n; j++ {
		if p := f.Parents[j]; p < 0 || p >= tree.NodeID(j) {
			return fmt.Errorf("core: chunked format needs topological IDs; node %d has parent %d", j, p)
		}
	}
	enc := json.NewEncoder(w)
	h := chunkedHeader{Format: ChunkedFormat, Version: ChunkedVersion, W: fi.W, Nodes: n}
	if !fi.NoD() {
		d := fi.DMax
		h.DMax = &d
	}
	if err := enc.Encode(h); err != nil {
		return err
	}
	buf := make([]chunkedNode, 0, chunkNodes)
	for j := 0; j < n; j++ {
		nd := chunkedNode{
			ID:       tree.NodeID(j),
			Parent:   f.Parents[j],
			Dist:     f.EdgeLens[j],
			Requests: f.Reqs[j],
			Label:    f.Labels[j],
		}
		if j == 0 {
			nd.Parent = tree.None
			nd.Dist = 0
		}
		buf = append(buf, nd)
		if len(buf) == chunkNodes {
			if err := enc.Encode(chunkedChunk{Nodes: buf}); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		return enc.Encode(chunkedChunk{Nodes: buf})
	}
	return nil
}

// ReadChunked ingests a chunked stream from r and returns the rebuilt
// flat instance. Decoding is incremental: one chunk of node records
// is resident at a time, feeding a tree.FlatBuilder.
func ReadChunked(r io.Reader) (*FlatInstance, error) {
	dec := json.NewDecoder(r)
	var h chunkedHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("core: chunked header: %w", err)
	}
	if h.Format != ChunkedFormat {
		return nil, fmt.Errorf("core: not a chunked instance stream (format %q)", h.Format)
	}
	if h.Version != ChunkedVersion {
		return nil, fmt.Errorf("core: unsupported chunked version %d", h.Version)
	}
	if h.Nodes <= 0 {
		return nil, fmt.Errorf("core: chunked header declares %d nodes", h.Nodes)
	}
	fb := tree.NewFlatBuilder(h.Nodes)
	var ch chunkedChunk
	for fb.Len() < h.Nodes {
		ch.Nodes = ch.Nodes[:0] // reuse the chunk buffer across decodes
		if err := dec.Decode(&ch); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("core: chunked stream truncated: got %d of %d nodes", fb.Len(), h.Nodes)
			}
			return nil, fmt.Errorf("core: chunked stream: %w", err)
		}
		for _, nd := range ch.Nodes {
			if nd.ID != tree.NodeID(fb.Len()) {
				return nil, fmt.Errorf("core: chunked stream: node ID %d out of order (want %d)", nd.ID, fb.Len())
			}
			if _, err := fb.Add(nd.Parent, nd.Dist, nd.Requests, nd.Label); err != nil {
				return nil, err
			}
		}
	}
	f, err := fb.Build()
	if err != nil {
		return nil, err
	}
	fi := &FlatInstance{Flat: f, W: h.W, DMax: NoDistance}
	if h.DMax != nil {
		fi.DMax = *h.DMax
	}
	if err := fi.Validate(); err != nil {
		return nil, err
	}
	return fi, nil
}
