package core_test

// Tests for the chunked streaming codec and the flat-instance bound
// and verify paths, pinned against the pointer-tree implementations.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func chunkedCorpus(t *testing.T) map[string]*core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	out := map[string]*core.Instance{
		"random-nod":  gen.RandomInstance(rng, gen.TreeConfig{Internals: 25, MaxArity: 3, ExtraClients: 15}, false),
		"random-dist": gen.RandomInstance(rng, gen.TreeConfig{Internals: 25, MaxArity: 3, ExtraClients: 15}, true),
		"binary-dist": gen.RandomInstance(rng, gen.TreeConfig{Internals: 30, MaxArity: 2, ExtraClients: 10}, true),
	}
	return out
}

func TestChunkedRoundTrip(t *testing.T) {
	for name, in := range chunkedCorpus(t) {
		fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
		for _, chunk := range []int{0, 1, 7, 1 << 16} {
			var buf bytes.Buffer
			if err := core.WriteChunked(&buf, fi, chunk); err != nil {
				t.Fatalf("%s chunk %d: write: %v", name, chunk, err)
			}
			got, err := core.ReadChunked(&buf)
			if err != nil {
				t.Fatalf("%s chunk %d: read: %v", name, chunk, err)
			}
			if got.W != fi.W || got.DMax != fi.DMax {
				t.Fatalf("%s chunk %d: parameters drifted: got W=%d dmax=%d", name, chunk, got.W, got.DMax)
			}
			rt, err := got.Instance()
			if err != nil {
				t.Fatalf("%s chunk %d: materialise: %v", name, chunk, err)
			}
			if rt.CanonicalHash() != in.CanonicalHash() {
				t.Fatalf("%s chunk %d: canonical hash drifted through the chunked codec", name, chunk)
			}
		}
	}
}

func TestChunkedHeaderRejects(t *testing.T) {
	cases := map[string]string{
		"wrong format":  `{"format":"something-else","version":1,"w":5,"nodes":3}`,
		"wrong version": `{"format":"replicatree-chunked","version":9,"w":5,"nodes":3}`,
		"no nodes":      `{"format":"replicatree-chunked","version":1,"w":5,"nodes":0}`,
		"bad w":         `{"format":"replicatree-chunked","version":1,"w":0,"nodes":3}` + "\n" + `{"nodes":[{"id":0,"parent":-1},{"id":1,"parent":0,"requests":1},{"id":2,"parent":0,"requests":1}]}`,
		"truncated":     `{"format":"replicatree-chunked","version":1,"w":5,"nodes":4}` + "\n" + `{"nodes":[{"id":0,"parent":-1},{"id":1,"parent":0,"requests":1}]}`,
		"out of order":  `{"format":"replicatree-chunked","version":1,"w":5,"nodes":3}` + "\n" + `{"nodes":[{"id":0,"parent":-1},{"id":2,"parent":0,"requests":1},{"id":1,"parent":0,"requests":1}]}`,
	}
	for name, in := range cases {
		if _, err := core.ReadChunked(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteChunkedRejectsNonTopologicalIDs(t *testing.T) {
	// A tree whose root is not ID 0 is valid as a Tree but cannot be
	// streamed (the reader rebuilds parents-first).
	blob := `{"tree":{"root":1,"nodes":[{"id":0,"parent":1,"dist":2,"requests":3},{"id":1,"parent":-1,"dist":0}]},"w":5}`
	var in core.Instance
	if err := in.UnmarshalJSON([]byte(blob)); err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
	var buf bytes.Buffer
	if err := core.WriteChunked(&buf, fi, 0); err == nil {
		t.Fatal("non-topological flat accepted")
	}
}

// TestFlatInstanceBoundAndVerify pins the flat-side lower bound and
// verifier against the pointer-tree implementations on solved
// instances.
func TestFlatInstanceBoundAndVerify(t *testing.T) {
	for name, in := range chunkedCorpus(t) {
		fi := &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
		if got, want := fi.LowerBound(), core.LowerBound(in); got != want {
			t.Fatalf("%s: flat lower bound %d, pointer %d", name, got, want)
		}
		// An everywhere-replica solution is always feasible: each
		// client serves itself (W >= max requests by construction).
		sol := &core.Solution{}
		for _, c := range in.Tree.Clients() {
			sol.AddReplica(c)
			sol.Assign(c, c, in.Tree.Requests(c))
		}
		sol.Normalize()
		if err := fi.Verify(core.Multiple, sol); err != nil {
			t.Fatalf("%s: flat verify rejected a feasible solution: %v", name, err)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			t.Fatalf("%s: pointer verify rejected the same solution: %v", name, err)
		}
		// Corrupt it: overload one server beyond W.
		bad := sol.Clone()
		bad.Assignments[0].Amount += in.W
		if fi.Verify(core.Multiple, bad) == nil {
			t.Fatalf("%s: flat verify accepted an overloaded server", name)
		}
	}
}
