package core

import (
	"replicatree/internal/tree"
)

// CeilDiv returns ⌈a/b⌉ for a ≥ 0, b > 0.
func CeilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// LowerBound returns a lower bound on the optimal number of replicas
// valid for both policies. It combines the volume bound ⌈Σri / W⌉ with
// a distance-aware recursive bound: requests of a client that cannot
// travel above node j (because of dmax) must be served by replicas
// inside subtree(j), and replica sets of disjoint subtrees are
// disjoint. The bound is computed in O(|T|·depth).
func LowerBound(in *Instance) int {
	t := in.Tree
	// capped[h] = Σ of requests of clients whose highest eligible
	// server (the farthest ancestor within dmax) is h: those requests
	// can never be served outside subtree(h).
	capped := make([]int64, t.Len())
	for _, i := range t.Clients() {
		r := t.Requests(i)
		if r == 0 {
			continue
		}
		var d int64
		h := i
		for h != t.Root() {
			nd := tree.SatAdd(d, t.Dist(h))
			if nd > in.DMax {
				break
			}
			d = nd
			h = t.Parent(h)
		}
		capped[h] += r
	}
	// inside[j] = requests that must be served inside subtree(j);
	// need[j] = lower bound on replicas inside subtree(j): at least
	// ⌈inside/W⌉, and at least the sum over children (disjoint
	// replica sets).
	inside := make([]int64, t.Len())
	need := make([]int64, t.Len())
	t.PostOrder(func(j tree.NodeID) {
		sum := capped[j]
		var childNeed int64
		for _, c := range t.Children(j) {
			sum += inside[c]
			childNeed += need[c]
		}
		inside[j] = sum
		n := CeilDiv(sum, in.W)
		if childNeed > n {
			n = childNeed
		}
		need[j] = n
	})
	return int(need[t.Root()])
}

// VolumeLowerBound returns the plain bin-packing bound ⌈Σri / W⌉.
func VolumeLowerBound(in *Instance) int {
	return int(CeilDiv(in.Tree.TotalRequests(), in.W))
}

// Trivial returns the universal fallback solution R = {i ∈ C : ri > 0}
// with every client serving itself locally. It requires ri ≤ W for all
// clients (Instance.FitsLocally); otherwise it returns nil.
func Trivial(in *Instance) *Solution {
	if !in.FitsLocally() {
		return nil
	}
	sol := &Solution{}
	for _, i := range in.Tree.Clients() {
		if r := in.Tree.Requests(i); r > 0 {
			sol.AddReplica(i)
			sol.Assign(i, i, r)
		}
	}
	sol.Normalize()
	return sol
}
