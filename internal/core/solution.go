package core

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"replicatree/internal/tree"
)

// Assignment records that Amount requests of Client are processed by
// Server. Under the Single policy a client has exactly one assignment
// carrying all of its requests.
type Assignment struct {
	Client tree.NodeID `json:"client"`
	Server tree.NodeID `json:"server"`
	Amount int64       `json:"amount"`
}

// Solution is a replica set R together with the request assignment the
// algorithm produced. Solutions returned by this repository's
// algorithms are always normalised (sorted, deduplicated, zero-amount
// assignments dropped).
type Solution struct {
	Replicas    []tree.NodeID `json:"replicas"`
	Assignments []Assignment  `json:"assignments"`
}

// NumReplicas returns |R|, the objective value.
func (s *Solution) NumReplicas() int { return len(s.Replicas) }

// ReplicaSet returns R as a set.
func (s *Solution) ReplicaSet() map[tree.NodeID]bool {
	m := make(map[tree.NodeID]bool, len(s.Replicas))
	for _, r := range s.Replicas {
		m[r] = true
	}
	return m
}

// Loads returns the number of requests processed by each server.
func (s *Solution) Loads() map[tree.NodeID]int64 {
	m := make(map[tree.NodeID]int64, len(s.Replicas))
	for _, r := range s.Replicas {
		m[r] = 0
	}
	for _, a := range s.Assignments {
		m[a.Server] += a.Amount
	}
	return m
}

// Served returns, per client, the total amount of requests assigned.
func (s *Solution) Served() map[tree.NodeID]int64 {
	m := make(map[tree.NodeID]int64)
	for _, a := range s.Assignments {
		m[a.Client] += a.Amount
	}
	return m
}

// Servers returns the set of distinct servers used by client i.
func (s *Solution) Servers(i tree.NodeID) []tree.NodeID {
	seen := make(map[tree.NodeID]bool)
	var out []tree.NodeID
	for _, a := range s.Assignments {
		if a.Client == i && !seen[a.Server] {
			seen[a.Server] = true
			out = append(out, a.Server)
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

// Normalize sorts and deduplicates the replica list, merges duplicate
// (client, server) assignments and drops zero-amount entries. All
// algorithms call it before returning. It works in place and performs
// no heap allocations, so it is safe on the warm solve path.
func (s *Solution) Normalize() {
	slices.Sort(s.Replicas)
	s.Replicas = dedupIDs(s.Replicas)

	// The output is fully determined by the multiset of entries: sort
	// by (client, server), then merge adjacent runs in place.
	slices.SortFunc(s.Assignments, func(a, b Assignment) int {
		if a.Client != b.Client {
			return int(a.Client) - int(b.Client)
		}
		return int(a.Server) - int(b.Server)
	})
	out := s.Assignments[:0]
	for i := 0; i < len(s.Assignments); {
		j := i + 1
		amt := s.Assignments[i].Amount
		for j < len(s.Assignments) &&
			s.Assignments[j].Client == s.Assignments[i].Client &&
			s.Assignments[j].Server == s.Assignments[i].Server {
			amt += s.Assignments[j].Amount
			j++
		}
		if amt != 0 {
			out = append(out, Assignment{
				Client: s.Assignments[i].Client,
				Server: s.Assignments[i].Server,
				Amount: amt,
			})
		}
		i = j
	}
	s.Assignments = out
}

func dedupIDs(ids []tree.NodeID) []tree.NodeID {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// Clone returns a deep copy of the solution.
func (s *Solution) Clone() *Solution {
	c := &Solution{
		Replicas:    make([]tree.NodeID, len(s.Replicas)),
		Assignments: make([]Assignment, len(s.Assignments)),
	}
	copy(c.Replicas, s.Replicas)
	copy(c.Assignments, s.Assignments)
	return c
}

// String renders a compact summary.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "solution{|R|=%d R=%v", len(s.Replicas), s.Replicas)
	if len(s.Assignments) <= 12 {
		fmt.Fprintf(&b, " asg=%v", s.Assignments)
	}
	b.WriteString("}")
	return b.String()
}

// AddReplica appends a replica if not already present (linear scan;
// fine for construction-time use).
func (s *Solution) AddReplica(j tree.NodeID) {
	for _, r := range s.Replicas {
		if r == j {
			return
		}
	}
	s.Replicas = append(s.Replicas, j)
}

// Assign appends an assignment of amt requests of client i to server
// srv. Zero amounts are ignored.
func (s *Solution) Assign(i, srv tree.NodeID, amt int64) {
	if amt == 0 {
		return
	}
	s.Assignments = append(s.Assignments, Assignment{Client: i, Server: srv, Amount: amt})
}
