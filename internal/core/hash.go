package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"replicatree/internal/tree"
)

// This file defines the canonical instance hash: a deterministic
// binary serialisation of everything that influences a solve, fed
// through SHA-256. It is the cache key of the service layer — two
// instances with equal hashes are guaranteed to admit exactly the same
// solutions, so a cached placement can be replayed for either.
//
// The serialisation covers W, dmax and the tree arena (per node:
// parent, edge length, request rate). It deliberately excludes node
// labels: labels are presentation-only and never consulted by a
// solver, so instances differing only in labels share a hash and a
// cache line. Node IDs are part of the hash — solutions reference
// nodes by ID, so isomorphic trees with different numberings must not
// collide (their solutions are not interchangeable).

// hashVersion is bumped whenever the serialisation below changes, so
// persisted caches can never mix incompatible key spaces.
const hashVersion = 1

// CanonicalHash returns the canonical SHA-256 of the instance as a
// lowercase hex string. It is deterministic across processes and
// platforms, and defined (as a hash of what is present) even for
// instances that fail Validate.
func (in *Instance) CanonicalHash() string {
	sum := in.canonicalSum()
	return hex.EncodeToString(sum[:])
}

// CanonicalHash returns the canonical SHA-256 of the flat instance,
// byte-identical to the hash of its pointer-tree twin (pinned by
// TestFlatCanonicalHashMatchesPointer): the serialisation reads the
// same per-node fields (parent, edge length, requests) off the SoA
// arrays, so a streamed million-node instance and its materialised
// twin share a hash — and therefore a cache line and a certificate
// commitment — without ever building the pointer tree.
func (fi *FlatInstance) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(hashVersion)
	put(fi.W)
	put(fi.DMax)
	if f := fi.Flat; f != nil {
		put(int64(f.Root()))
		put(int64(f.Len()))
		for j := 0; j < f.Len(); j++ {
			put(int64(f.Parents[j]))
			put(f.EdgeLens[j]) // 0 for the root, matching the arena convention
			put(f.Reqs[j])
		}
	} else {
		put(int64(tree.None))
		put(0)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return hex.EncodeToString(sum[:])
}

func (in *Instance) canonicalSum() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(hashVersion)
	put(in.W)
	put(in.DMax)
	if t := in.Tree; t != nil {
		put(int64(t.Root()))
		put(int64(t.Len()))
		for j := 0; j < t.Len(); j++ {
			id := tree.NodeID(j)
			put(int64(t.Parent(id)))
			if id == t.Root() {
				put(0) // Dist() reports Infinity for the root; the arena stores 0
			} else {
				put(t.Dist(id))
			}
			put(t.Requests(id))
		}
	} else {
		put(int64(tree.None))
		put(0)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}
