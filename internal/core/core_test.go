package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"replicatree/internal/tree"
)

// inst builds the shared test instance:
//
//	        root
//	       /    \
//	     a(1)    b(2)
//	    /  \        \
//	c1(3,r5) c2(1,r7)  c3(4,r2)
func inst(t testing.TB, W, dmax int64) *Instance {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	bb := b.Internal(root, 2, "b")
	b.Client(a, 3, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(bb, 4, 2, "c3")
	return &Instance{Tree: b.MustBuild(), W: W, DMax: dmax}
}

func ids(t *tree.Tree, labels ...string) []tree.NodeID {
	out := make([]tree.NodeID, len(labels))
	for k, l := range labels {
		out[k] = tree.None
		for j := 0; j < t.Len(); j++ {
			if t.Label(tree.NodeID(j)) == l {
				out[k] = tree.NodeID(j)
			}
		}
		if out[k] == tree.None {
			panic("label not found: " + l)
		}
	}
	return out
}

func TestPolicyString(t *testing.T) {
	if Single.String() != "Single" || Multiple.String() != "Multiple" {
		t.Fatal("Policy.String broken")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy should still print")
	}
}

func TestInstanceValidate(t *testing.T) {
	in := inst(t, 10, NoDistance)
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if err := (&Instance{Tree: in.Tree, W: 0, DMax: 1}).Validate(); err == nil {
		t.Error("W=0 should fail")
	}
	if err := (&Instance{Tree: in.Tree, W: 5, DMax: -1}).Validate(); err == nil {
		t.Error("negative dmax should fail")
	}
	if err := (&Instance{W: 5, DMax: 1}).Validate(); err == nil {
		t.Error("nil tree should fail")
	}
}

func TestFitsLocallyAndFeasible(t *testing.T) {
	in := inst(t, 10, NoDistance)
	if !in.FitsLocally() {
		t.Error("W=10 ≥ max r=7 should fit locally")
	}
	if !in.Feasible(Single) || !in.Feasible(Multiple) {
		t.Error("W=10 should be feasible under both policies")
	}
	tight := inst(t, 6, NoDistance)
	if tight.FitsLocally() {
		t.Error("W=6 < r=7 should not fit locally")
	}
	if tight.Feasible(Single) {
		t.Error("Single infeasible when some ri > W")
	}
	if !tight.Feasible(Multiple) {
		t.Error("Multiple with 3 eligible servers × 6 ≥ 7 should be feasible")
	}
	// dmax = 0 leaves only the client itself eligible: 1×6 < 7.
	if (&Instance{Tree: tight.Tree, W: 6, DMax: 0}).Feasible(Multiple) {
		t.Error("Multiple with dmax=0 and ri > W should be infeasible")
	}
}

func TestCanServe(t *testing.T) {
	in := inst(t, 10, 3)
	n := ids(in.Tree, "c1", "a", "root", "c3", "b")
	c1, a, root, c3, b := n[0], n[1], n[2], n[3], n[4]
	if !in.CanServe(c1, c1) {
		t.Error("client can always serve itself at distance 0")
	}
	if !in.CanServe(c1, a) {
		t.Error("c1→a at distance 3 ≤ dmax=3")
	}
	if in.CanServe(c1, root) {
		t.Error("c1→root at distance 4 > dmax=3")
	}
	if in.CanServe(c1, b) {
		t.Error("b is not on c1's path")
	}
	if in.CanServe(c3, b) {
		t.Error("c3→b at distance 4 > dmax=3")
	}
}

func TestVerifyAcceptsTrivial(t *testing.T) {
	for _, dmax := range []int64{0, 2, NoDistance} {
		in := inst(t, 10, dmax)
		sol := Trivial(in)
		if sol == nil {
			t.Fatalf("Trivial returned nil for feasible instance")
		}
		for _, pol := range []Policy{Single, Multiple} {
			if err := Verify(in, pol, sol); err != nil {
				t.Errorf("Trivial rejected (dmax=%d, %v): %v", dmax, pol, err)
			}
		}
		if sol.NumReplicas() != 3 {
			t.Errorf("Trivial used %d replicas, want 3", sol.NumReplicas())
		}
	}
}

func TestTrivialNilWhenOversized(t *testing.T) {
	if Trivial(inst(t, 6, NoDistance)) != nil {
		t.Error("Trivial should be nil when some ri > W")
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	in := inst(t, 10, NoDistance)
	n := ids(in.Tree, "c1", "c2", "c3", "a", "root", "b")
	c1, c2, c3, a, root, b := n[0], n[1], n[2], n[3], n[4], n[5]

	ok := &Solution{}
	ok.AddReplica(a)
	ok.AddReplica(root)
	ok.Assign(c1, a, 5)
	ok.Assign(c2, a, 7)
	ok.Assign(c3, root, 2)
	ok.Normalize()
	if err := Verify(in, Single, ok); !errors.Is(err, ErrCapacity) {
		t.Fatalf("a holds 12 > W=10: want ErrCapacity, got %v", err)
	}

	in2 := inst(t, 12, NoDistance)
	if err := Verify(in2, Single, ok); err != nil {
		t.Fatalf("W=12 version should verify: %v", err)
	}

	// Coverage: drop c3's assignment.
	missing := ok.Clone()
	missing.Assignments = missing.Assignments[:2]
	if err := Verify(in2, Single, missing); !errors.Is(err, ErrCoverage) {
		t.Errorf("want ErrCoverage, got %v", err)
	}

	// Policy: split c2 across two servers.
	split := ok.Clone()
	split.Assignments = split.Assignments[:2]
	split.Assign(c2, a, -4) // cancel 4 of the 7 — malformed, tested below
	split = ok.Clone()
	split.Assignments = nil
	split.Assign(c1, a, 5)
	split.Assign(c2, a, 3)
	split.Assign(c2, root, 4)
	split.Assign(c3, root, 2)
	if err := Verify(in2, Single, split); !errors.Is(err, ErrPolicy) {
		t.Errorf("want ErrPolicy, got %v", err)
	}
	if err := Verify(in2, Multiple, split); err != nil {
		t.Errorf("split is legal under Multiple: %v", err)
	}

	// Distance: serve c3 (distance 4 from b... from root = 6) with a
	// tight dmax.
	tight := inst(t, 12, 3)
	if err := Verify(tight, Single, ok); !errors.Is(err, ErrDistance) {
		t.Errorf("want ErrDistance, got %v", err)
	}

	// Path: b cannot serve c1.
	off := &Solution{}
	off.AddReplica(b)
	off.Assign(c1, b, 5)
	if err := Verify(in2, Single, off); !errors.Is(err, ErrDistance) {
		t.Errorf("want ErrDistance for off-path server, got %v", err)
	}

	// Structure: assignment to a non-replica.
	nr := &Solution{}
	nr.Assign(c1, a, 5)
	if err := Verify(in2, Single, nr); !errors.Is(err, ErrStructure) {
		t.Errorf("want ErrStructure, got %v", err)
	}

	// Structure: duplicate replica.
	dup := &Solution{Replicas: []tree.NodeID{a, a}}
	if err := Verify(in2, Single, dup); !errors.Is(err, ErrStructure) {
		t.Errorf("want ErrStructure for duplicate, got %v", err)
	}

	// Structure: negative amount.
	neg := &Solution{Replicas: []tree.NodeID{a}}
	neg.Assignments = append(neg.Assignments, Assignment{Client: c1, Server: a, Amount: -1})
	if err := Verify(in2, Single, neg); !errors.Is(err, ErrStructure) {
		t.Errorf("want ErrStructure for negative amount, got %v", err)
	}

	// Structure: internal node as assignment source.
	src := &Solution{Replicas: []tree.NodeID{root}}
	src.Assignments = append(src.Assignments, Assignment{Client: a, Server: root, Amount: 1})
	if err := Verify(in2, Single, src); !errors.Is(err, ErrStructure) {
		t.Errorf("want ErrStructure for internal source, got %v", err)
	}
}

func TestSolutionNormalize(t *testing.T) {
	in := inst(t, 12, NoDistance)
	n := ids(in.Tree, "c1", "a")
	c1, a := n[0], n[1]
	s := &Solution{}
	s.Replicas = []tree.NodeID{a, a, c1}
	s.Assign(c1, a, 2)
	s.Assign(c1, a, 3)
	s.Normalize()
	if len(s.Replicas) != 2 {
		t.Fatalf("Normalize kept %d replicas, want 2", len(s.Replicas))
	}
	if len(s.Assignments) != 1 || s.Assignments[0].Amount != 5 {
		t.Fatalf("Normalize should merge to one assignment of 5, got %v", s.Assignments)
	}
}

func TestSolutionAccessors(t *testing.T) {
	in := inst(t, 12, NoDistance)
	n := ids(in.Tree, "c1", "c2", "a", "root")
	c1, c2, a, root := n[0], n[1], n[2], n[3]
	s := &Solution{}
	s.AddReplica(a)
	s.AddReplica(root)
	s.AddReplica(a) // duplicate ignored
	s.Assign(c1, a, 5)
	s.Assign(c2, a, 3)
	s.Assign(c2, root, 4)
	s.Normalize()
	if s.NumReplicas() != 2 {
		t.Fatalf("NumReplicas = %d", s.NumReplicas())
	}
	loads := s.Loads()
	if loads[a] != 8 || loads[root] != 4 {
		t.Fatalf("Loads = %v", loads)
	}
	served := s.Served()
	if served[c1] != 5 || served[c2] != 7 {
		t.Fatalf("Served = %v", served)
	}
	if got := s.Servers(c2); len(got) != 2 {
		t.Fatalf("Servers(c2) = %v", got)
	}
	if !s.ReplicaSet()[a] {
		t.Fatal("ReplicaSet missing a")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
	cl := s.Clone()
	cl.Assignments[0].Amount = 99
	if s.Assignments[0].Amount == 99 {
		t.Fatal("Clone shares assignment storage")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0}, {1, 5, 1}, {5, 5, 1}, {6, 5, 2}, {10, 5, 2}, {11, 5, 3},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLowerBounds(t *testing.T) {
	in := inst(t, 10, NoDistance)
	// total = 14, W = 10 → volume bound 2.
	if got := VolumeLowerBound(in); got != 2 {
		t.Fatalf("VolumeLowerBound = %d, want 2", got)
	}
	if got := LowerBound(in); got != 2 {
		t.Fatalf("LowerBound(NoD) = %d, want 2", got)
	}
	// With dmax = 0 every client must self-serve: 3 mandatory
	// subtrees.
	local := inst(t, 10, 0)
	if got := LowerBound(local); got != 3 {
		t.Fatalf("LowerBound(dmax=0) = %d, want 3", got)
	}
	// dmax = 3: c1 (dist 3 to a) can reach a but not root; c2 can
	// reach a and... c2→a dist 1, a→root dist 1: c2 reaches root at 2.
	// c3: dist 4 > 3 must self-serve. Subtree(a) mandatory = 5 (c1
	// cannot leave a), subtree(b) mandatory = 2.
	mid := inst(t, 10, 3)
	if got := LowerBound(mid); got != 2 {
		t.Fatalf("LowerBound(dmax=3) = %d, want 2", got)
	}
	// LowerBound dominates the volume bound.
	if LowerBound(mid) < VolumeLowerBound(mid) {
		t.Fatal("LowerBound must dominate VolumeLowerBound")
	}
}

func TestInstanceJSONRoundTrip(t *testing.T) {
	for _, dmax := range []int64{NoDistance, 0, 7} {
		in := inst(t, 10, dmax)
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		if dmax == NoDistance && strings.Contains(string(data), "dmax") {
			t.Error("NoD instances must omit dmax in JSON")
		}
		var back Instance
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back.W != in.W || back.DMax != in.DMax || back.Tree.Len() != in.Tree.Len() {
			t.Fatalf("round trip changed the instance (dmax=%d)", dmax)
		}
	}
}

func TestInstanceJSONRejectsInvalid(t *testing.T) {
	bad := []string{
		`{"w":0,"tree":{"root":0,"nodes":[{"id":0,"parent":-1},{"id":1,"parent":0,"dist":1,"requests":1}]}}`,
		`{"w":5,"dmax":-1,"tree":{"root":0,"nodes":[{"id":0,"parent":-1},{"id":1,"parent":0,"dist":1,"requests":1}]}}`,
		`{"w":5}`,
		`not json`,
	}
	for _, s := range bad {
		var in Instance
		if err := json.Unmarshal([]byte(s), &in); err == nil {
			t.Errorf("Unmarshal(%q) should fail", s)
		}
	}
}
