package decomp

import (
	"context"
	"runtime/pprof"
	"sort"
	"strconv"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Boundary coordination. Each piece was solved blind to its
// surroundings, so replicas just below a cut edge often sit
// half-empty while an ancestor replica above the cut has spare
// capacity — capacity the piece could not see. The coordination pass
// re-splits capacity across the cut edges with a dual-style price
// signal: a replica's price is its load (spare capacity is cheap),
// and each round the cheapest boundary replicas try to export their
// entire flow to ancestor replicas above their piece root, retiring
// themselves on success. Moves must stay feasible — receiving
// replicas never exceed W, and every re-routed client still meets the
// distance bound via its full client→ancestor path — so the stitched
// solution remains feasible after every round. Each retirement
// removes one replica, monotonically closing the gap toward the
// subtree-sum lower bound; the loop stops at quiescence (a round that
// retires nothing) or after maxRounds.

// upServer is an ancestor replica above a piece root, dist edges up.
type upServer struct {
	node tree.NodeID
	dist int64 // distance from the piece root to node
}

// move is one planned re-routing of part of a client's flow.
type move struct {
	client tree.NodeID
	to     tree.NodeID
	amt    int64
}

// coordinate mutates sol in place and returns the number of rounds
// executed and replicas retired. sol must be the stitched piece
// placement for pieces over fi.
func coordinate(fi *core.FlatInstance, pieces []tree.Piece, sol *core.Solution, maxRounds int) (rounds, moved int) {
	if maxRounds <= 0 || len(pieces) <= 1 {
		return 0, 0
	}
	f := fi.Flat
	n := f.Len()
	c := &coord{
		fi:     fi,
		f:      f,
		pieces: pieces,
		sol:    sol,
		pieceOf: func() []int32 {
			po := make([]int32, n)
			for k := range pieces {
				for _, g := range pieces[k].Nodes {
					po[g] = int32(k)
				}
			}
			return po
		}(),
		loads: make([]int64, n),
		isRep: make([]bool, n),
	}
	c.rootPiece = c.pieceOf[f.Root()]
	for r := 1; r <= maxRounds; r++ {
		var retired int
		// Label the round so profiles split coordination time per
		// round (go tool pprof -tags).
		pprof.Do(context.Background(), pprof.Labels("decomp_round", strconv.Itoa(r)), func(context.Context) {
			retired = c.round()
		})
		rounds = r
		moved += retired
		if retired == 0 {
			break
		}
	}
	return rounds, moved
}

type coord struct {
	fi        *core.FlatInstance
	f         *tree.Flat
	pieces    []tree.Piece
	pieceOf   []int32
	rootPiece int32
	sol       *core.Solution
	loads     []int64
	isRep     []bool
	// upCache caches, per piece and per round, the ancestor replicas
	// above the piece root within the distance budget, nearest first.
	upCache map[int32][]upServer
}

// round runs one coordination round and returns the number of
// replicas retired.
func (c *coord) round() int {
	sol := c.sol
	for i := range c.loads {
		c.loads[i] = 0
		c.isRep[i] = false
	}
	for _, r := range sol.Replicas {
		c.isRep[r] = true
	}
	for _, a := range sol.Assignments {
		c.loads[a.Server] += a.Amount
	}
	// Sort assignments by server so each replica's flow is one
	// contiguous group; groups index the pre-round prefix, which stays
	// valid because committed moves only append.
	sort.Slice(sol.Assignments, func(i, j int) bool {
		if sol.Assignments[i].Server != sol.Assignments[j].Server {
			return sol.Assignments[i].Server < sol.Assignments[j].Server
		}
		return sol.Assignments[i].Client < sol.Assignments[j].Client
	})
	groups := make(map[tree.NodeID][2]int, len(sol.Replicas))
	for i := 0; i < len(sol.Assignments); {
		j := i + 1
		for j < len(sol.Assignments) && sol.Assignments[j].Server == sol.Assignments[i].Server {
			j++
		}
		groups[sol.Assignments[i].Server] = [2]int{i, j}
		i = j
	}

	// Export candidates: replicas below a cut, cheapest (least loaded)
	// first, IDs breaking ties for determinism.
	var cands []tree.NodeID
	for _, r := range sol.Replicas {
		if c.pieceOf[r] != c.rootPiece {
			cands = append(cands, r)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if c.loads[cands[i]] != c.loads[cands[j]] {
			return c.loads[cands[i]] < c.loads[cands[j]]
		}
		return cands[i] < cands[j]
	})

	c.upCache = make(map[int32][]upServer, len(c.pieces))
	// targeted pins replicas that received flow this round: exporting
	// them too would chase a moving group (their appended assignments
	// are outside the sorted prefix).
	targeted := make(map[tree.NodeID]bool)
	planned := make(map[tree.NodeID]int64)
	var plan []move
	retired := 0
	for _, s := range cands {
		if targeted[s] || !c.isRep[s] {
			continue
		}
		g, ok := groups[s]
		if !ok {
			// A replica serving nothing retires for free.
			c.isRep[s] = false
			retired++
			continue
		}
		ups := c.ups(c.pieceOf[s])
		if len(ups) == 0 {
			continue
		}
		// Plan: every unit s serves must find ancestor capacity within
		// its distance budget, or s stays.
		plan = plan[:0]
		feasible := true
		for i := g[0]; i < g[1] && feasible; i++ {
			a := sol.Assignments[i]
			d0 := c.distToPieceRoot(a.Client, c.pieceOf[s])
			remaining := a.Amount
			for _, u := range ups {
				if !c.isRep[u.node] {
					continue
				}
				d := tree.SatAdd(d0, u.dist)
				if d > c.fi.DMax {
					break // ups are nearest-first: the rest are farther
				}
				spare := c.fi.W - c.loads[u.node] - planned[u.node]
				if spare <= 0 {
					continue
				}
				take := remaining
				if take > spare {
					take = spare
				}
				plan = append(plan, move{client: a.Client, to: u.node, amt: take})
				planned[u.node] += take
				remaining -= take
				if remaining == 0 {
					break
				}
			}
			if remaining > 0 {
				feasible = false
			}
		}
		if !feasible {
			for _, m := range plan {
				planned[m.to] -= m.amt
			}
			continue
		}
		// Commit: move the flow, retire s.
		for _, m := range plan {
			c.loads[m.to] += m.amt
			planned[m.to] -= m.amt
			targeted[m.to] = true
			sol.Assignments = append(sol.Assignments, core.Assignment{Client: m.client, Server: m.to, Amount: m.amt})
		}
		for i := g[0]; i < g[1]; i++ {
			sol.Assignments[i].Amount = 0 // tombstone, compacted below
		}
		c.isRep[s] = false
		c.loads[s] = 0
		retired++
	}
	if retired > 0 {
		out := sol.Assignments[:0]
		for _, a := range sol.Assignments {
			if a.Amount > 0 {
				out = append(out, a)
			}
		}
		sol.Assignments = out
		reps := sol.Replicas[:0]
		for _, r := range sol.Replicas {
			if c.isRep[r] {
				reps = append(reps, r)
			}
		}
		sol.Replicas = reps
	}
	return retired
}

// ups returns the ancestor replicas above piece k's root within the
// distance budget, nearest first (cached per round; retired entries
// are filtered by isRep at use).
func (c *coord) ups(k int32) []upServer {
	if v, ok := c.upCache[k]; ok {
		return v
	}
	f := c.f
	root := f.Root()
	var out []upServer
	d := int64(0)
	for cur := c.pieces[k].Boundary.Root; cur != root; {
		d = tree.SatAdd(d, f.EdgeLens[cur])
		cur = f.Parents[cur]
		if d > c.fi.DMax {
			break
		}
		if c.isRep[cur] {
			out = append(out, upServer{node: cur, dist: d})
		}
	}
	c.upCache[k] = out
	return out
}

// distToPieceRoot walks client up to piece k's root, accumulating
// edge lengths. Every server a client is assigned to lies on its
// path to the global root, so the piece root of any replica serving
// the client is one of the client's ancestors.
func (c *coord) distToPieceRoot(client tree.NodeID, k int32) int64 {
	f := c.f
	root := c.pieces[k].Boundary.Root
	d := int64(0)
	for cur := client; cur != root; cur = f.Parents[cur] {
		d = tree.SatAdd(d, f.EdgeLens[cur])
	}
	return d
}
