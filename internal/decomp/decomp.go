// Package decomp implements the subtree decomposition engine: the
// path that solves trees orders of magnitude larger than any
// whole-tree engine handles. The pipeline is
//
//  1. partition — tree.PartitionFlat splits the Flat at articulation
//     subtrees into balanced pieces (target size configurable), each a
//     self-contained instance plus a boundary record;
//  2. solve — pieces run in parallel through solver.Batch in bounded
//     waves, each worker on a pooled solver.Scratch, so peak memory is
//     one wave of piece trees, never the whole pointer forest;
//  3. stitch — piece placements remap from local to global IDs (piece
//     local ID i is Piece.Nodes[i]) into one solution, merging back
//     any piece whose isolated instance was infeasible;
//  4. coordinate — a price-guided boundary pass re-splits capacity
//     across the cut edges: the least-loaded boundary replicas (the
//     price signal: spare capacity nobody pays for) export their flow
//     to ancestor replicas above their cut, and retire. Rounds repeat
//     until no replica can be retired or the round budget is spent.
//
// The result reports Gap against the subtree-sum lower bound computed
// directly on the Flat, so a caller knows how far the decomposition
// is from the global optimum without any engine able to certify it at
// this scale.
package decomp

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

const (
	// DefaultPieceSize is the target piece size of the partitioner.
	DefaultPieceSize = 4096
	// DefaultRounds bounds the boundary coordination loop. Rounds are
	// cheap relative to the piece solves (one sort plus one sweep of
	// the assignment list) and the loop stops early at quiescence, so
	// the default is generous.
	DefaultRounds = 8
	// DefaultEngine solves the individual pieces.
	DefaultEngine = solver.MultipleGreedy
)

// Options tunes a decomposition solve.
type Options struct {
	// TargetPieceSize is the partitioner's target piece size
	// (0 = DefaultPieceSize).
	TargetPieceSize int
	// Engine names the registered engine that solves each piece
	// ("" = DefaultEngine). It must support the Multiple policy.
	Engine string
	// Rounds bounds boundary coordination (0 = DefaultRounds,
	// negative = no coordination).
	Rounds int
	// Workers bounds the piece-solve worker pool (0 = GOMAXPROCS).
	Workers int
	// Verify re-checks the stitched solution against the flat
	// instance before returning.
	Verify bool
}

func (o Options) norm() Options {
	if o.TargetPieceSize <= 0 {
		o.TargetPieceSize = DefaultPieceSize
	}
	if o.Engine == "" {
		o.Engine = DefaultEngine
	}
	if o.Rounds == 0 {
		o.Rounds = DefaultRounds
	} else if o.Rounds < 0 {
		o.Rounds = 0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Result is the outcome of a decomposition solve.
type Result struct {
	// Solution is the stitched, normalised global placement.
	Solution *core.Solution
	// Replicas is the objective |R|.
	Replicas int
	// LowerBound is the subtree-sum lower bound of the whole instance
	// and Gap the relative distance of Replicas above it
	// ((Replicas-LowerBound)/LowerBound).
	LowerBound int
	Gap        float64
	// Pieces is the number of pieces actually solved (after merges);
	// Merged counts pieces merged back because their isolated
	// instance was infeasible.
	Pieces int
	Merged int
	// Rounds is the number of coordination rounds executed and Moved
	// the number of boundary replicas they retired.
	Rounds int
	Moved  int
	// Workers is the piece-solve parallelism used.
	Workers int
	Elapsed time.Duration
}

// SolveFlat runs the decomposition pipeline on a flat instance. The
// returned solution follows the Multiple access policy (piece
// placements may be single-assignment, but coordination splits flows
// across cut edges).
func SolveFlat(ctx context.Context, fi *core.FlatInstance, opt Options) (*Result, error) {
	begin := time.Now()
	if err := fi.Validate(); err != nil {
		return nil, err
	}
	opt = opt.norm()
	eng, err := solver.Lookup(opt.Engine)
	if err != nil {
		return nil, fmt.Errorf("decomp: inner engine: %w", err)
	}
	f := fi.Flat
	res := &Result{Workers: opt.Workers}
	cuts := tree.PartitionPoints(f, opt.TargetPieceSize)
	sol := &core.Solution{}
	var pieces []tree.Piece
	for {
		pieces = tree.BuildPieces(f, cuts)
		sol.Replicas = sol.Replicas[:0]
		sol.Assignments = sol.Assignments[:0]
		failed, err := solvePieces(ctx, fi, eng, pieces, opt, sol)
		if err != nil {
			return nil, err
		}
		if len(failed) == 0 {
			break
		}
		// An infeasible piece couples too tightly to its surroundings
		// (typically a client that needs ancestor capacity above the
		// cut): merge it back by dropping its cut and re-solve. A
		// failing root piece has no cut of its own, so it absorbs
		// everything — the undecomposed fallback.
		res.Merged += len(failed)
		if failed[0] == f.Root() {
			cuts = nil
		} else {
			cuts = removeCuts(cuts, failed)
		}
	}
	res.Pieces = len(pieces)
	res.Rounds, res.Moved = coordinate(fi, pieces, sol, opt.Rounds)
	sol.Normalize()
	res.Solution = sol
	res.Replicas = sol.NumReplicas()
	res.LowerBound = fi.LowerBound()
	if res.LowerBound > 0 {
		res.Gap = float64(res.Replicas-res.LowerBound) / float64(res.LowerBound)
	}
	if opt.Verify {
		if err := fi.Verify(core.Multiple, sol); err != nil {
			return nil, fmt.Errorf("decomp: stitched solution failed verification: %w", err)
		}
	}
	res.Elapsed = time.Since(begin)
	return res, nil
}

// solvePieces solves every piece through solver.Batch in bounded
// waves, remapping each piece solution into sol as it lands. Only one
// wave of piece instances (pointer trees) is resident at a time, so
// peak memory stays bounded by workers, not by tree size. It returns
// the piece roots whose isolated solves failed (merge candidates); a
// failure with nothing left to merge is a hard error.
func solvePieces(ctx context.Context, fi *core.FlatInstance, eng solver.Engine, pieces []tree.Piece, opt Options, sol *core.Solution) ([]tree.NodeID, error) {
	f := fi.Flat
	var failed []tree.NodeID
	wave := opt.Workers * 4
	if wave < 8 {
		wave = 8
	}
	for lo := 0; lo < len(pieces); lo += wave {
		hi := min(lo+wave, len(pieces))
		tasks := make([]solver.Task, 0, hi-lo)
		for i := lo; i < hi; i++ {
			pt, err := tree.PieceTree(f, pieces[i])
			if err != nil {
				return nil, fmt.Errorf("decomp: piece %d: %w", pieces[i].Boundary.Root, err)
			}
			tasks = append(tasks, solver.Task{
				ID:     fmt.Sprintf("piece-%d", pieces[i].Boundary.Root),
				Engine: eng,
				Request: solver.Request{
					Instance: &core.Instance{Tree: pt, W: fi.W, DMax: fi.DMax},
					Deadline: time.Time{},
					// The global bound is computed once on the Flat;
					// per-piece bounds would only burn time.
					Hints: map[string]string{"no-lower-bound": "1"},
				},
			})
		}
		results, _ := solver.Batch(ctx, tasks, solver.Options{Workers: opt.Workers, WarmScratch: true})
		for k := range results {
			r := &results[k]
			p := &pieces[lo+k]
			if r.Err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return nil, cerr
				}
				if len(pieces) == 1 {
					return nil, fmt.Errorf("decomp: %s failed on the undecomposed tree: %w", eng.Name(), r.Err)
				}
				failed = append(failed, p.Boundary.Root)
				continue
			}
			// Remap local IDs to global: piece local ID i is p.Nodes[i].
			// Pieces are disjoint, so plain appends cannot duplicate.
			ps := r.Report.Solution
			for _, s := range ps.Replicas {
				sol.Replicas = append(sol.Replicas, p.Nodes[s])
			}
			for _, a := range ps.Assignments {
				sol.Assignments = append(sol.Assignments, core.Assignment{
					Client: p.Nodes[a.Client],
					Server: p.Nodes[a.Server],
					Amount: a.Amount,
				})
			}
		}
	}
	return failed, nil
}

// removeCuts returns cuts minus the drop set (both small; the merge
// path runs at most a handful of times).
func removeCuts(cuts, drop []tree.NodeID) []tree.NodeID {
	gone := make(map[tree.NodeID]bool, len(drop))
	for _, d := range drop {
		gone[d] = true
	}
	out := cuts[:0]
	for _, c := range cuts {
		if !gone[c] {
			out = append(out, c)
		}
	}
	return out
}
