package decomp

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

func flatOf(in *core.Instance) *core.FlatInstance {
	return &core.FlatInstance{Flat: tree.Flatten(in.Tree), W: in.W, DMax: in.DMax}
}

// TestSolveFlatFeasibleSweep: over random instances of both distance
// regimes and a spread of piece sizes, the stitched solution must
// verify, the bound must match the pointer-tree bound, and the
// reported gap must tie out replicas vs bound.
func TestSolveFlatFeasibleSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, withD := range []bool{false, true} {
			in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 80, MaxArity: 3, ExtraClients: 60}, withD)
			fi := flatOf(in)
			for _, target := range []int{8, 32, 1 << 20} {
				res, err := SolveFlat(context.Background(), fi, Options{TargetPieceSize: target, Verify: true})
				if err != nil {
					t.Fatalf("seed %d withD=%v target %d: %v", seed, withD, target, err)
				}
				if err := core.Verify(in, core.Multiple, res.Solution); err != nil {
					t.Fatalf("seed %d withD=%v target %d: pointer verify: %v", seed, withD, target, err)
				}
				if want := core.LowerBound(in); res.LowerBound != want {
					t.Fatalf("seed %d target %d: lower bound %d, want %d", seed, target, res.LowerBound, want)
				}
				if res.Replicas < res.LowerBound {
					t.Fatalf("seed %d target %d: replicas %d below bound %d", seed, target, res.Replicas, res.LowerBound)
				}
				wantGap := float64(res.Replicas-res.LowerBound) / float64(res.LowerBound)
				if res.Gap != wantGap {
					t.Fatalf("seed %d target %d: gap %v does not tie out (want %v)", seed, target, res.Gap, wantGap)
				}
			}
		}
	}
}

// TestSolveFlatSinglePieceMatchesInner: a target larger than the tree
// means no decomposition, so the result must equal the inner engine's
// cold solve exactly.
func TestSolveFlatSinglePieceMatchesInner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 40, MaxArity: 3, ExtraClients: 30}, true)
	fi := flatOf(in)
	res, err := SolveFlat(context.Background(), fi, Options{TargetPieceSize: 1 << 20, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pieces != 1 {
		t.Fatalf("expected a single piece, got %d", res.Pieces)
	}
	eng, err := solver.Lookup(DefaultEngine)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Solve(context.Background(), solver.Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != rep.Solution.NumReplicas() {
		t.Fatalf("single-piece decomp found %d replicas, inner engine %d", res.Replicas, rep.Solution.NumReplicas())
	}
}

// TestCoordinationImproves: boundary coordination must never lose to
// no coordination, and must strictly win somewhere in the sweep (a
// generous W leaves boundary replicas half-empty, which is exactly
// what the rounds fold upward).
func TestCoordinationImproves(t *testing.T) {
	improved := false
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 120, MaxArity: 3, ExtraClients: 80}, false)
		fi := flatOf(in)
		off, err := SolveFlat(context.Background(), fi, Options{TargetPieceSize: 16, Rounds: -1, Verify: true})
		if err != nil {
			t.Fatalf("seed %d rounds=-1: %v", seed, err)
		}
		on, err := SolveFlat(context.Background(), fi, Options{TargetPieceSize: 16, Verify: true})
		if err != nil {
			t.Fatalf("seed %d rounds=default: %v", seed, err)
		}
		if off.Rounds != 0 || off.Moved != 0 {
			t.Fatalf("seed %d: Rounds=-1 still coordinated (%d rounds, %d moved)", seed, off.Rounds, off.Moved)
		}
		if on.Replicas > off.Replicas {
			t.Fatalf("seed %d: coordination made it worse (%d > %d)", seed, on.Replicas, off.Replicas)
		}
		if on.Replicas < off.Replicas {
			improved = true
		}
	}
	if !improved {
		t.Fatal("coordination never improved a placement across the sweep")
	}
}

// registerFlaky installs a test engine that refuses any tree smaller
// than minNodes and otherwise delegates to multiple-greedy. Decomp
// pieces all fall under the threshold, so every piece solve fails and
// the merge path must cascade back to the undecomposed tree.
var registerFlaky = sync.OnceValue(func() string {
	const name = "test-flaky-small"
	inner := solver.MustLookup(solver.MultipleGreedy)
	solver.MustRegisterEngine(solver.NewEngine(solver.Capabilities{
		Name:         name,
		Policy:       core.Multiple,
		SupportsDMax: true,
		Cost:         solver.CostPolynomial,
		Description:  "test engine: fails below a node threshold",
	}, func(ctx context.Context, req solver.Request) (*core.Solution, int64, error) {
		if req.Instance.Tree.Len() < flakyMinNodes {
			return nil, 0, errors.New("tree too small for this engine")
		}
		rep, err := inner.Solve(ctx, req)
		if err != nil {
			return nil, 0, err
		}
		return rep.Solution, rep.Work, nil
	}))
	return name
})

const flakyMinNodes = 200

// TestFailedPiecesMergeBack: when every piece solve fails, the merge
// path must drop the cuts and fall back to the undecomposed tree, and
// the result must record the merges.
func TestFailedPiecesMergeBack(t *testing.T) {
	name := registerFlaky()
	rng := rand.New(rand.NewSource(7))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 120, MaxArity: 3, ExtraClients: 80}, false)
	fi := flatOf(in)
	if fi.Flat.Len() < flakyMinNodes {
		t.Fatalf("fixture too small: %d nodes", fi.Flat.Len())
	}
	res, err := SolveFlat(context.Background(), fi, Options{TargetPieceSize: 16, Engine: name, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged == 0 {
		t.Fatal("expected merged pieces")
	}
	if res.Pieces != 1 {
		t.Fatalf("expected the undecomposed fallback (1 piece), got %d", res.Pieces)
	}
	if err := core.Verify(in, core.Multiple, res.Solution); err != nil {
		t.Fatalf("merged solve is infeasible: %v", err)
	}
}

// TestEngineRegistration: the registry path must resolve "decomp",
// produce verified reports with a filled bound, and honour the
// piece-size hint.
func TestEngineRegistration(t *testing.T) {
	eng, err := solver.Lookup(solver.Decomp)
	if err != nil {
		t.Fatalf("decomp not registered: %v", err)
	}
	caps := eng.Capabilities()
	if caps.MaxNodes != 0 || caps.Cost != solver.CostPolynomial || caps.Policy != core.Multiple {
		t.Fatalf("unexpected capability document: %+v", caps)
	}
	rng := rand.New(rand.NewSource(4))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 60, MaxArity: 3, ExtraClients: 40}, true)
	rep, err := eng.Solve(context.Background(), solver.Request{
		Instance: in,
		Hints:    map[string]string{"decomp-piece-size": "16"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, rep.Policy, rep.Solution); err != nil {
		t.Fatalf("engine solution failed verification: %v", err)
	}
	if rep.LowerBound != core.LowerBound(in) {
		t.Fatalf("report bound %d, want %d", rep.LowerBound, core.LowerBound(in))
	}
	if rep.Work < 2 {
		t.Fatalf("piece-size hint ignored: %d pieces reported", rep.Work)
	}
	// A Single-policy request must be rejected: decomp's coordination
	// splits client flows across cut edges.
	if _, err := eng.Solve(context.Background(), solver.Request{Instance: in, Policy: solver.WantSingle}); err == nil {
		t.Fatal("Single-policy request accepted")
	}
}

// TestSolveFlatFromChunkedStream solves straight off the wire codec,
// the way cmd/replica -stream does.
func TestSolveFlatFromChunkedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fi, err := gen.RandomFlatInstance(rng, 5000, gen.TreeConfig{}, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := core.WriteChunked(&buf, fi, 512); err != nil {
		t.Fatal(err)
	}
	rt, err := core.ReadChunked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveFlat(context.Background(), rt, Options{TargetPieceSize: 256, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pieces < 2 {
		t.Fatalf("expected a real decomposition, got %d pieces", res.Pieces)
	}
	if res.Replicas < res.LowerBound {
		t.Fatalf("replicas %d below bound %d", res.Replicas, res.LowerBound)
	}
}

func TestSolveFlatCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := gen.RandomInstance(rng, gen.TreeConfig{Internals: 60, MaxArity: 3, ExtraClients: 40}, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveFlat(ctx, flatOf(in), Options{TargetPieceSize: 8}); err == nil {
		t.Fatal("cancelled solve succeeded")
	}
}
