package decomp

import (
	"context"
	"strconv"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/tree"
)

// Engine registration. decomp imports solver, so the registry cannot
// reference this package statically; linking it (a blank import in
// cmd/replica, cmd/goldengen and internal/service) is what makes
// "decomp" resolvable — the auto portfolio then routes oversized
// instances here by name.
func init() {
	solver.MustRegisterEngine(newEngine())
}

// newEngine wraps SolveFlat in the standard engine contract. The
// pointer-tree request is flattened on entry; the huge-tree paths
// (cmd/replica -stream, benchrec) skip this wrapper and call
// SolveFlat directly so no pointer tree ever exists.
//
// Request hints: "decomp-piece-size", "decomp-rounds" and
// "decomp-engine" override the corresponding Options fields.
func newEngine() solver.Engine {
	caps := solver.Capabilities{
		Name:         solver.Decomp,
		Policy:       core.Multiple,
		SupportsDMax: true,
		Cost:         solver.CostPolynomial,
		MaxNodes:     0, // unbounded: the engine the others route to when they are not
		Description:  "subtree decomposition: partitioned parallel piece solves with boundary coordination",
	}
	return solver.NewEngine(caps, func(ctx context.Context, req solver.Request) (*core.Solution, int64, error) {
		opt := Options{}
		if v := req.Hint("decomp-piece-size"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 1 {
				opt.TargetPieceSize = n
			}
		}
		if v := req.Hint("decomp-rounds"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				opt.Rounds = n
				if n == 0 {
					opt.Rounds = -1
				}
			}
		}
		if v := req.Hint("decomp-engine"); v != "" {
			opt.Engine = v
		}
		fi := &core.FlatInstance{
			Flat: tree.Flatten(req.Instance.Tree),
			W:    req.Instance.W,
			DMax: req.Instance.DMax,
		}
		res, err := SolveFlat(ctx, fi, opt)
		if err != nil {
			return nil, 0, err
		}
		return res.Solution, int64(res.Pieces), nil
	})
}
