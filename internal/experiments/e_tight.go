package experiments

import (
	"fmt"

	"replicatree/internal/gen"
	"replicatree/internal/single"
	"replicatree/internal/stats"
)

// E3TightSingleGen reproduces Fig. 3 / Theorem 3: on the family Im,
// single-gen places m(Δ+1) replicas against an optimum of m+1, so its
// ratio converges to Δ+1 — the approximation factor is tight.
func E3TightSingleGen(scale Scale) *Result {
	ms := []int{1, 2, 4, 8}
	deltas := []int{2, 3}
	if scale == Full {
		ms = []int{1, 2, 4, 8, 16, 32}
		deltas = []int{2, 3, 4}
	}
	tab := stats.NewTable("Im family: single-gen replica count vs optimum",
		"Δ", "m", "algo (paper m(Δ+1))", "opt (paper m+1)", "ratio", "limit Δ+1", "holds")
	ok := true
	for _, d := range deltas {
		for _, m := range ms {
			res, err := gen.GadgetIm(m, d)
			if err != nil {
				ok = false
				tab.AddRow(d, m, "-", "-", "-", "-", err.Error())
				continue
			}
			sol, err := single.Gen(res.Instance)
			if err != nil {
				ok = false
				tab.AddRow(d, m, "-", "-", "-", "-", err.Error())
				continue
			}
			algo := sol.NumReplicas()
			ratio := float64(algo) / float64(res.OptReplicas)
			holds := algo == res.AlgoReplicas
			if !holds {
				ok = false
			}
			tab.AddRow(d, m, fmt.Sprintf("%d (%d)", algo, res.AlgoReplicas),
				res.OptReplicas, ratio, d+1, holds)
		}
	}
	return &Result{
		ID:    "E3",
		Title: "Theorem 3 / Fig. 3 — tightness of the (Δ+1)-approximation (single-gen)",
		Table: tab,
		Notes: []string{
			"ratio(m) = m(Δ+1)/(m+1) → Δ+1 as m → ∞",
			"optimum m+1 cross-checked against the exact solver in the test suite for small m",
		},
		OK: ok,
	}
}

// E5TightSingleNoD reproduces Fig. 4 / Theorem 4: on the W = K family,
// single-nod places 2K replicas against an optimum of K+1, so its
// ratio converges to 2.
func E5TightSingleNoD(scale Scale) *Result {
	ks := []int{1, 2, 4, 8}
	if scale == Full {
		ks = []int{1, 2, 4, 8, 16, 32}
	}
	tab := stats.NewTable("Fig. 4 family: single-nod replica count vs optimum",
		"K", "algo (paper 2K)", "opt (paper K+1)", "ratio", "limit 2", "holds")
	ok := true
	for _, k := range ks {
		res, err := gen.GadgetFig4(k)
		if err != nil {
			ok = false
			tab.AddRow(k, "-", "-", "-", "-", err.Error())
			continue
		}
		sol, err := single.NoD(res.Instance)
		if err != nil {
			ok = false
			tab.AddRow(k, "-", "-", "-", "-", err.Error())
			continue
		}
		algo := sol.NumReplicas()
		ratio := float64(algo) / float64(res.OptReplicas)
		holds := algo == res.AlgoReplicas
		if !holds {
			ok = false
		}
		tab.AddRow(k, fmt.Sprintf("%d (%d)", algo, res.AlgoReplicas),
			res.OptReplicas, ratio, 2, holds)
	}
	return &Result{
		ID:    "E5",
		Title: "Theorem 4 / Fig. 4 — tightness of the 2-approximation (single-nod)",
		Table: tab,
		Notes: []string{"ratio(K) = 2K/(K+1) → 2 as K → ∞"},
		OK:    ok,
	}
}
