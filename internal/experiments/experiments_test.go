package experiments

import (
	"strings"
	"testing"
)

// TestAllQuickReproduces runs every experiment at Quick scale and
// requires each to report REPRODUCED — this is the repository's
// one-shot "does the paper reproduce?" check.
func TestAllQuickReproduces(t *testing.T) {
	results := All(Quick, 1)
	if len(results) != 13 {
		t.Fatalf("expected 13 experiments, got %d", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Table == nil || r.Table.NumRows() == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		if !r.OK {
			t.Errorf("%s (%s): MISMATCH\n%s", r.ID, r.Title, r)
		}
		s := r.String()
		if !strings.Contains(s, r.ID) || !strings.Contains(s, "status:") {
			t.Errorf("%s: malformed rendering", r.ID)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"} {
		if !seen[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestE3ClosedForms(t *testing.T) {
	r := E3TightSingleGen(Quick)
	if !r.OK {
		t.Fatalf("E3 mismatch:\n%s", r)
	}
	// 2 deltas × 4 ms at Quick scale.
	if r.Table.NumRows() != 8 {
		t.Fatalf("E3 rows = %d, want 8", r.Table.NumRows())
	}
}

func TestE5ClosedForms(t *testing.T) {
	r := E5TightSingleNoD(Quick)
	if !r.OK {
		t.Fatalf("E5 mismatch:\n%s", r)
	}
	if r.Table.NumRows() != 4 {
		t.Fatalf("E5 rows = %d, want 4", r.Table.NumRows())
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := E7MultipleBinOptimal(Quick, 5)
	b := E7MultipleBinOptimal(Quick, 5)
	if a.Table.String() != b.Table.String() {
		t.Fatal("same seed must reproduce the same table")
	}
}

func TestResultStringStatus(t *testing.T) {
	r := E5TightSingleNoD(Quick)
	if !strings.Contains(r.String(), "REPRODUCED") {
		t.Fatalf("expected REPRODUCED status:\n%s", r)
	}
	r.OK = false
	if !strings.Contains(r.String(), "MISMATCH") {
		t.Fatal("expected MISMATCH status")
	}
}

// TestSweepsIdenticalAcrossWorkerCounts pins the Batch-refactor
// contract: the random/policy/extension sweeps must produce
// bit-identical tables whether the solver pool runs sequentially or
// wide.
func TestSweepsIdenticalAcrossWorkerCounts(t *testing.T) {
	old := Workers
	defer func() { Workers = old }()
	for _, f := range []func(Scale, int64) *Result{
		E4NoDRatio, E7MultipleBinOptimal, E8GreedyMultiple,
		E9PolicyComparison, E11LowerBounds, E12FaultTolerance,
	} {
		Workers = 1
		seq := f(Quick, 3)
		Workers = 8
		par := f(Quick, 3)
		if seq.Table.String() != par.Table.String() {
			t.Errorf("%s: parallel table diverges from sequential:\n--- workers=1\n%s\n--- workers=8\n%s",
				seq.ID, seq.Table, par.Table)
		}
	}
}
