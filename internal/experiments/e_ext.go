package experiments

import (
	"fmt"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/lp"
	"replicatree/internal/multiple"
	"replicatree/internal/sim"
	"replicatree/internal/solver"
	"replicatree/internal/stats"
)

// E11LowerBounds compares the repository's three polynomial lower
// bounds against exact optima (extension beyond the paper, which only
// uses the volume argument ⌈Σr/W⌉ inside proofs): the volume bound,
// the combinatorial distance-aware bound (core.LowerBound), the LP
// relaxation (⌈LP⌉) and — on NoD instances — the binarized Algorithm 3
// bound.
func E11LowerBounds(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 11))
	trials := 40
	if scale == Full {
		trials = 150
	}
	tab := stats.NewTable("mean (bound / optimum) on random Multiple instances — higher is tighter",
		"regime", "trials", "volume", "combinatorial", "LP ⌈relax⌉", "binarized Alg3", "all ≤ opt")
	ok := true
	for _, withD := range []bool{false, true} {
		var vol, comb, lprel, binz []float64
		valid := true
		n := 0
		ins := make([]*core.Instance, trials)
		for i := range ins {
			ins[i] = gen.RandomInstance(rng, gen.TreeConfig{
				Internals:    1 + rng.Intn(4),
				MaxArity:     3 + rng.Intn(2),
				MaxDist:      3,
				MaxReq:       9,
				ExtraClients: rng.Intn(3),
			}, withD)
		}
		opts := solveAll(solver.ExactMultiple, ins)
		for i := 0; i < trials; i++ {
			in := ins[i]
			if opts[i].Err != nil {
				ok = false
				continue
			}
			o := float64(opts[i].Solution.NumReplicas())
			if o == 0 {
				continue
			}
			n++
			v := core.VolumeLowerBound(in)
			c := core.LowerBound(in)
			l, err := lp.LowerBound(in)
			if err != nil {
				ok = false
				continue
			}
			if float64(v) > o || float64(c) > o || float64(l) > o {
				valid = false
			}
			vol = append(vol, float64(v)/o)
			comb = append(comb, float64(c)/o)
			lprel = append(lprel, float64(l)/o)
			if !withD {
				bz, err := multiple.BinarizedLowerBound(in)
				if err != nil {
					ok = false
					continue
				}
				if float64(bz) > o {
					valid = false
				}
				binz = append(binz, float64(bz)/o)
			}
		}
		if !valid {
			ok = false
		}
		bzCell := "n/a (NoD only)"
		if !withD {
			bzCell = formatMean(binz)
		}
		tab.AddRow(distLabel(withD), n, stats.Mean(vol), stats.Mean(comb),
			stats.Mean(lprel), bzCell, valid)
	}
	return &Result{
		ID:    "E11",
		Title: "Extension — lower-bound quality (volume vs combinatorial vs LP vs binarized)",
		Table: tab,
		Notes: []string{
			"all bounds verified ≤ the exact optimum on every instance",
			"the binarized bound applies to NoD only (it relies on Theorem 6 optimality, see E7)",
		},
		OK: ok,
	}
}

func formatMean(xs []float64) string {
	return fmt.Sprintf("%.3f", stats.Mean(xs))
}

// E12FaultTolerance injects replica failures into computed placements
// and measures degradation — the fault-tolerance motivation of the
// paper's introduction made quantitative. Two deployment styles are
// compared on identical instances: the tight plan (Algorithm 3 at the
// true capacity W) and a headroom plan (planned as if capacity were
// 70% of W, then operated at the full W), which buys extra replicas
// whose spare capacity absorbs failovers.
func E12FaultTolerance(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 12))
	trials := 25
	if scale == Full {
		trials = 100
	}
	tab := stats.NewTable("single-replica failure: degradation by deployment style",
		"plan", "mean replicas", "unserved frac", "rerouted frac", "degraded trials")
	ok := true

	type agg struct {
		replicas, unserved, rerouted []float64
		degraded                     int
	}
	tight, headroom := &agg{}, &agg{}

	// Generate both deployment plans up front, then solve them all in
	// one Batch fan-out: the tight plan at the true W and the headroom
	// plan at 70% of W (but never below the largest client), operated
	// at the true W.
	ins := make([]*core.Instance, trials)
	headIns := make([]*core.Instance, trials)
	for i := range ins {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    2 + rng.Intn(5),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: 1 + rng.Intn(3),
		}, false)
		ins[i] = in
		plannedW := in.W * 7 / 10
		if m := in.Tree.MaxRequests(); plannedW < m {
			plannedW = m
		}
		headIns[i] = &core.Instance{Tree: in.Tree, W: plannedW, DMax: in.DMax}
	}
	tightRes := solveAll(solver.MultipleBest, ins)
	headRes := solveAll(solver.MultipleBest, headIns)

	for i := 0; i < trials; i++ {
		in := ins[i]
		if tightRes[i].Err != nil || headRes[i].Err != nil {
			ok = false
			continue
		}
		tightSol, headSol := tightRes[i].Solution, headRes[i].Solution

		for _, pc := range []struct {
			sol *core.Solution
			a   *agg
		}{{tightSol, tight}, {headSol, headroom}} {
			if pc.sol.NumReplicas() == 0 {
				continue
			}
			loads := pc.sol.Loads()
			victim := pc.sol.Replicas[0]
			for _, r := range pc.sol.Replicas {
				if loads[r] > loads[victim] {
					victim = r
				}
			}
			fm, err := sim.RunWithFailures(in, core.Multiple, pc.sol,
				sim.Config{Steps: 20}, []sim.Failure{{Server: victim, Step: 10}})
			if err != nil {
				ok = false
				continue
			}
			pc.a.replicas = append(pc.a.replicas, float64(pc.sol.NumReplicas()))
			pc.a.unserved = append(pc.a.unserved, float64(fm.Unserved)/float64(fm.TotalEmitted))
			pc.a.rerouted = append(pc.a.rerouted, float64(fm.Rerouted)/float64(fm.TotalEmitted))
			if fm.StepsDegraded > 0 {
				pc.a.degraded++
			}
		}
	}
	tab.AddRow("tight (Alg 3 at W)", stats.Mean(tight.replicas), stats.Mean(tight.unserved),
		stats.Mean(tight.rerouted), tight.degraded)
	tab.AddRow("headroom (planned at 0.7W)", stats.Mean(headroom.replicas), stats.Mean(headroom.unserved),
		stats.Mean(headroom.rerouted), headroom.degraded)
	// Gate: headroom must strand no more demand than the tight plan.
	if stats.Mean(headroom.unserved) > stats.Mean(tight.unserved)+1e-9 {
		ok = false
	}
	return &Result{
		ID:    "E12",
		Title: "Extension — fault tolerance of placements under replica failure",
		Table: tab,
		Notes: []string{
			"failure model: the most loaded replica goes down halfway through a 20-step run",
			"re-homing: surviving path replicas, nearest first, within residual capacity (Multiple policy)",
			"planning at reduced capacity buys spare replicas that absorb failovers",
		},
		OK: ok,
	}
}
