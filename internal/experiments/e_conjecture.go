package experiments

import (
	"fmt"
	"math/rand"

	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/single"
	"replicatree/internal/stats"
)

// E13ConjectureProbe probes the paper's concluding conjecture — that a
// 3/2-approximation exists for Single-NoD-Bin, reachable by "pushing
// servers towards the root". We implement that direction as
// single.NoDPassUp (overflow remainders climb instead of being dumped
// on jmin servers) and measure three algorithms against exact optima
// on random binary NoD instances plus the Fig. 4 family:
//
//   - Algorithm 2 (proven 2-approximation; tight on Fig. 4),
//   - the pass-up variant (optimal on Fig. 4, no proven factor),
//   - their combination NoDBest (inherits the factor-2 proof).
//
// The experiment REPRODUCES if NoDBest never exceeds 3/2 on the sample
// — evidence for, not proof of, the conjecture.
func E13ConjectureProbe(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 13))
	trials := 80
	if scale == Full {
		trials = 300
	}
	tab := stats.NewTable("Single-NoD-Bin: empirical ratios vs exact optimum",
		"algorithm", "trials", "mean ratio", "max ratio", "Fig4(K=8) ratio", "≤ 3/2")
	ok := true

	type acc struct {
		name   string
		ratios []float64
		fig4   float64
	}
	accs := []*acc{
		{name: "single-nod (Alg 2)"},
		{name: "pass-up variant"},
		{name: "NoDBest (min of both)"},
	}

	for i := 0; i < trials; i++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, false)
		opt, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			ok = false
			continue
		}
		o := float64(opt.NumReplicas())
		if o == 0 {
			continue
		}
		a, err := single.NoD(in)
		if err != nil {
			ok = false
			continue
		}
		b, err := single.NoDPassUp(in)
		if err != nil {
			ok = false
			continue
		}
		c, err := single.NoDBest(in)
		if err != nil {
			ok = false
			continue
		}
		accs[0].ratios = append(accs[0].ratios, float64(a.NumReplicas())/o)
		accs[1].ratios = append(accs[1].ratios, float64(b.NumReplicas())/o)
		accs[2].ratios = append(accs[2].ratios, float64(c.NumReplicas())/o)
	}

	// The Fig. 4 anchor: Algorithm 2 at ratio 16/9, pass-up optimal.
	if res, err := gen.GadgetFig4(8); err == nil {
		o := float64(res.OptReplicas)
		if a, err := single.NoD(res.Instance); err == nil {
			accs[0].fig4 = float64(a.NumReplicas()) / o
		}
		if b, err := single.NoDPassUp(res.Instance); err == nil {
			accs[1].fig4 = float64(b.NumReplicas()) / o
		}
		if c, err := single.NoDBest(res.Instance); err == nil {
			accs[2].fig4 = float64(c.NumReplicas()) / o
		}
	} else {
		ok = false
	}

	for _, a := range accs {
		maxR := stats.Max(a.ratios)
		if a.fig4 > maxR {
			maxR = a.fig4
		}
		within := maxR <= 1.5+1e-9
		// Only the combined algorithm gates the experiment: Alg 2
		// alone provably exceeds 3/2 on Fig. 4 for large K.
		if a.name == "NoDBest (min of both)" && !within {
			ok = false
		}
		tab.AddRow(a.name, len(a.ratios), stats.Mean(a.ratios), stats.Max(a.ratios),
			fmt.Sprintf("%.3f", a.fig4), within)
	}
	return &Result{
		ID:    "E13",
		Title: "Extension — probing the conjectured 3/2-approximation for Single-NoD-Bin",
		Table: tab,
		Notes: []string{
			"the paper's conclusion conjectures a 3/2-approximation via pushing servers rootward",
			"NoDBest = min(Algorithm 2, pass-up) inherits the proven factor 2 and stayed ≤ 3/2 on every sampled instance",
			"evidence, not proof: a future failing instance here would be a counterexample to this candidate (not to the conjecture itself)",
		},
		OK: ok,
	}
}
