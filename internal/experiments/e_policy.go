package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"replicatree/internal/binpack"
	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
	"replicatree/internal/solver"
	"replicatree/internal/stats"
)

// E9PolicyComparison quantifies the introduction's motivation: how
// many servers each algorithm/policy needs on the same workloads, how
// far each sits from the unconstrained bin-packing bound, and what the
// PushUp post-pass (the conclusion's future-work idea) buys on top of
// single-nod. All means over random binary NoD instances, where every
// algorithm in the repository applies. Every algorithmic row is a
// registry sweep over the shared instance set, fanned out by
// solver.Batch; the bin-packing and volume baselines stay inline.
func E9PolicyComparison(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 9))
	trials := 40
	if scale == Full {
		trials = 200
	}
	tab := stats.NewTable("mean replica counts over random binary NoD instances",
		"algorithm", "policy", "mean |R|", "mean |R|/opt(pol)", "optimal-rate")

	type row struct {
		name   string
		solver string // empty for the inline baselines
		policy core.Policy
		sizes  []float64
		ratios []float64
		hits   int
	}
	rows := []*row{
		{name: "single-gen (Alg 1)", solver: solver.SingleGen, policy: core.Single},
		{name: "single-nod (Alg 2)", solver: solver.SingleNoD, policy: core.Single},
		{name: "single-nod + push-up", solver: solver.SinglePushUp, policy: core.Single},
		{name: "exact Single (B&B)", solver: solver.ExactSingle, policy: core.Single},
		{name: "multiple-bin (Alg 3)", solver: solver.MultipleBin, policy: core.Multiple},
		{name: "exact Multiple (B&B)", solver: solver.ExactMultiple, policy: core.Multiple},
		{name: "bin-packing FFD (no tree)", policy: core.Multiple},
		{name: "volume bound ⌈Σr/W⌉", policy: core.Multiple},
	}
	ok := true
	var savings []float64

	ins := make([]*core.Instance, trials)
	for i := range ins {
		ins[i] = gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, false)
	}
	sweeps := make(map[string][]solver.Result, len(rows))
	for _, r := range rows {
		if r.solver != "" && sweeps[r.solver] == nil {
			sweeps[r.solver] = solveAll(r.solver, ins)
		}
	}
	optSIdx, optMIdx := sweeps[solver.ExactSingle], sweeps[solver.ExactMultiple]

	for i := 0; i < trials; i++ {
		in := ins[i]
		counts := make([]int, len(rows))
		failed := false
		for k, r := range rows {
			if r.solver == "" {
				continue
			}
			res := sweeps[r.solver][i]
			if res.Err != nil {
				failed = true
				break
			}
			counts[k] = res.Solution.NumReplicas()
		}
		if failed {
			ok = false
			continue
		}
		optS, optM := optSIdx[i].Solution, optMIdx[i].Solution
		var items []int64
		for _, c := range in.Tree.Clients() {
			if r := in.Tree.Requests(c); r > 0 {
				items = append(items, r)
			}
		}
		ffd, err := binpack.FirstFitDecreasing(items, in.W)
		if err != nil {
			ok = false
			continue
		}
		counts[6] = ffd.NumBins()
		counts[7] = core.VolumeLowerBound(in)

		for k, r := range rows {
			r.sizes = append(r.sizes, float64(counts[k]))
			opt := optS.NumReplicas()
			if r.policy == core.Multiple {
				opt = optM.NumReplicas()
			}
			if opt > 0 {
				r.ratios = append(r.ratios, float64(counts[k])/float64(opt))
			}
			if counts[k] == opt {
				r.hits++
			}
		}
		if optS.NumReplicas() > 0 {
			savings = append(savings, float64(optS.NumReplicas()-optM.NumReplicas())/float64(optS.NumReplicas()))
		}
	}
	for _, r := range rows {
		pol := "Single"
		if r.policy == core.Multiple {
			pol = "Multiple"
		}
		tab.AddRow(r.name, pol, stats.Mean(r.sizes), stats.Mean(r.ratios),
			float64(r.hits)/float64(len(r.sizes)))
	}
	return &Result{
		ID:    "E9",
		Title: "Single vs Multiple policies, bin-packing baseline and push-up ablation",
		Table: tab,
		Notes: []string{
			"bin-packing rows ignore tree/distance structure: they lower-bound every placement",
			"mean optimal-savings of Multiple over Single (replicas saved / Single optimum): " +
				formatPct(stats.Mean(savings)),
		},
		OK: ok,
	}
}

func formatPct(x float64) string {
	return fmt.Sprintf("%.2f%%", 100*x)
}

// E10Scaling measures the runtime-growth claims: single-gen O(Δ·|T|),
// single-nod O((Δ log Δ + |C|)·|T|), multiple-bin O(|T|²). Caterpillar
// trees make the growth shapes visible: doubling |T| should roughly
// double the linear algorithms and quadruple multiple-bin at the
// worst case.
func E10Scaling(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 10))
	sizes := []int{100, 200, 400}
	if scale == Full {
		sizes = []int{200, 400, 800, 1600}
	}
	tab := stats.NewTable("runtime (µs) on caterpillar instances of |T| nodes",
		"|T|", "single-gen", "single-nod", "multiple-bin", "greedy(Δ=4)")
	ok := true
	for _, n := range sizes {
		cat := gen.Caterpillar(rng, n/2, 3, 9)
		w := cat.MaxRequests() + 20
		binIn := &core.Instance{Tree: cat, W: w, DMax: core.NoDistance}
		wide := gen.RandomTree(rng, gen.TreeConfig{Internals: n / 2, MaxArity: 4, MaxDist: 3, MaxReq: 9})
		wideIn := &core.Instance{Tree: wide, W: wide.MaxRequests() + 20, DMax: core.NoDistance}

		tg := timeIt(func() error { _, err := single.Gen(binIn); return err })
		tn := timeIt(func() error { _, err := single.NoD(binIn); return err })
		tb := timeIt(func() error { _, err := multiple.Bin(binIn); return err })
		tw := timeIt(func() error { _, err := multiple.Greedy(wideIn); return err })
		if tg < 0 || tn < 0 || tb < 0 || tw < 0 {
			ok = false
		}
		tab.AddRow(binIn.Tree.Len(), tg, tn, tb, tw)
	}
	return &Result{
		ID:    "E10",
		Title: "Complexity claims — runtime scaling of the three algorithms",
		Table: tab,
		Notes: []string{
			"paper: single-gen O(Δ|T|), single-nod O((Δ log Δ + |C|)|T|), multiple-bin O(|T|²)",
			"see also the Benchmark* targets in bench_test.go for allocation profiles",
		},
		OK: ok,
	}
}

// timeIt returns the best-of-3 wall time in microseconds, or -1 on
// error.
func timeIt(fn func() error) int64 {
	best := int64(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		if d := time.Since(start).Microseconds(); d < best {
			best = d
		}
	}
	return best
}
