package experiments

import (
	"fmt"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/stats"
	"replicatree/internal/tree"
)

// E1NPGadgetSingle reproduces Theorem 1 / Fig. 1: instance I2 built
// from a 3-Partition instance has an m-server Single solution iff the
// 3-Partition instance is YES. The exact solver materialises the
// optimum; the brute-force decider labels the partition instance.
func E1NPGadgetSingle(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	tab := stats.NewTable("I2 gadget: Single-NoD-Bin optimum vs 3-Partition answer",
		"m", "B", "instance", "3-part", "K=m", "opt", "opt≤K", "holds")
	ok := true

	type trial struct {
		as    []int64
		B     int64
		label string
	}
	var trials []trial
	B := int64(16)
	// Hand-built YES/NO pairs plus random YES instances.
	trials = append(trials,
		trial{[]int64{5, 5, 6, 5, 5, 6}, B, "hand-yes"},
		trial{[]int64{5, 5, 5, 5, 5, 7}, B, "hand-no"},
		trial{[]int64{5, 6, 5, 5, 6, 5, 5, 5, 6}, 16, "hand-yes-m3"},
	)
	n := 2
	if scale == Full {
		n = 6
	}
	for i := 0; i < n; i++ {
		m := 2
		if scale == Full && i%2 == 1 {
			m = 3
		}
		trials = append(trials, trial{gen.ThreePartitionYes(rng, m, B), B, fmt.Sprintf("rand-yes-%d", i)})
	}

	for _, tr := range trials {
		in, K, err := gen.GadgetI2(tr.as, tr.B)
		if err != nil {
			ok = false
			tab.AddRow("-", tr.B, tr.label, "err", "-", "-", "-", err.Error())
			continue
		}
		yes := gen.ThreePartitionExists(tr.as, tr.B)
		sol, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			ok = false
			tab.AddRow(K, tr.B, tr.label, yes, K, "-", "-", err.Error())
			continue
		}
		solvable := sol.NumReplicas() <= K
		holds := solvable == yes
		if !holds {
			ok = false
		}
		tab.AddRow(K, tr.B, tr.label, yes, K, sol.NumReplicas(), solvable, holds)
	}
	return &Result{
		ID:    "E1",
		Title: "Theorem 1 / Fig. 1 — NP-hardness gadget for Single-NoD-Bin (3-Partition)",
		Table: tab,
		Notes: []string{"reduction verified computationally: opt ≤ m ⇔ 3-Partition YES"},
		OK:    ok,
	}
}

// E2InapproxGadget reproduces Theorem 2 / Fig. 2: on instance I4 the
// optimum is 2 iff 2-Partition is YES (3 otherwise), so any algorithm
// below ratio 3/2 would decide 2-Partition. The table also shows what
// the two approximation algorithms actually return on these gaps.
func E2InapproxGadget(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 1))
	tab := stats.NewTable("I4 gadget: Single-NoD-Bin optimum vs 2-Partition answer",
		"instance", "2-part", "opt", "ratio-wall", "holds")
	ok := true

	type trial struct {
		as    []int64
		label string
	}
	trials := []trial{
		{[]int64{3, 3, 2, 2}, "hand-yes"},
		{[]int64{3, 3, 3, 1}, "hand-no"},
	}
	n := 2
	if scale == Full {
		n = 5
	}
	for i := 0; i < n; i++ {
		trials = append(trials, trial{gen.TwoPartitionYes(rng, 2+rng.Intn(3), 9), fmt.Sprintf("rand-yes-%d", i)})
	}

	for _, tr := range trials {
		in, err := gen.GadgetI4(tr.as)
		if err != nil {
			ok = false
			tab.AddRow(tr.label, "err", "-", "-", err.Error())
			continue
		}
		yes := gen.TwoPartitionExists(tr.as)
		sol, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			ok = false
			tab.AddRow(tr.label, yes, "-", "-", err.Error())
			continue
		}
		opt := sol.NumReplicas()
		want := 3
		if yes {
			want = 2
		}
		holds := opt == want
		if !holds {
			ok = false
		}
		// The "wall": distinguishing 2 from 3 requires ratio < 3/2.
		tab.AddRow(tr.label, yes, opt, "3/2", holds)
	}
	return &Result{
		ID:    "E2",
		Title: "Theorem 2 / Fig. 2 — no (3/2−ε)-approximation for Single-NoD-Bin (2-Partition)",
		Table: tab,
		Notes: []string{"opt = 2 on YES instances and 3 on NO instances: a (3/2−ε)-approximation would separate them"},
		OK:    ok,
	}
}

// E6NPGadgetMultiple reproduces Theorem 5 / Fig. 5: instance I6.
// Forward direction: the proof's explicit 4m-replica solution is
// feasible for every certificate. Converse (structured): among replica
// sets made of the 3m forced nodes plus m of n1..n2m, feasibility
// holds exactly for certificate index sets.
func E6NPGadgetMultiple(scale Scale, seed int64) *Result {
	tab := stats.NewTable("I6 gadget: Multiple-Bin with a client exceeding W",
		"m", "as", "certificate", "K=4m", "forward-ok", "structured: feasible/certificates", "holds")
	ok := true

	type trial struct {
		as []int64
		I  []int
	}
	trials := []trial{
		{[]int64{1, 1, 1, 1}, []int{1, 2}},
		{[]int64{1, 1, 2, 2, 3, 3}, []int{1, 3, 5}},
	}
	if scale == Full {
		trials = append(trials,
			trial{[]int64{2, 2, 2, 2, 3, 3}, []int{1, 2, 5}},
			trial{[]int64{1, 2, 2, 2, 2, 3, 3, 3}, []int{1, 4, 6, 8}},
		)
	}

	for _, tr := range trials {
		m := len(tr.as) / 2
		in, K, err := gen.GadgetI6(tr.as)
		if err != nil {
			ok = false
			tab.AddRow(m, fmt.Sprint(tr.as), fmt.Sprint(tr.I), "-", "-", "-", err.Error())
			continue
		}
		sol, err := gen.I6Solution(in, tr.as, tr.I)
		fwd := err == nil && sol.NumReplicas() == K && core.Verify(in, core.Multiple, sol) == nil

		feasible, certs, total := structuredCounts(in, tr.as, m)
		holds := fwd && feasible == certs
		if !holds {
			ok = false
		}
		tab.AddRow(m, fmt.Sprint(tr.as), fmt.Sprint(tr.I), K, fwd,
			fmt.Sprintf("%d/%d of %d subsets", feasible, certs, total), holds)
	}
	return &Result{
		ID:    "E6",
		Title: "Theorem 5 / Fig. 5 — NP-hardness of Multiple-Bin with ri > W (2-Partition-Equal)",
		Table: tab,
		Notes: []string{
			"forward: the proof's explicit 4m-replica solution verifies",
			"structured converse: with the 3m forced replicas fixed, an m-subset of n1..n2m is feasible iff it is a partition certificate",
		},
		OK: ok,
	}
}

// structuredCounts enumerates all m-subsets of n1..n2m on top of the
// forced replica set and compares max-flow feasibility with the
// certificate property Σ = S/2.
func structuredCounts(in *core.Instance, as []int64, m int) (feasible, certificates, total int) {
	var S int64
	for _, a := range as {
		S += a
	}
	forced := []tree.NodeID{gen.FindLabel(in.Tree, "big")}
	for j := 2*m + 1; j <= 5*m-1; j++ {
		forced = append(forced, gen.FindLabel(in.Tree, fmt.Sprintf("n%d", j)))
	}
	idx := make([]int, 0, m)
	var rec func(start int)
	rec = func(start int) {
		if len(idx) == m {
			total++
			var sum int64
			R := append([]tree.NodeID{}, forced...)
			for _, i := range idx {
				sum += as[i-1]
				R = append(R, gen.FindLabel(in.Tree, fmt.Sprintf("n%d", i)))
			}
			if sum == S/2 {
				certificates++
			}
			if exact.MultipleFeasible(in, R) {
				feasible++
			}
			return
		}
		for i := start; i <= 2*m; i++ {
			idx = append(idx, i)
			rec(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	rec(1)
	return feasible, certificates, total
}
