package experiments

import (
	"fmt"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/solver"
	"replicatree/internal/stats"
)

// E4NoDRatio reproduces Corollary 1: without distance constraints,
// single-gen is a Δ-approximation. We measure its empirical ratio
// against the exact optimum on random instances grouped by arity.
// Instances are generated sequentially; the solves fan out over the
// solver.Batch worker pool.
func E4NoDRatio(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 4))
	trials := 30
	if scale == Full {
		trials = 120
	}
	tab := stats.NewTable("single-gen on random Single-NoD instances",
		"Δ", "trials", "mean ratio", "max ratio", "bound Δ", "holds")
	ok := true
	for _, arity := range []int{2, 3, 4} {
		ins := make([]*core.Instance, trials)
		for i := range ins {
			ins[i] = gen.RandomInstance(rng, gen.TreeConfig{
				Internals:    1 + rng.Intn(4),
				MaxArity:     arity,
				MaxDist:      3,
				MaxReq:       9,
				ExtraClients: rng.Intn(3),
			}, false)
		}
		sols := solveAll(solver.SingleGen, ins)
		opts := solveAll(solver.ExactSingle, ins)
		var ratios []float64
		for i := range ins {
			if sols[i].Err != nil || opts[i].Err != nil {
				ok = false
				continue
			}
			ratios = append(ratios,
				float64(sols[i].Solution.NumReplicas())/float64(opts[i].Solution.NumReplicas()))
		}
		holds := stats.Max(ratios) <= float64(arity)+1e-9
		if !holds {
			ok = false
		}
		tab.AddRow(arity, len(ratios), stats.Mean(ratios), stats.Max(ratios), arity, holds)
	}
	return &Result{
		ID:    "E4",
		Title: "Corollary 1 — single-gen is a Δ-approximation for Single-NoD",
		Table: tab,
		Notes: []string{"random trees; optimum from the exact branch-and-bound solver"},
		OK:    ok,
	}
}

// E7MultipleBinOptimal reproduces (and stress-tests) Theorem 6. It
// measures three variants on random binary instances with ri ≤ W:
// the faithful Algorithm 3 ("eager"), the Lazy variant that drops the
// eager capacity trigger, and Best (the better of the two). The NoD
// rows confirm Theorem 6's claim fully; the with-distance rows expose
// the reproduction finding: the eager rule admits rare off-by-one
// counterexamples (a pinned 8-node example lives in
// multiple/counterexample_test.go), which Lazy repairs — while Lazy
// alone loses elsewhere, so Best dominates both.
func E7MultipleBinOptimal(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 7))
	trials := 60
	if scale == Full {
		trials = 300
	}
	tab := stats.NewTable("Algorithm 3 variants vs exact optimum on random binary instances",
		"variant", "distance", "trials", "optimal", "rate", "max gap")
	ok := true
	variants := []struct {
		name   string
		solver string
	}{
		{"eager (paper)", solver.MultipleBin},
		{"lazy", solver.MultipleLazy},
		{"best", solver.MultipleBest},
	}
	for _, withD := range []bool{false, true} {
		// One shared instance stream per distance regime so the
		// variants are compared on identical inputs.
		ins := make([]*core.Instance, trials)
		for i := range ins {
			ins[i] = gen.RandomInstance(rng, gen.TreeConfig{
				Internals:    1 + rng.Intn(5),
				MaxArity:     2,
				MaxDist:      3,
				MaxReq:       9,
				ExtraClients: rng.Intn(3),
			}, withD)
		}
		opts := make([]int, trials)
		for i, r := range solveAll(solver.ExactMultiple, ins) {
			if r.Err != nil {
				return &Result{ID: "E7", Title: "Theorem 6", Table: tab,
					Notes: []string{"exact solver failed: " + r.Err.Error()}}
			}
			opts[i] = r.Solution.NumReplicas()
		}
		for _, v := range variants {
			optimal, maxGap := 0, 0
			for i, r := range solveAll(v.solver, ins) {
				if r.Err != nil {
					ok = false
					continue
				}
				gap := r.Solution.NumReplicas() - opts[i]
				if gap == 0 {
					optimal++
				}
				if gap > maxGap {
					maxGap = gap
				}
			}
			rate := float64(optimal) / float64(trials)
			// Gate: Theorem 6 must hold exactly for the faithful
			// algorithm without distance constraints, and Best must
			// stay ≥ 99% optimal overall.
			if v.name == "eager (paper)" && !withD && optimal != trials {
				ok = false
			}
			if v.name == "best" && rate < 0.99 {
				ok = false
			}
			tab.AddRow(v.name, distLabel(withD), trials, optimal, rate, maxGap)
		}
	}
	return &Result{
		ID:    "E7",
		Title: "Theorem 6 — multiple-bin optimality (reproduction finding: eager rule not tight under dmax)",
		Table: tab,
		Notes: []string{
			"NoD rows: Theorem 6 reproduces exactly for the faithful algorithm",
			"with-distance rows: the faithful algorithm admits rare +1 counterexamples (pinned in the test suite); Best = min(eager, lazy) restores ≥99% optimality",
		},
		OK: ok,
	}
}

// E8GreedyMultiple measures the generalised Algorithm 3 on
// general-arity trees: the regime [3] proves polynomial (NoD) and the
// NP-hard distance-constrained regime, where it is a heuristic.
func E8GreedyMultiple(scale Scale, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed + 8))
	trials := 60
	if scale == Full {
		trials = 250
	}
	tab := stats.NewTable("generalised greedy (arity > 2) vs exact optimum",
		"regime", "trials", "optimal", "rate", "mean gap", "max gap")
	ok := true
	worstGapNoD := 0
	for _, withD := range []bool{false, true} {
		ins := make([]*core.Instance, trials)
		for i := range ins {
			ins[i] = gen.RandomInstance(rng, gen.TreeConfig{
				Internals:    1 + rng.Intn(4),
				MaxArity:     3 + rng.Intn(2),
				MaxDist:      3,
				MaxReq:       9,
				ExtraClients: rng.Intn(4),
			}, withD)
		}
		sols := solveAll(solver.MultipleGreedy, ins)
		opts := solveAll(solver.ExactMultiple, ins)
		optimal := 0
		var gaps []float64
		for i := range ins {
			if sols[i].Err != nil || opts[i].Err != nil {
				ok = false
				continue
			}
			gap := sols[i].Solution.NumReplicas() - opts[i].Solution.NumReplicas()
			if gap == 0 {
				optimal++
			}
			if !withD && gap > worstGapNoD {
				worstGapNoD = gap
			}
			gaps = append(gaps, float64(gap))
		}
		tab.AddRow(distLabel(withD), trials, optimal,
			float64(optimal)/float64(trials), stats.Mean(gaps), stats.Max(gaps))
	}
	return &Result{
		ID:    "E8",
		Title: "Multiple on general trees — greedy generalisation of Algorithm 3 vs optimum",
		Table: tab,
		Notes: []string{
			"NoD row: the regime the paper cites as polynomially solvable [3]; the greedy matches the optimum empirically",
			"distance row: the general problem is NP-hard — any gap here is the price of polynomial time",
			fmt.Sprintf("worst NoD gap observed: %d", worstGapNoD),
		},
		OK: ok,
	}
}

func distLabel(withD bool) string {
	if withD {
		return "with-distance"
	}
	return "NoD"
}
