// Package experiments reproduces every evaluation artifact of the
// paper: the NP-hardness gadget equivalences (Theorems 1, 2, 5 /
// Figures 1, 2, 5), the tight approximation-ratio families (Theorem 3
// / Figure 3 and Theorem 4 / Figure 4), the optimality of Algorithm 3
// (Theorem 6), and the complexity claims, plus the contextual
// comparisons the introduction motivates (Single vs Multiple,
// bin-packing bounds). Each runner returns a text table whose rows are
// the paper-vs-measured series recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/solver"
	"replicatree/internal/stats"
)

// Workers bounds the worker pools of the solver.Batch sweeps; 0 means
// GOMAXPROCS. cmd/experiments exposes it as -workers; tests pin it to
// check that parallel and sequential sweeps agree.
var Workers int

// solveAll routes one registered engine over every instance through a
// shared solver.Batch pool, returning per-instance results (with full
// reports) in input order. Instance generation stays on a single
// sequential rng stream and aggregation consumes results by index, so
// every table is bit-identical for any worker count. The sweeps
// compare raw objective values, so the per-task lower-bound block is
// skipped via the request hint.
func solveAll(name string, ins []*core.Instance) []solver.Result {
	eng := solver.MustLookup(name)
	tasks := make([]solver.Task, len(ins))
	for i, in := range ins {
		tasks[i] = solver.Task{Engine: eng, Request: solver.Request{
			Instance: in,
			Hints:    map[string]string{"no-lower-bound": "1"},
		}}
	}
	res, _ := solver.Batch(context.Background(), tasks, solver.Options{Workers: Workers})
	return res
}

// Result is one experiment's outcome.
type Result struct {
	ID    string
	Title string
	Table *stats.Table
	Notes []string
	// OK reports whether every paper-claimed value was reproduced.
	OK bool
}

func (r *Result) String() string {
	s := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	if r.OK {
		s += "status: REPRODUCED\n"
	} else {
		s += "status: MISMATCH\n"
	}
	return s
}

// Scale selects how big the experiment runs are.
type Scale int

const (
	// Quick keeps every experiment under a second or two; used by
	// tests and benchmarks.
	Quick Scale = iota
	// Full is the EXPERIMENTS.md configuration.
	Full
)

// All runs every experiment at the given scale with a deterministic
// seed.
func All(scale Scale, seed int64) []*Result {
	return []*Result{
		E1NPGadgetSingle(scale, seed),
		E2InapproxGadget(scale, seed),
		E3TightSingleGen(scale),
		E4NoDRatio(scale, seed),
		E5TightSingleNoD(scale),
		E6NPGadgetMultiple(scale, seed),
		E7MultipleBinOptimal(scale, seed),
		E8GreedyMultiple(scale, seed),
		E9PolicyComparison(scale, seed),
		E10Scaling(scale, seed),
		E11LowerBounds(scale, seed),
		E12FaultTolerance(scale, seed),
		E13ConjectureProbe(scale, seed),
	}
}

// Markdown renders the result as a markdown section, matching the
// style of EXPERIMENTS.md.
func (r *Result) Markdown() string {
	s := fmt.Sprintf("## %s — %s\n\n%s\n", r.ID, r.Title, r.Table.Markdown())
	for _, n := range r.Notes {
		s += "> " + n + "\n"
	}
	if r.OK {
		s += "\n*status: REPRODUCED*\n"
	} else {
		s += "\n*status: MISMATCH*\n"
	}
	return s
}
