package tree

import (
	"fmt"
	"sort"
)

// This file implements the subtree partitioner behind the decomp
// engine (internal/decomp): a bottom-up accumulate-and-cut pass that
// splits a Flat at subtree roots into balanced pieces. Every cut is
// at an articulation subtree — the piece hanging below a cut node is
// a complete subtree minus its own descendant pieces — so each piece
// is itself a valid rooted tree and couples to the rest of the
// instance only through the single cut edge recorded in its boundary.

// PieceBoundary records how a piece connects to the rest of the tree:
// the single cut edge above the piece root plus the aggregate demand
// figures the coordinator needs to reason about the piece without
// reading its nodes.
type PieceBoundary struct {
	// Root is the piece's root in global IDs.
	Root NodeID
	// CutParent is Root's parent in the original tree, None for the
	// piece containing the global root.
	CutParent NodeID
	// CutEdge is δ(Root), the length of the cut edge (0 for the root
	// piece).
	CutEdge int64
	// UpDist is the total edge length from Root up to the global root
	// — the residual depth budget: a client at in-piece depth d sits
	// at distance d+UpDist from the global root.
	UpDist int64
	// Demand is the total requests of clients inside the piece.
	Demand int64
	// SubtreeDemand is the total requests of the entire original
	// subtree rooted at Root (Demand plus everything cut away below).
	SubtreeDemand int64
}

// Piece is one element of a partition: a boundary record plus the
// piece's node set in global preorder (Nodes[0] == Boundary.Root,
// every other node's parent precedes it in the slice).
type Piece struct {
	Boundary PieceBoundary
	Nodes    []NodeID
}

// PartitionFlat splits f into pieces of roughly target nodes each.
// It is shorthand for BuildPieces(f, PartitionPoints(f, target)).
func PartitionFlat(f *Flat, target int) []Piece {
	return BuildPieces(f, PartitionPoints(f, target))
}

// PartitionPoints runs the accumulate-and-cut pass and returns the
// cut nodes in increasing ID order (the global root is never listed;
// it is implicitly always a piece root). Walking the postorder, each
// node accumulates the sizes of its children's uncut remainders; an
// internal non-root node whose accumulated size reaches target
// becomes a cut. Pieces therefore have between target and roughly
// 1 + maxArity·(target-1) nodes, except the root piece which may be
// smaller. An empty slice (single piece = whole tree) is valid.
func PartitionPoints(f *Flat, target int) []NodeID {
	if target < 2 {
		target = 2
	}
	n := f.Len()
	if n <= target {
		return nil
	}
	root := f.Root()
	acc := make([]int64, n)
	var cuts []NodeID
	for _, j := range f.Post {
		sz := int64(1)
		for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
			sz += acc[c]
		}
		// A cut needs sz >= target >= 2, which implies at least one
		// uncut child: the piece root stays internal inside its piece.
		if j != root && sz >= int64(target) {
			cuts = append(cuts, j)
			sz = 0
		}
		acc[j] = sz
	}
	// acc[root] == 1 means every child of the root was itself cut,
	// leaving the root piece a bare root — not a valid instance. Merge
	// the smallest-ID child cut back into the root piece.
	if len(cuts) > 0 && acc[root] == 1 {
		drop := None
		for _, c := range cuts {
			if f.Parents[c] == root && (drop == None || c < drop) {
				drop = c
			}
		}
		out := cuts[:0]
		for _, c := range cuts {
			if c != drop {
				out = append(out, c)
			}
		}
		cuts = out
	}
	sort.Slice(cuts, func(i, k int) bool { return cuts[i] < cuts[k] })
	return cuts
}

// BuildPieces materialises the partition induced by the given cut
// nodes (each must be an internal non-root node). Pieces are returned
// in preorder of their roots, so the piece containing the global root
// is always first. Every node of f lands in exactly one piece.
func BuildPieces(f *Flat, cuts []NodeID) []Piece {
	n := f.Len()
	isCut := make([]bool, n)
	for _, c := range cuts {
		isCut[c] = true
	}
	root := f.Root()
	isCut[root] = true

	// Subtree demand (requests of the full original subtree) per node,
	// for the boundary records.
	sub := make([]int64, n)
	for _, j := range f.Post {
		s := f.Reqs[j]
		for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
			s += sub[c]
		}
		sub[j] = s
	}

	pieces := make([]Piece, 0, len(cuts)+1)
	pieceOf := make([]int32, n)
	var depth int64 // root-distance of the node being visited
	dist := make([]int64, n)
	for _, j := range f.Pre {
		if j == root {
			depth = 0
		} else {
			depth = SatAdd(dist[f.Parents[j]], f.EdgeLens[j])
		}
		dist[j] = depth
		if isCut[j] {
			pb := PieceBoundary{
				Root:          j,
				CutParent:     None,
				UpDist:        depth,
				SubtreeDemand: sub[j],
			}
			if j != root {
				pb.CutParent = f.Parents[j]
				pb.CutEdge = f.EdgeLens[j]
			}
			pieceOf[j] = int32(len(pieces))
			pieces = append(pieces, Piece{Boundary: pb})
		} else {
			pieceOf[j] = pieceOf[f.Parents[j]]
		}
		k := pieceOf[j]
		pieces[k].Nodes = append(pieces[k].Nodes, j)
		pieces[k].Boundary.Demand += f.Reqs[j]
	}
	return pieces
}

// PieceTree materialises piece p as a standalone pointer Tree with
// dense local IDs: local ID i is global ID p.Nodes[i] (in particular
// the local root 0 is the piece root), which is also how callers map
// a piece solution back to global IDs. Internal nodes whose children
// were all cut away become zero-request leaf clients — valid per
// Tree.Validate, and harmless: they demand nothing.
func PieceTree(f *Flat, p Piece) (*Tree, error) {
	if len(p.Nodes) == 0 || p.Nodes[0] != p.Boundary.Root {
		return nil, fmt.Errorf("tree: malformed piece (root %d)", p.Boundary.Root)
	}
	local := make(map[NodeID]NodeID, len(p.Nodes))
	// A node is internal inside the piece iff some piece node names it
	// as parent.
	hasChild := make(map[NodeID]bool, len(p.Nodes))
	for _, g := range p.Nodes[1:] {
		hasChild[f.Parents[g]] = true
	}
	b := NewBuilder()
	for i, g := range p.Nodes {
		if i == 0 {
			local[g] = b.Root(f.Labels[g])
			continue
		}
		lp, ok := local[f.Parents[g]]
		if !ok {
			return nil, fmt.Errorf("tree: piece node %d appears before its parent", g)
		}
		if hasChild[g] {
			local[g] = b.Internal(lp, f.EdgeLens[g], f.Labels[g])
		} else {
			local[g] = b.Client(lp, f.EdgeLens[g], f.Reqs[g], f.Labels[g])
		}
	}
	return b.Build()
}
