package tree

import (
	"errors"
	"fmt"
)

// Builder constructs a Tree incrementally. Typical use:
//
//	b := tree.NewBuilder()
//	r := b.Root("root")
//	n := b.Internal(r, 1, "n1")
//	b.Client(n, 2, 10, "c1")
//	t, err := b.Build()
//
// The Builder panics on structurally impossible operations (adding a
// child to an unknown node, two roots) because those are programming
// errors; Build returns an error for semantic validation failures.
type Builder struct {
	nodes   []Node
	root    NodeID
	hasRoot bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{root: None}
}

// Len returns the number of nodes added so far.
func (b *Builder) Len() int { return len(b.nodes) }

// Root creates the root node. It must be called exactly once, before
// any other node is added. The optional label names the node.
func (b *Builder) Root(label string) NodeID {
	if b.hasRoot {
		panic("tree: Builder.Root called twice")
	}
	b.hasRoot = true
	b.root = b.push(Node{Parent: None, Label: label})
	return b.root
}

// Internal adds an internal node under parent with edge length dist.
func (b *Builder) Internal(parent NodeID, dist int64, label string) NodeID {
	b.checkParent(parent)
	id := b.push(Node{Parent: parent, Dist: dist, Label: label})
	b.nodes[parent].Children = append(b.nodes[parent].Children, id)
	return id
}

// Client adds a client (leaf) node with the given request rate under
// parent with edge length dist.
func (b *Builder) Client(parent NodeID, dist, requests int64, label string) NodeID {
	b.checkParent(parent)
	id := b.push(Node{Parent: parent, Dist: dist, Requests: requests, Label: label})
	b.nodes[parent].Children = append(b.nodes[parent].Children, id)
	return id
}

func (b *Builder) push(n Node) NodeID {
	if len(b.nodes) >= 1<<30 {
		panic("tree: too many nodes")
	}
	b.nodes = append(b.nodes, n)
	return NodeID(len(b.nodes) - 1)
}

func (b *Builder) checkParent(parent NodeID) {
	if !b.hasRoot {
		panic("tree: Builder used before Root")
	}
	if parent < 0 || int(parent) >= len(b.nodes) {
		panic(fmt.Sprintf("tree: unknown parent %d", parent))
	}
}

// Build finalises the tree and validates it. The Builder must not be
// reused afterwards.
func (b *Builder) Build() (*Tree, error) {
	if !b.hasRoot {
		return nil, errors.New("tree: Build without a root")
	}
	t := &Tree{nodes: b.nodes, root: b.root}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustBuild is Build but panics on error; intended for tests and
// generators of known-good instances.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
