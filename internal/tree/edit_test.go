package tree

import (
	"strings"
	"testing"
)

func editorFixture(t *testing.T) (*Tree, NodeID, NodeID) {
	t.Helper()
	var b Builder
	root := b.Root("root")
	n1 := b.Internal(root, 2, "n1")
	b.Client(n1, 1, 5, "c1")
	b.Client(root, 3, 7, "c2")
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return tr, root, n1
}

func TestEditorClonesInput(t *testing.T) {
	tr, _, n1 := editorFixture(t)
	before := tr.Len()
	ed := NewEditor(tr)
	if _, err := ed.AddLeaf(n1, 4, 2, "c3"); err != nil {
		t.Fatalf("AddLeaf: %v", err)
	}
	if tr.Len() != before {
		t.Fatalf("original tree grew to %d nodes; editor must clone", tr.Len())
	}
	if ed.Tree().Len() != before+1 {
		t.Fatalf("edited tree has %d nodes, want %d", ed.Tree().Len(), before+1)
	}
}

func TestEditorAddLeaf(t *testing.T) {
	tr, root, n1 := editorFixture(t)
	ed := NewEditor(tr)
	id, err := ed.AddLeaf(n1, 4, 2, "c3")
	if err != nil {
		t.Fatalf("AddLeaf: %v", err)
	}
	if want := NodeID(tr.Len()); id != want {
		t.Fatalf("new leaf id = %d, want dense append %d", id, want)
	}
	et := ed.Tree()
	if err := et.Validate(); err != nil {
		t.Fatalf("edited tree invalid: %v", err)
	}
	if et.Parent(id) != n1 || et.Dist(id) != 4 || et.Requests(id) != 2 || et.Label(id) != "c3" {
		t.Fatalf("new leaf fields wrong: parent=%d dist=%d req=%d label=%q",
			et.Parent(id), et.Dist(id), et.Requests(id), et.Label(id))
	}

	// Rejections: unknown parent, client parent, bad dist, bad rate.
	cases := []struct {
		parent         NodeID
		dist, requests int64
		frag           string
	}{
		{NodeID(et.Len() + 5), 1, 1, "unknown parent"},
		{None, 1, 1, "unknown parent"},
		{id, 1, 1, "is a client"},
		{root, -1, 1, "invalid edge length"},
		{root, Infinity, 1, "invalid edge length"},
		{root, 1, -1, "negative requests"},
	}
	for _, c := range cases {
		if _, err := ed.AddLeaf(c.parent, c.dist, c.requests, ""); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("AddLeaf(%d,%d,%d) err = %v, want %q", c.parent, c.dist, c.requests, err, c.frag)
		}
	}
	if err := et.Validate(); err != nil {
		t.Fatalf("tree invalid after rejected mutations: %v", err)
	}
}

func TestEditorSetRequests(t *testing.T) {
	tr, _, n1 := editorFixture(t)
	ed := NewEditor(tr)
	c1 := ed.Tree().Children(n1)[0]
	if err := ed.SetRequests(c1, 9); err != nil {
		t.Fatalf("SetRequests: %v", err)
	}
	if got := ed.Tree().Requests(c1); got != 9 {
		t.Fatalf("requests = %d, want 9", got)
	}
	// Zero models removal without renumbering.
	if err := ed.SetRequests(c1, 0); err != nil {
		t.Fatalf("SetRequests(0): %v", err)
	}
	if err := ed.Tree().Validate(); err != nil {
		t.Fatalf("tree invalid after zeroing: %v", err)
	}
	if err := ed.SetRequests(n1, 1); err == nil || !strings.Contains(err.Error(), "internal") {
		t.Errorf("SetRequests on internal node: err = %v", err)
	}
	if err := ed.SetRequests(c1, -3); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("SetRequests(-3): err = %v", err)
	}
	if err := ed.SetRequests(NodeID(99), 1); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("SetRequests(unknown): err = %v", err)
	}
}

func TestEditorSetEdgeLen(t *testing.T) {
	tr, root, n1 := editorFixture(t)
	ed := NewEditor(tr)
	if err := ed.SetEdgeLen(n1, 7); err != nil {
		t.Fatalf("SetEdgeLen: %v", err)
	}
	if got := ed.Tree().Dist(n1); got != 7 {
		t.Fatalf("dist = %d, want 7", got)
	}
	if err := ed.Tree().Validate(); err != nil {
		t.Fatalf("tree invalid after edit: %v", err)
	}
	if err := ed.SetEdgeLen(root, 1); err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("SetEdgeLen(root): err = %v", err)
	}
	if err := ed.SetEdgeLen(n1, -1); err == nil || !strings.Contains(err.Error(), "invalid edge length") {
		t.Errorf("SetEdgeLen(-1): err = %v", err)
	}
	if err := ed.SetEdgeLen(n1, Infinity); err == nil || !strings.Contains(err.Error(), "invalid edge length") {
		t.Errorf("SetEdgeLen(Infinity): err = %v", err)
	}
	if err := ed.SetEdgeLen(NodeID(99), 1); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("SetEdgeLen(unknown): err = %v", err)
	}
}
