package tree

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file implements serialisation of trees: a JSON wire format used
// by the CLI tools, and Graphviz DOT export for visual inspection of
// instances and placements.

// jsonNode is the wire representation of a node. The tree is encoded
// as a flat node list plus the root ID, which round-trips the arena
// exactly.
type jsonNode struct {
	ID       NodeID `json:"id"`
	Parent   NodeID `json:"parent"` // -1 for the root
	Dist     int64  `json:"dist"`
	Requests int64  `json:"requests,omitempty"`
	Label    string `json:"label,omitempty"`
}

type jsonTree struct {
	Root  NodeID     `json:"root"`
	Nodes []jsonNode `json:"nodes"`
}

// MarshalJSON encodes the tree as a flat node list.
func (t *Tree) MarshalJSON() ([]byte, error) {
	jt := jsonTree{Root: t.root, Nodes: make([]jsonNode, len(t.nodes))}
	for j := range t.nodes {
		n := &t.nodes[j]
		jt.Nodes[j] = jsonNode{
			ID:       NodeID(j),
			Parent:   n.Parent,
			Dist:     n.Dist,
			Requests: n.Requests,
			Label:    n.Label,
		}
	}
	return json.Marshal(jt)
}

// UnmarshalJSON decodes a tree from the flat node-list format and
// validates it.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var jt jsonTree
	if err := json.Unmarshal(data, &jt); err != nil {
		return err
	}
	nodes := make([]Node, len(jt.Nodes))
	for _, jn := range jt.Nodes {
		if jn.ID < 0 || int(jn.ID) >= len(nodes) {
			return fmt.Errorf("tree: json node id %d out of range [0,%d)", jn.ID, len(nodes))
		}
		nodes[jn.ID] = Node{
			Parent:   jn.Parent,
			Dist:     jn.Dist,
			Requests: jn.Requests,
			Label:    jn.Label,
		}
	}
	// Rebuild children lists in node-ID order for determinism.
	for _, jn := range jt.Nodes {
		if jn.Parent != None {
			if jn.Parent < 0 || int(jn.Parent) >= len(nodes) {
				return fmt.Errorf("tree: json node %d has out-of-range parent %d", jn.ID, jn.Parent)
			}
			nodes[jn.Parent].Children = append(nodes[jn.Parent].Children, jn.ID)
		}
	}
	for j := range nodes {
		sort.Slice(nodes[j].Children, func(a, b int) bool {
			return nodes[j].Children[a] < nodes[j].Children[b]
		})
	}
	nt := Tree{nodes: nodes, root: jt.Root}
	if err := nt.Validate(); err != nil {
		return err
	}
	*t = nt
	return nil
}

// DOT renders the tree in Graphviz format. Nodes listed in replicas are
// drawn filled; a nil set is fine.
func (t *Tree) DOT(replicas map[NodeID]bool) string {
	var b strings.Builder
	b.WriteString("digraph tree {\n  rankdir=BT;\n")
	for j := range t.nodes {
		id := NodeID(j)
		shape := "ellipse"
		label := t.Name(id)
		if t.IsClient(id) {
			shape = "box"
			label = fmt.Sprintf("%s\\nr=%d", label, t.nodes[j].Requests)
		}
		attrs := fmt.Sprintf("shape=%s,label=\"%s\"", shape, label)
		if replicas[id] {
			attrs += ",style=filled,fillcolor=lightblue"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", j, attrs)
	}
	for j := range t.nodes {
		if p := t.nodes[j].Parent; p != None {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d\"];\n", j, p, t.nodes[j].Dist)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String returns a compact single-line summary, useful in test output.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{nodes=%d clients=%d arity=%d requests=%d}",
		t.Len(), t.NumClients(), t.Arity(), t.TotalRequests())
}
