package tree

// This file holds derived queries over a Tree: traversals, distance and
// subtree computations, and aggregate statistics. All are O(|T|) or
// better and none mutate the tree.

// Clients returns the client (leaf) nodes in increasing ID order.
func (t *Tree) Clients() []NodeID {
	out := make([]NodeID, 0, len(t.nodes))
	for j := range t.nodes {
		if len(t.nodes[j].Children) == 0 {
			out = append(out, NodeID(j))
		}
	}
	return out
}

// Internals returns the internal nodes in increasing ID order.
func (t *Tree) Internals() []NodeID {
	out := make([]NodeID, 0, len(t.nodes))
	for j := range t.nodes {
		if len(t.nodes[j].Children) > 0 {
			out = append(out, NodeID(j))
		}
	}
	return out
}

// NumClients returns |C|.
func (t *Tree) NumClients() int {
	n := 0
	for j := range t.nodes {
		if len(t.nodes[j].Children) == 0 {
			n++
		}
	}
	return n
}

// Arity returns Δ, the maximum number of children of any node.
func (t *Tree) Arity() int {
	a := 0
	for j := range t.nodes {
		if len(t.nodes[j].Children) > a {
			a = len(t.nodes[j].Children)
		}
	}
	return a
}

// IsBinary reports whether every node has at most two children.
func (t *Tree) IsBinary() bool { return t.Arity() <= 2 }

// TotalRequests returns Σ ri over all clients.
func (t *Tree) TotalRequests() int64 {
	var sum int64
	for j := range t.nodes {
		sum += t.nodes[j].Requests
	}
	return sum
}

// MaxRequests returns max ri over all clients (0 for an all-internal,
// hence invalid, tree).
func (t *Tree) MaxRequests() int64 {
	var m int64
	for j := range t.nodes {
		if t.nodes[j].Requests > m {
			m = t.nodes[j].Requests
		}
	}
	return m
}

// Depth returns the number of edges on the path from j to the root.
func (t *Tree) Depth(j NodeID) int {
	d := 0
	for j != t.root {
		j = t.nodes[j].Parent
		d++
	}
	return d
}

// Height returns the maximum depth over all nodes.
func (t *Tree) Height() int {
	h := 0
	for j := range t.nodes {
		if d := t.Depth(NodeID(j)); d > h {
			h = d
		}
	}
	return h
}

// PathToRoot returns the node path i = i1 → i2 → … → ik = root.
func (t *Tree) PathToRoot(i NodeID) []NodeID {
	var path []NodeID
	for {
		path = append(path, i)
		if i == t.root {
			return path
		}
		i = t.nodes[i].Parent
	}
}

// IsAncestor reports whether a is an ancestor of j (or a == j).
func (t *Tree) IsAncestor(a, j NodeID) bool {
	for {
		if j == a {
			return true
		}
		if j == t.root {
			return false
		}
		j = t.nodes[j].Parent
	}
}

// DistanceUp returns the sum of edge lengths on the path from i up to
// ancestor a. It panics if a is not an ancestor of i. DistanceUp(i, i)
// is 0.
func (t *Tree) DistanceUp(i, a NodeID) int64 {
	var d int64
	for i != a {
		if i == t.root {
			panic("tree: DistanceUp target is not an ancestor")
		}
		d = satAdd(d, t.nodes[i].Dist)
		i = t.nodes[i].Parent
	}
	return d
}

// satAdd adds two non-negative int64 saturating at Infinity.
func satAdd(a, b int64) int64 {
	if a > Infinity-b {
		return Infinity
	}
	return a + b
}

// SatAdd exposes saturating addition of non-negative edge lengths for
// other packages that accumulate distances against the Infinity
// sentinel.
func SatAdd(a, b int64) int64 { return satAdd(a, b) }

// PostOrder calls fn on every node in post-order (children before
// parents), which is the traversal order of all bottom-up algorithms
// in this repository.
func (t *Tree) PostOrder(fn func(j NodeID)) {
	var rec func(j NodeID)
	rec = func(j NodeID) {
		for _, c := range t.nodes[j].Children {
			rec(c)
		}
		fn(j)
	}
	rec(t.root)
}

// PreOrder calls fn on every node in pre-order (parents before
// children).
func (t *Tree) PreOrder(fn func(j NodeID)) {
	var rec func(j NodeID)
	rec = func(j NodeID) {
		fn(j)
		for _, c := range t.nodes[j].Children {
			rec(c)
		}
	}
	rec(t.root)
}

// Subtree returns all nodes of subtree(j), including j, in pre-order.
func (t *Tree) Subtree(j NodeID) []NodeID {
	var out []NodeID
	var rec func(j NodeID)
	rec = func(j NodeID) {
		out = append(out, j)
		for _, c := range t.nodes[j].Children {
			rec(c)
		}
	}
	rec(j)
	return out
}

// SubtreeRequests returns Σ ri over clients in subtree(j).
func (t *Tree) SubtreeRequests(j NodeID) int64 {
	var sum int64
	var rec func(j NodeID)
	rec = func(j NodeID) {
		sum += t.nodes[j].Requests
		for _, c := range t.nodes[j].Children {
			rec(c)
		}
	}
	rec(j)
	return sum
}

// SubtreeRequestsAll returns, for every node j, Σ ri over clients in
// subtree(j), computed in a single post-order pass.
func (t *Tree) SubtreeRequestsAll() []int64 {
	sums := make([]int64, len(t.nodes))
	t.PostOrder(func(j NodeID) {
		s := t.nodes[j].Requests
		for _, c := range t.nodes[j].Children {
			s += sums[c]
		}
		sums[j] = s
	})
	return sums
}

// EligibleServers returns, for client i, the nodes on the path from i
// to the root that are within distance dmax of i — the candidate
// servers for i's requests under both policies. The client itself
// (distance 0) is always included.
func (t *Tree) EligibleServers(i NodeID, dmax int64) []NodeID {
	var out []NodeID
	var d int64
	j := i
	for {
		if d <= dmax {
			out = append(out, j)
		} else {
			break
		}
		if j == t.root {
			break
		}
		d = satAdd(d, t.nodes[j].Dist)
		j = t.nodes[j].Parent
	}
	return out
}
