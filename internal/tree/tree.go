// Package tree implements the distribution-tree substrate used by the
// replica placement algorithms: a rooted tree whose leaves are clients
// issuing requests and whose edges carry non-negative integer lengths.
//
// The representation is an index-based arena: nodes are identified by
// dense NodeIDs, which makes the algorithms allocation-free in their
// inner loops and keeps instances trivially serialisable.
package tree

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node inside a Tree. IDs are dense: valid IDs are
// 0..Len()-1. The zero value is a valid ID (usually the root).
type NodeID int32

// None is the null NodeID, used for the parent of the root.
const None NodeID = -1

// Infinity is the edge length conceptually assigned to the (absent)
// edge above the root: requests can never travel past the root.
const Infinity int64 = math.MaxInt64

// Node is a single tree node. Exactly the leaves are clients.
type Node struct {
	Parent   NodeID   // None for the root
	Children []NodeID // empty for clients
	Dist     int64    // δ: length of the edge to Parent (0 for the root)
	Requests int64    // r: request rate; 0 for internal nodes
	Label    string   // optional human-readable name
}

// Tree is an immutable rooted distribution tree. Construct one with a
// Builder; a zero Tree is empty and invalid.
type Tree struct {
	nodes []Node
	root  NodeID
}

// Len returns the total number of nodes |C ∪ N|.
func (t *Tree) Len() int { return len(t.nodes) }

// Root returns the root node ID.
func (t *Tree) Root() NodeID { return t.root }

// Parent returns the parent of j, or None if j is the root.
func (t *Tree) Parent(j NodeID) NodeID { return t.nodes[j].Parent }

// Children returns the children of j. The returned slice must not be
// modified.
func (t *Tree) Children(j NodeID) []NodeID { return t.nodes[j].Children }

// Dist returns δj, the length of the edge from j to its parent. For the
// root it returns Infinity, matching the paper's convention δr = +∞.
func (t *Tree) Dist(j NodeID) int64 {
	if j == t.root {
		return Infinity
	}
	return t.nodes[j].Dist
}

// Requests returns rj for a client, 0 for internal nodes.
func (t *Tree) Requests(j NodeID) int64 { return t.nodes[j].Requests }

// Label returns the optional label of j (may be empty).
func (t *Tree) Label(j NodeID) string { return t.nodes[j].Label }

// IsClient reports whether j is a leaf (client) node.
func (t *Tree) IsClient(j NodeID) bool { return len(t.nodes[j].Children) == 0 }

// IsRoot reports whether j is the root.
func (t *Tree) IsRoot(j NodeID) bool { return j == t.root }

// Valid reports whether j is a valid node ID for this tree.
func (t *Tree) Valid(j NodeID) bool { return j >= 0 && int(j) < len(t.nodes) }

// Name returns the label of j if set, otherwise a synthetic "n<ID>"
// or "c<ID>" name.
func (t *Tree) Name(j NodeID) string {
	if l := t.nodes[j].Label; l != "" {
		return l
	}
	if t.IsClient(j) {
		return fmt.Sprintf("c%d", j)
	}
	return fmt.Sprintf("n%d", j)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	nodes := make([]Node, len(t.nodes))
	copy(nodes, t.nodes)
	for i := range nodes {
		if len(nodes[i].Children) > 0 {
			c := make([]NodeID, len(nodes[i].Children))
			copy(c, nodes[i].Children)
			nodes[i].Children = c
		}
	}
	return &Tree{nodes: nodes, root: t.root}
}

// Validate checks the structural invariants of the tree:
// a single root, consistent parent/children links, acyclicity,
// non-negative edge lengths, clients exactly at the leaves, and
// non-negative request counts that are zero on internal nodes.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return errors.New("tree: empty tree")
	}
	if !t.Valid(t.root) {
		return fmt.Errorf("tree: root %d out of range", t.root)
	}
	if t.nodes[t.root].Parent != None {
		return fmt.Errorf("tree: root %d has a parent", t.root)
	}
	if len(t.nodes[t.root].Children) == 0 {
		return errors.New("tree: root must be an internal node (paper: r ∈ N)")
	}
	seen := make([]bool, len(t.nodes))
	var walk func(j NodeID, depth int) error
	walk = func(j NodeID, depth int) error {
		if !t.Valid(j) {
			return fmt.Errorf("tree: node id %d out of range", j)
		}
		if seen[j] {
			return fmt.Errorf("tree: node %d reached twice (cycle or shared child)", j)
		}
		if depth > len(t.nodes) {
			return errors.New("tree: depth exceeds node count (cycle)")
		}
		seen[j] = true
		n := &t.nodes[j]
		if n.Requests < 0 {
			return fmt.Errorf("tree: node %d has negative requests %d", j, n.Requests)
		}
		if j != t.root {
			if n.Dist < 0 {
				return fmt.Errorf("tree: node %d has negative edge length %d", j, n.Dist)
			}
			if n.Dist == Infinity {
				return fmt.Errorf("tree: node %d has infinite edge length", j)
			}
		}
		if len(n.Children) == 0 {
			// Leaf: must be a client. (A request count of zero is
			// allowed; such clients are trivially satisfied.)
			return nil
		}
		if n.Requests != 0 {
			return fmt.Errorf("tree: internal node %d has requests %d", j, n.Requests)
		}
		for _, c := range n.Children {
			if !t.Valid(c) {
				return fmt.Errorf("tree: node %d has out-of-range child %d", j, c)
			}
			if t.nodes[c].Parent != j {
				return fmt.Errorf("tree: child %d of %d has parent %d", c, j, t.nodes[c].Parent)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	for j := range seen {
		if !seen[j] {
			return fmt.Errorf("tree: node %d unreachable from root", j)
		}
	}
	return nil
}
