package tree

import (
	"encoding/json"
	"strings"
	"testing"
)

// sample builds the small tree used across these tests:
//
//	      root
//	     /    \
//	    a(1)   b(2)
//	   /  \      \
//	c1(3,r5) c2(1,r7)  c3(4,r2)
func sample(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	bb := b.Internal(root, 2, "b")
	b.Client(a, 3, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(bb, 4, 2, "c3")
	tr, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tr
}

func TestBuilderBasics(t *testing.T) {
	tr := sample(t)
	if got := tr.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if got := tr.NumClients(); got != 3 {
		t.Fatalf("NumClients = %d, want 3", got)
	}
	if got := tr.Arity(); got != 2 {
		t.Fatalf("Arity = %d, want 2", got)
	}
	if !tr.IsBinary() {
		t.Fatal("IsBinary = false, want true")
	}
	if got := tr.TotalRequests(); got != 14 {
		t.Fatalf("TotalRequests = %d, want 14", got)
	}
	if got := tr.MaxRequests(); got != 7 {
		t.Fatalf("MaxRequests = %d, want 7", got)
	}
}

func TestRootConventions(t *testing.T) {
	tr := sample(t)
	r := tr.Root()
	if !tr.IsRoot(r) {
		t.Fatal("IsRoot(root) = false")
	}
	if tr.Parent(r) != None {
		t.Fatalf("Parent(root) = %d, want None", tr.Parent(r))
	}
	if tr.Dist(r) != Infinity {
		t.Fatalf("Dist(root) = %d, want Infinity", tr.Dist(r))
	}
}

func TestClientsAndInternals(t *testing.T) {
	tr := sample(t)
	cs := tr.Clients()
	if len(cs) != 3 {
		t.Fatalf("Clients = %v, want 3 nodes", cs)
	}
	for _, c := range cs {
		if !tr.IsClient(c) {
			t.Errorf("node %d in Clients() but IsClient false", c)
		}
		if tr.Requests(c) == 0 {
			t.Errorf("client %d has zero requests in sample", c)
		}
	}
	is := tr.Internals()
	if len(is) != 3 {
		t.Fatalf("Internals = %v, want 3 nodes", is)
	}
	for _, n := range is {
		if tr.IsClient(n) {
			t.Errorf("node %d in Internals() but IsClient true", n)
		}
		if tr.Requests(n) != 0 {
			t.Errorf("internal %d has requests", n)
		}
	}
}

func TestDepthHeightPath(t *testing.T) {
	tr := sample(t)
	// Find c1 by label.
	var c1 NodeID = None
	for _, c := range tr.Clients() {
		if tr.Label(c) == "c1" {
			c1 = c
		}
	}
	if c1 == None {
		t.Fatal("c1 not found")
	}
	if got := tr.Depth(c1); got != 2 {
		t.Fatalf("Depth(c1) = %d, want 2", got)
	}
	if got := tr.Height(); got != 2 {
		t.Fatalf("Height = %d, want 2", got)
	}
	path := tr.PathToRoot(c1)
	if len(path) != 3 || path[0] != c1 || path[2] != tr.Root() {
		t.Fatalf("PathToRoot(c1) = %v", path)
	}
	if !tr.IsAncestor(tr.Root(), c1) {
		t.Fatal("root should be ancestor of c1")
	}
	if !tr.IsAncestor(c1, c1) {
		t.Fatal("IsAncestor(x, x) should be true")
	}
	if tr.IsAncestor(c1, tr.Root()) {
		t.Fatal("c1 should not be ancestor of root")
	}
}

func TestDistanceUp(t *testing.T) {
	tr := sample(t)
	var c1 NodeID
	for _, c := range tr.Clients() {
		if tr.Label(c) == "c1" {
			c1 = c
		}
	}
	a := tr.Parent(c1)
	if got := tr.DistanceUp(c1, c1); got != 0 {
		t.Fatalf("DistanceUp(c1,c1) = %d, want 0", got)
	}
	if got := tr.DistanceUp(c1, a); got != 3 {
		t.Fatalf("DistanceUp(c1,a) = %d, want 3", got)
	}
	if got := tr.DistanceUp(c1, tr.Root()); got != 4 {
		t.Fatalf("DistanceUp(c1,root) = %d, want 4", got)
	}
}

func TestSatAdd(t *testing.T) {
	if got := SatAdd(1, 2); got != 3 {
		t.Fatalf("SatAdd(1,2) = %d", got)
	}
	if got := SatAdd(Infinity, 5); got != Infinity {
		t.Fatalf("SatAdd(inf,5) = %d, want Infinity", got)
	}
	if got := SatAdd(Infinity-1, 5); got != Infinity {
		t.Fatalf("SatAdd(inf-1,5) = %d, want Infinity", got)
	}
}

func TestEligibleServers(t *testing.T) {
	tr := sample(t)
	var c1 NodeID
	for _, c := range tr.Clients() {
		if tr.Label(c) == "c1" {
			c1 = c
		}
	}
	// c1 at distance 0; a at 3; root at 4.
	cases := []struct {
		dmax int64
		want int
	}{
		{0, 1},
		{2, 1},
		{3, 2},
		{4, 3},
		{Infinity, 3},
	}
	for _, tc := range cases {
		if got := len(tr.EligibleServers(c1, tc.dmax)); got != tc.want {
			t.Errorf("EligibleServers(c1, %d) has %d nodes, want %d", tc.dmax, got, tc.want)
		}
	}
}

func TestPostOrderVisitsChildrenFirst(t *testing.T) {
	tr := sample(t)
	pos := make(map[NodeID]int)
	i := 0
	tr.PostOrder(func(j NodeID) {
		pos[j] = i
		i++
	})
	if i != tr.Len() {
		t.Fatalf("PostOrder visited %d nodes, want %d", i, tr.Len())
	}
	for j := 0; j < tr.Len(); j++ {
		id := NodeID(j)
		for _, c := range tr.Children(id) {
			if pos[c] > pos[id] {
				t.Errorf("child %d visited after parent %d", c, id)
			}
		}
	}
}

func TestPreOrderVisitsParentsFirst(t *testing.T) {
	tr := sample(t)
	pos := make(map[NodeID]int)
	i := 0
	tr.PreOrder(func(j NodeID) {
		pos[j] = i
		i++
	})
	for j := 0; j < tr.Len(); j++ {
		id := NodeID(j)
		for _, c := range tr.Children(id) {
			if pos[c] < pos[id] {
				t.Errorf("child %d visited before parent %d", c, id)
			}
		}
	}
}

func TestSubtreeRequests(t *testing.T) {
	tr := sample(t)
	sums := tr.SubtreeRequestsAll()
	if sums[tr.Root()] != tr.TotalRequests() {
		t.Fatalf("subtree sum at root = %d, want %d", sums[tr.Root()], tr.TotalRequests())
	}
	for j := 0; j < tr.Len(); j++ {
		id := NodeID(j)
		if got := tr.SubtreeRequests(id); got != sums[id] {
			t.Errorf("SubtreeRequests(%d) = %d, SubtreeRequestsAll = %d", id, got, sums[id])
		}
		if len(tr.Subtree(id)) == 0 || tr.Subtree(id)[0] != id {
			t.Errorf("Subtree(%d) should start with %d", id, id)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := sample(t)
	cl := tr.Clone()
	if cl.Len() != tr.Len() || cl.Root() != tr.Root() {
		t.Fatal("clone differs structurally")
	}
	// Mutating the clone's children slice must not affect the
	// original.
	cl.nodes[cl.root].Children[0] = 99
	if tr.nodes[tr.root].Children[0] == 99 {
		t.Fatal("Clone shares children slices with original")
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	mk := func(mut func(*Tree)) error {
		tr := sample(t).Clone()
		mut(tr)
		return tr.Validate()
	}
	if err := mk(func(tr *Tree) {}); err != nil {
		t.Fatalf("sample should validate, got %v", err)
	}
	if err := mk(func(tr *Tree) { tr.nodes[1].Requests = 5 }); err == nil {
		t.Error("internal node with requests should fail")
	}
	if err := mk(func(tr *Tree) { tr.nodes[3].Requests = -1 }); err == nil {
		t.Error("negative requests should fail")
	}
	if err := mk(func(tr *Tree) { tr.nodes[3].Dist = -2 }); err == nil {
		t.Error("negative edge length should fail")
	}
	if err := mk(func(tr *Tree) { tr.nodes[1].Parent = 1 }); err == nil {
		t.Error("self-parent should fail")
	}
	if err := mk(func(tr *Tree) { tr.nodes[0].Children = tr.nodes[0].Children[:1] }); err == nil {
		t.Error("unreachable node should fail")
	}
	if err := mk(func(tr *Tree) { tr.nodes[3].Dist = Infinity }); err == nil {
		t.Error("infinite edge length should fail")
	}
	// Empty and single-node trees.
	empty := &Tree{}
	if err := empty.Validate(); err == nil {
		t.Error("empty tree should fail")
	}
	single := &Tree{nodes: []Node{{Parent: None, Requests: 3}}, root: 0}
	if err := single.Validate(); err == nil {
		t.Error("single-node tree should fail (root must be internal)")
	}
}

func TestBuilderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("double root", func() {
		b := NewBuilder()
		b.Root("r")
		b.Root("r2")
	})
	expectPanic("child before root", func() {
		b := NewBuilder()
		b.Internal(0, 1, "x")
	})
	expectPanic("unknown parent", func() {
		b := NewBuilder()
		b.Root("r")
		b.Client(42, 1, 1, "c")
	})
}

func TestBuildErrors(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("Build without root should fail")
	}
	b := NewBuilder()
	b.Root("r")
	if _, err := b.Build(); err == nil {
		t.Error("root without children should fail")
	}
	b2 := NewBuilder()
	r := b2.Root("r")
	b2.Client(r, -1, 1, "c")
	if _, err := b2.Build(); err == nil {
		t.Error("negative distance should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample(t)
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Len() != tr.Len() || back.Root() != tr.Root() {
		t.Fatal("round trip changed structure")
	}
	for j := 0; j < tr.Len(); j++ {
		id := NodeID(j)
		if back.Parent(id) != tr.Parent(id) ||
			back.Requests(id) != tr.Requests(id) ||
			back.Label(id) != tr.Label(id) {
			t.Errorf("node %d differs after round trip", id)
		}
		if id != tr.Root() && back.Dist(id) != tr.Dist(id) {
			t.Errorf("node %d dist differs after round trip", id)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped tree invalid: %v", err)
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	bad := []string{
		`{"root":0,"nodes":[]}`,
		`{"root":0,"nodes":[{"id":5,"parent":-1}]}`,
		`{"root":0,"nodes":[{"id":0,"parent":-1},{"id":1,"parent":7,"dist":1}]}`,
		`not json`,
	}
	for _, s := range bad {
		var tr Tree
		if err := json.Unmarshal([]byte(s), &tr); err == nil {
			t.Errorf("Unmarshal(%q) should fail", s)
		}
	}
}

func TestDOT(t *testing.T) {
	tr := sample(t)
	dot := tr.DOT(map[NodeID]bool{tr.Root(): true})
	for _, want := range []string{"digraph", "lightblue", "r=5", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestNameFallback(t *testing.T) {
	b := NewBuilder()
	r := b.Root("")
	b.Client(r, 1, 1, "")
	tr := b.MustBuild()
	if got := tr.Name(r); got != "n0" {
		t.Errorf("Name(root) = %q, want n0", got)
	}
	if got := tr.Name(1); got != "c1" {
		t.Errorf("Name(client) = %q, want c1", got)
	}
}

func TestStringSummary(t *testing.T) {
	tr := sample(t)
	s := tr.String()
	if !strings.Contains(s, "nodes=6") || !strings.Contains(s, "clients=3") {
		t.Errorf("String() = %q", s)
	}
}
