package tree

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildSample returns a small fixed tree exercising arity > 2, labels
// and zero-request clients.
func buildSample(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	r := b.Root("root")
	n1 := b.Internal(r, 2, "n1")
	n2 := b.Internal(r, 1, "")
	b.Client(n1, 3, 7, "c1")
	b.Client(n1, 1, 0, "c2")
	n3 := b.Internal(n2, 4, "n3")
	b.Client(n2, 2, 5, "")
	b.Client(n3, 1, 9, "c4")
	b.Client(n3, 2, 4, "c5")
	b.Client(n3, 3, 1, "c6")
	return b.MustBuild()
}

// randomTreeForFlat grows a random tree through the Builder.
func randomTreeForFlat(rng *rand.Rand, internals, maxArity int) *Tree {
	b := NewBuilder()
	parents := []NodeID{b.Root("")}
	for i := 1; i < internals; i++ {
		p := parents[rng.Intn(len(parents))]
		parents = append(parents, b.Internal(p, 1+rng.Int63n(4), ""))
	}
	for _, p := range parents {
		kids := 1 + rng.Intn(maxArity)
		for k := 0; k < kids; k++ {
			b.Client(p, 1+rng.Int63n(4), rng.Int63n(10), "")
		}
	}
	return b.MustBuild()
}

func TestFlattenRoundTrip(t *testing.T) {
	trees := []*Tree{buildSample(t)}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		trees = append(trees, randomTreeForFlat(rng, 1+rng.Intn(30), 1+rng.Intn(4)))
	}
	for ti, tr := range trees {
		f := Flatten(tr)
		back, err := f.Tree()
		if err != nil {
			t.Fatalf("tree %d: round-trip rebuild failed: %v", ti, err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatalf("tree %d: round trip not identical", ti)
		}
	}
}

func TestFlatMatchesTreeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		tr := randomTreeForFlat(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		f := Flatten(tr)
		if f.Len() != tr.Len() {
			t.Fatalf("Len: %d != %d", f.Len(), tr.Len())
		}
		if f.Root() != tr.Root() {
			t.Fatalf("Root: %d != %d", f.Root(), tr.Root())
		}
		if f.NumClients() != tr.NumClients() {
			t.Fatalf("NumClients: %d != %d", f.NumClients(), tr.NumClients())
		}
		if f.MaxRequests() != tr.MaxRequests() {
			t.Fatalf("MaxRequests: %d != %d", f.MaxRequests(), tr.MaxRequests())
		}
		if f.IsBinary() != tr.IsBinary() {
			t.Fatalf("IsBinary mismatch")
		}
		for j := 0; j < tr.Len(); j++ {
			id := NodeID(j)
			if f.Parents[j] != tr.Parent(id) {
				t.Fatalf("parent of %d: %d != %d", j, f.Parents[j], tr.Parent(id))
			}
			if f.Dist(id) != tr.Dist(id) {
				t.Fatalf("dist of %d: %d != %d", j, f.Dist(id), tr.Dist(id))
			}
			if f.Reqs[j] != tr.Requests(id) {
				t.Fatalf("requests of %d", j)
			}
			if f.IsClient(id) != tr.IsClient(id) {
				t.Fatalf("IsClient of %d", j)
			}
			if f.NumChildren(id) != len(tr.Children(id)) {
				t.Fatalf("child count of %d", j)
			}
			k := 0
			for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
				if c != tr.Children(id)[k] {
					t.Fatalf("child %d of %d: %d != %d", k, j, c, tr.Children(id)[k])
				}
				k++
			}
		}
	}
}

func TestFlatTraversalPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		tr := randomTreeForFlat(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		f := Flatten(tr)
		var pre, post []NodeID
		tr.PreOrder(func(j NodeID) { pre = append(pre, j) })
		tr.PostOrder(func(j NodeID) { post = append(post, j) })
		if !reflect.DeepEqual(f.Pre, pre) {
			t.Fatalf("preorder mismatch:\n flat %v\n tree %v", f.Pre, pre)
		}
		if !reflect.DeepEqual(f.Post, post) {
			t.Fatalf("postorder mismatch:\n flat %v\n tree %v", f.Post, post)
		}
	}
}

// TestFlattenIntoReuse pins the ingestion contract: re-flattening a
// same-shape tree into a warmed Flat performs no allocations.
func TestFlattenIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTreeForFlat(rng, 30, 3)
	var f Flat
	FlattenInto(&f, tr)
	avg := testing.AllocsPerRun(20, func() {
		FlattenInto(&f, tr)
	})
	if avg != 0 {
		t.Fatalf("FlattenInto on warmed Flat allocated %.1f times per run", avg)
	}
	back, err := f.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatal("round trip after reuse not identical")
	}
}
