package tree

// This file implements Flat, the structure-of-arrays (SoA) twin of
// Tree. A Tree stores one Node struct per node with a per-node
// Children slice; Flat stores the same information as parallel index
// arrays (parent / first-child / next-sibling) plus contiguous edge
// length and request slices and precomputed pre/postorder index
// permutations. Built once per instance, a Flat is the substrate of
// the zero-allocation warm solve path: the bottom-up algorithms
// iterate the postorder permutation instead of recursing, and every
// per-node lookup is an array index instead of a pointer chase.
//
// Flat complements the pointer Tree, it does not replace it: the
// Builder, JSON codecs and generators keep producing Trees, and
// Flatten/Tree convert losslessly in both directions (IDs, child
// order and labels are preserved).

// Flat is the SoA representation of a rooted distribution tree. The
// arrays are parallel and indexed by NodeID; child lists are encoded
// as FirstChild/NextSibling chains that preserve the Tree's child
// order. Treat a Flat as immutable once built.
type Flat struct {
	// Parents[j] is the parent of j, None for the root.
	Parents []NodeID
	// FirstChild[j] is j's first child (None for clients);
	// NextSibling[c] chains the remaining children in order.
	FirstChild  []NodeID
	NextSibling []NodeID
	// EdgeLens[j] is δj, the length of the edge to the parent
	// (0 for the root — use Dist for the paper's δr = +∞ convention).
	EdgeLens []int64
	// Reqs[j] is rj for clients, 0 for internal nodes.
	Reqs []int64
	// Labels[j] is the optional human-readable name (may be empty).
	Labels []string
	// Pre and Post are index permutations: Pre lists nodes parents
	// before children, Post children before parents, both visiting
	// children in child-list order. They match the recursive
	// Tree.PreOrder/Tree.PostOrder visit sequences exactly.
	Pre  []NodeID
	Post []NodeID

	root       NodeID
	numClients int
}

// Len returns the total number of nodes.
func (f *Flat) Len() int { return len(f.Parents) }

// Root returns the root node ID.
func (f *Flat) Root() NodeID { return f.root }

// NumClients returns |C|.
func (f *Flat) NumClients() int { return f.numClients }

// IsClient reports whether j is a leaf (client) node.
func (f *Flat) IsClient(j NodeID) bool { return f.FirstChild[j] == None }

// Dist returns δj with the same convention as Tree.Dist: Infinity for
// the root, the stored edge length otherwise.
func (f *Flat) Dist(j NodeID) int64 {
	if j == f.root {
		return Infinity
	}
	return f.EdgeLens[j]
}

// NumChildren returns the number of children of j.
func (f *Flat) NumChildren(j NodeID) int {
	n := 0
	for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
		n++
	}
	return n
}

// MaxRequests returns max rj over all nodes, mirroring
// Tree.MaxRequests.
func (f *Flat) MaxRequests() int64 {
	var m int64
	for _, r := range f.Reqs {
		if r > m {
			m = r
		}
	}
	return m
}

// IsBinary reports whether every node has at most two children.
func (f *Flat) IsBinary() bool {
	for j := range f.Parents {
		if f.NumChildren(NodeID(j)) > 2 {
			return false
		}
	}
	return true
}

// Flatten builds the SoA representation of t.
func Flatten(t *Tree) *Flat {
	f := &Flat{}
	FlattenInto(f, t)
	return f
}

// FlattenInto rebuilds f from t, reusing f's existing array capacity.
// It is the ingestion step of the warm solve path: a pooled scratch
// re-ingests many instances over its lifetime, and after the arrays
// have grown to a working set's size, re-flattening allocates
// nothing.
func FlattenInto(f *Flat, t *Tree) {
	n := t.Len()
	f.Parents = growIDs(f.Parents, n)
	f.FirstChild = growIDs(f.FirstChild, n)
	f.NextSibling = growIDs(f.NextSibling, n)
	f.Pre = growIDs(f.Pre, n)
	f.Post = growIDs(f.Post, n)
	f.EdgeLens = growInt64s(f.EdgeLens, n)
	f.Reqs = growInt64s(f.Reqs, n)
	if cap(f.Labels) < n {
		f.Labels = make([]string, n)
	}
	f.Labels = f.Labels[:n]
	f.root = t.root
	f.numClients = 0

	for j := range t.nodes {
		nd := &t.nodes[j]
		f.Parents[j] = nd.Parent
		f.EdgeLens[j] = nd.Dist
		f.Reqs[j] = nd.Requests
		f.Labels[j] = nd.Label
		if len(nd.Children) == 0 {
			f.FirstChild[j] = None
			f.numClients++
		} else {
			f.FirstChild[j] = nd.Children[0]
			for k := 0; k+1 < len(nd.Children); k++ {
				f.NextSibling[nd.Children[k]] = nd.Children[k+1]
			}
			f.NextSibling[nd.Children[len(nd.Children)-1]] = None
		}
	}
	f.NextSibling[f.root] = None
	f.computeOrders()
}

// computeOrders fills f.Pre and f.Post from the parent/child-chain
// arrays. The chain arrays must be complete and f.Pre/f.Post must
// already have length f.Len(). Shared by FlattenInto and FlatBuilder.
func (f *Flat) computeOrders() {
	n := f.Len()
	// Preorder: explicit stack, children pushed in reverse so they pop
	// in child-list order — identical to the recursive PreOrder.
	// Postorder: pop order "node then children pushed in order" is the
	// reverse of postorder, so fill Post back to front.
	var stk [64]NodeID
	s := stk[:0]
	s = append(s, f.root)
	pi := 0
	for len(s) > 0 {
		j := s[len(s)-1]
		s = s[:len(s)-1]
		f.Pre[pi] = j
		pi++
		// Push children in reverse child order.
		nc := 0
		for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
			s = append(s, c)
			nc++
		}
		// Reverse the just-pushed block so the first child pops first.
		for a, b := len(s)-nc, len(s)-1; a < b; a, b = a+1, b-1 {
			s[a], s[b] = s[b], s[a]
		}
	}
	s = s[:0]
	s = append(s, f.root)
	oi := n
	for len(s) > 0 {
		j := s[len(s)-1]
		s = s[:len(s)-1]
		oi--
		f.Post[oi] = j
		for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
			s = append(s, c)
		}
	}
}

// Tree converts the SoA representation back to a pointer Tree. The
// result is structurally identical to the original: same IDs, same
// child order, same labels. The reconstructed tree is validated.
func (f *Flat) Tree() (*Tree, error) {
	n := f.Len()
	nodes := make([]Node, n)
	for j := 0; j < n; j++ {
		nodes[j] = Node{
			Parent:   f.Parents[j],
			Dist:     f.EdgeLens[j],
			Requests: f.Reqs[j],
			Label:    f.Labels[j],
		}
		for c := f.FirstChild[j]; c != None; c = f.NextSibling[c] {
			nodes[j].Children = append(nodes[j].Children, c)
		}
	}
	t := &Tree{nodes: nodes, root: f.root}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func growIDs(s []NodeID, n int) []NodeID {
	if cap(s) < n {
		return make([]NodeID, n)
	}
	return s[:n]
}

func growInt64s(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}
