package tree

import "fmt"

// Editor mutates a private clone of a Tree in place. Trees are
// documented immutable — every consumer may hold aliases into one —
// so mutation is only safe on a copy with a single owner; Editor
// enforces that ownership by cloning at construction and never
// handing the clone out for further cloning-free sharing.
//
// The supported mutations are exactly the ones that keep node IDs
// dense and stable: new leaves are appended (IDs only grow), request
// rates and edge lengths are overwritten in place, and nothing is
// ever removed (callers model client removal by zeroing the rate).
// That stability is what lets incremental solvers keep per-NodeID
// state across mutations.
//
// Every mutation validates its local invariant (the ones
// Tree.Validate checks globally), so the edited tree is valid after
// every successful call — there is no deferred "commit" step.
type Editor struct {
	t *Tree
}

// NewEditor returns an Editor over a private clone of t.
func NewEditor(t *Tree) *Editor {
	return &Editor{t: t.Clone()}
}

// Tree returns the edited tree. The pointer is stable across
// mutations (mutations happen in place); callers that key caches on
// tree identity must account for that.
func (e *Editor) Tree() *Tree { return e.t }

// AddLeaf appends a new client with the given rate under parent,
// returning its ID (always the previous Len). The parent must be an
// existing internal node: attaching under a client would turn it
// into an internal node and silently drop its own requests.
func (e *Editor) AddLeaf(parent NodeID, dist, requests int64, label string) (NodeID, error) {
	t := e.t
	if !t.Valid(parent) {
		return None, fmt.Errorf("tree: edit: unknown parent %d", parent)
	}
	if t.IsClient(parent) {
		return None, fmt.Errorf("tree: edit: parent %d is a client; leaves attach to internal nodes only", parent)
	}
	if dist < 0 || dist == Infinity {
		return None, fmt.Errorf("tree: edit: invalid edge length %d", dist)
	}
	if requests < 0 {
		return None, fmt.Errorf("tree: edit: negative requests %d", requests)
	}
	if len(t.nodes) >= 1<<30 {
		return None, fmt.Errorf("tree: edit: too many nodes")
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, Node{Parent: parent, Dist: dist, Requests: requests, Label: label})
	t.nodes[parent].Children = append(t.nodes[parent].Children, id)
	return id, nil
}

// SetRequests overwrites the request rate of client j. Zero is
// allowed — a zero-rate client is served vacuously — which is how
// removal is modelled without renumbering IDs.
func (e *Editor) SetRequests(j NodeID, requests int64) error {
	t := e.t
	if !t.Valid(j) {
		return fmt.Errorf("tree: edit: unknown node %d", j)
	}
	if !t.IsClient(j) {
		return fmt.Errorf("tree: edit: node %d is internal; only clients carry requests", j)
	}
	if requests < 0 {
		return fmt.Errorf("tree: edit: negative requests %d", requests)
	}
	t.nodes[j].Requests = requests
	return nil
}

// SetEdgeLen overwrites δj, the length of the edge from j to its
// parent. The root has no such edge.
func (e *Editor) SetEdgeLen(j NodeID, dist int64) error {
	t := e.t
	if !t.Valid(j) {
		return fmt.Errorf("tree: edit: unknown node %d", j)
	}
	if j == t.root {
		return fmt.Errorf("tree: edit: the root has no parent edge")
	}
	if dist < 0 || dist == Infinity {
		return fmt.Errorf("tree: edit: invalid edge length %d", dist)
	}
	t.nodes[j].Dist = dist
	return nil
}
