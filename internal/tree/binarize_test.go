package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func wideSample() *Tree {
	b := NewBuilder()
	root := b.Root("root")
	x := b.Internal(root, 2, "x")
	b.Client(x, 1, 5, "a")
	b.Client(x, 2, 6, "b")
	b.Client(x, 3, 7, "c")
	b.Client(x, 4, 8, "d")
	b.Client(root, 5, 9, "e")
	return b.MustBuild()
}

func TestBinarizeStructure(t *testing.T) {
	orig := wideSample()
	bz := Binarize(orig)
	bt := bz.Tree
	if err := bt.Validate(); err != nil {
		t.Fatal(err)
	}
	if !bt.IsBinary() {
		t.Fatalf("binarized tree has arity %d", bt.Arity())
	}
	if bt.NumClients() != orig.NumClients() {
		t.Fatalf("clients %d != %d", bt.NumClients(), orig.NumClients())
	}
	if bt.TotalRequests() != orig.TotalRequests() {
		t.Fatalf("requests %d != %d", bt.TotalRequests(), orig.TotalRequests())
	}
	// x had 4 children: 2 virtual nodes inserted.
	virtuals := 0
	for j := range bz.Virtual {
		if bz.Virtual[j] {
			virtuals++
			if bt.Dist(NodeID(j)) != 0 {
				t.Errorf("virtual node %d has non-zero edge %d", j, bt.Dist(NodeID(j)))
			}
		}
	}
	if virtuals != 2 {
		t.Fatalf("virtuals = %d, want 2", virtuals)
	}
	if len(bz.Orig) != bt.Len() || len(bz.Virtual) != bt.Len() {
		t.Fatal("mapping length mismatch")
	}
}

// TestBinarizePreservesDistances: every client's distance to every
// original ancestor is unchanged.
func TestBinarizePreservesDistances(t *testing.T) {
	orig := wideSample()
	bz := Binarize(orig)
	bt := bz.Tree

	// Locate binarized counterparts by label.
	find := func(tt *Tree, label string) NodeID {
		for j := 0; j < tt.Len(); j++ {
			if tt.Label(NodeID(j)) == label {
				return NodeID(j)
			}
		}
		t.Fatalf("label %s not found", label)
		return None
	}
	for _, client := range []string{"a", "b", "c", "d", "e"} {
		co, cb := find(orig, client), find(bt, client)
		if orig.Requests(co) != bt.Requests(cb) {
			t.Errorf("%s: requests changed", client)
		}
		if got, want := bt.DistanceUp(cb, bt.Root()), orig.DistanceUp(co, orig.Root()); got != want {
			t.Errorf("%s: root distance %d != %d", client, got, want)
		}
	}
}

func TestBinarizeIdentityOnBinary(t *testing.T) {
	b := NewBuilder()
	root := b.Root("r")
	b.Client(root, 1, 3, "l")
	b.Client(root, 2, 4, "rr")
	orig := b.MustBuild()
	bz := Binarize(orig)
	if bz.Tree.Len() != orig.Len() {
		t.Fatalf("binary tree gained nodes: %d -> %d", orig.Len(), bz.Tree.Len())
	}
	for _, v := range bz.Virtual {
		if v {
			t.Fatal("binary tree should need no virtual nodes")
		}
	}
}

func TestProject(t *testing.T) {
	orig := wideSample()
	bz := Binarize(orig)
	// Project every binarized node: virtual nodes collapse onto x.
	all := make([]NodeID, bz.Tree.Len())
	for j := range all {
		all[j] = NodeID(j)
	}
	proj := bz.Project(all)
	if len(proj) != orig.Len() {
		t.Fatalf("projection has %d nodes, want %d", len(proj), orig.Len())
	}
}

// TestBinarizeQuick: random trees binarize into valid binary trees
// with preserved client distances and request totals.
func TestBinarizeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		root := b.Root("")
		nodes := []NodeID{root}
		for i := 0; i < 3+rng.Intn(20); i++ {
			p := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Internal(p, rng.Int63n(4), ""))
		}
		for _, n := range nodes {
			for k := 0; k <= rng.Intn(3); k++ {
				b.Client(n, rng.Int63n(4), rng.Int63n(9), "")
			}
		}
		orig, err := b.Build()
		if err != nil {
			return true // builder rejected a degenerate shape; fine
		}
		bz := Binarize(orig)
		if bz.Tree.Validate() != nil || !bz.Tree.IsBinary() {
			return false
		}
		if bz.Tree.TotalRequests() != orig.TotalRequests() {
			return false
		}
		if bz.Tree.NumClients() != orig.NumClients() {
			return false
		}
		// Height in distance terms: max root distance must match.
		maxD := func(tt *Tree) int64 {
			var m int64
			for _, c := range tt.Clients() {
				if d := tt.DistanceUp(c, tt.Root()); d > m {
					m = d
				}
			}
			return m
		}
		return maxD(bz.Tree) == maxD(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
