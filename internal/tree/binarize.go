package tree

// Binarization: transform an arbitrary-arity distribution tree into a
// binary one by chaining the children of wide nodes through virtual
// internal nodes connected by zero-length edges.
//
// The transform preserves all client-to-ancestor distances (virtual
// edges have length 0), but it *adds candidate server locations* — the
// virtual nodes. Consequently, for the Multiple policy, the optimum of
// the binarized instance is a lower bound on the optimum of the
// original instance, and Algorithm 3 (exact on binary trees without
// distance constraints) turns into a polynomial lower-bound engine for
// general trees. See core.BinarizedLowerBound.

// Binarized couples the transformed tree with the mapping back to the
// original node IDs.
type Binarized struct {
	Tree *Tree
	// Orig[j] is the original node a binarized node j corresponds to;
	// virtual nodes map to the original node whose children they
	// chain (so projecting a placement keeps it on the original
	// node's position in the hierarchy).
	Orig []NodeID
	// Virtual[j] reports whether binarized node j was inserted by the
	// transform.
	Virtual []bool
}

// Binarize returns an equivalent-distance binary tree. Nodes with more
// than two children keep their first child and push the remaining
// children under a chain of virtual nodes attached with zero-length
// edges:
//
//	    x                    x
//	 / | | \       →        / \
//	a  b c  d              a   v1(0)
//	                           / \
//	                          b   v2(0)
//	                              / \
//	                             c   d
//
// Trees that are already binary are copied structurally (the result is
// always a fresh tree).
func Binarize(t *Tree) *Binarized {
	b := &Binarized{}
	nb := NewBuilder()

	var build func(orig NodeID, parent NodeID, dist int64)
	record := func(id NodeID, orig NodeID, virtual bool) {
		// Builder assigns dense increasing IDs, so appending stays in
		// sync with the arena.
		if int(id) != len(b.Orig) {
			panic("tree: binarize bookkeeping out of sync")
		}
		b.Orig = append(b.Orig, orig)
		b.Virtual = append(b.Virtual, virtual)
	}

	var attach func(children []NodeID, parent NodeID, orig NodeID)
	attach = func(children []NodeID, parent NodeID, orig NodeID) {
		switch len(children) {
		case 0:
			return
		case 1:
			build(children[0], parent, t.nodes[children[0]].Dist)
		case 2:
			build(children[0], parent, t.nodes[children[0]].Dist)
			build(children[1], parent, t.nodes[children[1]].Dist)
		default:
			build(children[0], parent, t.nodes[children[0]].Dist)
			v := nb.Internal(parent, 0, "")
			record(v, orig, true)
			attach(children[1:], v, orig)
		}
	}

	build = func(orig NodeID, parent NodeID, dist int64) {
		n := &t.nodes[orig]
		if len(n.Children) == 0 {
			id := nb.Client(parent, dist, n.Requests, n.Label)
			record(id, orig, false)
			return
		}
		id := nb.Internal(parent, dist, n.Label)
		record(id, orig, false)
		attach(n.Children, id, orig)
	}

	rootID := nb.Root(t.nodes[t.root].Label)
	record(rootID, t.root, false)
	attach(t.nodes[t.root].Children, rootID, t.root)

	b.Tree = nb.MustBuild()
	return b
}

// Project maps a set of binarized node IDs back to original node IDs.
// Virtual nodes map to the original node they were expanded from, so
// the projected set may be smaller than the input (several virtual
// nodes collapse onto one original node).
func (b *Binarized) Project(nodes []NodeID) []NodeID {
	seen := make(map[NodeID]bool, len(nodes))
	var out []NodeID
	for _, j := range nodes {
		o := b.Orig[j]
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}
