package tree_test

// Property tests for the subtree partitioner: over random and
// structured shapes and a spread of targets, pieces must be disjoint,
// cover the tree exactly, stay valid instances, and carry boundary
// records consistent with the original tree.

import (
	"math/rand"
	"testing"

	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func partitionShapes(t *testing.T) map[string]*tree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	return map[string]*tree.Tree{
		"random":      gen.RandomTree(rng, gen.TreeConfig{Internals: 60, MaxArity: 4, ExtraClients: 40}),
		"binary":      gen.RandomBinary(rng, 50, 3, 10),
		"caterpillar": gen.Caterpillar(rng, 40, 3, 10),
		"complete":    gen.CompleteBinary(rng, 6, 3, 10),
	}
}

func TestPartitionFlatProperties(t *testing.T) {
	for name, tr := range partitionShapes(t) {
		f := tree.Flatten(tr)
		for _, target := range []int{2, 8, 32, 1 << 20} {
			pieces := tree.PartitionFlat(f, target)
			if len(pieces) == 0 {
				t.Fatalf("%s target %d: no pieces", name, target)
			}
			if target >= f.Len() && len(pieces) != 1 {
				t.Fatalf("%s target %d >= len %d: want a single piece, got %d", name, target, f.Len(), len(pieces))
			}
			if pieces[0].Boundary.Root != f.Root() {
				t.Fatalf("%s target %d: first piece rooted at %d, want the global root %d",
					name, target, pieces[0].Boundary.Root, f.Root())
			}
			// Disjoint and covering: every node in exactly one piece.
			seen := make(map[tree.NodeID]int)
			for pi, p := range pieces {
				if len(p.Nodes) == 0 || p.Nodes[0] != p.Boundary.Root {
					t.Fatalf("%s target %d piece %d: Nodes[0] != Boundary.Root", name, target, pi)
				}
				for _, g := range p.Nodes {
					if prev, dup := seen[g]; dup {
						t.Fatalf("%s target %d: node %d in pieces %d and %d", name, target, g, prev, pi)
					}
					seen[g] = pi
				}
			}
			if len(seen) != f.Len() {
				t.Fatalf("%s target %d: pieces cover %d of %d nodes", name, target, len(seen), f.Len())
			}
			// Boundary records match the original tree, and demands add up.
			var demand int64
			for _, p := range pieces {
				pb := p.Boundary
				demand += pb.Demand
				if pb.Root == f.Root() {
					if pb.CutParent != tree.None || pb.CutEdge != 0 || pb.UpDist != 0 {
						t.Fatalf("%s target %d: root piece has a cut edge: %+v", name, target, pb)
					}
				} else {
					if pb.CutParent != f.Parents[pb.Root] {
						t.Fatalf("%s target %d: piece %d cut parent %d, want %d",
							name, target, pb.Root, pb.CutParent, f.Parents[pb.Root])
					}
					if pb.CutEdge != f.EdgeLens[pb.Root] {
						t.Fatalf("%s target %d: piece %d cut edge %d, want %d",
							name, target, pb.Root, pb.CutEdge, f.EdgeLens[pb.Root])
					}
					var up int64
					for cur := pb.Root; cur != f.Root(); cur = f.Parents[cur] {
						up += f.EdgeLens[cur]
					}
					if pb.UpDist != up {
						t.Fatalf("%s target %d: piece %d UpDist %d, want %d", name, target, pb.Root, pb.UpDist, up)
					}
					if pb.SubtreeDemand != tr.SubtreeRequests(pb.Root) {
						t.Fatalf("%s target %d: piece %d SubtreeDemand %d, want %d",
							name, target, pb.Root, pb.SubtreeDemand, tr.SubtreeRequests(pb.Root))
					}
				}
			}
			if total := tr.TotalRequests(); demand != total {
				t.Fatalf("%s target %d: piece demands sum to %d, want %d", name, target, demand, total)
			}
		}
	}
}

func TestPieceTreeRoundTrip(t *testing.T) {
	for name, tr := range partitionShapes(t) {
		f := tree.Flatten(tr)
		for _, target := range []int{2, 8, 32} {
			pieces := tree.PartitionFlat(f, target)
			for _, p := range pieces {
				pt, err := tree.PieceTree(f, p)
				if err != nil {
					t.Fatalf("%s target %d piece %d: %v", name, target, p.Boundary.Root, err)
				}
				if pt.Len() != len(p.Nodes) {
					t.Fatalf("%s target %d piece %d: %d nodes, want %d",
						name, target, p.Boundary.Root, pt.Len(), len(p.Nodes))
				}
				// Local ID i is global p.Nodes[i]: structure, edge
				// lengths and client requests must match the original.
				var reqs int64
				for i := 0; i < pt.Len(); i++ {
					local := tree.NodeID(i)
					g := p.Nodes[i]
					if i > 0 {
						lp := pt.Parent(local)
						if p.Nodes[lp] != f.Parents[g] {
							t.Fatalf("%s piece %d: local %d parent mismatch", name, p.Boundary.Root, i)
						}
						if pt.Dist(local) != f.EdgeLens[g] {
							t.Fatalf("%s piece %d: local %d edge length mismatch", name, p.Boundary.Root, i)
						}
					}
					if pt.IsClient(local) {
						reqs += pt.Requests(local)
						if !f.IsClient(g) && pt.Requests(local) != 0 {
							t.Fatalf("%s piece %d: cut-away internal %d gained requests", name, p.Boundary.Root, g)
						}
						if f.IsClient(g) && pt.Requests(local) != f.Reqs[g] {
							t.Fatalf("%s piece %d: client %d requests mismatch", name, p.Boundary.Root, g)
						}
					}
				}
				if reqs != p.Boundary.Demand {
					t.Fatalf("%s piece %d: piece tree demand %d, want boundary demand %d",
						name, p.Boundary.Root, reqs, p.Boundary.Demand)
				}
			}
		}
	}
}

func TestPartitionPointsPieceSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := gen.RandomTree(rng, gen.TreeConfig{Internals: 400, MaxArity: 3, ExtraClients: 300})
	f := tree.Flatten(tr)
	target := 16
	pieces := tree.PartitionFlat(f, target)
	if len(pieces) < 2 {
		t.Fatalf("expected a real partition, got %d pieces", len(pieces))
	}
	// Non-root pieces are at least target nodes (the cut fired) and at
	// most 1 + arity·(target-1) (every child subtree was just under).
	maxPiece := 1 + 3*(target-1)
	for _, p := range pieces[1:] {
		if len(p.Nodes) < target {
			t.Fatalf("piece %d has %d nodes, want >= %d", p.Boundary.Root, len(p.Nodes), target)
		}
		if len(p.Nodes) > maxPiece {
			t.Fatalf("piece %d has %d nodes, want <= %d", p.Boundary.Root, len(p.Nodes), maxPiece)
		}
	}
}
