package tree

import (
	"errors"
	"fmt"
)

// FlatBuilder constructs a Flat incrementally, one node at a time,
// without ever materialising a pointer Tree. It is the ingestion side
// of the chunked/streaming instance representation: a million-node
// tree arrives as a sequence of Add calls driven by an io.Reader, and
// peak memory is the Flat's parallel arrays — there is never a second
// full-tree copy (pointer nodes, JSON blob) resident.
//
// Nodes must arrive in topological ID order: the root first (parent
// None, assigned ID 0), then every node strictly after its parent.
// IDs are assigned densely in arrival order, so callers that persist
// trees only need to emit nodes parent-before-child — exactly what
// preorder emission (tree export, the chunked wire format, streaming
// generators) produces naturally. Child order is arrival order, which
// for ID-sorted input matches the order Tree's JSON codec produces.
type FlatBuilder struct {
	f Flat
	// lastChild[p] is the most recently added child of p, tail of the
	// FirstChild/NextSibling chain under construction.
	lastChild []NodeID
	done      bool
}

// NewFlatBuilder returns a builder with capacity for n nodes
// preallocated (n may be 0 if the final size is unknown).
func NewFlatBuilder(n int) *FlatBuilder {
	b := &FlatBuilder{}
	if n > 0 {
		b.f.Parents = make([]NodeID, 0, n)
		b.f.FirstChild = make([]NodeID, 0, n)
		b.f.NextSibling = make([]NodeID, 0, n)
		b.f.EdgeLens = make([]int64, 0, n)
		b.f.Reqs = make([]int64, 0, n)
		b.f.Labels = make([]string, 0, n)
		b.lastChild = make([]NodeID, 0, n)
	}
	return b
}

// Len returns the number of nodes added so far (also the ID the next
// Add will assign).
func (b *FlatBuilder) Len() int { return len(b.f.Parents) }

// Add appends one node and returns its ID. The first call must be the
// root (parent None); every later call must name an already-added
// parent. dist is the length of the edge to the parent (pass 0 for
// the root). requests must be 0 for any node that later receives
// children; Build enforces this.
func (b *FlatBuilder) Add(parent NodeID, dist, requests int64, label string) (NodeID, error) {
	if b.done {
		return None, errors.New("tree: FlatBuilder reused after Build")
	}
	id := NodeID(len(b.f.Parents))
	if parent == None {
		if id != 0 {
			return None, fmt.Errorf("tree: node %d has no parent; only the first node may be the root", id)
		}
	} else if parent < 0 || parent >= id {
		return None, fmt.Errorf("tree: node %d has parent %d, want an already-added node (topological ID order)", id, parent)
	}
	if dist < 0 || dist >= Infinity {
		return None, fmt.Errorf("tree: node %d has invalid edge length %d", id, dist)
	}
	if requests < 0 {
		return None, fmt.Errorf("tree: node %d has negative request count %d", id, requests)
	}
	b.f.Parents = append(b.f.Parents, parent)
	b.f.FirstChild = append(b.f.FirstChild, None)
	b.f.NextSibling = append(b.f.NextSibling, None)
	b.f.EdgeLens = append(b.f.EdgeLens, dist)
	b.f.Reqs = append(b.f.Reqs, requests)
	b.f.Labels = append(b.f.Labels, label)
	b.lastChild = append(b.lastChild, None)
	if parent != None {
		if last := b.lastChild[parent]; last == None {
			b.f.FirstChild[parent] = id
		} else {
			b.f.NextSibling[last] = id
		}
		b.lastChild[parent] = id
	}
	return id, nil
}

// Build finalises and validates the Flat. The builder must not be
// used again afterwards. Topological arrival order already guarantees
// a single connected rooted tree, so validation only needs the local
// invariants: a non-empty tree, an internal root, and zero requests
// on internal nodes (zero-request leaf clients are allowed, matching
// Tree.Validate).
func (b *FlatBuilder) Build() (*Flat, error) {
	if b.done {
		return nil, errors.New("tree: FlatBuilder reused after Build")
	}
	n := len(b.f.Parents)
	if n == 0 {
		return nil, errors.New("tree: empty tree")
	}
	if b.f.FirstChild[0] == None {
		return nil, errors.New("tree: root must be an internal node")
	}
	clients := 0
	for j := 0; j < n; j++ {
		if b.f.FirstChild[j] == None {
			clients++
		} else if b.f.Reqs[j] != 0 {
			return nil, fmt.Errorf("tree: internal node %d has nonzero request count %d", j, b.f.Reqs[j])
		}
	}
	b.done = true
	b.lastChild = nil
	f := &b.f
	f.root = 0
	f.numClients = clients
	f.Pre = make([]NodeID, n)
	f.Post = make([]NodeID, n)
	f.computeOrders()
	return f, nil
}
