package tree_test

import (
	"math/rand"
	"reflect"
	"testing"

	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

// rebuildFlat replays a tree node-by-node in ID order through a
// FlatBuilder. Builder-produced trees are topological (parents before
// children), so ID order is a valid arrival order.
func rebuildFlat(t *testing.T, tr *tree.Tree) *tree.Flat {
	t.Helper()
	fb := tree.NewFlatBuilder(tr.Len())
	for j := 0; j < tr.Len(); j++ {
		id := tree.NodeID(j)
		dist := int64(0)
		if id != tr.Root() {
			dist = tr.Dist(id)
		}
		got, err := fb.Add(tr.Parent(id), dist, tr.Requests(id), tr.Label(id))
		if err != nil {
			t.Fatalf("Add(%d): %v", j, err)
		}
		if got != id {
			t.Fatalf("Add(%d) assigned ID %d", j, got)
		}
	}
	f, err := fb.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f
}

// TestFlatBuilderMatchesFlatten pins the builder against Flatten: the
// incremental construction must produce the identical Flat, Pre/Post
// permutations included, for every generator shape.
func TestFlatBuilderMatchesFlatten(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := map[string]*tree.Tree{
		"random":      gen.RandomTree(rng, gen.TreeConfig{Internals: 40, MaxArity: 4, ExtraClients: 25}),
		"caterpillar": gen.Caterpillar(rng, 30, 3, 10),
		"complete":    gen.CompleteBinary(rng, 5, 3, 10),
	}
	for name, tr := range shapes {
		want := tree.Flatten(tr)
		got := rebuildFlat(t, tr)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: FlatBuilder result differs from Flatten", name)
		}
	}
}

func TestFlatBuilderErrors(t *testing.T) {
	t.Run("non-root without parent", func(t *testing.T) {
		fb := tree.NewFlatBuilder(0)
		if _, err := fb.Add(tree.None, 0, 0, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Add(tree.None, 1, 0, ""); err == nil {
			t.Fatal("second parentless node accepted")
		}
	})
	t.Run("forward parent reference", func(t *testing.T) {
		fb := tree.NewFlatBuilder(0)
		if _, err := fb.Add(tree.None, 0, 0, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Add(5, 1, 0, ""); err == nil {
			t.Fatal("forward parent accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := tree.NewFlatBuilder(0).Build(); err == nil {
			t.Fatal("empty build accepted")
		}
	})
	t.Run("leaf root", func(t *testing.T) {
		fb := tree.NewFlatBuilder(0)
		if _, err := fb.Add(tree.None, 0, 0, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Build(); err == nil {
			t.Fatal("childless root accepted")
		}
	})
	t.Run("internal with requests", func(t *testing.T) {
		fb := tree.NewFlatBuilder(0)
		if _, err := fb.Add(tree.None, 0, 0, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Add(0, 1, 7, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Add(1, 1, 3, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Build(); err == nil {
			t.Fatal("internal node with requests accepted")
		}
	})
	t.Run("reuse after build", func(t *testing.T) {
		fb := tree.NewFlatBuilder(0)
		fb.Add(tree.None, 0, 0, "")
		fb.Add(0, 1, 2, "")
		if _, err := fb.Build(); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Add(0, 1, 2, ""); err == nil {
			t.Fatal("Add after Build accepted")
		}
		if _, err := fb.Build(); err == nil {
			t.Fatal("second Build accepted")
		}
	})
}
