package binpack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFDBasics(t *testing.T) {
	items := []int64{5, 5, 4, 3, 3}
	r, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(items, 10); err != nil {
		t.Fatal(err)
	}
	if r.NumBins() != 2 {
		t.Fatalf("FFD bins = %d, want 2", r.NumBins())
	}
}

func TestBFDBasics(t *testing.T) {
	items := []int64{7, 6, 4, 3}
	r, err := BestFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(items, 10); err != nil {
		t.Fatal(err)
	}
	if r.NumBins() != 2 {
		t.Fatalf("BFD bins = %d, want 2 (7+3, 6+4)", r.NumBins())
	}
}

func TestErrorsAndEdges(t *testing.T) {
	if _, err := FirstFitDecreasing([]int64{5}, 0); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := FirstFitDecreasing([]int64{11}, 10); err == nil {
		t.Error("oversized item should fail")
	}
	if _, err := BestFitDecreasing([]int64{-1}, 10); err == nil {
		t.Error("negative item should fail")
	}
	r, err := FirstFitDecreasing(nil, 10)
	if err != nil || r.NumBins() != 0 {
		t.Error("empty input should pack into zero bins")
	}
	// Zero-size items are skipped.
	r, err = FirstFitDecreasing([]int64{0, 0, 3}, 10)
	if err != nil || r.NumBins() != 1 {
		t.Errorf("zero items: %v %v", r, err)
	}
}

func TestLowerBound(t *testing.T) {
	if got := LowerBound([]int64{5, 5, 5}, 10); got != 2 {
		t.Errorf("L1 = %d, want 2", got)
	}
	// Three large items can never share.
	if got := LowerBound([]int64{6, 6, 6}, 10); got != 3 {
		t.Errorf("large bound = %d, want 3", got)
	}
	if got := LowerBound(nil, 10); got != 0 {
		t.Errorf("empty = %d, want 0", got)
	}
}

func TestExactSmall(t *testing.T) {
	cases := []struct {
		items []int64
		cap   int64
		want  int
	}{
		{[]int64{5, 5, 5, 5}, 10, 2},
		{[]int64{6, 6, 6}, 10, 3},
		{[]int64{4, 4, 4, 3, 3, 3}, 7, 3},
		{[]int64{}, 5, 0},
		{[]int64{1, 1, 1, 1, 1}, 5, 1},
	}
	for _, tc := range cases {
		got, err := Exact(tc.items, tc.cap)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Exact(%v, %d) = %d, want %d", tc.items, tc.cap, got, tc.want)
		}
	}
}

// TestHeuristicsVsExact: FFD/BFD within the 11/9·OPT+1 guarantee and
// never below OPT; OPT never below the lower bound.
func TestHeuristicsVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(10)
		capacity := int64(10 + rng.Intn(20))
		items := make([]int64, n)
		for i := range items {
			items[i] = 1 + rng.Int63n(capacity)
		}
		opt, err := Exact(items, capacity)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(items, capacity)
		if opt < lb {
			t.Fatalf("opt %d < lower bound %d for %v cap %d", opt, lb, items, capacity)
		}
		for name, fn := range map[string]func([]int64, int64) (*Result, error){
			"FFD": FirstFitDecreasing, "BFD": BestFitDecreasing,
		} {
			r, err := fn(items, capacity)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Validate(items, capacity); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if r.NumBins() < opt {
				t.Fatalf("%s beat the optimum: %d < %d", name, r.NumBins(), opt)
			}
			if float64(r.NumBins()) > 11.0/9.0*float64(opt)+1 {
				t.Fatalf("%s outside guarantee: %d bins, opt %d", name, r.NumBins(), opt)
			}
		}
	}
}

func TestValidateCatchesBadPackings(t *testing.T) {
	items := []int64{4, 5}
	if err := (&Result{Bins: [][]int{{0, 0}, {1}}}).Validate(items, 10); err == nil {
		t.Error("duplicate item should fail")
	}
	if err := (&Result{Bins: [][]int{{0}}}).Validate(items, 10); err == nil {
		t.Error("missing item should fail")
	}
	if err := (&Result{Bins: [][]int{{0, 1}}}).Validate(items, 8); err == nil {
		t.Error("overload should fail")
	}
	if err := (&Result{Bins: [][]int{{7}}}).Validate(items, 8); err == nil {
		t.Error("invalid index should fail")
	}
}

func TestFFDQuickValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(5 + rng.Intn(50))
		items := make([]int64, rng.Intn(40))
		for i := range items {
			items[i] = rng.Int63n(capacity + 1)
		}
		r, err := FirstFitDecreasing(items, capacity)
		if err != nil {
			return false
		}
		return r.Validate(items, capacity) == nil &&
			r.NumBins() >= 0 // and bounded by item count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
