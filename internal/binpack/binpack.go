// Package binpack implements classical bin-packing heuristics and
// lower bounds. The paper frames replica placement as Bin-Packing with
// tree and distance constraints (§1); these unconstrained packers are
// the baseline the experiments compare against: they ignore the tree,
// so they bound from below what any placement can achieve and expose
// how much the tree/distance structure costs.
package binpack

import (
	"fmt"
	"sort"
)

// Result is a packing: Bins[b] lists the indices of the items placed
// in bin b.
type Result struct {
	Bins [][]int
}

// NumBins returns the number of bins used.
func (r *Result) NumBins() int { return len(r.Bins) }

// Validate checks that the packing uses every item exactly once and
// respects the capacity.
func (r *Result) Validate(items []int64, capacity int64) error {
	seen := make([]bool, len(items))
	for b, bin := range r.Bins {
		var load int64
		for _, i := range bin {
			if i < 0 || i >= len(items) {
				return fmt.Errorf("binpack: bin %d has invalid item %d", b, i)
			}
			if seen[i] {
				return fmt.Errorf("binpack: item %d packed twice", i)
			}
			seen[i] = true
			load += items[i]
		}
		if load > capacity {
			return fmt.Errorf("binpack: bin %d load %d > capacity %d", b, load, capacity)
		}
	}
	for i, s := range seen {
		// Zero-size items need no bin; the packers skip them.
		if !s && items[i] != 0 {
			return fmt.Errorf("binpack: item %d not packed", i)
		}
	}
	return nil
}

// FirstFitDecreasing packs items (sizes ≤ capacity) with the classical
// FFD heuristic: sort decreasing, place each item into the first bin
// with room. FFD uses at most 11/9·OPT + 6/9 bins.
func FirstFitDecreasing(items []int64, capacity int64) (*Result, error) {
	order, err := checkAndOrder(items, capacity)
	if err != nil {
		return nil, err
	}
	var bins [][]int
	var loads []int64
	for _, i := range order {
		placed := false
		for b := range bins {
			if loads[b]+items[i] <= capacity {
				bins[b] = append(bins[b], i)
				loads[b] += items[i]
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, []int{i})
			loads = append(loads, items[i])
		}
	}
	return &Result{Bins: bins}, nil
}

// BestFitDecreasing packs items with BFD: sort decreasing, place each
// item into the fullest bin that still fits it.
func BestFitDecreasing(items []int64, capacity int64) (*Result, error) {
	order, err := checkAndOrder(items, capacity)
	if err != nil {
		return nil, err
	}
	var bins [][]int
	var loads []int64
	for _, i := range order {
		best := -1
		var bestLoad int64 = -1
		for b := range bins {
			if loads[b]+items[i] <= capacity && loads[b] > bestLoad {
				best = b
				bestLoad = loads[b]
			}
		}
		if best < 0 {
			bins = append(bins, []int{i})
			loads = append(loads, items[i])
			continue
		}
		bins[best] = append(bins[best], i)
		loads[best] += items[i]
	}
	return &Result{Bins: bins}, nil
}

func checkAndOrder(items []int64, capacity int64) ([]int, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("binpack: non-positive capacity %d", capacity)
	}
	order := make([]int, 0, len(items))
	for i, it := range items {
		if it < 0 {
			return nil, fmt.Errorf("binpack: negative item %d", it)
		}
		if it > capacity {
			return nil, fmt.Errorf("binpack: item %d of size %d exceeds capacity %d", i, it, capacity)
		}
		if it > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if items[order[a]] != items[order[b]] {
			return items[order[a]] > items[order[b]]
		}
		return order[a] < order[b]
	})
	return order, nil
}

// LowerBound returns the L1 bound ⌈Σ items / capacity⌉ plus the
// "large item" refinement: items > capacity/2 cannot share a bin.
func LowerBound(items []int64, capacity int64) int {
	var sum int64
	large := 0
	for _, it := range items {
		sum += it
		if 2*it > capacity {
			large++
		}
	}
	l1 := int((sum + capacity - 1) / capacity)
	if large > l1 {
		return large
	}
	return l1
}

// Exact solves bin packing exactly by branch-and-bound (first-fit
// symmetry breaking). Exponential; use on small inputs only.
func Exact(items []int64, capacity int64) (int, error) {
	order, err := checkAndOrder(items, capacity)
	if err != nil {
		return 0, err
	}
	if len(order) == 0 {
		return 0, nil
	}
	sizes := make([]int64, len(order))
	for k, i := range order {
		sizes[k] = items[i]
	}
	best := len(sizes)
	loads := make([]int64, 0, len(sizes))
	lb := LowerBound(items, capacity)
	var dfs func(k int)
	dfs = func(k int) {
		if len(loads) >= best {
			return
		}
		if k == len(sizes) {
			best = len(loads)
			return
		}
		if best == lb {
			return
		}
		// Try existing bins; skip duplicate loads (symmetry).
		tried := make(map[int64]bool)
		for b := range loads {
			if loads[b]+sizes[k] > capacity || tried[loads[b]] {
				continue
			}
			tried[loads[b]] = true
			loads[b] += sizes[k]
			dfs(k + 1)
			loads[b] -= sizes[k]
		}
		// New bin.
		if len(loads)+1 < best {
			loads = append(loads, sizes[k])
			dfs(k + 1)
			loads = loads[:len(loads)-1]
		}
	}
	dfs(0)
	return best, nil
}
