package gen

import (
	"fmt"
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// RandomFlatInstance generates a random instance of approximately
// nodes total tree nodes directly in flat (SoA) form via
// tree.FlatBuilder — no pointer tree and no JSON blob ever exist, so
// generating a million-node instance costs just the Flat's parallel
// arrays plus O(nodes) generator state. It is the huge-tree twin of
// RandomInstance and uses the same attachment process (random
// open-internal skeleton, clients on childless internals, fill with
// extra clients) and the same W/dmax draw, so small outputs look like
// RandomInstance outputs. cfg.Internals and cfg.ExtraClients are
// ignored — the node budget drives both.
//
// Output IDs are topological (parents before children), which is
// exactly what the chunked wire format (core.WriteChunked) requires.
// Generation is deterministic in (rng sequence, nodes, cfg,
// withDistance).
func RandomFlatInstance(rng *rand.Rand, nodes int, cfg TreeConfig, withDistance bool) (*core.FlatInstance, error) {
	cfg = cfg.norm()
	if nodes < 3 {
		nodes = 3
	}
	// 1 + internals + (one client per childless internal) + fill never
	// exceeds the budget: childless ≤ internals and 1 + 2·internals ≤
	// nodes. MaxArity ≥ 2 guarantees the skeleton can host that many
	// clients.
	internals := (nodes - 1) / 2

	fb := tree.NewFlatBuilder(nodes)
	root, err := fb.Add(tree.None, 0, 0, "")
	if err != nil {
		return nil, err
	}
	dist := func() int64 { return 1 + rng.Int63n(cfg.MaxDist) }
	req := func() int64 { return 1 + rng.Int63n(cfg.MaxReq) }

	// open lists internal nodes with arity headroom; exhausted entries
	// swap-remove lazily on pick.
	open := []tree.NodeID{root}
	arity := make([]int32, 1, nodes)
	depth := make([]int64, 1, nodes) // distance to the root, for the dmax draw
	pick := func() (tree.NodeID, bool) {
		for len(open) > 0 {
			i := rng.Intn(len(open))
			p := open[i]
			if int(arity[p]) < cfg.MaxArity {
				return p, true
			}
			open[i] = open[len(open)-1]
			open = open[:len(open)-1]
		}
		return 0, false
	}

	var total, maxR, maxDepth int64
	add := func(parent tree.NodeID, requests int64) (tree.NodeID, error) {
		d := dist()
		id, err := fb.Add(parent, d, requests, "")
		if err != nil {
			return id, err
		}
		arity[parent]++
		arity = append(arity, 0)
		dep := depth[parent] + d
		depth = append(depth, dep)
		if dep > maxDepth {
			maxDepth = dep
		}
		total += requests
		if requests > maxR {
			maxR = requests
		}
		return id, nil
	}

	// Random internal skeleton.
	for fb.Len() < 1+internals {
		p, ok := pick()
		if !ok {
			break
		}
		id, err := add(p, 0)
		if err != nil {
			return nil, err
		}
		open = append(open, id)
	}
	// Every childless internal gets one client so leaves are exactly
	// the clients (skeleton IDs are 0..Len-1 at this point).
	skeleton := fb.Len()
	for j := 0; j < skeleton; j++ {
		if arity[j] == 0 {
			if _, err := add(tree.NodeID(j), req()); err != nil {
				return nil, err
			}
		}
	}
	// Fill the remaining budget with clients wherever headroom allows.
	for fb.Len() < nodes {
		p, ok := pick()
		if !ok {
			break
		}
		if _, err := add(p, req()); err != nil {
			return nil, err
		}
	}

	f, err := fb.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: flat instance: %w", err)
	}
	// Same capacity/distance draw as RandomInstance: W between the
	// largest request and roughly half the total (so a few clients
	// share a server, and self-service keeps every draw feasible),
	// dmax around the typical root distance.
	hi := total/2 + 1
	if hi <= maxR {
		hi = maxR + 1
	}
	W := maxR + rng.Int63n(hi-maxR)
	dmax := core.NoDistance
	if withDistance {
		h := maxDepth
		if h < 1 {
			h = 1
		}
		dmax = 1 + rng.Int63n(h+1)
	}
	return &core.FlatInstance{Flat: f, W: W, DMax: dmax}, nil
}
