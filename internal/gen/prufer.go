package gen

import (
	"math/rand"

	"replicatree/internal/tree"
)

// UniformTopology generates a distribution tree whose internal
// topology is drawn uniformly at random among all labelled trees on n
// nodes, via a random Prüfer sequence. The labelled tree is rooted at
// node 0; every leaf of the rooted tree becomes a client, and internal
// nodes with spare room receive no extra clients (use RandomTree for
// shaped workloads). Edge lengths and requests are drawn uniformly
// from [1, maxDist] and [1, maxReq].
//
// Uniformity matters for unbiased statistics: the incremental
// attachment of RandomTree favours shallow, star-like shapes, while
// Prüfer trees include long paths with the right probability.
func UniformTopology(rng *rand.Rand, n int, maxDist, maxReq int64) *tree.Tree {
	if n < 2 {
		n = 2
	}
	if maxDist <= 0 {
		maxDist = 3
	}
	if maxReq <= 0 {
		maxReq = 10
	}

	// Random Prüfer sequence of length n−2 → labelled tree on n nodes.
	adj := make([][]int, n)
	if n == 2 {
		adj[0] = []int{1}
		adj[1] = []int{0}
	} else {
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = rng.Intn(n)
		}
		degree := make([]int, n)
		for i := range degree {
			degree[i] = 1
		}
		for _, v := range seq {
			degree[v]++
		}
		// Standard decoding with a pointer/leaf scan.
		ptr := 0
		for degree[ptr] != 1 {
			ptr++
		}
		leaf := ptr
		for _, v := range seq {
			adj[leaf] = append(adj[leaf], v)
			adj[v] = append(adj[v], leaf)
			degree[v]--
			if degree[v] == 1 && v < ptr {
				leaf = v
			} else {
				ptr++
				for degree[ptr] != 1 {
					ptr++
				}
				leaf = ptr
			}
		}
		// The two remaining degree-1 nodes: leaf and n−1.
		adj[leaf] = append(adj[leaf], n-1)
		adj[n-1] = append(adj[n-1], leaf)
	}

	// Root at 0 and rebuild with the Builder (BFS), assigning
	// requests to the rooted tree's leaves.
	b := tree.NewBuilder()
	ids := make([]tree.NodeID, n)
	visited := make([]bool, n)
	ids[0] = b.Root("")
	visited[0] = true
	queue := []int{0}
	type edge struct{ parent, child int }
	var order []edge
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if !visited[u] {
				visited[u] = true
				order = append(order, edge{v, u})
				queue = append(queue, u)
			}
		}
	}
	childCount := make([]int, n)
	for _, e := range order {
		childCount[e.parent]++
	}
	for _, e := range order {
		dist := 1 + rng.Int63n(maxDist)
		if childCount[e.child] == 0 {
			ids[e.child] = b.Client(ids[e.parent], dist, 1+rng.Int63n(maxReq), "")
		} else {
			ids[e.child] = b.Internal(ids[e.parent], dist, "")
		}
	}
	return b.MustBuild()
}
