package gen

import "math/rand"

// This file generates and decides instances of the three partition
// problems the paper reduces from. The deciders are exponential-time
// brute force, used to label gadget instances as YES/NO in the
// NP-hardness reproduction experiments.

// ThreePartitionYes generates a YES instance of 3-Partition: 3m
// integers in (B/4, B/2) partitionable into m triples of sum B.
// B must be ≥ 8 and divisible by 4 for comfortable slack.
func ThreePartitionYes(rng *rand.Rand, m int, B int64) []int64 {
	lo, hi := B/4+1, (B+1)/2-1 // valid ai range (strict bounds)
	out := make([]int64, 0, 3*m)
	for k := 0; k < m; k++ {
		for {
			x := lo + rng.Int63n(hi-lo+1)
			y := lo + rng.Int63n(hi-lo+1)
			z := B - x - y
			if z >= lo && z <= hi {
				out = append(out, x, y, z)
				break
			}
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ThreePartitionExists decides whether the 3m integers can be split
// into m triples each summing to B, by bitmask DFS with memoisation.
// Practical for m ≤ 4 (12 items).
func ThreePartitionExists(as []int64, B int64) bool {
	n := len(as)
	if n%3 != 0 {
		return false
	}
	var total int64
	for _, a := range as {
		total += a
	}
	if total != int64(n/3)*B {
		return false
	}
	full := (1 << n) - 1
	memo := make(map[int]bool)
	var rec func(mask int) bool
	rec = func(mask int) bool {
		if mask == full {
			return true
		}
		if v, ok := memo[mask]; ok {
			return v
		}
		// First free item anchors the next triple, avoiding duplicate
		// orderings.
		i := 0
		for mask&(1<<i) != 0 {
			i++
		}
		ok := false
		for j := i + 1; j < n && !ok; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			for k := j + 1; k < n && !ok; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				if as[i]+as[j]+as[k] == B {
					ok = rec(mask | 1<<i | 1<<j | 1<<k)
				}
			}
		}
		memo[mask] = ok
		return ok
	}
	return rec(0)
}

// TwoPartitionYes generates a YES instance of 2-Partition by mirroring
// k random positive integers (so I = the first copy works).
func TwoPartitionYes(rng *rand.Rand, k int, maxVal int64) []int64 {
	out := make([]int64, 0, 2*k)
	for i := 0; i < k; i++ {
		v := 1 + rng.Int63n(maxVal)
		out = append(out, v, v)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// TwoPartitionExists decides subset-sum to S/2 by dynamic programming
// over achievable sums.
func TwoPartitionExists(as []int64) bool {
	var S int64
	for _, a := range as {
		S += a
	}
	if S%2 != 0 {
		return false
	}
	half := S / 2
	reach := make(map[int64]bool, 1024)
	reach[0] = true
	for _, a := range as {
		next := make(map[int64]bool, 2*len(reach))
		for s := range reach {
			next[s] = true
			if s+a <= half {
				next[s+a] = true
			}
		}
		reach = next
	}
	return reach[half]
}

// TwoPartitionEqualYes generates a YES instance of 2-Partition-Equal
// (an m-subset of 2m integers sums to S/2) with every ai ≤ S/4 — the
// extra condition GadgetI6 needs so that bi = S/2 − 2ai ≥ 0. It
// mirrors m random values, so picking one copy of each gives an
// m-subset with half the sum.
func TwoPartitionEqualYes(rng *rand.Rand, m int, maxVal int64) []int64 {
	if maxVal < 1 {
		maxVal = 1
	}
	for {
		out := make([]int64, 0, 2*m)
		var S int64
		for i := 0; i < m; i++ {
			v := 1 + rng.Int63n(maxVal)
			out = append(out, v, v)
			S += 2 * v
		}
		ok := true
		for _, a := range out {
			if 4*a > S {
				ok = false
				break
			}
		}
		if ok {
			rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
			return out
		}
	}
}

// TwoPartitionEqualExists decides whether some subset of exactly
// len(as)/2 elements sums to S/2, by DP over (count, sum) pairs.
func TwoPartitionEqualExists(as []int64) bool {
	n := len(as)
	if n%2 != 0 {
		return false
	}
	var S int64
	for _, a := range as {
		S += a
	}
	if S%2 != 0 {
		return false
	}
	m := n / 2
	half := S / 2
	type cs struct {
		count int
		sum   int64
	}
	reach := map[cs]bool{{0, 0}: true}
	for _, a := range as {
		next := make(map[cs]bool, 2*len(reach))
		for st := range reach {
			next[st] = true
			if st.count < m && st.sum+a <= half {
				next[cs{st.count + 1, st.sum + a}] = true
			}
		}
		reach = next
	}
	return reach[cs{m, half}]
}
