package gen

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// FindLabel returns the node with the given label, or tree.None.
func FindLabel(t *tree.Tree, label string) tree.NodeID {
	for j := 0; j < t.Len(); j++ {
		if t.Label(tree.NodeID(j)) == label {
			return tree.NodeID(j)
		}
	}
	return tree.None
}

// I6Solution materialises the 4m-replica solution constructed in the
// proof of Theorem 5 for instance I6, given the index set I (1-based
// indices into as, |I| = m, Σ_{i∈I} ai = S/2). The returned solution
// verifies against the instance iff I is a valid 2-Partition-Equal
// certificate; callers should run core.Verify on it. This is the
// computational forward direction of the NP-hardness reduction.
func I6Solution(in *core.Instance, as []int64, I []int) (*core.Solution, error) {
	m := len(as) / 2
	if len(I) != m {
		return nil, fmt.Errorf("gen: I6Solution needs |I| = m = %d, got %d", m, len(I))
	}
	t := in.Tree
	var S int64
	for _, a := range as {
		S += a
	}
	W := in.W // = S/2 + 1

	node := func(label string) (tree.NodeID, error) {
		id := FindLabel(t, label)
		if id == tree.None {
			return id, fmt.Errorf("gen: I6Solution: node %q not found", label)
		}
		return id, nil
	}

	inI := make(map[int]bool, m)
	for _, i := range I {
		if i < 1 || i > 2*m {
			return nil, fmt.Errorf("gen: I6Solution index %d out of range", i)
		}
		inI[i] = true
	}

	sol := &core.Solution{}
	// Replicas: n_i for i ∈ I, n_{2m+1}..n_{5m-1}, and the big client.
	for i := range inI {
		n, err := node(fmt.Sprintf("n%d", i))
		if err != nil {
			return nil, err
		}
		sol.AddReplica(n)
	}
	chain := make([]tree.NodeID, 0, 3*m-1)
	for j := 2*m + 1; j <= 5*m-1; j++ {
		n, err := node(fmt.Sprintf("n%d", j))
		if err != nil {
			return nil, err
		}
		sol.AddReplica(n)
		chain = append(chain, n)
	}
	big, err := node("big")
	if err != nil {
		return nil, err
	}
	sol.AddReplica(big)

	// The big client's (2m+1)·W requests: W at itself and W at each of
	// n_{2m+1}..n_{4m}.
	sol.Assign(big, big, W)
	for j := 2*m + 1; j <= 4*m; j++ {
		n, _ := node(fmt.Sprintf("n%d", j))
		sol.Assign(big, n, W)
	}
	// Each unit client u_j is served by its parent n_j.
	for j := 4*m + 1; j <= 5*m-1; j++ {
		u, err := node(fmt.Sprintf("u%d", j))
		if err != nil {
			return nil, err
		}
		n, _ := node(fmt.Sprintf("n%d", j))
		sol.Assign(u, n, 1)
	}
	// Clients of n_i, i ∈ I: both served by n_i (load ai + bi =
	// S/2 − ai ≤ S/2 < W).
	for i := 1; i <= 2*m; i++ {
		ai, err := node(fmt.Sprintf("a%d", i))
		if err != nil {
			return nil, err
		}
		bi, err := node(fmt.Sprintf("b%d", i))
		if err != nil {
			return nil, err
		}
		ra, rb := t.Requests(ai), t.Requests(bi)
		if inI[i] {
			n, _ := node(fmt.Sprintf("n%d", i))
			sol.Assign(ai, n, ra)
			sol.Assign(bi, n, rb)
			continue
		}
		// i ∉ I: a_i goes to n_{4m+1}; b_i is spread over
		// n_{4m+2}..n_{5m-1} below.
		n4m1, _ := node(fmt.Sprintf("n%d", 4*m+1))
		sol.Assign(ai, n4m1, ra)
	}
	// Spread the b_i (i ∉ I) over the top chain nodes, S/2 capacity
	// each (they already serve their unit client).
	capLeft := make(map[tree.NodeID]int64)
	tops := make([]tree.NodeID, 0, m-2)
	for j := 4*m + 2; j <= 5*m-1; j++ {
		n, _ := node(fmt.Sprintf("n%d", j))
		tops = append(tops, n)
		capLeft[n] = W - 1
	}
	k := 0
	for i := 1; i <= 2*m; i++ {
		if inI[i] {
			continue
		}
		bi, _ := node(fmt.Sprintf("b%d", i))
		rem := t.Requests(bi)
		for rem > 0 {
			if k >= len(tops) {
				return nil, fmt.Errorf("gen: I6Solution ran out of capacity for b clients (I is not a certificate?)")
			}
			n := tops[k]
			take := rem
			if take > capLeft[n] {
				take = capLeft[n]
			}
			sol.Assign(bi, n, take)
			capLeft[n] -= take
			rem -= take
			if capLeft[n] == 0 {
				k++
			}
		}
	}
	sol.Normalize()
	return sol, nil
}
