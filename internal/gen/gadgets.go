// Package gen builds problem instances: the five gadget families used
// in the paper's proofs and figures, partition-problem instance
// generators feeding them, and random distribution trees for the
// statistical experiments.
package gen

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// GadgetI2 builds instance I2 of Theorem 1 / Fig. 1: the reduction
// from 3-Partition to Single-NoD-Bin. as must hold 3m integers with
// B/4 < ai < B/2 and Σai = mB. The returned instance is a binary tree
// with capacity W = B; it admits a solution with K = m replicas iff
// the 3-Partition instance is a YES instance.
//
// Topology: a chain of m internal nodes n1..nm (nm the root) sits on
// top of a binary comb carrying the 3m clients, so that every ni sees
// every client — exactly what lets an arbitrary triple be assigned to
// a single server.
func GadgetI2(as []int64, B int64) (*core.Instance, int, error) {
	if len(as)%3 != 0 || len(as) == 0 {
		return nil, 0, fmt.Errorf("gen: I2 needs 3m integers, got %d", len(as))
	}
	m := len(as) / 3
	var sum int64
	for _, a := range as {
		if !(a > B/4 && a < (B+1)/2) {
			return nil, 0, fmt.Errorf("gen: I2 requires B/4 < ai < B/2, got ai=%d B=%d", a, B)
		}
		sum += a
	}
	if sum != int64(m)*B {
		return nil, 0, fmt.Errorf("gen: I2 requires Σai = mB, got %d != %d", sum, int64(m)*B)
	}
	b := tree.NewBuilder()
	cur := b.Root(fmt.Sprintf("n%d", m))
	for i := m - 1; i >= 1; i-- {
		cur = b.Internal(cur, 1, fmt.Sprintf("n%d", i))
	}
	// Binary comb below n1: each spine node carries one client.
	for i := 0; i < len(as)-1; i++ {
		spine := b.Internal(cur, 1, fmt.Sprintf("y%d", i+1))
		b.Client(spine, 1, as[i], fmt.Sprintf("c%d", i+1))
		cur = spine
	}
	b.Client(cur, 1, as[len(as)-1], fmt.Sprintf("c%d", len(as)))
	t, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return &core.Instance{Tree: t, W: B, DMax: core.NoDistance}, m, nil
}

// GadgetI4 builds instance I4 of Theorem 2 / Fig. 2: the reduction
// from 2-Partition showing there is no (3/2−ε)-approximation for
// Single-NoD-Bin. as must have an even sum S; the capacity is W = S/2
// and the instance has a 2-replica solution (at r and n1) iff the
// 2-Partition instance is a YES instance.
func GadgetI4(as []int64) (*core.Instance, error) {
	var sum int64
	for _, a := range as {
		if a <= 0 {
			return nil, fmt.Errorf("gen: I4 requires positive integers, got %d", a)
		}
		sum += a
	}
	if sum%2 != 0 {
		// An odd total still builds (W = ⌊S/2⌋ would change the
		// semantics), so require the caller to pad instead.
		return nil, fmt.Errorf("gen: I4 requires an even total, got %d", sum)
	}
	if len(as) < 2 {
		return nil, fmt.Errorf("gen: I4 needs at least two integers")
	}
	for _, a := range as {
		if a > sum/2 {
			return nil, fmt.Errorf("gen: I4 requires ai ≤ S/2, got %d > %d", a, sum/2)
		}
	}
	b := tree.NewBuilder()
	r := b.Root("r")
	cur := b.Internal(r, 1, "n1")
	for i := 0; i < len(as)-1; i++ {
		spine := b.Internal(cur, 1, fmt.Sprintf("y%d", i+1))
		b.Client(spine, 1, as[i], fmt.Sprintf("c%d", i+1))
		cur = spine
	}
	b.Client(cur, 1, as[len(as)-1], fmt.Sprintf("c%d", len(as)))
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &core.Instance{Tree: t, W: sum / 2, DMax: core.NoDistance}, nil
}

// ImResult carries the tight instance of Theorem 3 / Fig. 3 together
// with the paper's closed forms for it.
type ImResult struct {
	Instance *core.Instance
	M        int
	Delta    int
	// AlgoReplicas is the number of replicas single-gen places:
	// m·(Δ+1).
	AlgoReplicas int
	// OptReplicas is the optimal count: m+1.
	OptReplicas int
}

// GadgetIm builds the family Im on which Algorithm 1 reaches its
// approximation ratio of Δ+1: ratio(m) = m(Δ+1)/(m+1). Requires
// m ≥ 1, Δ ≥ 2. Parameters follow the paper: W = mΔ+Δ−1, dmax = 4m,
// all edges of length 1 except (ci,Δ → ni,1) of length dmax.
func GadgetIm(m, delta int) (*ImResult, error) {
	if m < 1 || delta < 2 {
		return nil, fmt.Errorf("gen: Im requires m ≥ 1 and Δ ≥ 2, got m=%d Δ=%d", m, delta)
	}
	mi, di := int64(m), int64(delta)
	W := mi*di + di - 1
	dmax := 4 * mi
	b := tree.NewBuilder()
	top := b.Root("n0")
	for i := 1; i <= m; i++ {
		n1 := b.Internal(top, 1, fmt.Sprintf("n%d,1", i))
		b.Client(n1, dmax, di-1, fmt.Sprintf("c%d,%d", i, delta))
		n2 := b.Internal(n1, 1, fmt.Sprintf("n%d,2", i))
		for j := 1; j <= delta-2; j++ {
			b.Client(n2, 1, 1, fmt.Sprintf("c%d,%d", i, j))
		}
		b.Client(n2, 1, mi*di, fmt.Sprintf("c%d,%d", i, delta-1))
		n3 := b.Internal(n2, 1, fmt.Sprintf("n%d,3", i))
		b.Client(n3, 1, 2, fmt.Sprintf("c%d,%d", i, delta+1))
		top = n3
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &ImResult{
		Instance:     &core.Instance{Tree: t, W: W, DMax: dmax},
		M:            m,
		Delta:        delta,
		AlgoReplicas: m * (delta + 1),
		OptReplicas:  m + 1,
	}, nil
}

// Fig4Result carries the tight instance of Theorem 4 / Fig. 4.
type Fig4Result struct {
	Instance *core.Instance
	K        int
	// AlgoReplicas = 2K: what single-nod places.
	AlgoReplicas int
	// OptReplicas = K+1.
	OptReplicas int
}

// GadgetFig4 builds the family on which Algorithm 2 reaches its
// approximation ratio of 2: W = K; K internal nodes each with one
// client of K requests and one client of 1 request; no distance
// constraint. single-nod uses 2K replicas, the optimum K+1.
func GadgetFig4(k int) (*Fig4Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: Fig4 requires K ≥ 1, got %d", k)
	}
	b := tree.NewBuilder()
	r := b.Root("r")
	for i := 1; i <= k; i++ {
		ni := b.Internal(r, 1, fmt.Sprintf("n%d", i))
		b.Client(ni, 1, int64(k), fmt.Sprintf("big%d", i))
		b.Client(ni, 1, 1, fmt.Sprintf("small%d", i))
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Fig4Result{
		Instance:     &core.Instance{Tree: t, W: int64(k), DMax: core.NoDistance},
		K:            k,
		AlgoReplicas: 2 * k,
		OptReplicas:  k + 1,
	}, nil
}

// GadgetI6 builds instance I6 of Theorem 5 / Fig. 5: the reduction
// from 2-Partition-Equal showing Multiple-Bin is NP-hard when a client
// may exceed the server capacity. as must hold 2m positive integers
// with an even sum S and ai ≤ S/4 (so that bi = S/2 − 2ai ≥ 0). The
// instance has W = S/2 + 1, dmax = 3m, and admits a Multiple solution
// with K = 4m replicas iff some m-subset of as sums to S/2.
func GadgetI6(as []int64) (*core.Instance, int, error) {
	if len(as)%2 != 0 || len(as) < 4 {
		return nil, 0, fmt.Errorf("gen: I6 needs 2m ≥ 4 integers, got %d", len(as))
	}
	m := len(as) / 2
	var S int64
	for _, a := range as {
		if a <= 0 {
			return nil, 0, fmt.Errorf("gen: I6 requires positive integers, got %d", a)
		}
		S += a
	}
	if S%2 != 0 {
		return nil, 0, fmt.Errorf("gen: I6 requires an even total, got %d", S)
	}
	for _, a := range as {
		if S/2-2*a < 0 {
			return nil, 0, fmt.Errorf("gen: I6 requires ai ≤ S/4 so that bi ≥ 0, got ai=%d S=%d", a, S)
		}
	}
	W := S/2 + 1
	dmax := int64(3 * m)

	// Internal nodes n1..n_{5m-1}; build top-down from the root
	// n_{5m-1} along the chain n_{5m-1} → … → n_{2m+1}, attaching the
	// leaf gadgets as we go.
	b := tree.NewBuilder()
	nodes := make([]tree.NodeID, 5*m) // nodes[j] = n_j, 1-based
	nodes[5*m-1] = b.Root(fmt.Sprintf("n%d", 5*m-1))
	for j := 5*m - 2; j >= 2*m+1; j-- {
		nodes[j] = b.Internal(nodes[j+1], 1, fmt.Sprintf("n%d", j))
	}
	// n_j for 1 ≤ j ≤ 2m hangs under n_{2m+j} and carries two clients.
	for j := 1; j <= 2*m; j++ {
		nodes[j] = b.Internal(nodes[2*m+j], 1, fmt.Sprintf("n%d", j))
		b.Client(nodes[j], int64(j+m-2), as[j-1], fmt.Sprintf("a%d", j))
		b.Client(nodes[j], 1, S/2-2*as[j-1], fmt.Sprintf("b%d", j))
	}
	// One client with a single request at distance dmax under each of
	// n_{4m+1}..n_{5m-1}.
	for j := 4*m + 1; j <= 5*m-1; j++ {
		b.Client(nodes[j], dmax, 1, fmt.Sprintf("u%d", j))
	}
	// The big client with (2m+1)·W requests at distance m+1 under
	// n_{2m+1}.
	b.Client(nodes[2*m+1], int64(m+1), int64(2*m+1)*W, "big")

	t, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	return &core.Instance{Tree: t, W: W, DMax: dmax}, 4 * m, nil
}
