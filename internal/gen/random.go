package gen

import (
	"math/rand"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// TreeConfig controls random tree generation. Zero fields take the
// documented defaults.
type TreeConfig struct {
	Internals int   // number of internal nodes (default 4)
	MaxArity  int   // maximum children per node (default 3)
	MaxDist   int64 // edge lengths drawn uniformly from [1, MaxDist] (default 3)
	MaxReq    int64 // client requests drawn uniformly from [1, MaxReq] (default 10)
	// ExtraClients adds this many clients beyond the one-per-leaf
	// minimum, attached to random internal nodes with arity headroom.
	ExtraClients int
}

func (c TreeConfig) norm() TreeConfig {
	if c.Internals <= 0 {
		c.Internals = 4
	}
	if c.MaxArity < 2 {
		c.MaxArity = 3
	}
	if c.MaxDist <= 0 {
		c.MaxDist = 3
	}
	if c.MaxReq <= 0 {
		c.MaxReq = 10
	}
	return c
}

// RandomTree generates a random distribution tree: a random internal
// skeleton of cfg.Internals nodes with arity at most cfg.MaxArity,
// every childless internal node then receives a client, and
// cfg.ExtraClients more clients are attached where arity allows.
func RandomTree(rng *rand.Rand, cfg TreeConfig) *tree.Tree {
	cfg = cfg.norm()
	b := tree.NewBuilder()
	root := b.Root("")
	internals := []tree.NodeID{root}
	arity := map[tree.NodeID]int{root: 0}

	dist := func() int64 { return 1 + rng.Int63n(cfg.MaxDist) }
	req := func() int64 { return 1 + rng.Int63n(cfg.MaxReq) }

	for len(internals) < cfg.Internals {
		// Attach a new internal node to a random node with headroom.
		// Reserve one slot on leaf-internal nodes for their client.
		p := internals[rng.Intn(len(internals))]
		if arity[p] >= cfg.MaxArity {
			continue
		}
		n := b.Internal(p, dist(), "")
		arity[p]++
		arity[n] = 0
		internals = append(internals, n)
	}
	// Every childless internal node gets one client so leaves are
	// exactly the clients.
	for _, n := range internals {
		if arity[n] == 0 {
			b.Client(n, dist(), req(), "")
			arity[n]++
		}
	}
	for added := 0; added < cfg.ExtraClients; {
		p := internals[rng.Intn(len(internals))]
		if arity[p] >= cfg.MaxArity {
			// Find any node with headroom to guarantee progress.
			found := false
			for _, q := range internals {
				if arity[q] < cfg.MaxArity {
					p, found = q, true
					break
				}
			}
			if !found {
				break
			}
		}
		b.Client(p, dist(), req(), "")
		arity[p]++
		added++
	}
	return b.MustBuild()
}

// RandomBinary generates a random binary tree with the given number of
// internal nodes.
func RandomBinary(rng *rand.Rand, internals int, maxDist, maxReq int64) *tree.Tree {
	return RandomTree(rng, TreeConfig{
		Internals:    internals,
		MaxArity:     2,
		MaxDist:      maxDist,
		MaxReq:       maxReq,
		ExtraClients: rng.Intn(internals + 1),
	})
}

// Caterpillar generates a spine of n internal nodes with one client
// each (a binary caterpillar), the worst-case shape for tree-depth
// sensitive behaviour.
func Caterpillar(rng *rand.Rand, n int, maxDist, maxReq int64) *tree.Tree {
	if n < 1 {
		n = 1
	}
	if maxDist <= 0 {
		maxDist = 3
	}
	if maxReq <= 0 {
		maxReq = 10
	}
	b := tree.NewBuilder()
	cur := b.Root("")
	for i := 0; i < n-1; i++ {
		b.Client(cur, 1+rng.Int63n(maxDist), 1+rng.Int63n(maxReq), "")
		cur = b.Internal(cur, 1+rng.Int63n(maxDist), "")
	}
	b.Client(cur, 1+rng.Int63n(maxDist), 1+rng.Int63n(maxReq), "")
	b.Client(cur, 1+rng.Int63n(maxDist), 1+rng.Int63n(maxReq), "")
	return b.MustBuild()
}

// CompleteBinary generates a complete binary tree of the given depth
// with clients at the 2^depth leaf positions.
func CompleteBinary(rng *rand.Rand, depth int, maxDist, maxReq int64) *tree.Tree {
	if depth < 1 {
		depth = 1
	}
	if maxDist <= 0 {
		maxDist = 3
	}
	if maxReq <= 0 {
		maxReq = 10
	}
	b := tree.NewBuilder()
	root := b.Root("")
	var grow func(p tree.NodeID, d int)
	grow = func(p tree.NodeID, d int) {
		if d == depth {
			return
		}
		for k := 0; k < 2; k++ {
			dist := 1 + rng.Int63n(maxDist)
			if d == depth-1 {
				b.Client(p, dist, 1+rng.Int63n(maxReq), "")
			} else {
				grow(b.Internal(p, dist, ""), d+1)
			}
		}
	}
	grow(root, 0)
	return b.MustBuild()
}

// RandomInstance wraps a random tree into an instance whose capacity
// is set so that a few clients share a server (W is drawn between the
// largest request and roughly a third of the total) and whose dmax is
// drawn to make the distance constraint bite without making the
// instance infeasible under Single (dmax ≥ 0 always keeps R = C
// feasible).
func RandomInstance(rng *rand.Rand, cfg TreeConfig, withDistance bool) *core.Instance {
	t := RandomTree(rng, cfg)
	maxR := t.MaxRequests()
	total := t.TotalRequests()
	hi := total/2 + 1
	if hi <= maxR {
		hi = maxR + 1
	}
	W := maxR + rng.Int63n(hi-maxR)
	dmax := core.NoDistance
	if withDistance {
		// A bound around the typical root distance.
		h := int64(t.Height())
		if h < 1 {
			h = 1
		}
		cfgDist := cfg.norm().MaxDist
		dmax = 1 + rng.Int63n(h*cfgDist+1)
	}
	return &core.Instance{Tree: t, W: W, DMax: dmax}
}
