package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/tree"
)

func TestGadgetI2Validation(t *testing.T) {
	if _, _, err := GadgetI2([]int64{1, 2}, 10); err == nil {
		t.Error("not a multiple of 3 should fail")
	}
	if _, _, err := GadgetI2([]int64{1, 7, 8}, 16); err == nil {
		t.Error("ai outside (B/4, B/2) should fail")
	}
	if _, _, err := GadgetI2([]int64{5, 5, 5}, 16); err == nil {
		t.Error("sum != mB should fail")
	}
}

func TestGadgetI2Structure(t *testing.T) {
	as := []int64{5, 5, 6, 5, 5, 6} // m=2, B=16
	in, K, err := GadgetI2(as, 16)
	if err != nil {
		t.Fatal(err)
	}
	if K != 2 {
		t.Fatalf("K = %d, want 2", K)
	}
	if !in.Tree.IsBinary() {
		t.Fatal("I2 must be binary (Single-NoD-Bin)")
	}
	if !in.NoD() {
		t.Fatal("I2 must have no distance constraint")
	}
	if in.W != 16 {
		t.Fatalf("W = %d, want B = 16", in.W)
	}
	if got := in.Tree.NumClients(); got != 6 {
		t.Fatalf("clients = %d, want 6", got)
	}
	if got := in.Tree.TotalRequests(); got != 32 {
		t.Fatalf("total = %d, want 32", got)
	}
}

// TestGadgetI2Equivalence is the Theorem 1 reproduction: I2 has a
// solution with m servers iff the 3-Partition instance is YES.
func TestGadgetI2Equivalence(t *testing.T) {
	B := int64(16)
	yes := []int64{5, 5, 6, 5, 5, 6}
	no := []int64{5, 5, 5, 5, 5, 7} // triples can sum only to 15 or 17
	if !ThreePartitionExists(yes, B) {
		t.Fatal("yes instance mislabelled")
	}
	if ThreePartitionExists(no, B) {
		t.Fatal("no instance mislabelled")
	}
	for _, tc := range []struct {
		as   []int64
		want bool
	}{{yes, true}, {no, false}} {
		in, K, err := GadgetI2(tc.as, B)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := sol.NumReplicas() <= K; got != tc.want {
			t.Errorf("as=%v: opt=%d, K=%d: solvable=%v, want %v",
				tc.as, sol.NumReplicas(), K, got, tc.want)
		}
	}
}

func TestGadgetI4Validation(t *testing.T) {
	if _, err := GadgetI4([]int64{1, 2}); err == nil {
		t.Error("odd total should fail")
	}
	if _, err := GadgetI4([]int64{3}); err == nil {
		t.Error("single element should fail")
	}
	if _, err := GadgetI4([]int64{-1, 1}); err == nil {
		t.Error("non-positive should fail")
	}
	if _, err := GadgetI4([]int64{9, 1, 1, 1}); err == nil {
		t.Error("ai > S/2 should fail (no Single solution)")
	}
}

// TestGadgetI4Equivalence is the Theorem 2 reproduction: opt = 2 iff
// 2-Partition is YES, and ≥ 3 otherwise — the gap behind the 3/2−ε
// inapproximability.
func TestGadgetI4Equivalence(t *testing.T) {
	yes := []int64{3, 3, 2, 2}
	no := []int64{3, 3, 3, 1}
	if !TwoPartitionExists(yes) || TwoPartitionExists(no) {
		t.Fatal("instances mislabelled")
	}
	for _, tc := range []struct {
		as      []int64
		wantOpt int
	}{{yes, 2}, {no, 3}} {
		in, err := GadgetI4(tc.as)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := exact.SolveSingle(in, exact.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.NumReplicas() != tc.wantOpt {
			t.Errorf("as=%v: opt = %d, want %d", tc.as, sol.NumReplicas(), tc.wantOpt)
		}
	}
}

func TestGadgetImStructure(t *testing.T) {
	if _, err := GadgetIm(0, 2); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := GadgetIm(1, 1); err == nil {
		t.Error("Δ=1 should fail")
	}
	for _, delta := range []int{2, 3, 5} {
		for _, m := range []int{1, 3} {
			res, err := GadgetIm(m, delta)
			if err != nil {
				t.Fatal(err)
			}
			in := res.Instance
			mi, di := int64(m), int64(delta)
			if in.W != mi*di+di-1 {
				t.Errorf("Im(%d,%d): W = %d, want %d", m, delta, in.W, mi*di+di-1)
			}
			if in.DMax != 4*mi {
				t.Errorf("Im(%d,%d): dmax = %d, want %d", m, delta, in.DMax, 4*mi)
			}
			if got := in.Tree.Arity(); got != delta {
				t.Errorf("Im(%d,%d): arity = %d, want %d", m, delta, got, delta)
			}
			// Per block: Δ+1 clients; total requests m(mΔ+2Δ−1).
			if got := in.Tree.NumClients(); got != m*(delta+1) {
				t.Errorf("Im(%d,%d): clients = %d, want %d", m, delta, got, m*(delta+1))
			}
			if got := in.Tree.TotalRequests(); got != mi*(mi*di+2*di-1) {
				t.Errorf("Im(%d,%d): total = %d, want %d", m, delta, got, mi*(mi*di+2*di-1))
			}
			if !in.FitsLocally() {
				t.Errorf("Im(%d,%d): some client exceeds W", m, delta)
			}
		}
	}
}

func TestGadgetFig4Structure(t *testing.T) {
	if _, err := GadgetFig4(0); err == nil {
		t.Error("K=0 should fail")
	}
	res, err := GadgetFig4(5)
	if err != nil {
		t.Fatal(err)
	}
	in := res.Instance
	if in.W != 5 || !in.NoD() {
		t.Fatalf("W=%d NoD=%v", in.W, in.NoD())
	}
	if got := in.Tree.NumClients(); got != 10 {
		t.Fatalf("clients = %d, want 10", got)
	}
	if got := in.Tree.TotalRequests(); got != 5*5+5 {
		t.Fatalf("total = %d, want 30", got)
	}
	if res.AlgoReplicas != 10 || res.OptReplicas != 6 {
		t.Fatalf("closed forms wrong: %+v", res)
	}
}

func TestGadgetI6Validation(t *testing.T) {
	if _, _, err := GadgetI6([]int64{1, 1}); err == nil {
		t.Error("fewer than 4 should fail")
	}
	if _, _, err := GadgetI6([]int64{1, 1, 1}); err == nil {
		t.Error("odd count should fail")
	}
	if _, _, err := GadgetI6([]int64{1, 1, 1, 2}); err == nil {
		t.Error("odd total should fail")
	}
	if _, _, err := GadgetI6([]int64{1, 1, 5, 5}); err == nil {
		t.Error("ai > S/4 should fail (bi < 0)")
	}
	if _, _, err := GadgetI6([]int64{0, 2, 1, 1}); err == nil {
		t.Error("non-positive should fail")
	}
}

func TestGadgetI6Structure(t *testing.T) {
	as := []int64{1, 1, 2, 2, 3, 3} // m = 3, S = 12
	in, K, err := GadgetI6(as)
	if err != nil {
		t.Fatal(err)
	}
	m := 3
	if K != 4*m {
		t.Fatalf("K = %d, want %d", K, 4*m)
	}
	if !in.Tree.IsBinary() {
		t.Fatal("I6 must be binary")
	}
	if in.W != 7 {
		t.Fatalf("W = %d, want S/2+1 = 7", in.W)
	}
	if in.DMax != int64(3*m) {
		t.Fatalf("dmax = %d, want %d", in.DMax, 3*m)
	}
	if got := in.Tree.NumClients(); got != 5*m {
		t.Fatalf("clients = %d, want %d", got, 5*m)
	}
	if got := len(in.Tree.Internals()); got != 5*m-1 {
		t.Fatalf("internals = %d, want %d", got, 5*m-1)
	}
	// The big client exceeds W: the NP-hard regime.
	if in.FitsLocally() {
		t.Fatal("I6 must contain a client with ri > W")
	}
}

// TestGadgetI6ForwardDirection verifies the proof's explicit solution:
// for a certificate I, the constructed 4m-replica solution is
// feasible.
func TestGadgetI6ForwardDirection(t *testing.T) {
	cases := []struct {
		as []int64
		I  []int
	}{
		{[]int64{1, 1, 1, 1}, []int{1, 2}},
		{[]int64{1, 1, 2, 2, 3, 3}, []int{1, 3, 5}},          // 1+2+3 = 6 = S/2
		{[]int64{2, 2, 2, 2, 3, 3}, []int{1, 2, 5}},          // 2+2+3 = 7 = S/2
		{[]int64{1, 2, 2, 2, 2, 3, 3, 3}, []int{1, 4, 6, 8}}, // m=4: 1+2+3+3 = 9 = S/2
	}
	for _, tc := range cases {
		in, K, err := GadgetI6(tc.as)
		if err != nil {
			t.Fatalf("as=%v: %v", tc.as, err)
		}
		sol, err := I6Solution(in, tc.as, tc.I)
		if err != nil {
			t.Fatalf("as=%v: %v", tc.as, err)
		}
		if sol.NumReplicas() != K {
			t.Errorf("as=%v: solution uses %d replicas, want %d", tc.as, sol.NumReplicas(), K)
		}
		if err := core.Verify(in, core.Multiple, sol); err != nil {
			t.Errorf("as=%v: paper solution infeasible: %v", tc.as, err)
		}
	}
}

// TestGadgetI6StructuredEquivalence checks the combinatorial heart of
// the converse: among "structured" replica sets (the 3m forced
// replicas plus m of the nodes n1..n2m), feasibility holds iff the
// chosen index set is a certificate.
func TestGadgetI6StructuredEquivalence(t *testing.T) {
	as := []int64{1, 1, 2, 2, 3, 3} // m = 3, S = 12, S/2 = 6
	m := 3
	in, _, err := GadgetI6(as)
	if err != nil {
		t.Fatal(err)
	}
	forced := []tree.NodeID{FindLabel(in.Tree, "big")}
	for j := 2*m + 1; j <= 5*m-1; j++ {
		forced = append(forced, FindLabel(in.Tree, nodeLabel(j)))
	}
	// Enumerate all m-subsets of {1..2m}.
	idx := make([]int, 0, m)
	var recurse func(start int)
	checked, feasibleCount := 0, 0
	recurse = func(start int) {
		if len(idx) == m {
			var sum int64
			R := append([]tree.NodeID{}, forced...)
			for _, i := range idx {
				sum += as[i-1]
				R = append(R, FindLabel(in.Tree, nodeLabel(i)))
			}
			want := sum == 6
			got := exact.MultipleFeasible(in, R)
			if got != want {
				t.Errorf("I=%v (sum %d): structured feasibility %v, want %v", idx, sum, got, want)
			}
			checked++
			if got {
				feasibleCount++
			}
			return
		}
		for i := start; i <= 2*m; i++ {
			idx = append(idx, i)
			recurse(i + 1)
			idx = idx[:len(idx)-1]
		}
	}
	recurse(1)
	if checked != 20 {
		t.Fatalf("checked %d subsets, want C(6,3)=20", checked)
	}
	if feasibleCount == 0 || feasibleCount == checked {
		t.Fatalf("degenerate test: %d/%d feasible", feasibleCount, checked)
	}
}

func nodeLabel(j int) string { return "n" + itoa(j) }

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for x > 0 {
		i--
		buf[i] = byte('0' + x%10)
		x /= 10
	}
	return string(buf[i:])
}

func TestThreePartitionGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(2)
		B := int64(16 + 4*rng.Intn(10))
		as := ThreePartitionYes(rng, m, B)
		if len(as) != 3*m {
			t.Fatalf("len = %d", len(as))
		}
		var sum int64
		for _, a := range as {
			if !(a > B/4 && a < (B+1)/2) {
				t.Fatalf("ai=%d out of (B/4,B/2), B=%d", a, B)
			}
			sum += a
		}
		if sum != int64(m)*B {
			t.Fatalf("sum = %d, want %d", sum, int64(m)*B)
		}
		if !ThreePartitionExists(as, B) {
			t.Fatalf("YES instance not recognised: %v B=%d", as, B)
		}
	}
	if ThreePartitionExists([]int64{5, 5, 5, 5, 5, 7}, 16) {
		t.Fatal("known NO instance recognised as YES")
	}
	if ThreePartitionExists([]int64{1, 2}, 3) {
		t.Fatal("non-multiple-of-3 should be NO")
	}
}

func TestTwoPartitionGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		as := TwoPartitionYes(rng, 2+rng.Intn(4), 20)
		if !TwoPartitionExists(as) {
			t.Fatalf("YES instance not recognised: %v", as)
		}
	}
	if TwoPartitionExists([]int64{1, 2, 4}) {
		t.Fatal("odd-total NO instance recognised")
	}
	if TwoPartitionExists([]int64{2, 4, 10}) {
		t.Fatal("even-total NO instance (no subset sums to 8) recognised as YES")
	}
}

func TestTwoPartitionEqualGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(3)
		as := TwoPartitionEqualYes(rng, m, 9)
		if len(as) != 2*m {
			t.Fatalf("len = %d", len(as))
		}
		var S int64
		for _, a := range as {
			S += a
		}
		for _, a := range as {
			if 4*a > S {
				t.Fatalf("ai=%d > S/4 (S=%d)", a, S)
			}
		}
		if !TwoPartitionEqualExists(as) {
			t.Fatalf("YES instance not recognised: %v", as)
		}
	}
	// NO: all even values, odd half-sum.
	if TwoPartitionEqualExists([]int64{2, 2, 2, 2, 2, 2, 2, 4}) {
		t.Fatal("parity NO instance recognised as YES")
	}
	if TwoPartitionEqualExists([]int64{1, 2, 3}) {
		t.Fatal("odd count should be NO")
	}
}

func TestRandomTreeValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := TreeConfig{
			Internals:    1 + rng.Intn(20),
			MaxArity:     2 + rng.Intn(4),
			MaxDist:      1 + rng.Int63n(5),
			MaxReq:       1 + rng.Int63n(30),
			ExtraClients: rng.Intn(10),
		}
		tr := RandomTree(rng, cfg)
		if tr.Validate() != nil {
			return false
		}
		if tr.Arity() > cfg.MaxArity {
			return false
		}
		return tr.MaxRequests() <= cfg.MaxReq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	cfg := TreeConfig{Internals: 8, MaxArity: 3, MaxDist: 4, MaxReq: 9, ExtraClients: 5}
	t1 := RandomTree(rand.New(rand.NewSource(7)), cfg)
	t2 := RandomTree(rand.New(rand.NewSource(7)), cfg)
	if t1.Len() != t2.Len() || t1.TotalRequests() != t2.TotalRequests() {
		t.Fatal("same seed must give the same tree")
	}
}

func TestRandomBinaryIsBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		tr := RandomBinary(rng, 1+rng.Intn(15), 4, 10)
		if !tr.IsBinary() {
			t.Fatal("RandomBinary produced arity > 2")
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCaterpillarAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cat := Caterpillar(rng, 6, 3, 9)
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}
	if !cat.IsBinary() {
		t.Fatal("caterpillar should be binary")
	}
	if cat.NumClients() != 7 {
		t.Fatalf("caterpillar clients = %d, want 7", cat.NumClients())
	}
	cb := CompleteBinary(rng, 3, 3, 9)
	if err := cb.Validate(); err != nil {
		t.Fatal(err)
	}
	if cb.NumClients() != 8 {
		t.Fatalf("complete binary depth 3: clients = %d, want 8", cb.NumClients())
	}
	// Degenerate parameters fall back to minimal shapes.
	if Caterpillar(rng, 0, 0, 0).Validate() != nil {
		t.Fatal("degenerate caterpillar invalid")
	}
	if CompleteBinary(rng, 0, 0, 0).Validate() != nil {
		t.Fatal("degenerate complete binary invalid")
	}
}

func TestRandomInstanceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 50; i++ {
		withD := i%2 == 0
		in := RandomInstance(rng, TreeConfig{Internals: 5}, withD)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if !in.FitsLocally() {
			t.Fatal("RandomInstance must satisfy ri ≤ W")
		}
		if withD == in.NoD() {
			t.Fatalf("withDistance=%v but NoD=%v", withD, in.NoD())
		}
	}
}

func TestUniformTopologyValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		tr := UniformTopology(rng, n, 4, 9)
		return tr.Validate() == nil && tr.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformTopologyDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := UniformTopology(rng, 0, 0, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("degenerate tree has %d nodes, want 2", tr.Len())
	}
}

// TestUniformTopologyShapeDiversity: over many draws the generator
// must produce both deep (path-like) and shallow trees — the property
// incremental attachment lacks.
func TestUniformTopologyShapeDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	const n = 10
	deep, shallow := 0, 0
	for i := 0; i < 300; i++ {
		tr := UniformTopology(rng, n, 3, 9)
		h := tr.Height()
		if h >= n/2 {
			deep++
		}
		if h <= 3 {
			shallow++
		}
	}
	if deep == 0 || shallow == 0 {
		t.Fatalf("shape diversity missing: deep=%d shallow=%d", deep, shallow)
	}
}

// TestUniformTopologySolvable: the paper's algorithms run cleanly on
// Prüfer-drawn instances.
func TestUniformTopologySolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(5151))
	for i := 0; i < 30; i++ {
		tr := UniformTopology(rng, 3+rng.Intn(20), 3, 9)
		in := &core.Instance{Tree: tr, W: tr.MaxRequests() + 10, DMax: core.NoDistance}
		if _, err := exact.SolveMultiple(in, exact.Options{Budget: 5_000_000}); err != nil {
			// Large draws may blow the budget; that's fine — only
			// validate the structure then.
			continue
		}
	}
}
