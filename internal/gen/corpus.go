package gen

import (
	"fmt"
	"math/rand"

	"replicatree/internal/core"
)

// CorpusEntry is one instance of the golden regression corpus checked
// into testdata/.
type CorpusEntry struct {
	// Name is the file base name under testdata/.
	Name     string
	Instance *core.Instance
}

// Corpus returns the deterministic golden corpus: a spread of random
// binary/general trees across both distance regimes, the structured
// generators, and the paper's proof gadgets (including the oversized
// client gadget I6, on which only the exact/hetero machinery applies).
//
// The seeds are frozen: regenerating testdata/ (go generate ./... or
// REGEN_GOLDEN=1) must be a no-op unless an algorithm or generator
// deliberately changed behaviour. Keep instances small enough for the
// exact solvers — the manifest records every registered solver.
func Corpus() []CorpusEntry {
	var out []CorpusEntry
	add := func(name string, in *core.Instance) {
		if err := in.Validate(); err != nil {
			panic(fmt.Sprintf("gen: corpus instance %s invalid: %v", name, err))
		}
		out = append(out, CorpusEntry{Name: name, Instance: in})
	}
	random := func(seed int64, cfg TreeConfig, withD bool) *core.Instance {
		return RandomInstance(rand.New(rand.NewSource(seed)), cfg, withD)
	}

	binCfg := TreeConfig{Internals: 3, MaxArity: 2, MaxDist: 3, MaxReq: 9, ExtraClients: 2}
	wideCfg := TreeConfig{Internals: 4, MaxArity: 4, MaxDist: 3, MaxReq: 9, ExtraClients: 2}
	add("binary_nod_1.json", random(101, binCfg, false))
	add("binary_nod_2.json", random(102, TreeConfig{Internals: 4, MaxArity: 2, MaxDist: 3, MaxReq: 9, ExtraClients: 3}, false))
	add("binary_dist_1.json", random(103, binCfg, true))
	add("binary_dist_2.json", random(104, TreeConfig{Internals: 4, MaxArity: 2, MaxDist: 3, MaxReq: 9, ExtraClients: 3}, true))
	add("wide_nod.json", random(105, wideCfg, false))
	add("wide_dist.json", random(106, wideCfg, true))

	cat := Caterpillar(rand.New(rand.NewSource(107)), 6, 3, 9)
	add("caterpillar_nod.json", &core.Instance{Tree: cat, W: cat.MaxRequests() + 5, DMax: core.NoDistance})
	cb := CompleteBinary(rand.New(rand.NewSource(108)), 3, 3, 9)
	add("complete_nod.json", &core.Instance{Tree: cb, W: cb.MaxRequests() + 6, DMax: core.NoDistance})

	im, err := GadgetIm(3, 3)
	if err != nil {
		panic(err)
	}
	add("gadget_im.json", im.Instance)
	f4, err := GadgetFig4(4)
	if err != nil {
		panic(err)
	}
	add("gadget_fig4.json", f4.Instance)
	i2, _, err := GadgetI2([]int64{5, 5, 6, 5, 5, 6}, 16)
	if err != nil {
		panic(err)
	}
	add("gadget_i2.json", i2)
	i6, _, err := GadgetI6([]int64{1, 2, 2, 2, 2, 3, 3, 3})
	if err != nil {
		panic(err)
	}
	add("gadget_i6.json", i6)
	return out
}
