package hetero

import (
	"math/rand"
	"testing"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

func buildHetero() *Instance {
	// root(cap 20) — a(cap 5), b(cap 12); clients under a and b.
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	bb := b.Internal(root, 1, "b")
	c1 := b.Client(a, 1, 5, "c1")
	c2 := b.Client(a, 1, 7, "c2")
	c3 := b.Client(bb, 1, 6, "c3")
	t := b.MustBuild()
	caps := make([]int64, t.Len())
	caps[root] = 20
	caps[a] = 5
	caps[bb] = 12
	caps[c1] = 5
	caps[c2] = 7
	caps[c3] = 6
	return &Instance{Tree: t, Cap: caps, DMax: tree.Infinity}
}

func TestValidate(t *testing.T) {
	in := buildHetero()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.Cap = in.Cap[:2]
	if bad.Validate() == nil {
		t.Error("capacity length mismatch should fail")
	}
	bad2 := *in
	bad2.Cap = append([]int64{}, in.Cap...)
	bad2.Cap[0] = -1
	if bad2.Validate() == nil {
		t.Error("negative capacity should fail")
	}
	if (&Instance{}).Validate() == nil {
		t.Error("nil tree should fail")
	}
}

func TestSolveUsesBigRoot(t *testing.T) {
	in := buildHetero()
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Total demand 18 ≤ root capacity 20: one replica at the root.
	if sol.NumReplicas() != 1 || sol.Replicas[0] != in.Tree.Root() {
		t.Fatalf("want single root replica, got %v", sol)
	}
}

func TestSolveRespectsSmallCaps(t *testing.T) {
	in := buildHetero()
	in.Cap[in.Tree.Root()] = 6 // root too small now
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Verify(sol); err != nil {
		t.Fatal(err)
	}
	// 18 demand; capacities: b=12 covers c3(6)+... b can only serve
	// its own subtree (c3). Best: b(6 via c3) no... optimum: c2(7) +
	// b? b serves c3 only (6). Remaining c1 5 + c2 7: a has cap 5,
	// root 6. Two servers cannot cover 18: root 6 + b 12 = 18 but
	// root only reachable... c1,c2 can use root: root(6)+b(12): b
	// serves c3 6 — c1,c2 total 12 > root 6. Infeasible. 3 servers
	// needed.
	if sol.NumReplicas() != 3 {
		t.Fatalf("want 3 replicas, got %v", sol)
	}
}

func TestGreedyFeasibleAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gapSum := 0
	for trial := 0; trial < 80; trial++ {
		base := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2 + rng.Intn(3),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		in := FromUniform(base)
		// Perturb capacities: some nodes beefy, some weak — but keep
		// every client able to self-serve so the instance stays
		// feasible.
		for j := range in.Cap {
			id := tree.NodeID(j)
			if in.Tree.IsClient(id) {
				in.Cap[j] = in.Tree.Requests(id) + rng.Int63n(5)
			} else {
				in.Cap[j] = rng.Int63n(2 * base.W)
			}
		}
		g, err := Greedy(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := in.Verify(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Solve(in, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.NumReplicas() < opt.NumReplicas() {
			t.Fatalf("trial %d: greedy %d below optimum %d", trial, g.NumReplicas(), opt.NumReplicas())
		}
		gapSum += g.NumReplicas() - opt.NumReplicas()
	}
	if gapSum > 80/2 {
		t.Fatalf("greedy mean gap too large: %d over 80 trials", gapSum)
	}
}

// TestUniformMatchesCore: with uniform capacities the hetero exact
// solver agrees with the core exact solver.
func TestUniformMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 60; trial++ {
		base := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2,
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		in := FromUniform(base)
		h, err := Solve(in, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c, err := exact.SolveMultiple(base, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if h.NumReplicas() != c.NumReplicas() {
			t.Fatalf("trial %d: hetero %d != core %d", trial, h.NumReplicas(), c.NumReplicas())
		}
	}
}

func TestVerifyCatchesCapacityViolation(t *testing.T) {
	in := buildHetero()
	sol := &core.Solution{}
	a := tree.NodeID(1) // "a" with cap 5
	sol.AddReplica(a)
	for _, c := range in.Tree.Clients() {
		if in.Tree.Label(c) == "c1" || in.Tree.Label(c) == "c2" {
			sol.Assign(c, a, in.Tree.Requests(c)) // 12 > cap 5
		}
	}
	if in.Verify(sol) == nil {
		t.Fatal("overload should fail")
	}
}

func TestZeroCapacityForbidsPlacement(t *testing.T) {
	in := buildHetero()
	for j := range in.Cap {
		in.Cap[j] = 0
	}
	// Only clients get capacity — exactly their own demand.
	for _, c := range in.Tree.Clients() {
		in.Cap[c] = in.Tree.Requests(c)
	}
	sol, err := Solve(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 3 {
		t.Fatalf("want all 3 clients self-serving, got %v", sol)
	}
	for _, a := range sol.Assignments {
		if a.Client != a.Server {
			t.Fatalf("non-local assignment with zero internal capacity: %+v", a)
		}
	}
}

func TestInfeasibleHetero(t *testing.T) {
	in := buildHetero()
	for j := range in.Cap {
		in.Cap[j] = 1 // nothing can hold any client
	}
	if _, err := Solve(in, 0); err == nil {
		t.Fatal("expected infeasibility")
	}
	if _, err := Greedy(in); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestSolveSingleUniformMatchesCore(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		base := gen.RandomInstance(rng, gen.TreeConfig{
			Internals:    1 + rng.Intn(4),
			MaxArity:     2 + rng.Intn(2),
			MaxDist:      3,
			MaxReq:       9,
			ExtraClients: rng.Intn(3),
		}, trial%2 == 0)
		h, err := SolveSingle(FromUniform(base), 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := FromUniform(base).VerifySingle(h); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		c, err := exact.SolveSingle(base, exact.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if h.NumReplicas() != c.NumReplicas() {
			t.Fatalf("trial %d: hetero single %d != core %d", trial, h.NumReplicas(), c.NumReplicas())
		}
	}
}

func TestSolveSingleHeteroCapacities(t *testing.T) {
	// One big node can hold both bundles; uniform W could not.
	in := buildHetero() // root cap 20, a cap 5, clients fit themselves
	sol, err := SolveSingle(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumReplicas() != 1 || sol.Replicas[0] != in.Tree.Root() {
		t.Fatalf("want single root replica (cap 20 ≥ 18), got %v", sol)
	}
	// Shrink the root: now bundles must scatter.
	in.Cap[in.Tree.Root()] = 7
	sol, err = SolveSingle(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.VerifySingle(sol); err != nil {
		t.Fatal(err)
	}
	// c2 (7) only fits root (7) or itself; c1 (5) fits a or itself or
	// root... optimal: root takes c2(7); a takes c1(5); b takes
	// c3(6) → 3. Or root 7=c2, b 12 ≥ 6... 3 replicas minimum since
	// no pair of bundles fits any single node except... b cap 12:
	// c3+c1 = 11 ≤ 12 but c1 is not in b's subtree. So 3.
	if sol.NumReplicas() != 3 {
		t.Fatalf("want 3, got %v", sol)
	}
}

func TestSolveSingleInfeasibleBundle(t *testing.T) {
	in := buildHetero()
	// c2 (7 requests): cap of every node on its path < 7.
	for j := range in.Cap {
		in.Cap[j] = 6
	}
	if _, err := SolveSingle(in, 0); err == nil {
		t.Fatal("expected infeasibility for the 7-request bundle")
	}
}

func TestVerifySingleDetectsSplit(t *testing.T) {
	in := buildHetero()
	sol := &core.Solution{}
	root := in.Tree.Root()
	sol.AddReplica(root)
	var c2 tree.NodeID
	for _, c := range in.Tree.Clients() {
		if in.Tree.Label(c) == "c2" {
			c2 = c
		}
	}
	sol.AddReplica(c2)
	for _, c := range in.Tree.Clients() {
		r := in.Tree.Requests(c)
		if c == c2 {
			sol.Assign(c, root, 3)
			sol.Assign(c, c2, r-3)
		} else {
			sol.Assign(c, root, r)
		}
	}
	sol.Normalize()
	if err := in.Verify(sol); err != nil {
		t.Fatalf("split is fine under Multiple: %v", err)
	}
	if err := in.VerifySingle(sol); err == nil {
		t.Fatal("VerifySingle must reject the split")
	}
}
