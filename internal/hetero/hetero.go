// Package hetero extends the replica placement problem to
// heterogeneous servers: each node j has its own capacity Cap[j]
// instead of the paper's uniform W. This is the natural systems
// extension of the paper's model (its companion work [3] treats the
// homogeneous case; real deployments mix appliance generations).
//
// The package provides the Multiple-policy variant: a feasibility
// oracle via max-flow, an exact solver by replica-set search, and a
// polynomial greedy with local-search pruning. The uniform-capacity
// special case coincides with the core problem, which the tests
// cross-check against the paper's algorithms.
package hetero

import (
	"errors"
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/flow"
	"replicatree/internal/tree"
)

// Instance is a heterogeneous replica placement instance under the
// Multiple policy.
type Instance struct {
	Tree *tree.Tree
	// Cap[j] is the serving capacity of node j if a replica is placed
	// there; 0 disallows placing a replica at j.
	Cap  []int64
	DMax int64
}

// FromUniform lifts a core.Instance into a heterogeneous one with
// Cap[j] = W everywhere.
func FromUniform(in *core.Instance) *Instance {
	caps := make([]int64, in.Tree.Len())
	for j := range caps {
		caps[j] = in.W
	}
	return &Instance{Tree: in.Tree, Cap: caps, DMax: in.DMax}
}

// Validate checks instance invariants.
func (in *Instance) Validate() error {
	if in.Tree == nil {
		return errors.New("hetero: nil tree")
	}
	if err := in.Tree.Validate(); err != nil {
		return err
	}
	if len(in.Cap) != in.Tree.Len() {
		return fmt.Errorf("hetero: %d capacities for %d nodes", len(in.Cap), in.Tree.Len())
	}
	for j, c := range in.Cap {
		if c < 0 {
			return fmt.Errorf("hetero: negative capacity %d at node %d", c, j)
		}
	}
	if in.DMax < 0 {
		return fmt.Errorf("hetero: negative dmax %d", in.DMax)
	}
	return nil
}

// NoD reports whether the distance constraint is disabled.
func (in *Instance) NoD() bool { return in.DMax == tree.Infinity }

// Verify checks that sol is feasible: coverage, per-node capacities,
// path and distance constraints (Multiple policy).
func (in *Instance) Verify(sol *core.Solution) error {
	if err := in.Validate(); err != nil {
		return err
	}
	t := in.Tree
	rset := sol.ReplicaSet()
	loads := make(map[tree.NodeID]int64)
	served := make(map[tree.NodeID]int64)
	for _, a := range sol.Assignments {
		if !t.Valid(a.Client) || !t.Valid(a.Server) || a.Amount <= 0 {
			return fmt.Errorf("hetero: malformed assignment %+v", a)
		}
		if !rset[a.Server] {
			return fmt.Errorf("hetero: assignment to non-replica %d", a.Server)
		}
		if !t.IsAncestor(a.Server, a.Client) {
			return fmt.Errorf("hetero: server %d off the path of client %d", a.Server, a.Client)
		}
		if t.DistanceUp(a.Client, a.Server) > in.DMax {
			return fmt.Errorf("hetero: client %d beyond dmax from %d", a.Client, a.Server)
		}
		loads[a.Server] += a.Amount
		served[a.Client] += a.Amount
	}
	for _, r := range sol.Replicas {
		if !t.Valid(r) {
			return fmt.Errorf("hetero: invalid replica %d", r)
		}
		if loads[r] > in.Cap[r] {
			return fmt.Errorf("hetero: node %d load %d > capacity %d", r, loads[r], in.Cap[r])
		}
	}
	for _, c := range t.Clients() {
		if served[c] != t.Requests(c) {
			return fmt.Errorf("hetero: client %d served %d of %d", c, served[c], t.Requests(c))
		}
	}
	return nil
}

// eligible returns clients with requests and their candidate servers
// (positive capacity, on path, within dmax).
func (in *Instance) eligible() (clients []tree.NodeID, elig map[tree.NodeID][]tree.NodeID) {
	t := in.Tree
	elig = make(map[tree.NodeID][]tree.NodeID)
	for _, c := range t.Clients() {
		if t.Requests(c) == 0 {
			continue
		}
		clients = append(clients, c)
		for _, s := range t.EligibleServers(c, in.DMax) {
			if in.Cap[s] > 0 {
				elig[c] = append(elig[c], s)
			}
		}
	}
	return clients, elig
}

// Feasible reports whether replica set R can serve all requests, via
// max-flow with per-node capacities. It optionally returns the
// recovered assignment.
func (in *Instance) Feasible(R []tree.NodeID, recover bool) (*core.Solution, bool) {
	t := in.Tree
	clients, elig := in.eligible()
	rIdx := make(map[tree.NodeID]int, len(R))
	idx := 2
	cIdx := make(map[tree.NodeID]int, len(clients))
	for _, c := range clients {
		cIdx[c] = idx
		idx++
	}
	for _, s := range R {
		if _, dup := rIdx[s]; !dup {
			rIdx[s] = idx
			idx++
		}
	}
	g := flow.NewNetwork(idx)
	var total int64
	type arcRec struct {
		client, server tree.NodeID
		arc            int
		cap            int64
	}
	var arcs []arcRec
	for _, c := range clients {
		r := t.Requests(c)
		total += r
		g.AddEdge(0, cIdx[c], r)
		for _, s := range elig[c] {
			if si, ok := rIdx[s]; ok {
				a := g.AddEdge(cIdx[c], si, r)
				if recover {
					arcs = append(arcs, arcRec{c, s, a, r})
				}
			}
		}
	}
	for s, si := range rIdx {
		g.AddEdge(si, 1, in.Cap[s])
	}
	if g.MaxFlow(0, 1) != total {
		return nil, false
	}
	if !recover {
		return nil, true
	}
	sol := &core.Solution{}
	for _, s := range R {
		sol.AddReplica(s)
	}
	for _, a := range arcs {
		if amt := g.Flow(a.arc, a.cap); amt > 0 {
			sol.Assign(a.client, a.server, amt)
		}
	}
	sol.Normalize()
	return sol, true
}

// candidates lists nodes with positive capacity that can serve at
// least one request, sorted by decreasing capacity then coverage.
func (in *Instance) candidates() []tree.NodeID {
	t := in.Tree
	cover := make(map[tree.NodeID]int64)
	_, elig := in.eligible()
	for c, servers := range elig {
		for _, s := range servers {
			cover[s] += t.Requests(c)
		}
	}
	out := make([]tree.NodeID, 0, len(cover))
	for s := range cover {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := in.Cap[out[a]], in.Cap[out[b]]
		if ca != cb {
			return ca > cb
		}
		if cover[out[a]] != cover[out[b]] {
			return cover[out[a]] > cover[out[b]]
		}
		return out[a] < out[b]
	})
	return out
}
