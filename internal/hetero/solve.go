package hetero

import (
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// Greedy places replicas with a coverage-driven greedy plus a pruning
// local search:
//
//  1. while the current set is infeasible, add the candidate that
//     maximises newly-servable demand (capacity bounded by what its
//     eligible clients still need);
//  2. then repeatedly try to drop a replica (smallest capacity first)
//     while the set stays feasible.
//
// Runs in polynomial time; the result is feasible whenever the full
// candidate set is, and experiments measure its gap to the exact
// optimum.
func Greedy(in *Instance) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	cands := in.candidates()
	if sol, ok := in.Feasible(nil, true); ok {
		return sol, nil // no requests at all
	}
	if _, ok := in.Feasible(cands, false); !ok {
		return nil, fmt.Errorf("hetero: instance infeasible even with all candidates")
	}

	t := in.Tree
	_, elig := in.eligible()
	// demandVia[s]: total demand of clients that can use s.
	demandVia := make(map[tree.NodeID]int64)
	for c, servers := range elig {
		for _, s := range servers {
			demandVia[s] += t.Requests(c)
		}
	}

	var chosen []tree.NodeID
	inSet := make(map[tree.NodeID]bool)
	for {
		if _, ok := in.Feasible(chosen, false); ok {
			break
		}
		// Pick the unchosen candidate with the largest marginal
		// usefulness: min(capacity, demand routed via it).
		best := tree.None
		var bestScore int64 = -1
		for _, s := range cands {
			if inSet[s] {
				continue
			}
			score := demandVia[s]
			if in.Cap[s] < score {
				score = in.Cap[s]
			}
			if score > bestScore {
				best, bestScore = s, score
			}
		}
		if best == tree.None {
			return nil, fmt.Errorf("hetero: greedy exhausted candidates (unreachable)")
		}
		chosen = append(chosen, best)
		inSet[best] = true
	}

	// Local search: drop redundant replicas, smallest capacity first.
	for {
		dropped := false
		order := append([]tree.NodeID{}, chosen...)
		for i := len(order) - 1; i >= 0; i-- {
			trial := make([]tree.NodeID, 0, len(chosen)-1)
			for _, s := range chosen {
				if s != order[i] {
					trial = append(trial, s)
				}
			}
			if _, ok := in.Feasible(trial, false); ok {
				chosen = trial
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}

	sol, ok := in.Feasible(chosen, true)
	if !ok {
		return nil, fmt.Errorf("hetero: final set infeasible (unreachable)")
	}
	if err := in.Verify(sol); err != nil {
		return nil, fmt.Errorf("hetero: greedy produced infeasible solution: %w", err)
	}
	return sol, nil
}

// Solve finds an optimal replica set by enumerating sets of increasing
// size with monotone pruning (the hetero analogue of
// exact.SolveMultiple). Exponential; small instances only.
func Solve(in *Instance, budget int64) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		budget = 20_000_000
	}
	cands := in.candidates()
	if sol, ok := in.Feasible(nil, true); ok {
		return sol, nil
	}
	if _, ok := in.Feasible(cands, false); !ok {
		return nil, fmt.Errorf("hetero: instance infeasible")
	}
	// Lower bound: total demand vs the largest k capacities.
	total := in.Tree.TotalRequests()
	lb := 1
	var acc int64
	for i, s := range cands {
		acc += in.Cap[s]
		if acc >= total {
			lb = i + 1
			break
		}
	}
	for k := lb; k <= len(cands); k++ {
		if budget <= 0 {
			return nil, fmt.Errorf("hetero: work budget exceeded")
		}
		if set := chooseK(in, cands, nil, 0, k, &budget); set != nil {
			sol, ok := in.Feasible(set, true)
			if !ok {
				return nil, fmt.Errorf("hetero: chosen set infeasible (unreachable)")
			}
			if err := in.Verify(sol); err != nil {
				return nil, err
			}
			return sol, nil
		}
	}
	return nil, fmt.Errorf("hetero: no solution found (unreachable)")
}

func chooseK(in *Instance, cands, chosen []tree.NodeID, from, k int, budget *int64) []tree.NodeID {
	if *budget <= 0 {
		return nil
	}
	*budget--
	if len(chosen) == k {
		if _, ok := in.Feasible(chosen, false); ok {
			out := make([]tree.NodeID, k)
			copy(out, chosen)
			return out
		}
		return nil
	}
	if len(chosen)+(len(cands)-from) < k {
		return nil
	}
	if len(chosen) > 0 {
		all := append(append([]tree.NodeID{}, chosen...), cands[from:]...)
		if _, ok := in.Feasible(all, false); !ok {
			return nil
		}
	}
	for i := from; i < len(cands); i++ {
		if set := chooseK(in, cands, append(chosen, cands[i]), i+1, k, budget); set != nil {
			return set
		}
	}
	return nil
}
