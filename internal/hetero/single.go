package hetero

import (
	"fmt"
	"sort"

	"replicatree/internal/core"
	"replicatree/internal/tree"
)

// SolveSingle finds an optimal Single-policy placement under
// heterogeneous capacities: every client's whole bundle goes to one
// replica whose capacity covers the sum of its assigned bundles.
// Branch-and-bound over client assignments, mirroring
// exact.SolveSingle with per-node capacities. Exponential; small
// instances only.
func SolveSingle(in *Instance, budget int64) (*core.Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if budget <= 0 {
		budget = 20_000_000
	}
	clients, elig := in.eligible()
	t := in.Tree
	// Single feasibility needs ri ≤ Cap[s] for some eligible s.
	for _, c := range clients {
		ok := false
		for _, s := range elig[c] {
			if in.Cap[s] >= t.Requests(c) {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("hetero: client %d (r=%d) fits no eligible node", c, t.Requests(c))
		}
	}
	if len(clients) == 0 {
		return &core.Solution{}, nil
	}
	sort.Slice(clients, func(a, b int) bool {
		ra, rb := t.Requests(clients[a]), t.Requests(clients[b])
		if ra != rb {
			return ra > rb
		}
		return clients[a] < clients[b]
	})

	s := &hsSearch{
		in:      in,
		clients: clients,
		elig:    elig,
		resid:   make(map[tree.NodeID]int64),
		assign:  make(map[tree.NodeID]tree.NodeID, len(clients)),
		best:    len(clients) + 1,
		budget:  budget,
	}
	// Largest capacities, for the optimistic bound.
	caps := append([]int64{}, in.Cap...)
	sort.Slice(caps, func(a, b int) bool { return caps[a] > caps[b] })
	s.sortedCaps = caps
	s.remaining = make([]int64, len(clients)+1)
	for k := len(clients) - 1; k >= 0; k-- {
		s.remaining[k] = s.remaining[k+1] + t.Requests(clients[k])
	}
	s.dfs(0)
	if s.budget <= 0 {
		return nil, fmt.Errorf("hetero: work budget exceeded")
	}
	if s.bestAssign == nil {
		return nil, fmt.Errorf("hetero: no Single solution found")
	}
	sol := &core.Solution{}
	for c, srv := range s.bestAssign {
		sol.AddReplica(srv)
		sol.Assign(c, srv, t.Requests(c))
	}
	sol.Normalize()
	if err := in.Verify(sol); err != nil {
		return nil, fmt.Errorf("hetero: single solver produced infeasible solution: %w", err)
	}
	return sol, nil
}

type hsSearch struct {
	in         *Instance
	clients    []tree.NodeID
	elig       map[tree.NodeID][]tree.NodeID
	resid      map[tree.NodeID]int64
	assign     map[tree.NodeID]tree.NodeID
	remaining  []int64
	sortedCaps []int64
	best       int
	bestAssign map[tree.NodeID]tree.NodeID
	budget     int64
}

func (s *hsSearch) dfs(k int) {
	if s.budget <= 0 {
		return
	}
	s.budget--
	open := len(s.resid)
	if open >= s.best {
		return
	}
	if k == len(s.clients) {
		s.best = open
		s.bestAssign = make(map[tree.NodeID]tree.NodeID, len(s.assign))
		for c, srv := range s.assign {
			s.bestAssign[c] = srv
		}
		return
	}
	// Optimistic bound: residual capacity of open replicas plus the
	// largest unopened capacities.
	var residTotal int64
	for _, r := range s.resid {
		residTotal += r
	}
	if over := s.remaining[k] - residTotal; over > 0 {
		extra := 0
		for _, c := range s.sortedCaps {
			if over <= 0 || c <= 0 {
				break
			}
			over -= c
			extra++
		}
		if over > 0 || open+extra >= s.best {
			return
		}
	}

	c := s.clients[k]
	r := s.in.Tree.Requests(c)
	for _, srv := range s.elig[c] {
		res, isOpen := s.resid[srv]
		if !isOpen || res < r {
			continue
		}
		s.resid[srv] = res - r
		s.assign[c] = srv
		s.dfs(k + 1)
		s.resid[srv] = res
		delete(s.assign, c)
	}
	if open+1 >= s.best {
		return
	}
	for _, srv := range s.elig[c] {
		if _, isOpen := s.resid[srv]; isOpen || s.in.Cap[srv] < r {
			continue
		}
		s.resid[srv] = s.in.Cap[srv] - r
		s.assign[c] = srv
		s.dfs(k + 1)
		delete(s.resid, srv)
		delete(s.assign, c)
	}
}

// VerifySingle checks the Single policy on top of Verify: one server
// per client.
func (in *Instance) VerifySingle(sol *core.Solution) error {
	if err := in.Verify(sol); err != nil {
		return err
	}
	seen := make(map[tree.NodeID]tree.NodeID)
	for _, a := range sol.Assignments {
		if prev, ok := seen[a.Client]; ok && prev != a.Server {
			return fmt.Errorf("hetero: client %d split across %d and %d under Single", a.Client, prev, a.Server)
		}
		seen[a.Client] = a.Server
	}
	return nil
}
