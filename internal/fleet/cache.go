package fleet

import (
	"strings"
	"sync/atomic"

	"replicatree/internal/service"
	"replicatree/internal/solver"
)

// peerNetwork is the tiered cache's view of the rest of the fleet:
// a synchronous owner-peer lookup (tier 2) and an asynchronous gossip
// push of freshly computed entries. The Fleet implements it over the
// ring; tests can stub it.
type peerNetwork interface {
	// fetchPeer probes the key's owner and replica holders (excluding
	// origin) for a cached report.
	fetchPeer(origin, solverName, key string) (solver.Report, bool)
	// pushReplicas asynchronously replicates a fresh entry from origin
	// to the key's ring successors. Never blocks; may drop under
	// backpressure.
	pushReplicas(origin, solverName, key string, rep solver.Report)
}

// TieredCache is one fleet worker's result cache: a local LRU
// (tier 1) in front of a peer lookup across the key's owner and
// replica holders (tier 2). A tier-2 hit is adopted into the local
// LRU; a fresh Put is gossiped to the key's ring successors so a
// worker death doesn't cold-start its whole keyspace. It implements
// service.ResultCache, so a worker's service.Server runs the exact
// same solve path as a standalone daemon.
type TieredCache struct {
	owner string
	local *service.Cache
	net   peerNetwork

	t2hits, t2misses   atomic.Uint64
	accepted, drainOut atomic.Uint64
}

var _ service.ResultCache = (*TieredCache)(nil)

// newTieredCache builds a worker cache with a tier-1 LRU of the given
// capacity. net may be nil (single-worker fleets have no peers).
func newTieredCache(owner string, capacity int, net peerNetwork) *TieredCache {
	return &TieredCache{owner: owner, local: service.NewCache(capacity), net: net}
}

// shardKey strips the request-variant suffix ("hash|p=…") off a cache
// key: ring placement is by canonical instance hash alone, so all
// variants of one instance co-locate with their owner.
func shardKey(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

// Get implements service.ResultCache: local LRU first, then the peer
// tier. Tier-2 hits are adopted locally so repeats stay tier-1.
func (c *TieredCache) Get(solverName, key string) (solver.Report, bool) {
	if rep, ok := c.local.Get(solverName, key); ok {
		return rep, true
	}
	if c.net != nil {
		if rep, ok := c.net.fetchPeer(c.owner, solverName, key); ok {
			c.t2hits.Add(1)
			c.local.Put(solverName, key, rep)
			return rep, true
		}
		c.t2misses.Add(1)
	}
	return solver.Report{}, false
}

// Put implements service.ResultCache: store locally, then gossip the
// fresh entry to the key's ring successors.
func (c *TieredCache) Put(solverName, key string, rep solver.Report) {
	c.local.Put(solverName, key, rep)
	if c.net != nil {
		c.net.pushReplicas(c.owner, solverName, key, rep)
	}
}

// Stats implements service.ResultCache with the merged two-tier view:
// a tier-2 hit counts as a hit, not the local miss that preceded it,
// so a worker's /metrics hit rate reflects what its clients observed.
func (c *TieredCache) Stats() service.CacheStats {
	st := c.local.Stats()
	t2 := c.t2hits.Load()
	st.Hits += t2
	st.Misses -= t2 // every tier-2 hit was first a tier-1 miss
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	} else {
		st.HitRate = 0
	}
	return st
}

// peek serves peer probes from the local tier only, without touching
// this worker's accounting or LRU order (see service.Cache.Peek).
func (c *TieredCache) peek(solverName, key string) (solver.Report, bool) {
	return c.local.Peek(solverName, key)
}

// acceptReplica stores a gossiped or drained entry in the local tier.
func (c *TieredCache) acceptReplica(solverName, key string, rep solver.Report) {
	c.local.Put(solverName, key, rep)
	c.accepted.Add(1)
}

// hottest returns up to n local entries in most-recently-used order —
// what a draining worker pushes to its successors.
func (c *TieredCache) hottest(n int) []service.CachedEntry {
	return c.local.MostRecent(n)
}

// TierStats is the per-worker cache block of the fleet snapshot,
// splitting effectiveness by tier.
type TierStats struct {
	Size             int     `json:"size"`
	Tier1Hits        uint64  `json:"tier1_hits"`
	Tier1Misses      uint64  `json:"tier1_misses"`
	Tier2Hits        uint64  `json:"tier2_hits"`
	Tier2Misses      uint64  `json:"tier2_misses"`
	Evictions        uint64  `json:"evictions"`
	ReplicasAccepted uint64  `json:"replicas_accepted"`
	DrainPushed      uint64  `json:"drain_pushed"`
	HitRate          float64 `json:"hit_rate"`
}

// tierStats snapshots the per-tier counters. Tier1Misses counts true
// local misses (before the peer tier resolved them); HitRate is the
// merged client-observed rate.
func (c *TieredCache) tierStats() TierStats {
	ls := c.local.Stats()
	ts := TierStats{
		Size:             ls.Size,
		Tier1Hits:        ls.Hits,
		Tier1Misses:      ls.Misses,
		Tier2Hits:        c.t2hits.Load(),
		Tier2Misses:      c.t2misses.Load(),
		Evictions:        ls.Evictions,
		ReplicasAccepted: c.accepted.Load(),
		DrainPushed:      c.drainOut.Load(),
	}
	if total := ls.Hits + ls.Misses; total > 0 {
		ts.HitRate = float64(ls.Hits+ts.Tier2Hits) / float64(total)
	}
	return ts
}
