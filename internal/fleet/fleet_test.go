package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/service"
	"replicatree/internal/solver"
)

// corpusInstance loads one instance of the checked-in golden corpus.
func corpusInstance(t testing.TB, name string) *core.Instance {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	return &in
}

// corpusFiles lists the corpus instances (manifest excluded).
func corpusFiles(t testing.TB) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("..", "..", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.Name() != "manifest.json" && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	return names
}

func newTestFleet(t testing.TB, cfg Config) (*Fleet, *httptest.Server) {
	t.Helper()
	f := New(cfg)
	ts := httptest.NewServer(f.Router())
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	return f, ts
}

func postBody(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// solveVia solves one instance through the router and decodes the v2
// response.
func solveVia(t testing.TB, url, solverName string, in *core.Instance) service.SolveResponseV2 {
	t.Helper()
	resp, body := postBody(t, url+"/v2/solve", service.SolveRequestV2{Solver: solverName, Instance: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	var out service.SolveResponseV2
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// stubNet is a scripted peerNetwork for cache unit tests.
type stubNet struct {
	mu      sync.Mutex
	entries map[string]solver.Report
	pushes  int
}

func (s *stubNet) fetchPeer(origin, solverName, key string) (solver.Report, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.entries[solverName+"/"+key]
	return rep, ok
}

func (s *stubNet) pushReplicas(origin, solverName, key string, rep solver.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushes++
}

// TestTieredCacheMergedAccounting pins the two-tier Get/Put flow and
// the merged stats view: a tier-2 hit counts as a hit (not the local
// miss that preceded it) and is adopted into tier 1.
func TestTieredCacheMergedAccounting(t *testing.T) {
	sol := &core.Solution{}
	sol.AddReplica(1)
	sol.Assign(1, 1, 1)
	rep := solver.Report{Solution: sol, Policy: core.Single, LowerBound: 1}
	net := &stubNet{entries: map[string]solver.Report{"s/k1": rep}}
	tc := newTieredCache("w0", 8, net)

	got, ok := tc.Get("s", "k1") // tier-1 miss → tier-2 hit
	if !ok || got.Solution.NumReplicas() != 1 {
		t.Fatalf("tier-2 lookup failed: ok=%v", ok)
	}
	if _, ok := tc.Get("s", "k1"); !ok { // adopted → tier-1 hit
		t.Fatal("tier-2 hit was not adopted into tier 1")
	}
	if _, ok := tc.Get("s", "k2"); ok { // true miss on both tiers
		t.Fatal("phantom hit")
	}
	ts := tc.tierStats()
	if ts.Tier1Hits != 1 || ts.Tier2Hits != 1 || ts.Tier2Misses != 1 {
		t.Errorf("tier stats %+v, want t1=1 t2=1 t2miss=1", ts)
	}
	st := tc.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("merged stats %+v, want 2 hits / 1 miss", st)
	}
	tc.Put("s", "k3", rep)
	if net.pushes != 1 {
		t.Errorf("Put pushed %d replicas, want 1", net.pushes)
	}
}

func TestShardKeyStripsVariant(t *testing.T) {
	if got := shardKey("abc123|p=1;b=0"); got != "abc123" {
		t.Errorf("shardKey kept the variant: %q", got)
	}
	if got := shardKey("abc123"); got != "abc123" {
		t.Errorf("plain hash mangled: %q", got)
	}
}

// TestFleetPeerLookup: a worker that never saw an instance serves it
// from the owner's cache (tier 2) rather than re-solving.
func TestFleetPeerLookup(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 3, Replication: 1, CacheSize: 64})
	in := corpusInstance(t, "binary_dist_1.json")
	key := in.CanonicalHash()
	const eng = "single-gen"

	out := solveVia(t, ts.URL, eng, in)
	if out.Cached {
		t.Fatal("first solve reported cached")
	}
	owner, _ := f.ring.Owner(key)
	holders := f.ring.Successors(key, 2) // owner + its one replica target
	var outsider *Worker
	for _, id := range f.WorkerIDs() {
		if id != holders[0] && (len(holders) < 2 || id != holders[1]) {
			outsider = f.Worker(id)
			break
		}
	}
	if outsider == nil {
		t.Fatal("no outsider worker")
	}
	if _, ok := outsider.cache.peek(eng, key); ok {
		t.Fatalf("outsider %s already holds the key locally", outsider.ID())
	}
	rep, ok := outsider.cache.Get(eng, key)
	if !ok || rep.Solution == nil {
		t.Fatalf("outsider tier-2 lookup failed (owner %s holds the entry)", owner)
	}
	if ts2 := outsider.cache.tierStats(); ts2.Tier2Hits != 1 {
		t.Errorf("outsider tier stats %+v, want one tier-2 hit", ts2)
	}
	if _, ok := outsider.cache.peek(eng, key); !ok {
		t.Error("tier-2 hit was not adopted locally")
	}
}

// TestFleetGossipReplication: a fresh solve is replicated to exactly
// the key's K ring successors.
func TestFleetGossipReplication(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 4, Replication: 2, CacheSize: 64})
	in := corpusInstance(t, "binary_dist_2.json")
	key := in.CanonicalHash()
	const eng = "single-gen"

	solveVia(t, ts.URL, eng, in)
	f.SyncGossip()

	holders := f.ring.Successors(key, 3) // owner + K=2 replicas
	holderSet := make(map[string]bool, len(holders))
	for _, id := range holders {
		holderSet[id] = true
	}
	for _, id := range f.WorkerIDs() {
		_, has := f.Worker(id).cache.peek(eng, key)
		if holderSet[id] && !has {
			t.Errorf("worker %s (owner or replica target) is missing the entry", id)
		}
		if !holderSet[id] && has {
			t.Errorf("worker %s holds an entry gossip should not have sent it", id)
		}
	}
	if snap := f.Snapshot(); snap.Gossip.Sent != 2 || snap.Totals.ReplicasAccepted != 2 {
		t.Errorf("gossip counters %+v / accepted %d, want 2 / 2", snap.Gossip, snap.Totals.ReplicasAccepted)
	}
}

// TestFleetFailoverServesReplica is the crash story end to end: warm
// the owner, replicate, kill the owner, and the same request must
// succeed through a ring successor — warm, via the gossiped replica.
func TestFleetFailoverServesReplica(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 3, Replication: 1, CacheSize: 64})
	in := corpusInstance(t, "gadget_fig4.json")
	key := in.CanonicalHash()
	const eng = "single-gen"

	solveVia(t, ts.URL, eng, in)
	f.SyncGossip()
	owner, _ := f.ring.Owner(key)
	if err := f.Kill(owner); err != nil {
		t.Fatal(err)
	}

	out := solveVia(t, ts.URL, eng, in) // must not 5xx
	if !out.Cached {
		t.Error("failover request missed the replicated entry (cold re-solve)")
	}
	snap := f.Snapshot()
	if snap.Failovers == 0 {
		t.Error("failover counter did not move")
	}
	if snap.Alive != 2 || snap.PerWorker[owner].State != "dead" {
		t.Errorf("snapshot after kill: alive=%d owner state=%s", snap.Alive, snap.PerWorker[owner].State)
	}
	// The successor that served it must not have re-solved: its
	// service saw no fresh solve for this engine beyond the replica.
	if !out.Verified || out.Replicas == 0 {
		t.Errorf("degenerate failover response: %+v", out)
	}
}

// TestFleetKillMidLoad pins the acceptance bar "killing one worker
// mid-run yields zero failed requests": hammer the router from many
// goroutines, kill a worker halfway through, and every response must
// be 200.
func TestFleetKillMidLoad(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 4, Replication: 2, CacheSize: 256})
	// Warm every feasible key once so the kill happens against a warm
	// fleet (some corpus instances are infeasible for Single — skip).
	var instances []*core.Instance
	for _, name := range corpusFiles(t) {
		in := corpusInstance(t, name)
		resp, _ := postBody(t, ts.URL+"/v2/solve", service.SolveRequestV2{Solver: "single-gen", Instance: in})
		if resp.StatusCode == http.StatusOK {
			instances = append(instances, in)
		}
	}
	if len(instances) < 3 {
		t.Fatalf("only %d feasible corpus instances", len(instances))
	}
	f.SyncGossip()

	const goroutines = 8
	const perG = 60
	victim, _ := f.ring.Owner(instances[0].CanonicalHash())
	var killed sync.WaitGroup
	killed.Add(1)
	var bad atomic.Int64
	var killErr error
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				if g == 0 && i == perG/3 {
					killErr = f.Kill(victim)
					killed.Done()
				}
				in := instances[rng.Intn(len(instances))]
				resp, body := postBody(t, ts.URL+"/v2/solve", service.SolveRequestV2{Solver: "single-gen", Instance: in})
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
					t.Errorf("status %d during kill-load: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	wg.Wait()
	killed.Wait()
	if killErr != nil {
		t.Fatal(killErr)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d failed requests after killing %s", bad.Load(), victim)
	}
	if snap := f.Snapshot(); snap.Alive != 3 {
		t.Errorf("alive=%d after one kill", snap.Alive)
	}
}

// TestFleetDrain pins the graceful-leave contract: the drained
// worker's hottest entries land on their new owners before its memory
// goes away, the ring shrinks, and its keyspace stays warm.
func TestFleetDrain(t *testing.T) {
	// Replication off: any post-drain warmth must come from the drain
	// push itself, not from earlier gossip.
	f, ts := newTestFleet(t, Config{Workers: 3, Replication: 0, CacheSize: 64})
	const eng = "single-gen"
	byOwner := make(map[string][]*core.Instance)
	for _, name := range corpusFiles(t) {
		in := corpusInstance(t, name)
		resp, _ := postBody(t, ts.URL+"/v2/solve", service.SolveRequestV2{Solver: eng, Instance: in})
		if resp.StatusCode != http.StatusOK {
			continue // infeasible for Single
		}
		owner, _ := f.ring.Owner(in.CanonicalHash())
		byOwner[owner] = append(byOwner[owner], in)
	}
	var victim string
	for id, owned := range byOwner {
		if len(owned) > 0 {
			victim = id
			break
		}
	}
	if victim == "" {
		t.Fatal("no worker owns any corpus key")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if f.ring.Size() != 2 {
		t.Errorf("ring size %d after drain, want 2", f.ring.Size())
	}
	if st := f.Worker(victim).cache.drainOut.Load(); st == 0 {
		t.Error("drain pushed no entries")
	}
	for _, in := range byOwner[victim] {
		key := in.CanonicalHash()
		newOwner, _ := f.ring.Owner(key)
		if _, ok := f.Worker(newOwner).cache.peek(eng, key); !ok {
			t.Errorf("key %s… not warm at new owner %s after drain", key[:8], newOwner)
		}
		out := solveVia(t, ts.URL, eng, in)
		if !out.Cached {
			t.Errorf("post-drain solve of %s… was cold", key[:8])
		}
	}
	// A second drain of the same worker must refuse.
	if err := f.Drain(ctx, victim); err == nil {
		t.Error("draining a dead worker did not error")
	}
}

// TestFleetObservability: /healthz and /metrics expose the fleet
// topology and per-worker tier counters.
func TestFleetObservability(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 2, Replication: 1, CacheSize: 16})
	in := corpusInstance(t, "wide_dist.json")
	solveVia(t, ts.URL, "single-gen", in)
	solveVia(t, ts.URL, "single-gen", in) // warm repeat

	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz struct {
		Status  string   `json:"status"`
		Workers int      `json:"workers"`
		Alive   int      `json:"alive"`
		Ring    []string `json:"ring"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Workers != 2 || hz.Alive != 2 || len(hz.Ring) != 2 {
		t.Errorf("healthz %+v", hz)
	}

	respM, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer respM.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(respM.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Workers != 2 || len(snap.PerWorker) != 2 {
		t.Errorf("snapshot shape %+v", snap)
	}
	if snap.Totals.Tier1Hits == 0 {
		t.Error("warm repeat did not count as a tier-1 hit in totals")
	}
	if snap.Router.Requests["/v2/solve"] != 2 {
		t.Errorf("router request counter %v", snap.Router.Requests)
	}
	if f.Snapshot().Replication != 1 {
		t.Error("replication factor missing from snapshot")
	}
}
