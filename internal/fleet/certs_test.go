package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/service"
)

// solveCertVia requests a certificate-bearing /v2/solve through the
// fleet router.
func solveCertVia(t testing.TB, url, solverName string, in *core.Instance) service.SolveResponseV2 {
	t.Helper()
	resp, body := postBody(t, url+"/v2/solve", service.SolveRequestV2{
		Solver: solverName, Instance: in, Certificate: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", resp.StatusCode, body)
	}
	var out service.SolveResponseV2
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Certificate == nil {
		t.Fatal("certificate requested but absent")
	}
	return out
}

func pollFleetJob(t testing.TB, url, jobID string) service.JobResponseV2 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(url + "/v2/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r.StatusCode, b)
		}
		var jr service.JobResponseV2
		if err := json.Unmarshal(b, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status == service.JobDone {
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not settle within 10s")
	return service.JobResponseV2{}
}

// TestFleetProofForwarding: certificates flow through the fleet — a
// certificates-enabled batch lands on one worker, and the router
// forwards /v2/jobs/{id}/proof/{task} to that owner so every task's
// certificate + inclusion proof is fetchable through the front-end
// and verifies offline. The fleet /metrics document aggregates the
// cert counters across workers.
func TestFleetProofForwarding(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 4, Replication: 0, CacheSize: 256})
	files := []string{"binary_nod_1.json", "binary_dist_2.json", "gadget_fig4.json", "wide_nod.json"}
	req := service.BatchRequestV2{Workers: 1, Certificates: true}
	for _, file := range files {
		req.Tasks = append(req.Tasks, service.BatchTaskV2{
			ID: file, Solver: "auto", Instance: corpusInstance(t, file),
		})
	}
	resp, body := postBody(t, ts.URL+"/v2/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc service.BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	done := pollFleetJob(t, ts.URL, acc.JobID)
	if done.CertificateRoot == "" {
		t.Fatal("fleet job settled without a certificate root")
	}

	for _, file := range files {
		r, err := http.Get(ts.URL + "/v2/jobs/" + acc.JobID + "/proof/" + file)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s: proof status %d: %s", file, r.StatusCode, b)
		}
		var pr service.ProofResponseV2
		if err := json.Unmarshal(b, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.CertificateRoot != done.CertificateRoot {
			t.Fatalf("%s: proof root %s != job root %s", file, pr.CertificateRoot, done.CertificateRoot)
		}
		if err := pr.Certificate.VerifyAgainst(corpusInstance(t, file)); err != nil {
			t.Fatalf("%s: certificate rejected offline: %v", file, err)
		}
		if err := pr.Certificate.VerifyInclusionOf(done.CertificateRoot, pr.Proof); err != nil {
			t.Fatalf("%s: inclusion rejected: %v", file, err)
		}
	}

	snap := f.Snapshot()
	if snap.Certs.Issued < uint64(len(files)) {
		t.Errorf("fleet certs issued = %d, want ≥ %d", snap.Certs.Issued, len(files))
	}
	if snap.Certs.ProofsServed != uint64(len(files)) {
		t.Errorf("fleet proofs served = %d, want %d", snap.Certs.ProofsServed, len(files))
	}
	if snap.Certs.Failures != 0 {
		t.Errorf("fleet cert failures = %d, want 0", snap.Certs.Failures)
	}
}

// TestFleetGossipAdoptedCertificates is the cert-survival pin: a
// result gossiped to a replica worker and served from its cache after
// the owner dies must yield byte-identical certificate bytes — the
// certificate's canonical encoding covers no wall-clock or
// worker-local field, and cached reports keep the Proved/Work
// metadata certificates attest.
func TestFleetGossipAdoptedCertificates(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 4, Replication: 2, CacheSize: 64})
	in := corpusInstance(t, "binary_dist_2.json")
	const eng = "exact-multiple"

	fresh := solveCertVia(t, ts.URL, eng, in)
	if err := fresh.Certificate.VerifyAgainst(in); err != nil {
		t.Fatalf("owner's certificate rejected: %v", err)
	}
	f.SyncGossip()

	owner, ok := f.ring.Owner(in.CanonicalHash())
	if !ok {
		t.Fatal("no ring owner")
	}
	if err := f.Kill(owner); err != nil {
		t.Fatal(err)
	}

	adopted := solveCertVia(t, ts.URL, eng, in)
	if !adopted.Cached {
		t.Fatal("successor did not serve the gossiped replica from cache")
	}
	h1, err := fresh.Certificate.HashHex()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := adopted.Certificate.HashHex()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("gossip-adopted result issued different certificate bytes: owner %s, replica %s", h1, h2)
	}
	if adopted.Certificate.Optimality == nil {
		t.Fatal("gossip-adopted certificate lost the optimality attestation")
	}
	if err := adopted.Certificate.VerifyAgainst(in); err != nil {
		t.Fatalf("gossip-adopted certificate rejected offline: %v", err)
	}
}
