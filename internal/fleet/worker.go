package fleet

import (
	"net/http"
	"sync"
	"sync/atomic"

	"replicatree/internal/service"
)

// Worker states. A worker starts alive, moves to draining during a
// graceful leave (no new routed requests, in-flight ones finish,
// cache still answers peer probes) and ends dead (crashed or
// drained out: unroutable and unpeekable — its memory is gone).
const (
	stateAlive int32 = iota
	stateDraining
	stateDead
)

// Worker is one fleet member: a full service.Server (same solve path,
// job pool and instance store as a standalone replicad) whose result
// cache is the fleet's two-tier cache.
type Worker struct {
	id        string
	srv       *service.Server
	cache     *TieredCache
	state     atomic.Int32
	inflight  sync.WaitGroup
	forwards  atomic.Uint64
	closeOnce sync.Once
}

// newWorker assembles one member around an injected tiered cache.
func newWorker(id string, cache *TieredCache, opt service.Options) *Worker {
	opt.Cache = cache
	return &Worker{id: id, srv: service.New(opt), cache: cache}
}

// ID returns the worker's fleet identity (its ring member name).
func (w *Worker) ID() string { return w.id }

// routable reports whether the router may send new requests here.
func (w *Worker) routable() bool { return w.state.Load() == stateAlive }

// peekable reports whether peers may still read this worker's cache:
// true while alive or draining, false once dead (a crashed worker's
// memory is lost — that is exactly what gossip replication covers).
func (w *Worker) peekable() bool { return w.state.Load() != stateDead }

// stateLabel renders the worker state for the fleet snapshot.
func (w *Worker) stateLabel() string {
	switch w.state.Load() {
	case stateDraining:
		return "draining"
	case stateDead:
		return "dead"
	default:
		return "alive"
	}
}

// serve forwards one routed request into the worker's service mux,
// tracking it for drain. It reports false — without writing a
// response — when the worker is dead, so the router can fail over to
// a ring successor.
func (w *Worker) serve(rw http.ResponseWriter, req *http.Request) bool {
	w.inflight.Add(1)
	defer w.inflight.Done()
	if w.state.Load() == stateDead {
		return false
	}
	w.forwards.Add(1)
	w.srv.ServeHTTP(rw, req)
	return true
}

// close shuts the underlying service down exactly once.
func (w *Worker) close() {
	w.closeOnce.Do(w.srv.Close)
}
