package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"replicatree/internal/service"
	"replicatree/internal/solver"
)

// goldenManifest loads the golden corpus manifest: instance file →
// solver → replica count.
func goldenManifest(t testing.TB) map[string]map[string]int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest map[string]map[string]int
	if err := json.Unmarshal(data, &manifest); err != nil {
		t.Fatal(err)
	}
	return manifest
}

// normalizeSolve decodes a /v2/solve body and strips the fields that
// legitimately differ between a fleet and a single daemon: elapsed
// wall-clock and cache warmth (the fleet may have gossiped the entry
// warm before the comparison request arrives).
func normalizeSolve(t testing.TB, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("non-JSON solve body: %v: %s", err, body)
	}
	delete(m, "elapsed_ms")
	delete(m, "cached")
	return m
}

// TestRouterSolveParityGoldenCorpus is the fleet's API-freeze pin:
// for every (instance, solver) pair of the golden corpus, the fleet
// router's /v2/solve response is byte-compatible with a single
// daemon's — same solutions, hashes, bounds, engines and problem
// rendering — modulo timing and cache-warmth fields. Clients must not
// be able to tell a fleet from one replicad.
func TestRouterSolveParityGoldenCorpus(t *testing.T) {
	manifest := goldenManifest(t)
	_, fleetTS := newTestFleet(t, Config{Workers: 4, Replication: 2, CacheSize: 4096})
	single := service.New(service.Options{CacheSize: 4096})
	t.Cleanup(single.Close)
	singleTS := httptest.NewServer(single)
	t.Cleanup(singleTS.Close)

	pairs := 0
	for file, want := range manifest {
		in := corpusInstance(t, file)
		for name := range want {
			if name == "lower-bound" {
				continue
			}
			req := service.SolveRequestV2{Solver: name, Instance: in}
			fresp, fbody := postBody(t, fleetTS.URL+"/v2/solve", req)
			sresp, sbody := postBody(t, singleTS.URL+"/v2/solve", req)
			if fresp.StatusCode != sresp.StatusCode {
				t.Errorf("%s/%s: fleet status %d vs single %d", file, name, fresp.StatusCode, sresp.StatusCode)
				continue
			}
			if fresp.StatusCode != http.StatusOK {
				t.Errorf("%s/%s: golden pair did not solve: %d %s", file, name, fresp.StatusCode, fbody)
				continue
			}
			pairs++
			fm, sm := normalizeSolve(t, fbody), normalizeSolve(t, sbody)
			if !reflect.DeepEqual(fm, sm) {
				t.Errorf("%s/%s: fleet response diverged from single daemon:\nfleet:  %s\nsingle: %s",
					file, name, fbody, sbody)
			}
		}
	}
	if pairs < 50 {
		t.Fatalf("parity covered only %d (instance, solver) pairs", pairs)
	}
}

// TestRouterProblemPassthrough: worker-rendered RFC 7807 problems
// (unknown solver, bad request, malformed JSON) come through the
// router verbatim, media type included.
func TestRouterProblemPassthrough(t *testing.T) {
	_, ts := newTestFleet(t, Config{Workers: 2})
	in := corpusInstance(t, "binary_nod_1.json")

	cases := []struct {
		name   string
		req    service.SolveRequestV2
		status int
		typ    string
	}{
		{"unknown solver", service.SolveRequestV2{Solver: "nope", Instance: in},
			http.StatusNotFound, service.ProblemUnknownSolver},
		{"missing instance", service.SolveRequestV2{Solver: "single-gen"},
			http.StatusBadRequest, service.ProblemBadRequest},
	}
	for _, c := range cases {
		resp, body := postBody(t, ts.URL+"/v2/solve", c.req)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, body)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/problem+json" {
			t.Errorf("%s: content type %q", c.name, ct)
		}
		var p service.Problem
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatalf("%s: non-problem body: %s", c.name, body)
		}
		if p.Type != c.typ {
			t.Errorf("%s: problem type %q, want %q", c.name, p.Type, c.typ)
		}
	}

	// Malformed JSON has no routable key; the fallback worker renders
	// the same 400 a single daemon would.
	resp, err := http.Post(ts.URL+"/v2/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
}

// TestRouterFleetUnavailable: with every worker dead the router emits
// its own 502 problem instead of hanging or panicking.
func TestRouterFleetUnavailable(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 2, FailoverAttempts: 1})
	for _, id := range f.WorkerIDs() {
		if err := f.Kill(id); err != nil {
			t.Fatal(err)
		}
	}
	in := corpusInstance(t, "binary_nod_1.json")
	resp, body := postBody(t, ts.URL+"/v2/solve", service.SolveRequestV2{Solver: "single-gen", Instance: in})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", resp.StatusCode, body)
	}
	var p service.Problem
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p.Type != ProblemFleetUnavailable {
		t.Errorf("problem type %q, want %q", p.Type, ProblemFleetUnavailable)
	}
	if snap := f.Snapshot(); snap.Unroutable == 0 {
		t.Error("unroutable counter did not move")
	}
}

// TestRouterBatchLifecycle drives a batch through the router: accept,
// poll to done on the owning worker, and tier-2 peer hits for the
// tasks the owning worker does not own (they were warmed at their own
// owners first).
func TestRouterBatchLifecycle(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 4, Replication: 0, CacheSize: 256})
	files := []string{"binary_nod_1.json", "binary_dist_2.json", "gadget_fig4.json"}
	req := service.BatchRequestV2{Workers: 1}
	owners := make(map[string]bool)
	for i, file := range files {
		in := corpusInstance(t, file)
		// Warm each key at its own owner first.
		solveVia(t, ts.URL, "single-gen", in)
		owner, _ := f.ring.Owner(in.CanonicalHash())
		owners[owner] = true
		req.Tasks = append(req.Tasks, service.BatchTaskV2{
			ID: files[i], Solver: "single-gen", Instance: in,
		})
	}
	if len(owners) < 2 {
		t.Skip("corpus keys all landed on one worker; tier-2 batch assertion is vacuous")
	}

	resp, body := postBody(t, ts.URL+"/v2/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc service.BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Tasks != len(files) || !strings.HasPrefix(acc.StatusURL, "/v2/jobs/") {
		t.Fatalf("accept body %+v", acc)
	}

	deadline := time.Now().Add(10 * time.Second)
	var jr service.JobResponseV2
	for {
		jresp, jbody := func() (*http.Response, []byte) {
			r, err := http.Get(ts.URL + acc.StatusURL)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Body.Close()
			b, _ := io.ReadAll(r.Body)
			return r, b
		}()
		if jresp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", jresp.StatusCode, jbody)
		}
		if err := json.Unmarshal(jbody, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status == service.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", jr.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, r := range jr.Results {
		if !r.OK {
			t.Errorf("task %s failed: %s", r.ID, r.Error)
		}
		if !r.Cached {
			t.Errorf("task %s was not served from cache despite pre-warming", r.ID)
		}
	}
	// The batch was routed whole to one worker; the tasks owned by
	// other workers were pre-warmed there, so serving them took tier-2
	// peer lookups.
	if snap := f.Snapshot(); snap.Totals.Tier2Hits == 0 {
		t.Error("cross-owner batch produced no tier-2 hits")
	}
}

// TestRouterJobLostAfterKill: polling a job whose owning worker died
// yields the typed job-lost problem, not a hang or a 5xx storm.
func TestRouterJobLostAfterKill(t *testing.T) {
	f, ts := newTestFleet(t, Config{Workers: 3})
	in := corpusInstance(t, "binary_nod_1.json")
	req := service.BatchRequestV2{Workers: 1, Tasks: []service.BatchTaskV2{
		{ID: "one", Solver: "single-gen", Instance: in},
	}}
	resp, body := postBody(t, ts.URL+"/v2/batch", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var acc service.BatchAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	owner, _ := f.ring.Owner(in.CanonicalHash())
	if err := f.Kill(owner); err != nil {
		t.Fatal(err)
	}

	jresp, err := http.Get(ts.URL + acc.StatusURL)
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	jbody, _ := io.ReadAll(jresp.Body)
	if jresp.StatusCode != http.StatusNotFound {
		t.Fatalf("poll after kill: status %d: %s", jresp.StatusCode, jbody)
	}
	var p service.Problem
	if err := json.Unmarshal(jbody, &p); err != nil {
		t.Fatal(err)
	}
	if p.Type != ProblemJobLost {
		t.Errorf("problem type %q, want %q", p.Type, ProblemJobLost)
	}

	// An unknown job ID broadcasts and relays the workers' own 404.
	uresp, err := http.Get(ts.URL + "/v2/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	defer uresp.Body.Close()
	if uresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", uresp.StatusCode)
	}
}

// TestRouterSolvers: the capability catalog comes through the router
// exactly as a single daemon renders it (the registry is
// process-wide).
func TestRouterSolvers(t *testing.T) {
	_, ts := newTestFleet(t, Config{Workers: 2})
	resp, err := http.Get(ts.URL + "/v2/solvers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var docs []service.CapabilityDoc
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(solver.Catalog()) {
		t.Errorf("%d capability docs for %d registered engines", len(docs), len(solver.Catalog()))
	}
}
