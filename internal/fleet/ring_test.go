package fleet

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func ringWith(t *testing.T, vnodes int, ids ...string) *Ring {
	t.Helper()
	r := NewRing(vnodes)
	for _, id := range ids {
		if err := r.Add(id); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// TestRingDeterministicPlacement pins placement across processes:
// ring positions are SHA-256 of member#vnode labels, so these literal
// expectations hold on any machine, architecture or Go version. If
// this test breaks, cached keyspaces shift on every fleet restart.
func TestRingDeterministicPlacement(t *testing.T) {
	r := ringWith(t, 128, "w0", "w1", "w2", "w3")
	pins := []struct {
		key  string
		succ []string
	}{
		{"alpha", []string{"w2", "w0", "w1"}},
		{"bravo", []string{"w2", "w3", "w1"}},
		{"charlie", []string{"w3", "w0", "w1"}},
		{"delta", []string{"w1", "w3", "w0"}},
		{"echo", []string{"w2", "w0", "w3"}},
	}
	for _, p := range pins {
		if got := r.Successors(p.key, 3); !reflect.DeepEqual(got, p.succ) {
			t.Errorf("Successors(%q, 3) = %v, want %v", p.key, got, p.succ)
		}
		if owner, ok := r.Owner(p.key); !ok || owner != p.succ[0] {
			t.Errorf("Owner(%q) = %q, want %q", p.key, owner, p.succ[0])
		}
	}
}

// TestRingInsertionOrderIrrelevant: the same member set produces the
// same placement no matter the join order.
func TestRingInsertionOrderIrrelevant(t *testing.T) {
	a := ringWith(t, 64, "w0", "w1", "w2", "w3", "w4")
	b := ringWith(t, 64, "w3", "w0", "w4", "w2", "w1")
	for k := 0; k < 2000; k++ {
		key := fmt.Sprintf("key-%d", k)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: owner %q vs %q under different insertion orders", key, oa, ob)
		}
	}
}

// TestRingDistributionBalance: at 128 vnodes the keyspace shares stay
// within a modest bound of each other — max/min ≤ 2 and max ≤ 1.4 ×
// the fair share, for fleets up to 8 workers. (Measured: max/min is
// ~1.35 at N=4 and ~1.49 at N=8; the bounds leave slack without
// letting real imbalance through. Deterministic, so never flaky.)
func TestRingDistributionBalance(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("w%d", i)
		}
		r := ringWith(t, 128, ids...)
		counts := make(map[string]int, n)
		for k := 0; k < keys; k++ {
			owner, ok := r.Owner(fmt.Sprintf("key-%d", k))
			if !ok {
				t.Fatal("empty ring")
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		min, max := keys, 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		mean := float64(keys) / float64(n)
		if ratio := float64(max) / float64(min); ratio > 2.0 {
			t.Errorf("n=%d: max/min = %.3f > 2.0 (min=%d max=%d)", n, ratio, min, max)
		}
		if over := float64(max) / mean; over > 1.4 {
			t.Errorf("n=%d: max share %.3f× the fair share", n, over)
		}
	}
}

// TestRingMinimalMovement property-tests the consistent-hashing
// contract over random member sets and keys: a join remaps at most
// ~1/(N+1) of the keys (we allow 1.5×), a leave remaps exactly the
// leaver's keys and nothing else.
func TestRingMinimalMovement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const keys = 4000
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(7) // 2..8 members
		r := NewRing(128)
		for i := 0; i < n; i++ {
			if err := r.Add(fmt.Sprintf("m%d-%d", trial, i)); err != nil {
				t.Fatal(err)
			}
		}
		before := make(map[string]string, keys)
		for k := 0; k < keys; k++ {
			key := fmt.Sprintf("t%d-key-%d", trial, rng.Int63())
			before[key], _ = r.Owner(key)
		}

		// Join: only keys claimed by the newcomer may move.
		newcomer := fmt.Sprintf("m%d-new", trial)
		if err := r.Add(newcomer); err != nil {
			t.Fatal(err)
		}
		moved := 0
		for key, prev := range before {
			owner, _ := r.Owner(key)
			if owner == prev {
				continue
			}
			moved++
			if owner != newcomer {
				t.Fatalf("trial %d: key %q moved %q→%q, not to the newcomer", trial, key, prev, owner)
			}
		}
		if bound := 1.5 / float64(n+1); float64(moved)/float64(len(before)) > bound {
			t.Errorf("trial %d (n=%d): join remapped %.3f of the keys, bound %.3f",
				trial, n, float64(moved)/float64(len(before)), bound)
		}

		// Leave: the newcomer's keys fall to others; every other key
		// keeps its owner (so a drain only re-warms one worker's share).
		afterJoin := make(map[string]string, keys)
		for key := range before {
			afterJoin[key], _ = r.Owner(key)
		}
		r.Remove(newcomer)
		for key, prev := range afterJoin {
			owner, _ := r.Owner(key)
			if prev == newcomer {
				if owner != before[key] {
					t.Fatalf("trial %d: key %q did not fall back to its pre-join owner", trial, key)
				}
			} else if owner != prev {
				t.Fatalf("trial %d: leave moved unrelated key %q (%q→%q)", trial, key, prev, owner)
			}
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(16)
	if _, ok := r.Owner("k"); ok {
		t.Error("empty ring returned an owner")
	}
	if got := r.Successors("k", 3); got != nil {
		t.Errorf("empty ring successors %v", got)
	}
	if err := r.Add("w0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("w0"); err == nil {
		t.Error("duplicate Add did not error")
	}
	if got := r.Successors("k", 5); len(got) != 1 || got[0] != "w0" {
		t.Errorf("n beyond member count: %v", got)
	}
	r.Remove("nope") // no-op, must not panic
	r.Remove("w0")
	if r.Size() != 0 || len(r.Members()) != 0 {
		t.Errorf("ring not empty after removals: size=%d members=%v", r.Size(), r.Members())
	}
	// Successors must never repeat a member even when n exceeds the
	// vnode count of a tiny ring.
	r2 := ringWith(t, 2, "a", "b", "c")
	seen := map[string]bool{}
	for _, id := range r2.Successors("key", 3) {
		if seen[id] {
			t.Fatalf("duplicate member %q in successor list", id)
		}
		seen[id] = true
	}
}
