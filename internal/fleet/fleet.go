package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"replicatree/internal/service"
	"replicatree/internal/solver"
)

// Config tunes a Fleet.
type Config struct {
	// Workers is the member count (default 4). Workers are named
	// "w0" … "wN-1" and join the ring at construction.
	Workers int
	// VNodes is the virtual-node count per worker (default
	// DefaultVNodes).
	VNodes int
	// Replication is K, the number of ring successors a fresh cache
	// entry is gossiped to. 0 (the zero value) disables replication —
	// a crashed worker's keyspace then cold-starts. cmd/replicafleet
	// defaults its -replication flag to 2.
	Replication int
	// CacheSize bounds each worker's tier-1 LRU in entries (default
	// service.DefaultCacheSize). Aggregate fleet capacity is
	// Workers × CacheSize.
	CacheSize int
	// FailoverAttempts is how many ring successors the router tries
	// after the owner fails (default 2). Total attempts per request
	// are 1 + FailoverAttempts, capped at the member count.
	FailoverAttempts int
	// AttemptTimeout bounds one forwarded attempt's wall-clock time;
	// on expiry the router fails over to the next successor (default
	// 30s).
	AttemptTimeout time.Duration
	// JobWorkers bounds each worker's concurrently running batch jobs
	// (default 1).
	JobWorkers int
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Replication < 0 {
		c.Replication = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = service.DefaultCacheSize
	}
	if c.FailoverAttempts <= 0 {
		c.FailoverAttempts = 2
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	return c
}

// gossipMsg is one queued replication: a fresh entry travelling from
// its origin to the key's ring successors. flush is a test/drain
// barrier: a message carrying it is a no-op that signals when every
// earlier message has been delivered.
type gossipMsg struct {
	origin, solver, key string
	rep                 solver.Report
	flush               chan struct{}
}

// gossipQueueLen bounds the async replication queue. Replication is
// best-effort: under backpressure fresh entries are dropped (and
// counted), never blocking the solve path that produced them.
const gossipQueueLen = 1024

// Fleet owns the ring, the workers and the gossip pump. Create one
// with New, front it with Router, Close it on shutdown.
type Fleet struct {
	cfg  Config
	ring *Ring

	mu      sync.RWMutex
	workers map[string]*Worker
	order   []string // construction order: "w0" … "wN-1"

	gossip        chan gossipMsg
	gossipWG      sync.WaitGroup
	gossipSent    atomic.Uint64
	gossipDropped atomic.Uint64

	failovers  atomic.Uint64
	unroutable atomic.Uint64
	closeOnce  sync.Once

	routerOnce sync.Once
	router     *Router
}

// New assembles a fleet of cfg.Workers members, all joined to the
// ring, with the gossip pump running.
func New(cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:     cfg,
		ring:    NewRing(cfg.VNodes),
		workers: make(map[string]*Worker, cfg.Workers),
		gossip:  make(chan gossipMsg, gossipQueueLen),
	}
	for i := 0; i < cfg.Workers; i++ {
		id := fmt.Sprintf("w%d", i)
		cache := newTieredCache(id, cfg.CacheSize, f)
		f.workers[id] = newWorker(id, cache, service.Options{JobWorkers: cfg.JobWorkers})
		f.order = append(f.order, id)
		if err := f.ring.Add(id); err != nil {
			panic(err) // unreachable: construction names are unique
		}
	}
	f.gossipWG.Add(1)
	go f.gossipLoop()
	return f
}

// Worker returns a member by id (nil if unknown).
func (f *Fleet) Worker(id string) *Worker {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.workers[id]
}

// WorkerIDs returns the members in construction order.
func (f *Fleet) WorkerIDs() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Ring exposes the placement ring (read-mostly; Kill and Drain are
// the only mutators after construction).
func (f *Fleet) Ring() *Ring { return f.ring }

// fetchPeer implements peerNetwork: probe the key's owner and replica
// holders — the same successor list gossip targets — skipping the
// asking worker and the dead.
func (f *Fleet) fetchPeer(origin, solverName, key string) (solver.Report, bool) {
	for _, id := range f.ring.Successors(shardKey(key), f.cfg.Replication+1) {
		if id == origin {
			continue
		}
		w := f.Worker(id)
		if w == nil || !w.peekable() {
			continue
		}
		if rep, ok := w.cache.peek(solverName, key); ok {
			return rep, true
		}
	}
	return solver.Report{}, false
}

// pushReplicas implements peerNetwork: enqueue an async replication,
// dropping (and counting) under backpressure.
func (f *Fleet) pushReplicas(origin, solverName, key string, rep solver.Report) {
	if f.cfg.Replication == 0 {
		return
	}
	select {
	case f.gossip <- gossipMsg{origin: origin, solver: solverName, key: key, rep: rep}:
	default:
		f.gossipDropped.Add(1)
	}
}

// gossipLoop delivers queued replications: each entry goes to up to K
// ring successors of its key, skipping the origin and the dead.
func (f *Fleet) gossipLoop() {
	defer f.gossipWG.Done()
	for msg := range f.gossip {
		if msg.flush != nil {
			close(msg.flush)
			continue
		}
		f.deliverReplicas(msg.origin, msg.solver, msg.key, msg.rep, f.cfg.Replication, nil)
	}
}

// deliverReplicas fans one entry out to up to n live successors of
// its key, excluding origin. counted, when non-nil, receives one Add
// per delivered copy (the drain path counts its pushes there).
func (f *Fleet) deliverReplicas(origin, solverName, key string, rep solver.Report, n int, counted *atomic.Uint64) {
	delivered := 0
	// +2 head-room: the successor list includes the origin itself and,
	// during drain, possibly a dead member.
	for _, id := range f.ring.Successors(shardKey(key), n+2) {
		if delivered == n {
			break
		}
		if id == origin {
			continue
		}
		w := f.Worker(id)
		if w == nil || !w.peekable() {
			continue
		}
		w.cache.acceptReplica(solverName, key, rep)
		if counted != nil {
			counted.Add(1)
		} else {
			f.gossipSent.Add(1)
		}
		delivered++
	}
}

// SyncGossip blocks until every replication queued before the call
// has been delivered. Deterministic tests and benchmarks use it as a
// barrier; production code never needs it.
func (f *Fleet) SyncGossip() {
	done := make(chan struct{})
	f.gossip <- gossipMsg{flush: done}
	<-done
}

// Kill crash-stops a worker: it is immediately unroutable and its
// cache memory is lost to peers, but it stays on the ring — exactly
// the failure the router's successor failover and gossip replication
// exist for. In-flight requests are not interrupted.
func (f *Fleet) Kill(id string) error {
	w := f.Worker(id)
	if w == nil {
		return fmt.Errorf("unknown worker %q", id)
	}
	w.state.Store(stateDead)
	return nil
}

// DrainHotN bounds how many hottest entries a draining worker pushes
// to its successors: enough to cover any realistic working set while
// keeping drain time proportional to the cache, not the keyspace.
const DrainHotN = 1024

// Drain gracefully removes a worker: stop routing to it, wait for
// in-flight requests (bounded by ctx), hand its hottest cache entries
// to each key's next owners, then leave the ring and die.
func (f *Fleet) Drain(ctx context.Context, id string) error {
	w := f.Worker(id)
	if w == nil {
		return fmt.Errorf("unknown worker %q", id)
	}
	if !w.state.CompareAndSwap(stateAlive, stateDraining) {
		return fmt.Errorf("worker %q is not alive", id)
	}
	idle := make(chan struct{})
	go func() { w.inflight.Wait(); close(idle) }()
	select {
	case <-idle:
	case <-ctx.Done():
		return fmt.Errorf("drain %s: in-flight requests did not finish: %w", id, ctx.Err())
	}
	// While draining the worker still answers peer probes, so its keys
	// are reachable as tier 2 the whole time; the push below makes them
	// tier-1 warm at their next owners before the memory goes away.
	// Even with gossip replication disabled each entry goes to at least
	// its next owner — a graceful leave never cold-starts the keyspace.
	fanout := f.cfg.Replication
	if fanout < 1 {
		fanout = 1
	}
	for _, e := range w.cache.hottest(DrainHotN) {
		f.deliverReplicas(id, e.Solver, e.Key, e.Report, fanout, &w.cache.drainOut)
	}
	f.ring.Remove(id)
	w.state.Store(stateDead)
	w.close()
	return nil
}

// Close stops the gossip pump and every worker.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		close(f.gossip)
		f.gossipWG.Wait()
		f.mu.RLock()
		defer f.mu.RUnlock()
		for _, w := range f.workers {
			w.close()
		}
	})
}

// WorkerSnapshot is one member's block of the fleet snapshot.
type WorkerSnapshot struct {
	State    string                  `json:"state"`
	Forwards uint64                  `json:"forwards"`
	Cache    TierStats               `json:"cache"`
	Service  service.MetricsSnapshot `json:"service"`
}

// Snapshot is the fleet-wide observability document, the body of the
// router's GET /metrics.
type Snapshot struct {
	Workers     int         `json:"workers"`
	Alive       int         `json:"alive"`
	VNodes      int         `json:"vnodes"`
	Replication int         `json:"replication"`
	Failovers   uint64      `json:"failovers"`
	Unroutable  uint64      `json:"unroutable"`
	Gossip      GossipStats `json:"gossip"`
	Totals      TierStats   `json:"totals"`
	// Certs aggregates the workers' certificate counters (issued,
	// proofs served, failures) fleet-wide; per-worker numbers stay in
	// PerWorker[id].Service.Certs.
	Certs     service.CertMetrics       `json:"certs"`
	PerWorker map[string]WorkerSnapshot `json:"per_worker"`
	// Router carries the front-end's own request counters; the Router
	// fills it in when rendering /metrics.
	Router service.MetricsSnapshot `json:"router"`
}

// GossipStats counts the replication pump's traffic.
type GossipStats struct {
	Sent    uint64 `json:"sent"`
	Dropped uint64 `json:"dropped"`
}

// Snapshot collects per-worker and aggregate counters.
func (f *Fleet) Snapshot() Snapshot {
	f.mu.RLock()
	order := make([]string, len(f.order))
	copy(order, f.order)
	f.mu.RUnlock()
	snap := Snapshot{
		Workers:     len(order),
		VNodes:      f.cfg.VNodes,
		Replication: f.cfg.Replication,
		Failovers:   f.failovers.Load(),
		Unroutable:  f.unroutable.Load(),
		Gossip:      GossipStats{Sent: f.gossipSent.Load(), Dropped: f.gossipDropped.Load()},
		PerWorker:   make(map[string]WorkerSnapshot, len(order)),
	}
	for _, id := range order {
		w := f.Worker(id)
		ts := w.cache.tierStats()
		ms := w.srv.MetricsSnapshot()
		snap.PerWorker[id] = WorkerSnapshot{
			State:    w.stateLabel(),
			Forwards: w.forwards.Load(),
			Cache:    ts,
			Service:  ms,
		}
		snap.Certs.Issued += ms.Certs.Issued
		snap.Certs.ProofsServed += ms.Certs.ProofsServed
		snap.Certs.Failures += ms.Certs.Failures
		if w.routable() {
			snap.Alive++
		}
		snap.Totals.Size += ts.Size
		snap.Totals.Tier1Hits += ts.Tier1Hits
		snap.Totals.Tier1Misses += ts.Tier1Misses
		snap.Totals.Tier2Hits += ts.Tier2Hits
		snap.Totals.Tier2Misses += ts.Tier2Misses
		snap.Totals.Evictions += ts.Evictions
		snap.Totals.ReplicasAccepted += ts.ReplicasAccepted
		snap.Totals.DrainPushed += ts.DrainPushed
	}
	if total := snap.Totals.Tier1Hits + snap.Totals.Tier1Misses; total > 0 {
		snap.Totals.HitRate = float64(snap.Totals.Tier1Hits+snap.Totals.Tier2Hits) / float64(total)
	}
	return snap
}
