package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"replicatree/internal/core"
	"replicatree/internal/service"
)

// Fleet-level problem types, extending the service's RFC 7807
// vocabulary: emitted by the router itself when no worker could take
// a request. Worker-produced problems pass through untouched.
const (
	// ProblemFleetUnavailable: every routing candidate (owner and its
	// ring successors, up to the failover bound) was dead, timed out
	// or errored.
	ProblemFleetUnavailable = "urn:replicatree:problem:fleet-unavailable"
	// ProblemJobLost: the worker that accepted a batch job has since
	// died; its in-memory results are gone.
	ProblemJobLost = "urn:replicatree:problem:job-lost"
)

// maxBodyBytes mirrors the service's request-body cap: the router
// buffers bodies for replay across failover attempts, so it enforces
// the same bound before any worker sees the bytes.
const maxBodyBytes = 64 << 20

// statusClientClosed mirrors the service's 499 convention.
const statusClientClosed = 499

// Router is the fleet's front-end: it speaks the same /v2 solve
// contract as a single replicad, consistent-hash-routes each request
// to its owner worker and fails over to ring successors on worker
// death, error or attempt timeout. Responses come verbatim from the
// worker that served the request, so clients cannot tell a fleet from
// a single daemon.
//
//	POST /v2/solve   — routed by the instance's canonical hash
//	POST /v2/batch   — routed by the first task's canonical hash
//	GET  /v2/jobs/{id} — routed to the worker that accepted the job
//	GET  /v2/solvers — any live worker (the registry is process-wide)
//	GET  /healthz    — fleet liveness: member and alive counts
//	GET  /metrics    — fleet.Snapshot: per-worker tiers, failovers, gossip
type Router struct {
	fleet   *Fleet
	mux     *http.ServeMux
	metrics *service.Metrics

	jobMu    sync.Mutex
	jobOwner map[string]string
	jobFIFO  []string
}

// jobOwnerCap bounds the job→worker routing table; the oldest
// mappings fall off first (matching the workers' own retention).
const jobOwnerCap = 8192

// Router returns the fleet's front-end handler (one per fleet).
func (f *Fleet) Router() *Router {
	f.routerOnce.Do(func() {
		rt := &Router{
			fleet:    f,
			mux:      http.NewServeMux(),
			metrics:  service.NewMetrics(),
			jobOwner: make(map[string]string),
		}
		rt.mux.HandleFunc("POST /v2/solve", rt.handleSolve)
		rt.mux.HandleFunc("POST /v2/batch", rt.handleBatch)
		rt.mux.HandleFunc("GET /v2/jobs/{id}", rt.handleJob)
		rt.mux.HandleFunc("GET /v2/jobs/{id}/proof/{task}", rt.handleProof)
		rt.mux.HandleFunc("GET /v2/solvers", rt.handleSolvers)
		rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
		rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
		f.router = rt
	})
	return f.router
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// recorder buffers one worker attempt's response so the router can
// inspect the status before deciding to relay or fail over.
type recorder struct {
	header http.Header
	status int
	wrote  bool
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{header: make(http.Header)} }

func (rec *recorder) Header() http.Header { return rec.header }

func (rec *recorder) WriteHeader(code int) {
	if !rec.wrote {
		rec.status = code
		rec.wrote = true
	}
}

func (rec *recorder) Write(p []byte) (int, error) {
	if !rec.wrote {
		rec.WriteHeader(http.StatusOK)
	}
	return rec.body.Write(p)
}

// readBody buffers the request body under the size cap; tooLarge
// distinguishes the cap from a plain read failure.
func readBody(w http.ResponseWriter, r *http.Request) (body []byte, tooLarge bool, err error) {
	body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, true, fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return nil, false, err
	}
	return body, false, nil
}

// candidates returns the workers to try for key, in ring-successor
// order (the owner first), bounded by the failover budget. An empty
// key — the request carries no routable instance — falls back to the
// first routable workers in construction order, which keeps error
// rendering deterministic.
func (rt *Router) candidates(key string, n int) []*Worker {
	var ids []string
	if key != "" {
		ids = rt.fleet.ring.Successors(key, n)
	} else {
		ids = rt.fleet.WorkerIDs()
	}
	out := make([]*Worker, 0, n)
	for _, id := range ids {
		if len(out) == n {
			break
		}
		if w := rt.fleet.Worker(id); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// forward routes one buffered request to the key's owner, failing
// over to ring successors on worker death, 5xx or attempt timeout.
// It returns the worker that produced the final response and its
// recorder; a nil recorder means no worker wrote any response (the
// caller emits a fleet-level problem).
func (rt *Router) forward(r *http.Request, body []byte, key string) (*Worker, *recorder) {
	attempts := 1 + rt.fleet.cfg.FailoverAttempts
	var lastWorker *Worker
	var last *recorder
	for i, wk := range rt.candidates(key, attempts) {
		if i > 0 {
			rt.fleet.failovers.Add(1)
		}
		if !wk.routable() {
			continue
		}
		actx, cancel := context.WithTimeout(r.Context(), rt.fleet.cfg.AttemptTimeout)
		req := r.Clone(actx)
		if body != nil {
			req.Body = io.NopCloser(bytes.NewReader(body))
			req.ContentLength = int64(len(body))
		}
		rec := newRecorder()
		served := wk.serve(rec, req)
		cancel()
		if !served {
			continue // died between the routable check and dispatch
		}
		lastWorker, last = wk, rec
		if r.Context().Err() != nil {
			// The *client* is gone: relay whatever the worker rendered
			// (usually its 499) instead of burning successors.
			return wk, rec
		}
		if rec.status >= 500 || rec.status == statusClientClosed {
			// Worker error or attempt timeout (the worker saw our
			// per-attempt deadline as a cancelled client) → successor.
			continue
		}
		return wk, rec
	}
	return lastWorker, last
}

// relay copies a worker's buffered response to the client.
func (rt *Router) relay(w http.ResponseWriter, endpoint string, rec *recorder) {
	rt.metrics.Request(endpoint, rec.status)
	for k, vs := range rec.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.status)
	_, _ = w.Write(rec.body.Bytes())
}

// problem emits a router-level RFC 7807 document.
func (rt *Router) problem(w http.ResponseWriter, endpoint, typ, title string, status int, err error) {
	p := service.Problem{Type: typ, Title: title, Status: status}
	if err != nil {
		p.Detail = err.Error()
	}
	rt.metrics.Request(endpoint, status)
	w.Header().Set("Content-Type", "application/problem+json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(p)
}

// dispatch is the shared solve/batch path: buffer the body, extract
// the routing key, forward with failover, surface total failure as a
// fleet problem. It returns the serving worker and its response for
// endpoint-specific bookkeeping (nil on failure).
func (rt *Router) dispatch(w http.ResponseWriter, r *http.Request, endpoint string, key func([]byte) string) (*Worker, *recorder) {
	body, tooLarge, err := readBody(w, r)
	if err != nil {
		status, typ := http.StatusBadRequest, service.ProblemBadRequest
		if tooLarge {
			status, typ = http.StatusRequestEntityTooLarge, service.ProblemTooLarge
		}
		rt.problem(w, endpoint, typ, "invalid request body", status, err)
		return nil, nil
	}
	wk, rec := rt.forward(r, body, key(body))
	if rec == nil {
		rt.problem(w, endpoint, ProblemFleetUnavailable, "no worker available",
			http.StatusBadGateway, fmt.Errorf("all %d routing candidates failed", 1+rt.fleet.cfg.FailoverAttempts))
		rt.fleet.unroutable.Add(1)
		return nil, nil
	}
	rt.relay(w, endpoint, rec)
	return wk, rec
}

// solveKey extracts the canonical instance hash from a solve body
// ("" when absent or malformed — the worker then renders the error).
func solveKey(body []byte) string {
	var probe struct {
		Instance *core.Instance `json:"instance"`
	}
	if json.Unmarshal(body, &probe) != nil || probe.Instance == nil {
		return ""
	}
	return probe.Instance.CanonicalHash()
}

// batchKey routes a whole batch by its first task's instance: one
// job, one worker, one poll target. Tasks owned by other workers are
// served through that worker's tier-2 peer lookup.
func batchKey(body []byte) string {
	var probe struct {
		Tasks []struct {
			Instance *core.Instance `json:"instance"`
		} `json:"tasks"`
	}
	if json.Unmarshal(body, &probe) != nil {
		return ""
	}
	for _, t := range probe.Tasks {
		if t.Instance != nil {
			return t.Instance.CanonicalHash()
		}
	}
	return ""
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	rt.dispatch(w, r, "/v2/solve", solveKey)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	wk, rec := rt.dispatch(w, r, "/v2/batch", batchKey)
	if wk == nil || rec == nil || rec.status != http.StatusAccepted {
		return
	}
	var acc service.BatchAccepted
	if json.Unmarshal(rec.body.Bytes(), &acc) != nil || acc.JobID == "" {
		return
	}
	rt.jobMu.Lock()
	if _, dup := rt.jobOwner[acc.JobID]; !dup {
		rt.jobOwner[acc.JobID] = wk.ID()
		rt.jobFIFO = append(rt.jobFIFO, acc.JobID)
		for len(rt.jobFIFO) > jobOwnerCap {
			delete(rt.jobOwner, rt.jobFIFO[0])
			rt.jobFIFO = rt.jobFIFO[1:]
		}
	}
	rt.jobMu.Unlock()
}

func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	rt.serveJobScoped(w, r, "/v2/jobs")
}

// handleProof relays GET /v2/jobs/{id}/proof/{task} — a certificate
// plus Merkle inclusion proof — through the same owner-routing as job
// polls: certificates and their Merkle tree live in the owning
// worker's job table, so the proof must come from the worker that
// settled the job.
func (rt *Router) handleProof(w http.ResponseWriter, r *http.Request) {
	rt.serveJobScoped(w, r, "/v2/jobs/proof")
}

// serveJobScoped routes a job-scoped GET (poll or proof) to the
// worker that accepted the job, broadcasting when the ownership table
// has no entry (router restart, aged-out mapping).
func (rt *Router) serveJobScoped(w http.ResponseWriter, r *http.Request, endpoint string) {
	id := r.PathValue("id")
	rt.jobMu.Lock()
	owner, known := rt.jobOwner[id]
	rt.jobMu.Unlock()
	if known {
		wk := rt.fleet.Worker(owner)
		if wk == nil || !wk.peekable() {
			rt.problem(w, endpoint, ProblemJobLost, "job lost with worker",
				http.StatusNotFound, fmt.Errorf("job %q was owned by dead worker %q", id, owner))
			return
		}
		rec := newRecorder()
		if wk.serve(rec, r) {
			rt.relay(w, endpoint, rec)
			return
		}
		rt.problem(w, endpoint, ProblemJobLost, "job lost with worker",
			http.StatusNotFound, fmt.Errorf("job %q was owned by dead worker %q", id, owner))
		return
	}
	// Unknown mapping (router restarted, or the table aged it out):
	// broadcast — job IDs are unique across workers.
	var last *recorder
	for _, wid := range rt.fleet.WorkerIDs() {
		wk := rt.fleet.Worker(wid)
		if wk == nil || !wk.peekable() {
			continue
		}
		rec := newRecorder()
		if !wk.serve(rec, r) {
			continue
		}
		last = rec
		if rec.status != http.StatusNotFound {
			// Any non-404 answer comes from a worker that knows the
			// job — including a proof endpoint's 409 (job not settled /
			// certificates disabled), which must reach the client
			// instead of being masked by another worker's 404.
			break
		}
	}
	if last == nil {
		rt.problem(w, endpoint, ProblemFleetUnavailable, "no worker available",
			http.StatusBadGateway, errors.New("no live worker to answer the poll"))
		return
	}
	rt.relay(w, endpoint, last)
}

func (rt *Router) handleSolvers(w http.ResponseWriter, r *http.Request) {
	const endpoint = "/v2/solvers"
	_, rec := rt.forward(r, nil, "")
	if rec == nil {
		rt.problem(w, endpoint, ProblemFleetUnavailable, "no worker available",
			http.StatusBadGateway, errors.New("no live worker"))
		return
	}
	rt.relay(w, endpoint, rec)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := rt.fleet.Snapshot()
	rt.writeJSON(w, "/healthz", http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": snap.Workers,
		"alive":   snap.Alive,
		"ring":    rt.fleet.ring.Members(),
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := rt.fleet.Snapshot()
	snap.Router = rt.metrics.Snapshot()
	rt.writeJSON(w, "/metrics", http.StatusOK, snap)
}

func (rt *Router) writeJSON(w http.ResponseWriter, endpoint string, status int, v any) {
	rt.metrics.Request(endpoint, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
