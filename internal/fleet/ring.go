// Package fleet turns N in-process replicad-style workers into one
// sharded placement service: a consistent-hash ring maps each
// instance's canonical hash to an owner worker, a router front-end
// forwards the /v2 solve contract to that owner (failing over to ring
// successors on worker death or timeout), and a two-tier result cache
// — local LRU first, then an owner-peer lookup — backed by async
// gossip replication keeps a worker's keyspace warm across failures.
// See DESIGN.md, "Fleet topology".
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the virtual-node count per worker. 128 points per
// worker keeps the max/min keyspace share within ~1.5× at small fleet
// sizes while join/leave still only moves ~1/N of the keys.
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Placement is
// deterministic across processes: points are SHA-256 positions of
// "member#vnode" labels, so two rings built from the same member set
// (in any insertion order) agree on every key's owner. Safe for
// concurrent use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by (hash, id)
	members map[string]struct{}
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash uint64
	id   string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (≤ 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// ringHash positions a label on the ring: the first 8 bytes of its
// SHA-256, which is stable across processes and architectures (unlike
// maphash or FNV over untrusted input mixes, there is no per-process
// seed).
func ringHash(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add joins a member, claiming its vnode positions. Only the keys
// that land between a new point and its predecessor move — about
// 1/(N+1) of the keyspace.
func (r *Ring) Add(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return fmt.Errorf("ring member %q already present", id)
	}
	r.members[id] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hash: ringHash(id + "#" + fmt.Sprint(i)), id: id})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Full-hash collisions are vanishingly rare; break them by id so
		// placement stays deterministic regardless of insertion order.
		return r.points[a].id < r.points[b].id
	})
	return nil
}

// Remove leaves a member, releasing its points; the keys it owned
// fall to the next points clockwise (its ring successors).
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the member owning key: the first point clockwise from
// the key's ring position. ok is false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	ids := r.Successors(key, 1)
	if len(ids) == 0 {
		return "", false
	}
	return ids[0], true
}

// Successors returns up to n distinct members in ring order starting
// at key's owner — the owner first, then the members next clockwise.
// This single order drives routing, failover, replica placement and
// peer lookup, so all four always agree on where a key's entries live.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	ids := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(ids) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.id]; dup {
			continue
		}
		seen[p.id] = struct{}{}
		ids = append(ids, p.id)
	}
	return ids
}

// Members returns the current member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Size returns the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}
