package solver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/tree"
)

// nodInstance / withDistanceInstance live in solver_test helpers; this
// file adds the v2 contract coverage: capabilities, sentinel errors,
// request constraints and the report block.

// TestCapabilitiesPinned pins every built-in engine's declared
// capability document — in particular that the v2 migration kept each
// policy identical to what the v1 optional interfaces declared
// (the PolicyOf fix: the default is now an explicit field, never a
// silent fallback).
func TestCapabilitiesPinned(t *testing.T) {
	want := map[string]Capabilities{
		SingleGen:      {Policy: core.Single, SupportsDMax: true, Cost: CostPolynomial},
		SingleNoD:      {Policy: core.Single, Cost: CostPolynomial},
		SinglePassUp:   {Policy: core.Single, Cost: CostPolynomial},
		SingleBest:     {Policy: core.Single, Cost: CostPolynomial},
		SinglePushUp:   {Policy: core.Single, Cost: CostPolynomial},
		MultipleBin:    {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
		MultipleLazy:   {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
		MultipleBest:   {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
		MultipleGreedy: {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
		MultipleReplan: {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial, Delta: true},
		ExactSingle:    {Policy: core.Single, Exact: true, SupportsDMax: true, Cost: CostExponential},
		ExactMultiple:  {Policy: core.Multiple, Exact: true, SupportsDMax: true, Cost: CostExponential},
		LPRound:        {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
		HeteroGreedy:   {Policy: core.Multiple, SupportsDMax: true, Hetero: true, Cost: CostPolynomial},
		HeteroExact:    {Policy: core.Multiple, Exact: true, SupportsDMax: true, Hetero: true, Cost: CostExponential},
		Auto:           {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
		// Registered by internal/decomp (linked into this test binary
		// through the external route_decomp_test.go file).
		Decomp: {Policy: core.Multiple, SupportsDMax: true, Cost: CostPolynomial},
	}
	for name, w := range want {
		eng, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := eng.Capabilities()
		if c.Name != name {
			t.Errorf("%s: capabilities name %q", name, c.Name)
		}
		if c.Policy != w.Policy || c.Exact != w.Exact || c.SupportsDMax != w.SupportsDMax ||
			c.Hetero != w.Hetero || c.Cost != w.Cost || c.Delta != w.Delta {
			t.Errorf("%s: capabilities %+v, want policy=%v exact=%v dmax=%v hetero=%v cost=%v delta=%v",
				name, c, w.Policy, w.Exact, w.SupportsDMax, w.Hetero, w.Cost, w.Delta)
		}
		if c.Description == "" {
			t.Errorf("%s: empty description", name)
		}
		// The v1 shims must agree with the capability document, so the
		// migration changed no consumer-visible metadata.
		s := MustGet(name)
		if PolicyOf(s) != c.Policy {
			t.Errorf("%s: PolicyOf shim %v disagrees with capabilities %v", name, PolicyOf(s), c.Policy)
		}
		if IsExact(s) != c.Exact {
			t.Errorf("%s: IsExact shim %v disagrees with capabilities %v", name, IsExact(s), c.Exact)
		}
	}
	// The pin table must cover the whole built-in registry:
	// registering a new engine without pinning it here is an error
	// (sibling tests register throwaway "test-…" solvers, which are
	// exempt).
	for _, name := range List() {
		if _, ok := want[name]; !ok && !strings.HasPrefix(name, "test-") {
			t.Errorf("engine %q registered but not pinned here", name)
		}
	}
}

func TestLookupUnknownSolverSentinel(t *testing.T) {
	_, err := Lookup("no-such-solver")
	if !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("Lookup error %v does not wrap ErrUnknownSolver", err)
	}
	if !strings.Contains(err.Error(), SingleGen) {
		t.Errorf("error should list the known set: %v", err)
	}
	// The deprecated Get shim carries the same sentinel and text.
	_, gerr := Get("no-such-solver")
	if !errors.Is(gerr, ErrUnknownSolver) || gerr.Error() != err.Error() {
		t.Errorf("Get error diverged from Lookup: %v vs %v", gerr, err)
	}
}

func TestNoDGateSentinelAndLegacyText(t *testing.T) {
	in := withDistanceInstance(t)
	_, err := MustLookup(SingleNoD).Solve(context.Background(), Request{Instance: in})
	if !errors.Is(err, ErrPolicyUnsupported) {
		t.Fatalf("NoD gate error %v does not wrap ErrPolicyUnsupported", err)
	}
	// The rendered message is the pre-v2 text, so /v1 error bodies are
	// byte-identical.
	want := "solver single-nod: requires a NoD instance (dmax=" // …d is finite)
	if !strings.HasPrefix(err.Error(), want) {
		t.Errorf("legacy gate text changed: %q", err.Error())
	}
}

func TestPolicyConstraintSentinel(t *testing.T) {
	in := nodInstance(t)
	_, err := MustLookup(MultipleBin).Solve(context.Background(), Request{Instance: in, Policy: WantSingle})
	if !errors.Is(err, ErrPolicyUnsupported) {
		t.Fatalf("policy constraint error %v does not wrap ErrPolicyUnsupported", err)
	}
	// WantMultiple admits Single engines: their solutions never split
	// a client, so they are Multiple-feasible by construction.
	rep, err := MustLookup(SingleGen).Solve(context.Background(), Request{Instance: in, Policy: WantMultiple})
	if err != nil {
		t.Fatalf("WantMultiple rejected a Single engine: %v", err)
	}
	if err := core.Verify(in, core.Multiple, rep.Solution); err != nil {
		t.Errorf("Single solution failed Multiple verification: %v", err)
	}
}

// infeasibleInstance builds a one-client instance whose requests
// exceed every capacity reachable within dmax: infeasible under both
// policies.
func infeasibleInstance(t *testing.T) *core.Instance {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	b.Client(root, 5, 10, "c") // distance 5 > dmax 1, r=10 > W
	return &core.Instance{Tree: b.MustBuild(), W: 3, DMax: 1}
}

func TestInfeasibleSentinel(t *testing.T) {
	in := infeasibleInstance(t)
	for _, name := range []string{SingleGen, MultipleGreedy, ExactMultiple, Auto} {
		_, err := MustLookup(name).Solve(context.Background(), Request{Instance: in})
		if err == nil {
			t.Fatalf("%s solved an infeasible instance", name)
		}
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s error %v does not wrap ErrInfeasible", name, err)
		}
	}
}

func TestRequestBudgetStarvesExact(t *testing.T) {
	in := nodInstance(t)
	_, err := MustLookup(ExactMultiple).Solve(context.Background(), Request{Instance: in, Budget: 1})
	if !errors.Is(err, exact.ErrBudget) {
		t.Fatalf("starvation budget: err = %v, want exact.ErrBudget", err)
	}
	// A budget failure on a feasible instance must NOT read as
	// infeasibility.
	if errors.Is(err, ErrInfeasible) {
		t.Error("budget exhaustion mis-tagged as ErrInfeasible")
	}
	// Request.Budget wins over nothing — but the deprecated context
	// idiom still reaches engines when the request leaves it unset.
	_, err = MustLookup(ExactMultiple).Solve(WithBudget(context.Background(), 1), Request{Instance: in})
	if !errors.Is(err, exact.ErrBudget) {
		t.Fatalf("context budget fallback lost: %v", err)
	}
}

func TestReportBlock(t *testing.T) {
	in := nodInstance(t)
	rep, err := MustLookup(ExactSingle).Solve(context.Background(), Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != ExactSingle || rep.Policy != core.Single {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if !rep.Proved {
		t.Error("exact engine did not mark its solution proved")
	}
	if rep.Work <= 0 {
		t.Errorf("exact engine reported no work: %d", rep.Work)
	}
	if rep.LowerBound != core.LowerBound(in) {
		t.Errorf("lower bound %d, core says %d", rep.LowerBound, core.LowerBound(in))
	}
	wantGap := float64(rep.Solution.NumReplicas()-rep.LowerBound) / float64(rep.LowerBound)
	if rep.LowerBound > 0 && rep.Gap != wantGap {
		t.Errorf("gap %v, want %v", rep.Gap, wantGap)
	}
	if rep.Elapsed <= 0 {
		t.Error("report missing elapsed time")
	}

	// The no-lower-bound hint suppresses the bound block only.
	rep2, err := MustLookup(SingleGen).Solve(context.Background(),
		Request{Instance: in, Hints: map[string]string{"no-lower-bound": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LowerBound != 0 || rep2.Gap != 0 {
		t.Errorf("hint did not suppress the bound block: %+v", rep2)
	}
	if rep2.Solution == nil {
		t.Error("hint suppressed the solution too")
	}
}

func TestRequestDeadline(t *testing.T) {
	in := nodInstance(t)
	_, err := MustLookup(SingleGen).Solve(context.Background(),
		Request{Instance: in, Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want DeadlineExceeded", err)
	}
}

// TestShimRoundTrip pins the adapter identities: Get's Solver shim
// unwraps back to the registered engine, and repeated Gets return the
// same shim (stable identity for consumers that compare).
func TestShimRoundTrip(t *testing.T) {
	eng := MustLookup(MultipleBest)
	s1, s2 := MustGet(MultipleBest), MustGet(MultipleBest)
	if s1 != s2 {
		t.Error("Get returned distinct shims for one name")
	}
	if AsEngine(s1) != eng {
		t.Error("AsEngine did not unwrap the shim to the registered engine")
	}
	// A foreign Solver adapts with explicit defaulted capabilities.
	foreign := AsEngine(bareSolver{})
	c := foreign.Capabilities()
	if c.Policy != core.Single || c.Exact || c.Cost != CostUnknown {
		t.Errorf("foreign solver capabilities %+v, want explicit Single/heuristic/unknown", c)
	}
}

// TestDeltaEngineContract pins the delta seam: multiple-replan adapts
// Request.Previous (reporting churn), honours Request.Exclude, and
// every non-delta engine rejects Exclude with a typed error instead of
// silently placing on a failed server.
func TestDeltaEngineContract(t *testing.T) {
	ctx := context.Background()
	in := nodInstance(t)
	eng := MustLookup(MultipleReplan)
	if !eng.Capabilities().Delta {
		t.Fatal("multiple-replan does not declare Delta")
	}

	// From nothing: a plain feasible build-up, churn all-additions.
	rep, err := eng.Solve(ctx, Request{Instance: in})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(in, core.Multiple, rep.Solution); err != nil {
		t.Fatalf("replan-from-empty infeasible: %v", err)
	}
	if rep.Churn == nil || len(rep.Churn.Added) != rep.Solution.NumReplicas() || len(rep.Churn.Removed) != 0 {
		t.Fatalf("replan-from-empty churn %+v, want all-added", rep.Churn)
	}

	// From itself: zero placement churn.
	rep2, err := eng.Solve(ctx, Request{Instance: in, Previous: rep.Solution})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Churn == nil || len(rep2.Churn.Added) != 0 || len(rep2.Churn.Removed) != 0 {
		t.Errorf("replan-from-self churn %+v, want none", rep2.Churn)
	}

	// Excluding a current replica forces it out of the new placement.
	down := rep.Solution.Replicas[0]
	rep3, err := eng.Solve(ctx, Request{Instance: in, Previous: rep.Solution, Exclude: []tree.NodeID{down}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep3.Solution.Replicas {
		if r == down {
			t.Fatalf("excluded server %d still hosts a replica", down)
		}
	}
	if err := core.Verify(in, core.Multiple, rep3.Solution); err != nil {
		t.Fatalf("replan-with-exclusion infeasible: %v", err)
	}

	// Non-delta engines (the portfolio included) must reject Exclude,
	// typed.
	for _, name := range []string{MultipleBest, SingleGen, ExactMultiple, Auto} {
		_, err := MustLookup(name).Solve(ctx, Request{Instance: in, Exclude: []tree.NodeID{down}})
		if !errors.Is(err, ErrPolicyUnsupported) {
			t.Errorf("%s accepted Exclude: err = %v", name, err)
		}
	}
}

// TestBatchReportsFlow pins that Batch fills both the v2 Report and
// the mirrored v1 Solution on every result.
func TestBatchReportsFlow(t *testing.T) {
	in := nodInstance(t)
	tasks := []Task{
		{ID: "v2", Engine: MustLookup(MultipleBest), Request: Request{Instance: in}},
		{ID: "v1", Solver: MustGet(MultipleBest), Instance: in},
	}
	results, st := Batch(context.Background(), tasks, Options{})
	if st.Solved != 2 {
		t.Fatalf("stats %+v", st)
	}
	for _, r := range results {
		if r.Report.Solution == nil || r.Solution != r.Report.Solution {
			t.Errorf("task %s: solution mirror broken: %+v", r.Task.ID, r)
		}
		if r.Report.Engine != MultipleBest {
			t.Errorf("task %s: report engine %q", r.Task.ID, r.Report.Engine)
		}
	}
	if a, b := results[0].Report.Solution.NumReplicas(), results[1].Report.Solution.NumReplicas(); a != b {
		t.Errorf("v1 and v2 task forms disagree: %d vs %d", a, b)
	}
}
