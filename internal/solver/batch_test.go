package solver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"replicatree/internal/core"
	"replicatree/internal/gen"
	"replicatree/internal/tree"
)

// nodInstance builds a small NoD instance every solver can handle.
func nodInstance(t testing.TB) *core.Instance {
	t.Helper()
	b := tree.NewBuilder()
	root := b.Root("root")
	a := b.Internal(root, 1, "a")
	b.Client(a, 1, 5, "c1")
	b.Client(a, 1, 7, "c2")
	b.Client(root, 1, 2, "c3")
	return &core.Instance{Tree: b.MustBuild(), W: 12, DMax: core.NoDistance}
}

// withDistanceInstance builds the same tree under a finite dmax.
func withDistanceInstance(t testing.TB) *core.Instance {
	t.Helper()
	in := nodInstance(t)
	return &core.Instance{Tree: in.Tree, W: in.W, DMax: 2}
}

func TestBatchSolvesAllInOrder(t *testing.T) {
	instances := make([]*core.Instance, 6)
	rng := rand.New(rand.NewSource(1))
	for i := range instances {
		instances[i] = gen.RandomInstance(rng, gen.TreeConfig{
			Internals: 1 + rng.Intn(3), MaxArity: 2, MaxDist: 3, MaxReq: 9,
		}, false)
	}
	var tasks []Task
	for i, in := range instances {
		for _, name := range []string{SingleGen, MultipleBest} {
			tasks = append(tasks, Task{ID: fmt.Sprintf("%d/%s", i, name), Solver: MustGet(name), Instance: in})
		}
	}
	results, st := Batch(context.Background(), tasks, Options{Workers: 4})
	if len(results) != len(tasks) {
		t.Fatalf("got %d results for %d tasks", len(results), len(tasks))
	}
	for i, r := range results {
		if r.Task.ID != tasks[i].ID {
			t.Fatalf("result %d out of order: %s != %s", i, r.Task.ID, tasks[i].ID)
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Task.ID, r.Err)
		}
		if r.Solution == nil || r.Solution.NumReplicas() == 0 {
			t.Errorf("%s: empty solution", r.Task.ID)
		}
		if err := core.Verify(r.Task.Instance, PolicyOf(r.Task.Solver), r.Solution); err != nil {
			t.Errorf("%s: infeasible: %v", r.Task.ID, err)
		}
	}
	if st.Tasks != len(tasks) || st.Solved != len(tasks) || st.Failed != 0 || st.Skipped != 0 {
		t.Errorf("stats mismatch: %+v", st)
	}
	if st.Replicas == 0 || st.Work <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if s := st.String(); !strings.Contains(s, "solved") {
		t.Errorf("stats string malformed: %s", s)
	}
	if tab := st.Table(); tab.NumRows() != 1 {
		t.Errorf("stats table malformed")
	}
}

func TestBatchIdenticalAcrossWorkerCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var tasks []Task
	for i := 0; i < 10; i++ {
		in := gen.RandomInstance(rng, gen.TreeConfig{
			Internals: 1 + rng.Intn(4), MaxArity: 2, MaxDist: 3, MaxReq: 9,
		}, true)
		tasks = append(tasks, Task{Solver: MustGet(MultipleBest), Instance: in})
	}
	seq, _ := Batch(context.Background(), tasks, Options{Workers: 1})
	par, _ := Batch(context.Background(), tasks, Options{Workers: 8})
	for i := range seq {
		a, b := seq[i], par[i]
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("task %d: error divergence: %v vs %v", i, a.Err, b.Err)
		}
		if a.Err == nil && a.Solution.NumReplicas() != b.Solution.NumReplicas() {
			t.Fatalf("task %d: |R| diverged across worker counts: %d vs %d",
				i, a.Solution.NumReplicas(), b.Solution.NumReplicas())
		}
	}
}

// blockingSolver blocks until its context is cancelled.
type blockingSolver struct{ started chan struct{} }

func (b *blockingSolver) Name() string { return "test-blocking" }
func (b *blockingSolver) Solve(ctx context.Context, in *core.Instance) (*core.Solution, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestBatchCancellationMidRun(t *testing.T) {
	in := nodInstance(t)
	blocker := &blockingSolver{started: make(chan struct{}, 1)}
	tasks := make([]Task, 8)
	for i := range tasks {
		tasks[i] = Task{Solver: blocker, Instance: in}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-blocker.started // first task is in flight
		cancel()
	}()
	results, st := Batch(ctx, tasks, Options{Workers: 1})
	if st.Skipped == 0 {
		t.Fatalf("expected skipped tasks after cancellation: %+v", st)
	}
	if st.Solved != 0 {
		t.Fatalf("blocking solver cannot solve: %+v", st)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Fatal("every task should carry an error after cancellation")
		}
		if r.Skipped && !errors.Is(r.Err, context.Canceled) {
			t.Errorf("skipped task error = %v, want context.Canceled", r.Err)
		}
	}
}

func TestBatchPerTaskTimeout(t *testing.T) {
	in := nodInstance(t)
	blocker := &blockingSolver{started: make(chan struct{}, 1)}
	tasks := []Task{
		{Solver: blocker, Instance: in},
		{Solver: MustGet(SingleGen), Instance: in},
	}
	results, st := Batch(context.Background(), tasks, Options{Workers: 1, Timeout: 20 * time.Millisecond})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Errorf("timed-out task error = %v, want deadline exceeded", results[0].Err)
	}
	if results[1].Err != nil {
		t.Errorf("fast task after a timeout should still run: %v", results[1].Err)
	}
	if st.Failed != 1 || st.Solved != 1 {
		t.Errorf("stats mismatch: %+v", st)
	}
}

func TestBatchMalformedTasks(t *testing.T) {
	in := nodInstance(t)
	results, st := Batch(context.Background(), []Task{
		{Solver: nil, Instance: in},
		{Solver: MustGet(SingleGen), Instance: nil},
		{Solver: MustGet(SingleGen), Instance: in},
	}, Options{})
	if results[0].Err == nil || results[1].Err == nil {
		t.Error("nil solver / nil instance should fail their tasks")
	}
	if results[2].Err != nil {
		t.Errorf("well-formed task poisoned by malformed neighbours: %v", results[2].Err)
	}
	if st.Failed != 2 || st.Solved != 1 {
		t.Errorf("stats mismatch: %+v", st)
	}
}

func TestBatchEmpty(t *testing.T) {
	results, st := Batch(context.Background(), nil, Options{})
	if len(results) != 0 || st.Tasks != 0 {
		t.Errorf("empty batch mismatch: %d results, %+v", len(results), st)
	}
}
