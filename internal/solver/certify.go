package solver

import (
	"fmt"

	"replicatree/internal/cert"
	"replicatree/internal/core"
)

// Certify builds the verifiable placement certificate for a solve
// outcome: the canonical instance commitment, the report's solution as
// the feasibility witness, the subtree-sum lower-bound attestation and
// — when the report proves optimality — an optimality attestation.
//
// The mapping lives here, not in internal/cert, on purpose: cert must
// stay solver-free so the offline checker (cmd/replicaverify) links no
// solving code. solver → cert is the permitted import direction.
//
// Certification is off the hot path by design: it hashes the instance
// and copies nothing lazily, so callers invoke it at response/settle
// time, never inside Engine.Solve. A report produced under the
// "no-lower-bound" hint carries bound 0; Certify recomputes the bound
// from the instance in that case so the issued certificate always
// survives its own verification.
func Certify(in *core.Instance, rep *Report) (*cert.Certificate, error) {
	if in == nil || rep == nil || rep.Solution == nil {
		return nil, fmt.Errorf("solver: cannot certify a nil instance or an empty report")
	}
	bound := rep.LowerBound
	gap := rep.Gap
	if bound == 0 {
		bound = core.LowerBound(in)
		gap = 0
		if bound > 0 {
			gap = float64(rep.Solution.NumReplicas()-bound) / float64(bound)
		}
	}
	c := &cert.Certificate{
		Version:      cert.Version,
		InstanceHash: in.CanonicalHash(),
		Engine:       rep.Engine,
		Policy:       rep.Policy.String(),
		Replicas:     rep.Solution.NumReplicas(),
		Work:         rep.Work,
		Bound:        cert.BoundAttestation{Kind: cert.BoundKindSubtreeSum, Value: bound},
		Gap:          gap,
		Witness:      rep.Solution,
	}
	if rep.Proved {
		c.Optimality = &cert.OptimalityAttestation{Engine: rep.Engine, Work: rep.Work}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("solver: built an invalid certificate (bug): %w", err)
	}
	return c, nil
}
