package solver

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"replicatree/internal/core"
)

func TestBuiltinsRegistered(t *testing.T) {
	names := List()
	if len(names) < 8 {
		t.Fatalf("List() = %d solvers, want >= 8: %v", len(names), names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("List() not sorted: %v", names)
	}
	for _, want := range []string{
		SingleGen, SingleNoD, SinglePassUp, SingleBest, SinglePushUp,
		MultipleBin, MultipleLazy, MultipleBest, MultipleGreedy,
		ExactSingle, ExactMultiple, LPRound, HeteroGreedy, HeteroExact,
	} {
		if _, err := Get(want); err != nil {
			t.Errorf("built-in %q missing: %v", want, err)
		}
	}
	if len(Solvers()) != len(names) {
		t.Errorf("Solvers() returned %d entries for %d names", len(Solvers()), len(names))
	}
}

func TestRegisterRejectsCollisionsAndNil(t *testing.T) {
	if err := Register(nil); err == nil {
		t.Error("Register(nil) should fail")
	}
	if err := Register(Wrap("", core.Single, nil)); err == nil {
		t.Error("Register with empty name should fail")
	}
	if err := Register(Wrap(SingleGen, core.Single, nil)); err == nil {
		t.Error("duplicate registration should fail")
	} else if !strings.Contains(err.Error(), SingleGen) {
		t.Errorf("duplicate error should name the solver: %v", err)
	}
	// A fresh name registers and is visible to Get and List. The
	// registry is process-global with no Unregister, so the name must
	// be unique per invocation (go test -count=N reuses the process).
	name := fmt.Sprintf("test-tmp-solver-%d", atomic.AddInt32(&tmpSolverSeq, 1))
	tmp := Wrap(name, core.Single, func(in *core.Instance) (*core.Solution, error) {
		return core.Trivial(in), nil
	})
	if err := Register(tmp); err != nil {
		t.Fatalf("fresh registration failed: %v", err)
	}
	if err := Register(tmp); err == nil {
		t.Error("re-registration should fail")
	}
	if _, err := Get(name); err != nil {
		t.Errorf("registered solver not gettable: %v", err)
	}
}

var tmpSolverSeq int32

func TestGetUnknownListsKnown(t *testing.T) {
	_, err := Get("no-such-solver")
	if err == nil {
		t.Fatal("unknown solver should fail")
	}
	if !strings.Contains(err.Error(), SingleGen) || !strings.Contains(err.Error(), "no-such-solver") {
		t.Errorf("error should name the typo and the known set: %v", err)
	}
}

func TestPolicyAndExactMetadata(t *testing.T) {
	cases := []struct {
		name  string
		pol   core.Policy
		exact bool
	}{
		{SingleGen, core.Single, false},
		{SingleNoD, core.Single, false},
		{ExactSingle, core.Single, true},
		{MultipleBest, core.Multiple, false},
		{ExactMultiple, core.Multiple, true},
		{LPRound, core.Multiple, false},
		{HeteroGreedy, core.Multiple, false},
		{HeteroExact, core.Multiple, true},
	}
	for _, c := range cases {
		s := MustGet(c.name)
		if got := PolicyOf(s); got != c.pol {
			t.Errorf("%s: policy = %v, want %v", c.name, got, c.pol)
		}
		if got := IsExact(s); got != c.exact {
			t.Errorf("%s: exact = %v, want %v", c.name, got, c.exact)
		}
	}
	// A solver without metadata defaults to Single / not exact.
	bare := bareSolver{}
	if PolicyOf(bare) != core.Single || IsExact(bare) {
		t.Error("metadata defaults wrong for bare solver")
	}
}

type bareSolver struct{}

func (bareSolver) Name() string { return "bare" }
func (bareSolver) Solve(context.Context, *core.Instance) (*core.Solution, error) {
	return nil, nil
}

func TestNoDGating(t *testing.T) {
	in := withDistanceInstance(t)
	for _, name := range []string{SingleNoD, SinglePassUp, SingleBest, SinglePushUp} {
		if _, err := MustGet(name).Solve(context.Background(), in); err == nil {
			t.Errorf("%s on a distance-constrained instance should fail", name)
		}
	}
}

func TestSolveHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MustGet(SingleGen).Solve(ctx, nodInstance(t)); err == nil {
		t.Error("cancelled context should fail before solving")
	}
}

func TestBudgetContext(t *testing.T) {
	ctx := context.Background()
	if got := BudgetFrom(ctx); got != 0 {
		t.Fatalf("BudgetFrom(empty) = %d", got)
	}
	if got := BudgetFrom(WithBudget(ctx, 42)); got != 42 {
		t.Fatalf("BudgetFrom = %d, want 42", got)
	}
	if WithBudget(ctx, 0) != ctx {
		t.Error("WithBudget(0) should be a no-op")
	}
	// A starvation budget must abort the exact search with an error.
	if _, err := MustGet(ExactMultiple).Solve(WithBudget(ctx, 1), nodInstance(t)); err == nil {
		t.Error("budget of 1 should exhaust the exact solver")
	}
}
