package solver

import (
	"context"
	"fmt"

	"replicatree/internal/core"
	"replicatree/internal/exact"
	"replicatree/internal/hetero"
	"replicatree/internal/lp"
	"replicatree/internal/multiple"
	"replicatree/internal/single"
)

// Built-in solver names. Every algorithm the repository implements is
// registered here; consumers dispatch by name via Get/List.
const (
	SingleGen      = "single-gen"      // Algorithm 1, (Δ+1)-approx, Single
	SingleNoD      = "single-nod"      // Algorithm 2, 2-approx, Single-NoD
	SinglePassUp   = "single-passup"   // pass-up variant of Algorithm 2, Single-NoD
	SingleBest     = "single-best"     // min(single-nod, single-passup)
	SinglePushUp   = "single-pushup"   // single-nod + push-up post-pass
	MultipleBin    = "multiple-bin"    // Algorithm 3 (eager), Multiple, binary trees
	MultipleLazy   = "multiple-lazy"   // lazy variant of Algorithm 3
	MultipleBest   = "multiple-best"   // min(multiple-bin, multiple-lazy)
	MultipleGreedy = "multiple-greedy" // general-arity generalisation of Algorithm 3
	ExactSingle    = "exact-single"    // optimal Single branch-and-bound
	ExactMultiple  = "exact-multiple"  // optimal Multiple set search + max-flow
	LPRound        = "lp-round"        // LP relaxation support rounding, Multiple
	HeteroGreedy   = "hetero-greedy"   // heterogeneous greedy at uniform capacity
	HeteroExact    = "hetero-exact"    // heterogeneous exact at uniform capacity
)

func init() {
	MustRegister(Wrap(SingleGen, core.Single, single.Gen))
	MustRegister(Wrap(SingleNoD, core.Single, requireNoD(SingleNoD, single.NoD)))
	MustRegister(Wrap(SinglePassUp, core.Single, requireNoD(SinglePassUp, single.NoDPassUp)))
	MustRegister(Wrap(SingleBest, core.Single, requireNoD(SingleBest, single.NoDBest)))
	MustRegister(Wrap(SinglePushUp, core.Single, requireNoD(SinglePushUp, func(in *core.Instance) (*core.Solution, error) {
		sol, err := single.NoD(in)
		if err != nil {
			return nil, err
		}
		return single.PushUp(in, sol), nil
	})))
	MustRegister(Wrap(MultipleBin, core.Multiple, multiple.Bin))
	MustRegister(Wrap(MultipleLazy, core.Multiple, multiple.Lazy))
	MustRegister(Wrap(MultipleBest, core.Multiple, multiple.Best))
	MustRegister(Wrap(MultipleGreedy, core.Multiple, multiple.Greedy))
	MustRegister(exactSolver(ExactSingle, core.Single, exact.SolveSingle))
	MustRegister(exactSolver(ExactMultiple, core.Multiple, exact.SolveMultiple))
	MustRegister(Wrap(LPRound, core.Multiple, lp.Placement))
	MustRegister(Wrap(HeteroGreedy, core.Multiple, func(in *core.Instance) (*core.Solution, error) {
		return hetero.Greedy(hetero.FromUniform(in))
	}))
	MustRegister(&funcSolver{name: HeteroExact, pol: core.Multiple, exact: true,
		fn: func(ctx context.Context, in *core.Instance) (*core.Solution, error) {
			return hetero.Solve(hetero.FromUniform(in), BudgetFrom(ctx))
		}})
}

// requireNoD guards the NoD-family solvers: they solve the relaxed
// problem and their output has no dmax guarantee, so dispatching one
// on a distance-constrained instance is a caller error, not a silent
// near-miss.
func requireNoD(name string, fn func(*core.Instance) (*core.Solution, error)) func(*core.Instance) (*core.Solution, error) {
	return func(in *core.Instance) (*core.Solution, error) {
		if !in.NoD() {
			return nil, fmt.Errorf("solver %s: requires a NoD instance (dmax=%d is finite)", name, in.DMax)
		}
		return fn(in)
	}
}

// exactSolver adapts the exact branch-and-bound solvers, threading the
// work budget from the context (WithBudget) into exact.Options.
func exactSolver(name string, pol core.Policy, fn func(*core.Instance, exact.Options) (*core.Solution, error)) Solver {
	return &funcSolver{name: name, pol: pol, exact: true,
		fn: func(ctx context.Context, in *core.Instance) (*core.Solution, error) {
			return fn(in, exact.Options{Budget: BudgetFrom(ctx)})
		}}
}
